// Benchmarks mirroring the experiment index of DESIGN.md §3: one bench per
// table (T0–T10) plus the ablations (A1–A3). Each measures the dominant
// operation behind its table so regressions in the pipeline show up as
// benchmark regressions. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/algorithms/matching"
	"repro/internal/baseline"
	"repro/internal/beep"
	"repro/internal/beepalgs"
	"repro/internal/bitstring"
	"repro/internal/codes"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/localbroadcast"
	"repro/internal/rng"
	"repro/internal/sweep"
	"repro/internal/wire"
)

// mustRegular builds a d-regular benchmark graph.
func mustRegular(b *testing.B, n, d int, seed uint64) *graph.Graph {
	b.Helper()
	g, err := graph.RandomRegular(n, d, rng.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchGossipRound measures one simulated Broadcast CONGEST round (two
// beep phases plus decoding at every node).
func benchGossipRound(b *testing.B, n, delta int, eps float64) {
	b.Helper()
	g := mustRegular(b, n, delta, 1)
	msgBits := 2 * wire.BitsFor(n)
	p := core.DefaultParams(n, g.MaxDegree(), msgBits, eps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      p,
			ChannelSeed: uint64(i),
			AlgSeed:     2,
			NoisyOwn:    true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := runner.Run(gossip(n), 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.MessageErrors > n/4 {
			b.Fatalf("excessive decode errors: %d", res.MessageErrors)
		}
	}
	b.ReportMetric(float64(p.RoundsPerSimRound()), "beeprounds/simround")
}

// gossip returns one-round ID-broadcast algorithms.
func gossip(n int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &gossipAlg{}
	}
	return algs
}

type gossipAlg struct {
	env  congest.Env
	done bool
}

func (g *gossipAlg) Init(env congest.Env) { g.env = env }
func (g *gossipAlg) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}
func (g *gossipAlg) Receive(int, []congest.Message) { g.done = true }
func (g *gossipAlg) Done() bool                     { return g.done }
func (g *gossipAlg) Output() any                    { return nil }

// BenchmarkT0Params measures the paper-constant calculator.
func BenchmarkT0Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.PaperParams(256, 8, 1, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT1BeepCode measures the Theorem 4 superimposition check.
func BenchmarkT1BeepCode(b *testing.B) {
	code, err := codes.NewBlockedBeepCode(32, 32, 256, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codes.SuperimpositionCheck(code, 8, 40, 10, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT2DistanceCode measures Lemma 6's exhaustive min-distance scan.
func BenchmarkT2DistanceCode(b *testing.B) {
	code, err := codes.NewRandomDistanceCode(8, 108*8, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code.MinDistance() < 8 {
			b.Fatal("implausible min distance")
		}
	}
}

// BenchmarkT3Phase1 measures a noisy simulated round dominated by the
// phase-1 membership scan (small messages, larger noise).
func BenchmarkT3Phase1(b *testing.B) { benchGossipRound(b, 64, 6, 0.2) }

// BenchmarkT4BroadcastRound measures one simulated Broadcast CONGEST round
// across the Δ sweep of table T4.
func BenchmarkT4BroadcastRound(b *testing.B) {
	for _, delta := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			benchGossipRound(b, 64, delta, 0.1)
		})
	}
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossipRound(b, n, 8, 0.1)
		})
	}
}

// BenchmarkT5CongestRound measures one CONGEST round via Corollary 12's
// adapter over beeps (1 discovery + Δ slots).
func BenchmarkT5CongestRound(b *testing.B) {
	const n, delta = 48, 4
	g := mustRegular(b, n, delta, 4)
	inner := wire.BitsFor(n)
	outer := core.AdapterMsgBits(n, inner)
	inst := localbroadcast.NewRandomInstance(g, inner, rng.New(5))
	p := core.DefaultParams(n, delta, outer, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      p,
			ChannelSeed: uint64(i),
			AlgSeed:     6,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(core.WrapCongest(localbroadcast.NewAlgorithms(inst)), core.CongestRounds(1, delta)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT6Baseline compares one simulated round under Algorithm 1 vs
// the TDMA baseline on a χ(G²)=Θ(Δ²) instance.
func BenchmarkT6Baseline(b *testing.B) {
	g, err := graph.ProjectivePlaneIncidence(5)
	if err != nil {
		b.Fatal(err)
	}
	n := g.N()
	msgBits := 2 * wire.BitsFor(n)
	b.Run("ours", func(b *testing.B) {
		p := core.DefaultParams(n, g.MaxDegree(), msgBits, 0.05)
		for i := 0; i < b.N; i++ {
			runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{Params: p, ChannelSeed: uint64(i), AlgSeed: 7})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runner.Run(gossip(n), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tdma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runner, err := baseline.NewRunner(g, baseline.Config{
				MsgBits: msgBits, Epsilon: 0.05, ChannelSeed: uint64(i), AlgSeed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runner.Run(gossip(n), 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT7LocalBroadcast measures the full Local Broadcast stack on the
// Lemma 14 hard instance.
func BenchmarkT7LocalBroadcast(b *testing.B) {
	const delta, bits = 3, 16
	g, err := graph.HardInstance(2*delta, delta)
	if err != nil {
		b.Fatal(err)
	}
	inst := localbroadcast.NewHardInstance(g, delta, bits, rng.New(8))
	inner := wire.BitsFor(g.N())
	outer := core.AdapterMsgBits(g.N(), inner)
	p := core.DefaultParams(g.N(), delta, outer, 0.05)
	budget := core.CongestRounds(localbroadcast.CongestRoundsNeeded(bits, inner), delta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{Params: p, ChannelSeed: uint64(i), AlgSeed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(core.WrapCongest(localbroadcast.NewAlgorithms(inst)), budget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT8MatchingNative measures Algorithm 3 on the native engine.
func BenchmarkT8MatchingNative(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := mustRegular(b, n, 8, 10)
			for i := 0; i < b.N; i++ {
				eng, err := congest.NewBroadcastEngine(g, matching.MsgBits(n), uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(matching.New(n), matching.MaxRounds(n))
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllDone {
					b.Fatal("did not terminate")
				}
			}
		})
	}
}

// BenchmarkT9MatchingBeeps measures the Theorem 21 pipeline end to end.
func BenchmarkT9MatchingBeeps(b *testing.B) {
	const n, delta = 32, 4
	g := mustRegular(b, n, delta, 11)
	p := core.DefaultParams(n, delta, matching.MsgBits(n), 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params: p, ChannelSeed: uint64(i), AlgSeed: 12, NoisyOwn: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := runner.Run(matching.New(n), matching.MaxRounds(n))
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllDone {
			b.Fatal("did not terminate")
		}
	}
}

// BenchmarkT10LowerBound measures the counting-bound calculators.
func BenchmarkT10LowerBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = localbroadcast.Lemma14MinRounds(8, 32)
		_ = localbroadcast.Lemma14SuccessExponent(100, 8, 32)
		_ = localbroadcast.Theorem22SuccessExponent(64, 8, 256)
	}
}

// BenchmarkT11NativeMIS measures the beep-native MIS (the fast side of the
// §7 gap table).
func BenchmarkT11NativeMIS(b *testing.B) {
	g := mustRegular(b, 64, 8, 19)
	for i := 0; i < b.N; i++ {
		inSet, _, err := beepalgs.RunMIS(g, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(inSet) != g.N() {
			b.Fatal("bad output length")
		}
	}
}

// BenchmarkA1Ablation measures a simulated round at the smallest viable
// repetition factor (the cheap end of table A1).
func BenchmarkA1Ablation(b *testing.B) {
	g := mustRegular(b, 32, 6, 13)
	p := core.DefaultParams(32, 6, 12, 0.1)
	p.R = 15
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{Params: p, ChannelSeed: uint64(i), AlgSeed: 14})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(gossip(32), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2Codebook measures a simulated round in random-assignment mode
// with a large codebook (decode scans all M codewords).
func BenchmarkA2Codebook(b *testing.B) {
	g := mustRegular(b, 32, 6, 15)
	p := core.DefaultParams(32, 6, 12, 0.05)
	p.Assignment = core.AssignRandom
	p.M = 4096
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{Params: p, ChannelSeed: uint64(i), AlgSeed: 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(gossip(32), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA3Decoder measures the naive all-position decoder variant.
func BenchmarkA3Decoder(b *testing.B) {
	g := mustRegular(b, 32, 6, 17)
	p := core.DefaultParams(32, 6, 12, 0.1)
	p.DisableSoloFilter = true
	for i := 0; i < b.N; i++ {
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{Params: p, ChannelSeed: uint64(i), AlgSeed: 18})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := runner.Run(gossip(32), 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentSuiteQuick runs the whole quick-size experiment suite
// once per iteration — the end-to-end regression canary.
func BenchmarkExperimentSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if _, err := e.Run(experiments.Config{Quick: true, Seed: uint64(i + 1)}); err != nil {
				b.Fatalf("%s: %v", e.ID, err)
			}
		}
	}
}

// --- Parallel CSR engine benchmarks (DESIGN.md §2.9) ---
//
// BenchmarkEngine10kRandom and BenchmarkEngineHardInstance compare the
// seed's serial execution path (pointer-chased [][]int adjacency with a
// per-listener neighbor scan per round — reproduced verbatim in
// seedStyleRun below) against the CSR engine, serial and at
// Workers=GOMAXPROCS, on a 10k-node random graph and the Lemma 14
// K_{Δ,Δ} hard instance. The workload is the canonical contention shape
// (each node beeps with probability 1/(deg+1) per round); all variants
// execute bit-identical protocol work, so the delta is pure engine cost.

// benchBeeper beeps with probability 1/(deg+1) per round until a fixed
// horizon, the Luby-style contention workload.
type benchBeeper struct {
	env     beep.Env
	horizon int
	rounds  int
	ones    int
	done    bool
}

func (c *benchBeeper) Init(env beep.Env) { c.env = env }
func (c *benchBeeper) Step(round int) beep.Action {
	if c.env.Rng.Bool(1 / float64(c.env.Degree+1)) {
		return beep.Beep
	}
	return beep.Listen
}
func (c *benchBeeper) Hear(round int, bit bool) {
	c.rounds++
	if bit {
		c.ones++
	}
	if c.rounds >= c.horizon {
		c.done = true
	}
}
func (c *benchBeeper) Done() bool  { return c.done }
func (c *benchBeeper) Output() any { return c.ones }

func benchBeepers(g *graph.Graph, horizon int) []beep.Program {
	progs := make([]beep.Program, g.N())
	for v := range progs {
		progs[v] = &benchBeeper{horizon: horizon}
	}
	return progs
}

// seedStyleRun reproduces the seed repository's serial beeping engine:
// [][]int adjacency (one heap object per vertex) and, for every listener
// every round, a linear scan of its neighbor list. It is the "before" in
// the engine benchmarks; the protocol semantics (and the per-node RNG
// streams) are identical to beep.Network's.
func seedStyleRun(b *testing.B, g *graph.Graph, adj [][]int, seed uint64, progs []beep.Program, maxRounds int) {
	b.Helper()
	n := g.N()
	maxDeg := g.MaxDegree()
	for v, p := range progs {
		p.Init(beep.Env{
			ID:        v,
			N:         n,
			Degree:    g.Degree(v),
			MaxDegree: maxDeg,
			Rng:       rng.New(seed).Split(0x6e6f6465, uint64(v)),
		})
	}
	beeped := bitstring.New(n)
	for round := 0; round < maxRounds; round++ {
		allDone := true
		for _, p := range progs {
			if !p.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
		beeped.Reset()
		for v, p := range progs {
			if p.Done() {
				continue
			}
			if p.Step(round) == beep.Beep {
				beeped.Set(v)
			}
		}
		for v, p := range progs {
			if p.Done() {
				continue
			}
			bit := beeped.Get(v)
			if !bit {
				for _, u := range adj[v] {
					if beeped.Get(u) {
						bit = true
						break
					}
				}
			}
			p.Hear(round, bit)
		}
	}
}

func csrEngineRun(b *testing.B, g *graph.Graph, seed uint64, workers int, progs []beep.Program, maxRounds int) {
	b.Helper()
	nw, err := beep.NewNetwork(g, beep.Params{Seed: seed, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nw.Run(progs, maxRounds); err != nil {
		b.Fatal(err)
	}
}

// benchGraphEntry lazily builds one benchmark graph and its seed-style
// [][]int adjacency (built once, as the seed engine did at construction).
type benchGraphEntry struct {
	once  sync.Once
	build func() (*graph.Graph, error)
	g     *graph.Graph
	adj   [][]int
}

func (e *benchGraphEntry) get() (*graph.Graph, [][]int) {
	e.once.Do(func() {
		g, err := e.build()
		if err != nil {
			panic(err)
		}
		adj := make([][]int, g.N())
		for v := range adj {
			adj[v] = g.Neighbors(v)
		}
		e.g, e.adj = g, adj
	})
	return e.g, e.adj
}

var benchGraphs = map[string]*benchGraphEntry{
	"random": {build: func() (*graph.Graph, error) { // 10k-node random 16-regular
		return graph.RandomRegular(10000, 16, rng.New(41))
	}},
	"hard": {build: func() (*graph.Graph, error) { // K_{1024,1024} plus isolated vertices
		return graph.HardInstance(4096, 1024)
	}},
}

func benchGraph(b *testing.B, which string) (*graph.Graph, [][]int) {
	b.Helper()
	e, ok := benchGraphs[which]
	if !ok {
		b.Fatalf("unknown bench graph %q", which)
	}
	return e.get()
}

// benchEngineVariants runs the seed-vs-CSR comparison on g. The 2×-over-
// seed acceptance target for this refactor is the csr-parallel-vs-
// seed-serial ratio on the 10k random graph.
func benchEngineVariants(b *testing.B, g *graph.Graph, adj [][]int) {
	// Enough rounds that the per-round engine cost dominates the (shared,
	// identical) per-run init of n node environments.
	const rounds = 100
	b.Run("seed-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seedStyleRun(b, g, adj, uint64(i), benchBeepers(g, rounds), rounds)
		}
	})
	b.Run("csr-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			csrEngineRun(b, g, uint64(i), 1, benchBeepers(g, rounds), rounds)
		}
	})
	b.Run("csr-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			csrEngineRun(b, g, uint64(i), engine.AutoWorkers, benchBeepers(g, rounds), rounds)
		}
	})
}

// BenchmarkEngine10kRandom: 10k nodes, 16-regular, 100 contention rounds.
func BenchmarkEngine10kRandom(b *testing.B) {
	g, adj := benchGraph(b, "random")
	benchEngineVariants(b, g, adj)
}

// BenchmarkEngineHardInstance: the Lemma 14 K_{Δ,Δ} instance at Δ=1024
// (over a million edges), where per-listener scans are at their worst.
func BenchmarkEngineHardInstance(b *testing.B) {
	g, adj := benchGraph(b, "hard")
	benchEngineVariants(b, g, adj)
}

// BenchmarkRunPhase10k measures the word-parallel batch path (Algorithm
// 1's phase shape) on the 10k graph: a 512-round window, every fourth
// node transmitting, ε=0.05, serial vs one worker per CPU.
func BenchmarkRunPhase10k(b *testing.B) {
	g, _ := benchGraph(b, "random")
	const window = 512
	mkPatterns := func() []*bitstring.BitString {
		r := rng.New(7)
		patterns := make([]*bitstring.BitString, g.N())
		for v := range patterns {
			if v%4 != 0 {
				continue
			}
			s := bitstring.New(window)
			for i := 0; i < window; i++ {
				if r.Bool(0.3) {
					s.Set(i)
				}
			}
			patterns[v] = s
		}
		return patterns
	}
	patterns := mkPatterns()
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", engine.AutoWorkers}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				nw, err := beep.NewNetwork(g, beep.Params{Epsilon: 0.05, Seed: uint64(i), Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := nw.RunPhase(patterns); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepGrid64 measures the 64-scenario sweep grid end to end —
// n{32,64} × Δ{4,8} × ε{0.1,0.2} × {alg1,tdma} × 4 replicates through
// the batch scheduler against a fresh in-memory store, with the
// per-batch artifact cache sharing graphs and code tables across
// scenarios. This is the batch wall-time figure the PR 4 cache and
// hot-path work target (BENCH_PR4.json).
func BenchmarkSweepGrid64(b *testing.B) {
	scs, err := sweep.Grid{
		Families:   []string{sweep.FamilyRegular},
		Ns:         []int{32, 64},
		Params:     []int{4, 8},
		Epsilons:   []float64{0.1, 0.2},
		Engines:    []string{sweep.EngineAlg1, sweep.EngineTDMA},
		Workloads:  []string{sweep.WorkloadGossip},
		Rounds:     3,
		Replicates: 4,
		BaseSeed:   2023,
	}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sweep.Run(scs, sweep.NewMemStore(), sweep.Options{Jobs: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Million-node sparse execution benchmarks (DESIGN.md §2.17) ---
//
// BenchmarkLargeSparseWave compares the dense per-round scan against the
// sparse active-set executor on the same workload: a 16-bit wave
// broadcast across a 1000×1000 grid (n = 10⁶, D = 1998). The two runs
// are pinned bit-identical (see internal/beep/sparse_test.go); the
// benchmark delta is pure executor cost. The ≥10× sparse-vs-dense
// acceptance target for the million-node PR reads off this pair
// (BENCH_PR9.json).

const largeSide = 1000 // n = largeSide² = 10⁶

var (
	largeGridOnce sync.Once
	largeGridG    *graph.Graph
)

// largeGridGraph lazily builds the shared 10⁶-node grid via the
// streaming sharded builder (never materializing an edge list).
func largeGridGraph(b *testing.B) *graph.Graph {
	b.Helper()
	largeGridOnce.Do(func() {
		g, err := graph.FromRowFunc(largeSide*largeSide,
			graph.GridRows(largeSide, largeSide),
			graph.BuildOptions{Workers: engine.AutoWorkers})
		if err != nil {
			panic(err)
		}
		largeGridG = g
	})
	return largeGridG
}

func benchLargeWave(b *testing.B, sparse bool) {
	b.Helper()
	g := largeGridGraph(b)
	const bits = 16
	msg := []byte{0xA5, 0x3C}
	dBound := 2 * (largeSide - 1) // the corner source's exact eccentricity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := beepalgs.RunWaveBroadcastOpts(g, 0, msg, bits, dBound, uint64(i),
			beepalgs.WaveOptions{EarlyStop: true, Sparse: sparse})
		if err != nil {
			b.Fatal(err)
		}
		if !wire.Equal(out[g.N()-1], msg, bits) {
			b.Fatalf("far corner decoded %x, want %x", out[g.N()-1], msg)
		}
	}
}

// BenchmarkLargeSparseWave: the n=10⁶ before/after pair. "dense" drives
// every node every round; "sparse" tracks the wave front through the
// active-set mask and fast-forwards quiescent spans.
func BenchmarkLargeSparseWave(b *testing.B) {
	b.Run("dense", func(b *testing.B) { benchLargeWave(b, false) })
	b.Run("sparse", func(b *testing.B) { benchLargeWave(b, true) })
}

// BenchmarkLargeSparseGen measures streaming CSR generation of the same
// 10⁶-node grid, serial vs sharded — the two-pass degree-count→fill
// builder is byte-identical for every worker count, so the delta is
// pure generation throughput.
func BenchmarkLargeSparseGen(b *testing.B) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"sharded", engine.AutoWorkers}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := graph.FromRowFunc(largeSide*largeSide,
					graph.GridRows(largeSide, largeSide),
					graph.BuildOptions{Workers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if g.N() != largeSide*largeSide {
					b.Fatal("bad graph size")
				}
			}
		})
	}
}

// BenchmarkSweepReplicateHeavy measures the replicate-heavy grid the
// replicate-sliced execution path targets (BENCH_PR6.json): 4
// hard-family axis points × 64 replicates = 256 TDMA scenarios through
// the batch scheduler. The hard family derives its topology without
// GraphSeed, so each axis point's replicates share one sliceKey and run
// as lanes of a single word-transposed pass wherever the tree supports
// it — the call shape deliberately predates the slicing knobs so the
// same benchmark compiles on the pre-slicing tree for the before/after
// comparison.
//
// The grid runs a quiet channel (ε = 0) on purpose: the determinism
// contract pins each lane's noise stream to the serial replay, so on
// noisy channels the geometric-skip flip sampling (one log per flip,
// per lane) is an irreducible floor that slicing cannot amortize — see
// DESIGN.md §2.14. Quiet and moderate channels are where replicate
// slicing pays; ε = 0 isolates that win.
func BenchmarkSweepReplicateHeavy(b *testing.B) {
	scs, err := sweep.Grid{
		Families:   []string{sweep.FamilyHard},
		Ns:         []int{48, 64},
		Params:     []int{6, 8},
		Epsilons:   []float64{0},
		Engines:    []string{sweep.EngineTDMA},
		Workloads:  []string{sweep.WorkloadGossip},
		Rounds:     3,
		Replicates: 64,
		BaseSeed:   2026,
	}.Expand()
	if err != nil {
		b.Fatal(err)
	}
	if len(scs) != 256 {
		b.Fatalf("grid expanded to %d scenarios, want 256", len(scs))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sweep.Run(scs, sweep.NewMemStore(), sweep.Options{Jobs: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
