#!/usr/bin/env bash
# bench.sh — run the T-series, ablation, and engine benchmarks at a pinned
# -benchtime and emit a machine-readable JSON report (ns/op, B/op,
# allocs/op per bench), the format stored in BENCH_PR3.json.
#
# Usage: scripts/bench.sh [benchtime] [output.json]
#
#   benchtime  pinned go test -benchtime value (default 10x; CI smoke uses 1x)
#   output     JSON report path (default bench.json)
#
# The raw `go test -bench` output streams to stderr so interactive runs
# stay observable; only the JSON goes to the output file.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-10x}"
out="${2:-bench.json}"
pattern='^(BenchmarkT[0-9]+|BenchmarkA[123]|BenchmarkEngine10kRandom|BenchmarkEngineHardInstance|BenchmarkRunPhase10k|BenchmarkSweepGrid64|BenchmarkSweepReplicateHeavy|BenchmarkLargeSparse|BenchmarkObs)'

raw="$(go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -timeout 60m . ./internal/obs/)"
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"benchtime\": \"%s\",\n  \"benches\": [", benchtime
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns     = $(i - 1)
        if ($i == "B/op")      bytes  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    if (!first) printf ","
    first = 0
    printf "\n    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bytes  != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  ]\n}" }
' > "$out"

echo "bench.sh: wrote $out" >&2
