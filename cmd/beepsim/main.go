// Command beepsim runs a single scenario: a chosen algorithm on a chosen
// topology, either natively in Broadcast CONGEST or simulated over the
// noisy beeping model with Algorithm 1, and reports rounds, beeps, and
// verification. Algorithms are resolved through the internal/sim
// workload registry, so beepsim runs exactly the workload set the sweep
// subsystem runs (gossip, mis, coloring, leader, matching, bfstree).
//
// Usage examples:
//
//	beepsim -graph regular -n 64 -delta 8 -alg matching -eps 0.1
//	beepsim -graph grid -n 36 -alg bfstree -model native
//	beepsim -graph pg -q 5 -alg mis -eps 0.05 -seed 7
//	beepsim -graph regular -n 10000 -delta 16 -alg mis -workers 0
//	beepsim -graph regular -n 32 -delta 4 -alg leader -noise adversary:solo:128
//	beepsim -graph geo -n 1000000 -alg broadcast -model beepnative
//
// -model beepnative selects the noiseless native beeping engine for
// workloads with a native implementation (mis, broadcast) — the
// million-node path: sparse active-set execution over streaming sharded
// generation (DESIGN.md §2.17).
//
// -noise selects a channel model by spec; hostile channels (budgeted
// adversary strategies, duty-cycle jamming) ride the same axis as the
// stochastic ones, and an overwhelmed protocol reports its failed
// verification rather than hanging (the round budget stays finite).
//
// -workers parallelizes the per-round simulation phases on the
// deterministic sharded pool of internal/engine (1 = serial, 0 = one
// worker per CPU); results are bit-identical for every setting, so the
// flag is purely a throughput knob.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/congest"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		graphKind = flag.String("graph", "regular", "topology: regular|bounded|grid|cycle|complete|pg|hard|geo")
		n         = flag.Int("n", 64, "number of nodes (regular/bounded/cycle/complete/hard)")
		delta     = flag.Int("delta", 8, "degree bound Δ")
		q         = flag.Int("q", 5, "projective plane order (graph=pg)")
		algName   = flag.String("alg", "matching", "algorithm: "+strings.Join(sim.WorkloadNames(), "|"))
		model     = flag.String("model", "beep", "execution model: native|beep|beepnative (noiseless native beeping algorithms: mis, broadcast)")
		eps       = flag.Float64("eps", 0.1, "channel noise ε (beep model, symmetric channel)")
		noiseSpec = flag.String("noise", "", "channel-noise model spec ("+strings.Join(noise.Names(), ", ")+"); empty = symmetric ε channel, e.g. gilbert-elliott:0.01:0.3:0.05:0.25 or adversary:solo:128")
		rounds    = flag.Int("rounds", 3, "round count for rounds-parameterized algorithms (gossip)")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "simulation workers: 1 = serial, 0 = one per CPU")
		shards    = flag.Int("shards", 0, "worker-pool shards (0 = derived from workers)")
	)
	flag.Parse()
	w := *workers
	if w == 0 {
		w = engine.AutoWorkers
	}
	if err := run(*graphKind, *n, *delta, *q, *algName, *model, *eps, *noiseSpec, *rounds, *seed, w, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "beepsim:", err)
		os.Exit(1)
	}
}

func buildGraph(kind string, n, delta, q int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "regular":
		if n*delta%2 != 0 {
			return graph.RandomBoundedDegree(n, delta, 0.5, rng.New(seed)), nil
		}
		return graph.RandomRegular(n, delta, rng.New(seed))
	case "bounded":
		return graph.RandomBoundedDegree(n, delta, 0.2, rng.New(seed)), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "pg":
		return graph.ProjectivePlaneIncidence(q)
	case "hard":
		return graph.HardInstance(n, delta)
	case "geo":
		return graph.GeometricCells(n, seed, graph.BuildOptions{Workers: engine.AutoWorkers})
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// engineName maps the -model flag to a registered engine.
func engineName(model string) (string, error) {
	switch model {
	case "native":
		return sim.EngineCongest, nil
	case "beep":
		return sim.EngineAlg1, nil
	case "beepnative":
		return sim.EngineBeep, nil
	default:
		return "", fmt.Errorf("unknown model %q", model)
	}
}

func run(graphKind string, n, delta, q int, algName, model string, eps float64, noiseSpec string, rounds int, seed uint64, workers, shards int) error {
	g, err := buildGraph(graphKind, n, delta, q, seed)
	if err != nil {
		return err
	}
	wl, ok := sim.WorkloadFor(algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (have %s)", algName, strings.Join(sim.WorkloadNames(), ", "))
	}
	en, err := engineName(model)
	if err != nil {
		return err
	}
	eng, _ := sim.EngineFor(en)
	chanLabel := fmt.Sprintf("symmetric ε=%.2f", eps)
	if noiseSpec == noise.NameSymmetric {
		noiseSpec = "" // bare "symmetric" = the -eps channel, as in cmd/sweep
	}
	if noiseSpec != "" {
		m, err := noise.Parse(noiseSpec)
		if err != nil {
			return err
		}
		if m.Name() == noise.NameSymmetric {
			// One canonical spelling: the symmetric channel is -eps.
			eps = m.(noise.Symmetric).Eps
			noiseSpec = ""
			chanLabel = fmt.Sprintf("symmetric ε=%.2f", eps)
		} else {
			noiseSpec = m.Spec()
			eps = 0 // the model owns the channel
			chanLabel = noiseSpec
		}
		if !sim.SupportsNoise(en, noiseSpec) {
			return fmt.Errorf("engine %q does not support channel model %q", en, noiseSpec)
		}
	}
	if !wl.UsesRounds() {
		rounds = 0
	}
	msgBits, budget := wl.MsgBits(g), wl.Budget(g, rounds)
	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", graphKind, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("algorithm: %s  bandwidth=%d bits  budget=%d rounds\n", wl.Name(), msgBits, budget)

	inst, err := eng.Prepare(g, sim.Config{
		MsgBits:     msgBits,
		Epsilon:     eps,
		Noise:       noiseSpec,
		ChannelSeed: seed,
		AlgSeed:     seed,
		Workers:     workers,
		Shards:      shards,
		Workload:    wl,
		Rounds:      rounds,
	})
	if err != nil {
		return err
	}
	var algs []congest.BroadcastAlgorithm
	if eng.DrivesAlgs() {
		algs = wl.Algs(g, rounds)
	}
	res, extras, err := inst.Run(algs, budget)
	if err != nil {
		return err
	}
	switch model {
	case "native":
		fmt.Printf("native Broadcast CONGEST: %d rounds, %d messages, done=%v\n",
			res.SimRounds, extras[sim.ExtraMessages], res.AllDone)
	case "beepnative":
		fmt.Printf("native beeping algorithm (noiseless): %d beep rounds, done=%v\n",
			res.BeepRounds, res.AllDone)
	case "beep":
		perRound := 0
		if res.SimRounds > 0 {
			perRound = res.BeepRounds / res.SimRounds
		}
		fmt.Printf("noisy beeping model (%s): %d simulated rounds, %d beep rounds (%d per round), %d beeps\n",
			chanLabel, res.SimRounds, res.BeepRounds, perRound, res.Beeps)
		fmt.Printf("decode errors: %d message, %d membership (node·rounds)\n",
			res.MessageErrors, res.MembershipErrors)
	}
	if !res.AllDone {
		return errors.New("algorithm did not terminate in budget")
	}
	verr := wl.Verify(g, res.Outputs)
	switch {
	case errors.Is(verr, sim.ErrUnverified):
		fmt.Println("verification: n/a (workload defines no output-validity notion)")
	case verr != nil:
		return fmt.Errorf("verification FAILED: %w", verr)
	default:
		fmt.Println("verification: OK")
	}
	return nil
}
