// Command beepsim runs a single scenario: a chosen algorithm on a chosen
// topology, either natively in Broadcast CONGEST or simulated over the
// noisy beeping model with Algorithm 1, and reports rounds, beeps, and
// verification.
//
// Usage examples:
//
//	beepsim -graph regular -n 64 -delta 8 -alg matching -eps 0.1
//	beepsim -graph grid -n 36 -alg bfs -model native
//	beepsim -graph pg -q 5 -alg mis -eps 0.05 -seed 7
//	beepsim -graph regular -n 10000 -delta 16 -alg mis -workers 0
//
// -workers parallelizes the per-round simulation phases on the
// deterministic sharded pool of internal/engine (1 = serial, 0 = one
// worker per CPU); results are bit-identical for every setting, so the
// flag is purely a throughput knob.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/algorithms/bfstree"
	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/leader"
	"repro/internal/algorithms/matching"
	"repro/internal/algorithms/mis"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	var (
		graphKind = flag.String("graph", "regular", "topology: regular|bounded|grid|cycle|complete|pg|hard")
		n         = flag.Int("n", 64, "number of nodes (regular/bounded/cycle/complete/hard)")
		delta     = flag.Int("delta", 8, "degree bound Δ")
		q         = flag.Int("q", 5, "projective plane order (graph=pg)")
		algName   = flag.String("alg", "matching", "algorithm: matching|mis|coloring|bfs|leader")
		model     = flag.String("model", "beep", "execution model: native|beep")
		eps       = flag.Float64("eps", 0.1, "channel noise ε (beep model)")
		seed      = flag.Uint64("seed", 1, "seed")
		workers   = flag.Int("workers", 1, "simulation workers: 1 = serial, 0 = one per CPU")
		shards    = flag.Int("shards", 0, "worker-pool shards (0 = derived from workers)")
	)
	flag.Parse()
	w := *workers
	if w == 0 {
		w = engine.AutoWorkers
	}
	if err := run(*graphKind, *n, *delta, *q, *algName, *model, *eps, *seed, w, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "beepsim:", err)
		os.Exit(1)
	}
}

func buildGraph(kind string, n, delta, q int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "regular":
		if n*delta%2 != 0 {
			return graph.RandomBoundedDegree(n, delta, 0.5, rng.New(seed)), nil
		}
		return graph.RandomRegular(n, delta, rng.New(seed))
	case "bounded":
		return graph.RandomBoundedDegree(n, delta, 0.2, rng.New(seed)), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	case "pg":
		return graph.ProjectivePlaneIncidence(q)
	case "hard":
		return graph.HardInstance(n, delta)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

type workload struct {
	algs    []congest.BroadcastAlgorithm
	msgBits int
	rounds  int
	verify  func([]any) error
}

func buildWorkload(name string, g *graph.Graph) (*workload, error) {
	n := g.N()
	switch name {
	case "matching":
		return &workload{
			algs:    matching.New(n),
			msgBits: matching.MsgBits(n),
			rounds:  matching.MaxRounds(n),
			verify: func(outs []any) error {
				res := make([]int, n)
				for v, o := range outs {
					res[v] = o.(int)
				}
				return matching.Verify(g, res)
			},
		}, nil
	case "mis":
		return &workload{
			algs:    mis.New(n),
			msgBits: mis.MsgBits(n),
			rounds:  mis.MaxRounds(n),
			verify: func(outs []any) error {
				res := make([]bool, n)
				for v, o := range outs {
					res[v] = o.(bool)
				}
				return mis.Verify(g, res)
			},
		}, nil
	case "coloring":
		return &workload{
			algs:    coloring.New(n),
			msgBits: coloring.MsgBits(n, g.MaxDegree()),
			rounds:  coloring.MaxRounds(n),
			verify: func(outs []any) error {
				res := make([]int, n)
				for v, o := range outs {
					res[v] = o.(int)
				}
				return coloring.Verify(g, res)
			},
		}, nil
	case "bfs":
		return &workload{
			algs:    bfstree.New(n, 0),
			msgBits: bfstree.MsgBits(n),
			rounds:  n + 1,
			verify: func(outs []any) error {
				res := make([]bfstree.Result, n)
				for v, o := range outs {
					res[v] = o.(bfstree.Result)
				}
				return bfstree.Verify(g, 0, res)
			},
		}, nil
	case "leader":
		return &workload{
			algs:    leader.New(n, n),
			msgBits: leader.MsgBits(n),
			rounds:  n + 1,
			verify: func(outs []any) error {
				res := make([]leader.Result, n)
				for v, o := range outs {
					res[v] = o.(leader.Result)
				}
				return leader.Verify(g, res)
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func run(graphKind string, n, delta, q int, algName, model string, eps float64, seed uint64, workers, shards int) error {
	g, err := buildGraph(graphKind, n, delta, q, seed)
	if err != nil {
		return err
	}
	w, err := buildWorkload(algName, g)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s  n=%d  m=%d  Δ=%d\n", graphKind, g.N(), g.M(), g.MaxDegree())
	fmt.Printf("algorithm: %s  bandwidth=%d bits  budget=%d rounds\n", algName, w.msgBits, w.rounds)

	switch model {
	case "native":
		eng, err := congest.NewBroadcastEngine(g, w.msgBits, seed)
		if err != nil {
			return err
		}
		eng.SetParallelism(workers, shards)
		res, err := eng.Run(w.algs, w.rounds)
		if err != nil {
			return err
		}
		fmt.Printf("native Broadcast CONGEST: %d rounds, %d messages, done=%v\n",
			res.Rounds, res.Messages, res.AllDone)
		if !res.AllDone {
			return errors.New("algorithm did not terminate in budget")
		}
		return report(w, res.Outputs)
	case "beep":
		p := core.DefaultParams(g.N(), g.MaxDegree(), w.msgBits, eps)
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      p,
			ChannelSeed: seed,
			AlgSeed:     seed,
			NoisyOwn:    true,
			Workers:     workers,
			Shards:      shards,
		})
		if err != nil {
			return err
		}
		res, err := runner.Run(w.algs, w.rounds)
		if err != nil {
			return err
		}
		fmt.Printf("noisy beeping model (ε=%.2f): %d simulated rounds, %d beep rounds (%d per round), %d beeps\n",
			eps, res.SimRounds, res.BeepRounds, p.RoundsPerSimRound(), res.Beeps)
		fmt.Printf("decode errors: %d message, %d membership (node·rounds)\n",
			res.MessageErrors, res.MembershipErrors)
		if !res.AllDone {
			return errors.New("algorithm did not terminate in budget")
		}
		return report(w, res.Outputs)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
}

func report(w *workload, outputs []any) error {
	if err := w.verify(outputs); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Println("verification: OK")
	return nil
}
