// Command sweep expands a declarative scenario grid (graph family × n ×
// Δ × ε × engine × workload × replicates), runs it through the batch
// scheduler with content-addressed caching, and prints an aggregate
// table. Engines and workloads come from the internal/sim registries —
// every registered workload (gossip, mis, coloring, leader, matching,
// bfstree) runs on every compatible engine. Results persist as JSONL
// (one record per scenario, keyed by the spec's content hash), so
// re-running an overlapping grid — or resuming after an interrupt —
// skips every scenario already in the store; within one batch, graphs
// and code tables are built once and shared across scenarios.
//
// Usage:
//
//	sweep -family regular,pg -n 32,64 -delta 4,8 -eps 0,0.1 \
//	      -engine alg1,tdma -workload gossip,coloring -rounds 3 \
//	      -replicates 3 -seed 2023 -store results.jsonl -jobs 0 -v
//
// The channel is an axis too: -noise lists channel models (specs are
// colon-separated so they compose with the comma-separated axis), e.g.
//
//	sweep -family regular -n 64 -delta 4 \
//	      -noise symmetric,gilbert-elliott:0.01:0.3:0.05:0.25 -eps 0.05 \
//	      -engine alg1,tdma -workload gossip -replicates 4
//
// compares the i.i.d. symmetric channel at ε = 0.05 against burst noise
// with the matching stationary rate. Non-symmetric models own their
// parameters, so the ε axis collapses under them (and under the native
// engines); Expand deduplicates the collapsed grid points.
//
// Hostile channels ride the same axis: adversary:strategy:budget[:args]
// (strategies random, solo, phase, hub) and jam:duty:period. With
// -frontier the budget becomes a search axis instead of a grid point:
// each expanded scenario's budget is the ceiling, and the minimal
// budget that breaks the protocol is found by bisection
// (sweep.FrontierSearch), every probe an ordinary content-hashed
// scenario served through the store — a warm store resumes the search
// with zero re-simulation. Example:
//
//	sweep -frontier -family regular -n 32 -delta 4 \
//	      -noise adversary:solo:32768 -engine alg1,tdma \
//	      -workload leader -store frontier.jsonl
//
// prints a per-protocol frontier table (breaking budget -1 = unbroken
// up to the ceiling). -maxroundsfactor caps every run's round budget at
// the given multiple of the workload budget, recording a typed
// budget-exhausted failure instead of running unbounded; unlike every
// other flag it changes records, so hold it constant per store. -strict
// exits non-zero when any record carries a failure or failed output
// verification, so CI grids fail loudly instead of via grep.
//
// The final stderr line reports cache effectiveness — batch stats plus
// the artifact cache's hit/miss counters, e.g.
// "sweep: total=48 cached=48 run=0 failed=0 wall=12ms artifacts[graphs
// 2/2 codes 0/1 (hits/misses)]" — a second run of the same grid performs
// zero engine work.
//
// Telemetry: -metrics collects the deterministic instrumentation
// registry (phase timers, decode counters, noise-flip accounting, pool
// and cache traffic) and prints it as a table on stderr; with -store it
// also writes a one-line JSONL telemetry artifact beside the result
// store (<store>.telemetry.jsonl). -telemetry ADDR additionally serves
// live introspection over HTTP (/metrics, /progress, /debug/vars,
// /debug/pprof/) for the duration of the run. Both are observation-only:
// records are byte-identical with telemetry on or off.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"repro/internal/engine"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	var (
		families   = flag.String("family", "regular", "comma-separated graph families (regular, bounded, pg, grid, hypercube, hard, complete, geo)")
		ns         = flag.String("n", "64", "comma-separated node counts (ignored by families that derive n)")
		deltas     = flag.String("delta", "4", "comma-separated family parameters (Δ; q for pg, side for grid, dim for hypercube)")
		epss       = flag.String("eps", "0.05", "comma-separated channel noise rates (symmetric channel)")
		noises     = flag.String("noise", "", "comma-separated channel-noise models ("+strings.Join(noise.Names(), ", ")+"); empty/symmetric uses -eps, e.g. asymmetric:p01:p10, erasure:q:readAs, gilbert-elliott:pGood:pBad:pGB:pBG, adversary:strategy:budget[:args], jam:duty:period")
		engines    = flag.String("engine", "alg1", "comma-separated engines ("+strings.Join(sim.EngineNames(), ", ")+")")
		workloads  = flag.String("workload", "gossip", "comma-separated workloads ("+strings.Join(sim.WorkloadNames(), ", ")+")")
		rounds     = flag.Int("rounds", 3, "gossip rounds per scenario")
		msgBits    = flag.Int("msgbits", 0, "CONGEST bandwidth override (0 = workload default)")
		replicates = flag.Int("replicates", 1, "seed replicates per grid point")
		seed       = flag.Uint64("seed", 2023, "base seed (every scenario seed derives from it)")
		storePath  = flag.String("store", "", "JSONL result store path (empty = in-memory, no caching across runs)")
		jobs       = flag.Int("jobs", 0, "concurrent scenarios (0 = one per CPU)")
		workers    = flag.Int("workers", 0, "per-scenario engine workers (0 = auto: serial when jobs > 1)")
		shards     = flag.Int("shards", 0, "engine-pool shards (0 = derived from workers)")
		genWorkers = flag.Int("genworkers", 0, "graph-generation shards for streaming families (0/1 = serial, -1 = one per CPU); never changes records")
		noAgg      = flag.Bool("noagg", false, "skip the aggregate table")
		verbose    = flag.Bool("v", false, "stream per-scenario progress to stderr")
		metrics    = flag.Bool("metrics", false, "collect telemetry and print a metrics table to stderr (with -store, also write <store>.telemetry.jsonl)")
		telemetry  = flag.String("telemetry", "", "serve live introspection (metrics, progress, pprof) on ADDR for the run's duration; implies -metrics collection")
		frontier   = flag.Bool("frontier", false, "resilience-frontier mode: treat each scenario's adversary budget as a ceiling and bisect for the minimal breaking budget")
		compact    = flag.Bool("compact", false, "compact the -store file (drop torn/duplicate/invalid lines, rebuild the sidecar index), print what was reclaimed, and exit")
		strict     = flag.Bool("strict", false, "exit non-zero when any record has a failure or output_ok=false")
		maxRF      = flag.Float64("maxroundsfactor", 0, "cap engine round budgets at this multiple of the workload budget (0 = uncapped); changes records — hold constant per store")
	)
	flag.Parse()

	if *compact {
		if *storePath == "" {
			fatal(fmt.Errorf("-compact needs -store"))
		}
		cs, err := sweep.Compact(*storePath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sweep: compacted %s: dropped %d line(s) (%d invalid, %d duplicate), reclaimed %d bytes (%d -> %d), index %s\n",
			*storePath, cs.DroppedInvalid+cs.DroppedDuplicate, cs.DroppedInvalid, cs.DroppedDuplicate,
			cs.Reclaimed, cs.BytesIn, cs.BytesOut, sweep.IndexPath(*storePath))
		return
	}

	grid := sweep.Grid{
		Families:   splitList(*families),
		Engines:    splitList(*engines),
		Workloads:  splitList(*workloads),
		Noises:     splitList(*noises),
		Rounds:     *rounds,
		MsgBits:    *msgBits,
		Replicates: *replicates,
		BaseSeed:   *seed,
	}
	var err error
	if grid.Ns, err = splitInts(*ns); err != nil {
		fatal(err)
	}
	if grid.Params, err = splitInts(*deltas); err != nil {
		fatal(err)
	}
	if grid.Epsilons, err = splitFloats(*epss); err != nil {
		fatal(err)
	}

	cfg := cliConfig{
		storePath: *storePath,
		jobs:      *jobs, workers: *workers, shards: *shards, genWorkers: *genWorkers,
		agg: !*noAgg, verbose: *verbose, metrics: *metrics,
		telemetry: *telemetry,
		frontier:  *frontier, strict: *strict, maxRoundsFactor: *maxRF,
	}
	if err := run(grid, cfg); err != nil {
		fatal(err)
	}
}

// cliConfig carries the non-grid flags (everything that is not a
// scenario axis) through the run.
type cliConfig struct {
	storePath                         string
	jobs, workers, shards, genWorkers int
	agg, verbose, metrics             bool
	telemetry                         string
	frontier, strict                  bool
	maxRoundsFactor                   float64
}

// telemetryPath is the JSONL telemetry artifact written beside the
// result store: results.jsonl -> results.telemetry.jsonl.
func telemetryPath(storePath string) string {
	return strings.TrimSuffix(storePath, ".jsonl") + ".telemetry.jsonl"
}

func run(grid sweep.Grid, cfg cliConfig) error {
	scenarios, err := grid.Expand()
	if err != nil {
		return err
	}

	store := sweep.NewMemStore()
	if cfg.storePath != "" {
		if store, err = sweep.Open(cfg.storePath); err != nil {
			return err
		}
		defer store.Close()
		if d := store.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "sweep: store %s: dropped %d invalid line(s)\n", cfg.storePath, d)
		}
	}

	if cfg.frontier {
		return runFrontier(scenarios, store, cfg)
	}

	artifacts := sim.NewCache()
	opt := sweep.Options{Jobs: cfg.jobs, Workers: cfg.workers, Shards: cfg.shards, GenWorkers: cfg.genWorkers, Artifacts: artifacts, MaxRoundsFactor: cfg.maxRoundsFactor}
	var reg *obs.Registry
	if cfg.metrics || cfg.telemetry != "" {
		reg = obs.NewRegistry()
		opt.Metrics = reg
	}
	progress := obs.NewProgress(len(scenarios))
	if cfg.telemetry != "" {
		srv, err := obs.Serve(cfg.telemetry, reg, progress)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: telemetry listening on http://%s\n", srv.Addr())
	}
	opt.Progress = func(ev sweep.Event) {
		progress.Observe(ev.Cached, ev.Err != nil)
		if !cfg.verbose {
			return
		}
		status := "ran"
		switch {
		case ev.Err != nil:
			status = "FAILED: " + ev.Err.Error()
		case ev.Cached:
			status = "cached"
		}
		sc := ev.Record.Spec
		fmt.Fprintf(os.Stderr, "[%d/%d] %s %s/%s/%s n=%d param=%d eps=%g rep=%d: %s\n",
			ev.Done, ev.Total, ev.Record.Hash, sc.Workload, sc.Engine, sc.Family,
			sc.N, sc.Param, sc.Epsilon, sc.Replicate, status)
	}

	records, stats, runErr := sweep.Run(scenarios, store, opt)
	fmt.Fprintf(os.Stderr, "sweep: %s\n", sweep.Summary(stats, artifacts.Stats()))
	if reg != nil {
		fmt.Fprintln(os.Stderr, "sweep: metrics:")
		if err := obs.WriteSummary(os.Stderr, reg); err != nil {
			return err
		}
		if cfg.storePath != "" {
			f, err := os.Create(telemetryPath(cfg.storePath))
			if err != nil {
				return err
			}
			meta := map[string]any{"store": cfg.storePath, "stats": stats.String(), "progress": progress.Snapshot()}
			if werr := obs.WriteJSONL(f, meta, reg); werr == nil {
				werr = f.Close()
				if werr != nil {
					return werr
				}
			} else {
				f.Close()
				return werr
			}
			fmt.Fprintf(os.Stderr, "sweep: telemetry written to %s\n", telemetryPath(cfg.storePath))
		}
	}

	if cfg.agg {
		var ok []sweep.Record
		for _, r := range records {
			if r.Hash != "" {
				ok = append(ok, r)
			}
		}
		printAggregate(os.Stdout, sweep.Aggregate(ok))
	}
	if cfg.strict {
		if err := strictErr(records); err != nil {
			runErr = errors.Join(runErr, err)
		}
	}
	return runErr
}

// strictErr scans a batch's records for the -strict failure conditions:
// a recorded protocol failure, or output verification returning false.
func strictErr(records []sweep.Record) error {
	var failures []error
	for _, r := range records {
		if r.Hash == "" {
			continue // scenario error, already in runErr
		}
		if r.Broken() {
			failures = append(failures, fmt.Errorf("strict: %s: %w", r.Hash, r.BrokenError()))
			continue
		}
		if r.Counters.OutputOK != nil && !*r.Counters.OutputOK {
			failures = append(failures, fmt.Errorf("strict: %s: output verification failed", r.Hash))
		}
	}
	return errors.Join(failures...)
}

// runFrontier is the -frontier mode: every expanded scenario's
// adversary budget is a ceiling; bisect for the minimal breaking
// budget, all probes served through the store.
func runFrontier(scenarios []sweep.Scenario, store *sweep.Store, cfg cliConfig) error {
	// Frontier probes run one at a time, so each gets the whole machine
	// (mirroring the batch scheduler's jobs=1 behavior).
	workers := cfg.workers
	if workers == 0 {
		workers = engine.AutoWorkers
	}
	opt := sweep.FrontierOptions{
		Exec: sweep.ExecOptions{
			Workers:         workers,
			Shards:          cfg.shards,
			GenWorkers:      cfg.genWorkers,
			Artifacts:       sim.NewCache(),
			MaxRoundsFactor: cfg.maxRoundsFactor,
		},
	}
	if cfg.verbose {
		opt.Progress = func(p sweep.FrontierProbe) {
			status := "ran"
			if p.Cached {
				status = "cached"
			}
			outcome := "ok"
			if p.Broken {
				outcome = "BROKEN"
			}
			fmt.Fprintf(os.Stderr, "frontier: scenario %d budget %d: %s (%s)\n", p.Scenario, p.Budget, outcome, status)
		}
	}
	results, err := sweep.FrontierSearch(scenarios, store, opt)
	var probes, cached, ran int
	for _, r := range results {
		probes += r.Probes
		cached += r.Cached
		ran += r.Ran
	}
	fmt.Fprintf(os.Stderr, "sweep: frontier: scenarios=%d probes=%d cached=%d ran=%d\n",
		len(results), probes, cached, ran)
	printFrontier(os.Stdout, results)
	// -strict adds nothing here: broken probes are the point of the
	// search, and a search error already fails the run below.
	return err
}

func printFrontier(w *os.File, results []sweep.FrontierResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tengine\tfamily\tn\tparam\tstrategy\tmax_budget\tbreaking\tprobes\tcached\tran")
	for _, r := range results {
		sc := r.Scenario
		breaking := strconv.Itoa(r.Breaking)
		if r.Unbroken() {
			breaking = "-1" // unbroken up to the ceiling
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\t%d\t%s\t%d\t%d\t%d\n",
			sc.Workload, sc.Engine, sc.Family, sc.N, sc.Param,
			r.Strategy, r.MaxBudget, breaking, r.Probes, r.Cached, r.Ran)
	}
	tw.Flush()
}

func printAggregate(w *os.File, groups []sweep.Group) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tengine\tfamily\tn\tparam\teps\tnoise\treps\tbeep rounds (mean)\tbeeps/sim round (mean)\tmsg err (mean)\tmem err (mean)\tenergy (mean)\twall ms (p50/p90)\tbuild ms (mean)")
	for _, g := range groups {
		k := g.Key
		n := k.N
		if n == 0 && len(g.Records) > 0 {
			n = g.Records[0].Graph.N // derived-N families: report the realized size
		}
		noiseCol := k.Noise
		if noiseCol == "" {
			noiseCol = "symmetric"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%.2f\t%s\t%d\t%.0f\t%.0f\t%.4f\t%.4f\t%.0f\t%.0f/%.0f\t%.2f\n",
			k.Workload, k.Engine, k.Family, n, k.Param, k.Epsilon, noiseCol,
			g.BeepRounds.Count, g.BeepRounds.Mean, g.PerSimRound.Mean,
			g.MsgErr.Mean, g.MemErr.Mean, g.Beeps.Mean, g.WallMS.P50, g.WallMS.P90,
			g.BuildMS.Mean)
	}
	tw.Flush()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad float %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
