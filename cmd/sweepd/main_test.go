package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// testGrid is the e2e grid: small enough to run in seconds, wide enough
// to cross engines and workloads (8 scenarios). mis carries an output
// validity check (output_ok lands on its records); noisy gossip is
// unverified by design (output_ok nil).
const testGrid = `{"families":["regular"],"ns":[14],"params":[3],"epsilons":[0.1],"engines":["alg1","tdma"],"workloads":["gossip","mis"],"rounds":2,"replicates":2,"base_seed":2023}`

func testScenarios(t *testing.T) []sweep.Scenario {
	t.Helper()
	var gr gridRequest
	if err := json.Unmarshal([]byte(testGrid), &gr); err != nil {
		t.Fatal(err)
	}
	scenarios, err := gr.grid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scenarios
}

// newTestDaemon assembles the full sweepd stack — indexed store,
// service, HTTP surface — on an httptest listener.
func newTestDaemon(t *testing.T, opts sweep.ServiceOptions) (*httptest.Server, *obs.Registry) {
	t.Helper()
	store, err := sweep.OpenIndexed(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	if opts.Artifacts == nil {
		opts.Artifacts = sim.NewCache()
	}
	svc := sweep.NewService(store, opts)
	ts := httptest.NewServer(newServer(store, svc, reg))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
		store.Close()
	})
	return ts, reg
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// submitGrid posts body to /grids and returns the decoded handle.
func submitGrid(t *testing.T, base, body string) submitResponse {
	t.Helper()
	resp, err := http.Post(base+"/grids", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /grids: %s: %s", resp.Status, b)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitJob polls the job status endpoint until Complete.
func waitJob(t *testing.T, base, statusPath string) sweep.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st sweep.JobStatus
		getJSON(t, base+statusPath, &st)
		if st.Complete {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not complete: %+v", statusPath, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metric reads one counter from the /metrics snapshot.
func metric(t *testing.T, base, name string) int64 {
	t.Helper()
	var snap []obs.Metric
	getJSON(t, base+"/metrics", &snap)
	for _, m := range snap {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// decodeRecords parses a JSONL body of records, revalidating hashes.
func decodeRecords(t *testing.T, r io.Reader) []sweep.Record {
	t.Helper()
	var recs []sweep.Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		rec, err := sweep.DecodeRecord(sc.Bytes())
		if err != nil {
			t.Fatalf("bad record line: %v", err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// canonLine is the repo's byte-identity form: timing fields zeroed.
func canonLine(t *testing.T, rec sweep.Record) []byte {
	t.Helper()
	rec.WallNanos, rec.BuildNanos = 0, 0
	var buf bytes.Buffer
	if err := sweep.EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepdEndToEnd drives the full HTTP surface: submit a grid, poll
// to completion, and require the served records byte-identical to a
// cmd/sweep-style batch Run over the same scenarios; then point reads,
// the aggregate, and a full-cache-hit resubmission with zero new
// executions.
func TestSweepdEndToEnd(t *testing.T) {
	ts, _ := newTestDaemon(t, sweep.ServiceOptions{Jobs: 2})
	base := ts.URL

	// The reference: the batch path over the same scenarios.
	refStore, err := sweep.Open(filepath.Join(t.TempDir(), "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	want, _, err := sweep.Run(testScenarios(t), refStore, sweep.Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}

	sr := submitGrid(t, base, testGrid)
	if sr.Total != len(want) {
		t.Fatalf("submitted total=%d, want %d", sr.Total, len(want))
	}
	st := waitJob(t, base, sr.Status)
	if st.Failed != 0 || st.Done != st.Total {
		t.Fatalf("job finished unhealthy: %+v", st)
	}

	// Byte identity, slot for slot, HTTP against batch.
	resp, err := http.Get(base + sr.Records)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeRecords(t, resp.Body)
	resp.Body.Close()
	if len(got) != len(want) {
		t.Fatalf("served %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if g, w := canonLine(t, got[i]), canonLine(t, want[i]); !bytes.Equal(g, w) {
			t.Fatalf("slot %d differs between sweepd and batch:\n http: %s\n  run: %s", i, g, w)
		}
	}
	verified := 0
	for _, rec := range got {
		if rec.Counters.OutputOK != nil {
			if !*rec.Counters.OutputOK {
				t.Fatalf("record %s failed output verification", rec.Hash)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("no record carried an output verification")
	}

	// Point read by hash, and a miss.
	var one sweep.Record
	getJSON(t, base+"/records/"+want[0].Hash, &one)
	if !bytes.Equal(canonLine(t, one), canonLine(t, want[0])) {
		t.Fatal("point read differs")
	}
	if resp, err := http.Get(base + "/records/deadbeef"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing hash: %s, want 404", resp.Status)
	}

	// The store-wide streams.
	if resp, err := http.Get(base + "/records"); err != nil {
		t.Fatal(err)
	} else {
		all := decodeRecords(t, resp.Body)
		resp.Body.Close()
		if len(all) != len(want) {
			t.Fatalf("/records served %d, want %d", len(all), len(want))
		}
	}
	var groups []sweep.Group
	getJSON(t, base+"/aggregate", &groups)
	if len(groups) == 0 {
		t.Fatal("/aggregate served no groups")
	}

	// The event feed replays in full after completion.
	if resp, err := http.Get(base + sr.Events); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if lines := bytes.Count(body, []byte("\n")); lines != st.Total {
			t.Fatalf("event replay has %d lines, want %d", lines, st.Total)
		}
	}

	// Resubmission: a full cache hit — zero new executions, all slots
	// cached, byte-identical records again.
	execsBefore := metric(t, base, "sweep.service.executions")
	sr2 := submitGrid(t, base, testGrid)
	st2 := waitJob(t, base, sr2.Status)
	if st2.Cached != st2.Total || st2.Ran != 0 {
		t.Fatalf("resubmission not fully cached: %+v", st2)
	}
	if execsAfter := metric(t, base, "sweep.service.executions"); execsAfter != execsBefore {
		t.Fatalf("resubmission executed: %d -> %d", execsBefore, execsAfter)
	}

	var jobs map[string][]string
	getJSON(t, base+"/jobs", &jobs)
	if len(jobs["jobs"]) != 2 {
		t.Fatalf("job listing: %v", jobs)
	}
}

// waitForFlightWaiter polls goroutine stacks until two goroutines sit
// inside FlightGroup.Do — the owner (blocked in the test's ExecuteFunc)
// plus one waiter — so a release at that point deterministically
// exercises the share path.
func waitForFlightWaiter(t *testing.T) {
	t.Helper()
	buf := make([]byte, 1<<22)
	deadline := time.Now().Add(30 * time.Second)
	for {
		stacks := string(buf[:runtime.Stack(buf, true)])
		if strings.Count(stacks, "FlightGroup") >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("second submission never joined the flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSweepdConcurrentSubmissionsSingleflight is the acceptance
// scenario: two concurrent submissions of the same grid execute each
// scenario exactly once, asserted via the obs dedup counter. The
// execution is blocked (injected ExecuteFunc) until the second
// submission has provably joined the in-flight execution.
func TestSweepdConcurrentSubmissionsSingleflight(t *testing.T) {
	oneScenario := `{"families":["regular"],"ns":[14],"params":[3],"epsilons":[0.1],"engines":["alg1"],"workloads":["gossip"],"rounds":2,"replicates":1,"base_seed":2023}`
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	ts, reg := newTestDaemon(t, sweep.ServiceOptions{
		Jobs: 2,
		ExecuteFunc: func(sc sweep.Scenario, _ sweep.ExecOptions) (sweep.Record, error) {
			started <- struct{}{}
			<-release
			return sweep.Record{Hash: sc.Hash(), Spec: sc}, nil
		},
	})
	base := ts.URL

	sr1 := submitGrid(t, base, oneScenario)
	<-started // the one execution is in flight and blocked
	sr2 := submitGrid(t, base, oneScenario)
	waitForFlightWaiter(t)
	close(release)

	st1, st2 := waitJob(t, base, sr1.Status), waitJob(t, base, sr2.Status)
	if st1.Ran+st2.Ran != 1 || st1.Cached+st2.Cached != 1 {
		t.Fatalf("exactly-once violated: job1=%+v job2=%+v", st1, st2)
	}
	if n := reg.Counter("sweep.service.executions").Value(); n != 1 {
		t.Fatalf("executions=%d, want exactly 1", n)
	}
	if n := reg.Counter("sweep.service.singleflight_hits").Value(); n != 1 {
		t.Fatalf("singleflight_hits=%d, want 1", n)
	}
	if len(started) != 0 {
		t.Fatal("a second execution started")
	}
}

// TestSweepdBackpressureAndErrors covers the failure surface: 429 under
// backpressure, 400 on bad grids, 404 on unknown jobs, 409 reading
// records of a running job.
func TestSweepdBackpressureAndErrors(t *testing.T) {
	release := make(chan struct{})
	ts, _ := newTestDaemon(t, sweep.ServiceOptions{
		Jobs: 1, MaxPending: 1,
		ExecuteFunc: func(sc sweep.Scenario, _ sweep.ExecOptions) (sweep.Record, error) {
			<-release
			return sweep.Record{Hash: sc.Hash(), Spec: sc}, nil
		},
	})
	base := ts.URL
	oneScenario := `{"families":["regular"],"ns":[14],"params":[3],"epsilons":[0.1],"engines":["alg1"],"workloads":["gossip"],"rounds":2,"replicates":1,"base_seed":2023}`
	otherScenario := strings.Replace(oneScenario, `"base_seed":2023`, `"base_seed":2024`, 1)

	sr := submitGrid(t, base, oneScenario)

	// Queue full: the next submission bounces with 429.
	resp, err := http.Post(base+"/grids", "application/json", strings.NewReader(otherScenario))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: %s, want 429", resp.Status)
	}

	// Records of a running job: 409.
	resp, err = http.Get(base + sr.Records)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running-job records: %s, want 409", resp.Status)
	}

	// Bad grid bodies: 400.
	for _, body := range []string{`{"families":["nope"]}`, `{"unknown_field":1}`, `not json`} {
		resp, err := http.Post(base+"/grids", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad grid %q: %s, want 400", body, resp.Status)
		}
	}

	// Unknown job: 404.
	resp, err = http.Get(base + "/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}

	close(release)
	waitJob(t, base, sr.Status)
}

// TestSweepdHealthz: liveness endpoint.
func TestSweepdHealthz(t *testing.T) {
	ts, _ := newTestDaemon(t, sweep.ServiceOptions{Jobs: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %s %q", resp.Status, body)
	}
}
