package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// server is the sweepd HTTP surface over one StoreEngine and one
// long-lived sweep.Service. All endpoints are JSON; list-shaped
// responses are JSONL so they stream.
//
//	GET  /healthz             liveness
//	GET  /records             every stored record (JSONL)
//	GET  /records/{hash}      one record by content hash
//	GET  /aggregate           sweep.Aggregate over the whole store
//	POST /grids               submit a grid (JSON body) -> job handle
//	GET  /jobs/{id}           job progress snapshot
//	GET  /jobs/{id}/events    streaming progress (NDJSON, one line/event)
//	GET  /jobs/{id}/records   completed job records (JSONL)
//	GET  /metrics, /progress, /debug/...   obs.Handler plumbing
type server struct {
	store    sweep.StoreEngine
	svc      *sweep.Service
	progress *obs.Progress
	mux      *http.ServeMux

	mu    sync.Mutex
	feeds map[string]*jobFeed
}

// newServer wires the HTTP surface. reg may be nil (telemetry off —
// /metrics then serves an empty snapshot, the obs nil contract).
func newServer(store sweep.StoreEngine, svc *sweep.Service, reg *obs.Registry) *server {
	s := &server{store: store, svc: svc, progress: obs.NewProgress(0), mux: http.NewServeMux(), feeds: make(map[string]*jobFeed)}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /records", s.handleRecords)
	s.mux.HandleFunc("GET /records/{hash}", s.handleRecord)
	s.mux.HandleFunc("GET /aggregate", s.handleAggregate)
	s.mux.HandleFunc("POST /grids", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /jobs/{id}/records", s.handleJobRecords)
	s.mux.HandleFunc("GET /jobs", s.handleJobs)
	// The telemetry plumbing rides the same listener: the obs endpoints
	// are one mountable handler shared with the -telemetry CLIs.
	obsHandler := obs.Handler(reg, s.progress)
	s.mux.Handle("GET /metrics", obsHandler)
	s.mux.Handle("GET /progress", obsHandler)
	s.mux.Handle("GET /debug/", obsHandler)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleRecords streams every stored record as JSONL, first-seen order.
func (s *server) handleRecords(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, rec := range s.store.Records() {
		if err := sweep.EncodeJSONL(w, rec); err != nil {
			return // client went away
		}
	}
}

// handleRecord serves one record by content hash: the interactive-read
// path, a single index lookup plus (for the indexed engine) one seek.
func (s *server) handleRecord(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, ok := s.store.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no record for hash %q", hash))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleAggregate serves the group-by aggregation of the whole store.
func (s *server) handleAggregate(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sweep.Aggregate(s.store.Records()))
}

// gridRequest is the POST /grids body: sweep.Grid's axes in JSON
// clothing. Axis defaults match Grid.Expand.
type gridRequest struct {
	Families   []string  `json:"families,omitempty"`
	Ns         []int     `json:"ns,omitempty"`
	Params     []int     `json:"params,omitempty"`
	Epsilons   []float64 `json:"epsilons,omitempty"`
	Engines    []string  `json:"engines,omitempty"`
	Workloads  []string  `json:"workloads,omitempty"`
	Noises     []string  `json:"noises,omitempty"`
	Rounds     int       `json:"rounds,omitempty"`
	MsgBits    int       `json:"msg_bits,omitempty"`
	Replicates int       `json:"replicates,omitempty"`
	BaseSeed   uint64    `json:"base_seed,omitempty"`
}

func (gr gridRequest) grid() sweep.Grid {
	return sweep.Grid{
		Families: gr.Families, Ns: gr.Ns, Params: gr.Params, Epsilons: gr.Epsilons,
		Engines: gr.Engines, Workloads: gr.Workloads, Noises: gr.Noises,
		Rounds: gr.Rounds, MsgBits: gr.MsgBits, Replicates: gr.Replicates, BaseSeed: gr.BaseSeed,
	}
}

// submitResponse is the POST /grids reply: the job handle and where to
// follow it.
type submitResponse struct {
	Job     string `json:"job"`
	Total   int    `json:"total"`
	Unique  int    `json:"unique"`
	Status  string `json:"status"`
	Events  string `json:"events"`
	Records string `json:"records"`
}

// handleSubmit expands a grid and submits it to the service: 202 with a
// job handle, 400 on a bad grid, 429 under backpressure.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var gr gridRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&gr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad grid body: %w", err))
		return
	}
	scenarios, err := gr.grid().Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.svc.Submit(scenarios)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, sweep.ErrBackpressure) {
			status = http.StatusTooManyRequests
		} else if errors.Is(err, sweep.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	s.progress.Expect(len(scenarios))
	// The server — not any one HTTP subscriber — drains the job's event
	// channel into a replayable per-job feed, so any number of /events
	// streams can follow the job (each from the start) and the global
	// /progress tracker advances whether or not anyone is watching.
	feed := newJobFeed()
	s.mu.Lock()
	s.feeds[job.ID()] = feed
	s.mu.Unlock()
	go func() {
		for ev := range job.Events() {
			s.progress.Observe(ev.Cached, ev.Err != nil)
			je := jobEvent{Index: ev.Index, Done: ev.Done, Total: ev.Total, Cached: ev.Cached, Hash: ev.Record.Hash}
			if ev.Err != nil {
				je.Error = ev.Err.Error()
			}
			feed.append(je)
		}
		feed.finish()
	}()
	st := job.Status()
	writeJSON(w, http.StatusAccepted, submitResponse{
		Job: job.ID(), Total: st.Total, Unique: st.Unique, Status: "/jobs/" + job.ID(),
		Events: "/jobs/" + job.ID() + "/events", Records: "/jobs/" + job.ID() + "/records",
	})
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*sweep.Job, bool) {
	id := r.PathValue("id")
	job, ok := s.svc.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
	}
	return job, ok
}

// handleJob serves a progress snapshot: the polling path.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleJobs lists accepted job IDs in submission order.
func (s *server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"jobs": s.svc.JobIDs()})
}

// jobEvent is one NDJSON progress line on /jobs/{id}/events.
type jobEvent struct {
	Index  int    `json:"index"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Cached bool   `json:"cached"`
	Hash   string `json:"hash,omitempty"`
	Error  string `json:"error,omitempty"`
}

// jobFeed is a replayable event log: the server appends as the job
// progresses, any number of subscribers read from any position, and a
// condition broadcast wakes blocked readers on every append (and on
// subscriber cancellation, via context.AfterFunc).
type jobFeed struct {
	mu    sync.Mutex
	cond  *sync.Cond
	lines []jobEvent
	done  bool
}

func newJobFeed() *jobFeed {
	f := &jobFeed{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *jobFeed) append(ev jobEvent) {
	f.mu.Lock()
	f.lines = append(f.lines, ev)
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *jobFeed) finish() {
	f.mu.Lock()
	f.done = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// next blocks until line i exists, the feed is complete, or cancelled
// reports true; ok is false when no line i will ever exist.
func (f *jobFeed) next(i int, cancelled func() bool) (jobEvent, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if i < len(f.lines) {
			return f.lines[i], true
		}
		if f.done || cancelled() {
			return jobEvent{}, false
		}
		f.cond.Wait()
	}
}

// handleJobEvents streams the job's progress as NDJSON, one line per
// completed scenario, flushed as it lands, until the job finishes (or
// the client disconnects). Every subscriber replays from the start —
// the feed is a log, not a queue.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	feed := s.feeds[job.ID()]
	s.mu.Unlock()
	if feed == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no event feed for job %q", job.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	stop := context.AfterFunc(ctx, feed.cond.Broadcast)
	defer stop()
	for i := 0; ; i++ {
		ev, ok := feed.next(i, func() bool { return ctx.Err() != nil })
		if !ok {
			return
		}
		if err := sweep.EncodeJSONL(w, ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleJobRecords serves a completed job's records as JSONL, indexed
// like the submission; 409 while the job is still running.
func (s *server) handleJobRecords(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	st := job.Status()
	if !st.Complete {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still running (%d/%d)", st.ID, st.Done, st.Total))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, rec := range job.Records() {
		if err := sweep.EncodeJSONL(w, rec); err != nil {
			return
		}
	}
}
