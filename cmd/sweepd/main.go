// Command sweepd is the sweep-as-a-service daemon: a long-running HTTP
// server over one content-addressed result store. It serves record and
// aggregate reads at interactive latency (the store opens through its
// sidecar offset index — sweep.IndexedStore — so lookups are disk seeks,
// not a full corpus load), accepts grid submissions that execute through
// the resident sweep.Service scheduler with streaming progress and
// bounded backpressure, and dedupes identical in-flight scenarios across
// concurrent requests by content hash (request-level singleflight).
// Determinism makes the whole surface trivially cacheable: a record is a
// pure function of its spec hash, so responses never go stale and
// identical grids submitted twice cost one execution and N-1 lookups.
//
// Usage:
//
//	sweepd -store results.jsonl -addr localhost:8344
//
// Submit a grid and follow it:
//
//	curl -s -X POST localhost:8344/grids -d '{
//	  "families": ["regular"], "ns": [16, 24], "params": [2],
//	  "epsilons": [0, 0.1], "engines": ["alg1", "tdma"],
//	  "workloads": ["gossip"], "rounds": 2, "base_seed": 7}'
//	curl -s localhost:8344/jobs/j1               # poll progress
//	curl -sN localhost:8344/jobs/j1/events       # or stream it (NDJSON)
//	curl -s localhost:8344/jobs/j1/records       # completed records
//	curl -s localhost:8344/records/<hash>        # point read
//	curl -s localhost:8344/aggregate             # whole-store aggregate
//	curl -s localhost:8344/metrics               # obs registry snapshot
//
// Records served or produced here are byte-identical to cmd/sweep batch
// runs over the same specs — the store format, hashes, and execution
// path are shared; only the scheduling differs. -compact rewrites the
// store (dropping torn/duplicate/invalid lines) and installs a fresh
// index before serving.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	var (
		storePath  = flag.String("store", "", "JSONL result store path (required; created if absent)")
		addr       = flag.String("addr", "localhost:8344", "HTTP listen address")
		jobs       = flag.Int("jobs", 0, "concurrent scenario executions (0 = one per CPU)")
		workers    = flag.Int("workers", 0, "per-scenario engine workers (0 = auto: serial when jobs > 1)")
		shards     = flag.Int("shards", 0, "engine-pool shards (0 = derived from workers)")
		genWorkers = flag.Int("genworkers", 0, "graph-generation shards for streaming families")
		maxPending = flag.Int("maxpending", sweep.DefaultMaxPending, "max queued+running scenarios before submissions get 429 (backpressure bound)")
		maxRF      = flag.Float64("maxroundsfactor", 0, "round-budget guard multiple (0 = uncapped); changes records — hold constant per store")
		compact    = flag.Bool("compact", false, "compact the store (drop torn/duplicate/invalid lines) and rebuild its index before serving")
	)
	flag.Parse()
	if *storePath == "" {
		fatal(fmt.Errorf("-store is required"))
	}

	if *compact {
		if _, err := os.Stat(*storePath); err == nil {
			cs, err := sweep.Compact(*storePath)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "sweepd: compacted %s: %s\n", *storePath, cs)
		}
	}
	store, err := sweep.OpenIndexed(*storePath)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	if d := store.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: store %s: dropped %d invalid line(s) during index rebuild\n", *storePath, d)
	}

	reg := obs.NewRegistry()
	svc := sweep.NewService(store, sweep.ServiceOptions{
		Jobs: *jobs, Workers: *workers, Shards: *shards, GenWorkers: *genWorkers,
		MaxPending: *maxPending, MaxRoundsFactor: *maxRF,
		Artifacts: sim.NewCache(), Metrics: reg,
	})
	defer svc.Close()

	srv := newServer(store, svc, reg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweepd: store %s (%d records), serving on http://%s\n",
		*storePath, store.Len(), ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	go func() {
		// Orderly shutdown on SIGINT/SIGTERM: stop the listener so the
		// deferred service drain and store close (index sidecar rewrite)
		// run instead of dying mid-append.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		httpSrv.Close()
	}()
	if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweepd: shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweepd:", err)
	os.Exit(1)
}
