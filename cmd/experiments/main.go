// Command experiments regenerates every table and figure of the
// reproduction (DESIGN.md §3) and prints them as aligned text.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only T4,T9] [-workers W] [-shards S] [-json FILE]
//	            [-metrics] [-telemetry ADDR]
//
// -workers parallelizes the simulators' per-round phases (0 = one worker
// per CPU, 1 = serial); every table is bit-identical for every setting.
// -json additionally emits each table as one JSONL line ("-" = stdout),
// in the same framing the sweep result store uses. -metrics collects the
// deterministic telemetry registry across the suite and prints it as a
// table on stderr; -telemetry ADDR serves it live over HTTP alongside
// suite progress (one unit per experiment). Telemetry is observation-only
// — every table is byte-identical with it on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sweep"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "run reduced-size experiments")
		seed      = flag.Uint64("seed", 2023, "experiment seed")
		only      = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		workers   = flag.Int("workers", 0, "simulation workers: 0 = one per CPU, 1 = serial")
		shards    = flag.Int("shards", 0, "worker-pool shards (0 = derived from workers)")
		jsonPath  = flag.String("json", "", "also emit tables as JSONL to this file (\"-\" = stdout)")
		metrics   = flag.Bool("metrics", false, "collect telemetry and print a metrics table to stderr")
		telemetry = flag.String("telemetry", "", "serve live introspection (metrics, progress, pprof) on ADDR; implies -metrics collection")
	)
	flag.Parse()
	if err := run(*quick, *seed, *only, *workers, *shards, *jsonPath, *metrics, *telemetry); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// jsonTable is the machine-readable rendering of one experiment: the
// table plus run metadata, one JSONL line per experiment.
type jsonTable struct {
	*experiments.Table
	Seed     uint64 `json:"seed"`
	Quick    bool   `json:"quick"`
	ElapsedM int64  `json:"elapsed_ms"`
}

func run(quick bool, seed uint64, only string, workers, shards int, jsonPath string, metrics bool, telemetry string) error {
	cfg := experiments.Config{Quick: quick, Seed: seed, Workers: workers, Shards: shards}
	if metrics || telemetry != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	known := make(map[string]bool)
	var ids []string
	for _, e := range experiments.All() {
		known[e.ID] = true
		ids = append(ids, e.ID)
	}
	selected := make(map[string]bool)
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id == "" {
			continue
		}
		id = strings.ToUpper(id)
		if !known[id] {
			return fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
		}
		selected[id] = true
	}
	var jsonOut io.Writer
	if jsonPath == "-" {
		jsonOut = os.Stdout
	} else if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonOut = f
	}
	total := 0
	for _, e := range experiments.All() {
		if len(selected) == 0 || selected[e.ID] {
			total++
		}
	}
	progress := obs.NewProgress(total)
	if telemetry != "" {
		srv, err := obs.Serve(telemetry, cfg.Metrics, progress)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: telemetry listening on http://%s\n", srv.Addr())
	}
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			progress.Observe(false, true)
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		progress.Observe(false, false)
		elapsed := time.Since(start)
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		if jsonOut != nil {
			rec := jsonTable{Table: tbl, Seed: seed, Quick: quick, ElapsedM: elapsed.Milliseconds()}
			if err := sweep.EncodeJSONL(jsonOut, rec); err != nil {
				return err
			}
		}
	}
	if cfg.Metrics != nil {
		fmt.Fprintln(os.Stderr, "experiments: metrics:")
		if err := obs.WriteSummary(os.Stderr, cfg.Metrics); err != nil {
			return err
		}
	}
	return nil
}
