// Command experiments regenerates every table and figure of the
// reproduction (DESIGN.md §3) and prints them as aligned text.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only T4,T9] [-workers W] [-shards S]
//
// -workers parallelizes the simulators' per-round phases (0 = one worker
// per CPU, 1 = serial); every table is bit-identical for every setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "run reduced-size experiments")
		seed    = flag.Uint64("seed", 2023, "experiment seed")
		only    = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		workers = flag.Int("workers", 0, "simulation workers: 0 = one per CPU, 1 = serial")
		shards  = flag.Int("shards", 0, "worker-pool shards (0 = derived from workers)")
	)
	flag.Parse()
	if err := run(*quick, *seed, *only, *workers, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(quick bool, seed uint64, only string, workers, shards int) error {
	cfg := experiments.Config{Quick: quick, Seed: seed, Workers: workers, Shards: shards}
	selected := make(map[string]bool)
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToUpper(id)] = true
		}
	}
	for _, e := range experiments.All() {
		if len(selected) > 0 && !selected[e.ID] {
			continue
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(tbl.Render())
		fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
