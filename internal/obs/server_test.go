package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep.store.hits").Add(9)
	p := NewProgress(10)
	p.Observe(false, false)

	s, err := Serve("127.0.0.1:0", r, p)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	var metrics []Metric
	if err := json.Unmarshal(get(t, base+"/metrics"), &metrics); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if len(metrics) != 1 || metrics[0].Name != "sweep.store.hits" || metrics[0].Value != 9 {
		t.Fatalf("/metrics = %+v", metrics)
	}

	var prog ProgressSnapshot
	if err := json.Unmarshal(get(t, base+"/progress"), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog.Total != 10 || prog.Done != 1 || prog.Ran != 1 {
		t.Fatalf("/progress = %+v", prog)
	}

	// expvar carries the published registry under "telemetry".
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["telemetry"]; !ok {
		t.Fatalf("/debug/vars missing telemetry key; got keys %v", keys(vars))
	}

	// pprof index answers (profiles themselves are exercised elsewhere).
	if body := get(t, base+"/debug/pprof/"); len(body) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
	if body := get(t, base+"/"); len(body) == 0 {
		t.Fatal("index empty")
	}

	// A second Serve must not panic on duplicate expvar publication and
	// must re-point "telemetry" at the new registry.
	r2 := NewRegistry()
	r2.Counter("other").Inc()
	s2, err := Serve("127.0.0.1:0", r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var metrics2 []Metric
	if err := json.Unmarshal(get(t, "http://"+s2.Addr()+"/metrics"), &metrics2); err != nil {
		t.Fatal(err)
	}
	if len(metrics2) != 1 || metrics2[0].Name != "other" {
		t.Fatalf("second server /metrics = %+v", metrics2)
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", NewRegistry(), nil); err == nil {
		t.Fatal("expected listener error for invalid address")
	}
}
