package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// WriteSummary renders the registry's metrics as an aligned end-of-run
// table, sorted by name. Counters, gauges, and funcs print one value;
// histograms and timers print count, mean, and the approximate p50/p99.
// Timer values render as durations. A nil registry writes nothing.
func WriteSummary(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tkind\tvalue\n")
	for _, m := range snap {
		switch m.Kind {
		case "counter", "gauge", "func":
			fmt.Fprintf(tw, "%s\t%s\t%d\n", m.Name, m.Kind, m.Value)
		case "timer":
			fmt.Fprintf(tw, "%s\t%s\tn=%d sum=%s mean=%s p50=%s p99=%s\n",
				m.Name, m.Kind, m.Count, nanos(m.Sum), nanos(mean(m)), nanos(m.P50), nanos(m.P99))
		default: // histogram
			fmt.Fprintf(tw, "%s\t%s\tn=%d sum=%d mean=%d p50=%d p99=%d\n",
				m.Name, m.Kind, m.Count, m.Sum, mean(m), m.P50, m.P99)
		}
	}
	return tw.Flush()
}

func mean(m Metric) int64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / m.Count
}

func nanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	}
	return d.String()
}

// WriteJSONL appends the registry snapshot to w as a single JSON line —
// the telemetry artifact format written beside the result store. The
// envelope carries an arbitrary caller header (run stats, cache stats)
// under "meta" and the sorted metric snapshot under "metrics", so one
// file accumulates one self-describing line per batch run.
func WriteJSONL(w io.Writer, meta any, r *Registry) error {
	line := struct {
		Meta    any      `json:"meta,omitempty"`
		Metrics []Metric `json:"metrics"`
	}{Meta: meta, Metrics: r.Snapshot()}
	buf, err := json.Marshal(line)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}
