package obs

import (
	"testing"
)

// The telemetry on/off guard pair: BenchmarkObsDisabledCounter measures
// the cost instrumented hot loops pay when telemetry is off (a nil
// check), BenchmarkObsEnabledCounter the atomic-add cost when on.
// scripts/bench.sh records both with -benchmem; the CI telemetry-guard
// step additionally runs TestDisabledPathOverheadBound, which fails the
// build if the disabled path regresses beyond a generous bound.

func BenchmarkObsDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatal("counter lost updates")
	}
}

func BenchmarkObsDisabledSpan(b *testing.B) {
	var r *Registry
	t := r.Timer("t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := t.Start()
		sp.Stop()
	}
}

func BenchmarkObsEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// TestDisabledPathOverheadBound is the ns-level half of the CI guard
// (the alloc half is TestDisabledPathZeroAlloc): a disabled counter add
// plus a disabled span must stay within a generous per-op bound. The
// true cost is ~1–2ns (two predictable nil checks); the bound is 50ns
// so only a real regression — an allocation, a time.Now on the nil
// path, accidental interface dispatch — trips it, not CI jitter.
func TestDisabledPathOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing bound not meaningful under -short")
	}
	var r *Registry
	c := r.Counter("c")
	tm := r.Timer("t")
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Add(1)
			sp := tm.Start()
			sp.Stop()
		}
	})
	const boundNs = 50
	if perOp := res.NsPerOp(); perOp > boundNs {
		t.Fatalf("disabled telemetry path costs %dns/op, bound %dns — the zero-overhead contract regressed", perOp, boundNs)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled telemetry path allocates %d/op, want 0", res.AllocsPerOp())
	}
}
