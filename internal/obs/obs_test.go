package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("resolving a counter name as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, -5} { // -5 clamps to 0
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 106 {
		t.Fatalf("count/sum = %d/%d, want 5/106", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot size = %d, want 1", len(snap))
	}
	m := snap[0]
	if m.Min != 0 || m.Max != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", m.Min, m.Max)
	}
	// Quantiles are power-of-two upper bounds: the 3rd of 5 samples (p50,
	// value 2) lands in bucket [2,4) -> 3; p99 covers 100 in [64,128) -> 127.
	if m.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", m.P50)
	}
	if m.P99 != 127 {
		t.Fatalf("p99 = %d, want 127", m.P99)
	}
}

func TestHistogramLargeSample(t *testing.T) {
	h := newHistogram()
	h.Observe(math.MaxInt64)
	if h.Count() != 1 || h.max.Load() != math.MaxInt64 {
		t.Fatal("max sample not recorded exactly")
	}
	if got := h.quantile(0.5); got != math.MaxInt64 {
		t.Fatalf("top-bucket quantile = %d, want MaxInt64", got)
	}
}

func TestTimerSpans(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	sp := tm.Start()
	sp.Stop()
	tm.Observe(5 * time.Millisecond)
	if tm.Count() != 2 {
		t.Fatalf("timer count = %d, want 2", tm.Count())
	}
	if tm.Sum() < (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("timer sum = %dns, want >= 5ms", tm.Sum())
	}
}

func TestFuncMetricReplaces(t *testing.T) {
	r := NewRegistry()
	r.Func("f", func() int64 { return 1 })
	r.Func("f", func() int64 { return 2 }) // re-register replaces
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("func metric = %+v, want value 2", snap)
	}
}

func TestSnapshotSortedAndTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Gauge("a").Set(1)
	r.Timer("m").Observe(time.Microsecond)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "a,m,z" {
		t.Fatalf("snapshot order = %v, want [a m z]", names)
	}
	if snap[0].Kind != "gauge" || snap[1].Kind != "timer" || snap[2].Kind != "counter" {
		t.Fatalf("snapshot kinds wrong: %+v", snap)
	}
}

// Nil handles are the disabled state: every method must be a safe no-op
// and every read must return zero.
func TestNilHandlesNoOp(t *testing.T) {
	var r *Registry
	c, g, h, tm := r.Counter("c"), r.Gauge("g"), r.Histogram("h"), r.Timer("t")
	if c != nil || g != nil || h != nil || tm != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(9)
	sp := tm.Start()
	sp.Stop()
	tm.Observe(time.Second)
	r.Func("f", func() int64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry must snapshot to nil")
	}
	var p *Progress
	p.Observe(false, false)
	if p.Snapshot() != (ProgressSnapshot{}) {
		t.Fatal("nil progress must snapshot to zero")
	}
}

// The zero-overhead contract from ISSUE 7 / DESIGN.md §2.15: the
// disabled (nil-handle) path must not allocate. AllocsPerRun is exact
// and deterministic, unlike ns/op, so this is the tier-1 guard; the
// ns-level bound lives in the benchmarks that scripts/bench.sh and the
// CI telemetry-guard step run.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var r *Registry
	c, h, tm := r.Counter("c"), r.Histogram("h"), r.Timer("t")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(7)
		sp := tm.Start()
		sp.Stop()
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates %.1f times per op, want 0", allocs)
	}
}

// The enabled path must not allocate either — handles are resolved once
// at construction; updates are pure atomics.
func TestEnabledPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c, h := r.Counter("c"), r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(33)
	})
	if allocs != 0 {
		t.Fatalf("enabled instrumentation path allocates %.1f times per op, want 0", allocs)
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared") // get-or-create race on one name
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Histogram("h").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestWriteSummary(t *testing.T) {
	r := NewRegistry()
	r.Counter("beep.rounds").Add(128)
	r.Timer("core.phase.decode_nanos").Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := WriteSummary(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"metric", "beep.rounds", "128", "core.phase.decode_nanos", "n=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
	// Disabled registry renders nothing.
	sb.Reset()
	if err := WriteSummary(&sb, nil); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry summary: err=%v out=%q", err, sb.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(3)
	var sb strings.Builder
	meta := map[string]any{"run": "test"}
	if err := WriteJSONL(&sb, meta, r); err != nil {
		t.Fatal(err)
	}
	line := sb.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("JSONL line must be exactly one newline-terminated line: %q", line)
	}
	var decoded struct {
		Meta    map[string]any `json:"meta"`
		Metrics []Metric       `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("telemetry line is not valid JSON: %v", err)
	}
	if decoded.Meta["run"] != "test" || len(decoded.Metrics) != 1 || decoded.Metrics[0].Value != 3 {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestProgressCounts(t *testing.T) {
	p := NewProgress(4)
	p.Observe(false, false) // ran
	p.Observe(true, false)  // cached
	p.Observe(false, true)  // failed
	s := p.Snapshot()
	if s.Total != 4 || s.Done != 3 || s.Ran != 1 || s.Cached != 1 || s.Failed != 1 {
		t.Fatalf("progress snapshot = %+v", s)
	}
}
