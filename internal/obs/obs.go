// Package obs is the deterministic telemetry layer: lock-free counters,
// gauges, histograms, and phase timers that the hot layers (core runner,
// beep/baseline channels, engine pool, sweep batch) update while running.
//
// Two contracts govern everything here (DESIGN.md §2.15):
//
//   - Determinism: instrumentation never consumes rng and never branches
//     on channel data. Metrics are write-only from the simulation's point
//     of view — no simulation code path reads a metric — so records are
//     byte-identical with telemetry on or off.
//
//   - Zero cost when disabled: every handle is a typed pointer whose
//     methods no-op on a nil receiver, and a nil *Registry hands out nil
//     handles. Code instruments unconditionally at construction time and
//     pays one predictable nil check per update in the hot loop — no
//     interface dispatch, no allocation, no time.Now on the disabled
//     path (guarded by TestDisabledPathZeroAlloc / the CI bench guard).
//
// Handles come from a Registry keyed by name with get-or-create
// semantics, so independently constructed components (one runner per
// lane, one pool per network) resolve the same counter and their atomic
// adds merge. Sums of per-shard contributions commute, so totals are
// deterministic even under parallel execution.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named set of metrics. The zero value is not usable; use
// NewRegistry. A nil *Registry is the disabled state: every accessor
// returns a nil handle and Snapshot returns nil.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram | *Timer | funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

// get-or-create: resolving the same name twice returns the same handle;
// resolving it as a different kind is a wiring bug and panics.
func lookup[T any](r *Registry, name string, make func() T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		t, ok := m.(T)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q registered as %T, requested as %T", name, m, *new(T)))
		}
		return t
	}
	t := make()
	r.metrics[name] = t
	return t
}

// Counter returns the named monotonic counter, creating it if needed.
// Returns nil (a valid no-op handle) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Counter { return new(Counter) })
}

// Gauge returns the named gauge (a settable level), creating it if
// needed. Returns nil when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Gauge { return new(Gauge) })
}

// Histogram returns the named histogram (power-of-two buckets over
// non-negative int64 samples), creating it if needed. Returns nil when
// r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Histogram { return newHistogram() })
}

// Timer returns the named phase timer (a histogram over span durations
// in nanoseconds), creating it if needed. Returns nil when r is nil.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	return lookup(r, name, func() *Timer { return &Timer{h: newHistogram()} })
}

// funcMetric is a pull-based gauge: fn is evaluated at Snapshot time.
type funcMetric struct{ fn func() int64 }

// Func registers a pull-based gauge evaluated at Snapshot time.
// Re-registering a name replaces the function — callers that rebuild
// their data source per run (e.g. a fresh artifact cache) re-point the
// metric rather than leak a closure over the old one. No-op when r is
// nil.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if _, isFunc := m.(funcMetric); !isFunc {
			panic(fmt.Sprintf("obs: metric %q registered as %T, requested as func", name, m))
		}
	}
	r.metrics[name] = funcMetric{fn: fn}
}

// Counter is a monotonic lock-free counter. All methods are safe on a
// nil receiver (no-op) and for concurrent use.
type Counter struct{ v atomic.Int64 }

// Add adds delta to the counter; no-op on nil.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc adds one; no-op on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable level. All methods are nil-safe and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set stores v; no-op on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta; no-op on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is one bucket per possible bit length of a non-negative
// int64 sample (bits.Len64 of 0..2^63-1 is 0..63), so bucketing is a
// single instruction and bucket b holds samples in [2^(b-1), 2^b).
const histBuckets = 64

// Histogram aggregates non-negative int64 samples into power-of-two
// buckets with exact count/sum/min/max. Quantiles are approximate
// (bucket upper bounds). Nil-safe and lock-free.
type Histogram struct {
	count, sum atomic.Int64
	min, max   atomic.Int64
	buckets    [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := new(Histogram)
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one sample; negative samples clamp to 0. No-op on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// quantile returns the upper bound of the bucket containing the q-th
// sample (0 < q <= 1). Approximate by construction: within a factor of
// two of the true value.
func (h *Histogram) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1
		}
	}
	return h.max.Load()
}

// Timer measures phase spans into a histogram of nanoseconds. The
// disabled (nil) path never calls time.Now.
type Timer struct{ h *Histogram }

// Span is one in-flight timed phase; obtain via Timer.Start, finish
// with Stop. The zero Span (from a nil Timer) is a no-op.
type Span struct {
	t     *Timer
	start time.Time
}

// Start begins a span. On a nil Timer it returns the zero Span without
// reading the clock.
func (t *Timer) Start() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now()}
}

// Stop records the span's duration; no-op on the zero Span.
func (s Span) Stop() {
	if s.t != nil {
		s.t.h.Observe(time.Since(s.start).Nanoseconds())
	}
}

// Observe records an externally measured duration; no-op on nil.
func (t *Timer) Observe(d time.Duration) {
	if t != nil {
		t.h.Observe(d.Nanoseconds())
	}
}

// Count returns the number of recorded spans (0 on nil).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.h.Count()
}

// Sum returns the total recorded nanoseconds (0 on nil).
func (t *Timer) Sum() int64 {
	if t == nil {
		return 0
	}
	return t.h.Sum()
}

// Metric is one snapshotted metric. Values are exact for counters,
// gauges, and funcs; histograms and timers report exact count/sum/
// min/max and power-of-two-approximate quantiles.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" | "gauge" | "histogram" | "timer" | "func"
	Value int64  `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	Sum   int64  `json:"sum,omitempty"`
	Min   int64  `json:"min,omitempty"`
	Max   int64  `json:"max,omitempty"`
	P50   int64  `json:"p50,omitempty"`
	P90   int64  `json:"p90,omitempty"`
	P99   int64  `json:"p99,omitempty"`
}

// Snapshot returns every metric's current value, sorted by name so the
// rendering is deterministic. Nil registry snapshots to nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		metrics[name] = m
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(metrics))
	for name, m := range metrics {
		switch v := m.(type) {
		case *Counter:
			out = append(out, Metric{Name: name, Kind: "counter", Value: v.Value()})
		case *Gauge:
			out = append(out, Metric{Name: name, Kind: "gauge", Value: v.Value()})
		case *Histogram:
			out = append(out, histMetric(name, "histogram", v))
		case *Timer:
			out = append(out, histMetric(name, "timer", v.h))
		case funcMetric:
			out = append(out, Metric{Name: name, Kind: "func", Value: v.fn()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func histMetric(name, kind string, h *Histogram) Metric {
	m := Metric{Name: name, Kind: kind, Count: h.Count(), Sum: h.Sum()}
	if m.Count > 0 {
		m.Min = h.min.Load()
		m.Max = h.max.Load()
		m.P50 = h.quantile(0.50)
		m.P90 = h.quantile(0.90)
		m.P99 = h.quantile(0.99)
	}
	return m
}
