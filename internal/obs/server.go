package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is the live batch progress feed behind the introspection
// endpoint's /progress: the CLI's sweep callback updates it, HTTP
// readers snapshot it. Lock-free; nil-safe like every obs handle.
type Progress struct {
	total, done, cached, ran, failed atomic.Int64
	startNanos                       int64
}

// NewProgress returns a tracker expecting total completions, with the
// clock started now.
func NewProgress(total int) *Progress {
	p := &Progress{startNanos: time.Now().UnixNano()}
	p.total.Store(int64(total))
	return p
}

// Expect raises the expected completion total by n: the long-lived
// service shape (cmd/sweepd), where submissions keep arriving after the
// tracker is built. No-op on nil.
func (p *Progress) Expect(n int) {
	if p == nil {
		return
	}
	p.total.Add(int64(n))
}

// Observe records one scenario completion; no-op on nil.
func (p *Progress) Observe(cached, failed bool) {
	if p == nil {
		return
	}
	p.done.Add(1)
	switch {
	case failed:
		p.failed.Add(1)
	case cached:
		p.cached.Add(1)
	default:
		p.ran.Add(1)
	}
}

// ProgressSnapshot is the JSON shape served at /progress.
type ProgressSnapshot struct {
	Total     int64 `json:"total"`
	Done      int64 `json:"done"`
	Cached    int64 `json:"cached"`
	Ran       int64 `json:"ran"`
	Failed    int64 `json:"failed"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// Snapshot returns the current progress (zero value on nil).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Total:     p.total.Load(),
		Done:      p.done.Load(),
		Cached:    p.cached.Load(),
		Ran:       p.ran.Load(),
		Failed:    p.failed.Load(),
		ElapsedMS: (time.Now().UnixNano() - p.startNanos) / int64(time.Millisecond),
	}
}

// expvar publishes into a process-global namespace, so the registry
// behind "telemetry" is an atomic pointer swapped per Serve rather than
// a second Publish (which panics on duplicates).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

// Server is the opt-in -telemetry introspection listener: /metrics
// (registry snapshot JSON), /progress (live batch progress), /debug/vars
// (expvar), and /debug/pprof. It binds its own mux, so enabling
// telemetry never touches http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Handler returns the introspection endpoints as a mountable
// http.Handler: /metrics (registry snapshot JSON), /progress (live
// progress), /debug/vars (expvar), and /debug/pprof/*. Serve binds it
// to a private listener for the CLIs; cmd/sweepd mounts the same
// handler inside its own mux so one server exposes both the sweep API
// and the telemetry plumbing. progress may be nil, in which case
// /progress serves zeros.
func Handler(reg *Registry, progress *Progress) http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return expvarReg.Load().Snapshot()
		}))
	})
	expvarReg.Store(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "telemetry endpoints:\n  /metrics\n  /progress\n  /debug/vars\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(progress.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection server on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back from Addr). progress may be
// nil, in which case /progress serves zeros.
func Serve(addr string, reg *Registry, progress *Progress) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, progress)}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
