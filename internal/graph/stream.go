package graph

// Streaming sharded CSR construction. A RowFunc describes a graph as a
// pure function from vertex to sorted neighbor row; FromRowFunc turns it
// into CSR with a two-pass degree-count→fill build that writes straight
// into the flat arrays, never materializing a [][2]int edge list. Both
// passes shard [0, n) into contiguous chunks that workers process
// independently — every array slot belongs to exactly one vertex, so the
// result is byte-identical for any worker count. Randomized families stay
// shardable by deriving per-vertex randomness from pure hashes of
// (seed, vertex) instead of a sequential stream; GeoRows is the model.

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// RowFunc emits vertex v's neighbor row, one neighbor at a time, in
// strictly increasing order. It must be a pure function of v (the builder
// calls it twice per vertex — once to count, once to fill — possibly from
// different goroutines), must be symmetric (u appears in v's row iff v
// appears in u's), and must emit ids in [0, n) excluding v itself.
type RowFunc func(v int, emit func(u int32))

// BuildOptions configures FromRowFunc.
type BuildOptions struct {
	// Workers is the number of generation shards: 0 or 1 build serially,
	// k > 1 uses k goroutines, and any negative value uses GOMAXPROCS.
	// The built graph is byte-identical for every value.
	Workers int
	// WideIndex opts into int64 CSR offsets, lifting the 2³¹−1
	// directed-edge capacity of the default int32 offset table at the
	// cost of doubling the offset footprint.
	WideIndex bool
}

// maxOffsetWide is the int64 offset capacity (a variable so tests can
// exercise the wide-overflow branch without exabyte allocations).
var maxOffsetWide int64 = math.MaxInt64

// FromRowFunc builds a graph with n vertices from a streaming row
// function via the two-pass degree-count→fill CSR builder. Capacity
// overflow surfaces as a typed *CapacityError, row-contract violations
// (unsorted, out-of-range, or self-loop neighbors) as plain errors;
// it never panics on bad input.
func FromRowFunc(n int, rows RowFunc, opt BuildOptions) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > math.MaxInt32 {
		return nil, &CapacityError{Vertices: n}
	}
	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 0 { // n == 0
		workers = 1
	}

	// Pass 1: per-vertex degree count with contract validation. Chunks
	// are contiguous vertex ranges; each worker writes only its own deg
	// slots, so scheduling order cannot influence the result.
	deg := make([]int32, n)
	chunks := chunkRanges(n, workers)
	errs := make([]error, len(chunks))
	maxDegs := make([]int, len(chunks))
	runChunks(chunks, workers, func(ci int, lo, hi int) {
		maxDeg := 0
		for v := lo; v < hi; v++ {
			d := 0
			prev := int32(-1)
			bad := error(nil)
			rows(v, func(u int32) {
				if bad != nil {
					return
				}
				switch {
				case int(u) == v:
					bad = fmt.Errorf("graph: RowFunc emitted self-loop at %d", v)
				case u < 0 || int(u) >= n:
					bad = fmt.Errorf("graph: RowFunc neighbor %d of %d out of range [0,%d)", u, v, n)
				case u <= prev:
					bad = fmt.Errorf("graph: RowFunc row of %d not strictly increasing at %d", v, u)
				}
				prev = u
				d++
			})
			if bad != nil && errs[ci] == nil {
				errs[ci] = bad
			}
			deg[v] = int32(d)
			if d > maxDeg {
				maxDeg = d
			}
		}
		maxDegs[ci] = maxDeg
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Prefix sum in int64, then capacity check before any O(m) allocation.
	total := int64(0)
	var off []int32
	var off64 []int64
	if opt.WideIndex {
		off64 = make([]int64, n+1)
		for v := 0; v < n; v++ {
			total += int64(deg[v])
			off64[v+1] = total
		}
		if total > maxOffsetWide {
			return nil, &CapacityError{DirectedEdges: total, Wide: true}
		}
	} else {
		for v := 0; v < n; v++ {
			total += int64(deg[v])
		}
		if total > maxOffset32 {
			return nil, &CapacityError{DirectedEdges: total}
		}
		off = make([]int32, n+1)
		acc := int32(0)
		for v := 0; v < n; v++ {
			acc += deg[v]
			off[v+1] = acc
		}
	}

	g := &Graph{n: n, m: int(total / 2), off: off, off64: off64, nbr: make([]int32, total)}
	for _, d := range maxDegs {
		if d > g.maxDeg {
			g.maxDeg = d
		}
	}

	// Pass 2: fill. Each chunk writes the disjoint region
	// nbr[off[lo]:off[hi]); a RowFunc that emits different rows than in
	// pass 1 is caught by the per-vertex bounds check.
	runChunks(chunks, workers, func(ci int, lo, hi int) {
		for v := lo; v < hi; v++ {
			var pos, end int64
			if off64 != nil {
				pos, end = off64[v], off64[v+1]
			} else {
				pos, end = int64(off[v]), int64(off[v+1])
			}
			rows(v, func(u int32) {
				if pos < end {
					g.nbr[pos] = u
					pos++
				} else {
					pos = end + 1
				}
			})
			if pos != end && errs[ci] == nil {
				errs[ci] = fmt.Errorf("graph: RowFunc emitted different rows for %d across passes", v)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// chunkRanges splits [0, n) into contiguous ranges, several per worker so
// uneven row funcs still balance; the split is a pure function of
// (n, workers) but the result never depends on it — chunks only decide
// which goroutine writes which disjoint slots.
func chunkRanges(n, workers int) [][2]int {
	if n == 0 {
		return [][2]int{{0, 0}}
	}
	per := 4 * workers
	size := (n + per - 1) / per
	if size < 1 {
		size = 1
	}
	var out [][2]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runChunks dispatches the chunk list over up to `workers` goroutines
// (inline when workers is 1).
func runChunks(chunks [][2]int, workers int, fn func(ci, lo, hi int)) {
	if workers <= 1 || len(chunks) <= 1 {
		for ci, c := range chunks {
			fn(ci, c[0], c[1])
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	if workers > len(chunks) {
		workers = len(chunks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				fn(ci, chunks[ci][0], chunks[ci][1])
			}
		}()
	}
	for ci := range chunks {
		next <- ci
	}
	close(next)
	wg.Wait()
}

// --- Row functions for the deterministic families ---

// GridRows describes the rows×cols grid graph (vertex r*cols+c at row r,
// column c, 4-neighborhood).
func GridRows(rows, cols int) RowFunc {
	return func(v int, emit func(u int32)) {
		r, c := v/cols, v%cols
		if r > 0 {
			emit(int32(v - cols))
		}
		if c > 0 {
			emit(int32(v - 1))
		}
		if c+1 < cols {
			emit(int32(v + 1))
		}
		if r+1 < rows {
			emit(int32(v + cols))
		}
	}
}

// HypercubeRows describes the dim-dimensional hypercube on 2^dim
// vertices (u ~ v iff they differ in exactly one bit).
func HypercubeRows(dim int) RowFunc {
	return func(v int, emit func(u int32)) {
		// Set bits flipped high-to-low give the below-v neighbors in
		// increasing order; unset bits low-to-high give the above-v ones.
		for b := dim - 1; b >= 0; b-- {
			if v&(1<<uint(b)) != 0 {
				emit(int32(v ^ (1 << uint(b))))
			}
		}
		for b := 0; b < dim; b++ {
			if v&(1<<uint(b)) == 0 {
				emit(int32(v ^ (1 << uint(b))))
			}
		}
	}
}

// CompleteRows describes K_n.
func CompleteRows(n int) RowFunc {
	return func(v int, emit func(u int32)) {
		for u := 0; u < n; u++ {
			if u != v {
				emit(int32(u))
			}
		}
	}
}

// CompleteBipartiteRows describes K_{a,b} with parts {0..a-1} and
// {a..a+b-1}.
func CompleteBipartiteRows(a, b int) RowFunc {
	return func(v int, emit func(u int32)) {
		if v < a {
			for u := a; u < a+b; u++ {
				emit(int32(u))
			}
		} else {
			for u := 0; u < a; u++ {
				emit(int32(u))
			}
		}
	}
}

// HardInstanceRows describes the Lemma 14 hard instance: K_{Δ,Δ} on
// vertices 0..2Δ-1 plus n−2Δ isolated vertices.
func HardInstanceRows(n, delta int) RowFunc {
	return func(v int, emit func(u int32)) {
		switch {
		case v < delta:
			for u := delta; u < 2*delta; u++ {
				emit(int32(u))
			}
		case v < 2*delta:
			for u := 0; u < delta; u++ {
				emit(int32(u))
			}
		}
	}
}

// CycleRows describes the n-cycle (n >= 3).
func CycleRows(n int) RowFunc {
	return func(v int, emit func(u int32)) {
		a, b := (v-1+n)%n, (v+1)%n
		if a > b {
			a, b = b, a
		}
		emit(int32(a))
		emit(int32(b))
	}
}

// PathRows describes the n-vertex path.
func PathRows(n int) RowFunc {
	return func(v int, emit func(u int32)) {
		if v > 0 {
			emit(int32(v - 1))
		}
		if v+1 < n {
			emit(int32(v + 1))
		}
	}
}

// StarRows describes the star with center 0 and n−1 leaves.
func StarRows(n int) RowFunc {
	return func(v int, emit func(u int32)) {
		if v == 0 {
			for u := 1; u < n; u++ {
				emit(int32(u))
			}
		} else {
			emit(0)
		}
	}
}

// CompleteBinaryTreeRows describes the complete binary tree on n vertices
// rooted at 0 (children of v are 2v+1 and 2v+2).
func CompleteBinaryTreeRows(n int) RowFunc {
	return func(v int, emit func(u int32)) {
		if v > 0 {
			emit(int32((v - 1) / 2))
		}
		if 2*v+1 < n {
			emit(int32(2*v + 1))
		}
		if 2*v+2 < n {
			emit(int32(2*v + 2))
		}
	}
}

// --- The geo family: a shardable random geometric graph ---

// Tags separating the two coordinate hash streams of GeoRows.
const (
	geoTagX = 0x67656f2d78 // "geo-x"
	geoTagY = 0x67656f2d79 // "geo-y"
)

// geoRadius2 is the squared connection radius of the geo family. Cell
// centers sit on an integer lattice with jitter in [0, 0.4), so lattice
// neighbors are at most √(1+0.4²) ≈ 1.077 apart and diagonal ones at
// most √2·1.4 ≈ 1.456 — both under the 1.7 radius, which keeps the
// family connected for every seed while bounding the degree by the 24
// candidate cells within distance 2 in each axis.
const geoRadius2 = 1.7 * 1.7

// geoSide returns the lattice side for n vertices: the smallest s with
// s² ≥ n.
func geoSide(n int) int {
	s := int(math.Sqrt(float64(n)))
	for s*s < n {
		s++
	}
	return s
}

// geoCoord returns vertex v's position along one axis: its lattice
// coordinate plus a jitter in [0, 0.4) hashed purely from (seed, tag, v).
// Pure per-vertex hashing — no sequential rng stream — is what lets
// sharded generation produce identical graphs for any worker count.
func geoCoord(seed, tag uint64, v, lattice int) float64 {
	u := float64(rng.Mix(seed, tag, uint64(v))>>11) / (1 << 53)
	return float64(lattice) + 0.4*u
}

// GeoRows describes the geo family for n ≥ 17 (lattice side ≥ 5):
// vertices on a jittered ⌈√n⌉×⌈√n⌉ lattice, connected within distance
// 1.7. Candidate neighbors are the ≤24 surrounding cells, scanned in
// row-major order, which for side ≥ 5 enumerates ids in increasing order.
func GeoRows(n int, seed uint64) RowFunc {
	side := geoSide(n)
	return func(v int, emit func(u int32)) {
		r, c := v/side, v%side
		x := geoCoord(seed, geoTagX, v, c)
		y := geoCoord(seed, geoTagY, v, r)
		for dr := -2; dr <= 2; dr++ {
			ur := r + dr
			if ur < 0 || ur >= side {
				continue
			}
			for dc := -2; dc <= 2; dc++ {
				uc := c + dc
				if uc < 0 || uc >= side {
					continue
				}
				u := ur*side + uc
				if u == v || u >= n {
					continue
				}
				dx := geoCoord(seed, geoTagX, u, uc) - x
				dy := geoCoord(seed, geoTagY, u, ur) - y
				if dx*dx+dy*dy <= geoRadius2 {
					emit(int32(u))
				}
			}
		}
	}
}

// GeometricCells builds the geo family graph for n ≥ 17: the shardable,
// seed-stable successor to RandomGeometricGrid for large-n runs. The
// graph is connected for every seed (lattice-adjacent cells are always
// within radius), has maximum degree ≤ 24, and is byte-identical for any
// opt.Workers.
func GeometricCells(n int, seed uint64, opt BuildOptions) (*Graph, error) {
	if side := geoSide(n); side < 5 {
		return nil, fmt.Errorf("graph: geo family needs lattice side >= 5 (n >= 17), got n=%d", n)
	}
	return FromRowFunc(n, GeoRows(n, seed), opt)
}
