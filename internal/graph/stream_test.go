package graph

import (
	"errors"
	"fmt"
	"math/bits"
	"testing"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

// graphsEqual reports whether two graphs have identical CSR content
// (same n, m, maxDeg, offsets, and neighbor array).
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() || a.MaxDegree() != b.MaxDegree() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		ra, rb := a.Row(v), b.Row(v)
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

// TestFromRowFuncMatchesEdgeListGenerators: every streaming family must
// produce byte-identical CSR to the edge-list construction of the same
// graph, at several worker counts.
func TestFromRowFuncMatchesEdgeListGenerators(t *testing.T) {
	gridEdges := func(rows, cols int) [][2]int {
		var edges [][2]int
		id := func(r, c int) int { return r*cols + c }
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					edges = append(edges, [2]int{id(r, c), id(r, c+1)})
				}
				if r+1 < rows {
					edges = append(edges, [2]int{id(r, c), id(r+1, c)})
				}
			}
		}
		return edges
	}
	cubeEdges := func(dim int) [][2]int {
		n := 1 << uint(dim)
		var edges [][2]int
		for v := 0; v < n; v++ {
			for b := 0; b < dim; b++ {
				if u := v ^ (1 << uint(b)); v < u {
					edges = append(edges, [2]int{v, u})
				}
			}
		}
		return edges
	}
	cases := []struct {
		name string
		n    int
		rows RowFunc
		ref  *Graph
	}{
		{"grid7x9", 63, GridRows(7, 9), MustFromEdges(63, gridEdges(7, 9))},
		{"hypercube5", 32, HypercubeRows(5), MustFromEdges(32, cubeEdges(5))},
		{"complete17", 17, CompleteRows(17), func() *Graph {
			var e [][2]int
			for u := 0; u < 17; u++ {
				for v := u + 1; v < 17; v++ {
					e = append(e, [2]int{u, v})
				}
			}
			return MustFromEdges(17, e)
		}()},
		{"bipartite5x8", 13, CompleteBipartiteRows(5, 8), func() *Graph {
			var e [][2]int
			for u := 0; u < 5; u++ {
				for v := 5; v < 13; v++ {
					e = append(e, [2]int{u, v})
				}
			}
			return MustFromEdges(13, e)
		}()},
		{"hard20d4", 20, HardInstanceRows(20, 4), func() *Graph {
			var e [][2]int
			for u := 0; u < 4; u++ {
				for v := 4; v < 8; v++ {
					e = append(e, [2]int{u, v})
				}
			}
			return MustFromEdges(20, e)
		}()},
		{"cycle11", 11, CycleRows(11), func() *Graph {
			var e [][2]int
			for i := 0; i < 11; i++ {
				e = append(e, [2]int{i, (i + 1) % 11})
			}
			return MustFromEdges(11, e)
		}()},
		{"path9", 9, PathRows(9), func() *Graph {
			var e [][2]int
			for i := 0; i+1 < 9; i++ {
				e = append(e, [2]int{i, i + 1})
			}
			return MustFromEdges(9, e)
		}()},
		{"star12", 12, StarRows(12), func() *Graph {
			var e [][2]int
			for i := 1; i < 12; i++ {
				e = append(e, [2]int{0, i})
			}
			return MustFromEdges(12, e)
		}()},
		{"bintree15", 15, CompleteBinaryTreeRows(15), func() *Graph {
			var e [][2]int
			for v := 1; v < 15; v++ {
				e = append(e, [2]int{(v - 1) / 2, v})
			}
			return MustFromEdges(15, e)
		}()},
	}
	for _, tc := range cases {
		for _, workers := range []int{0, 1, 2, 3, 8, -1} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				g, err := FromRowFunc(tc.n, tc.rows, BuildOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !graphsEqual(g, tc.ref) {
					t.Fatalf("FromRowFunc(workers=%d) differs from edge-list build", workers)
				}
			})
		}
	}
}

// TestGeneratorsDelegateToRowFuncs: the historical generator wrappers
// must still produce the shapes the rest of the repo depends on (spot
// checks beyond TestGeneratorShapes: wide/narrow structural invariants).
func TestGeneratorsDelegateToRowFuncs(t *testing.T) {
	g := Grid(4, 4)
	if g.N() != 16 || g.M() != 24 || g.MaxDegree() != 4 {
		t.Fatalf("Grid(4,4): N=%d M=%d Δ=%d", g.N(), g.M(), g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
}

// TestGeoDeterministicAcrossWorkers: the geo family is the shardability
// witness — identical CSR for 1 and many workers, on several n and seeds.
func TestGeoDeterministicAcrossWorkers(t *testing.T) {
	for _, n := range []int{17, 25, 49, 100, 1000} {
		for _, seed := range []uint64{1, 7, 0xdeadbeef} {
			ref, err := GeometricCells(n, seed, BuildOptions{Workers: 1})
			if err != nil {
				t.Fatalf("geo(n=%d, seed=%d): %v", n, seed, err)
			}
			if !ref.Connected() {
				t.Fatalf("geo(n=%d, seed=%d) disconnected", n, seed)
			}
			if ref.MaxDegree() > 24 {
				t.Fatalf("geo(n=%d, seed=%d): Δ = %d > 24", n, seed, ref.MaxDegree())
			}
			for _, workers := range []int{2, 5, 8, -1} {
				g, err := GeometricCells(n, seed, BuildOptions{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !graphsEqual(g, ref) {
					t.Fatalf("geo(n=%d, seed=%d) differs between 1 and %d workers", n, seed, workers)
				}
			}
			// Different seeds give different graphs (with overwhelming
			// probability for n this size).
			other, err := GeometricCells(n, seed+1, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if n >= 49 && graphsEqual(other, ref) {
				t.Fatalf("geo(n=%d): seeds %d and %d give identical graphs", n, seed, seed+1)
			}
		}
	}
	if _, err := GeometricCells(16, 1, BuildOptions{}); err == nil {
		t.Fatal("geo with n=16 (side 4) should be rejected")
	}
}

// TestGeoRowsSymmetric: the geo RowFunc must be symmetric — the builder
// trusts symmetry, so it is pinned here.
func TestGeoRowsSymmetric(t *testing.T) {
	g, err := GeometricCells(200, 42, BuildOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Row(v) {
			if !g.HasEdge(int(u), v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("handshake violated: %d != 2·%d", sum, g.M())
	}
}

// TestFromRowFuncContractViolations: misbehaving row funcs fail with an
// error, never a panic.
func TestFromRowFuncContractViolations(t *testing.T) {
	cases := []struct {
		name string
		n    int
		rows RowFunc
	}{
		{"self-loop", 3, func(v int, emit func(u int32)) { emit(int32(v)) }},
		{"out-of-range", 3, func(v int, emit func(u int32)) { emit(99) }},
		{"negative", 3, func(v int, emit func(u int32)) { emit(-1) }},
		{"unsorted", 3, func(v int, emit func(u int32)) {
			if v == 0 {
				emit(2)
				emit(1)
			}
		}},
		{"duplicate", 3, func(v int, emit func(u int32)) {
			if v == 0 {
				emit(1)
				emit(1)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromRowFunc(tc.n, tc.rows, BuildOptions{}); err == nil {
				t.Fatal("contract violation not reported")
			}
		})
	}
	if _, err := FromRowFunc(-1, PathRows(4), BuildOptions{}); err == nil {
		t.Fatal("negative n not reported")
	}
}

// TestCapacityErrorPaths: overflowing the configured index width is a
// typed *CapacityError on every construction path; WideIndex lifts the
// int32 limit. maxOffset32 is shrunk so the test runs without gigabyte
// allocations.
func TestCapacityErrorPaths(t *testing.T) {
	saved := maxOffset32
	maxOffset32 = 100 // 50 edges
	defer func() { maxOffset32 = saved }()

	// FromRowFunc beyond the narrow capacity: typed error.
	_, err := FromRowFunc(20, CompleteRows(20), BuildOptions{}) // 380 directed edges
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("FromRowFunc overflow: got %v, want *CapacityError", err)
	}
	if ce.Wide || ce.DirectedEdges != 380 {
		t.Fatalf("unexpected CapacityError contents: %+v", ce)
	}

	// WideIndex lifts it, and the wide graph matches the narrow build of
	// the same family under the real capacity.
	wide, err := FromRowFunc(20, CompleteRows(20), BuildOptions{WideIndex: true})
	if err != nil {
		t.Fatalf("WideIndex build failed: %v", err)
	}
	if !wide.WideIndex() {
		t.Fatal("WideIndex graph does not report wide offsets")
	}
	maxOffset32 = saved
	narrow, err := FromRowFunc(20, CompleteRows(20), BuildOptions{})
	maxOffset32 = 100
	if err != nil {
		t.Fatal(err)
	}
	if narrow.WideIndex() {
		t.Fatal("default build unexpectedly wide")
	}
	if !graphsEqual(wide, narrow) {
		t.Fatal("wide and narrow builds of K20 differ")
	}
	if wide.Bytes() <= narrow.Bytes() {
		t.Fatalf("wide footprint %d not larger than narrow %d", wide.Bytes(), narrow.Bytes())
	}

	// FromEdges path shares the error type.
	var edges [][2]int
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	if _, err := FromEdges(20, edges); !errors.As(err, &ce) {
		t.Fatalf("FromEdges overflow: got %v, want *CapacityError", err)
	}

	// Square path: a graph within capacity whose square overflows fails
	// with the same typed error instead of panicking.
	maxOffset32 = 60
	st, err := FromRowFunc(16, StarRows(16), BuildOptions{}) // 30 directed edges; square is K16 = 240
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Square(); !errors.As(err, &ce) {
		t.Fatalf("Square overflow: got %v, want *CapacityError", err)
	}
	_, d2err := st.DistanceTwoColoring()
	if !errors.As(d2err, &ce) {
		t.Fatalf("DistanceTwoColoring overflow: got %v, want *CapacityError", d2err)
	}
	// Memoized: the second call returns the same error without redoing work.
	if _, err2 := st.DistanceTwoColoring(); !errors.Is(err2, d2err) {
		t.Fatalf("memoized d2 error differs: %v vs %v", err2, d2err)
	}

	// Wide-overflow branch.
	savedWide := maxOffsetWide
	maxOffsetWide = 100
	defer func() { maxOffsetWide = savedWide }()
	if _, err := FromRowFunc(20, CompleteRows(20), BuildOptions{WideIndex: true}); !errors.As(err, &ce) {
		t.Fatalf("wide overflow: got %v, want *CapacityError", err)
	} else if !ce.Wide {
		t.Fatalf("wide overflow error not marked Wide: %+v", ce)
	}
}

// TestEdgesSeqMatchesEdges: the streaming iterator yields exactly
// Edges(), in order, and supports early exit.
func TestEdgesSeqMatchesEdges(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(60)
		g := MustFromEdges(n, randomEdges(n, 0.2, r))
		want := g.Edges()
		var got [][2]int
		for u, v := range g.EdgesSeq() {
			got = append(got, [2]int{u, v})
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: EdgesSeq yielded %d edges, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: edge %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
		// Early exit stops the iteration.
		count := 0
		for range g.EdgesSeq() {
			count++
			if count == 3 {
				break
			}
		}
		if g.M() >= 3 && count != 3 {
			t.Fatalf("trial %d: early exit yielded %d", trial, count)
		}
	}
}

// TestNeighborhoodOrFrontierMatchesOr: the fused frontier pass computes
// exactly NeighborhoodOr's bits, and the summary covers every dirtied
// word (it may not cover untouched words).
func TestNeighborhoodOrFrontierMatchesOr(t *testing.T) {
	r := rng.New(4321)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(300)
		g := MustFromEdges(n, randomEdges(n, 0.02+0.1*r.Float64(), r))
		src := bitstring.New(n)
		for v := 0; v < n; v++ {
			if r.Bool(0.05) {
				src.Set(v)
			}
		}
		want := bitstring.New(n)
		g.NeighborhoodOr(src, want)

		got := bitstring.New(n)
		words := len(got.Words())
		sum := make([]uint64, (words+63)/64)
		g.NeighborhoodOrFrontier(src, got, sum)
		if !got.Equal(want) {
			t.Fatalf("trial %d: frontier OR differs from NeighborhoodOr", trial)
		}
		// Every nonzero word of got must have its summary bit set.
		for wi, w := range got.Words() {
			if w != 0 && sum[wi>>6]&(1<<(uint(wi)&63)) == 0 {
				t.Fatalf("trial %d: dirty word %d not in summary", trial, wi)
			}
		}
		// And the summary must not be wildly over-approximate: its bits
		// point at words NeighborhoodOrFrontier actually wrote.
		dirty := 0
		for _, s := range sum {
			dirty += bits.OnesCount64(s)
		}
		if src.Ones() == 0 && dirty != 0 {
			t.Fatalf("trial %d: empty src dirtied %d words", trial, dirty)
		}
	}
}

func BenchmarkFromRowFuncGrid1M(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := FromRowFunc(1000*1000, GridRows(1000, 1000), BuildOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if g.M() != 2*1000*999 {
					b.Fatalf("m = %d", g.M())
				}
			}
		})
	}
}
