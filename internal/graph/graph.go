// Package graph implements the network substrate of the paper: undirected
// graphs with n nodes and maximum degree Δ, whose edges represent direct
// reachability between devices (§1.1). It provides the generators used by
// the experiments — including the K_{Δ,Δ}-plus-isolated-vertices hard
// instance of Lemma 14 — together with the structural routines the
// baselines need (graph squaring and distance-2 coloring for the
// [7]/[4]-style TDMA simulation) and BFS/diameter utilities.
//
// # CSR layout
//
// Graphs are stored in compressed sparse row (CSR) form: a single flat
// []int32 neighbor array plus an n+1-entry offset table, so that vertex
// v's sorted neighbor row is nbr[off[v]:off[v+1]]. Compared to the
// per-vertex [][]int layout this removes one pointer indirection per row,
// keeps all rows contiguous in memory, and halves the footprint — which
// is what makes the simulation engines' per-round neighborhood scans
// cache-friendly at production scale. Row gives zero-copy access to a row;
// Neighbors returns a fresh []int copy for callers that prefer ints.
//
// The CSR rows also support word-parallel beep propagation:
// NeighborhoodOr computes, in one pass, the OR over every beeping vertex's
// row into a destination bitset — the hot path of one beeping round
// (listeners hear 1 iff some neighbor beeped) — instead of each listener
// scanning its neighbor list. NeighborhoodOrRange is the receiver-centric
// form whose [lo,hi) slices the deterministic sharded worker pool of
// internal/engine hands out; both forms compute the same bits.
//
// The default int32 offset representation bounds graphs to about 2
// billion directed edges; FromRowFunc's BuildOptions.WideIndex opts into
// int64 offsets past that capacity (neighbor entries always fit int32,
// since vertex ids are bounded by MaxInt32 independently). Exceeding the
// configured width is a typed *CapacityError on every construction path —
// never a panic — so the sweep layer surfaces it as a scenario failure.
package graph

import (
	"fmt"
	"iter"
	"math"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

// CapacityError reports a graph whose CSR arrays exceed the offset index
// width in use: more than 2³¹−1 directed edges with the default int32
// offsets (BuildOptions.WideIndex opts into int64), or a vertex count
// beyond int32 ids (no wider id width exists). Every construction path —
// FromEdges, FromRowFunc, Square — returns it instead of panicking, so
// callers can surface an oversized graph as an input error.
type CapacityError struct {
	// Vertices and DirectedEdges describe the offending graph; the zero
	// field is the one within capacity.
	Vertices      int
	DirectedEdges int64
	// Wide reports whether the failed build had already opted into
	// int64 offsets (then only the vertex-id width can overflow).
	Wide bool
}

func (e *CapacityError) Error() string {
	if e.Vertices != 0 {
		return fmt.Sprintf("graph: %d vertices exceed the int32 CSR id capacity", e.Vertices)
	}
	if e.Wide {
		return fmt.Sprintf("graph: %d directed edges overflow the CSR arrays", e.DirectedEdges)
	}
	return fmt.Sprintf("graph: %d directed edges exceed the int32 CSR offset capacity (BuildOptions.WideIndex opts into int64 offsets)", e.DirectedEdges)
}

// maxOffset32 is the int32 offset capacity. A variable, not a constant,
// so tests can exercise the overflow and width-promotion paths without
// materializing multi-gigabyte graphs.
var maxOffset32 int64 = math.MaxInt32

// Graph is an immutable simple undirected graph on vertices 0..n-1, stored
// in CSR (compressed sparse row) form.
type Graph struct {
	n      int
	m      int
	maxDeg int
	off    []int32 // len n+1; row v is nbr[off[v]:off[v+1]] (nil when wide)
	off64  []int64 // wide-index alternative to off (BuildOptions.WideIndex)
	nbr    []int32 // concatenated sorted neighbor rows, len 2m

	// d2once memoizes DistanceTwoColoring: the coloring is a pure
	// function of the (immutable) graph, and graph instances are shared
	// across concurrent scenario executions by the sweep layer's
	// artifact cache, so each shared graph pays the G²+greedy cost once.
	// It stays entirely lazy: engines that never schedule by color (the
	// beep-native and sparse drivers) never pay for it.
	d2once   sync.Once
	d2colors []int
	d2err    error
}

// FromEdges builds a graph with n vertices from an edge list. It rejects
// self-loops, duplicate edges, and out-of-range endpoints.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > math.MaxInt32 {
		return nil, &CapacityError{Vertices: n}
	}
	if int64(len(edges)) > maxOffset32/2 {
		return nil, &CapacityError{DirectedEdges: 2 * int64(len(edges))}
	}
	deg := make([]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		deg[u]++
		deg[v]++
	}
	g := &Graph{
		n:   n,
		m:   len(edges),
		off: make([]int32, n+1),
		nbr: make([]int32, 2*len(edges)),
	}
	for v := 0; v < n; v++ {
		g.off[v+1] = g.off[v] + deg[v]
	}
	fill := make([]int32, n)
	copy(fill, g.off[:n])
	for _, e := range edges {
		u, v := e[0], e[1]
		g.nbr[fill[u]] = int32(v)
		fill[u]++
		g.nbr[fill[v]] = int32(u)
		fill[v]++
	}
	for v := 0; v < n; v++ {
		row := g.nbr[g.off[v]:g.off[v+1]]
		slices.Sort(row)
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, row[i])
			}
		}
		if len(row) > g.maxDeg {
			g.maxDeg = len(row)
		}
	}
	return g, nil
}

// fromRows builds a graph directly from sorted, deduplicated rows (the
// internal fast path for derived graphs such as Square). Like FromEdges
// it reports int32 CSR overflow as a typed *CapacityError — the two
// construction paths share one error contract, so derived graphs that
// outgrow the representation fail a scenario instead of crashing the
// process.
func fromRows(n int, rows [][]int32, m int) (*Graph, error) {
	g := &Graph{n: n, m: m, off: make([]int32, n+1)}
	total := int64(0)
	for _, row := range rows {
		total += int64(len(row))
	}
	if total > maxOffset32 {
		return nil, &CapacityError{DirectedEdges: total}
	}
	g.nbr = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		g.nbr = append(g.nbr, rows[v]...)
		g.off[v+1] = int32(len(g.nbr))
		if len(rows[v]) > g.maxDeg {
			g.maxDeg = len(rows[v])
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error, for tests and
// generators with inputs known to be valid.
func MustFromEdges(n int, edges [][2]int) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	if g.off64 != nil {
		return int(g.off64[v+1] - g.off64[v])
	}
	return int(g.off[v+1] - g.off[v])
}

// WideIndex reports whether the graph uses int64 CSR offsets
// (BuildOptions.WideIndex) instead of the default int32.
func (g *Graph) WideIndex() bool { return g.off64 != nil }

// Bytes returns the CSR memory footprint in bytes (neighbor array plus
// offset table) — the number the sweep layer's graph-bytes gauge reports
// when sizing large-n runs.
func (g *Graph) Bytes() int64 {
	b := int64(len(g.nbr)) * 4
	if g.off64 != nil {
		return b + int64(len(g.off64))*8
	}
	return b + int64(len(g.off))*4
}

// MaxDegree returns Δ, the maximum degree (cached at construction; the
// simulators read it per node per run). It is 0 for edgeless graphs.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Row returns v's sorted neighbor row as a zero-copy slice of the CSR
// neighbor array. The slice aliases the graph and must not be modified.
// This is the accessor the engines' hot loops use.
func (g *Graph) Row(v int) []int32 {
	if g.off64 != nil {
		return g.nbr[g.off64[v]:g.off64[v+1]]
	}
	return g.nbr[g.off[v]:g.off[v+1]]
}

// Neighbors returns the sorted neighbor list of v as a freshly allocated
// []int. Setup and verification code may use it freely; per-round loops
// should prefer Row, which does not allocate.
func (g *Graph) Neighbors(v int) []int {
	row := g.Row(v)
	out := make([]int, len(row))
	for i, u := range row {
		out[i] = int(u)
	}
	return out
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, found := slices.BinarySearch(g.Row(u), int32(v))
	return found
}

// Edges returns all edges with u < v, in lexicographic order. It
// materializes an O(m) slice; callers that only iterate should use
// EdgesSeq, which streams the same edges straight off the CSR rows.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, v := range g.EdgesSeq() {
		out = append(out, [2]int{u, v})
	}
	return out
}

// EdgesSeq returns an iterator over all edges (u, v) with u < v, in
// lexicographic order — the streaming form of Edges, allocating nothing.
func (g *Graph) EdgesSeq() iter.Seq2[int, int] {
	return func(yield func(u, v int) bool) {
		for u := 0; u < g.n; u++ {
			for _, v := range g.Row(u) {
				if int32(u) < v && !yield(u, int(v)) {
					return
				}
			}
		}
	}
}

// BFS returns distances and BFS-tree parents from root. Unreachable
// vertices have dist -1 and parent -1; root has parent -1.
func (g *Graph) BFS(root int) (dist, parent []int) {
	dist = make([]int, g.n)
	parent = make([]int, g.n)
	for i := range dist {
		dist[i], parent[i] = -1, -1
	}
	dist[root] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Row(u) {
			v := int(w)
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum eccentricity over connected vertex pairs
// (ignoring unreachable pairs), or 0 for edgeless graphs.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		dist, _ := g.BFS(v)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// NeighborhoodOr ORs, over every vertex u whose bit is set in src, u's
// neighbor row into dst: afterwards dst has bit v set iff some neighbor of
// v is set in src (dst's prior bits are kept, so callers wanting exactly
// the open neighborhood should pass a zeroed dst). This is one beeping
// round's propagation — src is "who beeped", dst is "who hears" — done as
// one pass over the CSR rows of the beeping vertices instead of a
// per-listener neighbor scan.
//
// When src is dense the sender-centric pass would touch Θ(2m) entries
// while most listeners are settled by their first few neighbors, so the
// routine switches to the receiver-centric early-exit scan; both forms
// compute identical bits. Panics if src or dst length differs from n.
func (g *Graph) NeighborhoodOr(src, dst *bitstring.BitString) {
	if src.Len() != g.n || dst.Len() != g.n {
		panic(fmt.Sprintf("graph: NeighborhoodOr bitset lengths %d,%d for n=%d", src.Len(), dst.Len(), g.n))
	}
	if g.DenseBeepers(src) {
		g.NeighborhoodOrRange(src, dst, 0, g.n)
		return
	}
	dw := dst.Words()
	for wi, w := range src.Words() {
		for w != 0 {
			u := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			for _, v := range g.Row(u) {
				dw[v>>6] |= 1 << (uint(v) & 63)
			}
		}
	}
}

// DenseBeepers reports whether src is dense enough that receiver-centric
// early-exit scans beat the sender-centric pass over the beepers' rows —
// the heuristic NeighborhoodOr applies internally, exported so callers
// staging their own parallel propagation (internal/beep) pick the same
// side.
func (g *Graph) DenseBeepers(src *bitstring.BitString) bool {
	return 4*src.Ones() > g.n
}

// NeighborhoodOrRange is the receiver-centric form of NeighborhoodOr
// restricted to listeners in [lo, hi): it sets dst's bit for each v in the
// range with a src-set neighbor, touching no other bits of dst. Distinct
// word-aligned ranges may therefore run concurrently on one dst (the
// sharded execution of internal/engine); the union over a partition of
// [0, n) equals a full NeighborhoodOr.
func (g *Graph) NeighborhoodOrRange(src, dst *bitstring.BitString, lo, hi int) {
	if src.Len() != g.n || dst.Len() != g.n {
		panic(fmt.Sprintf("graph: NeighborhoodOrRange bitset lengths %d,%d for n=%d", src.Len(), dst.Len(), g.n))
	}
	sw := src.Words()
	for v := lo; v < hi; v++ {
		for _, u := range g.Row(v) {
			if sw[u>>6]&(1<<(uint(u)&63)) != 0 {
				dst.Set(v)
				break
			}
		}
	}
}

// NeighborhoodOrFrontier is the sender-centric NeighborhoodOr with the
// active-frontier update fused in: alongside ORing every src vertex's row
// into dst, it records each dst word it dirtied in sum — a second-level
// bitset with one bit per dst word (bit w of sum word w>>6 covers dst
// words [64w, 64w+64)). Sparse engines keep such a summary over the
// reception window so subsequent passes skip quiescent spans entirely
// instead of scanning all of dst. sum must have at least
// (dst.Words()+63)/64 entries; bits already set in sum are kept. The dst
// bits written are exactly NeighborhoodOr's — the fusion only adds the
// summary bookkeeping to the same pass.
func (g *Graph) NeighborhoodOrFrontier(src, dst *bitstring.BitString, sum []uint64) {
	if src.Len() != g.n || dst.Len() != g.n {
		panic(fmt.Sprintf("graph: NeighborhoodOrFrontier bitset lengths %d,%d for n=%d", src.Len(), dst.Len(), g.n))
	}
	dw := dst.Words()
	for wi, w := range src.Words() {
		for w != 0 {
			u := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			for _, v := range g.Row(u) {
				wv := v >> 6
				dw[wv] |= 1 << (uint(v) & 63)
				sum[wv>>6] |= 1 << (uint(wv) & 63)
			}
		}
	}
}

// Square returns G²: the graph on the same vertices where u,v are adjacent
// iff their distance in g is 1 or 2. It is the structure the prior-work
// baselines color to schedule conflict-free transmissions (§1.4).
// It returns a *CapacityError (via fromRows) if G² exceeds the CSR int32
// capacity of about 2 billion directed edges.
func (g *Graph) Square() (*Graph, error) {
	rows := make([][]int32, g.n)
	seen := make([]int, g.n)
	for i := range seen {
		seen[i] = -1
	}
	m := 0
	for u := 0; u < g.n; u++ {
		var list []int32
		add := func(w int32) {
			if int(w) != u && seen[w] != u {
				seen[w] = u
				list = append(list, w)
			}
		}
		for _, v := range g.Row(u) {
			add(v)
			for _, w := range g.Row(int(v)) {
				add(w)
			}
		}
		slices.Sort(list)
		rows[u] = list
		m += len(list)
	}
	return fromRows(g.n, rows, m/2)
}

// GreedyColoring colors the graph greedily in the given vertex order,
// assigning each vertex the smallest color unused by its already-colored
// neighbors. It returns one color in [0, maxUsed] per vertex and uses at
// most Δ+1 colors. If order is nil, vertices are processed in decreasing
// degree order (which tends to use fewer colors).
func (g *Graph) GreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
	}
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	taken := make([]int, g.n+1)
	for i := range taken {
		taken[i] = -1
	}
	for _, v := range order {
		for _, u := range g.Row(v) {
			if colors[u] >= 0 {
				taken[colors[u]] = v
			}
		}
		c := 0
		for taken[c] == v {
			c++
		}
		colors[v] = c
	}
	return colors
}

// DistanceTwoColoring returns a proper coloring of G² (no two vertices
// within distance 2 share a color), the setup structure of the baseline
// simulations. The number of colors used is at most Δ²+1. The result is
// computed once per graph instance (it is deterministic, and callers
// must not mutate it) and shared by every subsequent call, including
// concurrent ones. It fails with a *CapacityError when G² overflows the
// CSR representation — large sparse graphs whose square is still huge.
func (g *Graph) DistanceTwoColoring() ([]int, error) {
	g.d2once.Do(func() {
		sq, err := g.Square()
		if err != nil {
			g.d2err = err
			return
		}
		g.d2colors = sq.GreedyColoring(nil)
	})
	return g.d2colors, g.d2err
}

// NumColors returns the number of distinct colors in a coloring (max+1).
func NumColors(colors []int) int {
	max := -1
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// --- Generators ---
//
// The deterministic families delegate to the streaming row functions of
// stream.go through the serial two-pass builder; these wrappers keep the
// historical convenience signatures (and their panic-on-misuse contract)
// while large-n callers use FromRowFunc directly with worker counts.

// mustBuild is the serial FromRowFunc for generators whose inputs are
// valid by construction; it panics on the (impossible) builder error.
func mustBuild(n int, rows RowFunc) *Graph {
	g, err := FromRowFunc(n, rows, BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph { return mustBuild(n, CompleteRows(n)) }

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	return mustBuild(a+b, CompleteBipartiteRows(a, b))
}

// HardInstance returns the Lemma 14 / Theorem 22 hard graph: K_{Δ,Δ} on
// vertices 0..2Δ-1 (left part 0..Δ-1, right part Δ..2Δ-1) plus n-2Δ
// isolated vertices, so the graph has n vertices and maximum degree Δ.
func HardInstance(n, delta int) (*Graph, error) {
	if delta < 1 || 2*delta > n {
		return nil, fmt.Errorf("graph: hard instance needs 1 <= Δ and 2Δ <= n, got n=%d Δ=%d", n, delta)
	}
	return FromRowFunc(n, HardInstanceRows(n, delta), BuildOptions{})
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *Graph { return mustBuild(n, CycleRows(n)) }

// Path returns the n-vertex path.
func Path(n int) *Graph { return mustBuild(n, PathRows(n)) }

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *Graph { return mustBuild(n, StarRows(n)) }

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	return mustBuild(rows*cols, GridRows(rows, cols))
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
func Hypercube(dim int) *Graph {
	return mustBuild(1<<uint(dim), HypercubeRows(dim))
}

// CompleteBinaryTree returns a complete binary tree on n vertices with
// root 0 (vertex v has children 2v+1 and 2v+2 when present).
func CompleteBinaryTree(n int) *Graph {
	return mustBuild(n, CompleteBinaryTreeRows(n))
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration (pairing) model with edge-swap repair: stubs are paired
// uniformly, then self-loops and multi-edges are eliminated by swapping
// endpoints with random other pairs (whole-graph rejection would succeed
// with probability only ≈ e^{-d²/4}). n*d must be even and d < n.
func RandomRegular(n, d int, r *rng.Stream) (*Graph, error) {
	if d < 0 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs 0 <= d < n and even n*d, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return FromEdges(n, nil)
	}
	const maxAttempts = 50
	stubs := make([]int, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, [2]int{stubs[i], stubs[i+1]})
		}
		if repairPairing(pairs, r) {
			edges := make([][2]int, len(pairs))
			copy(edges, pairs)
			return FromEdges(n, edges)
		}
	}
	return nil, fmt.Errorf("graph: random regular (n=%d, d=%d) failed after %d attempts", n, d, maxAttempts)
}

// repairPairing removes self-loops and duplicate edges from a stub pairing
// by swapping endpoints with uniformly chosen other pairs. It reports
// whether the pairing became simple within the repair budget.
func repairPairing(pairs [][2]int, r *rng.Stream) bool {
	key := func(p [2]int) [2]int {
		if p[0] > p[1] {
			return [2]int{p[1], p[0]}
		}
		return p
	}
	budget := 200 * len(pairs)
	for round := 0; round < budget; round++ {
		counts := make(map[[2]int]int, len(pairs))
		for _, p := range pairs {
			counts[key(p)]++
		}
		bad := -1
		for i, p := range pairs {
			if p[0] == p[1] || counts[key(p)] > 1 {
				bad = i
				break
			}
		}
		if bad == -1 {
			return true
		}
		j := r.Intn(len(pairs))
		if j == bad {
			continue
		}
		pairs[bad][1], pairs[j][1] = pairs[j][1], pairs[bad][1]
	}
	return false
}

// ProjectivePlaneIncidence returns the point–line incidence graph of the
// projective plane PG(2,q) for prime q: vertices 0..q²+q are the points,
// vertices q²+q+1..2(q²+q)+1 are the lines, and a point is adjacent to the
// lines containing it. The graph is (q+1)-regular with n = 2(q²+q+1) and
// girth 6 — and since any two points share a line and any two lines share
// a point, the points form a clique in G² and so do the lines. It is
// therefore a worst case for distance-2-coloring TDMA baselines:
// χ(G²) ≥ q²+q+1 = Θ(Δ²) = Θ(n), realizing the paper's min{n, Δ²}
// overhead factor.
func ProjectivePlaneIncidence(q int) (*Graph, error) {
	if q < 2 || !isPrime(q) {
		return nil, fmt.Errorf("graph: projective plane order %d must be prime", q)
	}
	// Normalized homogeneous coordinates over F_q: (1,y,z), (0,1,z), (0,0,1).
	var coords [][3]int
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			coords = append(coords, [3]int{1, y, z})
		}
	}
	for z := 0; z < q; z++ {
		coords = append(coords, [3]int{0, 1, z})
	}
	coords = append(coords, [3]int{0, 0, 1})

	m := len(coords) // q²+q+1
	var edges [][2]int
	for p := 0; p < m; p++ {
		for l := 0; l < m; l++ {
			dot := coords[p][0]*coords[l][0] + coords[p][1]*coords[l][1] + coords[p][2]*coords[l][2]
			if dot%q == 0 {
				edges = append(edges, [2]int{p, m + l})
			}
		}
	}
	return FromEdges(2*m, edges)
}

// isPrime is a local trial-division primality check.
func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// RandomBoundedDegree returns a random graph where each candidate edge of
// G(n,p) is kept only if it respects the degree cap maxDeg at both
// endpoints. The result always has maximum degree <= maxDeg.
func RandomBoundedDegree(n, maxDeg int, p float64, r *rng.Stream) *Graph {
	deg := make([]int, n)
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if deg[u] < maxDeg && deg[v] < maxDeg && r.Bool(p) {
				deg[u]++
				deg[v]++
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return MustFromEdges(n, edges)
}

// RandomGeometricGrid places nodes on a jittered √n×√n grid and connects
// nodes within unit-ish radius while respecting the degree cap. It is the
// sensor-network-flavoured topology used in the examples: connected-ish,
// low degree, moderate diameter.
func RandomGeometricGrid(n, maxDeg int, r *rng.Stream) *Graph {
	side := 1
	for side*side < n {
		side++
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{
			x: float64(i%side) + 0.4*r.Float64(),
			y: float64(i/side) + 0.4*r.Float64(),
		}
	}
	deg := make([]int, n)
	var edges [][2]int
	const radius2 = 1.7 * 1.7
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := pts[u].x-pts[v].x, pts[u].y-pts[v].y
			if dx*dx+dy*dy <= radius2 && deg[u] < maxDeg && deg[v] < maxDeg {
				deg[u]++
				deg[v]++
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return MustFromEdges(n, edges)
}
