package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

func TestFromEdgesValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		edges   [][2]int
		wantErr bool
	}{
		{name: "empty", n: 0},
		{name: "triangle", n: 3, edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}},
		{name: "self loop", n: 2, edges: [][2]int{{0, 0}}, wantErr: true},
		{name: "duplicate", n: 2, edges: [][2]int{{0, 1}, {1, 0}}, wantErr: true},
		{name: "out of range", n: 2, edges: [][2]int{{0, 2}}, wantErr: true},
		{name: "negative n", n: -1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := FromEdges(tt.n, tt.edges)
			if (err != nil) != tt.wantErr {
				t.Errorf("FromEdges err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestBasicAccessors(t *testing.T) {
	g := MustFromEdges(4, [][2]int{{0, 1}, {0, 2}, {2, 3}})
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N,M = %d,%d, want 4,3", g.N(), g.M())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 1 {
		t.Errorf("degrees wrong: %d, %d", g.Degree(0), g.Degree(3))
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(1, 2) {
		t.Error("HasEdge wrong")
	}
	want := []int{1, 2}
	got := g.Neighbors(0)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
	edges := g.Edges()
	if len(edges) != 3 {
		t.Errorf("Edges() returned %d edges", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Errorf("edge %v not in canonical order", e)
		}
	}
}

func TestHandshakeLemma(t *testing.T) {
	r := rng.New(1)
	g := RandomBoundedDegree(50, 6, 0.2, r)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Errorf("degree sum %d != 2m = %d", sum, 2*g.M())
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(5)
	dist, parent := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Errorf("parents wrong: %v", parent)
	}
	if g.Diameter() != 4 {
		t.Errorf("Diameter = %d, want 4", g.Diameter())
	}

	// Disconnected: unreachable gets -1.
	h := MustFromEdges(3, [][2]int{{0, 1}})
	dist, _ = h.BFS(0)
	if dist[2] != -1 {
		t.Errorf("unreachable dist = %d, want -1", dist[2])
	}
	if h.Connected() {
		t.Error("disconnected graph reported connected")
	}
	if !Path(4).Connected() {
		t.Error("path reported disconnected")
	}
}

func TestDiameterKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{name: "K5", g: Complete(5), want: 1},
		{name: "C6", g: Cycle(6), want: 3},
		{name: "C7", g: Cycle(7), want: 3},
		{name: "Q3", g: Hypercube(3), want: 3},
		{name: "grid3x4", g: Grid(3, 4), want: 5},
		{name: "star10", g: Star(10), want: 2},
	}
	for _, tt := range tests {
		if got := tt.g.Diameter(); got != tt.want {
			t.Errorf("%s: Diameter = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestSquare(t *testing.T) {
	// Path 0-1-2-3: square adds {0,2},{1,3}.
	g, err := Path(4).Square()
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	if g.M() != len(wantEdges) {
		t.Fatalf("square has %d edges, want %d: %v", g.M(), len(wantEdges), g.Edges())
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("square missing edge %v", e)
		}
	}
}

func TestSquareOfCompleteIsComplete(t *testing.T) {
	g, err := Complete(6).Square()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 15 {
		t.Errorf("K6² has %d edges, want 15", g.M())
	}
}

func TestGreedyColoringProper(t *testing.T) {
	r := rng.New(2)
	g := RandomBoundedDegree(60, 8, 0.15, r)
	colors := g.GreedyColoring(nil)
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			t.Fatalf("edge %v monochromatic (color %d)", e, colors[e[0]])
		}
	}
	if nc := NumColors(colors); nc > g.MaxDegree()+1 {
		t.Errorf("greedy used %d colors, exceeds Δ+1 = %d", nc, g.MaxDegree()+1)
	}
}

func TestDistanceTwoColoringProper(t *testing.T) {
	r := rng.New(3)
	g := RandomBoundedDegree(60, 5, 0.1, r)
	colors, err := g.DistanceTwoColoring()
	if err != nil {
		t.Fatal(err)
	}
	// No two vertices at distance <= 2 share a color.
	for v := 0; v < g.N(); v++ {
		dist, _ := g.BFS(v)
		for u := 0; u < g.N(); u++ {
			if u != v && dist[u] >= 1 && dist[u] <= 2 && colors[u] == colors[v] {
				t.Fatalf("vertices %d,%d at distance %d share color %d", v, u, dist[u], colors[v])
			}
		}
	}
	delta := g.MaxDegree()
	if nc := NumColors(colors); nc > delta*delta+1 {
		t.Errorf("distance-2 coloring used %d colors, exceeds Δ²+1 = %d", nc, delta*delta+1)
	}
}

func TestHardInstance(t *testing.T) {
	g, err := HardInstance(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 || g.M() != 16 {
		t.Fatalf("hard instance N,M = %d,%d, want 20,16", g.N(), g.M())
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	// Left part connects to all of right part, nothing else.
	for u := 0; u < 4; u++ {
		for v := 4; v < 8; v++ {
			if !g.HasEdge(u, v) {
				t.Errorf("missing bipartite edge (%d,%d)", u, v)
			}
		}
	}
	for v := 8; v < 20; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d should be isolated", v)
		}
	}
	if _, err := HardInstance(5, 3); err == nil {
		t.Error("HardInstance(5,3) should fail (2Δ > n)")
	}
	if _, err := HardInstance(5, 0); err == nil {
		t.Error("HardInstance(5,0) should fail")
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name       string
		g          *Graph
		wantN      int
		wantM      int
		wantMaxDeg int
	}{
		{name: "complete", g: Complete(5), wantN: 5, wantM: 10, wantMaxDeg: 4},
		{name: "bipartite", g: CompleteBipartite(3, 4), wantN: 7, wantM: 12, wantMaxDeg: 4},
		{name: "cycle", g: Cycle(8), wantN: 8, wantM: 8, wantMaxDeg: 2},
		{name: "path", g: Path(8), wantN: 8, wantM: 7, wantMaxDeg: 2},
		{name: "star", g: Star(9), wantN: 9, wantM: 8, wantMaxDeg: 8},
		{name: "grid", g: Grid(3, 5), wantN: 15, wantM: 22, wantMaxDeg: 4},
		{name: "hypercube", g: Hypercube(4), wantN: 16, wantM: 32, wantMaxDeg: 4},
		{name: "tree", g: CompleteBinaryTree(7), wantN: 7, wantM: 6, wantMaxDeg: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.wantN {
				t.Errorf("N = %d, want %d", tt.g.N(), tt.wantN)
			}
			if tt.g.M() != tt.wantM {
				t.Errorf("M = %d, want %d", tt.g.M(), tt.wantM)
			}
			if tt.g.MaxDegree() != tt.wantMaxDeg {
				t.Errorf("MaxDegree = %d, want %d", tt.g.MaxDegree(), tt.wantMaxDeg)
			}
		})
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(4)
	for _, tc := range []struct{ n, d int }{{n: 10, d: 3}, {n: 20, d: 4}, {n: 8, d: 0}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Error("odd n*d should fail")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Error("d >= n should fail")
	}
}

func TestRandomBoundedDegreeRespectsCap(t *testing.T) {
	r := rng.New(5)
	g := RandomBoundedDegree(100, 4, 0.5, r)
	if g.MaxDegree() > 4 {
		t.Errorf("degree cap violated: %d", g.MaxDegree())
	}
	if g.M() == 0 {
		t.Error("expected some edges at p=0.5")
	}
}

func TestRandomGeometricGrid(t *testing.T) {
	r := rng.New(6)
	g := RandomGeometricGrid(49, 8, r)
	if g.N() != 49 {
		t.Fatalf("N = %d", g.N())
	}
	if g.MaxDegree() > 8 {
		t.Errorf("degree cap violated: %d", g.MaxDegree())
	}
	if !g.Connected() {
		t.Error("geometric grid with this seed should be connected")
	}
}

func TestPropertyNeighborsSortedAndSymmetric(t *testing.T) {
	f := func(seed uint64, nRaw, dRaw uint8) bool {
		n := int(nRaw%40) + 2
		d := int(dRaw%5) + 1
		g := RandomBoundedDegree(n, d, 0.3, rng.New(seed))
		for v := 0; v < g.N(); v++ {
			prev := -1
			for _, u := range g.Neighbors(v) {
				if u <= prev || !g.HasEdge(u, v) {
					return false
				}
				prev = u
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySquareContainsOriginal(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		g := RandomBoundedDegree(n, 4, 0.3, rng.New(seed))
		sq, err := g.Square()
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if !sq.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySquareMatchesBFS(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := RandomBoundedDegree(n, 4, 0.3, rng.New(seed))
		sq, err := g.Square()
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			dist, _ := g.BFS(v)
			for u := 0; u < n; u++ {
				if u == v {
					continue
				}
				within2 := dist[u] == 1 || dist[u] == 2
				if within2 != sq.HasEdge(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSquare(b *testing.B) {
	g := RandomBoundedDegree(500, 10, 0.05, rng.New(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.Square()
	}
}

func BenchmarkDistanceTwoColoring(b *testing.B) {
	g := RandomBoundedDegree(500, 10, 0.05, rng.New(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = g.DistanceTwoColoring()
	}
}

func TestRandomRegularHighDegree(t *testing.T) {
	// d >= 6 is where whole-graph rejection sampling fails; the edge-swap
	// repair must handle it.
	r := rng.New(44)
	for _, tc := range []struct{ n, d int }{{n: 32, d: 8}, {n: 64, d: 8}, {n: 48, d: 16}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
}

func TestProjectivePlaneIncidence(t *testing.T) {
	for _, q := range []int{2, 3, 5, 7} {
		g, err := ProjectivePlaneIncidence(q)
		if err != nil {
			t.Fatalf("PG(2,%d): %v", q, err)
		}
		m := q*q + q + 1
		if g.N() != 2*m {
			t.Fatalf("PG(2,%d): n = %d, want %d", q, g.N(), 2*m)
		}
		// (q+1)-regular.
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("PG(2,%d): degree(%d) = %d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		// Girth 6: two points share exactly one line (no 4-cycles).
		for p1 := 0; p1 < m; p1++ {
			for p2 := p1 + 1; p2 < m; p2++ {
				common := 0
				for _, l := range g.Neighbors(p1) {
					if g.HasEdge(p2, l) {
						common++
					}
				}
				if common != 1 {
					t.Fatalf("PG(2,%d): points %d,%d share %d lines, want 1", q, p1, p2, common)
				}
			}
		}
		// The points form a clique in G² (any two points share a line), so
		// χ(G²) ≥ m = Θ(Δ²) — the worst case for distance-2 coloring.
		if q <= 3 {
			sq, err := g.Square()
			if err != nil {
				t.Fatal(err)
			}
			for p1 := 0; p1 < m; p1++ {
				for p2 := p1 + 1; p2 < m; p2++ {
					if !sq.HasEdge(p1, p2) {
						t.Fatalf("PG(2,%d): points %d,%d not adjacent in G²", q, p1, p2)
					}
					if !sq.HasEdge(m+p1, m+p2) {
						t.Fatalf("PG(2,%d): lines %d,%d not adjacent in G²", q, p1, p2)
					}
				}
			}
			d2, err := g.DistanceTwoColoring()
			if err != nil {
				t.Fatal(err)
			}
			if nc := NumColors(d2); nc < m {
				t.Errorf("PG(2,%d): distance-2 coloring used %d colors, want ≥ %d", q, nc, m)
			}
		}
	}
	if _, err := ProjectivePlaneIncidence(4); err == nil {
		t.Error("composite order accepted")
	}
	if _, err := ProjectivePlaneIncidence(1); err == nil {
		t.Error("order 1 accepted")
	}
}

// --- CSR layout tests ---

// edgeListRef is the naive [][]int adjacency reference the CSR layout is
// checked against.
type edgeListRef struct {
	n   int
	adj [][]int
}

func newEdgeListRef(n int, edges [][2]int) *edgeListRef {
	r := &edgeListRef{n: n, adj: make([][]int, n)}
	for _, e := range edges {
		r.adj[e[0]] = append(r.adj[e[0]], e[1])
		r.adj[e[1]] = append(r.adj[e[1]], e[0])
	}
	for v := range r.adj {
		sort.Ints(r.adj[v])
	}
	return r
}

func (r *edgeListRef) hasEdge(u, v int) bool {
	for _, w := range r.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// randomEdges draws a simple random edge set on n vertices.
func randomEdges(n int, p float64, r *rng.Stream) [][2]int {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bool(p) {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// TestPropertyCSRMatchesEdgeList: for random graphs, every accessor of the
// CSR representation agrees with the naive edge-list adjacency.
func TestPropertyCSRMatchesEdgeList(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(80)
		edges := randomEdges(n, 0.1+0.3*r.Float64(), r)
		g := MustFromEdges(n, edges)
		ref := newEdgeListRef(n, edges)

		if g.N() != n || g.M() != len(edges) {
			t.Fatalf("trial %d: N/M = %d/%d, want %d/%d", trial, g.N(), g.M(), n, len(edges))
		}
		totalDeg := 0
		for v := 0; v < n; v++ {
			totalDeg += g.Degree(v)
			if g.Degree(v) != len(ref.adj[v]) {
				t.Fatalf("trial %d: Degree(%d) = %d, want %d", trial, v, g.Degree(v), len(ref.adj[v]))
			}
			nb := g.Neighbors(v)
			row := g.Row(v)
			if len(nb) != len(ref.adj[v]) || len(row) != len(ref.adj[v]) {
				t.Fatalf("trial %d: row lengths differ at %d", trial, v)
			}
			for i := range nb {
				if nb[i] != ref.adj[v][i] || int(row[i]) != ref.adj[v][i] {
					t.Fatalf("trial %d: neighbors of %d = %v / %v, want %v", trial, v, nb, row, ref.adj[v])
				}
			}
		}
		if totalDeg != 2*g.M() {
			t.Fatalf("trial %d: handshake violated: %d vs 2·%d", trial, totalDeg, g.M())
		}
		for probe := 0; probe < 100; probe++ {
			u, v := r.Intn(n), r.Intn(n)
			if g.HasEdge(u, v) != ref.hasEdge(u, v) {
				t.Fatalf("trial %d: HasEdge(%d,%d) = %v disagrees with reference", trial, u, v, g.HasEdge(u, v))
			}
		}
		back := g.Edges()
		if len(back) != len(edges) {
			t.Fatalf("trial %d: Edges() has %d entries, want %d", trial, len(back), len(edges))
		}
		for _, e := range back {
			if !ref.hasEdge(e[0], e[1]) || e[0] >= e[1] {
				t.Fatalf("trial %d: bogus edge %v", trial, e)
			}
		}
	}
}

// TestNeighborhoodOrMatchesNaive: the word-parallel propagation (both the
// sender-centric and the receiver-centric ranged form) must equal the
// per-listener neighbor scan for random graphs and random beep vectors of
// every density (exercising the adaptive switch).
func TestNeighborhoodOrMatchesNaive(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(200)
		g := MustFromEdges(n, randomEdges(n, 0.05+0.2*r.Float64(), r))
		for _, density := range []float64{0, 0.02, 0.3, 0.9, 1} {
			src := bitstring.New(n)
			for v := 0; v < n; v++ {
				if r.Bool(density) {
					src.Set(v)
				}
			}
			want := bitstring.New(n)
			for v := 0; v < n; v++ {
				for _, u := range g.Neighbors(v) {
					if src.Get(u) {
						want.Set(v)
						break
					}
				}
			}
			got := bitstring.New(n)
			g.NeighborhoodOr(src, got)
			if !got.Equal(want) {
				t.Fatalf("trial %d density %v: NeighborhoodOr differs from naive scan", trial, density)
			}
			// Ranged form over an arbitrary word-aligned partition.
			ranged := bitstring.New(n)
			for lo := 0; lo < n; lo += 64 {
				hi := lo + 64
				if hi > n {
					hi = n
				}
				g.NeighborhoodOrRange(src, ranged, lo, hi)
			}
			if !ranged.Equal(want) {
				t.Fatalf("trial %d density %v: NeighborhoodOrRange differs from naive scan", trial, density)
			}
		}
	}
}

// TestNeighborhoodOrPreservesDst: propagation ORs into dst, never clears.
func TestNeighborhoodOrPreservesDst(t *testing.T) {
	g := Path(5)
	src := bitstring.New(5)
	dst := bitstring.New(5)
	dst.Set(4) // pre-existing bit, no beeping neighbors
	g.NeighborhoodOr(src, dst)
	if !dst.Get(4) || dst.Ones() != 1 {
		t.Fatalf("dst = %v, want bit 4 only", dst)
	}
}
