// Package congest implements the message-passing models the paper
// simulates: Broadcast CONGEST (every node sends one O(log n)-bit message
// per round to all neighbors) and CONGEST (per-neighbor messages). Both
// engines enforce the bandwidth limit and run algorithms written against
// small state-machine interfaces, so the same algorithm can execute
// natively here or under the beep-level simulation of internal/core.
//
// Broadcast CONGEST delivery semantics: each round a node receives the
// multiset of its neighbors' messages, unordered and without sender
// attribution (canonically sorted for determinism). This is deliberately
// the weakest delivery the beeping simulation can guarantee — the paper's
// footnote 1 notes that codewords cannot be attributed to specific
// neighbors — and algorithms embed IDs in-band when they need them, as
// the paper's Algorithm 3 does. CONGEST algorithms, by contrast, address
// and receive messages by neighbor ID.
package congest

import (
	"bytes"
	"fmt"
	"slices"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Message is a bandwidth-limited message. A nil Message means "send
// nothing this round"; note that an all-zero message is distinct from nil.
type Message []byte

// Env is the static per-node information either engine provides.
type Env struct {
	ID        int
	N         int
	Degree    int
	MaxDegree int
	// MsgBits is the bandwidth: messages may carry at most this many bits.
	MsgBits int
	// Rng is the node's private randomness.
	Rng *rng.Stream
}

// NodeStream derives the canonical per-node algorithm randomness for a
// given experiment seed. The native engines and the beep-level simulator
// both use it, so an algorithm run under either executes identically.
func NodeStream(seed uint64, node int) *rng.Stream {
	return rng.New(seed).Split(0x616c67, uint64(node)) // "alg"
}

// NodeStreams returns NodeStream(seed, v) for every v in [0, n) as one
// contiguous block — the per-run bulk path, three allocations total
// instead of three per node.
func NodeStreams(seed uint64, n int) []rng.Stream {
	out := make([]rng.Stream, n)
	parent := rng.New(seed)
	for v := range out {
		parent.Split2Into(&out[v], 0x616c67, uint64(v))
	}
	return out
}

// BroadcastAlgorithm is a per-node program for Broadcast CONGEST.
// Each round the engine calls Broadcast for the node's message (nil to
// stay silent), then Receive with the neighbors' messages. A node whose
// Done returns true stops sending and receiving.
//
// Every engine (native and beep-simulated) may call distinct nodes'
// callbacks concurrently within a phase when configured with multiple
// workers; algorithms must keep mutable state per node and use only
// Env.Rng for randomness. Returned messages must not be mutated after
// being returned.
//
// The inbox passed to Receive — the slice and the messages it holds — is
// borrowed: it is valid only for the duration of the call, and engines
// reuse the backing buffers on later rounds. Algorithms that need a
// message past the call must copy it.
type BroadcastAlgorithm interface {
	Init(env Env)
	Broadcast(round int) Message
	Receive(round int, msgs []Message)
	Done() bool
	Output() any
}

// Result summarizes an engine run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// AllDone reports whether every node terminated within the budget.
	AllDone bool
	// Outputs holds each node's Output().
	Outputs []any
	// Messages counts messages sent across the run.
	Messages int64
}

// BroadcastEngine runs BroadcastAlgorithms natively.
type BroadcastEngine struct {
	g       *graph.Graph
	msgBits int
	seed    uint64
	pool    *engine.Pool
}

// NewBroadcastEngine creates an engine over g with the given bandwidth in
// bits per message. The engine starts serial; use SetParallelism for
// multi-worker execution.
func NewBroadcastEngine(g *graph.Graph, msgBits int, seed uint64) (*BroadcastEngine, error) {
	if msgBits <= 0 {
		return nil, fmt.Errorf("congest: bandwidth %d bits", msgBits)
	}
	return &BroadcastEngine{g: g, msgBits: msgBits, seed: seed, pool: engine.NewPool(1, 0)}, nil
}

// SetParallelism configures the worker pool the per-round phases run on
// (workers <= 1 serial, engine.AutoWorkers = GOMAXPROCS; shards 0 =
// derived from workers). Results are bit-identical for every setting.
func (e *BroadcastEngine) SetParallelism(workers, shards int) {
	e.pool = engine.NewPool(workers, shards)
}

// Env builds node v's environment.
func (e *BroadcastEngine) Env(v int) Env {
	return Env{
		ID:        v,
		N:         e.g.N(),
		Degree:    e.g.Degree(v),
		MaxDegree: e.g.MaxDegree(),
		MsgBits:   e.msgBits,
		Rng:       NodeStream(e.seed, v),
	}
}

// Collector runs the broadcast-collection phase shared by the native
// engine, the Algorithm 1 runner, and the TDMA baseline: each non-done
// algorithm's validated message lands in msgs[v] (nil for silence or done
// nodes). A Collector is built once per run — its span callback and
// per-shard accumulators are reused every round, so collection performs
// no steady-state allocations. It is not safe for concurrent Collect
// calls (engines run their phases sequentially).
type Collector struct {
	pool      *engine.Pool
	algs      []BroadcastAlgorithm
	msgs      []Message
	msgBits   int
	errPrefix string

	round int
	sends []int64
	errs  []error
	fn    func(engine.Span)
}

// NewCollector builds a collector writing into msgs (one slot per
// algorithm); errPrefix tags validation errors with the engine's name.
func NewCollector(pool *engine.Pool, algs []BroadcastAlgorithm, msgs []Message, msgBits int, errPrefix string) *Collector {
	c := &Collector{
		pool:      pool,
		algs:      algs,
		msgs:      msgs,
		msgBits:   msgBits,
		errPrefix: errPrefix,
		sends:     make([]int64, pool.NumShards(len(algs))),
		errs:      make([]error, pool.NumShards(len(algs))),
	}
	c.fn = c.collectSpan
	return c
}

// Collect gathers round's broadcasts, returning the sender count and the
// first validation error in node order.
func (c *Collector) Collect(round int) (int64, error) {
	c.round = round
	c.pool.Do(len(c.algs), c.fn)
	var total int64
	for i := range c.sends {
		total += c.sends[i]
	}
	for _, err := range c.errs {
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (c *Collector) collectSpan(s engine.Span) {
	var sends int64
	var firstErr error
	for v := s.Lo; v < s.Hi; v++ {
		a := c.algs[v]
		c.msgs[v] = nil
		if a.Done() {
			continue
		}
		m := a.Broadcast(c.round)
		if m == nil {
			continue
		}
		if err := CheckWidth(m, c.msgBits); err != nil {
			firstErr = fmt.Errorf("%s: node %d round %d: %w", c.errPrefix, v, c.round, err)
			break // abandon the span, like the serial loop the error aborts
		}
		c.msgs[v] = m
		sends++
	}
	c.sends[s.Index], c.errs[s.Index] = sends, firstErr
}

// CollectBroadcasts is a one-shot Collector round, for callers that don't
// keep per-run state.
func CollectBroadcasts(pool *engine.Pool, algs []BroadcastAlgorithm, msgs []Message, msgBits, round int, errPrefix string) (int64, error) {
	return NewCollector(pool, algs, msgs, msgBits, errPrefix).Collect(round)
}

// Run initializes and drives the algorithms until all are done or
// maxRounds communication rounds elapse. The send and deliver phases run
// span-parallel on the engine's pool; results are bit-identical to a
// serial run (each phase writes only per-node slots, and delivery is
// canonically sorted).
func (e *BroadcastEngine) Run(algs []BroadcastAlgorithm, maxRounds int) (*Result, error) {
	n := e.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("congest: %d algorithms for %d nodes", len(algs), n)
	}
	for v, a := range algs {
		a.Init(e.Env(v))
	}
	res := &Result{}
	sent := make([]Message, n)
	done := func(v int) bool { return algs[v].Done() }
	rounds, allDone, err := e.pool.Loop(n, maxRounds, done, func(round int) error {
		count, err := CollectBroadcasts(e.pool, algs, sent, e.msgBits, round, "congest")
		if err != nil {
			return err
		}
		e.pool.Do(n, func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				a := algs[v]
				if a.Done() {
					continue
				}
				var inbox []Message
				for _, u := range e.g.Row(v) {
					if sent[u] != nil {
						inbox = append(inbox, sent[u])
					}
				}
				SortMessages(inbox)
				a.Receive(round, inbox)
			}
		})
		res.Messages += count
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rounds = rounds
	res.AllDone = allDone
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	return res, nil
}

// CheckWidth verifies that m fits in msgBits bits: the byte length must not
// exceed ⌈msgBits/8⌉ and any padding bits in the final byte must be zero
// (so no extra information can be smuggled past the bandwidth limit).
func CheckWidth(m Message, msgBits int) error {
	maxBytes := (msgBits + 7) / 8
	if len(m) > maxBytes {
		return fmt.Errorf("message is %d bytes, bandwidth is %d bits", len(m), msgBits)
	}
	if len(m) == maxBytes && msgBits%8 != 0 {
		if m[len(m)-1]>>(uint(msgBits)%8) != 0 {
			return fmt.Errorf("message uses padding bits beyond the %d-bit bandwidth", msgBits)
		}
	}
	return nil
}

// MessagePool is a grow-on-demand pool of reusable message buffers for
// engines that deliver borrowed inboxes (see BroadcastAlgorithm): buffer
// i is created on first request and reused round to round.
type MessagePool struct {
	bufs [][]byte
}

// Buf returns the i-th buffer sized to size bytes. Contents are whatever
// the previous round left; callers overwrite fully (or use PadInto).
func (p *MessagePool) Buf(i, size int) []byte {
	for len(p.bufs) <= i {
		p.bufs = append(p.bufs, make([]byte, size))
	}
	if cap(p.bufs[i]) < size {
		p.bufs[i] = make([]byte, size)
	}
	return p.bufs[i][:size]
}

// PadInto copies m into the i-th buffer, zero-padding the tail to size
// bytes, and returns the buffer as a Message.
func (p *MessagePool) PadInto(i, size int, m Message) Message {
	buf := p.Buf(i, size)
	n := copy(buf, m)
	for j := n; j < len(buf); j++ {
		buf[j] = 0
	}
	return buf
}

// SortMessages puts a message multiset into its canonical (lexicographic)
// order, the deterministic representation of unattributed delivery. It is
// allocation-free (slices.SortFunc, unlike sort.Slice, builds no closure
// state), so it can sit inside the engines' zero-allocation round loops.
//
// The common engine inbox — a handful of equal-length messages of at
// most 8 bytes — sorts by big-endian integer key instead: for
// equal-length messages that order is exactly bytes.Compare order, and
// the insertion sort skips all comparator calls. Equal keys imply equal
// contents, so the (unstable vs. stable) permutation of duplicates is
// unobservable.
func SortMessages(msgs []Message) {
	if len(msgs) < 2 {
		return
	}
	if L := len(msgs[0]); L <= 8 && len(msgs) <= 32 {
		fixed := true
		for _, m := range msgs[1:] {
			if len(m) != L {
				fixed = false
				break
			}
		}
		if fixed {
			sortFixedSmall(msgs)
			return
		}
	}
	slices.SortFunc(msgs, func(a, b Message) int { return bytes.Compare(a, b) })
}

// beKey folds m's bytes into a big-endian integer; for equal-length
// messages key order coincides with lexicographic byte order.
func beKey(m Message) uint64 {
	var k uint64
	for _, b := range m {
		k = k<<8 | uint64(b)
	}
	return k
}

// sortFixedSmall insertion-sorts equal-length ≤8-byte messages by beKey.
// Keys live in a stack array so each message's bytes are folded once.
func sortFixedSmall(msgs []Message) {
	var keys [32]uint64
	for i, m := range msgs {
		keys[i] = beKey(m)
	}
	for i := 1; i < len(msgs); i++ {
		m, k := msgs[i], keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			msgs[j+1], keys[j+1] = msgs[j], keys[j]
			j--
		}
		msgs[j+1], keys[j+1] = m, k
	}
}
