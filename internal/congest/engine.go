package congest

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Directed is a CONGEST message addressed to a neighbor by node ID.
type Directed struct {
	To  int
	Msg Message
}

// Incoming is a received CONGEST message with sender attribution.
type Incoming struct {
	From int
	Msg  Message
}

// Algorithm is a per-node program for the CONGEST model. Init receives the
// node's neighbor IDs (CONGEST nodes know who their neighbors are; under
// beep-level simulation the same information is obtained by one discovery
// round, per Corollary 12). Send may return at most one message per
// neighbor per round.
//
// As with BroadcastAlgorithm, distinct nodes' callbacks may run
// concurrently when the engine has multiple workers: keep mutable state
// per node and use only Env.Rng for randomness.
type Algorithm interface {
	Init(env Env, neighbors []int)
	Send(round int) []Directed
	Receive(round int, in []Incoming)
	Done() bool
	Output() any
}

// Engine runs CONGEST algorithms natively.
type Engine struct {
	g       *graph.Graph
	msgBits int
	seed    uint64
	pool    *engine.Pool
}

// NewEngine creates a CONGEST engine over g with the given per-message
// bandwidth in bits. The engine starts serial; use SetParallelism for
// multi-worker execution.
func NewEngine(g *graph.Graph, msgBits int, seed uint64) (*Engine, error) {
	if msgBits <= 0 {
		return nil, fmt.Errorf("congest: bandwidth %d bits", msgBits)
	}
	return &Engine{g: g, msgBits: msgBits, seed: seed, pool: engine.NewPool(1, 0)}, nil
}

// SetParallelism configures the worker pool the per-round phases run on
// (workers <= 1 serial, engine.AutoWorkers = GOMAXPROCS; shards 0 =
// derived from workers). Results are bit-identical for every setting.
func (e *Engine) SetParallelism(workers, shards int) {
	e.pool = engine.NewPool(workers, shards)
}

// Env builds node v's environment.
func (e *Engine) Env(v int) Env {
	return Env{
		ID:        v,
		N:         e.g.N(),
		Degree:    e.g.Degree(v),
		MaxDegree: e.g.MaxDegree(),
		MsgBits:   e.msgBits,
		Rng:       NodeStream(e.seed, v),
	}
}

// Run initializes and drives the algorithms until all are done or
// maxRounds communication rounds elapse.
//
// Each round has two span-parallel phases on the engine's pool: a send
// phase in which every node's validated outbox — copied and sorted by
// destination — lands in its own slot, and a receiver-centric delivery
// phase in which each node gathers the message addressed to it from each
// neighbor's outbox by binary search (O(deg·log Δ) per receiver).
// Scanning the CSR row in neighbor order means inboxes arrive sorted by
// sender exactly as the serial engine delivered them. Results are
// bit-identical for every worker setting.
func (e *Engine) Run(algs []Algorithm, maxRounds int) (*Result, error) {
	n := e.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("congest: %d algorithms for %d nodes", len(algs), n)
	}
	for v, a := range algs {
		a.Init(e.Env(v), e.g.Neighbors(v))
	}
	res := &Result{}
	outs := make([][]Directed, n)
	done := func(v int) bool { return algs[v].Done() }
	rounds, allDone, err := e.pool.Loop(n, maxRounds, done, func(round int) error {
		count, err := e.pool.SumErr(n, func(s engine.Span) (int64, error) {
			var sends int64
			for v := s.Lo; v < s.Hi; v++ {
				a := algs[v]
				outs[v] = nil
				if a.Done() {
					continue
				}
				out := a.Send(round)
				seen := make(map[int]bool, len(out))
				for _, d := range out {
					if !e.g.HasEdge(v, d.To) {
						return sends, fmt.Errorf("congest: node %d round %d: sends to non-neighbor %d", v, round, d.To)
					}
					if seen[d.To] {
						return sends, fmt.Errorf("congest: node %d round %d: duplicate message to %d", v, round, d.To)
					}
					seen[d.To] = true
					if err := CheckWidth(d.Msg, e.msgBits); err != nil {
						return sends, fmt.Errorf("congest: node %d round %d: %w", v, round, err)
					}
				}
				// Copy (the algorithm owns its slice) and sort by
				// destination so receivers can binary-search.
				out = append([]Directed(nil), out...)
				sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
				outs[v] = out
				sends += int64(len(out))
			}
			return sends, nil
		})
		if err != nil {
			return err
		}
		e.pool.Do(n, func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				a := algs[v]
				if a.Done() {
					continue
				}
				var in []Incoming
				for _, u := range e.g.Row(v) {
					out := outs[u]
					i, found := sort.Find(len(out), func(i int) int { return v - out[i].To })
					if found {
						in = append(in, Incoming{From: int(u), Msg: out[i].Msg})
					}
				}
				// Row order is ascending, so in is already sorted by From.
				a.Receive(round, in)
			}
		})
		res.Messages += count
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rounds = rounds
	res.AllDone = allDone
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	return res, nil
}
