package congest

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Directed is a CONGEST message addressed to a neighbor by node ID.
type Directed struct {
	To  int
	Msg Message
}

// Incoming is a received CONGEST message with sender attribution.
type Incoming struct {
	From int
	Msg  Message
}

// Algorithm is a per-node program for the CONGEST model. Init receives the
// node's neighbor IDs (CONGEST nodes know who their neighbors are; under
// beep-level simulation the same information is obtained by one discovery
// round, per Corollary 12). Send may return at most one message per
// neighbor per round.
type Algorithm interface {
	Init(env Env, neighbors []int)
	Send(round int) []Directed
	Receive(round int, in []Incoming)
	Done() bool
	Output() any
}

// Engine runs CONGEST algorithms natively.
type Engine struct {
	g       *graph.Graph
	msgBits int
	seed    uint64
}

// NewEngine creates a CONGEST engine over g with the given per-message
// bandwidth in bits.
func NewEngine(g *graph.Graph, msgBits int, seed uint64) (*Engine, error) {
	if msgBits <= 0 {
		return nil, fmt.Errorf("congest: bandwidth %d bits", msgBits)
	}
	return &Engine{g: g, msgBits: msgBits, seed: seed}, nil
}

// Env builds node v's environment.
func (e *Engine) Env(v int) Env {
	return Env{
		ID:        v,
		N:         e.g.N(),
		Degree:    e.g.Degree(v),
		MaxDegree: e.g.MaxDegree(),
		MsgBits:   e.msgBits,
		Rng:       NodeStream(e.seed, v),
	}
}

// Run initializes and drives the algorithms until all are done or
// maxRounds communication rounds elapse.
func (e *Engine) Run(algs []Algorithm, maxRounds int) (*Result, error) {
	n := e.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("congest: %d algorithms for %d nodes", len(algs), n)
	}
	for v, a := range algs {
		a.Init(e.Env(v), e.g.Neighbors(v))
	}
	res := &Result{}
	inboxes := make([][]Incoming, n)
	for round := 0; round < maxRounds; round++ {
		if congestAllDone(algs) {
			break
		}
		for v := range inboxes {
			inboxes[v] = nil
		}
		for v, a := range algs {
			if a.Done() {
				continue
			}
			out := a.Send(round)
			seen := make(map[int]bool, len(out))
			for _, d := range out {
				if !e.g.HasEdge(v, d.To) {
					return nil, fmt.Errorf("congest: node %d round %d: sends to non-neighbor %d", v, round, d.To)
				}
				if seen[d.To] {
					return nil, fmt.Errorf("congest: node %d round %d: duplicate message to %d", v, round, d.To)
				}
				seen[d.To] = true
				if err := CheckWidth(d.Msg, e.msgBits); err != nil {
					return nil, fmt.Errorf("congest: node %d round %d: %w", v, round, err)
				}
				inboxes[d.To] = append(inboxes[d.To], Incoming{From: v, Msg: d.Msg})
				res.Messages++
			}
		}
		for v, a := range algs {
			if a.Done() {
				continue
			}
			in := inboxes[v]
			sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
			a.Receive(round, in)
		}
		res.Rounds++
	}
	res.AllDone = congestAllDone(algs)
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	return res, nil
}

func congestAllDone(algs []Algorithm) bool {
	for _, a := range algs {
		if !a.Done() {
			return false
		}
	}
	return true
}
