package congest

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// gossip is a Broadcast CONGEST test algorithm: every node broadcasts its
// ID in round 0 and records the multiset it receives, then stops.
type gossip struct {
	env      Env
	received []uint64
	done     bool
}

func (g *gossip) Init(env Env) { g.env = env }

func (g *gossip) Broadcast(round int) Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), g.env.MsgBits)
	return w.PaddedBytes(g.env.MsgBits)
}

func (g *gossip) Receive(round int, msgs []Message) {
	for _, m := range msgs {
		v, err := wire.NewReader(m).ReadUint(g.env.MsgBits)
		if err != nil {
			panic(err)
		}
		g.received = append(g.received, v)
	}
	g.done = true
}

func (g *gossip) Done() bool  { return g.done }
func (g *gossip) Output() any { return g.received }

func TestBroadcastGossip(t *testing.T) {
	g := graph.Cycle(5)
	e, err := NewBroadcastEngine(g, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]BroadcastAlgorithm, 5)
	for v := range algs {
		algs[v] = &gossip{}
	}
	res, err := e.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Rounds != 1 {
		t.Fatalf("allDone=%v rounds=%d", res.AllDone, res.Rounds)
	}
	if res.Messages != 5 {
		t.Errorf("Messages = %d, want 5", res.Messages)
	}
	for v := 0; v < 5; v++ {
		got := res.Outputs[v].([]uint64)
		left, right := uint64((v+4)%5), uint64((v+1)%5)
		if len(got) != 2 {
			t.Fatalf("node %d received %v", v, got)
		}
		// Delivery is sorted, not port-ordered.
		lo, hi := left, right
		if lo > hi {
			lo, hi = hi, lo
		}
		if got[0] != lo || got[1] != hi {
			t.Errorf("node %d received %v, want [%d %d]", v, got, lo, hi)
		}
	}
}

// silentEveryOther broadcasts only in even rounds, testing nil-message
// (absence) semantics.
type silentEveryOther struct {
	env    Env
	counts []int
	rounds int
}

func (s *silentEveryOther) Init(env Env) { s.env = env }

func (s *silentEveryOther) Broadcast(round int) Message {
	if round%2 == 1 {
		return nil
	}
	return Message{0}
}

func (s *silentEveryOther) Receive(round int, msgs []Message) {
	s.counts = append(s.counts, len(msgs))
	s.rounds++
}

func (s *silentEveryOther) Done() bool  { return s.rounds >= 4 }
func (s *silentEveryOther) Output() any { return s.counts }

func TestBroadcastNilMeansAbsent(t *testing.T) {
	g := graph.Path(2)
	e, _ := NewBroadcastEngine(g, 8, 1)
	algs := []BroadcastAlgorithm{&silentEveryOther{}, &silentEveryOther{}}
	res, err := e.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1, 0}
	got := res.Outputs[0].([]int)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("received counts = %v, want %v", got, want)
	}
}

// oversender violates the bandwidth.
type oversender struct{ env Env }

func (o *oversender) Init(env Env)           { o.env = env }
func (o *oversender) Broadcast(int) Message  { return make(Message, 100) }
func (o *oversender) Receive(int, []Message) {}
func (o *oversender) Done() bool             { return false }
func (o *oversender) Output() any            { return nil }

func TestBroadcastBandwidthEnforced(t *testing.T) {
	g := graph.Path(2)
	e, _ := NewBroadcastEngine(g, 8, 1)
	if _, err := e.Run([]BroadcastAlgorithm{&oversender{}, &oversender{}}, 5); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestCheckWidth(t *testing.T) {
	tests := []struct {
		name    string
		msg     Message
		bits    int
		wantErr bool
	}{
		{name: "fits exactly", msg: Message{0xff}, bits: 8},
		{name: "short ok", msg: Message{0x01}, bits: 16},
		{name: "nil ok", msg: nil, bits: 8},
		{name: "too long", msg: Message{1, 2, 3}, bits: 16, wantErr: true},
		{name: "padding used", msg: Message{0xff}, bits: 5, wantErr: true},
		{name: "padding clean", msg: Message{0x1f}, bits: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckWidth(tt.msg, tt.bits)
			if (err != nil) != tt.wantErr {
				t.Errorf("CheckWidth = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEngineValidation(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewBroadcastEngine(g, 0, 1); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewEngine(g, -1, 1); err == nil {
		t.Error("negative bandwidth accepted")
	}
	e, _ := NewBroadcastEngine(g, 8, 1)
	if _, err := e.Run(nil, 5); err == nil {
		t.Error("wrong algorithm count accepted")
	}
}

func TestNodeStreamDeterministicPerNode(t *testing.T) {
	a := NodeStream(7, 3)
	b := NodeStream(7, 3)
	c := NodeStream(7, 4)
	if a.Uint64() != b.Uint64() {
		t.Error("NodeStream not deterministic")
	}
	if a.Uint64() == c.Uint64() {
		t.Error("NodeStream identical across nodes")
	}
}

// idExchange is a CONGEST test algorithm: round 0, send each neighbor a
// distinct message (my ID xor their ID); verify reception attribution.
type idExchange struct {
	env       Env
	neighbors []int
	got       map[int]uint64
	done      bool
}

func (x *idExchange) Init(env Env, neighbors []int) {
	x.env = env
	x.neighbors = neighbors
	x.got = make(map[int]uint64)
}

func (x *idExchange) Send(round int) []Directed {
	out := make([]Directed, 0, len(x.neighbors))
	for _, u := range x.neighbors {
		var w wire.Writer
		w.WriteUint(uint64(x.env.ID^u), x.env.MsgBits)
		out = append(out, Directed{To: u, Msg: w.PaddedBytes(x.env.MsgBits)})
	}
	return out
}

func (x *idExchange) Receive(round int, in []Incoming) {
	for _, inc := range in {
		v, err := wire.NewReader(inc.Msg).ReadUint(x.env.MsgBits)
		if err != nil {
			panic(err)
		}
		x.got[inc.From] = v
	}
	x.done = true
}

func (x *idExchange) Done() bool  { return x.done }
func (x *idExchange) Output() any { return x.got }

func TestCongestPerNeighborMessages(t *testing.T) {
	g := graph.Complete(4)
	e, _ := NewEngine(g, 8, 2)
	algs := make([]Algorithm, 4)
	for v := range algs {
		algs[v] = &idExchange{}
	}
	res, err := e.Run(algs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Rounds != 1 {
		t.Fatalf("allDone=%v rounds=%d", res.AllDone, res.Rounds)
	}
	if res.Messages != 12 {
		t.Errorf("Messages = %d, want 12", res.Messages)
	}
	for v := 0; v < 4; v++ {
		got := res.Outputs[v].(map[int]uint64)
		for u := 0; u < 4; u++ {
			if u == v {
				continue
			}
			if got[u] != uint64(u^v) {
				t.Errorf("node %d got %d from %d, want %d", v, got[u], u, u^v)
			}
		}
	}
}

// rogue sends to a non-neighbor.
type rogue struct{ idExchange }

func (r *rogue) Send(round int) []Directed {
	return []Directed{{To: (r.env.ID + 2) % r.env.N, Msg: Message{0}}}
}

func TestCongestRejectsNonNeighborSend(t *testing.T) {
	g := graph.Cycle(5)
	e, _ := NewEngine(g, 8, 2)
	algs := make([]Algorithm, 5)
	for v := range algs {
		algs[v] = &rogue{}
	}
	if _, err := e.Run(algs, 5); err == nil {
		t.Error("send to non-neighbor accepted")
	}
}

// doubler sends two messages to the same neighbor.
type doubler struct{ idExchange }

func (d *doubler) Send(round int) []Directed {
	u := d.neighbors[0]
	return []Directed{{To: u, Msg: Message{0}}, {To: u, Msg: Message{1}}}
}

func TestCongestRejectsDuplicateSend(t *testing.T) {
	g := graph.Path(2)
	e, _ := NewEngine(g, 8, 2)
	if _, err := e.Run([]Algorithm{&doubler{}, &doubler{}}, 5); err == nil {
		t.Error("duplicate send accepted")
	}
}

func TestCongestIncomingSortedByFrom(t *testing.T) {
	g := graph.Star(5)
	e, _ := NewEngine(g, 8, 3)
	algs := make([]Algorithm, 5)
	for v := range algs {
		algs[v] = &idExchange{}
	}
	res, err := e.Run(algs, 5)
	if err != nil {
		t.Fatal(err)
	}
	center := res.Outputs[0].(map[int]uint64)
	if len(center) != 4 {
		t.Errorf("center received from %d senders, want 4", len(center))
	}
}

// TestBroadcastSerialParallelIdentical: the broadcast engine's sharded
// execution must reproduce the serial run exactly — outputs, round count,
// and message count — for every worker/shard setting.
func TestBroadcastSerialParallelIdentical(t *testing.T) {
	g, err := graph.RandomRegular(120, 6, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(workers, shards int) *Result {
		e, err := NewBroadcastEngine(g, 16, 5)
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(workers, shards)
		algs := make([]BroadcastAlgorithm, g.N())
		for v := range algs {
			algs[v] = &gossip{}
		}
		res, err := e.Run(algs, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runOnce(1, 0)
	for _, cfg := range [][2]int{{2, 0}, {4, 3}, {8, 64}} {
		got := runOnce(cfg[0], cfg[1])
		if got.Rounds != want.Rounds || got.AllDone != want.AllDone || got.Messages != want.Messages {
			t.Fatalf("workers=%v: %+v vs serial %+v", cfg, got, want)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("workers=%v: outputs differ from serial run", cfg)
		}
	}
}

// TestCongestSerialParallelIdentical: the directed engine's
// receiver-centric parallel delivery must match the serial run exactly.
func TestCongestSerialParallelIdentical(t *testing.T) {
	g, err := graph.RandomRegular(80, 5, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func(workers, shards int) *Result {
		e, err := NewEngine(g, 16, 9)
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(workers, shards)
		algs := make([]Algorithm, g.N())
		for v := range algs {
			algs[v] = &idExchange{}
		}
		res, err := e.Run(algs, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runOnce(1, 0)
	for _, cfg := range [][2]int{{2, 0}, {6, 10}} {
		got := runOnce(cfg[0], cfg[1])
		if got.Rounds != want.Rounds || got.AllDone != want.AllDone || got.Messages != want.Messages {
			t.Fatalf("workers=%v: %+v vs serial %+v", cfg, got, want)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Fatalf("workers=%v: outputs differ from serial run", cfg)
		}
	}
}

// TestParallelValidationErrorMatchesSerial: bandwidth violations must
// surface the same (first-in-vertex-order) error under parallel execution.
func TestParallelValidationErrorMatchesSerial(t *testing.T) {
	g := graph.Complete(70)
	runOnce := func(workers int) error {
		e, err := NewBroadcastEngine(g, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		e.SetParallelism(workers, 0)
		algs := make([]BroadcastAlgorithm, g.N())
		for v := range algs {
			algs[v] = &oversender{}
		}
		_, err = e.Run(algs, 1)
		return err
	}
	serial := runOnce(1)
	parallel := runOnce(8)
	if serial == nil || parallel == nil {
		t.Fatal("expected bandwidth errors")
	}
	if serial.Error() != parallel.Error() {
		t.Fatalf("error differs: %q vs %q", serial, parallel)
	}
}
