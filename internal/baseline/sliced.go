package baseline

import (
	"fmt"
	"math/bits"

	"repro/internal/beep"
	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/wire"
)

// LaneConfig is one replicate's private randomness in a sliced run: the
// two seeds that distinguish replicates of the same scenario.
type LaneConfig struct {
	ChannelSeed uint64
	AlgSeed     uint64
}

// SlicedRunner advances up to 64 replicates of the TDMA baseline at
// once: lane k of every word belongs to replicate k. All replicates
// share the graph, the coloring, and every Config field except the
// seeds; each lane runs its own algorithm instances against its own
// channel and algorithm streams.
//
// The data layout is lane-transposed. A node's slot pattern is
// []uint64 of slotLen() words — word j holds all lanes' beep decisions
// for slot j of the node's own color slot (patterns are zero outside
// it, which is what makes sliced propagation cheap: the OR over the
// inclusive neighborhood touches (deg+1)·slotLen words instead of the
// serial path's per-lane full windows). Receptions are []uint64 of
// RoundsPerSimRound() words per node; TDMA majorities become vertical
// counters over ρ words (bitstring.LaneCountAtLeast), resolving all
// lanes of one beacon or payload bit together.
//
// Every observable is bit-identical to running each lane through a
// standalone Runner with the lane's seeds (the conformance suite pins
// this per engine × workload × noise model × lane count). The
// ingredients: per-(lane, node) noise samplers over the lane's own
// absolute round counter (beep.SlicedChannel), advanced only on the
// lane's sending rounds; per-lane sender counts, so a lane whose round
// has no senders skips the radio entirely — no noise consumed, no beep
// rounds — exactly like the serial zero-sender short-circuit; and
// per-lane done/retire tracking replicating engine.Pool.Loop round
// accounting.
type SlicedRunner struct {
	g         *graph.Graph
	cfg       Config
	lanes     []LaneConfig
	colors    []int
	numColors int
	pool      *engine.Pool
	channel   *beep.SlicedChannel
	// quiet records that the channel model can never flip a bit
	// (noise.Model.Noiseless). On a quiet channel decode is exact —
	// every majority resolves to the transmitted pattern — so both
	// score counters are provably zero and the scoring pass is skipped.
	quiet bool

	patterns [][]uint64          // [v][slotLen()], own-color-slot transposed beeps
	sendMask []uint64            // [v] lanes in which v transmits this round
	doneMask []uint64            // [v] lanes whose node v was done at collect time
	heard    [][]uint64          // [v][RoundsPerSimRound()] transposed receptions
	msgs     [][]congest.Message // [lane][v]
	scratch  []*slicedScratch
	m        slicedMetrics
}

// slicedMetrics are the sliced runner's telemetry handles; zero value =
// disabled. Occupancy and retirement are the sliced path's distinctive
// signals: how full the 64-lane words actually run, and how unevenly
// replicates finish.
type slicedMetrics struct {
	lanes      *obs.Counter   // lanes started (one per replicate per Run)
	laneRounds *obs.Counter   // sum over rounds of active lanes
	retired    *obs.Counter   // lanes retired before the round budget
	windows    *obs.Counter   // transposed radio windows executed
	occupancy  *obs.Histogram // active lanes per executed round
}

// slicedScratch is one pool shard's reusable per-round state.
type slicedScratch struct {
	inbox     [][]congest.Message   // per lane
	msgPool   []congest.MessagePool // per lane
	truth     []congest.Message
	truthPool congest.MessagePool
	protect   []uint64          // zero except while one node's noise is applied
	bm        []uint64          // [MsgBits] per-bit lane masks (encodePhase scatter)
	scores    []core.ScoreDelta // per lane, current round
	sends     []int64           // per lane, current round
	ones      []int64           // per lane, payload bits set this round
	err       error
	errNode   int
}

// NewSlicedRunner builds a sliced baseline runner over g with one lane
// per entry of lanes (at most 64). cfg's ChannelSeed and AlgSeed are
// ignored — seeds are per-lane.
func NewSlicedRunner(g *graph.Graph, cfg Config, lanes []LaneConfig) (*SlicedRunner, error) {
	if cfg.MsgBits <= 0 {
		return nil, fmt.Errorf("baseline: MsgBits = %d", cfg.MsgBits)
	}
	if len(lanes) == 0 || len(lanes) > 64 {
		return nil, fmt.Errorf("baseline: %d lanes outside [1, 64]", len(lanes))
	}
	var model noise.Model
	calibEps := cfg.Epsilon
	if cfg.Noise != "" {
		if cfg.Epsilon != 0 {
			return nil, fmt.Errorf("baseline: both ε = %v and channel %s given; the model owns the channel, leave ε 0", cfg.Epsilon, cfg.Noise)
		}
		var err error
		if model, err = noise.Parse(cfg.Noise); err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		// Hostile models calibrate against their worst-case per-window
		// rate; stochastic ones against the worst marginal flip rate.
		calibEps = noise.CalibrationRate(model)
		if calibEps >= 0.5 {
			return nil, fmt.Errorf("baseline: channel %s: calibration rate %v outside [0, 0.5)", cfg.Noise, calibEps)
		}
	} else {
		if cfg.Epsilon < 0 || cfg.Epsilon >= 0.5 {
			return nil, fmt.Errorf("baseline: ε = %v outside [0, 0.5)", cfg.Epsilon)
		}
		model = noise.Symmetric{Eps: cfg.Epsilon}
	}
	if cfg.Rho == 0 {
		cfg.Rho = DefaultRho(calibEps)
	}
	if cfg.Rho < 1 || cfg.Rho%2 == 0 {
		return nil, fmt.Errorf("baseline: repetition ρ = %d must be odd and positive", cfg.Rho)
	}
	seeds := make([]uint64, len(lanes))
	for k, lc := range lanes {
		seeds[k] = lc.ChannelSeed
	}
	// Topology-aware models bind here exactly as beep.NewNetwork binds for
	// flat runs, so a lane's receptions match its lane-serial twin.
	if tb, ok := model.(noise.TopologyBinder); ok {
		deg := make([]int, g.N())
		for v := range deg {
			deg[v] = g.Degree(v)
		}
		model = tb.BindTopology(deg, g.MaxDegree())
	}
	channel, err := beep.NewSlicedChannel(model, seeds, g.N())
	if err != nil {
		return nil, err
	}
	colors, err := g.DistanceTwoColoring()
	if err != nil {
		return nil, fmt.Errorf("baseline: distance-2 coloring: %w", err)
	}
	r := &SlicedRunner{
		g:         g,
		cfg:       cfg,
		lanes:     append([]LaneConfig(nil), lanes...),
		colors:    colors,
		numColors: graph.NumColors(colors),
		pool:      engine.NewPool(cfg.Workers, cfg.Shards),
		channel:   channel,
		quiet:     model.Noiseless(),
	}
	n := g.N()
	total := r.RoundsPerSimRound()
	r.patterns = make([][]uint64, n)
	r.sendMask = make([]uint64, n)
	r.doneMask = make([]uint64, n)
	r.heard = make([][]uint64, n)
	for v := 0; v < n; v++ {
		r.patterns[v] = make([]uint64, r.slotLen())
		r.heard[v] = make([]uint64, total)
	}
	r.msgs = make([][]congest.Message, len(lanes))
	for k := range r.msgs {
		r.msgs[k] = make([]congest.Message, n)
	}
	r.scratch = make([]*slicedScratch, r.pool.NumShards(n))
	for i := range r.scratch {
		inbox := make([][]congest.Message, len(lanes))
		for k := range inbox {
			// A node hears at most one sender per non-own color; sizing
			// the inbox (and, via Buf's reuse, the message pool) up
			// front keeps the decode loop free of growth reallocations.
			inbox[k] = make([]congest.Message, 0, r.numColors)
		}
		r.scratch[i] = &slicedScratch{
			inbox:   inbox,
			msgPool: make([]congest.MessagePool, len(lanes)),
			protect: make([]uint64, total),
			bm:      make([]uint64, cfg.MsgBits),
			scores:  make([]core.ScoreDelta, len(lanes)),
			sends:   make([]int64, len(lanes)),
			ones:    make([]int64, len(lanes)),
		}
	}
	if reg := cfg.Metrics; reg != nil {
		r.m = slicedMetrics{
			lanes:      reg.Counter("tdma.sliced.lanes"),
			laneRounds: reg.Counter("tdma.sliced.lane_rounds"),
			retired:    reg.Counter("tdma.sliced.retired_early"),
			windows:    reg.Counter("tdma.sliced.windows"),
			occupancy:  reg.Histogram("tdma.sliced.occupancy"),
		}
		r.pool.Instrument(&engine.PoolMetrics{
			Do:    reg.Counter("pool.do"),
			Spans: reg.Counter("pool.spans"),
			Wait:  reg.Timer("pool.do_wait_nanos"),
		})
		// The accounting hook: wrap every lane's samplers so applied
		// flips land in the per-model counter, byte-identically (see
		// beep.SlicedChannel.CountFlips).
		channel.CountFlips(reg.Counter("noise.flips." + model.Name()))
		if model.Name() == noise.NameAdversary {
			// Budget accounting: a second wrap counts the same flips into
			// the spent counter (each adversarial flip costs one budget
			// unit, per lane).
			channel.CountFlips(reg.Counter("noise.adversary.spent"))
		}
	}
	return r, nil
}

// NumColors returns the schedule length (color classes of G²).
func (r *SlicedRunner) NumColors() int { return r.numColors }

// Rho returns the effective per-bit repetition count (after defaulting).
func (r *SlicedRunner) Rho() int { return r.cfg.Rho }

// Lanes returns the replicate count.
func (r *SlicedRunner) Lanes() int { return len(r.lanes) }

// RoundsPerSimRound mirrors Runner.RoundsPerSimRound.
func (r *SlicedRunner) RoundsPerSimRound() int {
	return r.numColors * (1 + r.cfg.MsgBits) * r.cfg.Rho
}

func (r *SlicedRunner) slotLen() int { return (1 + r.cfg.MsgBits) * r.cfg.Rho }

// Env mirrors Runner.Env for lane k's node v.
func (r *SlicedRunner) Env(k, v int) congest.Env {
	env := r.envNoRng(v)
	env.Rng = congest.NodeStream(r.lanes[k].AlgSeed, v)
	return env
}

func (r *SlicedRunner) envNoRng(v int) congest.Env {
	return congest.Env{
		ID:        v,
		N:         r.g.N(),
		Degree:    r.g.Degree(v),
		MaxDegree: r.g.MaxDegree(),
		MsgBits:   r.cfg.MsgBits,
	}
}

// Run simulates every lane for at most maxSimRounds Broadcast CONGEST
// rounds: algs[k] is lane k's per-node algorithm set. It returns one
// result per lane, each bit-identical to Runner.Run over the lane's
// seeds. Lanes retire independently — a lane whose algorithms all
// finish stops participating while the others continue.
func (r *SlicedRunner) Run(algs [][]congest.BroadcastAlgorithm, maxSimRounds int) ([]*core.Result, error) {
	n := r.g.N()
	if len(algs) != len(r.lanes) {
		return nil, fmt.Errorf("baseline: %d algorithm sets for %d lanes", len(algs), len(r.lanes))
	}
	for k, la := range algs {
		if len(la) != n {
			return nil, fmt.Errorf("baseline: lane %d: %d algorithms for %d nodes", k, len(la), n)
		}
		streams := congest.NodeStreams(r.lanes[k].AlgSeed, n)
		for v, a := range la {
			env := r.envNoRng(v)
			env.Rng = &streams[v]
			a.Init(env)
		}
	}
	results := make([]*core.Result, len(r.lanes))
	for k := range results {
		results[k] = &core.Result{}
	}

	active := laneMask(len(r.lanes)) // lanes still inside their round loop
	r.m.lanes.Add(int64(len(r.lanes)))
	senders := make([]int64, len(r.lanes))
	var (
		curRound   int
		curActive  uint64 // lanes collecting this round
		curSenders uint64 // lanes with ≥1 sender this round
	)
	collectPhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		for k := range r.lanes {
			sc.sends[k], sc.ones[k] = 0, 0
		}
		sc.err = nil
		for v := s.Lo; v < s.Hi; v++ {
			// One Done() call per (lane, node) feeds both the send skip
			// and the round's done mask; decodePhase reads the mask
			// instead of re-querying every lane (no state changes in
			// between — Receive for v happens after its decode).
			var dm uint64
			for m := curActive; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				a := algs[k][v]
				r.msgs[k][v] = nil
				if a.Done() {
					dm |= 1 << uint(k)
					continue
				}
				msg := a.Broadcast(curRound)
				if msg == nil {
					continue
				}
				if err := congest.CheckWidth(msg, r.cfg.MsgBits); err != nil {
					sc.err = fmt.Errorf("baseline: node %d round %d: %w", v, curRound, err)
					sc.errNode = v
					return // abandon the span, like the serial loop the error aborts
				}
				r.msgs[k][v] = msg
				sc.sends[k]++
				for _, b := range msg {
					sc.ones[k] += int64(bits.OnesCount8(b))
				}
			}
			r.doneMask[v] = dm
		}
	}
	encodePhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		rho, msgBits := r.cfg.Rho, r.cfg.MsgBits
		for v := s.Lo; v < s.Hi; v++ {
			var send uint64
			for m := curSenders; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				if r.msgs[k][v] != nil {
					send |= 1 << uint(k)
				}
			}
			r.sendMask[v] = send
			if send == 0 {
				continue
			}
			pat := r.patterns[v]
			for j := 0; j < rho; j++ {
				pat[j] = send // presence beacon
			}
			if msgBits <= 64 {
				// Scatter each sender's payload into per-bit lane masks:
				// one pass over the set bits of each message instead of
				// one wire.Bit extraction per (bit, lane) pair. Short
				// messages read as zero-padded, matching wire.Bit.
				bm := sc.bm
				clear(bm)
				for m := send; m != 0; m &= m - 1 {
					k := bits.TrailingZeros64(m)
					msg := r.msgs[k][v]
					var x uint64
					for i := len(msg) - 1; i >= 0; i-- {
						x = x<<8 | uint64(msg[i])
					}
					lane := uint64(1) << uint(k)
					for ; x != 0; x &= x - 1 {
						bm[bits.TrailingZeros64(x)] |= lane
					}
				}
				for bit := 0; bit < msgBits; bit++ {
					off := (1 + bit) * rho
					bv := bm[bit]
					for j := 0; j < rho; j++ {
						pat[off+j] = bv
					}
				}
				continue
			}
			for bit := 0; bit < msgBits; bit++ {
				var bm uint64
				for m := send; m != 0; m &= m - 1 {
					k := bits.TrailingZeros64(m)
					if wire.Bit(r.msgs[k][v], bit) {
						bm |= 1 << uint(k)
					}
				}
				off := (1 + bit) * rho
				for j := 0; j < rho; j++ {
					pat[off+j] = bm
				}
			}
		}
	}
	total := r.RoundsPerSimRound()
	slot := r.slotLen()
	radioPhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		for v := s.Lo; v < s.Hi; v++ {
			win := r.heard[v]
			clear(win)
			if r.sendMask[v] != 0 {
				copy(win[r.colors[v]*slot:], r.patterns[v])
			}
			for _, u := range r.g.Row(v) {
				if r.sendMask[u] == 0 {
					continue
				}
				// The distance-2 coloring guarantees at most one
				// transmitter per color in v's neighborhood, so each OR
				// lands in its own slot.
				dst := win[r.colors[u]*slot:]
				for j, w := range r.patterns[u] {
					dst[j] |= w
				}
			}
			var protect []uint64
			if !r.cfg.NoisyOwn && r.sendMask[v] != 0 {
				base := r.colors[v] * slot
				copy(sc.protect[base:], r.patterns[v])
				protect = sc.protect
			}
			r.channel.ApplyLaneNoise(v, win, total, curSenders, protect)
			if protect != nil {
				base := r.colors[v] * slot
				clear(sc.protect[base : base+slot])
			}
		}
	}
	decodePhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		for k := range sc.scores {
			sc.scores[k] = core.ScoreDelta{}
		}
		msgBytes := (r.cfg.MsgBits + 7) / 8
		for v := s.Lo; v < s.Hi; v++ {
			need := curSenders &^ r.doneMask[v]
			if need == 0 {
				continue
			}
			if r.quiet {
				r.deliverQuiet(sc, v, need, msgBytes)
			} else {
				r.decodeNode(sc, v, need)
			}
			for m := need; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				inbox := sc.inbox[k]
				congest.SortMessages(inbox)
				if !r.quiet {
					r.scoreLane(sc, &sc.scores[k], k, v, inbox)
				}
				algs[k][v].Receive(curRound, inbox)
				sc.inbox[k] = inbox[:0]
			}
		}
	}

	for round := 0; round < maxSimRounds && active != 0; round++ {
		// Retire lanes whose algorithms all finished — the per-lane image
		// of engine.Pool.Loop's pre-round AllDone check.
		for m := active; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			la := algs[k]
			if r.pool.AllDone(n, func(v int) bool { return la[v].Done() }) {
				results[k].SimRounds = round
				results[k].AllDone = true
				active &^= 1 << uint(k)
				r.m.retired.Inc()
			}
		}
		if active == 0 {
			break
		}
		curRound, curActive = round, active
		if r.m.occupancy != nil {
			occ := int64(bits.OnesCount64(active))
			r.m.occupancy.Observe(occ)
			r.m.laneRounds.Add(occ)
		}
		r.pool.Do(n, collectPhase)
		var firstErr error
		errNode := n
		for k := range senders {
			senders[k] = 0
		}
		for _, sc := range r.scratch {
			if sc.err != nil && sc.errNode < errNode {
				firstErr, errNode = sc.err, sc.errNode
			}
			for k := range senders {
				senders[k] += sc.sends[k]
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
		curSenders = 0
		for k := range senders {
			if senders[k] > 0 {
				curSenders |= 1 << uint(k)
			}
		}
		// Zero-sender lanes short-circuit the radio: every live algorithm
		// hears silence and the lane's channel clock stands still.
		for m := active &^ curSenders; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			for _, a := range algs[k] {
				if !a.Done() {
					a.Receive(round, nil)
				}
			}
		}
		if curSenders == 0 {
			continue
		}
		r.pool.Do(n, encodePhase)
		for m := curSenders; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			var ones int64
			for _, sc := range r.scratch {
				ones += sc.ones[k]
			}
			results[k].Beeps += int64(r.cfg.Rho) * (senders[k] + ones)
			results[k].BeepRounds += total
		}
		r.pool.Do(n, radioPhase)
		r.channel.Advance(curSenders, total)
		r.m.windows.Inc()
		r.pool.Do(n, decodePhase)
		for _, sc := range r.scratch {
			for k := range sc.scores {
				results[k].MembershipErrors += sc.scores[k].Membership
				results[k].MessageErrors += sc.scores[k].Message
			}
		}
	}
	budgetRounds := maxSimRounds
	if budgetRounds < 0 {
		budgetRounds = 0 // Pool.Loop never counts negative budgets
	}
	for m := active; m != 0; m &= m - 1 {
		k := bits.TrailingZeros64(m)
		la := algs[k]
		results[k].SimRounds = budgetRounds
		results[k].AllDone = r.pool.AllDone(n, func(v int) bool { return la[v].Done() })
	}
	for k := range results {
		results[k].Outputs = make([]any, n)
		for v, a := range algs[k] {
			results[k].Outputs[v] = a.Output()
		}
	}
	return results, nil
}

// deliverQuiet fills sc.inbox for a noiseless channel. With no bit
// flips every majority column resolves to the transmitted word, so each
// heard message is provably the sender's collected broadcast,
// zero-padded to the bandwidth — the beep windows need not be read. The
// serial runner takes no such shortcut, so the conformance suite's
// byte-identity checks pin the equivalence rather than assume it.
func (r *SlicedRunner) deliverQuiet(sc *slicedScratch, v int, need uint64, msgBytes int) {
	for _, u := range r.g.Row(v) {
		hear := r.sendMask[u] & need
		for m := hear; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			sc.inbox[k] = append(sc.inbox[k],
				sc.msgPool[k].PadInto(len(sc.inbox[k]), msgBytes, r.msgs[k][u]))
		}
	}
}

// decodeNode fills sc.inbox[k] for every lane in need with node v's
// decoded messages, in ascending color order (pre-sort order is shared
// with the serial decoder so borrowed-buffer reuse patterns match).
func (r *SlicedRunner) decodeNode(sc *slicedScratch, v int, need uint64) {
	rho, slot := r.cfg.Rho, r.slotLen()
	thr := rho/2 + 1 // 2·ones > ρ for odd ρ
	msgBytes := (r.cfg.MsgBits + 7) / 8
	win := r.heard[v]
	if rho == 1 && r.cfg.MsgBits <= 64 {
		// ρ = 1 (the noiseless repetition count): every majority is a
		// single word, so gather each heard lane's payload column into
		// one accumulator and write whole bytes — no per-bit masks, no
		// SetBit calls. Identical output to the general path below.
		msgBits := r.cfg.MsgBits
		for c := 0; c < r.numColors; c++ {
			if c == r.colors[v] {
				continue
			}
			base := c * slot
			heardMask := win[base] & need
			if heardMask == 0 {
				continue
			}
			payload := win[base+1 : base+1+msgBits]
			for m := heardMask; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				var acc uint64
				for bit, w := range payload {
					acc |= (w >> uint(k) & 1) << uint(bit)
				}
				msg := sc.msgPool[k].Buf(len(sc.inbox[k]), msgBytes)
				for i := range msg {
					msg[i] = byte(acc >> uint(8*i))
				}
				sc.inbox[k] = append(sc.inbox[k], msg)
			}
		}
		return
	}
	for c := 0; c < r.numColors; c++ {
		if c == r.colors[v] {
			continue // our own slot (we cannot listen while beeping)
		}
		base := c * slot
		heardMask := majorityMask(win[base:base+rho], thr, need)
		if heardMask == 0 {
			continue
		}
		for m := heardMask; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			msg := sc.msgPool[k].Buf(len(sc.inbox[k]), msgBytes)
			for i := range msg {
				msg[i] = 0
			}
			sc.inbox[k] = append(sc.inbox[k], msg)
		}
		for bit := 0; bit < r.cfg.MsgBits; bit++ {
			off := base + (1+bit)*rho
			bm := majorityMask(win[off:off+rho], thr, heardMask)
			for m := bm; m != 0; m &= m - 1 {
				k := bits.TrailingZeros64(m)
				inbox := sc.inbox[k]
				wire.SetBit(inbox[len(inbox)-1], bit, true)
			}
		}
	}
}

// majorityMask returns the lanes of need whose vertical count over win
// reaches thr. ρ < 128 resolves all 64 lanes at once through the
// vertical-counter compare; larger repetition falls back to per-lane
// popcount columns.
func majorityMask(win []uint64, thr int, need uint64) uint64 {
	if thr <= 0 {
		return need // LaneCountAtLeast saturates: every lane qualifies
	}
	if thr == 1 {
		// Any one suffices: the vertical OR column. ρ = 1 (the noiseless
		// repetition count) always lands here with a single-word window.
		var or uint64
		for _, w := range win {
			or |= w
		}
		return or & need
	}
	if thr == len(win) {
		and := ^uint64(0)
		for _, w := range win {
			and &= w
		}
		return and & need
	}
	if len(win) < 128 {
		return bitstring.LaneCountAtLeast(win, thr) & need
	}
	var out uint64
	for m := need; m != 0; m &= m - 1 {
		k := uint(bits.TrailingZeros64(m))
		cnt := 0
		for _, w := range win {
			cnt += int(w >> k & 1)
		}
		if cnt >= thr {
			out |= 1 << k
		}
	}
	return out
}

// scoreLane is Runner.score for lane k: it compares v's decoded inbox
// against what a native engine would deliver from the lane's collected
// broadcasts.
func (r *SlicedRunner) scoreLane(sc *slicedScratch, d *core.ScoreDelta, k, v int, inbox []congest.Message) {
	truth := sc.truth[:0]
	msgBytes := (r.cfg.MsgBits + 7) / 8
	msgs := r.msgs[k]
	presence := 0
	for _, u := range r.g.Row(v) {
		if msgs[u] != nil {
			presence++
			truth = append(truth, sc.truthPool.PadInto(len(truth), msgBytes, msgs[u]))
		}
	}
	if presence != len(inbox) {
		d.Membership++
	}
	congest.SortMessages(truth)
	equal := len(truth) == len(inbox)
	if equal {
		for i := range truth {
			if !wire.Equal(truth[i], inbox[i], r.cfg.MsgBits) {
				equal = false
				break
			}
		}
	}
	if !equal {
		d.Message++
	}
	sc.truth = truth
}

// laneMask returns the mask of the low n lanes.
func laneMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}
