package baseline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// gossip broadcasts the node ID each round and records received multisets.
type gossip struct {
	env    congest.Env
	rounds int
	got    [][]uint64
	done   bool
}

func (g *gossip) Init(env congest.Env) {
	g.env = env
	if g.rounds == 0 {
		g.rounds = 1
	}
}

func (g *gossip) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}

func (g *gossip) Receive(round int, msgs []congest.Message) {
	var ids []uint64
	for _, m := range msgs {
		id, err := wire.NewReader(m).ReadUint(wire.BitsFor(g.env.N))
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	g.got = append(g.got, ids)
	if len(g.got) >= g.rounds {
		g.done = true
	}
}

func (g *gossip) Done() bool  { return g.done }
func (g *gossip) Output() any { return g.got }

func TestBaselineConfigValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewRunner(g, Config{MsgBits: 0}); err == nil {
		t.Error("MsgBits=0 accepted")
	}
	if _, err := NewRunner(g, Config{MsgBits: 8, Rho: 2}); err == nil {
		t.Error("even ρ accepted")
	}
	if _, err := NewRunner(g, Config{MsgBits: 8, Epsilon: 0.7}); err == nil {
		t.Error("ε=0.7 accepted")
	}
}

func TestBaselineMatchesNativeNoiseless(t *testing.T) {
	g := graph.RandomBoundedDegree(24, 4, 0.15, rng.New(100))
	const algSeed = 9

	native, err := congest.NewBroadcastEngine(g, 12, algSeed)
	if err != nil {
		t.Fatal(err)
	}
	nat := make([]congest.BroadcastAlgorithm, g.N())
	for v := range nat {
		nat[v] = &gossip{rounds: 3}
	}
	natRes, err := native.Run(nat, 10)
	if err != nil {
		t.Fatal(err)
	}

	runner, err := NewRunner(g, Config{MsgBits: 12, Epsilon: 0, ChannelSeed: 1, AlgSeed: algSeed})
	if err != nil {
		t.Fatal(err)
	}
	sim := make([]congest.BroadcastAlgorithm, g.N())
	for v := range sim {
		sim[v] = &gossip{rounds: 3}
	}
	simRes, err := runner.Run(sim, 10)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.MessageErrors != 0 || simRes.MembershipErrors != 0 {
		t.Fatalf("baseline noiseless errors: %d msg, %d presence",
			simRes.MessageErrors, simRes.MembershipErrors)
	}
	for v := 0; v < g.N(); v++ {
		if fmt.Sprint(natRes.Outputs[v]) != fmt.Sprint(simRes.Outputs[v]) {
			t.Errorf("node %d differs:\nnative:   %v\nbaseline: %v", v, natRes.Outputs[v], simRes.Outputs[v])
		}
	}
}

func TestBaselineUnderNoise(t *testing.T) {
	g := graph.RandomBoundedDegree(20, 4, 0.2, rng.New(101))
	runner, err := NewRunner(g, Config{MsgBits: 10, Epsilon: 0.1, ChannelSeed: 2, AlgSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &gossip{rounds: 2}
	}
	res, err := runner.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageErrors != 0 {
		t.Errorf("baseline decode errors at ε=0.1: %d", res.MessageErrors)
	}
}

func TestBaselineOverheadHasColorFactor(t *testing.T) {
	// The baseline's per-round cost carries the min{n, Δ²} factor the
	// paper eliminates: on K_{Δ,Δ} the distance-2 coloring needs 2Δ colors
	// (every pair of same-side vertices is at distance 2).
	g := graph.CompleteBipartite(6, 6)
	runner, err := NewRunner(g, Config{MsgBits: 8, Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if runner.NumColors() < 12 {
		t.Errorf("K_{6,6} distance-2 coloring uses %d colors, want ≥ 12", runner.NumColors())
	}
	want := runner.NumColors() * (1 + 8) * 1
	if runner.RoundsPerSimRound() != want {
		t.Errorf("RoundsPerSimRound = %d, want %d", runner.RoundsPerSimRound(), want)
	}
}

func TestDefaultRhoMonotone(t *testing.T) {
	prev := 0
	for _, eps := range []float64{0, 0.05, 0.1, 0.15, 0.3} {
		rho := DefaultRho(eps)
		if rho < prev {
			t.Errorf("ρ decreased at ε=%v", eps)
		}
		if rho%2 == 0 {
			t.Errorf("ρ=%d is even at ε=%v", rho, eps)
		}
		prev = rho
	}
}

func TestEstimatedSetupRounds(t *testing.T) {
	if got := EstimatedSetupRounds(256, 4); got != 4*4*4*4*8 {
		t.Errorf("EstimatedSetupRounds = %d", got)
	}
}

// TestBaselineSerialParallelIdentical: the TDMA runner's sharded phases
// must be bit-identical to the serial run — outputs, error counters, beep
// rounds, and energy — under noise.
func TestBaselineSerialParallelIdentical(t *testing.T) {
	// n must span several 64-aligned shards or the parallel path is never taken.
	g := graph.RandomBoundedDegree(150, 5, 0.04, rng.New(31))
	runOnce := func(workers, shards int) *core.Result {
		r, err := NewRunner(g, Config{
			MsgBits:     10,
			Epsilon:     0.1,
			ChannelSeed: 4,
			AlgSeed:     5,
			NoisyOwn:    true,
			Workers:     workers,
			Shards:      shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		algs := make([]congest.BroadcastAlgorithm, g.N())
		for v := range algs {
			algs[v] = &gossip{rounds: 3}
		}
		res, err := r.Run(algs, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runOnce(1, 0)
	for _, cfg := range [][2]int{{2, 0}, {5, 7}} {
		got := runOnce(cfg[0], cfg[1])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%v: result differs from serial:\n got %+v\nwant %+v", cfg, got, want)
		}
	}
}

// fixedAlg broadcasts one preallocated message per round with
// allocation-free callbacks (the steady-state allocation probe).
type fixedAlg struct {
	msg    congest.Message
	rounds int
	seen   int
}

func (a *fixedAlg) Init(congest.Env)               { a.seen = 0 }
func (a *fixedAlg) Broadcast(int) congest.Message  { return a.msg }
func (a *fixedAlg) Receive(int, []congest.Message) { a.seen++ }
func (a *fixedAlg) Done() bool                     { return a.seen >= a.rounds }
func (a *fixedAlg) Output() any                    { return nil }

// TestBaselineSteadyStateAllocs: like the Algorithm 1 runner, a warm TDMA
// round (encode, radio, decode, deliver, score) must not allocate outside
// algorithm callbacks. Differencing two Run lengths cancels per-Run setup.
func TestBaselineSteadyStateAllocs(t *testing.T) {
	g, err := graph.RandomRegular(20, 4, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(g, Config{MsgBits: 8, Epsilon: 0.1, ChannelSeed: 3, AlgSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var w wire.Writer
	w.WriteUint(0x3c, 8)
	msg := w.PaddedBytes(8)
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &fixedAlg{msg: msg}
	}
	run := func(rounds int) float64 {
		for _, a := range algs {
			a.(*fixedAlg).rounds = rounds
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := runner.Run(algs, rounds); err != nil {
				panic(err)
			}
		})
	}
	run(2) // warm lazy pattern buffers and noise samplers
	short, long := run(2), run(12)
	if perRound := (long - short) / 10; perRound > 0 {
		t.Errorf("steady-state TDMA round allocates %.2f times (run(12)=%.1f run(2)=%.1f)",
			perRound, long, short)
	}
}
