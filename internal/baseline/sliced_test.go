package baseline

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// sporadic is the conformance workload: nodes sit out a private number
// of initial rounds and finish after a private number of receptions,
// both drawn from the algorithm stream. Replicates with different
// AlgSeeds therefore desynchronize — some lanes hit zero-sender rounds
// (their channel clocks must stand still while other lanes burn beep
// rounds), and lanes retire from the group at different sim rounds —
// exactly the lane-skew the sliced runner must keep bit-identical.
type sporadic struct {
	env    congest.Env
	quiet  int
	rounds int
	got    [][]uint64
	done   bool
}

func (g *sporadic) Init(env congest.Env) {
	g.env = env
	g.quiet = int(env.Rng.Uint64() % 3)
	g.rounds = 2 + int(env.Rng.Uint64()%3)
	g.got = nil
	g.done = false
}

func (g *sporadic) Broadcast(round int) congest.Message {
	if round < g.quiet {
		return nil
	}
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}

func (g *sporadic) Receive(round int, msgs []congest.Message) {
	ids := []uint64{}
	for _, m := range msgs {
		id, err := wire.NewReader(m).ReadUint(wire.BitsFor(g.env.N))
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	g.got = append(g.got, ids)
	if len(g.got) >= g.rounds {
		g.done = true
	}
}

func (g *sporadic) Done() bool  { return g.done }
func (g *sporadic) Output() any { return g.got }

// laneSeeds derives distinct per-replicate seeds, the way a sweep grid
// gives every replicate its own ChannelSeed and AlgSeed.
func laneSeeds(lanes int) []LaneConfig {
	out := make([]LaneConfig, lanes)
	for k := range out {
		out[k] = LaneConfig{ChannelSeed: 1000 + 7*uint64(k), AlgSeed: 2000 + 13*uint64(k)}
	}
	return out
}

// TestSlicedMatchesSerial is the sliced-execution conformance suite at
// the runner level: for every noise model × lane count (1, 3, a
// non-power-of-two remainder, a full word) × own-noise convention, each
// lane of one sliced run must be deep-equal — counters, error scores,
// energy, outputs — to a standalone serial Runner over that lane's
// seeds. The sliced runner is exercised serial and sharded-parallel.
func TestSlicedMatchesSerial(t *testing.T) {
	g := graph.RandomBoundedDegree(18, 4, 0.18, rng.New(600))
	models := []struct {
		label    string
		noise    string
		eps      float64
		noisyOwn bool
	}{
		{label: "noiseless", eps: 0},
		{label: "symmetric", eps: 0.1, noisyOwn: true},
		{label: "symmetric-ownclean", eps: 0.1},
		{label: "asymmetric", noise: "asymmetric:0.03:0.15", noisyOwn: true},
		{label: "erasure", noise: "erasure:0.1:1"},
		{label: "gilbert-elliott", noise: "gilbert-elliott:0.02:0.3:0.1:0.2", noisyOwn: true},
	}
	const budget = 8
	for _, mc := range models {
		for _, lanes := range []int{1, 3, 37, 64} {
			t.Run(fmt.Sprintf("%s/lanes=%d", mc.label, lanes), func(t *testing.T) {
				cfg := Config{
					MsgBits:  8,
					Rho:      5,
					Epsilon:  mc.eps,
					Noise:    mc.noise,
					NoisyOwn: mc.noisyOwn,
				}
				seeds := laneSeeds(lanes)
				// Serial references: one standalone Runner per lane.
				want := make([]*core.Result, lanes)
				for k := 0; k < lanes; k++ {
					kcfg := cfg
					kcfg.ChannelSeed = seeds[k].ChannelSeed
					kcfg.AlgSeed = seeds[k].AlgSeed
					r, err := NewRunner(g, kcfg)
					if err != nil {
						t.Fatal(err)
					}
					algs := make([]congest.BroadcastAlgorithm, g.N())
					for v := range algs {
						algs[v] = &sporadic{}
					}
					if want[k], err = r.Run(algs, budget); err != nil {
						t.Fatal(err)
					}
				}
				for _, workers := range []int{1, 4} {
					scfg := cfg
					scfg.Workers = workers
					sr, err := NewSlicedRunner(g, scfg, seeds)
					if err != nil {
						t.Fatal(err)
					}
					algs := make([][]congest.BroadcastAlgorithm, lanes)
					for k := range algs {
						algs[k] = make([]congest.BroadcastAlgorithm, g.N())
						for v := range algs[k] {
							algs[k][v] = &sporadic{}
						}
					}
					got, err := sr.Run(algs, budget)
					if err != nil {
						t.Fatal(err)
					}
					for k := range got {
						if !reflect.DeepEqual(got[k], want[k]) {
							t.Fatalf("workers=%d lane %d diverges from serial run:\n got %+v\nwant %+v",
								workers, k, got[k], want[k])
						}
					}
				}
			})
		}
	}
}

// pacer makes lane skew deterministic-by-construction: only node 0
// ever transmits, sitting out a private number of initial rounds, and
// only node 0's finish time varies — so each lane's sim-round count and
// zero-sender schedule hinge on single private draws that differ
// across AlgSeeds.
type pacer struct{ sporadic }

func (p *pacer) Init(env congest.Env) {
	p.sporadic.Init(env)
	if env.ID != 0 {
		p.quiet = 1 << 30 // never broadcasts
		p.rounds = 2
	}
}

// TestSlicedLaneSkew asserts the suite covers genuinely skewed lanes:
// across the 64-lane seed set some lane must retire before another,
// and some lane must consume fewer beep rounds than the busiest one
// (zero-sender rounds happened for it alone, its channel clock frozen).
// Without this the conformance matrix could silently degenerate into
// lockstep lanes. The same workload is then pinned against serial runs.
func TestSlicedLaneSkew(t *testing.T) {
	g := graph.RandomBoundedDegree(18, 4, 0.18, rng.New(600))
	seeds := laneSeeds(64)
	cfg := Config{MsgBits: 8, Rho: 5, Epsilon: 0.1, NoisyOwn: true}
	sr, err := NewSlicedRunner(g, cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	algs := make([][]congest.BroadcastAlgorithm, 64)
	for k := range algs {
		algs[k] = make([]congest.BroadcastAlgorithm, g.N())
		for v := range algs[k] {
			algs[k][v] = &pacer{}
		}
	}
	res, err := sr.Run(algs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := range res {
		kcfg := cfg
		kcfg.ChannelSeed = seeds[k].ChannelSeed
		kcfg.AlgSeed = seeds[k].AlgSeed
		r, err := NewRunner(g, kcfg)
		if err != nil {
			t.Fatal(err)
		}
		serial := make([]congest.BroadcastAlgorithm, g.N())
		for v := range serial {
			serial[v] = &pacer{}
		}
		want, err := r.Run(serial, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[k], want) {
			t.Fatalf("lane %d diverges from serial run under skew:\n got %+v\nwant %+v", k, res[k], want)
		}
	}
	minRounds, maxRounds := res[0].SimRounds, res[0].SimRounds
	minBeepRounds, maxBeepRounds := res[0].BeepRounds, res[0].BeepRounds
	for _, r := range res[1:] {
		minRounds, maxRounds = min(minRounds, r.SimRounds), max(maxRounds, r.SimRounds)
		minBeepRounds, maxBeepRounds = min(minBeepRounds, r.BeepRounds), max(maxBeepRounds, r.BeepRounds)
	}
	if minRounds == maxRounds {
		t.Errorf("all 64 lanes ran %d sim rounds; want retirement skew", minRounds)
	}
	if minBeepRounds == maxBeepRounds {
		t.Errorf("all 64 lanes consumed %d beep rounds; want zero-sender skew", minBeepRounds)
	}
}

func TestSlicedRunnerValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewSlicedRunner(g, Config{MsgBits: 8}, nil); err == nil {
		t.Error("0 lanes accepted")
	}
	if _, err := NewSlicedRunner(g, Config{MsgBits: 8}, laneSeeds(65)); err == nil {
		t.Error("65 lanes accepted")
	}
	if _, err := NewSlicedRunner(g, Config{MsgBits: 0}, laneSeeds(2)); err == nil {
		t.Error("MsgBits=0 accepted")
	}
	if _, err := NewSlicedRunner(g, Config{MsgBits: 8, Rho: 2}, laneSeeds(2)); err == nil {
		t.Error("even ρ accepted")
	}
	if _, err := NewSlicedRunner(g, Config{MsgBits: 8, Epsilon: 0.7}, laneSeeds(2)); err == nil {
		t.Error("ε=0.7 accepted")
	}
	if _, err := NewSlicedRunner(g, Config{MsgBits: 8, Epsilon: 0.1, Noise: "erasure:0.1:0"}, laneSeeds(2)); err == nil {
		t.Error("ε and model both set accepted")
	}
	sr, err := NewSlicedRunner(g, Config{MsgBits: 8}, laneSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Run(make([][]congest.BroadcastAlgorithm, 1), 4); err == nil {
		t.Error("lane/algorithm set mismatch accepted")
	}
}
