// Package baseline implements the prior-work simulation of message
// passing with beeps that the paper improves on (§1.2, §1.4): the
// TDMA-style schedule of Beauquier et al. [7] and Ashkenazi–Gelles–Leshem
// [4], which colors G² and lets each color class transmit alone.
//
// Because any two neighbors of a listener are within distance 2 of each
// other, a proper distance-2 coloring guarantees at most one transmitter
// per listener neighborhood per slot, so messages arrive collision-free;
// noise is defeated by per-bit repetition with majority decoding. The cost
// is the Θ(min{n, Δ²}) color classes — exactly the overhead factor the
// paper's superimposed-code approach removes.
//
// The distance-2 coloring itself is computed centrally here, standing in
// for the baselines' expensive distributed setup phase (Δ⁶ rounds in [7],
// O(Δ⁴ log n) in [4]); EstimatedSetupRounds reports that cost for the
// comparison tables. This substitution favors the baseline, making the
// paper's measured advantage conservative.
package baseline

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Config parameterizes the TDMA baseline.
type Config struct {
	// MsgBits is the simulated Broadcast CONGEST bandwidth.
	MsgBits int
	// Rho is the per-bit repetition count (odd); 0 selects a default
	// calibrated to Epsilon.
	Rho int
	// Epsilon is the channel noise rate of the default symmetric
	// channel; leave it 0 when Noise is set.
	Epsilon float64
	// Noise is the canonical channel-model spec (internal/noise.Parse);
	// empty selects the symmetric{Epsilon} channel. A non-empty spec
	// owns the channel, and the default ρ calibrates against the
	// model's worst marginal flip rate.
	Noise string
	// ChannelSeed and AlgSeed mirror core.RunnerConfig.
	ChannelSeed uint64
	AlgSeed     uint64
	// NoisyOwn forwards the own-reception noise convention.
	NoisyOwn bool
	// Workers and Shards mirror core.RunnerConfig: the per-node encode,
	// radio, and decode phases run on a deterministic sharded pool, so
	// results are bit-identical for every setting (0 or 1 = serial,
	// engine.AutoWorkers = GOMAXPROCS).
	Workers int
	Shards  int
	// Metrics, when non-nil, receives baseline telemetry — encode/decode
	// phase timers, slot counters, and (via the beep channel) per-model
	// noise-flip accounting; the sliced runner adds lane occupancy and
	// retirement. Observation-only per the determinism contract.
	Metrics *obs.Registry
}

// tdmaMetrics are the flat runner's resolved telemetry handles; the
// zero value is the disabled state.
type tdmaMetrics struct {
	simRounds   *obs.Counter // simulated Broadcast CONGEST rounds
	emptyRounds *obs.Counter // zero-sender rounds (radio window skipped)
	encodeT     *obs.Timer   // phase: slot-pattern encoding
	radioT      *obs.Timer   // phase: the TDMA window
	decodeT     *obs.Timer   // phase: majority decode + deliver + score
}

// DefaultRho returns a repetition count calibrated to eps, mirroring the
// core package's repetition table so comparisons are apples-to-apples.
func DefaultRho(eps float64) int {
	switch {
	case eps == 0:
		return 1
	case eps < 0.07:
		return 15
	case eps < 0.12:
		return 21
	case eps < 0.2:
		return 31
	case eps < 0.26:
		return 61
	default:
		return 101
	}
}

// Runner simulates Broadcast CONGEST rounds with the color-scheduled
// baseline. Like the Algorithm 1 runner it owns its per-round buffers —
// slot patterns, receptions, and per-shard decode/score scratch — so
// steady-state rounds allocate only inside algorithm callbacks; inboxes
// are borrowed per the congest.BroadcastAlgorithm contract.
type Runner struct {
	g         *graph.Graph
	cfg       Config
	colors    []int
	numColors int
	nw        *beep.Network

	patterns []*bitstring.BitString
	patBuf   []*bitstring.BitString // per-node slot patterns, created lazily
	heard    []*bitstring.BitString
	scratch  []*shardScratch
	m        tdmaMetrics
}

// shardScratch is one execution-pool shard's reusable decode/score state.
type shardScratch struct {
	inbox     []congest.Message
	msgPool   congest.MessagePool
	truth     []congest.Message
	truthPool congest.MessagePool
}

// NewRunner builds a baseline runner over g.
func NewRunner(g *graph.Graph, cfg Config) (*Runner, error) {
	if cfg.MsgBits <= 0 {
		return nil, fmt.Errorf("baseline: MsgBits = %d", cfg.MsgBits)
	}
	var model noise.Model
	calibEps := cfg.Epsilon
	if cfg.Noise != "" {
		if cfg.Epsilon != 0 {
			return nil, fmt.Errorf("baseline: both ε = %v and channel %s given; the model owns the channel, leave ε 0", cfg.Epsilon, cfg.Noise)
		}
		var err error
		if model, err = noise.Parse(cfg.Noise); err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		// Hostile models calibrate against their worst-case per-window
		// rate; stochastic ones against the worst marginal flip rate.
		calibEps = noise.CalibrationRate(model)
		if calibEps >= 0.5 {
			return nil, fmt.Errorf("baseline: channel %s: calibration rate %v outside [0, 0.5)", cfg.Noise, calibEps)
		}
	}
	if cfg.Rho == 0 {
		cfg.Rho = DefaultRho(calibEps)
	}
	if cfg.Rho < 1 || cfg.Rho%2 == 0 {
		return nil, fmt.Errorf("baseline: repetition ρ = %d must be odd and positive", cfg.Rho)
	}
	beepParams := beep.Params{
		Epsilon:  cfg.Epsilon,
		NoisyOwn: cfg.NoisyOwn,
		Seed:     cfg.ChannelSeed,
		Workers:  cfg.Workers,
		Shards:   cfg.Shards,
		Metrics:  cfg.Metrics,
	}
	if model != nil {
		beepParams.Epsilon, beepParams.Noise = 0, model
	}
	nw, err := beep.NewNetwork(g, beepParams)
	if err != nil {
		return nil, err
	}
	colors, err := g.DistanceTwoColoring()
	if err != nil {
		return nil, fmt.Errorf("baseline: distance-2 coloring: %w", err)
	}
	r := &Runner{
		g:         g,
		cfg:       cfg,
		colors:    colors,
		numColors: graph.NumColors(colors),
		nw:        nw,
	}
	n := g.N()
	r.patterns = make([]*bitstring.BitString, n)
	r.patBuf = make([]*bitstring.BitString, n)
	r.heard = make([]*bitstring.BitString, n)
	for v := 0; v < n; v++ {
		r.heard[v] = bitstring.New(r.RoundsPerSimRound())
	}
	r.scratch = make([]*shardScratch, nw.Pool().NumShards(n))
	for i := range r.scratch {
		r.scratch[i] = &shardScratch{}
	}
	if reg := cfg.Metrics; reg != nil {
		r.m = tdmaMetrics{
			simRounds:   reg.Counter("tdma.rounds.sim"),
			emptyRounds: reg.Counter("tdma.rounds.empty"),
			encodeT:     reg.Timer("tdma.phase.encode_nanos"),
			radioT:      reg.Timer("tdma.phase.radio_nanos"),
			decodeT:     reg.Timer("tdma.phase.decode_nanos"),
		}
	}
	return r, nil
}

// NumColors returns the schedule length (color classes of G²).
func (r *Runner) NumColors() int { return r.numColors }

// Rho returns the effective per-bit repetition count (after defaulting),
// so result records can report the baseline's full parameterization.
func (r *Runner) Rho() int { return r.cfg.Rho }

// RoundsPerSimRound returns the beep rounds per simulated round:
// one slot of (1+MsgBits)·ρ rounds per color class (the leading bit is the
// presence beacon distinguishing transmission from silence).
func (r *Runner) RoundsPerSimRound() int {
	return r.numColors * (1 + r.cfg.MsgBits) * r.cfg.Rho
}

// slotLen returns the beep rounds per color slot.
func (r *Runner) slotLen() int { return (1 + r.cfg.MsgBits) * r.cfg.Rho }

// Env mirrors the native engine's environment.
func (r *Runner) Env(v int) congest.Env {
	return congest.Env{
		ID:        v,
		N:         r.g.N(),
		Degree:    r.g.Degree(v),
		MaxDegree: r.g.MaxDegree(),
		MsgBits:   r.cfg.MsgBits,
		Rng:       congest.NodeStream(r.cfg.AlgSeed, v),
	}
}

// Run simulates the algorithms for at most maxSimRounds Broadcast CONGEST
// rounds. The result type is shared with core for comparability;
// MembershipErrors counts presence-detection mistakes (phantom or missed
// transmissions). Per-node phases run on the beep network's deterministic
// sharded pool (Config.Workers/Shards); results are bit-identical to a
// serial run.
func (r *Runner) Run(algs []congest.BroadcastAlgorithm, maxSimRounds int) (*core.Result, error) {
	n := r.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("baseline: %d algorithms for %d nodes", len(algs), n)
	}
	pool := r.nw.Pool()
	for v, a := range algs {
		a.Init(r.Env(v))
	}
	res := &core.Result{}
	msgs := make([]congest.Message, n)
	scores := make([]core.ScoreDelta, pool.NumShards(n))
	collector := congest.NewCollector(pool, algs, msgs, r.cfg.MsgBits, "baseline")
	doneAt := func(v int) bool { return algs[v].Done() }

	// Span callbacks are built once, before the round loop (see the
	// Algorithm 1 runner): steady-state rounds create no closures.
	curRound := 0
	total := r.RoundsPerSimRound()
	encodePhase := func(s engine.Span) {
		for v := s.Lo; v < s.Hi; v++ {
			r.patterns[v] = nil
			if msgs[v] == nil {
				continue
			}
			if r.patBuf[v] == nil {
				r.patBuf[v] = bitstring.New(total)
			}
			p := r.patBuf[v]
			p.Reset()
			base := r.colors[v] * r.slotLen()
			p.SetRange(base, base+r.cfg.Rho) // presence beacon
			for bit := 0; bit < r.cfg.MsgBits; bit++ {
				if !wire.Bit(msgs[v], bit) {
					continue
				}
				off := base + (1+bit)*r.cfg.Rho
				p.SetRange(off, off+r.cfg.Rho)
			}
			r.patterns[v] = p
		}
	}
	decodePhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		scores[s.Index] = core.ScoreDelta{}
		for v := s.Lo; v < s.Hi; v++ {
			a := algs[v]
			if a.Done() {
				continue
			}
			inbox := r.decode(v, r.heard[v], sc)
			congest.SortMessages(inbox)
			r.score(sc, &scores[s.Index], v, msgs, inbox)
			a.Receive(curRound, inbox)
			sc.inbox = inbox[:0]
		}
	}

	simRounds, allDone, err := pool.Loop(n, maxSimRounds, doneAt, func(round int) error {
		curRound = round
		r.m.simRounds.Inc()
		senders, err := collector.Collect(round)
		if err != nil {
			return err
		}
		if senders == 0 {
			r.m.emptyRounds.Inc()
			for _, a := range algs {
				if !a.Done() {
					a.Receive(round, nil)
				}
			}
			return nil
		}

		sp := r.m.encodeT.Start()
		pool.Do(n, encodePhase)
		sp.Stop()
		sp = r.m.radioT.Start()
		if err := r.nw.RunPhaseInto(r.patterns, r.heard); err != nil {
			return err
		}
		sp.Stop()
		res.BeepRounds += total

		sp = r.m.decodeT.Start()
		pool.Do(n, decodePhase)
		sp.Stop()
		res.AddScores(scores)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.SimRounds = simRounds
	res.AllDone = allDone
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	res.Beeps = r.nw.TotalBeeps()
	return res, nil
}

// decode reads every foreign color slot: majority presence beacon, then
// per-bit majority for the payload. Messages land in the shard's reusable
// buffers; the returned inbox is borrowed.
func (r *Runner) decode(v int, heard *bitstring.BitString, sc *shardScratch) []congest.Message {
	inbox := sc.inbox[:0]
	msgBytes := (r.cfg.MsgBits + 7) / 8
	for c := 0; c < r.numColors; c++ {
		if c == r.colors[v] {
			continue // our own slot (we cannot listen while beeping)
		}
		base := c * r.slotLen()
		if !r.majority(heard, base) {
			continue
		}
		m := sc.msgPool.Buf(len(inbox), msgBytes)
		for i := range m {
			m[i] = 0
		}
		for bit := 0; bit < r.cfg.MsgBits; bit++ {
			if r.majority(heard, base+(1+bit)*r.cfg.Rho) {
				wire.SetBit(m, bit, true)
			}
		}
		inbox = append(inbox, m)
	}
	return inbox
}

func (r *Runner) majority(heard *bitstring.BitString, off int) bool {
	return 2*heard.OnesRange(off, off+r.cfg.Rho) > r.cfg.Rho
}

func (r *Runner) score(sc *shardScratch, d *core.ScoreDelta, v int, msgs []congest.Message, inbox []congest.Message) {
	truth := sc.truth[:0]
	msgBytes := (r.cfg.MsgBits + 7) / 8
	presence := 0
	for _, u := range r.g.Row(v) {
		if msgs[u] != nil {
			presence++
			truth = append(truth, sc.truthPool.PadInto(len(truth), msgBytes, msgs[u]))
		}
	}
	if presence != len(inbox) {
		d.Membership++
	}
	congest.SortMessages(truth)
	equal := len(truth) == len(inbox)
	if equal {
		for i := range truth {
			if !wire.Equal(truth[i], inbox[i], r.cfg.MsgBits) {
				equal = false
				break
			}
		}
	}
	if !equal {
		d.Message++
	}
	sc.truth = truth
}

// EstimatedSetupRounds reports the setup cost of the [4] baseline,
// O(Δ⁴ log n) beep rounds (we charge constant 1), which our centralized
// coloring stands in for.
func EstimatedSetupRounds(n, maxDeg int) int {
	logn := wire.BitsFor(n)
	return maxDeg * maxDeg * maxDeg * maxDeg * logn
}
