package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLengths(t *testing.T) {
	tests := []struct {
		n         int
		wantWords int
	}{
		{n: 0, wantWords: 0},
		{n: 1, wantWords: 1},
		{n: 63, wantWords: 1},
		{n: 64, wantWords: 1},
		{n: 65, wantWords: 2},
		{n: 1000, wantWords: 16},
	}
	for _, tt := range tests {
		s := New(tt.n)
		if s.Len() != tt.n {
			t.Errorf("New(%d).Len() = %d, want %d", tt.n, s.Len(), tt.n)
		}
		if got := len(s.Words()); got != tt.wantWords {
			t.Errorf("New(%d) words = %d, want %d", tt.n, got, tt.wantWords)
		}
		if s.Ones() != 0 {
			t.Errorf("New(%d).Ones() = %d, want 0", tt.n, s.Ones())
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGetClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Errorf("fresh bit %d set", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := s.Ones(); got != 8 {
		t.Fatalf("Ones() = %d, want 8", got)
	}
	s.ClearBit(64)
	if s.Get(64) {
		t.Error("bit 64 still set after ClearBit")
	}
	s.SetBool(64, true)
	if !s.Get(64) {
		t.Error("bit 64 not set after SetBool(true)")
	}
	s.SetBool(64, false)
	if s.Get(64) {
		t.Error("bit 64 set after SetBool(false)")
	}
	s.Flip(64)
	if !s.Get(64) {
		t.Error("bit 64 not set after Flip")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Get":   func() { s.Get(10) },
		"Set":   func() { s.Set(-1) },
		"Clear": func() { s.ClearBit(10) },
		"Flip":  func() { s.Flip(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestParseAndString(t *testing.T) {
	tests := []struct {
		text    string
		wantErr bool
	}{
		{text: ""},
		{text: "0"},
		{text: "1"},
		{text: "0101100111"},
		{text: "01021", wantErr: true},
		{text: "abc", wantErr: true},
	}
	for _, tt := range tests {
		s, err := Parse(tt.text)
		if tt.wantErr {
			if err == nil {
				t.Errorf("Parse(%q): no error", tt.text)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.text, err)
			continue
		}
		if got := s.String(); got != tt.text {
			t.Errorf("Parse(%q).String() = %q", tt.text, got)
		}
	}
}

func TestLogicOps(t *testing.T) {
	a := mustParse(t, "110010")
	b := mustParse(t, "101010")
	tests := []struct {
		name string
		got  *BitString
		want string
	}{
		{name: "And", got: a.And(b), want: "100010"},
		{name: "Or", got: a.Or(b), want: "111010"},
		{name: "Xor", got: a.Xor(b), want: "011000"},
		{name: "NotA", got: a.Not(), want: "001101"},
	}
	for _, tt := range tests {
		if got := tt.got.String(); got != tt.want {
			t.Errorf("%s = %q, want %q", tt.name, got, tt.want)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(5), New(6)
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched lengths did not panic")
		}
	}()
	a.And(b)
}

func TestNotMasksTail(t *testing.T) {
	// Not on a length not divisible by 64 must not leak 1s into the tail,
	// or popcounts would be wrong.
	for _, n := range []int{1, 5, 63, 65, 100, 129} {
		s := New(n)
		inv := s.Not()
		if got := inv.Ones(); got != n {
			t.Errorf("Not(zeros(%d)).Ones() = %d, want %d", n, got, n)
		}
		if inv.Not().Ones() != 0 {
			t.Errorf("double Not of zeros(%d) is not zeros", n)
		}
	}
}

func TestCounts(t *testing.T) {
	// a has 1s at {0,1,2,5,8,9}; b has 1s at {1,2,4,5,9}.
	a := mustParse(t, "1110010011")
	b := mustParse(t, "0110110001")
	if got, want := a.AndCount(b), 4; got != want { // {1,2,5,9}
		t.Errorf("AndCount = %d, want %d", got, want)
	}
	if got, want := a.AndNotCount(b), 2; got != want { // {0,8}
		t.Errorf("AndNotCount = %d, want %d", got, want)
	}
	if got, want := a.HammingDistance(b), 3; got != want { // {0,4,8}
		t.Errorf("HammingDistance = %d, want %d", got, want)
	}
	if got, want := a.Zeros(), 4; got != want {
		t.Errorf("Zeros = %d, want %d", got, want)
	}
}

func TestIntersects(t *testing.T) {
	a := mustParse(t, "11100")
	b := mustParse(t, "01110")
	// 1(a ∧ b) = 2.
	tests := []struct {
		d    int
		want bool
	}{
		{d: 0, want: true},
		{d: 1, want: true},
		{d: 2, want: true},
		{d: 3, want: false},
	}
	for _, tt := range tests {
		if got := a.Intersects(b, tt.d); got != tt.want {
			t.Errorf("Intersects(d=%d) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestOnesPositions(t *testing.T) {
	s := New(200)
	want := []int{0, 63, 64, 127, 128, 199}
	for _, p := range want {
		s.Set(p)
	}
	got := s.OnesPositions()
	if len(got) != len(want) {
		t.Fatalf("OnesPositions len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("OnesPositions[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOnePosition(t *testing.T) {
	s := New(150)
	positions := []int{3, 64, 99, 149}
	for _, p := range positions {
		s.Set(p)
	}
	for i, want := range positions {
		got, ok := s.OnePosition(i)
		if !ok || got != want {
			t.Errorf("OnePosition(%d) = (%d,%v), want (%d,true)", i, got, ok, want)
		}
	}
	if _, ok := s.OnePosition(len(positions)); ok {
		t.Error("OnePosition past the last 1 reported ok (want the paper's Null case)")
	}
	if _, ok := s.OnePosition(-1); ok {
		t.Error("OnePosition(-1) reported ok")
	}
}

func TestSuperimpose(t *testing.T) {
	if got := Superimpose(nil); got != nil {
		t.Errorf("Superimpose(nil) = %v, want nil", got)
	}
	a := mustParse(t, "1000")
	b := mustParse(t, "0100")
	c := mustParse(t, "0101")
	got := Superimpose([]*BitString{a, b, c})
	if got.String() != "1101" {
		t.Errorf("Superimpose = %q, want 1101", got.String())
	}
	// Inputs must be unchanged.
	if a.String() != "1000" || b.String() != "0100" {
		t.Error("Superimpose mutated its inputs")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mustParse(t, "1010")
	c := a.Clone()
	c.Set(1)
	if a.Get(1) {
		t.Error("mutating clone changed the original")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not Equal to original")
	}
	if a.Equal(New(5)) {
		t.Error("Equal across lengths")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := mustParse(t, "1100")
	b := mustParse(t, "0110")
	a.OrInPlace(b)
	if a.String() != "1110" {
		t.Errorf("OrInPlace = %q, want 1110", a.String())
	}
	a.XorInPlace(b)
	if a.String() != "1000" {
		t.Errorf("XorInPlace = %q, want 1000", a.String())
	}
	a.Reset()
	if a.Ones() != 0 || a.Len() != 4 {
		t.Errorf("Reset left Ones=%d Len=%d", a.Ones(), a.Len())
	}
}

func TestMaskTailAfterWordsMutation(t *testing.T) {
	s := New(10)
	s.Words()[0] = ^uint64(0)
	s.MaskTail()
	if got := s.Ones(); got != 10 {
		t.Errorf("after MaskTail Ones = %d, want 10", got)
	}
}

// randomBitString is a helper for property tests.
func randomBitString(r *rand.Rand, n int) *BitString {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestPropertyDeMorgan(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		// ¬(a ∨ b) == ¬a ∧ ¬b
		left := a.Or(b).Not()
		right := a.Not().And(b.Not())
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPopcountLinearity(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		// |a| + |b| == |a∨b| + |a∧b|
		return a.Ones()+b.Ones() == a.Or(b).Ones()+a.And(b).Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHammingViaXor(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		return a.HammingDistance(b) == a.Xor(b).Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAndNotCountConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		return a.AndNotCount(b) == a.And(b.Not()).Ones()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectionMonotone(t *testing.T) {
	// Adding strings to a superimposition never decreases d-intersection
	// with a fixed string (monotonicity used implicitly by Lemma 8's
	// superset argument).
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		x := randomBitString(r, n)
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		return x.AndCount(a) <= x.AndCount(a.Or(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw % 300)
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		back, err := Parse(a.String())
		return err == nil && a.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyOnesPositionsConsistent(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		pos := a.OnesPositions()
		if len(pos) != a.Ones() {
			return false
		}
		for i, p := range pos {
			got, ok := a.OnePosition(i)
			if !ok || got != p || !a.Get(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetAllAndCopyFrom(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		s := New(n)
		s.SetAll()
		if s.Ones() != n {
			t.Errorf("n=%d: SetAll gave %d ones", n, s.Ones())
		}
		s.MaskTail()
		if s.Ones() != n {
			t.Errorf("n=%d: SetAll left tail bits set", n)
		}
		dst := New(n)
		dst.CopyFrom(s)
		if !dst.Equal(s) {
			t.Errorf("n=%d: CopyFrom mismatch", n)
		}
		s.Reset()
		if dst.Ones() != n {
			t.Errorf("n=%d: CopyFrom aliased source", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CopyFrom length mismatch did not panic")
		}
	}()
	New(5).CopyFrom(New(6))
}

func TestPropertyAndCountLimit(t *testing.T) {
	f := func(seed int64, nRaw uint16, limRaw uint8) bool {
		n := 1 + int(nRaw)%300
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		exact := a.AndCount(b)
		limit := int(limRaw) % (n + 2)
		got := a.AndCountLimit(b, limit)
		if exact >= limit {
			return got == limit
		}
		return got == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAndNotCountLimit(t *testing.T) {
	f := func(seed int64, nRaw uint16, limRaw uint8) bool {
		n := 1 + int(nRaw)%300
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		exact := a.AndNotCount(b)
		limit := int(limRaw) % (n + 2)
		got := a.AndNotCountLimit(b, limit)
		if exact >= limit {
			return got == limit
		}
		return got == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAndNotCountPrefixLimit(t *testing.T) {
	f := func(seed int64, nRaw uint16, prefRaw, limRaw uint8) bool {
		n := 1 + int(nRaw)%300
		r := rand.New(rand.NewSource(seed))
		a := randomBitString(r, n)
		b := randomBitString(r, n)
		prefix := int(prefRaw) % (n + 10) // may exceed n: clamped
		exact := 0
		for i := 0; i < prefix && i < n; i++ {
			if a.Get(i) && !b.Get(i) {
				exact++
			}
		}
		limit := int(limRaw) % (n + 2)
		got := a.AndNotCountPrefixLimit(b, prefix, limit)
		if exact >= limit {
			return got == limit
		}
		return got == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGatherInto(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 8 + int(nRaw)%200
		k := 1 + int(kRaw)%100
		r := rand.New(rand.NewSource(seed))
		s := randomBitString(r, n)
		positions := make([]int32, k)
		for j := range positions {
			positions[j] = int32(r.Intn(n))
		}
		dst := New(k)
		dst.SetAll() // GatherInto must fully overwrite
		s.GatherInto(dst, positions)
		for j, p := range positions {
			if dst.Get(j) != s.Get(int(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountZerosAtLimit(t *testing.T) {
	f := func(seed int64, nRaw, kRaw, limRaw uint8) bool {
		n := 8 + int(nRaw)%200
		k := 1 + int(kRaw)%100
		r := rand.New(rand.NewSource(seed))
		s := randomBitString(r, n)
		positions := make([]int32, k)
		exact := 0
		for j := range positions {
			positions[j] = int32(r.Intn(n))
			if !s.Get(int(positions[j])) {
				exact++
			}
		}
		limit := int(limRaw) % (k + 2)
		got := s.CountZerosAtLimit(positions, limit)
		if exact >= limit {
			return got == limit
		}
		return got == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustParse(t *testing.T, text string) *BitString {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return s
}

func BenchmarkOrInPlace(b *testing.B) {
	x := New(1 << 16)
	y := New(1 << 16)
	for i := 0; i < y.Len(); i += 3 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.OrInPlace(y)
	}
}

func BenchmarkAndNotCount(b *testing.B) {
	x := New(1 << 16)
	y := New(1 << 16)
	for i := 0; i < x.Len(); i += 2 {
		x.Set(i)
	}
	for i := 0; i < y.Len(); i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndNotCount(y)
	}
}

func TestPropertyOnesRange(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := 1 + int(nRaw)%300
		r := rand.New(rand.NewSource(seed))
		s := randomBitString(r, n)
		lo := r.Intn(n + 1)
		hi := lo + r.Intn(n+1-lo)
		want := 0
		for i := lo; i < hi; i++ {
			if s.Get(i) {
				want++
			}
		}
		return s.OnesRange(lo, hi) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySetRange(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := 1 + int(nRaw)%300
		r := rand.New(rand.NewSource(seed))
		s := randomBitString(r, n)
		want := s.Clone()
		lo := r.Intn(n + 1)
		hi := lo + r.Intn(n+1-lo)
		for i := lo; i < hi; i++ {
			want.Set(i)
		}
		s.SetRange(lo, hi)
		return s.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBoundsPanic(t *testing.T) {
	s := New(70)
	for _, r := range [][2]int{{-1, 5}, {0, 71}, {9, 8}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OnesRange(%d, %d) did not panic", r[0], r[1])
				}
			}()
			s.OnesRange(r[0], r[1])
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRange(%d, %d) did not panic", r[0], r[1])
				}
			}()
			s.SetRange(r[0], r[1])
		}()
	}
}

func TestPropertyScatterGatherLaneRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, laneRaw uint8) bool {
		n := 1 + int(nRaw)%300
		lane := int(laneRaw) % 64
		r := rand.New(rand.NewSource(seed))
		s := randomBitString(r, n)
		words := make([]uint64, n)
		for i := range words {
			words[i] = r.Uint64()
		}
		before := append([]uint64(nil), words...)
		s.ScatterLane(words, lane)
		for i := range words {
			if words[i]&^(1<<uint(lane)) != before[i]&^(1<<uint(lane)) {
				return false // foreign lanes must be untouched
			}
		}
		back := randomBitString(r, n) // dirty: GatherLane must overwrite
		back.GatherLane(words, lane)
		return back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyLaneCountAtLeast(t *testing.T) {
	f := func(seed int64, wRaw, thrRaw uint8) bool {
		w := int(wRaw) % 128
		thr := int(thrRaw) % (w + 3)
		r := rand.New(rand.NewSource(seed))
		words := make([]uint64, w)
		for i := range words {
			words[i] = r.Uint64()
		}
		got := LaneCountAtLeast(words, thr)
		for k := 0; k < 64; k++ {
			count := 0
			for _, word := range words {
				count += int(word >> uint(k) & 1)
			}
			if (got>>uint(k)&1 == 1) != (count >= thr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLaneHelpersPanic(t *testing.T) {
	s := New(70)
	words := make([]uint64, 70)
	for _, bad := range []struct {
		name string
		fn   func()
	}{
		{"scatter lane -1", func() { s.ScatterLane(words, -1) }},
		{"scatter lane 64", func() { s.ScatterLane(words, 64) }},
		{"scatter short window", func() { s.ScatterLane(words[:69], 0) }},
		{"gather lane 64", func() { s.GatherLane(words, 64) }},
		{"gather short window", func() { s.GatherLane(words[:69], 0) }},
		{"count 128-word window", func() { LaneCountAtLeast(make([]uint64, 128), 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", bad.name)
				}
			}()
			bad.fn()
		}()
	}
}
