package bitstring

import (
	"math/bits"
	"testing"
)

// The fuzz targets pin every fused word-parallel helper to a naive
// bit-at-a-time reference over random word windows: the fused helpers
// are the decoders' and the sliced execution mode's hot paths, and any
// masking or early-exit slip shows up here as a divergence from the
// per-bit definition. They run in the CI fuzz smoke beside
// FuzzXorFlipsInto (internal/rng).

// fuzzBits derives an n-bit string from raw fuzz bytes (cycled when
// short), so every target explores arbitrary word contents including the
// all-ones and tail-boundary shapes.
func fuzzBits(raw []byte, salt byte, n int) *BitString {
	s := New(n)
	if len(raw) == 0 {
		raw = []byte{salt}
	}
	for i := 0; i < n; i++ {
		b := raw[i%len(raw)] ^ salt ^ byte(i/len(raw))
		if b>>(uint(i)%8)&1 == 1 {
			s.Set(i)
		}
	}
	return s
}

func FuzzAndCountLimit(f *testing.F) {
	f.Add([]byte{0xff, 0x0f}, uint16(130), uint8(3))
	f.Add([]byte{1, 2, 3}, uint16(64), uint8(0))
	f.Add([]byte{}, uint16(1), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint16, limRaw uint8) {
		n := 1 + int(nRaw)%300
		a, b := fuzzBits(raw, 0x5a, n), fuzzBits(raw, 0xa5, n)
		limit := int(limRaw) % (n + 2)
		exact := 0
		for i := 0; i < n; i++ {
			if a.Get(i) && b.Get(i) {
				exact++
			}
		}
		want := exact
		if want > limit {
			want = limit
		}
		if got := a.AndCountLimit(b, limit); got != want {
			t.Fatalf("AndCountLimit(limit=%d) = %d, want %d (exact %d, n %d)", limit, got, want, exact, n)
		}
	})
}

func FuzzAndNotCountPrefixLimit(f *testing.F) {
	f.Add([]byte{0xf0}, uint16(129), uint16(65), uint8(9))
	f.Add([]byte{7, 7}, uint16(64), uint16(200), uint8(1))
	f.Add([]byte{}, uint16(0), uint16(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw, prefRaw uint16, limRaw uint8) {
		n := 1 + int(nRaw)%300
		a, b := fuzzBits(raw, 0x33, n), fuzzBits(raw, 0xcc, n)
		prefix := int(prefRaw) % (n + 10) // may exceed n: clamped
		limit := int(limRaw) % (n + 2)
		exact := 0
		for i := 0; i < prefix && i < n; i++ {
			if a.Get(i) && !b.Get(i) {
				exact++
			}
		}
		want := exact
		if want > limit {
			want = limit
		}
		if got := a.AndNotCountPrefixLimit(b, prefix, limit); got != want {
			t.Fatalf("AndNotCountPrefixLimit(prefix=%d, limit=%d) = %d, want %d (n %d)", prefix, limit, got, want, n)
		}
	})
}

func FuzzOnesSetRange(f *testing.F) {
	f.Add([]byte{0xaa}, uint16(200), uint16(63), uint16(66))
	f.Add([]byte{0}, uint16(64), uint16(0), uint16(64))
	f.Add([]byte{0xff}, uint16(1), uint16(1), uint16(0))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw, loRaw, hiRaw uint16) {
		n := 1 + int(nRaw)%300
		s := fuzzBits(raw, 0x0f, n)
		lo := int(loRaw) % (n + 1)
		hi := lo + int(hiRaw)%(n+1-lo)
		exact := 0
		for i := lo; i < hi; i++ {
			if s.Get(i) {
				exact++
			}
		}
		if got := s.OnesRange(lo, hi); got != exact {
			t.Fatalf("OnesRange(%d, %d) = %d, want %d (n %d)", lo, hi, got, exact, n)
		}
		orig := s.Clone()
		s.SetRange(lo, hi)
		for i := 0; i < n; i++ {
			want := orig.Get(i) || (i >= lo && i < hi)
			if s.Get(i) != want {
				t.Fatalf("SetRange(%d, %d): bit %d = %v, want %v", lo, hi, i, s.Get(i), want)
			}
		}
		s.maskTail()
		if s.OnesRange(0, n) != s.Ones() {
			t.Fatalf("SetRange(%d, %d) broke the tail invariant", lo, hi)
		}
	})
}

func FuzzLaneScatterGather(f *testing.F) {
	f.Add([]byte{1, 0xfe}, uint16(100), uint8(63))
	f.Add([]byte{0xff}, uint16(64), uint8(0))
	f.Add([]byte{}, uint16(1), uint8(31))
	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint16, laneRaw uint8) {
		n := 1 + int(nRaw)%300
		lane := int(laneRaw) % 64
		s := fuzzBits(raw, 0x77, n)
		// A dirty window: scatter must overwrite exactly lane's column.
		words := make([]uint64, n)
		before := make([]uint64, n)
		for i := range words {
			words[i] = uint64(i)*0x9e3779b97f4a7c15 ^ uint64(laneRaw)
			before[i] = words[i]
		}
		s.ScatterLane(words, lane)
		for i := 0; i < n; i++ {
			if got := words[i]>>(uint(lane))&1 == 1; got != s.Get(i) {
				t.Fatalf("ScatterLane: slot %d lane %d = %v, want %v", i, lane, got, s.Get(i))
			}
			if words[i]&^(1<<uint(lane)) != before[i]&^(1<<uint(lane)) {
				t.Fatalf("ScatterLane: slot %d touched foreign lanes (%#x vs %#x)", i, words[i], before[i])
			}
		}
		// Gather into a dirty string must round-trip.
		back := fuzzBits(raw, 0x88, n)
		back.GatherLane(words, lane)
		if !back.Equal(s) {
			t.Fatalf("GatherLane(ScatterLane(s)) != s for lane %d, n %d", lane, n)
		}
	})
}

func FuzzLaneCountAtLeast(f *testing.F) {
	f.Add([]byte{0xff, 1}, uint8(101), uint8(51))
	f.Add([]byte{0}, uint8(15), uint8(8))
	f.Add([]byte{0xab}, uint8(127), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, wRaw, thrRaw uint8) {
		w := int(wRaw) % 128
		thr := int(thrRaw) % (w + 3) // exercises both saturation edges
		words := make([]uint64, w)
		if len(raw) == 0 {
			raw = []byte{thrRaw}
		}
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[(i*8+b)%len(raw)]^byte(i+b)) << (8 * b)
			}
		}
		got := LaneCountAtLeast(words, thr)
		for k := 0; k < 64; k++ {
			count := 0
			for _, w := range words {
				count += int(w >> uint(k) & 1)
			}
			if want := count >= thr; got>>(uint(k))&1 == 1 != want {
				t.Fatalf("LaneCountAtLeast(%d words, thr %d): lane %d = %v, want %v (count %d)",
					w, thr, k, !want, want, count)
			}
		}
		if ones := bits.OnesCount64(LaneCountAtLeast(words, 0)); ones != 64 {
			t.Fatalf("thr 0 must saturate to all lanes, got %d", ones)
		}
	})
}
