package bitstring

import (
	"testing"
	"testing/quick"
)

// TestAnyRangeMatchesOnesRange pins AnyRange to the reference predicate
// OnesRange > 0 over randomized bitstrings and windows.
func TestAnyRangeMatchesOnesRange(t *testing.T) {
	prop := func(bits []bool, loSeed, hiSeed uint16) bool {
		n := len(bits)
		b := New(n)
		for i, set := range bits {
			if set {
				b.Set(i)
			}
		}
		if n == 0 {
			return !b.AnyRange(0, 0)
		}
		lo := int(loSeed) % (n + 1)
		hi := int(hiSeed) % (n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		return b.AnyRange(lo, hi) == (b.OnesRange(lo, hi) > 0)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAnyRangeEdges(t *testing.T) {
	b := New(200)
	if b.AnyRange(0, 200) {
		t.Fatal("empty bitstring reported occupancy")
	}
	b.Set(63)
	b.Set(128)
	cases := []struct {
		lo, hi int
		want   bool
	}{
		{0, 0, false},
		{0, 63, false},
		{0, 64, true},
		{63, 64, true},
		{64, 128, false},
		{64, 129, true},
		{128, 129, true},
		{129, 200, false},
		{0, 200, true},
	}
	for _, c := range cases {
		if got := b.AnyRange(c.lo, c.hi); got != c.want {
			t.Fatalf("AnyRange(%d, %d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}
