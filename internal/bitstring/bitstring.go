// Package bitstring implements fixed-length binary strings packed into
// 64-bit words, together with the string algebra used throughout the paper
// "Optimal Message-Passing with Noisy Beeps": logical And/Or/Not/Xor,
// popcount (the paper's 1(s)), Hamming distance, superimposition ∨(S), and
// the d-intersection predicate of Definition 2.
//
// BitStrings are the in-memory representation of beep transcripts and
// codewords: bit i is 1 when a beep occurs (or a codeword has a 1) in
// round/position i.
package bitstring

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// BitString is a fixed-length sequence of bits. The zero value is an empty
// (length-0) string; use New to create one of a given length.
//
// Bits beyond Len() in the final word are always kept zero; every mutating
// operation maintains this invariant so that popcount-style queries can
// operate word-parallel without masking.
type BitString struct {
	n     int
	words []uint64
}

// New returns an all-zeros BitString of length n bits.
// It panics if n is negative.
func New(n int) *BitString {
	if n < 0 {
		panic(fmt.Sprintf("bitstring: negative length %d", n))
	}
	return &BitString{n: n, words: make([]uint64, wordsFor(n))}
}

// FromBools returns a BitString whose i-th bit is 1 iff bits[i] is true.
func FromBools(bits []bool) *BitString {
	s := New(len(bits))
	for i, b := range bits {
		if b {
			s.Set(i)
		}
	}
	return s
}

// Parse builds a BitString from a textual form such as "01011", where the
// leftmost character is bit 0. It returns an error on any character other
// than '0' or '1'.
func Parse(text string) (*BitString, error) {
	s := New(len(text))
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '0':
		case '1':
			s.Set(i)
		default:
			return nil, fmt.Errorf("bitstring: invalid character %q at position %d", text[i], i)
		}
	}
	return s, nil
}

// Len returns the number of bits in s.
func (s *BitString) Len() int { return s.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (s *BitString) Get(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to 1. It panics if i is out of range.
func (s *BitString) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// ClearBit sets bit i to 0. It panics if i is out of range.
func (s *BitString) ClearBit(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetBool sets bit i to v. It panics if i is out of range.
func (s *BitString) SetBool(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.ClearBit(i)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (s *BitString) Flip(i int) {
	s.check(i)
	s.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Reset sets every bit to 0, retaining the length.
func (s *BitString) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetAll sets every bit to 1, retaining the length.
func (s *BitString) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
}

// CopyFrom overwrites s with t's bits. It panics if lengths differ.
func (s *BitString) CopyFrom(t *BitString) {
	s.checkLen(t)
	copy(s.words, t.words)
}

// Ones returns the number of 1-bits in s: the paper's 1(s).
func (s *BitString) Ones() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Zeros returns the number of 0-bits in s.
func (s *BitString) Zeros() int { return s.n - s.Ones() }

// Clone returns an independent copy of s.
func (s *BitString) Clone() *BitString {
	c := &BitString{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Equal reports whether s and t have the same length and bits.
func (s *BitString) Equal(t *BitString) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// And returns the bitwise AND s ∧ t as a new BitString.
// It panics if lengths differ.
func (s *BitString) And(t *BitString) *BitString {
	s.checkLen(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] & t.words[i]
	}
	return r
}

// Or returns the bitwise OR s ∨ t as a new BitString.
// It panics if lengths differ.
func (s *BitString) Or(t *BitString) *BitString {
	s.checkLen(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] | t.words[i]
	}
	return r
}

// Xor returns the bitwise XOR s ⊕ t as a new BitString.
// It panics if lengths differ.
func (s *BitString) Xor(t *BitString) *BitString {
	s.checkLen(t)
	r := New(s.n)
	for i := range s.words {
		r.words[i] = s.words[i] ^ t.words[i]
	}
	return r
}

// Not returns the bitwise complement ¬s as a new BitString.
func (s *BitString) Not() *BitString {
	r := New(s.n)
	for i := range s.words {
		r.words[i] = ^s.words[i]
	}
	r.maskTail()
	return r
}

// OrInPlace sets s = s ∨ t. It panics if lengths differ.
func (s *BitString) OrInPlace(t *BitString) {
	s.checkLen(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// XorInPlace sets s = s ⊕ t. It panics if lengths differ.
func (s *BitString) XorInPlace(t *BitString) {
	s.checkLen(t)
	for i := range s.words {
		s.words[i] ^= t.words[i]
	}
}

// AndCount returns 1(s ∧ t) without allocating. It panics if lengths differ.
func (s *BitString) AndCount(t *BitString) int {
	s.checkLen(t)
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w & t.words[i])
	}
	return total
}

// AndNotCount returns 1(s ∧ ¬t) without allocating: the number of positions
// where s has a 1 and t has a 0. This is the workhorse of the §4 membership
// test (codeword vs. complement of the heard transcript).
// It panics if lengths differ.
func (s *BitString) AndNotCount(t *BitString) int {
	s.checkLen(t)
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w &^ t.words[i])
	}
	return total
}

// AndNotCountLimit returns min(1(s ∧ ¬t), limit), early-exiting the word
// sweep once limit is reached — the membership test's "count misses up to
// θ" in one popcount pass. It panics if lengths differ.
func (s *BitString) AndNotCountLimit(t *BitString, limit int) int {
	s.checkLen(t)
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w &^ t.words[i])
		if total >= limit {
			return limit
		}
	}
	return total
}

// AndCountLimit returns min(1(s ∧ t), limit), early-exiting the word sweep
// once limit is reached. Callers that only compare the intersection count
// against a threshold d get the exact same verdict from
// AndCountLimit(t, d) >= d at a fraction of the scan cost.
// It panics if lengths differ.
func (s *BitString) AndCountLimit(t *BitString, limit int) int {
	s.checkLen(t)
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w & t.words[i])
		if total >= limit {
			return limit
		}
	}
	return total
}

// GatherInto writes into dst the bits of s at the given positions:
// dst bit j becomes s bit positions[j]. This is the decoder's ỹ gather —
// reading a codeword's W positions out of a length-b transcript — fused
// into one table-driven pass with no allocation. dst must have exactly
// len(positions) bits; positions must be in range.
func (s *BitString) GatherInto(dst *BitString, positions []int32) {
	if dst.n != len(positions) {
		panic(fmt.Sprintf("bitstring: gather into %d bits from %d positions", dst.n, len(positions)))
	}
	dst.Reset()
	for j, p := range positions {
		if s.words[p>>6]&(1<<(uint(p)&63)) != 0 {
			dst.words[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// CountZerosAtLimit returns min(z, limit) where z is the number of the
// given positions at which s reads 0 — the decoder's stage-A probe count,
// early-exited once the rejection threshold is reached. Positions must be
// in range.
func (s *BitString) CountZerosAtLimit(positions []int32, limit int) int {
	zeros := 0
	for _, p := range positions {
		if s.words[p>>6]&(1<<(uint(p)&63)) == 0 {
			zeros++
			if zeros >= limit {
				return limit
			}
		}
	}
	return zeros
}

// AndNotCountPrefixLimit returns min(z, limit) where z is the number of
// positions in [0, prefixBits) with s=1 and t=0 — the decoder's stage-A
// probe count run word-parallel over the probe region instead of
// position by position. prefixBits is clamped to Len().
// It panics if lengths differ.
func (s *BitString) AndNotCountPrefixLimit(t *BitString, prefixBits, limit int) int {
	s.checkLen(t)
	if prefixBits > s.n {
		prefixBits = s.n
	}
	if prefixBits <= 0 {
		return 0
	}
	full := prefixBits / wordBits
	total := 0
	for i := 0; i < full; i++ {
		total += bits.OnesCount64(s.words[i] &^ t.words[i])
		if total >= limit {
			return limit
		}
	}
	if rem := prefixBits % wordBits; rem != 0 {
		tail := uint64(1)<<uint(rem) - 1
		total += bits.OnesCount64(s.words[full] &^ t.words[full] & tail)
		if total >= limit {
			return limit
		}
	}
	return total
}

// OnesRange returns the number of 1-bits in positions [lo, hi) — the
// word-parallel form of a per-position Get loop over a contiguous run
// (the TDMA baseline's per-slot majorities). It panics if the range is
// out of bounds or inverted.
func (s *BitString) OnesRange(lo, hi int) int {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitstring: range [%d,%d) out of bounds [0,%d)", lo, hi, s.n))
	}
	if lo == hi {
		return 0
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if loW == hiW {
		return bits.OnesCount64(s.words[loW] & loMask & hiMask)
	}
	total := bits.OnesCount64(s.words[loW] & loMask)
	for i := loW + 1; i < hiW; i++ {
		total += bits.OnesCount64(s.words[i])
	}
	return total + bits.OnesCount64(s.words[hiW]&hiMask)
}

// AnyRange reports whether any bit in [lo, hi) is 1 — OnesRange with an
// early exit, the span-occupancy probe of the sparse engines' dirty-word
// masks. It panics if the range is out of bounds or inverted.
func (s *BitString) AnyRange(lo, hi int) bool {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitstring: range [%d,%d) out of bounds [0,%d)", lo, hi, s.n))
	}
	if lo == hi {
		return false
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if loW == hiW {
		return s.words[loW]&loMask&hiMask != 0
	}
	if s.words[loW]&loMask != 0 {
		return true
	}
	for i := loW + 1; i < hiW; i++ {
		if s.words[i] != 0 {
			return true
		}
	}
	return s.words[hiW]&hiMask != 0
}

// SetRange sets every bit in [lo, hi) to 1 — the word-parallel form of a
// per-position Set loop over a contiguous run. It panics if the range is
// out of bounds or inverted.
func (s *BitString) SetRange(lo, hi int) {
	if lo < 0 || hi > s.n || lo > hi {
		panic(fmt.Sprintf("bitstring: range [%d,%d) out of bounds [0,%d)", lo, hi, s.n))
	}
	if lo == hi {
		return
	}
	loW, hiW := lo/wordBits, (hi-1)/wordBits
	loMask := ^uint64(0) << (uint(lo) % wordBits)
	hiMask := ^uint64(0) >> (wordBits - 1 - uint(hi-1)%wordBits)
	if loW == hiW {
		s.words[loW] |= loMask & hiMask
		return
	}
	s.words[loW] |= loMask
	for i := loW + 1; i < hiW; i++ {
		s.words[i] = ^uint64(0)
	}
	s.words[hiW] |= hiMask
}

// ScatterLane writes s into one lane of a lane-transposed window: bit i
// of s becomes bit lane of words[i]. This is the flat→sliced transform of
// the replicate-sliced execution mode, where lane k of every window word
// belongs to replicate k (64 replicates per word). words must have at
// least Len() entries; other lanes are left untouched. It panics if lane
// is outside [0, 64) or words is too short.
func (s *BitString) ScatterLane(words []uint64, lane int) {
	checkLane(lane, len(words), s.n)
	bit := uint64(1) << uint(lane)
	for i := 0; i < s.n; i++ {
		if s.words[i>>6]&(1<<(uint(i)&63)) != 0 {
			words[i] |= bit
		} else {
			words[i] &^= bit
		}
	}
}

// GatherLane overwrites s with one lane of a lane-transposed window: bit i
// of s becomes bit lane of words[i] — the sliced→flat inverse of
// ScatterLane. words must have at least Len() entries. It panics if lane
// is outside [0, 64) or words is too short.
func (s *BitString) GatherLane(words []uint64, lane int) {
	checkLane(lane, len(words), s.n)
	s.Reset()
	for i := 0; i < s.n; i++ {
		if words[i]>>(uint(lane))&1 == 1 {
			s.words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

func checkLane(lane, words, n int) {
	if lane < 0 || lane >= wordBits {
		panic(fmt.Sprintf("bitstring: lane %d outside [0, %d)", lane, wordBits))
	}
	if words < n {
		panic(fmt.Sprintf("bitstring: %d window words cannot hold %d slots", words, n))
	}
}

// LaneCountAtLeast returns the 64 vertical popcounts of a lane-transposed
// window compared against a threshold in one pass: bit k of the result is
// 1 iff the number of words with bit k set is at least thr. It is the
// replicate-sliced form of 64 independent OnesRange majorities (the TDMA
// baseline's per-slot votes: thr = ρ/2+1 decides 2·ones > ρ for all 64
// lanes at once), computed with ripple-carry vertical counters — seven
// 64-lane counter bits, so len(words) must be < 128. thr values outside
// [0, len(words)] saturate to all-ones / all-zeros.
func LaneCountAtLeast(words []uint64, thr int) uint64 {
	if thr <= 0 {
		return ^uint64(0)
	}
	if thr > len(words) {
		return 0
	}
	if len(words) >= 128 {
		panic(fmt.Sprintf("bitstring: LaneCountAtLeast window of %d words overflows 7-bit counters", len(words)))
	}
	var c [7]uint64 // c[i] holds bit i of each lane's count
	for _, w := range words {
		carry := w
		for i := 0; carry != 0; i++ {
			c[i], carry = c[i]^carry, c[i]&carry
		}
	}
	// Lane-parallel unsigned compare count >= thr, MSB down: a lane is
	// greater the first time its count bit exceeds the threshold bit.
	gt, eq := uint64(0), ^uint64(0)
	for i := 6; i >= 0; i-- {
		t := uint64(0)
		if thr>>uint(i)&1 == 1 {
			t = ^uint64(0)
		}
		gt |= eq & c[i] &^ t
		eq &^= c[i] ^ t
	}
	return gt | eq
}

// HammingDistance returns d_H(s, t), the number of positions where s and t
// differ. It panics if lengths differ.
func (s *BitString) HammingDistance(t *BitString) int {
	s.checkLen(t)
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w ^ t.words[i])
	}
	return total
}

// Intersects reports whether s d-intersects t per Definition 2:
// 1(s ∧ t) ≥ d. It panics if lengths differ.
func (s *BitString) Intersects(t *BitString, d int) bool {
	return s.AndCount(t) >= d
}

// OnesPositions returns the sorted positions of all 1-bits.
func (s *BitString) OnesPositions() []int {
	out := make([]int, 0, s.Ones())
	for wi, w := range s.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+tz)
			w &= w - 1
		}
	}
	return out
}

// OnePosition returns the position of the i-th 1-bit (0-indexed), matching
// the paper's Notation 7 ("1_i(s)" with 1-indexing shifted down by one).
// The second return value is false if s has at most i ones (the paper's
// Null case).
func (s *BitString) OnePosition(i int) (int, bool) {
	if i < 0 {
		return 0, false
	}
	seen := 0
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if seen+c <= i {
			seen += c
			continue
		}
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if seen == i {
				return wi*wordBits + tz, true
			}
			seen++
			w &= w - 1
		}
	}
	return 0, false
}

// String renders s as a string of '0'/'1' characters, bit 0 first.
func (s *BitString) String() string {
	var sb strings.Builder
	sb.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Words exposes the backing words of s for word-parallel batch operations
// (the beep engine's vectorized phase path). The final word's unused high
// bits are guaranteed zero. The returned slice aliases s; callers that
// mutate it must preserve the tail invariant (see MaskTail).
func (s *BitString) Words() []uint64 { return s.words }

// MaskTail zeroes any bits beyond Len() in the final word, restoring the
// representation invariant after direct Words() mutation.
func (s *BitString) MaskTail() { s.maskTail() }

// Superimpose returns ∨(S), the bitwise OR of all strings in set, matching
// the paper's §1.5 shorthand. All strings must share one length; it panics
// otherwise. Superimpose of an empty set returns nil.
func Superimpose(set []*BitString) *BitString {
	if len(set) == 0 {
		return nil
	}
	r := set[0].Clone()
	for _, s := range set[1:] {
		r.OrInPlace(s)
	}
	return r
}

func (s *BitString) maskTail() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

func (s *BitString) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, s.n))
	}
}

func (s *BitString) checkLen(t *BitString) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitstring: length mismatch %d vs %d", s.n, t.n))
	}
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }
