// Package mis implements Luby's maximal independent set algorithm in
// Broadcast CONGEST. MIS is the classic beeping-model benchmark (Afek et
// al.'s biological networks paper, cited in the paper's introduction);
// here it demonstrates running an off-the-shelf message-passing algorithm
// through the beep simulation.
//
// Each iteration takes two broadcast rounds: undecided nodes broadcast a
// random value (candidate round); local minima join the MIS and announce
// (join round); neighbors of joiners drop out.
package mis

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/wire"
)

const valueBits = 24

// MsgBits returns the bandwidth needed on an n-node graph: a tag bit, an
// ID, and a value.
func MsgBits(n int) int { return 1 + wire.BitsFor(n) + valueBits }

// MaxRounds returns a generous budget: O(log n) iterations w.h.p., two
// rounds each.
func MaxRounds(n int) int { return 2 * (8*wire.BitsFor(n) + 16) }

// Status is a node's MIS decision.
type Status int

const (
	// Undecided nodes are still running.
	Undecided Status = iota
	// In nodes joined the MIS.
	In
	// Out nodes have an MIS neighbor.
	Out
)

// Algorithm is the per-node Luby MIS state machine.
type Algorithm struct {
	env    congest.Env
	idBits int

	status   Status
	myVal    uint64
	isMin    bool
	announce bool
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.idBits = wire.BitsFor(env.N)
	if env.MsgBits < MsgBits(env.N) {
		panic(fmt.Sprintf("mis: bandwidth %d < required %d", env.MsgBits, MsgBits(env.N)))
	}
}

// Broadcast implements congest.BroadcastAlgorithm.
func (a *Algorithm) Broadcast(round int) congest.Message {
	if round%2 == 0 { // candidate round
		a.myVal = a.env.Rng.Uint64() & (1<<valueBits - 1)
		a.isMin = true
		var w wire.Writer
		w.WriteBool(false)
		w.WriteUint(uint64(a.env.ID), a.idBits)
		w.WriteUint(a.myVal, valueBits)
		return w.PaddedBytes(a.env.MsgBits)
	}
	// Join round.
	if !a.isMin {
		return nil
	}
	a.announce = true
	var w wire.Writer
	w.WriteBool(true)
	w.WriteUint(uint64(a.env.ID), a.idBits)
	w.WriteUint(0, valueBits)
	return w.PaddedBytes(a.env.MsgBits)
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	if round%2 == 0 {
		for _, m := range msgs {
			r := wire.NewReader(m)
			join, err1 := r.ReadBool()
			id, err2 := r.ReadUint(a.idBits)
			val, err3 := r.ReadUint(valueBits)
			if err1 != nil || err2 != nil || err3 != nil || join {
				continue
			}
			// Priority order: (value, ID), lower wins.
			if val < a.myVal || (val == a.myVal && int(id) < a.env.ID) {
				a.isMin = false
			}
		}
		return
	}
	if a.announce {
		a.status = In
		return
	}
	for _, m := range msgs {
		r := wire.NewReader(m)
		join, err := r.ReadBool()
		if err == nil && join {
			a.status = Out
			return
		}
	}
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.status != Undecided }

// Output returns true iff the node is in the MIS.
func (a *Algorithm) Output() any { return a.status == In }

// New returns per-node instances for an n-node run.
func New(n int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{}
	}
	return algs
}

// Verify checks that the boolean outputs form a maximal independent set of
// g: no two adjacent members, and every non-member has a member neighbor.
func Verify(g *graph.Graph, inMIS []bool) error {
	if len(inMIS) != g.N() {
		return fmt.Errorf("mis: %d outputs for %d nodes", len(inMIS), g.N())
	}
	for _, e := range g.Edges() {
		if inMIS[e[0]] && inMIS[e[1]] {
			return fmt.Errorf("mis: adjacent members %d,%d", e[0], e[1])
		}
	}
	for v := 0; v < g.N(); v++ {
		if inMIS[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("mis: node %d has no member in its closed neighborhood", v)
		}
	}
	return nil
}
