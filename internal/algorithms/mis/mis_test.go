package mis

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func outputsToBools(t *testing.T, outs []any) []bool {
	t.Helper()
	res := make([]bool, len(outs))
	for i, o := range outs {
		b, ok := o.(bool)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = b
	}
	return res
}

func TestNativeMIS(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(10)},
		{name: "cycle", g: graph.Cycle(9)},
		{name: "complete", g: graph.Complete(8)},
		{name: "star", g: graph.Star(12)},
		{name: "edgeless", g: graph.MustFromEdges(5, nil)},
		{name: "random", g: graph.RandomBoundedDegree(80, 6, 0.1, rng.New(1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := congest.NewBroadcastEngine(tt.g, MsgBits(tt.g.N()), 5)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(New(tt.g.N()), MaxRounds(tt.g.N()))
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDone {
				t.Fatal("MIS did not terminate")
			}
			if err := Verify(tt.g, outputsToBools(t, res.Outputs)); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
		})
	}
}

func TestMISCompleteGraphSingleton(t *testing.T) {
	g := graph.Complete(10)
	e, _ := congest.NewBroadcastEngine(g, MsgBits(10), 3)
	res, err := e.Run(New(10), MaxRounds(10))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, o := range res.Outputs {
		if o.(bool) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("MIS of K10 has %d members, want 1", count)
	}
}

func TestMISOverNoisyBeeps(t *testing.T) {
	g := graph.RandomBoundedDegree(18, 4, 0.2, rng.New(2))
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.1),
		ChannelSeed: 8,
		AlgSeed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N()), MaxRounds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("MIS over beeps did not terminate")
	}
	if err := Verify(g, outputsToBools(t, res.Outputs)); err != nil {
		t.Fatalf("invalid MIS over noisy beeps: %v", err)
	}
}

func TestVerifyRejectsBadMIS(t *testing.T) {
	g := graph.Path(4)
	tests := []struct {
		name string
		in   []bool
	}{
		{name: "adjacent members", in: []bool{true, true, false, true}},
		{name: "not maximal", in: []bool{true, false, false, false}},
		{name: "empty", in: []bool{false, false, false, false}},
		{name: "wrong length", in: []bool{true}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(g, tt.in); err == nil {
				t.Error("invalid MIS accepted")
			}
		})
	}
	if err := Verify(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := Verify(g, []bool{false, true, false, true}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
}
