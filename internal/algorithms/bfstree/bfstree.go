// Package bfstree builds a breadth-first-search tree from a root in
// Broadcast CONGEST: the root announces distance 0; a node adopts
// distance d+1 on first hearing distance d and announces once. With the
// beep-level simulation this is the message-passing counterpart of the
// beep-wave broadcast primitive.
package bfstree

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/wire"
)

// MsgBits returns the bandwidth needed on an n-node graph: an ID plus a
// distance counter.
func MsgBits(n int) int { return 2 * wire.BitsFor(n) }

// Result is a node's BFS output.
type Result struct {
	// Dist is the BFS distance from the root, or -1 if unreached.
	Dist int
	// Parent is the lowest-ID neighbor at distance Dist-1, or -1.
	Parent int
}

// Algorithm is the per-node BFS state machine.
type Algorithm struct {
	// Root marks the BFS source.
	Root bool

	env       congest.Env
	idBits    int
	dist      int
	parent    int
	announced bool
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.idBits = wire.BitsFor(env.N)
	if env.MsgBits < MsgBits(env.N) {
		panic(fmt.Sprintf("bfstree: bandwidth %d < required %d", env.MsgBits, MsgBits(env.N)))
	}
	a.dist = -1
	a.parent = -1
	if a.Root {
		a.dist = 0
	}
}

// Broadcast implements congest.BroadcastAlgorithm: announce once, in the
// round equal to our distance (which synchronizes the wavefront).
func (a *Algorithm) Broadcast(round int) congest.Message {
	if a.dist != round || a.announced {
		return nil
	}
	a.announced = true
	var w wire.Writer
	w.WriteUint(uint64(a.env.ID), a.idBits)
	w.WriteUint(uint64(a.dist), a.idBits)
	return w.PaddedBytes(a.env.MsgBits)
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	if a.dist >= 0 {
		return
	}
	best := -1
	for _, m := range msgs {
		r := wire.NewReader(m)
		id, err1 := r.ReadUint(a.idBits)
		d, err2 := r.ReadUint(a.idBits)
		if err1 != nil || err2 != nil || int(d) != round {
			continue
		}
		if best == -1 || int(id) < best {
			best = int(id)
		}
	}
	if best >= 0 {
		a.dist = round + 1
		a.parent = best
	}
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.announced }

// Output returns the node's Result.
func (a *Algorithm) Output() any { return Result{Dist: a.dist, Parent: a.parent} }

// New returns per-node instances with the given root.
func New(n, root int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{Root: v == root}
	}
	return algs
}

// Verify checks outputs against the graph's true BFS distances from root
// and validates parent pointers.
func Verify(g *graph.Graph, root int, outputs []Result) error {
	if len(outputs) != g.N() {
		return fmt.Errorf("bfstree: %d outputs for %d nodes", len(outputs), g.N())
	}
	dist, _ := g.BFS(root)
	for v, out := range outputs {
		if out.Dist != dist[v] {
			return fmt.Errorf("bfstree: node %d dist %d, want %d", v, out.Dist, dist[v])
		}
		if v == root || out.Dist < 0 {
			continue
		}
		if out.Parent < 0 || !g.HasEdge(v, out.Parent) {
			return fmt.Errorf("bfstree: node %d parent %d is not a neighbor", v, out.Parent)
		}
		if dist[out.Parent] != out.Dist-1 {
			return fmt.Errorf("bfstree: node %d parent %d at distance %d, want %d",
				v, out.Parent, dist[out.Parent], out.Dist-1)
		}
	}
	return nil
}
