package bfstree

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func outputsToResults(t *testing.T, outs []any) []Result {
	t.Helper()
	res := make([]Result, len(outs))
	for i, o := range outs {
		r, ok := o.(Result)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = r
	}
	return res
}

func TestNativeBFS(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		root int
	}{
		{name: "path from end", g: graph.Path(10), root: 0},
		{name: "path from middle", g: graph.Path(11), root: 5},
		{name: "grid", g: graph.Grid(5, 5), root: 12},
		{name: "hypercube", g: graph.Hypercube(4), root: 3},
		{name: "random", g: graph.RandomBoundedDegree(60, 5, 0.1, rng.New(1)), root: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := congest.NewBroadcastEngine(tt.g, MsgBits(tt.g.N()), 2)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(New(tt.g.N(), tt.root), tt.g.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(tt.g, tt.root, outputsToResults(t, res.Outputs)); err != nil {
				t.Fatalf("invalid BFS tree: %v", err)
			}
		})
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}})
	e, _ := congest.NewBroadcastEngine(g, MsgBits(5), 2)
	res, err := e.Run(New(5, 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	outs := outputsToResults(t, res.Outputs)
	if err := Verify(g, 0, outs); err != nil {
		t.Fatal(err)
	}
	if outs[4].Dist != -1 || outs[4].Parent != -1 {
		t.Errorf("unreachable node output %+v", outs[4])
	}
}

func TestBFSOverNoisyBeeps(t *testing.T) {
	g := graph.Grid(4, 4)
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.1),
		ChannelSeed: 12,
		AlgSeed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N(), 0), g.N()+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, 0, outputsToResults(t, res.Outputs)); err != nil {
		t.Fatalf("invalid BFS over noisy beeps: %v", err)
	}
	// The BFS wave takes diameter+1 simulated rounds; each costs
	// RoundsPerSimRound beeps — the O(D + something)·Δ·log n shape.
	if res.BeepRounds > (g.Diameter()+2)*runner.Params().RoundsPerSimRound() {
		t.Errorf("BFS used %d beep rounds, want ≤ %d",
			res.BeepRounds, (g.Diameter()+2)*runner.Params().RoundsPerSimRound())
	}
}

func TestVerifyRejectsBadTrees(t *testing.T) {
	g := graph.Path(4)
	good := []Result{{Dist: 0, Parent: -1}, {Dist: 1, Parent: 0}, {Dist: 2, Parent: 1}, {Dist: 3, Parent: 2}}
	if err := Verify(g, 0, good); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	tests := []struct {
		name string
		out  []Result
	}{
		{name: "wrong dist", out: []Result{{0, -1}, {2, 0}, {2, 1}, {3, 2}}},
		{name: "parent not neighbor", out: []Result{{0, -1}, {1, 0}, {2, 0}, {3, 2}}},
		{name: "parent wrong level", out: []Result{{0, -1}, {1, 0}, {2, 1}, {3, 1}}},
		{name: "wrong length", out: []Result{{0, -1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(g, 0, tt.out); err == nil {
				t.Error("invalid tree accepted")
			}
		})
	}
}
