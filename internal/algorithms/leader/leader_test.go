package leader

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

func outputsToResults(t *testing.T, outs []any) []Result {
	t.Helper()
	res := make([]Result, len(outs))
	for i, o := range outs {
		r, ok := o.(Result)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = r
	}
	return res
}

func TestNativeLeaderElection(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(12)},
		{name: "cycle", g: graph.Cycle(8)},
		{name: "complete", g: graph.Complete(6)},
		{name: "two components", g: graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})},
		{name: "singletons", g: graph.MustFromEdges(3, nil)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := congest.NewBroadcastEngine(tt.g, MsgBits(tt.g.N()), 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(New(tt.g.N(), tt.g.N()), tt.g.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDone {
				t.Fatal("election did not terminate")
			}
			if err := Verify(tt.g, outputsToResults(t, res.Outputs)); err != nil {
				t.Fatalf("invalid election: %v", err)
			}
		})
	}
}

func TestLeaderOverNoisyBeeps(t *testing.T) {
	g := graph.Cycle(10)
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.1),
		ChannelSeed: 14,
		AlgSeed:     15,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N(), g.N()), g.N()+1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("election over beeps did not terminate")
	}
	if err := Verify(g, outputsToResults(t, res.Outputs)); err != nil {
		t.Fatalf("invalid election over noisy beeps: %v", err)
	}
}

func TestVerifyRejectsBadElections(t *testing.T) {
	g := graph.Path(3)
	good := []Result{{Leader: 2}, {Leader: 2}, {Leader: 2, IsLeader: true}}
	if err := Verify(g, good); err != nil {
		t.Fatalf("valid election rejected: %v", err)
	}
	tests := []struct {
		name string
		out  []Result
	}{
		{name: "wrong leader", out: []Result{{Leader: 1}, {Leader: 2}, {Leader: 2, IsLeader: true}}},
		{name: "false claim", out: []Result{{Leader: 2, IsLeader: true}, {Leader: 2}, {Leader: 2, IsLeader: true}}},
		{name: "no claim", out: []Result{{Leader: 2}, {Leader: 2}, {Leader: 2}}},
		{name: "wrong length", out: []Result{{Leader: 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(g, tt.out); err == nil {
				t.Error("invalid election accepted")
			}
		})
	}
}
