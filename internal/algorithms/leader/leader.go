// Package leader implements max-ID leader election by flooding in
// Broadcast CONGEST: every node repeatedly broadcasts the largest ID it
// has seen, announcing changes only; after diameter-many rounds all nodes
// in a connected component agree, and the maximum declares itself leader.
// Leader election is one of the most-studied beeping-model problems
// (Ghaffari–Haeupler, Förster–Seidel–Wattenhofer, Dufoulon et al., §1.2).
package leader

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/wire"
)

// MsgBits returns the bandwidth needed on an n-node graph.
func MsgBits(n int) int { return wire.BitsFor(n) }

// Result is a node's election output.
type Result struct {
	// Leader is the elected node's ID.
	Leader int
	// IsLeader reports whether this node won.
	IsLeader bool
}

// Algorithm floods the maximum ID for a fixed number of rounds (any upper
// bound on the diameter; n always works).
type Algorithm struct {
	// Rounds is the flooding budget (required, ≥ diameter).
	Rounds int

	env     congest.Env
	idBits  int
	best    int
	changed bool
	round   int
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.idBits = wire.BitsFor(env.N)
	if env.MsgBits < MsgBits(env.N) {
		panic(fmt.Sprintf("leader: bandwidth %d < required %d", env.MsgBits, MsgBits(env.N)))
	}
	if a.Rounds <= 0 {
		a.Rounds = env.N
	}
	a.best = env.ID
	a.changed = true
}

// Broadcast implements congest.BroadcastAlgorithm.
func (a *Algorithm) Broadcast(round int) congest.Message {
	if !a.changed {
		return nil
	}
	a.changed = false
	var w wire.Writer
	w.WriteUint(uint64(a.best), a.idBits)
	return w.PaddedBytes(a.env.MsgBits)
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	for _, m := range msgs {
		id, err := wire.NewReader(m).ReadUint(a.idBits)
		if err != nil || int(id) >= a.env.N {
			continue
		}
		if int(id) > a.best {
			a.best = int(id)
			a.changed = true
		}
	}
	a.round = round + 1
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.round >= a.Rounds }

// Output returns the node's Result.
func (a *Algorithm) Output() any {
	return Result{Leader: a.best, IsLeader: a.best == a.env.ID}
}

// New returns per-node instances flooding for the given number of rounds.
func New(n, rounds int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{Rounds: rounds}
	}
	return algs
}

// Verify checks that all nodes in each connected component agree on that
// component's maximum ID and exactly the winner claims leadership.
func Verify(g *graph.Graph, outputs []Result) error {
	if len(outputs) != g.N() {
		return fmt.Errorf("leader: %d outputs for %d nodes", len(outputs), g.N())
	}
	comp := components(g)
	maxIn := make(map[int]int)
	for v, c := range comp {
		if cur, ok := maxIn[c]; !ok || v > cur {
			maxIn[c] = v
		}
	}
	for v, out := range outputs {
		want := maxIn[comp[v]]
		if out.Leader != want {
			return fmt.Errorf("leader: node %d elected %d, want %d", v, out.Leader, want)
		}
		if out.IsLeader != (v == want) {
			return fmt.Errorf("leader: node %d leadership claim %v inconsistent", v, out.IsLeader)
		}
	}
	return nil
}

func components(g *graph.Graph) []int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < g.N(); v++ {
		if comp[v] >= 0 {
			continue
		}
		dist, _ := g.BFS(v)
		for u, d := range dist {
			if d >= 0 {
				comp[u] = next
			}
		}
		next++
	}
	return comp
}
