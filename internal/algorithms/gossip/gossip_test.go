package gossip

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func TestGossipRunsForConfiguredRounds(t *testing.T) {
	g := graph.Cycle(8)
	eng, err := congest.NewBroadcastEngine(g, MsgBits(g.N()), 7)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	res, err := eng.Run(New(g.N(), rounds), Budget(rounds))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Rounds != rounds {
		t.Fatalf("rounds = %d, allDone = %v, want %d, true", res.Rounds, res.AllDone, rounds)
	}
	for v, o := range res.Outputs {
		if o.(int) != rounds {
			t.Fatalf("node %d saw %v rounds, want %d", v, o, rounds)
		}
	}
}

func TestDefaultRoundsNormalization(t *testing.T) {
	for _, rounds := range []int{0, -3} {
		algs := New(4, rounds)
		if got := algs[0].(*Algorithm).Rounds; got != DefaultRounds {
			t.Fatalf("New(4, %d) rounds = %d, want DefaultRounds = %d", rounds, got, DefaultRounds)
		}
	}
}
