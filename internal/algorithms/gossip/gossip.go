// Package gossip implements the canonical "one Broadcast CONGEST round"
// workload: every node broadcasts its ID every round for a fixed number
// of rounds. It carries no decision problem — it exists to probe the
// channel, so the simulation overhead and error-rate tables (T4, T6, A4)
// measure exactly one simulated broadcast round at a time.
//
// The workload started life as internal/experiments' idGossip, then
// lived inside internal/sweep; it now sits beside the other
// sweepable algorithms so the workload registry treats all of them
// uniformly.
package gossip

import (
	"repro/internal/congest"
	"repro/internal/wire"
)

// DefaultRounds is the round count a non-positive rounds parameter
// selects — the single source of truth for the workload's default
// (formerly duplicated between the state machine's Init and its
// constructor).
const DefaultRounds = 1

// MsgBits returns the workload's default bandwidth on an n-node graph:
// room for an ID with slack (2·⌈log₂ n⌉), the width the experiment
// tables have always probed with.
func MsgBits(n int) int { return 2 * wire.BitsFor(n) }

// Budget returns the engine round budget for a rounds-round run (two
// rounds of slack, matching the historical harness).
func Budget(rounds int) int { return rounds + 2 }

// Algorithm is the per-node gossip state machine: broadcast the node ID
// every round, count receptions, stop after the configured number of
// rounds.
type Algorithm struct {
	// Rounds is the number of rounds to gossip for; New normalizes
	// non-positive values to DefaultRounds.
	Rounds int

	env  congest.Env
	seen int
	done bool
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (g *Algorithm) Init(env congest.Env) { g.env = env }

// Broadcast implements congest.BroadcastAlgorithm.
func (g *Algorithm) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}

// Receive implements congest.BroadcastAlgorithm.
func (g *Algorithm) Receive(round int, msgs []congest.Message) {
	g.seen++
	if g.seen >= g.Rounds {
		g.done = true
	}
}

// Done implements congest.BroadcastAlgorithm.
func (g *Algorithm) Done() bool { return g.done }

// Output returns the number of rounds the node participated in.
func (g *Algorithm) Output() any { return g.seen }

// New returns per-node instances gossiping for the given number of
// rounds (non-positive selects DefaultRounds).
func New(n, rounds int) []congest.BroadcastAlgorithm {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{Rounds: rounds}
	}
	return algs
}
