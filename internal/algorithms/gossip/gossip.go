// Package gossip implements the canonical "one Broadcast CONGEST round"
// workload: every node broadcasts its ID every round for a fixed number
// of rounds. It carries no decision problem — it exists to probe the
// channel, so the simulation overhead and error-rate tables (T4, T6, A4)
// measure exactly one simulated broadcast round at a time.
//
// The workload started life as internal/experiments' idGossip, then
// lived inside internal/sweep; it now sits beside the other
// sweepable algorithms so the workload registry treats all of them
// uniformly.
package gossip

import (
	"repro/internal/congest"
	"repro/internal/wire"
)

// DefaultRounds is the round count a non-positive rounds parameter
// selects — the single source of truth for the workload's default
// (formerly duplicated between the state machine's Init and its
// constructor).
const DefaultRounds = 1

// MsgBits returns the workload's default bandwidth on an n-node graph:
// room for an ID with slack (2·⌈log₂ n⌉), the width the experiment
// tables have always probed with.
func MsgBits(n int) int { return 2 * wire.BitsFor(n) }

// Budget returns the engine round budget for a rounds-round run (two
// rounds of slack, matching the historical harness).
func Budget(rounds int) int { return rounds + 2 }

// Algorithm is the per-node gossip state machine: broadcast the node ID
// every round, count receptions, stop after the configured number of
// rounds.
type Algorithm struct {
	// Rounds is the number of rounds to gossip for; New normalizes
	// non-positive values to DefaultRounds.
	Rounds int

	msg    congest.Message
	shared *msgBlock
	seen   int
	done   bool
}

// msgBlock is one contiguous payload buffer shared by a New-built node
// set: node v's message is the v-th stride. Engines call Init serially
// (it is the one per-node callback outside the parallel phases), so the
// lazy sizing needs no locking.
type msgBlock struct {
	buf    []byte
	stride int
}

func (b *msgBlock) slot(id, n, stride int) []byte {
	if b.stride != stride || len(b.buf) != n*stride {
		b.buf = make([]byte, n*stride)
		b.stride = stride
	}
	s := b.buf[id*stride : (id+1)*stride]
	clear(s)
	return s
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm. The broadcast payload —
// the node ID, identical every round — is encoded once here; engines
// treat messages as read-only, so handing out the same buffer each
// round is observationally identical to re-encoding it. The encoding is
// wire.Writer's (LSB-first bit packing), written straight into the
// padded buffer: Init runs once per node per replicate, which makes it
// an allocation hot spot under replicate-heavy sweeps.
func (g *Algorithm) Init(env congest.Env) {
	g.seen = 0
	g.done = false
	var msg []byte
	if g.shared != nil {
		msg = g.shared.slot(env.ID, env.N, (env.MsgBits+7)/8)
	} else {
		msg = make([]byte, (env.MsgBits+7)/8)
	}
	id := uint64(env.ID)
	for k := 0; k < wire.BitsFor(env.N); k++ {
		if id>>uint(k)&1 != 0 {
			msg[k/8] |= 1 << uint(k%8)
		}
	}
	g.msg = msg
}

// Broadcast implements congest.BroadcastAlgorithm.
func (g *Algorithm) Broadcast(round int) congest.Message { return g.msg }

// Receive implements congest.BroadcastAlgorithm.
func (g *Algorithm) Receive(round int, msgs []congest.Message) {
	g.seen++
	if g.seen >= g.Rounds {
		g.done = true
	}
}

// Done implements congest.BroadcastAlgorithm.
func (g *Algorithm) Done() bool { return g.done }

// Output returns the number of rounds the node participated in.
func (g *Algorithm) Output() any { return g.seen }

// New returns per-node instances gossiping for the given number of
// rounds (non-positive selects DefaultRounds). The instances live in
// one block allocation — replicate-heavy sweeps construct a set per
// replicate, so per-node heap objects add up.
func New(n, rounds int) []congest.BroadcastAlgorithm {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	algs := make([]congest.BroadcastAlgorithm, n)
	nodes := make([]Algorithm, n)
	shared := &msgBlock{}
	for v := range algs {
		nodes[v].Rounds = rounds
		nodes[v].shared = shared
		algs[v] = &nodes[v]
	}
	return algs
}
