// Package coloring implements a randomized (Δ+1)-coloring in Broadcast
// CONGEST: undecided nodes repeatedly try a color sampled from their
// remaining palette; a try is kept if no conflicting neighbor with higher
// priority (lower ID) tried the same color, and kept colors are announced
// so neighbors can shrink their palettes. O(log n) iterations w.h.p.
package coloring

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/wire"
)

// MsgBits returns the bandwidth needed on an n-node graph with maximum
// degree maxDeg: a tag bit, an ID, and a color in [Δ+1].
func MsgBits(n, maxDeg int) int { return 1 + wire.BitsFor(n) + wire.BitsFor(maxDeg+1) }

// MaxRounds returns a generous budget.
func MaxRounds(n int) int { return 2 * (8*wire.BitsFor(n) + 16) }

// Algorithm is the per-node coloring state machine.
type Algorithm struct {
	env       congest.Env
	idBits    int
	colorBits int

	palette map[int]bool
	try     int
	keep    bool
	color   int
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.idBits = wire.BitsFor(env.N)
	a.colorBits = wire.BitsFor(env.MaxDegree + 1)
	if env.MsgBits < MsgBits(env.N, env.MaxDegree) {
		panic(fmt.Sprintf("coloring: bandwidth %d < required %d", env.MsgBits, MsgBits(env.N, env.MaxDegree)))
	}
	a.palette = make(map[int]bool, env.MaxDegree+1)
	for c := 0; c <= env.MaxDegree; c++ {
		a.palette[c] = true
	}
	a.color = -1
}

// Broadcast implements congest.BroadcastAlgorithm.
func (a *Algorithm) Broadcast(round int) congest.Message {
	if round%2 == 0 { // try round
		a.try = a.samplePalette()
		a.keep = true
		var w wire.Writer
		w.WriteBool(false)
		w.WriteUint(uint64(a.env.ID), a.idBits)
		w.WriteUint(uint64(a.try), a.colorBits)
		return w.PaddedBytes(a.env.MsgBits)
	}
	if !a.keep {
		return nil
	}
	a.color = a.try
	var w wire.Writer
	w.WriteBool(true)
	w.WriteUint(uint64(a.env.ID), a.idBits)
	w.WriteUint(uint64(a.color), a.colorBits)
	return w.PaddedBytes(a.env.MsgBits)
}

// samplePalette picks a uniform color from the remaining palette
// (iterating in color order for determinism).
func (a *Algorithm) samplePalette() int {
	k := a.env.Rng.Intn(len(a.palette))
	for c := 0; c <= a.env.MaxDegree; c++ {
		if !a.palette[c] {
			continue
		}
		if k == 0 {
			return c
		}
		k--
	}
	panic("coloring: empty palette") // impossible: palette has Δ+1 colors, ≤ Δ neighbors
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	for _, m := range msgs {
		r := wire.NewReader(m)
		final, err1 := r.ReadBool()
		id, err2 := r.ReadUint(a.idBits)
		c, err3 := r.ReadUint(a.colorBits)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		if round%2 == 0 {
			if !final && int(c) == a.try && int(id) < a.env.ID {
				a.keep = false // higher-priority neighbor tried our color
			}
		} else if final {
			delete(a.palette, int(c))
		}
	}
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.color >= 0 }

// Output returns the node's color in [0, Δ].
func (a *Algorithm) Output() any { return a.color }

// New returns per-node instances for an n-node run.
func New(n int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{}
	}
	return algs
}

// Verify checks a proper coloring with at most maxDeg+1 colors.
func Verify(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d outputs for %d nodes", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 || c > g.MaxDegree() {
			return fmt.Errorf("coloring: node %d has color %d outside [0, Δ]", v, c)
		}
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return fmt.Errorf("coloring: edge (%d,%d) monochromatic (%d)", e[0], e[1], colors[e[0]])
		}
	}
	return nil
}
