package coloring

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func outputsToInts(t *testing.T, outs []any) []int {
	t.Helper()
	res := make([]int, len(outs))
	for i, o := range outs {
		c, ok := o.(int)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = c
	}
	return res
}

func TestNativeColoring(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(10)},
		{name: "cycle odd", g: graph.Cycle(9)},
		{name: "complete", g: graph.Complete(7)},
		{name: "star", g: graph.Star(9)},
		{name: "random", g: graph.RandomBoundedDegree(70, 6, 0.1, rng.New(1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := congest.NewBroadcastEngine(tt.g, MsgBits(tt.g.N(), tt.g.MaxDegree()), 4)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(New(tt.g.N()), MaxRounds(tt.g.N()))
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDone {
				t.Fatal("coloring did not terminate")
			}
			if err := Verify(tt.g, outputsToInts(t, res.Outputs)); err != nil {
				t.Fatalf("invalid coloring: %v", err)
			}
		})
	}
}

func TestColoringCompleteUsesAllColors(t *testing.T) {
	// K_{Δ+1} forces all Δ+1 colors.
	g := graph.Complete(6)
	e, _ := congest.NewBroadcastEngine(g, MsgBits(6, 5), 9)
	res, err := e.Run(New(6), MaxRounds(6))
	if err != nil {
		t.Fatal(err)
	}
	colors := outputsToInts(t, res.Outputs)
	seen := make(map[int]bool)
	for _, c := range colors {
		seen[c] = true
	}
	if len(seen) != 6 {
		t.Errorf("K6 colored with %d distinct colors, want 6", len(seen))
	}
}

func TestColoringOverNoisyBeeps(t *testing.T) {
	g := graph.RandomBoundedDegree(16, 4, 0.2, rng.New(2))
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N(), g.MaxDegree()), 0.1),
		ChannelSeed: 10,
		AlgSeed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N()), MaxRounds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("coloring over beeps did not terminate")
	}
	if err := Verify(g, outputsToInts(t, res.Outputs)); err != nil {
		t.Fatalf("invalid coloring over noisy beeps: %v", err)
	}
}

func TestVerifyRejectsBadColorings(t *testing.T) {
	g := graph.Path(4) // Δ = 2, colors in [0,2]
	tests := []struct {
		name   string
		colors []int
	}{
		{name: "monochromatic edge", colors: []int{0, 0, 1, 2}},
		{name: "color out of range", colors: []int{0, 1, 2, 5}},
		{name: "negative color", colors: []int{0, 1, 0, -1}},
		{name: "wrong length", colors: []int{0, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(g, tt.colors); err == nil {
				t.Error("invalid coloring accepted")
			}
		})
	}
	if err := Verify(g, []int{0, 1, 0, 1}); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
}
