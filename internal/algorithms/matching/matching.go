// Package matching implements the paper's §6: maximal matching in
// Broadcast CONGEST via the Propose/Reply/Confirm protocol (Algorithm 3,
// a Luby-style edge matching), together with a centralized reference
// implementation of Algorithm 2 and an output verifier.
//
// Running Algorithm 3 under internal/core's simulator yields Theorem 21's
// O(Δ log² n)-round noisy-beeping maximal matching.
package matching

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Unmatched is the output of a node with no partner.
const Unmatched = -1

// valueBits is the width of the Luby values x(e). The paper samples from
// [n⁹] purely to avoid ties; we use a fixed width and break residual ties
// by edge identifier (DESIGN.md substitution #5).
const valueBits = 24

// Message tags (2 bits). Round 0 is the ID-announcement round and carries
// a bare ID, so tags only appear from round 1 on.
const (
	tagPropose = 1
	tagReply   = 2
	tagConfirm = 3
)

// MsgBits returns the Broadcast CONGEST bandwidth Algorithm 3 needs on an
// n-node graph: a tag, two endpoint IDs, and a value.
func MsgBits(n int) int { return 2 + 2*wire.BitsFor(n) + valueBits }

// MaxRounds returns a generous round budget: Lemma 20 gives termination in
// 4·log₂ n iterations w.h.p., each iteration taking four broadcast rounds,
// plus the ID round.
func MaxRounds(n int) int {
	logn := wire.BitsFor(n)
	return 1 + 4*(4*logn+8)
}

// edge is an ID-ordered edge key.
type edge struct{ lo, hi int }

func mkEdge(a, b int) edge {
	if a > b {
		return edge{lo: b, hi: a}
	}
	return edge{lo: a, hi: b}
}

// proposal is a received or locally-sampled Propose.
type proposal struct {
	e   edge
	val uint64
}

// less orders proposals by value with deterministic edge tie-breaks.
func (p proposal) less(q proposal) bool {
	if p.val != q.val {
		return p.val < q.val
	}
	if p.e.lo != q.e.lo {
		return p.e.lo < q.e.lo
	}
	return p.e.hi < q.e.hi
}

// Algorithm is the per-node state machine for Algorithm 3. The zero value
// is ready for use by a congest engine or the beep-level simulator.
type Algorithm struct {
	env    congest.Env
	idBits int

	alive  map[int]bool // Ev: alive incident edges, keyed by neighbor ID
	values map[int]uint64

	ownProposal  *proposal // our Propose this iteration (nil if none)
	replyTo      *proposal // the e'_v we Replied to this iteration
	sentReply    bool
	gotProposals []proposal
	gotReplyOwn  bool
	gotConfirms  []edge

	partner int
	ceased  bool
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.idBits = wire.BitsFor(env.N)
	a.partner = Unmatched
	a.alive = make(map[int]bool)
	a.values = make(map[int]uint64)
	if want := MsgBits(env.N); env.MsgBits < want {
		panic(fmt.Sprintf("matching: bandwidth %d < required %d", env.MsgBits, want))
	}
}

// phase returns the iteration phase for a broadcast round ≥ 1.
func phase(round int) int { return (round - 1) % 4 }

// Broadcast implements congest.BroadcastAlgorithm.
func (a *Algorithm) Broadcast(round int) congest.Message {
	if round == 0 {
		var w wire.Writer
		w.WriteUint(uint64(a.env.ID), a.idBits)
		return w.PaddedBytes(a.env.MsgBits)
	}
	switch phase(round) {
	case 0:
		return a.broadcastPropose()
	case 1:
		return a.broadcastReply()
	case 2:
		return a.broadcastConfirm1()
	default:
		return a.broadcastConfirm2()
	}
}

// broadcastPropose samples fresh x(e) for e ∈ Hv (edges where we are the
// higher-ID endpoint) and proposes the minimum.
func (a *Algorithm) broadcastPropose() congest.Message {
	a.ownProposal = nil
	a.replyTo = nil
	a.sentReply = false
	a.gotProposals = a.gotProposals[:0]
	a.gotReplyOwn = false
	a.gotConfirms = a.gotConfirms[:0]

	for u := range a.values {
		delete(a.values, u)
	}
	// Deterministic sampling order so native and simulated runs agree.
	neighbors := make([]int, 0, len(a.alive))
	for u := range a.alive {
		neighbors = append(neighbors, u)
	}
	sort.Ints(neighbors)
	for _, u := range neighbors {
		if u < a.env.ID { // we are the higher-ID endpoint
			a.values[u] = a.env.Rng.Uint64() & (1<<valueBits - 1)
		}
	}
	for _, u := range neighbors {
		if u >= a.env.ID {
			continue
		}
		p := proposal{e: mkEdge(a.env.ID, u), val: a.values[u]}
		if a.ownProposal == nil || p.less(*a.ownProposal) {
			prop := p
			a.ownProposal = &prop
		}
	}
	if a.ownProposal == nil {
		return nil
	}
	return a.encode(tagPropose, a.ownProposal.e, a.ownProposal.val)
}

// broadcastReply answers the best incident proposal if it beats our own.
func (a *Algorithm) broadcastReply() congest.Message {
	var best *proposal
	for i := range a.gotProposals {
		p := a.gotProposals[i]
		// Only proposals for edges incident to us matter; since only the
		// higher endpoint proposes, we are p.e.lo.
		if p.e.lo != a.env.ID || !a.alive[p.e.hi] {
			continue
		}
		if best == nil || p.less(*best) {
			best = &a.gotProposals[i]
		}
	}
	if best == nil {
		return nil
	}
	if a.ownProposal != nil && a.ownProposal.less(*best) {
		return nil // our own proposal has priority (x(e'_v) < x(e_v) fails)
	}
	a.replyTo = best
	a.sentReply = true
	return a.encode(tagReply, best.e, 0)
}

// broadcastConfirm1: the proposer confirms if its edge was Replied to and
// it did not itself Reply.
func (a *Algorithm) broadcastConfirm1() congest.Message {
	if a.ownProposal == nil || !a.gotReplyOwn || a.sentReply {
		return nil
	}
	a.partner = a.ownProposal.e.lo // we are hi
	return a.encode(tagConfirm, a.ownProposal.e, 0)
}

// broadcastConfirm2: the replier echoes a Confirm for the edge it Replied
// to, completing the handshake.
func (a *Algorithm) broadcastConfirm2() congest.Message {
	if a.replyTo == nil {
		return nil
	}
	for _, e := range a.gotConfirms {
		if e == a.replyTo.e {
			a.partner = e.hi // we are lo
			return a.encode(tagConfirm, e, 0)
		}
	}
	return nil
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	if round == 0 {
		for _, m := range msgs {
			id, err := wire.NewReader(m).ReadUint(a.idBits)
			if err == nil && int(id) != a.env.ID && int(id) < a.env.N {
				a.alive[int(id)] = true
			}
		}
		if len(a.alive) == 0 {
			a.ceased = true // isolated node: trivially done, Unmatched
		}
		return
	}
	switch phase(round) {
	case 0:
		for _, m := range msgs {
			if tag, e, val, ok := a.decode(m); ok && tag == tagPropose {
				a.gotProposals = append(a.gotProposals, proposal{e: e, val: val})
			}
		}
	case 1:
		for _, m := range msgs {
			if tag, e, _, ok := a.decode(m); ok && tag == tagReply {
				if a.ownProposal != nil && e == a.ownProposal.e {
					a.gotReplyOwn = true
				}
			}
		}
	case 2, 3:
		for _, m := range msgs {
			if tag, e, _, ok := a.decode(m); ok && tag == tagConfirm {
				a.gotConfirms = append(a.gotConfirms, e)
			}
		}
		a.processConfirms()
		if phase(round) == 2 && a.partner != Unmatched {
			// We sent Confirm1 this round; we cease after it is delivered.
			// (The Confirm2 echo is the partner's job.)
			if a.ownProposal != nil && a.partner == a.ownProposal.e.lo {
				a.ceased = true
			}
		}
		if phase(round) == 3 {
			if a.partner != Unmatched {
				a.ceased = true
			}
			if len(a.alive) == 0 {
				a.ceased = true
			}
		}
	}
}

// processConfirms removes edges to endpoints of confirmed edges (they are
// leaving the graph).
func (a *Algorithm) processConfirms() {
	for _, e := range a.gotConfirms {
		if e.lo != a.env.ID {
			delete(a.alive, e.lo)
		}
		if e.hi != a.env.ID {
			delete(a.alive, e.hi)
		}
	}
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.ceased }

// Output returns the partner ID, or Unmatched.
func (a *Algorithm) Output() any { return a.partner }

func (a *Algorithm) encode(tag int, e edge, val uint64) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(tag), 2)
	w.WriteUint(uint64(e.lo), a.idBits)
	w.WriteUint(uint64(e.hi), a.idBits)
	w.WriteUint(val, valueBits)
	return w.PaddedBytes(a.env.MsgBits)
}

func (a *Algorithm) decode(m congest.Message) (tag int, e edge, val uint64, ok bool) {
	r := wire.NewReader(m)
	t, err1 := r.ReadUint(2)
	lo, err2 := r.ReadUint(a.idBits)
	hi, err3 := r.ReadUint(a.idBits)
	v, err4 := r.ReadUint(valueBits)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return 0, edge{}, 0, false
	}
	if t < tagPropose || t > tagConfirm || lo >= hi || int(hi) >= a.env.N {
		return 0, edge{}, 0, false
	}
	return int(t), edge{lo: int(lo), hi: int(hi)}, v, true
}

// New returns per-node Algorithm instances for an n-node run.
func New(n int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{}
	}
	return algs
}

// Verify checks that outputs (partner ID or Unmatched per node) form a
// maximal matching of g: symmetry, edge validity, and maximality.
func Verify(g *graph.Graph, outputs []int) error {
	if len(outputs) != g.N() {
		return fmt.Errorf("matching: %d outputs for %d nodes", len(outputs), g.N())
	}
	for v, p := range outputs {
		if p == Unmatched {
			continue
		}
		if p < 0 || p >= g.N() {
			return fmt.Errorf("matching: node %d output invalid partner %d", v, p)
		}
		if !g.HasEdge(v, p) {
			return fmt.Errorf("matching: pair (%d,%d) is not an edge", v, p)
		}
		if outputs[p] != v {
			return fmt.Errorf("matching: symmetry violated: %d→%d but %d→%d", v, p, p, outputs[p])
		}
	}
	for _, e := range g.Edges() {
		if outputs[e[0]] == Unmatched && outputs[e[1]] == Unmatched {
			return fmt.Errorf("matching: edge (%d,%d) has both endpoints unmatched (not maximal)", e[0], e[1])
		}
	}
	return nil
}

// Size returns the number of matched pairs in outputs.
func Size(outputs []int) int {
	matched := 0
	for _, p := range outputs {
		if p != Unmatched {
			matched++
		}
	}
	return matched / 2
}

// CentralizedLuby runs Algorithm 2 (Luby's algorithm on edges) directly on
// g: each surviving edge samples a value, local minima join the matching,
// and matched endpoints drop out. It returns outputs in the same format as
// the distributed algorithm and the number of iterations used.
func CentralizedLuby(g *graph.Graph, r *rng.Stream, maxIters int) ([]int, int) {
	out := make([]int, g.N())
	for v := range out {
		out[v] = Unmatched
	}
	aliveEdges := g.Edges()
	iters := 0
	for len(aliveEdges) > 0 && iters < maxIters {
		iters++
		vals := make(map[edge]uint64, len(aliveEdges))
		for _, e := range aliveEdges {
			vals[mkEdge(e[0], e[1])] = r.Uint64() & (1<<valueBits - 1)
		}
		matchedNow := make(map[int]bool)
		for _, epair := range aliveEdges {
			e := mkEdge(epair[0], epair[1])
			p := proposal{e: e, val: vals[e]}
			isMin := true
			for _, fpair := range aliveEdges {
				f := mkEdge(fpair[0], fpair[1])
				if f == e || (f.lo != e.lo && f.lo != e.hi && f.hi != e.lo && f.hi != e.hi) {
					continue
				}
				if (proposal{e: f, val: vals[f]}).less(p) {
					isMin = false
					break
				}
			}
			if isMin && !matchedNow[e.lo] && !matchedNow[e.hi] {
				out[e.lo], out[e.hi] = e.hi, e.lo
				matchedNow[e.lo], matchedNow[e.hi] = true, true
			}
		}
		var next [][2]int
		for _, e := range aliveEdges {
			if out[e[0]] == Unmatched && out[e[1]] == Unmatched {
				next = append(next, e)
			}
		}
		aliveEdges = next
	}
	return out, iters
}

// Greedy returns a simple sequential maximal matching, the baseline
// verifier oracle.
func Greedy(g *graph.Graph) []int {
	out := make([]int, g.N())
	for v := range out {
		out[v] = Unmatched
	}
	for _, e := range g.Edges() {
		if out[e[0]] == Unmatched && out[e[1]] == Unmatched {
			out[e[0]], out[e[1]] = e[1], e[0]
		}
	}
	return out
}
