package matching

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func outputsToInts(t *testing.T, outs []any) []int {
	t.Helper()
	res := make([]int, len(outs))
	for i, o := range outs {
		v, ok := o.(int)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = v
	}
	return res
}

func runNative(t *testing.T, g *graph.Graph, seed uint64) []int {
	t.Helper()
	e, err := congest.NewBroadcastEngine(g, MsgBits(g.N()), seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(New(g.N()), MaxRounds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("matching did not terminate in %d rounds", MaxRounds(g.N()))
	}
	return outputsToInts(t, res.Outputs)
}

func TestNativeMatchingOnFixedGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "single edge", g: graph.Path(2)},
		{name: "path", g: graph.Path(9)},
		{name: "cycle", g: graph.Cycle(10)},
		{name: "star", g: graph.Star(8)},
		{name: "complete", g: graph.Complete(9)},
		{name: "bipartite", g: graph.CompleteBipartite(5, 7)},
		{name: "grid", g: graph.Grid(4, 6)},
		{name: "disconnected", g: graph.MustFromEdges(6, [][2]int{{0, 1}, {2, 3}})},
		{name: "isolated only", g: graph.MustFromEdges(4, nil)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := runNative(t, tt.g, 31)
			if err := Verify(tt.g, out); err != nil {
				t.Fatalf("invalid matching: %v (outputs %v)", err, out)
			}
		})
	}
}

func TestNativeMatchingOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g := graph.RandomBoundedDegree(60, 6, 0.1, rng.New(seed))
		out := runNative(t, g, seed+100)
		if err := Verify(g, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestMatchingRoundsScaleLogarithmically(t *testing.T) {
	// Lemma 20: O(log n) iterations w.h.p. Check that rounds stay within
	// the 4·(4·log₂n+8)+1 budget across sizes (the budget itself scales
	// logarithmically, so success here is the scaling claim).
	for _, n := range []int{32, 128, 512} {
		g := graph.RandomBoundedDegree(n, 8, 0.05, rng.New(uint64(n)))
		e, err := congest.NewBroadcastEngine(g, MsgBits(n), 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(New(n), MaxRounds(n))
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDone {
			t.Errorf("n=%d: did not finish within O(log n) budget %d", n, MaxRounds(n))
		}
		if err := Verify(g, outputsToInts(t, res.Outputs)); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

// TestMatchingOverNoisyBeeps is Theorem 21 end to end: Algorithm 3 under
// the Algorithm 1 simulation on a noisy channel produces a valid maximal
// matching.
func TestMatchingOverNoisyBeeps(t *testing.T) {
	g := graph.RandomBoundedDegree(20, 4, 0.2, rng.New(3))
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.1),
		ChannelSeed: 41,
		AlgSeed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N()), MaxRounds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("did not terminate over beeps")
	}
	if res.MessageErrors != 0 {
		t.Errorf("decode errors: %d", res.MessageErrors)
	}
	if err := Verify(g, outputsToInts(t, res.Outputs)); err != nil {
		t.Fatalf("invalid matching over noisy beeps: %v", err)
	}
}

// TestMatchingNativeVsSimulated verifies the simulation theorem at the
// output level for this algorithm: identical seeds give identical
// matchings natively and over beeps.
func TestMatchingNativeVsSimulated(t *testing.T) {
	g := graph.RandomBoundedDegree(16, 4, 0.25, rng.New(5))
	const seed = 77
	native := runNative(t, g, seed)

	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.05),
		ChannelSeed: 6,
		AlgSeed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N()), MaxRounds(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageErrors != 0 {
		t.Fatalf("decode errors: %d — outputs not comparable", res.MessageErrors)
	}
	sim := outputsToInts(t, res.Outputs)
	for v := range native {
		if native[v] != sim[v] {
			t.Errorf("node %d: native partner %d, simulated %d", v, native[v], sim[v])
		}
	}
}

func TestVerifyRejectsBadMatchings(t *testing.T) {
	g := graph.Path(4) // edges 0-1, 1-2, 2-3
	tests := []struct {
		name string
		out  []int
	}{
		{name: "wrong length", out: []int{Unmatched}},
		{name: "not maximal", out: []int{Unmatched, Unmatched, Unmatched, Unmatched}},
		{name: "asymmetric", out: []int{1, Unmatched, Unmatched, 2}},
		{name: "non-edge pair", out: []int{2, Unmatched, 0, Unmatched}},
		{name: "partner out of range", out: []int{7, Unmatched, 3, 2}},
		{name: "middle edge only is fine but ends unmatched asym", out: []int{1, 0, 3, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Verify(g, tt.out); err == nil {
				t.Error("invalid matching accepted")
			}
		})
	}
	if err := Verify(g, []int{1, 0, 3, 2}); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
	if err := Verify(g, []int{Unmatched, 2, 1, Unmatched}); err != nil {
		t.Errorf("valid matching rejected: %v", err)
	}
}

func TestCentralizedLuby(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.RandomBoundedDegree(80, 7, 0.08, rng.New(seed))
		out, iters := CentralizedLuby(g, rng.New(seed+50), 100)
		if err := Verify(g, out); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if iters > 40 {
			t.Errorf("seed %d: Luby took %d iterations", seed, iters)
		}
	}
}

func TestCentralizedLubyHalvesEdges(t *testing.T) {
	// Lemma 19: each iteration removes at least half the edges in
	// expectation. With 200+ edges a single iteration removing < 20% would
	// be a gross violation.
	g := graph.RandomBoundedDegree(100, 8, 0.1, rng.New(9))
	out := make([]int, g.N())
	for v := range out {
		out[v] = Unmatched
	}
	before := g.M()
	outs, _ := CentralizedLuby(g, rng.New(10), 1)
	removed := 0
	for _, e := range g.Edges() {
		if outs[e[0]] != Unmatched || outs[e[1]] != Unmatched {
			removed++
		}
	}
	if float64(removed) < 0.2*float64(before) {
		t.Errorf("one Luby iteration removed %d/%d edges, expected ≈ half", removed, before)
	}
}

func TestGreedy(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.RandomBoundedDegree(50, 5, 0.15, rng.New(seed))
		if err := Verify(g, Greedy(g)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSize(t *testing.T) {
	if got := Size([]int{1, 0, Unmatched, 4, 3}); got != 2 {
		t.Errorf("Size = %d, want 2", got)
	}
}

func TestMsgBitsAndMaxRounds(t *testing.T) {
	if MsgBits(128) != 2+2*7+valueBits {
		t.Errorf("MsgBits(128) = %d", MsgBits(128))
	}
	if MaxRounds(128) <= 0 {
		t.Error("MaxRounds must be positive")
	}
}
