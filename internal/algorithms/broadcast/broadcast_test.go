package broadcast

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

func outputsToPayloads(t *testing.T, outs []any) [][]byte {
	t.Helper()
	res := make([][]byte, len(outs))
	for i, o := range outs {
		p, ok := o.([]byte)
		if !ok {
			t.Fatalf("output %d has type %T", i, o)
		}
		res[i] = p
	}
	return res
}

func TestNativeBroadcast(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(12)},
		{name: "cycle", g: graph.Cycle(8)},
		{name: "complete", g: graph.Complete(6)},
		{name: "two components", g: graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})},
		{name: "singletons", g: graph.MustFromEdges(3, nil)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := congest.NewBroadcastEngine(tt.g, MsgBits(tt.g.N()), 3)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(New(tt.g.N(), 0, tt.g.N()), tt.g.N()+1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllDone {
				t.Fatal("broadcast did not terminate")
			}
			if err := Verify(tt.g, 0, outputsToPayloads(t, res.Outputs)); err != nil {
				t.Fatalf("invalid broadcast: %v", err)
			}
		})
	}
}

func TestBroadcastOverNoisyBeeps(t *testing.T) {
	g := graph.Cycle(10)
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), MsgBits(g.N()), 0.1),
		ChannelSeed: 24,
		AlgSeed:     25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(New(g.N(), 0, g.N()), g.N()+1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("broadcast over beeps did not terminate")
	}
	if err := Verify(g, 0, outputsToPayloads(t, res.Outputs)); err != nil {
		t.Fatalf("invalid broadcast over noisy beeps: %v", err)
	}
}

func TestPayloadDeterministicAndSized(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100, 1 << 20} {
		a, b := Payload(n), Payload(n)
		if !wire.Equal(a, b, PayloadBits(n)) {
			t.Fatalf("n=%d: payload not deterministic", n)
		}
		if bits := PayloadBits(n); bits <= 0 || bits > 62 {
			t.Fatalf("n=%d: payload width %d out of range", n, bits)
		}
		if len(a) != (PayloadBits(n)+7)/8 {
			t.Fatalf("n=%d: payload %d bytes for %d bits", n, len(a), PayloadBits(n))
		}
	}
	if wire.Equal(Payload(100), Payload(101), PayloadBits(100)) {
		t.Fatal("payloads for different n collide")
	}
}

func TestVerifyRejectsBadBroadcasts(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}})
	want := Payload(3)
	good := [][]byte{want, want, nil}
	if err := Verify(g, 0, good); err != nil {
		t.Fatalf("valid broadcast rejected: %v", err)
	}
	if err := Verify(g, 0, [][]byte{want, nil, nil}); err == nil {
		t.Error("reachable node with no payload accepted")
	}
	if err := Verify(g, 0, [][]byte{want, want, want}); err == nil {
		t.Error("unreachable node with payload accepted")
	}
	if err := Verify(g, 0, [][]byte{want, {0x00}, nil}); err == nil {
		t.Error("wrong payload accepted")
	}
	if err := Verify(g, 0, good[:2]); err == nil {
		t.Error("short output slice accepted")
	}
}
