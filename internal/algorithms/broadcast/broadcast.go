// Package broadcast implements single-source payload flooding in
// Broadcast CONGEST: the root starts with a payload and every node
// rebroadcasts the first copy it receives, announcing changes only. It is
// the CONGEST-side twin of the beep-level wave broadcast
// (beepalgs.WaveBroadcast), which delivers the same b-bit payload in
// O(D + b) beep rounds — the §1.2 primitive the simulator's broadcast
// workload exercises end to end on both engine families.
package broadcast

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// payloadTag keys the payload derivation ("bcast" in ASCII).
const payloadTag = 0x6263617374

// PayloadBits returns the broadcast payload width on an n-node graph: two
// ID-widths of entropy — wide enough that a wrong decode cannot collide by
// luck, and (with n bounded by MaxInt32) at most 62 bits, so the payload
// always fits one uint64.
func PayloadBits(n int) int { return 2 * wire.BitsFor(n) }

// MsgBits returns the bandwidth needed on an n-node graph.
func MsgBits(n int) int { return PayloadBits(n) }

// payloadValue is the canonical n-node payload as a uint64. The top bit
// is always set: messages are zero-padded on the wire, so an all-zero
// payload would be indistinguishable from "never received".
func payloadValue(n int) uint64 {
	bits := PayloadBits(n)
	v := rng.Mix(payloadTag, uint64(n)) & (^uint64(0) >> (64 - uint(bits)))
	return v | 1<<uint(bits-1)
}

// Payload returns the canonical n-node broadcast payload, a pure function
// of n — so Verify reconstructs it without trusting any node, and the
// workload needs no per-scenario payload parameter.
func Payload(n int) []byte {
	var w wire.Writer
	w.WriteUint(payloadValue(n), PayloadBits(n))
	return w.Bytes()
}

// Algorithm floods the root's payload for a fixed number of rounds (any
// upper bound on the diameter; n always works).
type Algorithm struct {
	// Root marks the broadcasting node.
	Root bool
	// Rounds is the flooding budget (required, ≥ diameter).
	Rounds int

	env     congest.Env
	bits    int
	val     uint64
	have    bool
	changed bool
	round   int
}

var _ congest.BroadcastAlgorithm = (*Algorithm)(nil)

// Init implements congest.BroadcastAlgorithm.
func (a *Algorithm) Init(env congest.Env) {
	a.env = env
	a.bits = PayloadBits(env.N)
	if env.MsgBits < MsgBits(env.N) {
		panic(fmt.Sprintf("broadcast: bandwidth %d < required %d", env.MsgBits, MsgBits(env.N)))
	}
	if a.Rounds <= 0 {
		a.Rounds = env.N
	}
	if a.Root {
		a.val = payloadValue(env.N)
		a.have = true
		a.changed = true
	}
}

// Broadcast implements congest.BroadcastAlgorithm.
func (a *Algorithm) Broadcast(round int) congest.Message {
	if !a.changed {
		return nil
	}
	a.changed = false
	var w wire.Writer
	w.WriteUint(a.val, a.bits)
	return w.PaddedBytes(a.env.MsgBits)
}

// Receive implements congest.BroadcastAlgorithm.
func (a *Algorithm) Receive(round int, msgs []congest.Message) {
	for _, m := range msgs {
		if a.have {
			break
		}
		v, err := wire.NewReader(m).ReadUint(a.bits)
		if err != nil {
			continue
		}
		a.val = v
		a.have = true
		a.changed = true
	}
	a.round = round + 1
}

// Done implements congest.BroadcastAlgorithm.
func (a *Algorithm) Done() bool { return a.round >= a.Rounds }

// Output returns the received payload bytes, or nil if the flood never
// arrived (unreachable node).
func (a *Algorithm) Output() any {
	if !a.have {
		return []byte(nil)
	}
	var w wire.Writer
	w.WriteUint(a.val, a.bits)
	return w.Bytes()
}

// New returns per-node instances flooding from the given root for the
// given number of rounds.
func New(n, root, rounds int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &Algorithm{Root: v == root, Rounds: rounds}
	}
	return algs
}

// Verify checks that every node reachable from the root decoded the
// canonical payload and every unreachable node decoded nothing.
func Verify(g *graph.Graph, root int, outputs [][]byte) error {
	if len(outputs) != g.N() {
		return fmt.Errorf("broadcast: %d outputs for %d nodes", len(outputs), g.N())
	}
	want := Payload(g.N())
	bits := PayloadBits(g.N())
	dist, _ := g.BFS(root)
	for v, out := range outputs {
		if dist[v] >= 0 {
			if !wire.Equal(out, want, bits) {
				return fmt.Errorf("broadcast: node %d decoded %x, want %x", v, out, want)
			}
		} else if out != nil {
			return fmt.Errorf("broadcast: unreachable node %d decoded %x, want nil", v, out)
		}
	}
	return nil
}
