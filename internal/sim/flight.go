package sim

import "sync"

// FlightGroup is keyed request-level singleflight: Do(key, fn) runs fn
// at most once per key among concurrent callers — the first caller in
// executes, every other caller with the same key blocks until that
// execution finishes and receives the same value, flagged shared. Once
// the execution completes the key is forgotten, so a later Do runs fn
// again: unlike Cache (which memoizes pure artifacts for a batch's
// lifetime), a FlightGroup dedupes only work that is literally in
// flight. Persistence of completed results is the caller's business —
// sweep's Service checks its store first and singleflights only store
// misses, which generalizes Cache's per-entry sync.Once from the
// artifact layer to the request layer: identical scenarios submitted by
// concurrent requests execute exactly once, whichever request got there
// first.
//
// The zero value is ready to use. Safe for concurrent use.
type FlightGroup[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	done    chan struct{}
	val     V
	waiters int
}

// Do returns fn's result for key, executing fn itself only if no
// execution for key is already in flight; otherwise it waits for the
// in-flight one and returns its value with shared = true. fn must not
// call Do on the same group with the same key (it would wait on
// itself).
func (g *FlightGroup[K, V]) Do(key K, fn func() V) (v V, shared bool) {
	g.mu.Lock()
	if fl, ok := g.m[key]; ok {
		fl.waiters++
		g.mu.Unlock()
		<-fl.done
		return fl.val, true
	}
	fl := &flight[V]{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[K]*flight[V])
	}
	g.m[key] = fl
	g.mu.Unlock()

	fl.val = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
	return fl.val, false
}

// InFlight returns the number of executions currently in flight.
func (g *FlightGroup[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// Waiters returns how many callers are currently blocked on key's
// in-flight execution (0 when key is not in flight). Tests use it to
// pin dedup interleavings deterministically.
func (g *FlightGroup[K, V]) Waiters(key K) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return fl.waiters
	}
	return 0
}
