package sim

import (
	"repro/internal/algorithms/bfstree"
	"repro/internal/algorithms/broadcast"
	"repro/internal/algorithms/coloring"
	"repro/internal/algorithms/gossip"
	"repro/internal/algorithms/leader"
	"repro/internal/algorithms/matching"
	"repro/internal/algorithms/mis"
	"repro/internal/beepalgs"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

func init() {
	RegisterWorkload(gossipWorkload{})
	RegisterWorkload(misWorkload{})
	RegisterWorkload(coloringWorkload{})
	RegisterWorkload(leaderWorkload{})
	RegisterWorkload(matchingWorkload{})
	RegisterWorkload(bfstreeWorkload{})
	RegisterWorkload(broadcastWorkload{})
}

// bfsRoot is the fixed BFS source: node 0 exists in every graph, so the
// workload needs no extra scenario parameter.
const bfsRoot = 0

// gossipWorkload: ID broadcast for a configured number of rounds. It is
// a channel probe with no decision problem, so Verify reports
// ErrUnverified and records carry no OutputOK — exactly the historical
// behavior the stored-record byte-identity contract pins.
type gossipWorkload struct{}

func (gossipWorkload) Name() string                          { return WorkloadGossip }
func (gossipWorkload) MsgBits(g *graph.Graph) int            { return gossip.MsgBits(g.N()) }
func (gossipWorkload) UsesRounds() bool                      { return true }
func (gossipWorkload) Budget(g *graph.Graph, rounds int) int { return gossip.Budget(rounds) }

func (gossipWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return gossip.New(g.N(), rounds)
}

func (gossipWorkload) Verify(g *graph.Graph, outputs []any) error { return ErrUnverified }

// misWorkload: Luby's maximal independent set over Broadcast CONGEST,
// with Afek et al.'s protocol as the native beeping implementation.
type misWorkload struct{}

func (misWorkload) Name() string                          { return WorkloadMIS }
func (misWorkload) MsgBits(g *graph.Graph) int            { return mis.MsgBits(g.N()) }
func (misWorkload) UsesRounds() bool                      { return false }
func (misWorkload) Budget(g *graph.Graph, rounds int) int { return mis.MaxRounds(g.N()) }

func (misWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return mis.New(g.N())
}

func (misWorkload) Verify(g *graph.Graph, outputs []any) error {
	set := make([]bool, len(outputs))
	for v, o := range outputs {
		b, ok := o.(bool)
		if !ok {
			return &OutputTypeError{Workload: WorkloadMIS, Node: v, Want: "bool", Got: o}
		}
		set[v] = b
	}
	return mis.Verify(g, set)
}

func (misWorkload) RunBeep(g *graph.Graph, seed uint64) (*core.Result, error) {
	set, rounds, err := beepalgs.RunMIS(g, seed)
	if err != nil {
		return nil, err
	}
	outs := make([]any, len(set))
	for v, b := range set {
		outs[v] = b
	}
	return &core.Result{BeepRounds: rounds, AllDone: true, Outputs: outs}, nil
}

// coloringWorkload: randomized (Δ+1)-coloring.
type coloringWorkload struct{}

func (coloringWorkload) Name() string               { return WorkloadColoring }
func (coloringWorkload) MsgBits(g *graph.Graph) int { return coloring.MsgBits(g.N(), g.MaxDegree()) }
func (coloringWorkload) UsesRounds() bool           { return false }

func (coloringWorkload) Budget(g *graph.Graph, rounds int) int { return coloring.MaxRounds(g.N()) }

func (coloringWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return coloring.New(g.N())
}

func (coloringWorkload) Verify(g *graph.Graph, outputs []any) error {
	colors := make([]int, len(outputs))
	for v, o := range outputs {
		c, ok := o.(int)
		if !ok {
			return &OutputTypeError{Workload: WorkloadColoring, Node: v, Want: "int", Got: o}
		}
		colors[v] = c
	}
	return coloring.Verify(g, colors)
}

// leaderWorkload: max-ID leader election by flooding, with the
// conservative diameter bound n (leader.Algorithm's own default).
type leaderWorkload struct{}

func (leaderWorkload) Name() string               { return WorkloadLeader }
func (leaderWorkload) MsgBits(g *graph.Graph) int { return leader.MsgBits(g.N()) }
func (leaderWorkload) UsesRounds() bool           { return false }

func (leaderWorkload) Budget(g *graph.Graph, rounds int) int { return g.N() + 1 }

func (leaderWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return leader.New(g.N(), g.N())
}

func (leaderWorkload) Verify(g *graph.Graph, outputs []any) error {
	res := make([]leader.Result, len(outputs))
	for v, o := range outputs {
		r, ok := o.(leader.Result)
		if !ok {
			return &OutputTypeError{Workload: WorkloadLeader, Node: v, Want: "leader.Result", Got: o}
		}
		res[v] = r
	}
	return leader.Verify(g, res)
}

// matchingWorkload: the paper's §6 maximal matching (Algorithm 3).
type matchingWorkload struct{}

func (matchingWorkload) Name() string               { return WorkloadMatching }
func (matchingWorkload) MsgBits(g *graph.Graph) int { return matching.MsgBits(g.N()) }
func (matchingWorkload) UsesRounds() bool           { return false }

func (matchingWorkload) Budget(g *graph.Graph, rounds int) int { return matching.MaxRounds(g.N()) }

func (matchingWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return matching.New(g.N())
}

func (matchingWorkload) Verify(g *graph.Graph, outputs []any) error {
	partners := make([]int, len(outputs))
	for v, o := range outputs {
		p, ok := o.(int)
		if !ok {
			return &OutputTypeError{Workload: WorkloadMatching, Node: v, Want: "int", Got: o}
		}
		partners[v] = p
	}
	return matching.Verify(g, partners)
}

// bfstreeWorkload: BFS tree from node 0.
type bfstreeWorkload struct{}

func (bfstreeWorkload) Name() string               { return WorkloadBFSTree }
func (bfstreeWorkload) MsgBits(g *graph.Graph) int { return bfstree.MsgBits(g.N()) }
func (bfstreeWorkload) UsesRounds() bool           { return false }

func (bfstreeWorkload) Budget(g *graph.Graph, rounds int) int { return g.N() + 1 }

func (bfstreeWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return bfstree.New(g.N(), bfsRoot)
}

func (bfstreeWorkload) Verify(g *graph.Graph, outputs []any) error {
	res := make([]bfstree.Result, len(outputs))
	for v, o := range outputs {
		r, ok := o.(bfstree.Result)
		if !ok {
			return &OutputTypeError{Workload: WorkloadBFSTree, Node: v, Want: "bfstree.Result", Got: o}
		}
		res[v] = r
	}
	return bfstree.Verify(g, bfsRoot, res)
}

// broadcastWorkload: single-source payload flooding from node 0 — the
// §1.2 broadcast primitive. The CONGEST side floods the canonical payload
// for n rounds; the native beeping side runs the O(D + b) wave protocol
// through the sparse active-set driver, which is what makes the workload
// usable in the million-node regime.
type broadcastWorkload struct{}

func (broadcastWorkload) Name() string               { return WorkloadBroadcast }
func (broadcastWorkload) MsgBits(g *graph.Graph) int { return broadcast.MsgBits(g.N()) }
func (broadcastWorkload) UsesRounds() bool           { return false }

func (broadcastWorkload) Budget(g *graph.Graph, rounds int) int { return g.N() + 1 }

func (broadcastWorkload) Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm {
	return broadcast.New(g.N(), bfsRoot, g.N())
}

func (broadcastWorkload) Verify(g *graph.Graph, outputs []any) error {
	payloads := make([][]byte, len(outputs))
	for v, o := range outputs {
		p, ok := o.([]byte)
		if !ok {
			return &OutputTypeError{Workload: WorkloadBroadcast, Node: v, Want: "[]byte", Got: o}
		}
		payloads[v] = p
	}
	return broadcast.Verify(g, bfsRoot, payloads)
}

func (broadcastWorkload) RunBeep(g *graph.Graph, seed uint64) (*core.Result, error) {
	n := g.N()
	out, rounds, err := beepalgs.RunWaveBroadcastOpts(g, bfsRoot, broadcast.Payload(n),
		broadcast.PayloadBits(n), 0, seed, beepalgs.WaveOptions{EarlyStop: true, Sparse: true})
	if err != nil {
		return nil, err
	}
	outs := make([]any, n)
	for v, p := range out {
		outs[v] = p
	}
	return &core.Result{BeepRounds: rounds, AllDone: true, Outputs: outs}, nil
}
