package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupDedupes: N concurrent Do calls on one key run fn once;
// exactly one caller owns the execution, the rest share its value.
func TestFlightGroupDedupes(t *testing.T) {
	var g FlightGroup[string, int]
	var calls atomic.Int32
	release := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	vals := make([]int, waiters)
	owners := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared := g.Do("k", func() int {
				calls.Add(1)
				<-release // hold the flight open until all callers joined
				return 42
			})
			vals[i], owners[i] = v, !shared
		}(i)
	}
	// Wait for the flight to exist, then give the other goroutines time
	// to pile onto it before releasing (the x/sync singleflight test
	// pattern — fn blocks, so the flight cannot land early).
	for g.InFlight() == 0 {
		runtime.Gosched()
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	ownerN := 0
	for i := 0; i < waiters; i++ {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, vals[i])
		}
		if owners[i] {
			ownerN++
		}
	}
	if ownerN != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", ownerN)
	}
	if g.InFlight() != 0 {
		t.Fatalf("flight not forgotten after completion: %d in flight", g.InFlight())
	}
}

// TestFlightGroupForgetsAfterCompletion: unlike a cache, the group
// holds nothing once a flight lands — a later Do on the same key runs
// fn again (persistence is the store's job, not the flight group's).
func TestFlightGroupForgetsAfterCompletion(t *testing.T) {
	var g FlightGroup[string, int]
	var calls atomic.Int32
	fn := func() int { calls.Add(1); return int(calls.Load()) }
	if v, shared := g.Do("k", fn); v != 1 || shared {
		t.Fatalf("first Do: v=%d shared=%v", v, shared)
	}
	if v, shared := g.Do("k", fn); v != 2 || shared {
		t.Fatalf("second Do: v=%d shared=%v, want a fresh run", v, shared)
	}
}

// TestFlightGroupIndependentKeys: distinct keys fly independently and
// concurrently.
func TestFlightGroupIndependentKeys(t *testing.T) {
	var g FlightGroup[int, int]
	var wg sync.WaitGroup
	var calls atomic.Int32
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, _ := g.Do(k, func() int { calls.Add(1); return k * k })
			if v != k*k {
				t.Errorf("key %d got %d", k, v)
			}
		}(k)
	}
	wg.Wait()
	if n := calls.Load(); n != 16 {
		t.Fatalf("fn ran %d times, want 16 (one per key)", n)
	}
}
