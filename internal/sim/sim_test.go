package sim_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(12, 3, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runOnce(t *testing.T, g *graph.Graph, eng sim.Engine, wl sim.Workload, workers int) (*core.Result, sim.Extras) {
	t.Helper()
	rounds := 0
	if wl.UsesRounds() {
		rounds = 2
	}
	cfg := sim.Config{
		MsgBits:     wl.MsgBits(g),
		Epsilon:     0.05,
		ChannelSeed: 7,
		AlgSeed:     9,
		Workers:     workers,
		Workload:    wl,
		Rounds:      rounds,
	}
	inst, err := eng.Prepare(g, cfg)
	if err != nil {
		t.Fatalf("%s/%s: prepare: %v", eng.Name(), wl.Name(), err)
	}
	var algs []congest.BroadcastAlgorithm
	if eng.DrivesAlgs() {
		algs = wl.Algs(g, rounds)
	}
	res, extras, err := inst.Run(algs, wl.Budget(g, rounds))
	if err != nil {
		t.Fatalf("%s/%s: run: %v", eng.Name(), wl.Name(), err)
	}
	return res, extras
}

// TestConformanceAllWorkloadsAllEngines is the registry conformance
// suite: every registered workload runs on every compatible engine at
// small n, terminates in budget, passes its own Verify, and produces
// bit-identical results serial vs parallel.
func TestConformanceAllWorkloadsAllEngines(t *testing.T) {
	g := testGraph(t)
	pairs := 0
	for _, wn := range sim.WorkloadNames() {
		wl, _ := sim.WorkloadFor(wn)
		for _, en := range sim.EngineNames() {
			eng, _ := sim.EngineFor(en)
			if !eng.Supports(wl) {
				if sim.Supports(en, wn) {
					t.Errorf("Supports(%q, %q) disagrees with engine", en, wn)
				}
				continue
			}
			pairs++
			res, extras := runOnce(t, g, eng, wl, 1)
			if !res.AllDone {
				t.Errorf("%s/%s: did not terminate in budget", en, wn)
			}
			if verr := wl.Verify(g, res.Outputs); verr != nil && !errors.Is(verr, sim.ErrUnverified) {
				t.Errorf("%s/%s: verify: %v", en, wn, verr)
			}
			par, parExtras := runOnce(t, g, eng, wl, 3)
			if !reflect.DeepEqual(res, par) {
				t.Errorf("%s/%s: serial and parallel results differ", en, wn)
			}
			if !reflect.DeepEqual(extras, parExtras) {
				t.Errorf("%s/%s: serial and parallel extras differ", en, wn)
			}
		}
	}
	// 7 CONGEST-level workloads × 3 engines + the native beeping MIS and
	// broadcast.
	if want := 7*3 + 2; pairs != want {
		t.Errorf("conformance covered %d engine/workload pairs, want %d", pairs, want)
	}
}

func TestSupportsMatrix(t *testing.T) {
	for _, wn := range sim.WorkloadNames() {
		for _, en := range []string{sim.EngineAlg1, sim.EngineTDMA, sim.EngineCongest} {
			if !sim.Supports(en, wn) {
				t.Errorf("Supports(%q, %q) = false, want true", en, wn)
			}
		}
		want := wn == sim.WorkloadMIS || wn == sim.WorkloadBroadcast // the native beeping implementations
		if got := sim.Supports(sim.EngineBeep, wn); got != want {
			t.Errorf("Supports(beep, %q) = %v, want %v", wn, got, want)
		}
	}
	if sim.Supports("nope", sim.WorkloadMIS) || sim.Supports(sim.EngineAlg1, "nope") {
		t.Error("unknown names must be unsupported")
	}
	if !sim.IsNative(sim.EngineCongest) || !sim.IsNative(sim.EngineBeep) ||
		sim.IsNative(sim.EngineAlg1) || sim.IsNative(sim.EngineTDMA) || sim.IsNative("nope") {
		t.Error("IsNative misclassifies an engine")
	}
}

// TestVerifyOutputTypeError pins the satellite fix for the old
// panic-prone o.(bool) assertion: wrong-typed outputs surface as a
// typed, recoverable error.
func TestVerifyOutputTypeError(t *testing.T) {
	g := testGraph(t)
	for _, wn := range sim.WorkloadNames() {
		wl, _ := sim.WorkloadFor(wn)
		bad := make([]any, g.N())
		for i := range bad {
			bad[i] = struct{}{} // matches no workload's output type
		}
		err := wl.Verify(g, bad)
		if errors.Is(err, sim.ErrUnverified) {
			continue // no output-validity notion (gossip)
		}
		var typeErr *sim.OutputTypeError
		if !errors.As(err, &typeErr) {
			t.Errorf("%s: Verify(garbage) = %v, want *OutputTypeError", wn, err)
			continue
		}
		if typeErr.Workload != wn {
			t.Errorf("%s: OutputTypeError names workload %q", wn, typeErr.Workload)
		}
	}
}

func TestBeepEngineRejectsNonNativeWorkload(t *testing.T) {
	g := testGraph(t)
	eng, _ := sim.EngineFor(sim.EngineBeep)
	wl, _ := sim.WorkloadFor(sim.WorkloadGossip)
	if _, err := eng.Prepare(g, sim.Config{Workload: wl}); err == nil {
		t.Fatal("beep engine accepted a workload with no native implementation")
	}
}

func TestCacheGraphBuildsOnce(t *testing.T) {
	c := sim.NewCache()
	key := sim.GraphKey{Family: "regular", N: 16, Param: 3, Seed: 11}
	builds := 0
	var mu sync.Mutex
	build := func() (*graph.Graph, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		return graph.RandomRegular(16, 3, rng.New(11))
	}
	var wg sync.WaitGroup
	got := make([]*graph.Graph, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := c.Graph(key, build)
			if err != nil {
				t.Error(err)
			}
			got[i] = g
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	for _, g := range got[1:] {
		if g != got[0] {
			t.Fatal("concurrent lookups returned distinct graph instances")
		}
	}
	st := c.Stats()
	if st.GraphMisses != 1 || st.GraphHits != 7 {
		t.Fatalf("stats = %+v, want 1 miss / 7 hits", st)
	}
}

func TestCacheCodesSharedAndKeyed(t *testing.T) {
	c := sim.NewCache()
	p := core.DefaultParams(16, 3, 8, 0.1)
	a, err := c.Codes(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Codes(p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same Params produced distinct code tables")
	}
	q := p
	q.Epsilon = 0.2
	other, err := c.Codes(q)
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("different Params shared one code-table entry")
	}
	if st := c.Stats(); st.CodeMisses != 2 || st.CodeHits != 1 {
		t.Fatalf("stats = %+v, want 2 misses / 1 hit", st)
	}
}

func TestCacheBounded(t *testing.T) {
	c := sim.NewCache()
	build := func(n int) func() (*graph.Graph, error) {
		return func() (*graph.Graph, error) { return graph.Cycle(n), nil }
	}
	for i := 0; i < sim.DefaultMaxGraphs+10; i++ {
		if _, err := c.Graph(sim.GraphKey{Family: "cycle", N: i + 3}, build(i+3)); err != nil {
			t.Fatal(err)
		}
	}
	// The oldest entries were evicted: re-asking for key 0 rebuilds.
	if _, err := c.Graph(sim.GraphKey{Family: "cycle", N: 3}, build(3)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.GraphMisses != int64(sim.DefaultMaxGraphs)+11 || st.GraphHits != 0 {
		t.Fatalf("stats = %+v, want %d misses (bounded eviction) and 0 hits", st, sim.DefaultMaxGraphs+11)
	}
}

func TestNilCacheBuildsDirectly(t *testing.T) {
	var c *sim.Cache
	g, err := c.Graph(sim.GraphKey{Family: "cycle", N: 5}, func() (*graph.Graph, error) { return graph.Cycle(5), nil })
	if err != nil || g.N() != 5 {
		t.Fatalf("nil cache Graph = %v, %v", g, err)
	}
	if _, err := c.Codes(core.DefaultParams(8, 2, 6, 0)); err != nil {
		t.Fatalf("nil cache Codes: %v", err)
	}
	if st := c.Stats(); st != (sim.CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}
