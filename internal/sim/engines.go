package sim

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

func init() {
	RegisterEngine(alg1Engine{})
	RegisterEngine(tdmaEngine{})
	RegisterEngine(congestEngine{})
	RegisterEngine(beepEngine{})
}

// alg1Engine adapts the paper's Algorithm 1 simulation (internal/core).
type alg1Engine struct{}

func (alg1Engine) Name() string             { return EngineAlg1 }
func (alg1Engine) Native() bool             { return false }
func (alg1Engine) Supports(w Workload) bool { return true }
func (alg1Engine) DrivesAlgs() bool         { return true }

func (alg1Engine) Prepare(g *graph.Graph, cfg Config) (Instance, error) {
	p, err := core.DefaultParamsNoise(g.N(), g.MaxDegree(), cfg.MsgBits, cfg.Epsilon, cfg.Noise)
	if err != nil {
		return nil, err
	}
	var codes *core.Codes
	if cfg.Artifacts != nil {
		var err error
		if codes, err = cfg.Artifacts.Codes(p); err != nil {
			return nil, err
		}
	}
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      p,
		Codes:       codes,
		ChannelSeed: cfg.ChannelSeed,
		AlgSeed:     cfg.AlgSeed,
		NoisyOwn:    true,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return alg1Instance{runner}, nil
}

type alg1Instance struct{ r *core.BroadcastRunner }

func (i alg1Instance) Run(algs []congest.BroadcastAlgorithm, budget int) (*core.Result, Extras, error) {
	res, err := i.r.Run(algs, budget)
	return res, nil, err
}

// tdmaEngine adapts the prior-work G²-coloring baseline
// (internal/baseline), reporting its schedule parameterization as
// Extras.
type tdmaEngine struct{}

func (tdmaEngine) Name() string             { return EngineTDMA }
func (tdmaEngine) Native() bool             { return false }
func (tdmaEngine) Supports(w Workload) bool { return true }
func (tdmaEngine) DrivesAlgs() bool         { return true }

func (tdmaEngine) Prepare(g *graph.Graph, cfg Config) (Instance, error) {
	bl, err := baseline.NewRunner(g, baseline.Config{
		MsgBits:     cfg.MsgBits,
		Epsilon:     cfg.Epsilon,
		Noise:       cfg.Noise,
		ChannelSeed: cfg.ChannelSeed,
		AlgSeed:     cfg.AlgSeed,
		NoisyOwn:    true,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return tdmaInstance{r: bl, g: g}, nil
}

// PrepareSliced implements the SlicedEngine capability: the TDMA
// baseline's fixed slot schedule makes it the natural lane-transposed
// engine (internal/baseline.SlicedRunner). Lane results are
// bit-identical to Prepare+Run per lane — the sweep conformance tests
// pin stored records byte-for-byte across the two paths.
func (tdmaEngine) PrepareSliced(g *graph.Graph, base Config, lanes []LaneSeeds) (SlicedInstance, error) {
	lcs := make([]baseline.LaneConfig, len(lanes))
	for k, l := range lanes {
		lcs[k] = baseline.LaneConfig{ChannelSeed: l.ChannelSeed, AlgSeed: l.AlgSeed}
	}
	bl, err := baseline.NewSlicedRunner(g, baseline.Config{
		MsgBits:  base.MsgBits,
		Epsilon:  base.Epsilon,
		Noise:    base.Noise,
		NoisyOwn: true,
		Workers:  base.Workers,
		Shards:   base.Shards,
		Metrics:  base.Metrics,
	}, lcs)
	if err != nil {
		return nil, err
	}
	return tdmaSlicedInstance{r: bl, g: g}, nil
}

type tdmaInstance struct {
	r *baseline.Runner
	g *graph.Graph
}

func (i tdmaInstance) Run(algs []congest.BroadcastAlgorithm, budget int) (*core.Result, Extras, error) {
	res, err := i.r.Run(algs, budget)
	if err != nil {
		return nil, nil, err
	}
	return res, Extras{
		ExtraColors:      int64(i.r.NumColors()),
		ExtraRho:         int64(i.r.Rho()),
		ExtraSetupRounds: int64(baseline.EstimatedSetupRounds(i.g.N(), i.g.MaxDegree())),
	}, nil
}

type tdmaSlicedInstance struct {
	r *baseline.SlicedRunner
	g *graph.Graph
}

func (i tdmaSlicedInstance) RunSliced(algs [][]congest.BroadcastAlgorithm, budget int) ([]*core.Result, []Extras, error) {
	results, err := i.r.Run(algs, budget)
	if err != nil {
		return nil, nil, err
	}
	extras := make([]Extras, len(results))
	for k := range extras {
		extras[k] = Extras{
			ExtraColors:      int64(i.r.NumColors()),
			ExtraRho:         int64(i.r.Rho()),
			ExtraSetupRounds: int64(baseline.EstimatedSetupRounds(i.g.N(), i.g.MaxDegree())),
		}
	}
	return results, extras, nil
}

// congestEngine adapts native Broadcast CONGEST (internal/congest): no
// beeps, no decode errors — natively delivered messages cannot err.
type congestEngine struct{}

func (congestEngine) Name() string             { return EngineCongest }
func (congestEngine) Native() bool             { return true }
func (congestEngine) Supports(w Workload) bool { return true }
func (congestEngine) DrivesAlgs() bool         { return true }

func (congestEngine) Prepare(g *graph.Graph, cfg Config) (Instance, error) {
	eng, err := congest.NewBroadcastEngine(g, cfg.MsgBits, cfg.AlgSeed)
	if err != nil {
		return nil, err
	}
	eng.SetParallelism(cfg.Workers, cfg.Shards)
	return congestInstance{eng}, nil
}

type congestInstance struct{ e *congest.BroadcastEngine }

func (i congestInstance) Run(algs []congest.BroadcastAlgorithm, budget int) (*core.Result, Extras, error) {
	res, err := i.e.Run(algs, budget)
	if err != nil {
		return nil, nil, err
	}
	out := &core.Result{SimRounds: res.Rounds, AllDone: res.AllDone, Outputs: res.Outputs}
	return out, Extras{ExtraMessages: res.Messages}, nil
}

// beepEngine adapts native beeping algorithms (internal/beepalgs): the
// channel is noiseless, AlgSeed drives the whole run (there is no
// separate channel stream), and only workloads with a NativeBeeper
// implementation can run.
type beepEngine struct{}

func (beepEngine) Name() string { return EngineBeep }
func (beepEngine) Native() bool { return true }

// DrivesAlgs is false: the beep engine executes the workload natively
// (NativeBeeper), so CONGEST instances are never constructed for it.
func (beepEngine) DrivesAlgs() bool { return false }

func (beepEngine) Supports(w Workload) bool {
	_, ok := w.(NativeBeeper)
	return ok
}

func (beepEngine) Prepare(g *graph.Graph, cfg Config) (Instance, error) {
	nb, ok := cfg.Workload.(NativeBeeper)
	if !ok {
		name := "<nil>"
		if cfg.Workload != nil {
			name = cfg.Workload.Name()
		}
		return nil, fmt.Errorf("sim: engine %q cannot run workload %q natively", EngineBeep, name)
	}
	return beepInstance{g: g, nb: nb, seed: cfg.AlgSeed}, nil
}

type beepInstance struct {
	g    *graph.Graph
	nb   NativeBeeper
	seed uint64
}

func (i beepInstance) Run(algs []congest.BroadcastAlgorithm, budget int) (*core.Result, Extras, error) {
	res, err := i.nb.RunBeep(i.g, i.seed)
	return res, nil, err
}
