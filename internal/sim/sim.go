// Package sim is the pluggable execution layer between the scenario
// vocabulary (internal/sweep) and the engines and algorithms that do the
// work. The paper's headline result is a *generic* simulator — any
// Broadcast CONGEST algorithm runs over noisy beeps with bounded
// overhead — so "any algorithm × any engine" is a first-class axis here:
//
//   - An Engine adapts one execution substrate (the paper's Algorithm 1,
//     the prior-work TDMA baseline, native Broadcast CONGEST, native
//     beeping) to a uniform Prepare/Run shape. Engine-specific outputs
//     travel in a typed Extras map instead of engine-specific plumbing.
//   - A Workload adapts one algorithm family (gossip, MIS, coloring,
//     leader election, maximal matching, BFS tree) to a uniform
//     bandwidth/budget/instances/verify shape.
//   - The package-level registries bind names to implementations, so the
//     sweep layer, the CLIs, and the tests all resolve the same
//     vocabulary; Supports is the single compatibility rule.
//   - A Cache (cache.go) shares the expensive pure-function artifacts —
//     graphs and code tables — across the scenarios of a batch.
//
// Everything here preserves the repository's determinism contract
// (DESIGN.md §4): engines and workloads derive all randomness from the
// seeds in Config, so a result is a pure function of
// (graph, Config, workload) regardless of Workers/Shards or cache hits.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/obs"
)

// Canonical engine names. These are the values scenario specs use; the
// sweep package re-exports them so existing spec vocabulary (and every
// content hash derived from it) is unchanged.
const (
	EngineAlg1    = "alg1"    // the paper's Algorithm 1 simulation (internal/core)
	EngineTDMA    = "tdma"    // prior-work G²-coloring baseline (internal/baseline)
	EngineCongest = "congest" // native Broadcast CONGEST (internal/congest), no beeps
	EngineBeep    = "beep"    // native beeping algorithm (internal/beepalgs)
)

// Canonical workload names.
const (
	WorkloadGossip   = "gossip"   // ID broadcast every round — the canonical one-round probe
	WorkloadMIS      = "mis"      // maximal independent set (Luby over CONGEST, Afek et al. natively)
	WorkloadColoring = "coloring" // randomized (Δ+1)-coloring
	WorkloadLeader   = "leader"   // max-ID leader election by flooding
	WorkloadMatching = "matching" // the paper's §6 maximal matching (Algorithm 3)
	WorkloadBFSTree  = "bfstree"  // BFS tree from node 0
	// WorkloadBroadcast is single-source payload flooding from node 0,
	// with the O(D + b) beep-wave protocol as the native implementation.
	WorkloadBroadcast = "broadcast"
)

// Extras carries engine-specific measurements out of an Instance run —
// values only some engines produce (TDMA schedule parameters, native
// message counts) — under well-known keys, so the record layer stores
// them uniformly without knowing engine internals. A nil map means
// "nothing extra".
type Extras map[string]int64

// Well-known Extras keys.
const (
	// ExtraColors is the TDMA schedule length (G² color classes).
	ExtraColors = "colors"
	// ExtraRho is the TDMA per-bit repetition count.
	ExtraRho = "rho"
	// ExtraSetupRounds is the TDMA estimated distributed-setup cost.
	ExtraSetupRounds = "setup_rounds"
	// ExtraMessages is the native CONGEST engines' message count.
	ExtraMessages = "messages"
)

// Config is everything an Engine needs to prepare an execution besides
// the graph itself. All fields except Workers/Shards/Artifacts are part
// of the result's identity; those three never change results (the
// engines' pools are deterministic and cached artifacts are pure
// functions of their keys).
type Config struct {
	// MsgBits is the resolved Broadcast CONGEST bandwidth (the workload
	// default unless the scenario overrides it).
	MsgBits int
	// Epsilon is the beeping-channel noise rate; native engines have no
	// beeping channel and ignore it.
	Epsilon float64
	// Noise is the canonical channel-model spec (internal/noise.Parse)
	// for a non-default channel; empty means the symmetric{Epsilon}
	// channel. Like Epsilon it only reaches the engines that simulate
	// over beeps (see SupportsNoise); Epsilon must be 0 when set.
	Noise string
	// ChannelSeed drives channel noise (ignored by native engines);
	// AlgSeed drives the algorithms' private randomness and the native
	// beeping run.
	ChannelSeed uint64
	AlgSeed     uint64
	// Workers and Shards configure the engine's deterministic worker
	// pool (0 or 1 = serial).
	Workers int
	Shards  int
	// Workload is the resolved workload, for engines that execute the
	// workload natively rather than running its CONGEST instances (the
	// beep engine consults the NativeBeeper capability).
	Workload Workload
	// Rounds is the scenario's workload rounds knob, interpreted by the
	// workload (gossip's round count; 0 for self-budgeting workloads).
	Rounds int
	// Artifacts, when non-nil, shares graphs and code tables across the
	// scenarios of a batch.
	Artifacts *Cache
	// Metrics, when non-nil, receives observation-only instrumentation
	// from the engines that support it (phase timers, decode counters,
	// noise-flip accounting). Like Workers/Shards/Artifacts it is outside
	// the result's identity: telemetry never consumes algorithm or channel
	// randomness, so records are byte-identical with it on or off.
	Metrics *obs.Registry
}

// Instance is one prepared execution: an engine bound to a graph and a
// Config, ready to run.
type Instance interface {
	// Run drives the per-node algorithms for at most budget engine
	// rounds and reports the result plus engine-specific Extras. Engines
	// that execute the workload natively (NativeBeeper) ignore algs and
	// budget.
	Run(algs []congest.BroadcastAlgorithm, budget int) (*core.Result, Extras, error)
}

// Engine is one registered execution substrate.
type Engine interface {
	// Name is the engine's registry key (Engine* constants).
	Name() string
	// Native reports that the engine has no beeping channel: Epsilon and
	// ChannelSeed are ignored, and grid expansion normalizes both to
	// zero so equal work shares one scenario hash.
	Native() bool
	// Supports reports whether the engine can execute the workload.
	Supports(w Workload) bool
	// DrivesAlgs reports whether Run executes the workload's per-node
	// CONGEST instances. Engines that run the workload natively (beep,
	// via NativeBeeper) ignore them, and callers skip constructing
	// instances altogether.
	DrivesAlgs() bool
	// Prepare binds the engine to a graph and configuration.
	Prepare(g *graph.Graph, cfg Config) (Instance, error)
}

// LaneSeeds is one replicate's private randomness in a sliced batch —
// the only Config fields that vary across the replicates of a scenario.
type LaneSeeds struct {
	ChannelSeed uint64
	AlgSeed     uint64
}

// SlicedInstance is a prepared replicate-sliced execution: one engine
// pass advances every lane together, bit-identical to running the lanes
// serially (DESIGN.md §2.14).
type SlicedInstance interface {
	// RunSliced drives lane k's per-node algorithms algs[k] for at most
	// budget engine rounds each, returning per-lane results and Extras
	// positionally matching the prepared lanes.
	RunSliced(algs [][]congest.BroadcastAlgorithm, budget int) ([]*core.Result, []Extras, error)
}

// SlicedEngine is an optional Engine capability: executing up to 64
// same-scenario replicates in one lane-transposed pass. The sweep layer
// groups specs that differ only in their seeds and dispatches the group
// here when the engine advertises the capability; every lane's result
// must be bit-identical to Prepare+Run with that lane's seeds, so
// slicing is purely an execution detail — records, hashes, and stores
// never see it.
type SlicedEngine interface {
	// PrepareSliced binds the engine to a graph, a base Config shared by
	// all lanes (its ChannelSeed and AlgSeed are ignored), and one
	// LaneSeeds per replicate (1 to 64 lanes).
	PrepareSliced(g *graph.Graph, base Config, lanes []LaneSeeds) (SlicedInstance, error)
}

// Workload is one registered algorithm family.
type Workload interface {
	// Name is the workload's registry key (Workload* constants).
	Name() string
	// MsgBits returns the bandwidth the workload needs on g.
	MsgBits(g *graph.Graph) int
	// UsesRounds reports whether the workload is parameterized by a
	// scenario round count (gossip); self-budgeting workloads require
	// the scenario's Rounds to be zero.
	UsesRounds() bool
	// Budget returns the engine round budget (rounds is the scenario
	// knob; ignored by self-budgeting workloads).
	Budget(g *graph.Graph, rounds int) int
	// Algs returns fresh per-node CONGEST instances.
	Algs(g *graph.Graph, rounds int) []congest.BroadcastAlgorithm
	// Verify checks the per-node outputs of a completed run: nil means
	// output-valid, ErrUnverified means the workload defines no
	// output-validity notion, an *OutputTypeError means the outputs had
	// the wrong dynamic type (a wiring bug, not an invalid output), and
	// any other error describes why the output is invalid.
	Verify(g *graph.Graph, outputs []any) error
}

// NativeBeeper is an optional Workload capability: a native beeping
// implementation (beeps only, no message passing). The beep engine runs
// exactly the workloads that implement it.
type NativeBeeper interface {
	// RunBeep executes the native protocol on a noiseless beeping
	// network seeded by seed, reporting outputs and BeepRounds.
	RunBeep(g *graph.Graph, seed uint64) (*core.Result, error)
}

// ErrUnverified is returned by Workload.Verify when the workload has no
// output-validity notion; callers leave their validity flag unset.
var ErrUnverified = errors.New("sim: workload defines no output-validity notion")

// OutputTypeError reports a per-node output with the wrong dynamic type
// — an engine/workload wiring bug surfaced as a typed, recoverable
// error instead of a panic inside a batch worker.
type OutputTypeError struct {
	// Workload is the verifying workload's name; Node the offending
	// node; Want the expected Go type; Got the value received.
	Workload string
	Node     int
	Want     string
	Got      any
}

func (e *OutputTypeError) Error() string {
	return fmt.Sprintf("sim: workload %q: node %d output is %T, want %s", e.Workload, e.Node, e.Got, e.Want)
}

// ProtocolBrokenError reports that a hostile channel (adversarial or
// jamming, noise.Hostile) exceeded what the protocol's calibration
// absorbs: the run terminated — never hung, never panicked — but its
// output failed verification or its round budget ran out. The failure
// is attributed to the channel, not the algorithm; frontier searches
// treat it as "this budget breaks this protocol".
type ProtocolBrokenError struct {
	// Workload and Engine name the broken scenario's protocol; Noise is
	// the hostile channel's canonical spec; Reason says how the break
	// surfaced (verification failure, round-budget exhaustion).
	Workload string
	Engine   string
	Noise    string
	Reason   string
}

func (e *ProtocolBrokenError) Error() string {
	return fmt.Sprintf("sim: protocol broken: workload %q on engine %q under channel %s: %s", e.Workload, e.Engine, e.Noise, e.Reason)
}

// --- registries ---

var (
	regMu     sync.RWMutex
	engines   = map[string]Engine{}
	workloads = map[string]Workload{}
)

// RegisterEngine adds e to the engine registry. It panics on a duplicate
// name (registration is an init-time, programmer-controlled act).
func RegisterEngine(e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := engines[e.Name()]; dup {
		panic(fmt.Sprintf("sim: duplicate engine %q", e.Name()))
	}
	engines[e.Name()] = e
}

// RegisterWorkload adds w to the workload registry. It panics on a
// duplicate name.
func RegisterWorkload(w Workload) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := workloads[w.Name()]; dup {
		panic(fmt.Sprintf("sim: duplicate workload %q", w.Name()))
	}
	workloads[w.Name()] = w
}

// EngineFor resolves an engine name.
func EngineFor(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := engines[name]
	return e, ok
}

// WorkloadFor resolves a workload name.
func WorkloadFor(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := workloads[name]
	return w, ok
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Supports reports whether the named engine can execute the named
// workload — the single compatibility rule behind scenario validation,
// grid expansion, and the conformance tests. Unknown names are
// unsupported.
func Supports(engine, workload string) bool {
	e, ok := EngineFor(engine)
	if !ok {
		return false
	}
	w, ok := WorkloadFor(workload)
	if !ok {
		return false
	}
	return e.Supports(w)
}

// IsNative reports whether the named engine is registered and native
// (no beeping channel; see Engine.Native).
func IsNative(engine string) bool {
	e, ok := EngineFor(engine)
	return ok && e.Native()
}

// SupportsNoise reports whether the named engine can execute under the
// channel-model spec — the capability rule for the noise axis, beside
// Supports for workloads. Every engine accepts the default channel
// (empty spec); only engines that actually simulate over the beeping
// channel (the non-native ones) accept a model, and the spec must name
// a registered model. Unknown engines support nothing.
func SupportsNoise(engine, spec string) bool {
	e, ok := EngineFor(engine)
	if !ok {
		return false
	}
	if spec == "" {
		return true
	}
	if e.Native() {
		return false
	}
	_, err := noise.Parse(spec)
	return err == nil
}
