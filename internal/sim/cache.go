package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Default artifact-cache bounds. A sweep batch touches one graph per
// (family, n, Δ, graph-seed) point and one code table per
// parameterization, so these cover grids far larger than anything the
// experiment suite runs while keeping worst-case memory bounded.
const (
	DefaultMaxGraphs = 128
	DefaultMaxCodes  = 64
)

// Cache shares the expensive pure-function artifacts of scenario
// execution across a batch:
//
//   - graphs, which depend only on (family, n, Δ-parameter, graph seed)
//     — a GraphKey, stored under the SHA-256 content hash of its
//     canonical JSON;
//   - Algorithm 1 code tables (core.Codes), which depend only on the
//     full core.Params value — the key is the content.
//
// A 64-scenario grid over ε/engine/replicate axes re-uses each graph
// and each code table instead of rebuilding them per scenario, and a
// shared graph additionally memoizes derived structure (the TDMA
// engine's distance-2 coloring) across the scenarios that run on it.
//
// Determinism: both artifact kinds are pure functions of their keys and
// immutable once built, so cache hits are indistinguishable from fresh
// construction — records are byte-identical with the cache on or off
// (TestArtifactCacheRecordsIdentical). Concurrent lookups of one key
// build once (per-entry sync.Once); each kind is bounded, evicting the
// oldest *built* entry on overflow — an entry whose build is still in
// flight is never evicted, so a concurrent waiter can never be left
// holding a dropped entry while a new lookup rebuilds the same key
// (the map may transiently exceed its bound by the number of in-flight
// builds). A nil *Cache is valid and caches nothing.
type Cache struct {
	mu          sync.Mutex
	graphs      map[string]*graphEntry
	graphOrder  []string
	codes       map[core.Params]*codesEntry
	codesOrder  []core.Params
	maxGraphs   int
	maxCodes    int
	graphHits   int64
	graphMisses int64
	codeHits    int64
	codeMisses  int64
}

type graphEntry struct {
	once  sync.Once
	built bool // guarded by Cache.mu: set once the build completed
	g     *graph.Graph
	err   error
}

type codesEntry struct {
	once  sync.Once
	built bool // guarded by Cache.mu: set once the build completed
	c     *core.Codes
	err   error
}

// NewCache returns an empty cache with the default bounds.
func NewCache() *Cache {
	return NewCacheBounded(DefaultMaxGraphs, DefaultMaxCodes)
}

// NewCacheBounded returns an empty cache holding at most maxGraphs
// graphs and maxCodes code tables (each at least 1).
func NewCacheBounded(maxGraphs, maxCodes int) *Cache {
	if maxGraphs < 1 || maxCodes < 1 {
		panic(fmt.Sprintf("sim: cache bounds must be positive, got %d graphs / %d codes", maxGraphs, maxCodes))
	}
	return &Cache{
		graphs:    make(map[string]*graphEntry),
		codes:     make(map[core.Params]*codesEntry),
		maxGraphs: maxGraphs,
		maxCodes:  maxCodes,
	}
}

// evictOldestBuiltGraph removes the oldest graph entry whose build has
// completed, if any; in-flight entries are skipped (a waiter inside
// their sync.Once still needs them). Caller holds c.mu.
func (c *Cache) evictOldestBuiltGraph() {
	for i, h := range c.graphOrder {
		if c.graphs[h].built {
			delete(c.graphs, h)
			c.graphOrder = append(c.graphOrder[:i], c.graphOrder[i+1:]...)
			return
		}
	}
}

// evictOldestBuiltCodes is evictOldestBuiltGraph for code tables.
// Caller holds c.mu.
func (c *Cache) evictOldestBuiltCodes() {
	for i, p := range c.codesOrder {
		if c.codes[p].built {
			delete(c.codes, p)
			c.codesOrder = append(c.codesOrder[:i], c.codesOrder[i+1:]...)
			return
		}
	}
}

// GraphKey is the complete identity of a scenario graph: BuildGraph is a
// pure function of these four fields (DESIGN.md §4), so they are the
// cache key.
type GraphKey struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Param  int    `json:"param"`
	Seed   uint64 `json:"seed"`
}

// Hash returns the key's content address: the SHA-256 of its canonical
// JSON encoding, like the sweep layer's scenario hashes.
func (k GraphKey) Hash() string {
	b, err := json.Marshal(k)
	if err != nil {
		panic(fmt.Sprintf("sim: marshal graph key: %v", err)) // scalars only; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Graph returns the cached graph for key, calling build (which must be a
// pure function of the key) at most once per cached entry. A nil cache
// just calls build.
func (c *Cache) Graph(key GraphKey, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	if c == nil {
		return build()
	}
	h := key.Hash()
	c.mu.Lock()
	e, ok := c.graphs[h]
	if ok {
		c.graphHits++
	} else {
		c.graphMisses++
		if len(c.graphs) >= c.maxGraphs {
			c.evictOldestBuiltGraph()
		}
		e = &graphEntry{}
		c.graphs[h] = e
		c.graphOrder = append(c.graphOrder, h)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.g, e.err = build()
		c.mu.Lock()
		e.built = true
		c.mu.Unlock()
	})
	return e.g, e.err
}

// Codes returns the cached Algorithm 1 decode tables for p, building
// them at most once per cached entry. A nil cache builds fresh tables.
func (c *Cache) Codes(p core.Params) (*core.Codes, error) {
	if c == nil {
		return core.BuildCodes(p)
	}
	c.mu.Lock()
	e, ok := c.codes[p]
	if ok {
		c.codeHits++
	} else {
		c.codeMisses++
		if len(c.codes) >= c.maxCodes {
			c.evictOldestBuiltCodes()
		}
		e = &codesEntry{}
		c.codes[p] = e
		c.codesOrder = append(c.codesOrder, p)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.c, e.err = core.BuildCodes(p)
		c.mu.Lock()
		e.built = true
		c.mu.Unlock()
	})
	return e.c, e.err
}

// CacheStats reports hit/miss counts per artifact kind.
type CacheStats struct {
	GraphHits, GraphMisses int64
	CodeHits, CodeMisses   int64
}

// Stats returns a snapshot of the cache's counters (zero for nil).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		GraphHits: c.graphHits, GraphMisses: c.graphMisses,
		CodeHits: c.codeHits, CodeMisses: c.codeMisses,
	}
}

func (s CacheStats) String() string {
	return fmt.Sprintf("graphs %d/%d codes %d/%d (hits/misses)",
		s.GraphHits, s.GraphMisses, s.CodeHits, s.CodeMisses)
}
