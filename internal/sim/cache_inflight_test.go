package sim_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
)

// TestCacheEvictionSkipsInFlight forces an overflow while a slow build
// is in flight. The in-flight entry must survive eviction: the waiter
// keeps the entry that ends up cached, and a concurrent lookup of the
// same key joins the in-flight build instead of rebuilding — the
// regression the oldest-first eviction had, where the overflow dropped
// the building entry and handed the key a second build.
func TestCacheEvictionSkipsInFlight(t *testing.T) {
	c := sim.NewCacheBounded(1, 1)
	key1 := sim.GraphKey{Family: "cycle", N: 8, Seed: 1}
	key2 := sim.GraphKey{Family: "cycle", N: 9, Seed: 2}

	var builds1 atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	slowBuild := func() (*graph.Graph, error) {
		builds1.Add(1)
		close(started)
		<-release
		return graph.Cycle(8), nil
	}

	var wg sync.WaitGroup
	var fromWaiter, fromJoiner *graph.Graph
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, err := c.Graph(key1, slowBuild)
		if err != nil {
			t.Error(err)
		}
		fromWaiter = g
	}()
	<-started

	// Overflow the one-entry bound while key1 is mid-build. The bound is
	// allowed to stretch; key1 must not be dropped.
	if _, err := c.Graph(key2, func() (*graph.Graph, error) { return graph.Cycle(9), nil }); err != nil {
		t.Fatal(err)
	}

	// A second lookup of key1 while its build is in flight must join
	// that build, not start another.
	wg.Add(1)
	go func() {
		defer wg.Done()
		g, err := c.Graph(key1, func() (*graph.Graph, error) {
			t.Error("in-flight entry was rebuilt after eviction")
			return graph.Cycle(8), nil
		})
		if err != nil {
			t.Error(err)
		}
		fromJoiner = g
	}()

	close(release)
	wg.Wait()
	if n := builds1.Load(); n != 1 {
		t.Fatalf("key1 built %d times, want 1", n)
	}
	if fromWaiter == nil || fromWaiter != fromJoiner {
		t.Fatal("waiter and joiner hold different graph instances")
	}

	// Once built, the entry becomes evictable again: a third key pushes
	// the (now oldest built) key1 out, and re-asking rebuilds it.
	if _, err := c.Graph(sim.GraphKey{Family: "cycle", N: 10, Seed: 3}, func() (*graph.Graph, error) { return graph.Cycle(10), nil }); err != nil {
		t.Fatal(err)
	}
	rebuilt := false
	if _, err := c.Graph(key1, func() (*graph.Graph, error) {
		rebuilt = true
		return graph.Cycle(8), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("built entries are no longer evictable")
	}
}

// TestCacheCodesKeyedByNoise: the decode-table cache key is the full
// Params including the channel spec — equal sizes under different
// channels must not share tables (their thresholds differ).
func TestCacheCodesKeyedByNoise(t *testing.T) {
	c := sim.NewCache()
	sym := core.DefaultParams(16, 3, 8, 0.2)
	asym, err := core.DefaultParamsNoise(16, 3, 8, 0, "asymmetric:0.05:0.2")
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Codes(sym)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Codes(asym)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different channels shared one code-table entry")
	}
	if st := c.Stats(); st.CodeMisses != 2 {
		t.Fatalf("stats = %+v, want 2 misses", st)
	}
}

// TestSupportsNoise: every engine accepts the default channel; only the
// engines that simulate over beeps accept a model, and the spec must
// name a registered model.
func TestSupportsNoise(t *testing.T) {
	const burst = "gilbert-elliott:0.02:0.3:0.05:0.25"
	cases := []struct {
		engine, spec string
		want         bool
	}{
		{sim.EngineAlg1, "", true},
		{sim.EngineTDMA, "", true},
		{sim.EngineCongest, "", true},
		{sim.EngineBeep, "", true},
		{sim.EngineAlg1, burst, true},
		{sim.EngineTDMA, burst, true},
		{sim.EngineCongest, burst, false},
		{sim.EngineBeep, burst, false},
		{sim.EngineAlg1, "bogus:1", false},
		{"nope", "", false},
	}
	for _, tc := range cases {
		if got := sim.SupportsNoise(tc.engine, tc.spec); got != tc.want {
			t.Errorf("SupportsNoise(%q, %q) = %v, want %v", tc.engine, tc.spec, got, tc.want)
		}
	}
}
