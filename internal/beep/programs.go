package beep

import "repro/internal/bitstring"

// Transmitter is a Program that beeps a fixed pattern and records what it
// hears. It is the round-by-round twin of one RunPhase window, used by the
// equivalence tests and available as a building block.
type Transmitter struct {
	// Pattern is the beep schedule; nil means silent throughout Rounds.
	Pattern *bitstring.BitString
	// Rounds is the window length (defaults to Pattern length).
	Rounds int

	heard *bitstring.BitString
	done  bool
}

// Init implements Program.
func (tx *Transmitter) Init(Env) {
	if tx.Rounds == 0 && tx.Pattern != nil {
		tx.Rounds = tx.Pattern.Len()
	}
	tx.heard = bitstring.New(tx.Rounds)
	tx.done = tx.Rounds == 0
}

// Step implements Program.
func (tx *Transmitter) Step(round int) Action {
	if tx.Pattern != nil && round < tx.Pattern.Len() && tx.Pattern.Get(round) {
		return Beep
	}
	return Listen
}

// Hear implements Program.
func (tx *Transmitter) Hear(round int, bit bool) {
	if bit {
		tx.heard.Set(round)
	}
	if round == tx.Rounds-1 {
		tx.done = true
	}
}

// Done implements Program.
func (tx *Transmitter) Done() bool { return tx.done }

// Output returns the heard bitstring.
func (tx *Transmitter) Output() any { return tx.heard }

// Heard returns the received bits (valid after the run).
func (tx *Transmitter) Heard() *bitstring.BitString { return tx.heard }

// NextWake implements QuietProgram: a transmitter acts on its own only at
// its pattern's beep rounds and at its final round (whose Hear marks it
// done); everything else is reactive listening the sparse driver supplies
// on demand.
func (tx *Transmitter) NextWake(round int) int {
	if tx.done {
		return NoWake
	}
	if tx.Pattern != nil {
		for r := round + 1; r < tx.Pattern.Len(); r++ {
			if tx.Pattern.Get(r) {
				return r
			}
		}
	}
	if last := tx.Rounds - 1; last > round {
		return last
	}
	return round + 1
}

var (
	_ Program      = (*Transmitter)(nil)
	_ QuietProgram = (*Transmitter)(nil)
)

// AlarmFlood is the "beep wave" primitive of Ghaffari & Haeupler for the
// noiseless model: the source beeps in its first active round; every other
// node relays the first beep it hears one round later and then stops. In a
// connected noiseless network every node activates at exactly its BFS
// distance from the source.
//
// Output is the round in which the node joined the wave — it relays in
// round d for a node at BFS distance d (the source beeps in round 0) — or
// -1 if the wave never arrived.
type AlarmFlood struct {
	// Source marks the initiating node.
	Source bool

	activatedAt int // round the node first heard the wave
	beepRound   int // round in which this node relays (= its distance)
	beeped      bool
}

// Init implements Program.
func (a *AlarmFlood) Init(Env) {
	a.activatedAt = -1
	a.beepRound = -1
	if a.Source {
		a.activatedAt = 0
		a.beepRound = 0
	}
}

// Step implements Program.
func (a *AlarmFlood) Step(round int) Action {
	if a.beepRound == round {
		a.beeped = true
		return Beep
	}
	return Listen
}

// Hear implements Program.
func (a *AlarmFlood) Hear(round int, bit bool) {
	if bit && a.activatedAt == -1 {
		a.activatedAt = round
		a.beepRound = round + 1
	}
}

// Done implements Program.
func (a *AlarmFlood) Done() bool { return a.beeped }

// Output returns the node's relay round (its wave distance), or -1.
func (a *AlarmFlood) Output() any { return a.beepRound }

// NextWake implements QuietProgram: the flood is purely reactive — a node
// acts on its own only at its scheduled relay round (the source's round
// 0); until the wave reaches it, it sleeps indefinitely.
func (a *AlarmFlood) NextWake(round int) int {
	if !a.beeped && a.beepRound > round {
		return a.beepRound
	}
	return NoWake
}

var (
	_ Program      = (*AlarmFlood)(nil)
	_ QuietProgram = (*AlarmFlood)(nil)
)

// RobustFlood is a noise-tolerant wave: time is divided into frames of
// FrameLen rounds; an active node beeps through its two following frames; an
// inactive node activates when it hears at least Threshold beeps within one
// frame. With Threshold ≈ FrameLen/2 sitting between the noise floor
// (ε·FrameLen) and the signal level ((1−ε)·FrameLen), the wave advances one
// hop per frame with high probability, demonstrating how repetition defeats
// noise at an O(FrameLen) overhead — the same principle Algorithm 1 applies
// with codes instead of brute repetition.
//
// Output is the frame index at which the node activated (0 for the
// source), or -1.
type RobustFlood struct {
	// Source marks the initiating node.
	Source bool
	// FrameLen is the rounds per frame (default 24).
	FrameLen int
	// Threshold is the beeps-per-frame activation level (default
	// FrameLen/2).
	Threshold int

	activeFrame  int // frame at which the node activated, -1 if not yet
	heardInFrame int
	doneAt       int // round after which the node is done, -1 = not yet
	round        int
}

// Init implements Program.
func (rf *RobustFlood) Init(Env) {
	if rf.FrameLen <= 0 {
		rf.FrameLen = 24
	}
	if rf.Threshold <= 0 {
		rf.Threshold = rf.FrameLen / 2
	}
	rf.activeFrame = -1
	rf.doneAt = -1
	if rf.Source {
		rf.activeFrame = 0
	}
}

// Step implements Program.
func (rf *RobustFlood) Step(round int) Action {
	rf.round = round
	if rf.beepingAt(round) {
		return Beep
	}
	return Listen
}

// beepingAt reports whether the node transmits in round: active nodes beep
// through the two frames following their activation frame.
func (rf *RobustFlood) beepingAt(round int) bool {
	if rf.activeFrame == -1 {
		return false
	}
	frame := round / rf.FrameLen
	return frame > rf.activeFrame && frame <= rf.activeFrame+2
}

// Hear implements Program.
func (rf *RobustFlood) Hear(round int, bit bool) {
	frame := round / rf.FrameLen
	if rf.activeFrame == -1 {
		if bit {
			rf.heardInFrame++
		}
		if (round+1)%rf.FrameLen == 0 {
			if rf.heardInFrame >= rf.Threshold {
				rf.activeFrame = frame
			}
			rf.heardInFrame = 0
		}
		return
	}
	// Active: finish after our two beeping frames have elapsed.
	if frame >= rf.activeFrame+2 && (round+1)%rf.FrameLen == 0 {
		rf.doneAt = round
	}
}

// Done implements Program.
func (rf *RobustFlood) Done() bool { return rf.doneAt >= 0 && rf.round >= rf.doneAt }

// Output returns the activation frame, or -1.
func (rf *RobustFlood) Output() any { return rf.activeFrame }

var _ Program = (*RobustFlood)(nil)
