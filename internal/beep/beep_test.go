package beep

import (
	"testing"

	"repro/internal/bitstring"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNewNetworkValidation(t *testing.T) {
	g := graph.Path(3)
	for _, eps := range []float64{-0.1, 0.5, 0.9} {
		if _, err := NewNetwork(g, Params{Epsilon: eps}); err == nil {
			t.Errorf("ε=%v accepted", eps)
		}
	}
	if _, err := NewNetwork(g, Params{Epsilon: 0.49}); err != nil {
		t.Errorf("ε=0.49 rejected: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	g := graph.Path(3)
	nw, _ := NewNetwork(g, Params{})
	if _, err := nw.Run([]Program{&Transmitter{}}, 10); err == nil {
		t.Error("wrong program count accepted")
	}
	progs := []Program{&Transmitter{}, &Transmitter{}, &Transmitter{}}
	if _, err := nw.Run(progs, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestCarrierSense verifies the core reception rule: hear 1 iff at least
// one neighbor beeps (or self), with no multiplicity information.
func TestCarrierSense(t *testing.T) {
	// Star: center 0, leaves 1..3. Leaves 1,2 beep at round 0; leaf 3 and
	// center listen.
	g := graph.Star(4)
	nw, _ := NewNetwork(g, Params{})
	pat := func(bits string) *bitstring.BitString {
		s, err := bitstring.Parse(bits)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	progs := []Program{
		&Transmitter{Pattern: pat("00")},
		&Transmitter{Pattern: pat("10")},
		&Transmitter{Pattern: pat("10")},
		&Transmitter{Pattern: pat("00")},
	}
	res, err := nw.Run(progs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Rounds != 2 {
		t.Fatalf("run: allDone=%v rounds=%d", res.AllDone, res.Rounds)
	}
	// Center hears the superimposition of leaves: 1 in round 0 only.
	if got := progs[0].(*Transmitter).Heard().String(); got != "10" {
		t.Errorf("center heard %q, want \"10\"", got)
	}
	// Beeping leaves receive their own beep (paper convention).
	if got := progs[1].(*Transmitter).Heard().String(); got != "10" {
		t.Errorf("leaf 1 heard %q, want \"10\"", got)
	}
	// Leaf 3 hears nothing: its only neighbor (center) never beeps —
	// leaves are not mutually adjacent, carrier sense is local.
	if got := progs[3].(*Transmitter).Heard().String(); got != "00" {
		t.Errorf("leaf 3 heard %q, want \"00\"", got)
	}
}

func TestTotalBeepsAndHistory(t *testing.T) {
	g := graph.Path(2)
	nw, _ := NewNetwork(g, Params{RecordBeeps: true})
	a, _ := bitstring.Parse("110")
	b, _ := bitstring.Parse("010")
	if _, err := nw.Run([]Program{&Transmitter{Pattern: a}, &Transmitter{Pattern: b}}, 10); err != nil {
		t.Fatal(err)
	}
	if nw.TotalBeeps() != 3 {
		t.Errorf("TotalBeeps = %d, want 3", nw.TotalBeeps())
	}
	hist := nw.BeepHistory()
	if len(hist) != 3 {
		t.Fatalf("history has %d rounds, want 3", len(hist))
	}
	// Round 0: only node 0 beeps; round 1: both; round 2: neither.
	if hist[0].String() != "10" || hist[1].String() != "11" || hist[2].String() != "00" {
		t.Errorf("history = %s %s %s", hist[0], hist[1], hist[2])
	}
}

func TestNoiseRateOnIsolatedListener(t *testing.T) {
	// A lone listening node hears silence; under ε-noise it must hear 1 at
	// rate ≈ ε.
	g := graph.MustFromEdges(1, nil)
	const eps, rounds = 0.2, 20000
	nw, _ := NewNetwork(g, Params{Epsilon: eps, Seed: 5})
	tx := &Transmitter{Rounds: rounds}
	if _, err := nw.Run([]Program{tx}, rounds); err != nil {
		t.Fatal(err)
	}
	rate := float64(tx.Heard().Ones()) / rounds
	if rate < eps-0.02 || rate > eps+0.02 {
		t.Errorf("noise rate = %v, want ≈%v", rate, eps)
	}
}

func TestNoisyOwnConvention(t *testing.T) {
	// A node beeping every round receives all-1s when NoisyOwn is false,
	// and ≈(1-ε) ones when true.
	g := graph.MustFromEdges(1, nil)
	const rounds = 5000
	all1 := bitstring.New(rounds).Not()

	nw, _ := NewNetwork(g, Params{Epsilon: 0.3, Seed: 6, NoisyOwn: false})
	tx := &Transmitter{Pattern: all1}
	if _, err := nw.Run([]Program{tx}, rounds); err != nil {
		t.Fatal(err)
	}
	if got := tx.Heard().Ones(); got != rounds {
		t.Errorf("NoisyOwn=false: beeping node heard %d ones, want %d", got, rounds)
	}

	nw2, _ := NewNetwork(g, Params{Epsilon: 0.3, Seed: 6, NoisyOwn: true})
	tx2 := &Transmitter{Pattern: all1.Clone()}
	if _, err := nw2.Run([]Program{tx2}, rounds); err != nil {
		t.Fatal(err)
	}
	rate := float64(tx2.Heard().Ones()) / rounds
	if rate < 0.65 || rate > 0.75 {
		t.Errorf("NoisyOwn=true: own-reception rate = %v, want ≈0.7", rate)
	}
}

func TestRunPhaseValidation(t *testing.T) {
	g := graph.Path(3)
	nw, _ := NewNetwork(g, Params{})
	if _, err := nw.RunPhase(make([]*bitstring.BitString, 2)); err == nil {
		t.Error("wrong pattern count accepted")
	}
	if _, err := nw.RunPhase(make([]*bitstring.BitString, 3)); err == nil {
		t.Error("all-nil patterns accepted")
	}
	pats := []*bitstring.BitString{bitstring.New(4), bitstring.New(5), nil}
	if _, err := nw.RunPhase(pats); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestRunPhaseNoiselessOR(t *testing.T) {
	// Triangle: every node's reception is the OR of all three patterns.
	g := graph.Complete(3)
	nw, _ := NewNetwork(g, Params{})
	p0, _ := bitstring.Parse("1000")
	p1, _ := bitstring.Parse("0100")
	var p2 *bitstring.BitString // silent
	got, err := nw.RunPhase([]*bitstring.BitString{p0, p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if got[v].String() != "1100" {
			t.Errorf("node %d received %s, want 1100", v, got[v])
		}
	}
	if nw.Round() != 4 {
		t.Errorf("Round = %d, want 4", nw.Round())
	}
	if nw.TotalBeeps() != 2 {
		t.Errorf("TotalBeeps = %d, want 2", nw.TotalBeeps())
	}
}

// TestRunPhaseEquivalence is the central engine test: the vectorized batch
// path must agree bit-for-bit with the generic round-by-round path on the
// same seed, across noise levels and NoisyOwn settings.
func TestRunPhaseEquivalence(t *testing.T) {
	const length = 257 // deliberately not word-aligned
	gr := graph.RandomBoundedDegree(24, 5, 0.2, rng.New(31))
	for _, tc := range []struct {
		name string
		p    Params
	}{
		{name: "noiseless", p: Params{Seed: 9}},
		{name: "eps0.1", p: Params{Epsilon: 0.1, Seed: 9}},
		{name: "eps0.3 noisyOwn", p: Params{Epsilon: 0.3, Seed: 9, NoisyOwn: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			patterns := make([]*bitstring.BitString, gr.N())
			patRng := rng.New(77)
			for v := range patterns {
				if v%5 == 0 {
					continue // some silent nodes
				}
				s := bitstring.New(length)
				for i := 0; i < length; i++ {
					if patRng.Bool(0.2) {
						s.Set(i)
					}
				}
				patterns[v] = s
			}

			nwBatch, _ := NewNetwork(gr, tc.p)
			batch, err := nwBatch.RunPhase(patterns)
			if err != nil {
				t.Fatal(err)
			}

			nwGeneric, _ := NewNetwork(gr, tc.p)
			progs := make([]Program, gr.N())
			for v := range progs {
				progs[v] = &Transmitter{Pattern: patterns[v], Rounds: length}
			}
			if _, err := nwGeneric.Run(progs, length); err != nil {
				t.Fatal(err)
			}

			for v := 0; v < gr.N(); v++ {
				if !batch[v].Equal(progs[v].(*Transmitter).Heard()) {
					t.Fatalf("node %d: batch and generic paths disagree", v)
				}
			}
			if nwBatch.TotalBeeps() != nwGeneric.TotalBeeps() {
				t.Errorf("beep counts disagree: %d vs %d", nwBatch.TotalBeeps(), nwGeneric.TotalBeeps())
			}
		})
	}
}

func TestRunPhaseNoiseContinuityAcrossWindows(t *testing.T) {
	// Two consecutive RunPhase windows must equal one double-length window
	// under the same seed (noise is one continuous per-node stream).
	g := graph.Path(4)
	mk := func() []*bitstring.BitString {
		pats := make([]*bitstring.BitString, 4)
		r := rng.New(3)
		for v := range pats {
			s := bitstring.New(200)
			for i := 0; i < 200; i++ {
				if r.Bool(0.3) {
					s.Set(i)
				}
			}
			pats[v] = s
		}
		return pats
	}
	full := mk()
	nwOne, _ := NewNetwork(g, Params{Epsilon: 0.2, Seed: 12})
	whole, err := nwOne.RunPhase(full)
	if err != nil {
		t.Fatal(err)
	}

	nwTwo, _ := NewNetwork(g, Params{Epsilon: 0.2, Seed: 12})
	first := make([]*bitstring.BitString, 4)
	second := make([]*bitstring.BitString, 4)
	for v, p := range mk() {
		a := bitstring.New(100)
		b := bitstring.New(100)
		for i := 0; i < 100; i++ {
			a.SetBool(i, p.Get(i))
			b.SetBool(i, p.Get(i+100))
		}
		first[v], second[v] = a, b
	}
	got1, err := nwTwo.RunPhase(first)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := nwTwo.RunPhase(second)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		for i := 0; i < 100; i++ {
			if whole[v].Get(i) != got1[v].Get(i) || whole[v].Get(i+100) != got2[v].Get(i) {
				t.Fatalf("node %d: windowed and whole runs disagree", v)
			}
		}
	}
}

func TestAlarmFloodDistances(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{name: "path", g: graph.Path(10)},
		{name: "grid", g: graph.Grid(4, 5)},
		{name: "hypercube", g: graph.Hypercube(4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw, _ := NewNetwork(tc.g, Params{})
			progs := make([]Program, tc.g.N())
			for v := range progs {
				progs[v] = &AlarmFlood{Source: v == 0}
			}
			res, err := nw.Run(progs, tc.g.N()+2)
			if err != nil {
				t.Fatal(err)
			}
			dist, _ := tc.g.BFS(0)
			for v := 0; v < tc.g.N(); v++ {
				if got := res.Outputs[v].(int); got != dist[v] {
					t.Errorf("node %d activated at %d, want BFS distance %d", v, got, dist[v])
				}
			}
		})
	}
}

func TestAlarmFloodUnreachable(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]int{{0, 1}})
	nw, _ := NewNetwork(g, Params{})
	progs := []Program{&AlarmFlood{Source: true}, &AlarmFlood{}, &AlarmFlood{}}
	res, err := nw.Run(progs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDone {
		t.Error("disconnected flood reported all done")
	}
	if got := res.Outputs[2].(int); got != -1 {
		t.Errorf("isolated node activated at %d, want -1", got)
	}
}

func TestRobustFloodUnderNoise(t *testing.T) {
	g := graph.Path(6)
	nw, _ := NewNetwork(g, Params{Epsilon: 0.2, Seed: 21})
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = &RobustFlood{Source: v == 0, FrameLen: 32}
	}
	res, err := nw.Run(progs, 32*20)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got := res.Outputs[v].(int)
		if got != v {
			t.Errorf("node %d activated at frame %d, want %d (one hop per frame)", v, got, v)
		}
	}
}

func TestRobustFloodNoFalseActivationWithoutSource(t *testing.T) {
	g := graph.Path(4)
	nw, _ := NewNetwork(g, Params{Epsilon: 0.2, Seed: 22})
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = &RobustFlood{FrameLen: 32} // nobody is a source
	}
	res, err := nw.Run(progs, 32*10)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if got := res.Outputs[v].(int); got != -1 {
			t.Errorf("node %d falsely activated at frame %d under pure noise", v, got)
		}
	}
}

func BenchmarkRunPhase(b *testing.B) {
	g := graph.RandomBoundedDegree(128, 8, 0.1, rng.New(41))
	patterns := make([]*bitstring.BitString, g.N())
	r := rng.New(42)
	for v := range patterns {
		s := bitstring.New(4096)
		for i := 0; i < 4096; i++ {
			if r.Bool(0.1) {
				s.Set(i)
			}
		}
		patterns[v] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, _ := NewNetwork(g, Params{Epsilon: 0.05, Seed: uint64(i)})
		if _, err := nw.RunPhase(patterns); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunPhaseParallelEquivalence: the worker-parallel batch path must be
// bit-identical to the serial path under every noise setting.
func TestRunPhaseParallelEquivalence(t *testing.T) {
	const length = 321
	gr := graph.RandomBoundedDegree(40, 6, 0.15, rng.New(51))
	mkPatterns := func() []*bitstring.BitString {
		patterns := make([]*bitstring.BitString, gr.N())
		patRng := rng.New(88)
		for v := range patterns {
			if v%4 == 0 {
				continue
			}
			s := bitstring.New(length)
			for i := 0; i < length; i++ {
				if patRng.Bool(0.25) {
					s.Set(i)
				}
			}
			patterns[v] = s
		}
		return patterns
	}
	for _, eps := range []float64{0, 0.15} {
		serialNW, _ := NewNetwork(gr, Params{Epsilon: eps, Seed: 13})
		serial, err := serialNW.RunPhase(mkPatterns())
		if err != nil {
			t.Fatal(err)
		}
		parallelNW, _ := NewNetwork(gr, Params{Epsilon: eps, Seed: 13, Workers: 8})
		parallel, err := parallelNW.RunPhase(mkPatterns())
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < gr.N(); v++ {
			if !serial[v].Equal(parallel[v]) {
				t.Fatalf("eps=%v: node %d differs between serial and parallel paths", eps, v)
			}
		}
		if serialNW.TotalBeeps() != parallelNW.TotalBeeps() {
			t.Errorf("eps=%v: beep counts differ", eps)
		}
	}
}

// contender is a randomized beeping program exercising the full engine:
// each round it beeps with probability 1/(deg+1) from its private stream,
// records every received bit, and finishes after a fixed horizon. It is
// the workload shape of Luby-style beeping algorithms.
type contender struct {
	env     Env
	horizon int
	heard   []bool
	done    bool
}

func (c *contender) Init(env Env) { c.env = env }
func (c *contender) Step(round int) Action {
	if c.env.Rng.Bool(1 / float64(c.env.Degree+1)) {
		return Beep
	}
	return Listen
}
func (c *contender) Hear(round int, bit bool) {
	c.heard = append(c.heard, bit)
	if len(c.heard) >= c.horizon {
		c.done = true
	}
}
func (c *contender) Done() bool  { return c.done }
func (c *contender) Output() any { return append([]bool(nil), c.heard...) }

// TestRunSerialParallelIdentical: Run with Workers>1 must be bit-identical
// to the serial run — same outputs, same round count, same energy, and the
// same per-round beep transcript — for every worker/shard setting and
// noise level.
func TestRunSerialParallelIdentical(t *testing.T) {
	gr := graph.RandomBoundedDegree(150, 7, 0.05, rng.New(99))
	const horizon = 40
	runOnce := func(workers, shards int, eps float64) (*Result, []*bitstring.BitString, int64) {
		nw, err := NewNetwork(gr, Params{
			Epsilon:     eps,
			NoisyOwn:    true,
			Seed:        7,
			RecordBeeps: true,
			Workers:     workers,
			Shards:      shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		progs := make([]Program, gr.N())
		for v := range progs {
			progs[v] = &contender{horizon: horizon}
		}
		res, err := nw.Run(progs, horizon+5)
		if err != nil {
			t.Fatal(err)
		}
		return res, nw.BeepHistory(), nw.TotalBeeps()
	}
	for _, eps := range []float64{0, 0.2} {
		wantRes, wantHist, wantBeeps := runOnce(1, 0, eps)
		for _, cfg := range [][2]int{{2, 0}, {4, 1}, {8, 3}, {3, 100}} {
			res, hist, beeps := runOnce(cfg[0], cfg[1], eps)
			if res.Rounds != wantRes.Rounds || res.AllDone != wantRes.AllDone {
				t.Fatalf("eps=%v workers=%v: result shape differs: %+v vs %+v", eps, cfg, res, wantRes)
			}
			if beeps != wantBeeps {
				t.Fatalf("eps=%v workers=%v: TotalBeeps %d vs %d", eps, cfg, beeps, wantBeeps)
			}
			if len(hist) != len(wantHist) {
				t.Fatalf("eps=%v workers=%v: history length %d vs %d", eps, cfg, len(hist), len(wantHist))
			}
			for i := range hist {
				if !hist[i].Equal(wantHist[i]) {
					t.Fatalf("eps=%v workers=%v: beep transcript differs at round %d", eps, cfg, i)
				}
			}
			for v := range res.Outputs {
				got := res.Outputs[v].([]bool)
				want := wantRes.Outputs[v].([]bool)
				if len(got) != len(want) {
					t.Fatalf("eps=%v workers=%v: node %d heard %d bits vs %d", eps, cfg, v, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("eps=%v workers=%v: node %d reception differs at round %d", eps, cfg, v, i)
					}
				}
			}
		}
	}
}

// TestRunBitsetPropagationSemantics pins the carrier-sense semantics the
// bitset path must preserve on a star: center beep reaches all leaves, leaf beep
// reaches only the center, and simultaneous leaf beeps do not sum.
func TestRunBitsetPropagationSemantics(t *testing.T) {
	gr := graph.Star(6)
	nw, err := NewNetwork(gr, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([]*bitstring.BitString, 6)
	// Round 0: leaves 1 and 2 beep. Round 1: center beeps. Round 2: silence.
	for v := 1; v <= 2; v++ {
		patterns[v] = bitstring.New(3)
		patterns[v].Set(0)
	}
	patterns[0] = bitstring.New(3)
	patterns[0].Set(1)
	got, err := nw.RunPhase(patterns)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		wantR0 := v == 0 || v == 1 || v == 2 // center hears leaves; beepers hear themselves
		wantR1 := true                       // center's beep reaches everyone (and itself)
		if got[v].Get(0) != wantR0 || got[v].Get(1) != wantR1 || got[v].Get(2) {
			t.Fatalf("node %d received %v", v, got[v])
		}
	}
}

// TestRunPhaseIntoMatchesRunPhase: the buffer-reusing batch path must
// reproduce RunPhase bit for bit — same receptions, same noise stream
// consumption across consecutive windows — while fully overwriting dirty
// destination buffers.
func TestRunPhaseIntoMatchesRunPhase(t *testing.T) {
	g, err := graph.RandomRegular(18, 4, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	const window, seed = 96, 77
	mkPatterns := func(round int) []*bitstring.BitString {
		r := rng.New(uint64(round + 1))
		patterns := make([]*bitstring.BitString, g.N())
		for v := range patterns {
			if v%3 == round%3 {
				continue // silent this window
			}
			s := bitstring.New(window)
			for i := 0; i < window; i++ {
				if r.Bool(0.2) {
					s.Set(i)
				}
			}
			patterns[v] = s
		}
		return patterns
	}
	nwA, err := NewNetwork(g, Params{Epsilon: 0.1, Seed: seed, NoisyOwn: true})
	if err != nil {
		t.Fatal(err)
	}
	nwB, err := NewNetwork(g, Params{Epsilon: 0.1, Seed: seed, NoisyOwn: true})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]*bitstring.BitString, g.N())
	for v := range dst {
		dst[v] = bitstring.New(window)
		dst[v].SetAll() // dirty: RunPhaseInto must overwrite
	}
	for round := 0; round < 3; round++ {
		patterns := mkPatterns(round)
		want, err := nwA.RunPhase(patterns)
		if err != nil {
			t.Fatal(err)
		}
		if err := nwB.RunPhaseInto(patterns, dst); err != nil {
			t.Fatal(err)
		}
		for v := range dst {
			if !dst[v].Equal(want[v]) {
				t.Fatalf("round %d node %d: RunPhaseInto differs from RunPhase", round, v)
			}
		}
	}
	if nwA.TotalBeeps() != nwB.TotalBeeps() || nwA.Round() != nwB.Round() {
		t.Fatalf("counters diverged: beeps %d vs %d, rounds %d vs %d",
			nwA.TotalBeeps(), nwB.TotalBeeps(), nwA.Round(), nwB.Round())
	}
}

// TestRunPhaseIntoValidation: bad destination sets must be rejected.
func TestRunPhaseIntoValidation(t *testing.T) {
	g := graph.Path(3)
	nw, err := NewNetwork(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	patterns := []*bitstring.BitString{bitstring.New(8), nil, nil}
	if err := nw.RunPhaseInto(patterns, make([]*bitstring.BitString, 2)); err == nil {
		t.Error("wrong dst count accepted")
	}
	dst := []*bitstring.BitString{bitstring.New(8), bitstring.New(7), bitstring.New(8)}
	if err := nw.RunPhaseInto(patterns, dst); err == nil {
		t.Error("wrong dst length accepted")
	}
	dst[1] = nil
	if err := nw.RunPhaseInto(patterns, dst); err == nil {
		t.Error("nil dst buffer accepted")
	}
}
