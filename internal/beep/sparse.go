package beep

// Sparse active-set execution. Wave/broadcast-style protocols keep almost
// every node quiescent almost every round: a node listens in silence
// until the wave front reaches it, acts for a bounded burst, and goes
// quiet again. The dense driver (Run) still pays Θ(n) per round — Step
// and Hear for every node, a full scan of the beep vector. RunSparse
// drives only the active frontier: nodes that will act this round plus
// nodes that hear something, tracked word-granularly with dirty-word
// summary bits so the pool skips quiescent spans entirely. The schedule
// comes from the programs themselves through the QuietProgram contract,
// and the run is observationally identical to Run — same Hear/Step
// sequences per node, same Result, same network counters.

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitstring"
	"repro/internal/engine"
)

// NoWake is the NextWake sentinel for "never, absent external input":
// the node stays quiescent until a beep reaches it.
const NoWake = math.MaxInt

// QuietProgram is a Program that can predict its quiescent stretches, the
// contract that admits it to RunSparse.
//
// NextWake(round) returns the earliest round > round in which the program
// may act on its own: beep, change state, or become done — assuming it
// hears only silence in between. NoWake means it never will (it is purely
// reactive until a beep arrives). The contract for every skipped round r
// in between: Step(r) would return Listen, Hear(r, false) would change no
// observable state, and Done() stays constant. The network re-consults
// NextWake after every round it drives the node (a heard beep may pull
// the wake-up earlier), and may conservatively drive the node in any
// round — extra drives are always safe, per the same contract.
//
// NextWake(-1) is the initial query, before round 0.
type QuietProgram interface {
	Program
	NextWake(round int) int
}

// sparseState is the reusable frontier state of one RunSparse call.
// Summaries are second-level bitsets: bit w of summary word w>>6 marks
// the bitstring word w as dirty.
type sparseState struct {
	active, next   *bitstring.BitString // driven-by-schedule, this / next round
	beeped, heard  *bitstring.BitString
	done           *bitstring.BitString
	activeSum      []uint64 // dirty words of active (and so of beeped)
	nextSum        []uint64
	hearSum        []uint64 // dirty words of heard
	buckets        map[int][]int32 // wake round -> sleeping nodes
	doneCount      int
	peak           int // peak driven-node count (frontier occupancy)
}

// activate marks v active in b and its word dirty in sum.
func activate(b *bitstring.BitString, sum []uint64, v int) {
	wi := v >> 6
	sum[wi>>6] |= 1 << (uint(wi) & 63)
	b.Set(v)
}

// sumAnyRange reports whether any summary bit covering bitstring words
// [loW, hiW) is set in either summary (b may be nil).
func sumAnyRange(a, b []uint64, loW, hiW int) bool {
	for wi := loW; wi < hiW; {
		si := wi >> 6
		mask := ^uint64(0) << (uint(wi) & 63)
		if rem := hiW - si*64; rem < 64 {
			mask &= ^uint64(0) >> (64 - uint(rem))
		}
		s := a[si]
		if b != nil {
			s |= b[si]
		}
		if s&mask != 0 {
			return true
		}
		wi = (si + 1) * 64
	}
	return false
}

// RunSparse is Run for QuietPrograms on quiet channels: identical
// observable behavior — the same Step/Hear sequence per node, the same
// Result, round counter, and beep totals — but per-round work
// proportional to the active frontier, not to n. Rounds in which every
// node sleeps are fast-forwarded in O(1).
//
// The sparse schedule is only sound when silence is exactly the absence
// of neighbor beeps, so RunSparse falls back to the dense driver when the
// channel is noisy (a flipped bit can wake any node any round), when
// Params.RecordBeeps demands a per-round transcript, or when any program
// does not implement QuietProgram. Callers never need to pick a path by
// hand: RunSparse is always correct, and fast when the model admits it.
func (nw *Network) RunSparse(progs []Program, maxRounds int) (*Result, error) {
	quiet := make([]QuietProgram, len(progs))
	for v, p := range progs {
		q, ok := p.(QuietProgram)
		if !ok {
			quiet = nil
			break
		}
		quiet[v] = q
	}
	if nw.noisy || nw.params.RecordBeeps || quiet == nil {
		return nw.Run(progs, maxRounds)
	}

	n := nw.g.N()
	if len(progs) != n {
		return nil, fmt.Errorf("beep: %d programs for %d nodes", len(progs), n)
	}
	if maxRounds < 0 {
		return nil, fmt.Errorf("beep: negative round budget %d", maxRounds)
	}
	for v, p := range progs {
		p.Init(nw.NodeEnv(v))
	}

	words := (n + 63) / 64
	sumLen := (words + 63) / 64
	st := &sparseState{
		active:    bitstring.New(n),
		next:      bitstring.New(n),
		beeped:    bitstring.New(n),
		heard:     bitstring.New(n),
		done:      bitstring.New(n),
		activeSum: make([]uint64, sumLen),
		nextSum:   make([]uint64, sumLen),
		hearSum:   make([]uint64, sumLen),
		buckets:   make(map[int][]int32),
	}

	// Seed the schedule: done nodes leave the run, the rest declare their
	// first wake-up.
	for v := 0; v < n; v++ {
		if progs[v].Done() {
			st.done.Set(v)
			st.doneCount++
			continue
		}
		switch w := quiet[v].NextWake(-1); {
		case w <= 0:
			activate(st.active, st.activeSum, v)
		case w != NoWake && w < maxRounds:
			st.buckets[w] = append(st.buckets[w], int32(v))
		}
	}

	spans := nw.pool.Spans(n)
	beepParts := make([]int64, len(spans))
	rounds := maxRounds
	allDone := false
	for r := 0; r < maxRounds; r++ {
		if st.doneCount == n {
			rounds, allDone = r, true
			break
		}
		// Wake the sleepers scheduled for this round.
		if wake := st.buckets[r]; wake != nil {
			for _, v := range wake {
				if !st.done.Get(int(v)) {
					activate(st.active, st.activeSum, int(v))
				}
			}
			delete(st.buckets, r)
		}
		// Nobody acts: fast-forward to the next scheduled wake-up. The
		// skipped rounds are exactly rounds the dense driver would spend
		// on silent no-ops — noiseless silence consumes no randomness and
		// changes no state — so only the counters advance.
		if !anySet(st.activeSum) {
			next := maxRounds
			for k := range st.buckets {
				if k < next {
					next = k
				}
			}
			skip := next - r
			nw.round += skip
			nw.m.rounds.Add(int64(skip))
			r = next - 1
			continue
		}

		// Transmit: Step every active node, span-parallel over the dirty
		// words only. beeped ⊆ active, so activeSum covers it too.
		aw, bw := st.active.Words(), st.beeped.Words()
		hw, dw := st.heard.Words(), st.done.Words()
		localRound := r
		nw.pool.DoMasked(n,
			func(lo, hi int) bool { return sumAnyRange(st.activeSum, nil, lo>>6, (hi+63)>>6) },
			func(s engine.Span) {
				var count int64
				for wi := s.Lo >> 6; wi < (s.Hi+63)>>6; wi++ {
					w := aw[wi]
					for w != 0 {
						v := wi<<6 + bits.TrailingZeros64(w)
						w &= w - 1
						p := progs[v]
						if p.Done() {
							continue
						}
						if p.Step(localRound) == Beep {
							bw[wi] |= 1 << (uint(v) & 63)
							count++
						}
					}
				}
				beepParts[s.Index] = count
			})
		var beeps int64
		for i, c := range beepParts {
			beeps += c
			beepParts[i] = 0
		}
		nw.totalBeeps += beeps
		nw.m.beeps.Add(beeps)

		// Propagate: sender-centric with the frontier update fused in
		// when beeping is sparse; receiver-centric full scan (marking the
		// whole window dirty) when dense. Identical bits either way.
		if beeps > 0 {
			if nw.g.DenseBeepers(st.beeped) {
				if nw.pool.Parallel() {
					nw.pool.Do(n, func(s engine.Span) {
						nw.g.NeighborhoodOrRange(st.beeped, st.heard, s.Lo, s.Hi)
					})
				} else {
					nw.g.NeighborhoodOrRange(st.beeped, st.heard, 0, n)
				}
				markAll(st.hearSum, words)
			} else {
				nw.g.NeighborhoodOrFrontier(st.beeped, st.heard, st.hearSum)
			}
		}

		// Deliver: every driven node — active by schedule or reached by a
		// beep — hears its bit. Words outside both summaries hold no
		// driven nodes by construction.
		nw.pool.DoMasked(n,
			func(lo, hi int) bool {
				return sumAnyRange(st.activeSum, st.hearSum, lo>>6, (hi+63)>>6)
			},
			func(s engine.Span) {
				for wi := s.Lo >> 6; wi < (s.Hi+63)>>6; wi++ {
					w := (aw[wi] | hw[wi]) &^ dw[wi]
					for w != 0 {
						pos := bits.TrailingZeros64(w)
						w &= w - 1
						v := wi<<6 + pos
						p := progs[v]
						if p.Done() {
							continue
						}
						p.Hear(localRound, (hw[wi]|bw[wi])>>uint(pos)&1 != 0)
					}
				}
			})

		// Serial post-pass over the dirty words: record done transitions,
		// re-consult every driven node's schedule, measure the frontier.
		driven := 0
		for si := 0; si < sumLen; si++ {
			s := st.activeSum[si] | st.hearSum[si]
			for s != 0 {
				wi := si<<6 + bits.TrailingZeros64(s)
				s &= s - 1
				w := (aw[wi] | hw[wi]) &^ dw[wi]
				driven += bits.OnesCount64(w)
				for w != 0 {
					v := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					p := progs[v]
					if p.Done() {
						st.done.Set(v)
						st.doneCount++
						continue
					}
					switch wk := quiet[v].NextWake(r); {
					case wk <= r+1:
						activate(st.next, st.nextSum, v)
					case wk != NoWake && wk < maxRounds:
						st.buckets[wk] = append(st.buckets[wk], int32(v))
					}
				}
				// Clear the dirty words in place; the summaries are
				// zeroed wholesale below.
				aw[wi], bw[wi], hw[wi] = 0, 0, 0
			}
			st.activeSum[si], st.hearSum[si] = 0, 0
		}
		if driven > st.peak {
			st.peak = driven
		}
		st.active, st.next = st.next, st.active
		st.activeSum, st.nextSum = st.nextSum, st.activeSum

		nw.round++
		nw.m.rounds.Inc()
	}
	if !allDone {
		allDone = st.doneCount == n
	}
	nw.m.frontier.Set(int64(st.peak))
	outputs := make([]any, n)
	for v, p := range progs {
		outputs[v] = p.Output()
	}
	return &Result{Rounds: rounds, AllDone: allDone, Outputs: outputs}, nil
}

// anySet reports whether any word of a summary is nonzero.
func anySet(sum []uint64) bool {
	for _, w := range sum {
		if w != 0 {
			return true
		}
	}
	return false
}

// markAll sets the summary bits for bitstring words [0, words).
func markAll(sum []uint64, words int) {
	for wi := 0; wi < words; wi += 64 {
		si := wi >> 6
		if words-wi >= 64 {
			sum[si] = ^uint64(0)
		} else {
			sum[si] |= ^uint64(0) >> (64 - uint(words-wi))
		}
	}
}
