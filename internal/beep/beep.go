// Package beep implements the beeping network models of §1.1: synchronous
// rounds in which each node either beeps or listens, listeners hear a beep
// iff at least one neighbor beeped, and — in the noisy model of Ashkenazi,
// Gelles & Leshem — every received bit is flipped independently with
// probability ε ∈ [0, ½).
//
// Reception follows the paper's §1.5 convention: a node "receives 1" in a
// round if it beeps itself or hears a beep, and 0 otherwise; in the noisy
// model this bit is flipped with probability ε (Params.NoisyOwn controls
// whether a node's own beep is also subject to noise, the paper's
// simplifying assumption — footnote 2 notes real devices keep their own
// transmissions noise-free, which "can only help").
//
// Two execution paths are provided: a generic round-by-round driver for
// arbitrary Programs (Run), and a word-parallel batch path for protocols
// whose beep pattern over a window is fixed up front (RunPhase) — the shape
// of Algorithm 1's two phases. The two paths are observationally
// equivalent; TestRunPhaseEquivalence asserts bit-for-bit agreement.
package beep

import (
	"fmt"
	"sync"

	"repro/internal/bitstring"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Action is a node's choice for a round.
type Action uint8

const (
	// Listen keeps the radio in carrier-sense mode.
	Listen Action = iota
	// Beep emits a unary pulse of energy.
	Beep
)

// Env is the static information a node program starts with: its identity,
// the global parameters all nodes are assumed to know (n and Δ, as in the
// paper), and a private randomness stream.
type Env struct {
	ID        int
	N         int
	Degree    int
	MaxDegree int
	Rng       *rng.Stream
}

// Program is a per-node beeping protocol driven by the network.
// Each round, Step is called for the node's action, then Hear delivers the
// received bit. Once Done reports true the node ceases participation: it
// neither beeps nor hears.
type Program interface {
	Init(env Env)
	Step(round int) Action
	Hear(round int, bit bool)
	Done() bool
	Output() any
}

// Params configures a beeping network.
type Params struct {
	// Epsilon is the noise probability ε ∈ [0, ½). Zero selects the
	// noiseless model.
	Epsilon float64
	// NoisyOwn applies channel noise to a beeping node's own reception,
	// matching the paper's analysis convention. When false, a node that
	// beeps receives a clean 1.
	NoisyOwn bool
	// Seed derives all channel randomness.
	Seed uint64
	// RecordBeeps retains a per-round bitstring of which nodes beeped,
	// retrievable via Network.BeepHistory (used by the lower-bound
	// transcript experiments).
	RecordBeeps bool
	// Workers sets the number of goroutines RunPhase uses for the
	// per-node OR/noise computation (0 or 1 = serial). Results are
	// bit-identical to the serial path: per-node noise streams are
	// independent and each worker writes only its own nodes.
	Workers int
}

// Network is a beeping network over a fixed graph. It maintains a global
// round counter across Run and RunPhase calls so that channel noise is a
// single reproducible stream per node regardless of how execution is
// batched.
type Network struct {
	g      *graph.Graph
	params Params

	round      int
	totalBeeps int64
	noise      []*rng.FlipSampler
	history    []*bitstring.BitString
}

// NewNetwork creates a beeping network on g.
func NewNetwork(g *graph.Graph, params Params) (*Network, error) {
	if params.Epsilon < 0 || params.Epsilon >= 0.5 {
		return nil, fmt.Errorf("beep: ε = %v outside [0, 0.5)", params.Epsilon)
	}
	return &Network{
		g:      g,
		params: params,
		noise:  make([]*rng.FlipSampler, g.N()),
	}, nil
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Round returns the absolute number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// TotalBeeps returns the total energy spent (number of beeps) so far.
func (nw *Network) TotalBeeps() int64 { return nw.totalBeeps }

// BeepHistory returns the recorded per-round beep patterns (nil unless
// Params.RecordBeeps).
func (nw *Network) BeepHistory() []*bitstring.BitString { return nw.history }

// NodeEnv builds the Env for node v with a private stream derived from the
// network seed.
func (nw *Network) NodeEnv(v int) Env {
	return Env{
		ID:        v,
		N:         nw.g.N(),
		Degree:    nw.g.Degree(v),
		MaxDegree: nw.g.MaxDegree(),
		Rng:       rng.New(nw.params.Seed).Split(0x6e6f6465, uint64(v)), // "node"
	}
}

// Result summarizes a Run.
type Result struct {
	// Rounds is the number of rounds consumed by this Run call.
	Rounds int
	// AllDone reports whether every program finished before the budget.
	AllDone bool
	// Outputs holds each program's Output() at the end of the run.
	Outputs []any
}

// Run initializes the programs and drives them round-by-round until all are
// done or maxRounds rounds elapse. Round numbers passed to programs are
// local to this call, starting at 0.
func (nw *Network) Run(progs []Program, maxRounds int) (*Result, error) {
	if len(progs) != nw.g.N() {
		return nil, fmt.Errorf("beep: %d programs for %d nodes", len(progs), nw.g.N())
	}
	if maxRounds < 0 {
		return nil, fmt.Errorf("beep: negative round budget %d", maxRounds)
	}
	for v, p := range progs {
		p.Init(nw.NodeEnv(v))
	}
	n := nw.g.N()
	beeped := bitstring.New(n)
	localRound := 0
	for ; localRound < maxRounds; localRound++ {
		if allDone(progs) {
			break
		}
		beeped.Reset()
		for v, p := range progs {
			if p.Done() {
				continue
			}
			if p.Step(localRound) == Beep {
				beeped.Set(v)
				nw.totalBeeps++
			}
		}
		if nw.params.RecordBeeps {
			nw.history = append(nw.history, beeped.Clone())
		}
		for v, p := range progs {
			if p.Done() {
				continue
			}
			bit := beeped.Get(v)
			if !bit {
				for _, u := range nw.g.Neighbors(v) {
					if beeped.Get(u) {
						bit = true
						break
					}
				}
			}
			if nw.flipAt(v, nw.round, beeped.Get(v)) {
				bit = !bit
			}
			p.Hear(localRound, bit)
		}
		nw.round++
	}
	outputs := make([]any, n)
	for v, p := range progs {
		outputs[v] = p.Output()
	}
	return &Result{Rounds: localRound, AllDone: allDone(progs), Outputs: outputs}, nil
}

// RunPhase executes a fixed transmission window: node v beeps exactly at
// the 1-positions of patterns[v] (nil means silent throughout) and listens
// otherwise. It returns, for each node, the bits received over the window
// under the model's reception and noise rules. All non-nil patterns must
// share one length.
//
// RunPhase is semantically identical to Run with per-pattern transmit
// programs but runs word-parallel: the OR over the inclusive neighborhood
// is computed 64 rounds at a time, and noise is applied by enumerating
// flip positions with a geometric sampler.
func (nw *Network) RunPhase(patterns []*bitstring.BitString) ([]*bitstring.BitString, error) {
	n := nw.g.N()
	if len(patterns) != n {
		return nil, fmt.Errorf("beep: %d patterns for %d nodes", len(patterns), n)
	}
	length := -1
	for v, p := range patterns {
		if p == nil {
			continue
		}
		if length == -1 {
			length = p.Len()
		} else if p.Len() != length {
			return nil, fmt.Errorf("beep: pattern %d has length %d, want %d", v, p.Len(), length)
		}
	}
	if length == -1 {
		return nil, fmt.Errorf("beep: all patterns nil")
	}

	for v := 0; v < n; v++ {
		if patterns[v] != nil {
			nw.totalBeeps += int64(patterns[v].Ones())
		}
	}
	received := make([]*bitstring.BitString, n)
	if workers := nw.params.Workers; workers > 1 {
		// Pre-create noise samplers serially (lazy creation would race).
		if nw.params.Epsilon > 0 {
			for v := 0; v < n; v++ {
				nw.noiseSampler(v)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := w; v < n; v += workers {
					received[v] = nw.receiveOne(v, patterns, length)
				}
			}()
		}
		wg.Wait()
	} else {
		for v := 0; v < n; v++ {
			received[v] = nw.receiveOne(v, patterns, length)
		}
	}
	if nw.params.RecordBeeps {
		for t := 0; t < length; t++ {
			col := bitstring.New(n)
			for v := 0; v < n; v++ {
				if patterns[v] != nil && patterns[v].Get(t) {
					col.Set(v)
				}
			}
			nw.history = append(nw.history, col)
		}
	}
	nw.round += length
	return received, nil
}

// receiveOne computes node v's reception for one batch window: the OR
// over its inclusive neighborhood, then its private noise stream. It
// touches only v's sampler and output slot, so distinct nodes may run
// concurrently.
func (nw *Network) receiveOne(v int, patterns []*bitstring.BitString, length int) *bitstring.BitString {
	acc := bitstring.New(length)
	if patterns[v] != nil {
		acc.OrInPlace(patterns[v])
	}
	for _, u := range nw.g.Neighbors(v) {
		if patterns[u] != nil {
			acc.OrInPlace(patterns[u])
		}
	}
	if nw.params.Epsilon > 0 {
		fs := nw.noiseSampler(v)
		for {
			abs, ok := fs.Next(nw.round + length)
			if !ok {
				break
			}
			if abs < nw.round {
				continue // positions consumed by earlier windows
			}
			pos := abs - nw.round
			beepedSelf := patterns[v] != nil && patterns[v].Get(pos)
			if beepedSelf && !nw.params.NoisyOwn {
				continue
			}
			acc.Flip(pos)
		}
	}
	return acc
}

// flipAt reports whether node v's reception at absolute round t is flipped
// by noise, honoring NoisyOwn for beeping nodes. It must consume sampler
// positions identically to RunPhase so the two paths agree.
func (nw *Network) flipAt(v, t int, beepedSelf bool) bool {
	if nw.params.Epsilon <= 0 {
		return false
	}
	fs := nw.noiseSampler(v)
	for fs.Peek() < t {
		fs.Skip()
	}
	if fs.Peek() != t {
		return false
	}
	fs.Skip()
	return !beepedSelf || nw.params.NoisyOwn
}

func (nw *Network) noiseSampler(v int) *rng.FlipSampler {
	if nw.noise[v] == nil {
		stream := rng.New(nw.params.Seed).Split(0x6e6f697365, uint64(v)) // "noise"
		nw.noise[v] = rng.NewFlipSampler(stream, nw.params.Epsilon)
	}
	return nw.noise[v]
}

func allDone(progs []Program) bool {
	for _, p := range progs {
		if !p.Done() {
			return false
		}
	}
	return true
}
