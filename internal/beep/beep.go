// Package beep implements the beeping network models of §1.1: synchronous
// rounds in which each node either beeps or listens, listeners hear a beep
// iff at least one neighbor beeped, and — in the noisy model of Ashkenazi,
// Gelles & Leshem — every received bit is flipped independently with
// probability ε ∈ [0, ½). The channel is pluggable (Params.Noise): any
// internal/noise model — asymmetric, erasure, Gilbert–Elliott burst
// noise — can replace the default symmetric{ε} channel, through the same
// two execution paths and with the same determinism guarantees.
//
// Reception follows the paper's §1.5 convention: a node "receives 1" in a
// round if it beeps itself or hears a beep, and 0 otherwise; in the noisy
// model this bit is flipped with probability ε (Params.NoisyOwn controls
// whether a node's own beep is also subject to noise, the paper's
// simplifying assumption — footnote 2 notes real devices keep their own
// transmissions noise-free, which "can only help").
//
// Two execution paths are provided: a generic round-by-round driver for
// arbitrary Programs (Run), and a word-parallel batch path for protocols
// whose beep pattern over a window is fixed up front (RunPhase) — the shape
// of Algorithm 1's two phases. The two paths are observationally
// equivalent; TestRunPhaseEquivalence asserts bit-for-bit agreement.
//
// Both paths execute their per-node phases on the deterministic sharded
// worker pool of internal/engine: Run propagates each round's beeps
// through the graph's CSR rows as one bitset OR (graph.NeighborhoodOr)
// rather than per-listener neighbor scans, and RunPhase computes each
// node's windowed reception word-parallel over 64 rounds at a time.
// Because every node's reception depends only on the previous beep vector
// and its private noise stream, runs are bit-identical for every
// Workers/Shards setting (TestRunSerialParallelIdentical).
package beep

import (
	"fmt"

	"repro/internal/bitstring"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Action is a node's choice for a round.
type Action uint8

const (
	// Listen keeps the radio in carrier-sense mode.
	Listen Action = iota
	// Beep emits a unary pulse of energy.
	Beep
)

// Env is the static information a node program starts with: its identity,
// the global parameters all nodes are assumed to know (n and Δ, as in the
// paper), and a private randomness stream.
type Env struct {
	ID        int
	N         int
	Degree    int
	MaxDegree int
	Rng       *rng.Stream
}

// Program is a per-node beeping protocol driven by the network.
// Each round, Step is called for the node's action, then Hear delivers the
// received bit. Once Done reports true the node ceases participation: it
// neither beeps nor hears.
//
// When Params.Workers > 1, callbacks for distinct nodes run concurrently
// within a phase (each node's own calls stay strictly ordered). Programs
// must therefore confine mutable state to the node itself and draw
// randomness only from Env.Rng — no sharing across programs.
type Program interface {
	Init(env Env)
	Step(round int) Action
	Hear(round int, bit bool)
	Done() bool
	Output() any
}

// Params configures a beeping network.
type Params struct {
	// Epsilon is the noise probability ε ∈ [0, ½). Zero selects the
	// noiseless model. It parameterizes the default symmetric channel;
	// leave it 0 when Noise is set.
	Epsilon float64
	// Noise selects a non-default channel-noise model (internal/noise).
	// Nil means the symmetric{Epsilon} channel, bit-for-bit the historic
	// behavior. A non-nil model owns the channel: Epsilon must be 0.
	Noise noise.Model
	// NoisyOwn applies channel noise to a beeping node's own reception,
	// matching the paper's analysis convention. When false, a node that
	// beeps receives a clean 1.
	NoisyOwn bool
	// Seed derives all channel randomness.
	Seed uint64
	// RecordBeeps retains a per-round bitstring of which nodes beeped,
	// retrievable via Network.BeepHistory (used by the lower-bound
	// transcript experiments).
	RecordBeeps bool
	// Workers sets the number of goroutines Run and RunPhase use for the
	// per-node step/receive phases (0 or 1 = serial,
	// engine.AutoWorkers = GOMAXPROCS). Results are bit-identical to the
	// serial path: per-node noise streams are independent and shards are
	// word-aligned, so each worker writes only its own nodes.
	Workers int
	// Shards overrides the pool's shard count (0 = derived from Workers).
	// Like Workers it never changes results, only load balancing.
	Shards int
	// Metrics, when non-nil, receives channel telemetry (rounds, windows,
	// energy, per-model applied noise flips, pool dispatch stats). Per
	// the determinism contract instrumentation is observation-only: it
	// consumes no randomness and branches on no channel data, so runs
	// are byte-identical with Metrics set or nil.
	Metrics *obs.Registry
}

// netMetrics are the network's resolved telemetry handles; the zero
// value (all nil) is the disabled state and every update no-ops.
type netMetrics struct {
	rounds   *obs.Counter // channel rounds advanced
	windows  *obs.Counter // batch windows executed (RunPhaseInto calls)
	beeps    *obs.Counter // energy: beeps transmitted
	flips    *obs.Counter // applied noise flips, named per model
	spent    *obs.Counter // adversarial budget spent (noise.adversary.spent)
	windowT  *obs.Timer   // wall time per batch window
	frontier *obs.Gauge   // peak driven-node count per RunSparse call
}

// Network is a beeping network over a fixed graph. It maintains a global
// round counter across Run and RunPhase calls so that channel noise is a
// single reproducible stream per node regardless of how execution is
// batched.
type Network struct {
	g      *graph.Graph
	params Params
	pool   *engine.Pool

	// model is the resolved channel (params.Noise, or symmetric{ε});
	// noisy caches whether it can flip any bit at all.
	model noise.Model
	noisy bool

	round      int
	totalBeeps int64
	noise      []noise.Sampler
	history    []*bitstring.BitString
	m          netMetrics

	// Reusable batch-phase state: the span callback is built once and
	// reads the current window through these fields, so a RunPhaseInto
	// call allocates nothing (Network is not safe for concurrent use —
	// the round counter already forbids that).
	phasePatterns []*bitstring.BitString
	phaseDst      []*bitstring.BitString
	phaseWin      int
	phaseFn       func(engine.Span)

	// Sparse-sender gating for batch windows: when few nodes transmit,
	// phaseHearMask marks the vertices that can possibly hear anything
	// this window (the senders and their neighborhoods); receiveInto
	// short-circuits every other node's row scan. Nil when the window is
	// dense enough that the scan is cheaper than the mask. phaseSenders
	// and phaseHear are the reusable scratch the mask is built from.
	phaseSenders  *bitstring.BitString
	phaseHear     *bitstring.BitString
	phaseHearMask *bitstring.BitString
}

// NewNetwork creates a beeping network on g.
func NewNetwork(g *graph.Graph, params Params) (*Network, error) {
	if params.Epsilon < 0 || params.Epsilon >= 0.5 {
		return nil, fmt.Errorf("beep: ε = %v outside [0, 0.5)", params.Epsilon)
	}
	model := params.Noise
	if model == nil {
		model = noise.Symmetric{Eps: params.Epsilon}
	} else {
		if params.Epsilon != 0 {
			return nil, fmt.Errorf("beep: both Epsilon = %v and Noise = %s set; the model owns the channel, leave ε 0", params.Epsilon, model.Spec())
		}
		if err := model.Validate(); err != nil {
			return nil, fmt.Errorf("beep: %w", err)
		}
	}
	// Topology-aware models (the adversary's hub strategy) see the public
	// graph structure. Binding is deterministic and identical on every
	// execution path — the sliced runners bind the same way — so a bound
	// model's receptions stay a pure function of (model spec, seed, node).
	if tb, ok := model.(noise.TopologyBinder); ok {
		deg := make([]int, g.N())
		for v := range deg {
			deg[v] = g.Degree(v)
		}
		model = tb.BindTopology(deg, g.MaxDegree())
	}
	nw := &Network{
		g:      g,
		params: params,
		pool:   engine.NewPool(params.Workers, params.Shards),
		model:  model,
		noisy:  !noise.Noiseless(model),
		noise:  make([]noise.Sampler, g.N()),
	}
	if reg := params.Metrics; reg != nil {
		nw.m = netMetrics{
			rounds:   reg.Counter("beep.rounds"),
			windows:  reg.Counter("beep.windows"),
			beeps:    reg.Counter("beep.beeps"),
			flips:    reg.Counter("noise.flips." + model.Name()),
			windowT:  reg.Timer("beep.window_nanos"),
			frontier: reg.Gauge("beep.frontier.peak"),
		}
		if model.Name() == noise.NameAdversary {
			// Budget accounting: adversarial corruptions are flips the
			// budget paid for, surfaced separately from the per-model
			// flip counter.
			nw.m.spent = reg.Counter("noise.adversary.spent")
		}
		nw.pool.Instrument(&engine.PoolMetrics{
			Do:    reg.Counter("pool.do"),
			Spans: reg.Counter("pool.spans"),
			Wait:  reg.Timer("pool.do_wait_nanos"),
		})
	}
	return nw, nil
}

// Graph returns the underlying graph.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Pool returns the network's execution pool (for callers that stage their
// own per-node phases, such as the Algorithm 1 runner's decode step).
func (nw *Network) Pool() *engine.Pool { return nw.pool }

// Round returns the absolute number of rounds executed so far.
func (nw *Network) Round() int { return nw.round }

// TotalBeeps returns the total energy spent (number of beeps) so far.
func (nw *Network) TotalBeeps() int64 { return nw.totalBeeps }

// BeepHistory returns the recorded per-round beep patterns (nil unless
// Params.RecordBeeps).
func (nw *Network) BeepHistory() []*bitstring.BitString { return nw.history }

// NodeEnv builds the Env for node v with a private stream derived from the
// network seed.
func (nw *Network) NodeEnv(v int) Env {
	return Env{
		ID:        v,
		N:         nw.g.N(),
		Degree:    nw.g.Degree(v),
		MaxDegree: nw.g.MaxDegree(),
		Rng:       rng.New(nw.params.Seed).Split(0x6e6f6465, uint64(v)), // "node"
	}
}

// Result summarizes a Run.
type Result struct {
	// Rounds is the number of rounds consumed by this Run call.
	Rounds int
	// AllDone reports whether every program finished before the budget.
	AllDone bool
	// Outputs holds each program's Output() at the end of the run.
	Outputs []any
}

// Run initializes the programs and drives them round-by-round until all are
// done or maxRounds rounds elapse. Round numbers passed to programs are
// local to this call, starting at 0.
func (nw *Network) Run(progs []Program, maxRounds int) (*Result, error) {
	n := nw.g.N()
	if len(progs) != n {
		return nil, fmt.Errorf("beep: %d programs for %d nodes", len(progs), n)
	}
	if maxRounds < 0 {
		return nil, fmt.Errorf("beep: negative round budget %d", maxRounds)
	}
	for v, p := range progs {
		p.Init(nw.NodeEnv(v))
	}
	if nw.noisy {
		// Materialize samplers before the parallel phases; creation is a
		// pure function of (model, seed, v), so the order is immaterial.
		for v := 0; v < n; v++ {
			nw.noiseSampler(v)
		}
	}
	beeped := bitstring.New(n)
	heard := bitstring.New(n)
	done := func(v int) bool { return progs[v].Done() }
	rounds, allDone, _ := nw.pool.Loop(n, maxRounds, done, func(localRound int) error {
		beeped.Reset()
		heard.Reset()
		// Transmit phase: each shard writes only its own word-aligned
		// region of the beep vector.
		beeps := nw.pool.Sum(n, func(s engine.Span) int64 {
			var beeps int64
			for v := s.Lo; v < s.Hi; v++ {
				p := progs[v]
				if p.Done() {
					continue
				}
				if p.Step(localRound) == Beep {
					beeped.Set(v)
					beeps++
				}
			}
			return beeps
		})
		nw.totalBeeps += beeps
		nw.m.beeps.Add(beeps)
		if nw.params.RecordBeeps {
			nw.history = append(nw.history, beeped.Clone())
		}
		// Receive phase: propagate the beep vector through the CSR rows,
		// then deliver each node's noisy reception. Dense rounds on a
		// parallel pool fuse per-span receiver-centric propagation with
		// delivery; otherwise the propagation runs up front (when
		// beeping is sparse the sender-centric pass touches only the
		// beepers' rows, far less work than any per-listener scan) and
		// only delivery is fanned out. All variants OR the same bits,
		// so results are identical.
		if nw.pool.Parallel() && nw.g.DenseBeepers(beeped) {
			nw.pool.Do(n, func(s engine.Span) {
				nw.g.NeighborhoodOrRange(beeped, heard, s.Lo, s.Hi)
				nw.hearRange(progs, beeped, heard, localRound, s.Lo, s.Hi)
			})
		} else {
			nw.g.NeighborhoodOr(beeped, heard)
			nw.pool.Do(n, func(s engine.Span) {
				nw.hearRange(progs, beeped, heard, localRound, s.Lo, s.Hi)
			})
		}
		nw.round++
		nw.m.rounds.Inc()
		return nil
	})
	outputs := make([]any, n)
	for v, p := range progs {
		outputs[v] = p.Output()
	}
	return &Result{Rounds: rounds, AllDone: allDone, Outputs: outputs}, nil
}

// hearRange delivers round localRound's reception to nodes [lo, hi): the
// propagated neighborhood bit, OR'd with the node's own beep, through the
// node's private noise stream. It reads the bitsets word-at-a-time — the
// reception of node v is bit v&63 of (heard|beeped)'s word v>>6.
func (nw *Network) hearRange(progs []Program, beeped, heard *bitstring.BitString, localRound, lo, hi int) {
	hw, bw := heard.Words(), beeped.Words()
	for v := lo; v < hi; v++ {
		p := progs[v]
		if p.Done() {
			continue
		}
		mask := uint64(1) << (uint(v) & 63)
		bit := (hw[v>>6]|bw[v>>6])&mask != 0
		if nw.noisy {
			protected := bw[v>>6]&mask != 0 && !nw.params.NoisyOwn
			if nw.noiseSampler(v).FlipAt(nw.round, bit, protected) {
				bit = !bit
			}
		}
		p.Hear(localRound, bit)
	}
}

// RunPhase executes a fixed transmission window: node v beeps exactly at
// the 1-positions of patterns[v] (nil means silent throughout) and listens
// otherwise. It returns, for each node, the bits received over the window
// under the model's reception and noise rules. All non-nil patterns must
// share one length.
//
// RunPhase is semantically identical to Run with per-pattern transmit
// programs but runs word-parallel: the OR over the inclusive neighborhood
// is computed 64 rounds at a time over the CSR rows, and noise is applied
// by enumerating flip positions with a geometric sampler. The per-node
// receptions are computed on the network's sharded pool.
func (nw *Network) RunPhase(patterns []*bitstring.BitString) ([]*bitstring.BitString, error) {
	length, err := nw.phaseLength(patterns)
	if err != nil {
		return nil, err
	}
	received := make([]*bitstring.BitString, len(patterns))
	for v := range received {
		received[v] = bitstring.New(length)
	}
	if err := nw.RunPhaseInto(patterns, received); err != nil {
		return nil, err
	}
	return received, nil
}

// RunPhaseInto is RunPhase writing each node's reception into the
// caller-provided dst[v] (fully overwritten), so steady-state callers —
// the Algorithm 1 runner's two phases per simulated round — reuse one set
// of reception buffers and the phase allocates nothing. Every dst[v] must
// be non-nil with the window's length. Patterns are read-only and may
// alias shared codeword masks; patterns[v] and dst[v] must not alias each
// other.
func (nw *Network) RunPhaseInto(patterns, dst []*bitstring.BitString) error {
	n := nw.g.N()
	length, err := nw.phaseLength(patterns)
	if err != nil {
		return err
	}
	if len(dst) != n {
		return fmt.Errorf("beep: %d reception buffers for %d nodes", len(dst), n)
	}
	for v, d := range dst {
		if d == nil || d.Len() != length {
			return fmt.Errorf("beep: reception buffer %d missing or not %d bits", v, length)
		}
	}

	var beeps int64
	senders := 0
	for v := 0; v < n; v++ {
		if patterns[v] != nil {
			if ones := patterns[v].Ones(); ones > 0 {
				beeps += int64(ones)
				senders++
			}
		}
	}
	nw.totalBeeps += beeps
	nw.m.beeps.Add(beeps)
	// Sparse windows: when few nodes transmit, every node outside the
	// senders' closed neighborhoods provably receives all-zero (before
	// noise), so one sender-centric propagation pass over the senders'
	// rows replaces n per-row scans. The mask only ever gates a shortcut
	// that computes the same bits — receptions are byte-identical whether
	// it is built or not.
	nw.phaseHearMask = nil
	if 4*senders <= n {
		if nw.phaseSenders == nil {
			nw.phaseSenders = bitstring.New(n)
			nw.phaseHear = bitstring.New(n)
		} else {
			nw.phaseSenders.Reset()
			nw.phaseHear.Reset()
		}
		for v := 0; v < n; v++ {
			if patterns[v] != nil && patterns[v].Ones() > 0 {
				nw.phaseSenders.Set(v)
			}
		}
		nw.g.NeighborhoodOr(nw.phaseSenders, nw.phaseHear)
		nw.phaseHear.OrInPlace(nw.phaseSenders)
		nw.phaseHearMask = nw.phaseHear
	}
	if nw.noisy && nw.pool.Parallel() {
		// Pre-create noise samplers (lazy creation inside the phase would
		// be per-slot too, but keeping it here makes the invariant obvious).
		for v := 0; v < n; v++ {
			nw.noiseSampler(v)
		}
	}
	if nw.phaseFn == nil {
		nw.phaseFn = func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				nw.receiveInto(v, nw.phasePatterns, nw.phaseWin, nw.phaseDst[v])
			}
		}
	}
	nw.phasePatterns, nw.phaseDst, nw.phaseWin = patterns, dst, length
	sp := nw.m.windowT.Start()
	nw.pool.Do(n, nw.phaseFn)
	sp.Stop()
	nw.m.windows.Inc()
	nw.m.rounds.Add(int64(length))
	nw.phasePatterns, nw.phaseDst = nil, nil // don't retain caller buffers
	if nw.params.RecordBeeps {
		for t := 0; t < length; t++ {
			col := bitstring.New(n)
			for v := 0; v < n; v++ {
				if patterns[v] != nil && patterns[v].Get(t) {
					col.Set(v)
				}
			}
			nw.history = append(nw.history, col)
		}
	}
	nw.round += length
	return nil
}

// phaseLength validates a pattern set and returns the window length.
func (nw *Network) phaseLength(patterns []*bitstring.BitString) (int, error) {
	if len(patterns) != nw.g.N() {
		return 0, fmt.Errorf("beep: %d patterns for %d nodes", len(patterns), nw.g.N())
	}
	length := -1
	for v, p := range patterns {
		if p == nil {
			continue
		}
		if length == -1 {
			length = p.Len()
		} else if p.Len() != length {
			return 0, fmt.Errorf("beep: pattern %d has length %d, want %d", v, p.Len(), length)
		}
	}
	if length == -1 {
		return 0, fmt.Errorf("beep: all patterns nil")
	}
	return length, nil
}

// receiveInto computes node v's reception for one batch window into acc:
// the OR over its inclusive neighborhood, then its private noise stream.
// It touches only v's sampler and output buffer, so distinct nodes may
// run concurrently.
func (nw *Network) receiveInto(v int, patterns []*bitstring.BitString, length int, acc *bitstring.BitString) {
	if hm := nw.phaseHearMask; hm != nil && !hm.Get(v) {
		// v is outside every sender's closed neighborhood: its pre-noise
		// reception is all-zero by construction of the mask, so skip the
		// row scan. Noise below still runs (and consumes the same
		// randomness), keeping the gated path byte-identical.
		acc.Reset()
	} else {
		if patterns[v] != nil {
			acc.CopyFrom(patterns[v])
		} else {
			acc.Reset()
		}
		for _, u := range nw.g.Row(v) {
			if p := patterns[u]; p != nil {
				acc.OrInPlace(p)
			}
		}
	}
	if nw.noisy {
		// The sampler perturbs the pre-noise reception in place; protect
		// marks the node's own beep slots when the NoisyOwn convention
		// exempts them (the sampler still consumes its randomness for
		// protected slots, so downstream noise is unaffected).
		var protect []uint64
		if !nw.params.NoisyOwn && patterns[v] != nil {
			protect = patterns[v].Words()
		}
		nw.noiseSampler(v).ApplyInto(acc.Words(), nw.round, nw.round+length, protect)
	}
}

// noiseSampler lazily binds the channel model to node v's private
// randomness. The symmetric model derives and consumes its stream
// exactly as the pre-model ε channel did, so symmetric runs are
// byte-identical across the pluggable-model refactor.
func (nw *Network) noiseSampler(v int) noise.Sampler {
	if nw.noise[v] == nil {
		s := nw.model.Sampler(nw.params.Seed, v)
		// The counting wrapper is the telemetry accounting hook: it
		// observes applied flips by before/after comparison and delegates
		// all randomness consumption, so wrapped receptions are
		// byte-identical (pinned by the noise package's counting tests).
		// The pointer check matters: a nil *obs.Counter boxed into the
		// Accountant interface would not be a nil interface.
		if nw.m.flips != nil {
			s = noise.Counting(s, nw.m.flips)
		}
		if nw.m.spent != nil {
			// Every adversarial flip is a unit of budget spent, so a second
			// counting wrapper is exact budget accounting.
			s = noise.Counting(s, nw.m.spent)
		}
		nw.noise[v] = s
	}
	return nw.noise[v]
}
