package beep

import (
	"fmt"
	"math/bits"

	"repro/internal/noise"
)

// SlicedChannel is the noise fabric of replicate-sliced execution: up to
// 64 replicates ("lanes") of the same network advance together through
// lane-transposed reception windows, where word t of a window holds all
// lanes' receptions of that window's slot t and bit k belongs to lane k.
//
// Each lane models one standalone Network: lane k gets its own
// per-(lane, node) samplers bound to seeds[k] — the replicate's
// ChannelSeed, split exactly as Network does — and its own absolute
// round counter, advanced only for windows the lane participates in.
// The sliced run is therefore bit-identical to running the lanes
// serially: lane k's samplers consume byte-for-byte the stream a
// standalone replicate-k Network would (the ApplyLaneInto contract in
// internal/noise), and its round counter tracks the standalone
// Network's Round() under the same participation schedule.
//
// A SlicedChannel carries no transmission logic — sliced runners
// propagate their own transposed patterns (the TDMA runner exploits the
// color-restricted shape of its windows) and call ApplyLaneNoise per
// node, then Advance once per window. ApplyLaneNoise for distinct nodes
// may run concurrently (each touches only node v's samplers); Advance
// and the round accessors must be called from the driving goroutine
// between windows, like Network's round counter.
type SlicedChannel struct {
	model    noise.Model
	noisy    bool
	seeds    []uint64
	rounds   []int
	samplers [][]noise.Sampler // [lane][node], nil when the model is noiseless
}

// NewSlicedChannel builds a sliced channel for n nodes with one lane per
// seed. The model must be validated and resolved by the caller (as
// Network resolves Params.Noise / Epsilon); samplers are materialized
// eagerly — creation is a pure function of (model, seed, node), so the
// order is immaterial and the per-phase hot path stays allocation-free.
func NewSlicedChannel(model noise.Model, seeds []uint64, n int) (*SlicedChannel, error) {
	if len(seeds) == 0 || len(seeds) > 64 {
		return nil, fmt.Errorf("beep: %d lanes outside [1, 64]", len(seeds))
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("beep: %w", err)
	}
	c := &SlicedChannel{
		model:  model,
		noisy:  !noise.Noiseless(model),
		seeds:  append([]uint64(nil), seeds...),
		rounds: make([]int, len(seeds)),
	}
	if c.noisy {
		c.samplers = make([][]noise.Sampler, len(seeds))
		for k := range seeds {
			c.samplers[k] = make([]noise.Sampler, n)
			for v := 0; v < n; v++ {
				c.samplers[k][v] = model.Sampler(seeds[k], v)
			}
		}
	}
	return c, nil
}

// CountFlips wraps every lane's samplers with the telemetry accounting
// hook so applied noise flips accumulate into acc. Call once, after
// construction and before the first window. Observation-only: the
// counting wrapper delegates all randomness consumption and counts by
// before/after comparison, so receptions are byte-identical wrapped or
// not (pinned by the noise package's counting tests). No-op when acc is
// nil or the model is noiseless.
func (c *SlicedChannel) CountFlips(acc noise.Accountant) {
	if acc == nil || !c.noisy {
		return
	}
	for k := range c.samplers {
		for v := range c.samplers[k] {
			c.samplers[k][v] = noise.Counting(c.samplers[k][v], acc)
		}
	}
}

// Lanes returns the lane count.
func (c *SlicedChannel) Lanes() int { return len(c.seeds) }

// Noisy reports whether the channel can flip any bit at all.
func (c *SlicedChannel) Noisy() bool { return c.noisy }

// Round returns lane's absolute round counter — the standalone
// Network.Round() of the replicate the lane models.
func (c *SlicedChannel) Round(lane int) int { return c.rounds[lane] }

// ApplyLaneNoise perturbs node v's lane-transposed reception window in
// place, one lane at a time, for every lane whose bit is set in active.
// win[t] holds the pre-noise receptions of the window's slot t; lane k's
// slots map to its private absolute rounds [Round(k), Round(k)+length).
// protect, when non-nil, marks cells delivered noise-free in the same
// transposed layout (a beeping node's own slots under NoisyOwn=false);
// protected cells still consume the lane's randomness, exactly like the
// flat path. Inactive lanes consume nothing — their replicates are
// sitting out this window.
func (c *SlicedChannel) ApplyLaneNoise(v int, win []uint64, length int, active uint64, protect []uint64) {
	if !c.noisy || active == 0 {
		return
	}
	for a := active; a != 0; a &= a - 1 {
		k := bits.TrailingZeros64(a)
		start := c.rounds[k]
		c.samplers[k][v].ApplyLaneInto(win, start, start+length, k, protect)
	}
}

// Advance commits a window: every active lane's round counter moves past
// it. Lanes outside active did not participate (no transmissions, no
// noise consumed, no rounds spent), mirroring the lane-serial runner's
// skipped zero-sender windows.
func (c *SlicedChannel) Advance(active uint64, length int) {
	for a := active; a != 0; a &= a - 1 {
		c.rounds[bits.TrailingZeros64(a)] += length
	}
}
