package beep

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bitstring"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

// runPair executes the same program construction on two fresh networks with
// identical parameters — once through the dense driver, once through the
// sparse one — and returns both results plus the network counters.
func runPair(t *testing.T, g *graph.Graph, params Params, budget int,
	mk func() []Program) (dense, sparse *Result, denseNW, sparseNW *Network) {
	t.Helper()
	var err error
	denseNW, err = NewNetwork(g, params)
	if err != nil {
		t.Fatal(err)
	}
	sparseNW, err = NewNetwork(g, params)
	if err != nil {
		t.Fatal(err)
	}
	dense, err = denseNW.Run(mk(), budget)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err = sparseNW.RunSparse(mk(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return dense, sparse, denseNW, sparseNW
}

// assertIdentical checks the full observable surface: Result shape, decoded
// outputs, the network round counter, and the energy total.
func assertIdentical(t *testing.T, label string, dense, sparse *Result, denseNW, sparseNW *Network) {
	t.Helper()
	if dense.Rounds != sparse.Rounds || dense.AllDone != sparse.AllDone {
		t.Fatalf("%s: result shape differs: dense rounds=%d allDone=%v, sparse rounds=%d allDone=%v",
			label, dense.Rounds, dense.AllDone, sparse.Rounds, sparse.AllDone)
	}
	if denseNW.Round() != sparseNW.Round() {
		t.Fatalf("%s: network round counter differs: %d vs %d", label, denseNW.Round(), sparseNW.Round())
	}
	if denseNW.TotalBeeps() != sparseNW.TotalBeeps() {
		t.Fatalf("%s: TotalBeeps differs: %d vs %d", label, denseNW.TotalBeeps(), sparseNW.TotalBeeps())
	}
	if len(dense.Outputs) != len(sparse.Outputs) {
		t.Fatalf("%s: output count differs: %d vs %d", label, len(dense.Outputs), len(sparse.Outputs))
	}
	for v := range dense.Outputs {
		dv, sv := dense.Outputs[v], sparse.Outputs[v]
		if db, ok := dv.(*bitstring.BitString); ok {
			if !db.Equal(sv.(*bitstring.BitString)) {
				t.Fatalf("%s: node %d heard bits differ", label, v)
			}
			continue
		}
		if !reflect.DeepEqual(dv, sv) {
			t.Fatalf("%s: node %d output differs: %v vs %v", label, v, dv, sv)
		}
	}
}

// TestSparseMatchesDenseAlarmFlood pins RunSparse to the dense driver on the
// purely reactive wave primitive across graph shapes, worker counts, and a
// disconnected instance (which exercises the fast-forward-to-budget path
// after the wave dies out).
func TestSparseMatchesDenseAlarmFlood(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path":     graph.Path(60),
		"cycle":    graph.Cycle(50),
		"star":     graph.Star(33),
		"grid":     graph.Grid(7, 9),
		"cube":     graph.Hypercube(6),
		"bounded":  graph.RandomBoundedDegree(200, 6, 0.05, rng.New(11)),
		"split":    graph.MustFromEdges(10, [][2]int{{0, 1}, {1, 2}, {2, 3}, {5, 6}, {6, 7}, {8, 9}}),
		"isolated": graph.MustFromEdges(5, [][2]int{{0, 1}}),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 4, engine.AutoWorkers} {
			mk := func() []Program {
				progs := make([]Program, g.N())
				for v := range progs {
					progs[v] = &AlarmFlood{Source: v == 0}
				}
				return progs
			}
			budget := g.N() + 2
			dense, sparse, dnw, snw := runPair(t, g,
				Params{Seed: 3, Workers: workers}, budget, mk)
			assertIdentical(t, name, dense, sparse, dnw, snw)
		}
	}
}

// TestPropertySparseMatchesDenseTransmitters is the randomized equivalence
// property (same idiom as TestRunSerialParallelIdentical): random bounded
// -degree graphs, random sparse beep patterns, random pool configurations —
// the sparse driver must reproduce the dense reception transcript bit for
// bit, plus round and energy counters.
func TestPropertySparseMatchesDenseTransmitters(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		r := rng.New(uint64(1000 + trial))
		n := 20 + r.Intn(130)
		deg := 3 + r.Intn(5)
		g := graph.RandomBoundedDegree(n, deg, 0.02+r.Float64()*0.08, r.Split(1))
		horizon := 16 + r.Intn(48)
		density := 0.01 + r.Float64()*0.09
		pr := r.Split(2)
		patterns := make([]*bitstring.BitString, n)
		for v := range patterns {
			if pr.Bool(0.4) {
				continue // silent node: nil pattern
			}
			p := bitstring.New(horizon)
			for i := 0; i < horizon; i++ {
				if pr.Bool(density) {
					p.Set(i)
				}
			}
			patterns[v] = p
		}
		workers := []int{1, 2, 4, engine.AutoWorkers}[r.Intn(4)]
		shards := r.Intn(20)
		mk := func() []Program {
			progs := make([]Program, n)
			for v := range progs {
				progs[v] = &Transmitter{Pattern: patterns[v], Rounds: horizon}
			}
			return progs
		}
		dense, sparse, dnw, snw := runPair(t, g,
			Params{Seed: uint64(trial), Workers: workers, Shards: shards}, horizon+5, mk)
		assertIdentical(t, fmt.Sprintf("trial %d", trial), dense, sparse, dnw, snw)
		if dense.Rounds != horizon || !dense.AllDone {
			t.Fatalf("trial %d: expected full horizon run, got rounds=%d allDone=%v",
				trial, dense.Rounds, dense.AllDone)
		}
	}
}

// TestSparseTruncatedBudget checks parity when the budget cuts the run off
// mid-wave: partial outputs, AllDone=false, and the round counters must all
// agree.
func TestSparseTruncatedBudget(t *testing.T) {
	g := graph.Path(80)
	mk := func() []Program {
		progs := make([]Program, g.N())
		for v := range progs {
			progs[v] = &AlarmFlood{Source: v == 0}
		}
		return progs
	}
	for _, budget := range []int{0, 1, 10, 40} {
		dense, sparse, dnw, snw := runPair(t, g, Params{Seed: 5}, budget, mk)
		assertIdentical(t, "truncated", dense, sparse, dnw, snw)
		if sparse.AllDone {
			t.Fatalf("budget %d: path flood cannot finish early", budget)
		}
	}
}

// TestSparseFastForward pins the O(1) skip over globally quiet stretches: a
// single transmitter that beeps only near the end of the horizon. The dense
// twin grinds through every silent round; the sparse run must land on the
// same counters and transcript regardless.
func TestSparseFastForward(t *testing.T) {
	g := graph.Path(100)
	const horizon = 60
	pattern := bitstring.New(horizon)
	pattern.Set(50)
	mk := func() []Program {
		progs := make([]Program, g.N())
		for v := range progs {
			var p *bitstring.BitString
			if v == 0 {
				p = pattern
			}
			progs[v] = &Transmitter{Pattern: p, Rounds: horizon}
		}
		return progs
	}
	dense, sparse, dnw, snw := runPair(t, g, Params{Seed: 9}, horizon, mk)
	assertIdentical(t, "fast-forward", dense, sparse, dnw, snw)
	if snw.Round() != horizon {
		t.Fatalf("round counter %d, want %d (skipped rounds must still count)", snw.Round(), horizon)
	}
	// Node 1 heard the lone beep, node 2 (not adjacent to the source) did not.
	if !sparse.Outputs[1].(*bitstring.BitString).Get(50) {
		t.Fatal("neighbor missed the beep at round 50")
	}
	if sparse.Outputs[2].(*bitstring.BitString).Ones() != 0 {
		t.Fatal("non-neighbor heard a phantom beep")
	}
}

// TestSparseFallbacks verifies the three dense-fallback triggers: a noisy
// channel, a beep transcript request, and a program set that does not
// implement QuietProgram. Each must behave exactly like Run (same seed ⇒
// byte-identical, including the noise draws).
func TestSparseFallbacks(t *testing.T) {
	g := graph.RandomBoundedDegree(120, 5, 0.05, rng.New(42))
	mkFlood := func() []Program {
		progs := make([]Program, g.N())
		for v := range progs {
			progs[v] = &AlarmFlood{Source: v == 0}
		}
		return progs
	}

	t.Run("noisy", func(t *testing.T) {
		dense, sparse, dnw, snw := runPair(t, g,
			Params{Seed: 17, Epsilon: 0.2, NoisyOwn: true}, g.N()+2, mkFlood)
		assertIdentical(t, "noisy", dense, sparse, dnw, snw)
	})

	t.Run("record-beeps", func(t *testing.T) {
		dense, sparse, dnw, snw := runPair(t, g,
			Params{Seed: 17, RecordBeeps: true}, g.N()+2, mkFlood)
		assertIdentical(t, "record", dense, sparse, dnw, snw)
		dh, sh := dnw.BeepHistory(), snw.BeepHistory()
		if len(sh) == 0 || len(dh) != len(sh) {
			t.Fatalf("history length %d vs %d (fallback must record)", len(dh), len(sh))
		}
		for i := range dh {
			if !dh[i].Equal(sh[i]) {
				t.Fatalf("beep transcript differs at round %d", i)
			}
		}
	})

	t.Run("non-quiet-program", func(t *testing.T) {
		mk := func() []Program {
			progs := make([]Program, g.N())
			for v := range progs {
				progs[v] = &RobustFlood{Source: v == 0, FrameLen: 8}
			}
			return progs
		}
		dense, sparse, dnw, snw := runPair(t, g, Params{Seed: 23}, 200, mk)
		assertIdentical(t, "robust", dense, sparse, dnw, snw)
	})
}

// TestSparseFrontierGauge checks that a sparse run reports its peak frontier
// occupancy, and that it is genuinely sub-linear on a long path (the wave
// front is O(1) nodes wide).
func TestSparseFrontierGauge(t *testing.T) {
	g := graph.Path(512)
	reg := obs.NewRegistry()
	nw, err := NewNetwork(g, Params{Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	progs := make([]Program, g.N())
	for v := range progs {
		progs[v] = &AlarmFlood{Source: v == 0}
	}
	if _, err := nw.RunSparse(progs, g.N()+2); err != nil {
		t.Fatal(err)
	}
	peak := reg.Gauge("beep.frontier.peak").Value()
	if peak < 1 || peak > 8 {
		t.Fatalf("peak frontier %d on a path; want a handful of nodes, not Θ(n)", peak)
	}
}
