package beep

import (
	"testing"

	"repro/internal/bitstring"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/rng"
)

// channelModels is one instance of every pluggable model, at rates high
// enough that every code path (flips on both bit values, bursts, the
// protect mask) is exercised.
func channelModels() map[string]noise.Model {
	return map[string]noise.Model{
		"asymmetric":      noise.Asymmetric{P01: 0.05, P10: 0.25},
		"erasure-read0":   noise.Erasure{Q: 0.2},
		"erasure-read1":   noise.Erasure{Q: 0.2, ReadAs1: true},
		"gilbert-elliott": noise.GilbertElliott{PGood: 0.02, PBad: 0.6, PGoodToBad: 0.1, PBadToGood: 0.3},
	}
}

func noisePatterns(g *graph.Graph, length int, seed uint64) []*bitstring.BitString {
	patterns := make([]*bitstring.BitString, g.N())
	patRng := rng.New(seed)
	for v := range patterns {
		if v%5 == 0 {
			continue // some silent nodes
		}
		s := bitstring.New(length)
		for i := 0; i < length; i++ {
			if patRng.Bool(0.2) {
				s.Set(i)
			}
		}
		patterns[v] = s
	}
	return patterns
}

// TestNoiseModelSymmetricByteIdentical pins the refactor's anchor at the
// network level: a Params{Noise: Symmetric{ε}} channel is bit-for-bit a
// Params{Epsilon: ε} channel, on both execution paths and under both
// own-reception conventions.
func TestNoiseModelSymmetricByteIdentical(t *testing.T) {
	const length = 257
	gr := graph.RandomBoundedDegree(24, 5, 0.2, rng.New(31))
	for _, noisyOwn := range []bool{false, true} {
		legacy := Params{Epsilon: 0.17, Seed: 9, NoisyOwn: noisyOwn}
		model := Params{Noise: noise.Symmetric{Eps: 0.17}, Seed: 9, NoisyOwn: noisyOwn}

		nwA, err := NewNetwork(gr, legacy)
		if err != nil {
			t.Fatal(err)
		}
		nwB, err := NewNetwork(gr, model)
		if err != nil {
			t.Fatal(err)
		}
		a, err := nwA.RunPhase(noisePatterns(gr, length, 77))
		if err != nil {
			t.Fatal(err)
		}
		b, err := nwB.RunPhase(noisePatterns(gr, length, 77))
		if err != nil {
			t.Fatal(err)
		}
		for v := range a {
			if !a[v].Equal(b[v]) {
				t.Fatalf("noisyOwn=%v: node %d receptions differ between ε and Symmetric{ε}", noisyOwn, v)
			}
		}

		// The round-by-round path too.
		runA, err := NewNetwork(gr, legacy)
		if err != nil {
			t.Fatal(err)
		}
		runB, err := NewNetwork(gr, model)
		if err != nil {
			t.Fatal(err)
		}
		progsA := make([]Program, gr.N())
		progsB := make([]Program, gr.N())
		for v := range progsA {
			progsA[v] = &contender{horizon: 60}
			progsB[v] = &contender{horizon: 60}
		}
		resA, err := runA.Run(progsA, 60)
		if err != nil {
			t.Fatal(err)
		}
		resB, err := runB.Run(progsB, 60)
		if err != nil {
			t.Fatal(err)
		}
		if resA.Rounds != resB.Rounds {
			t.Fatalf("noisyOwn=%v: round counts differ", noisyOwn)
		}
		for v := range progsA {
			ha := resA.Outputs[v].([]bool)
			hb := resB.Outputs[v].([]bool)
			if len(ha) != len(hb) {
				t.Fatalf("noisyOwn=%v: node %d transcript lengths differ", noisyOwn, v)
			}
			for i := range ha {
				if ha[i] != hb[i] {
					t.Fatalf("noisyOwn=%v: node %d transcripts differ at round %d", noisyOwn, v, i)
				}
			}
		}
	}
}

// TestRunPhaseEquivalenceNoiseModels extends the batch ≡ generic
// equivalence to every pluggable model: RunPhase's ApplyInto windows and
// Run's per-round FlipAt deliveries must agree bit-for-bit, under both
// own-reception conventions.
func TestRunPhaseEquivalenceNoiseModels(t *testing.T) {
	const length = 257
	gr := graph.RandomBoundedDegree(24, 5, 0.2, rng.New(31))
	for label, m := range channelModels() {
		for _, noisyOwn := range []bool{false, true} {
			p := Params{Noise: m, Seed: 9, NoisyOwn: noisyOwn}
			patterns := noisePatterns(gr, length, 77)

			nwBatch, err := NewNetwork(gr, p)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := nwBatch.RunPhase(patterns)
			if err != nil {
				t.Fatal(err)
			}

			nwGeneric, err := NewNetwork(gr, p)
			if err != nil {
				t.Fatal(err)
			}
			progs := make([]Program, gr.N())
			for v := range progs {
				progs[v] = &Transmitter{Pattern: patterns[v], Rounds: length}
			}
			if _, err := nwGeneric.Run(progs, length); err != nil {
				t.Fatal(err)
			}
			for v := 0; v < gr.N(); v++ {
				if !batch[v].Equal(progs[v].(*Transmitter).Heard()) {
					t.Fatalf("%s noisyOwn=%v: node %d: batch and generic paths disagree", label, noisyOwn, v)
				}
			}
		}
	}
}

// TestRunPhaseParallelEquivalenceNoiseModels is the per-model serial ≡
// parallel bit-identity test: worker parallelism never changes a single
// reception bit under any channel model.
func TestRunPhaseParallelEquivalenceNoiseModels(t *testing.T) {
	const length = 321
	gr := graph.RandomBoundedDegree(40, 6, 0.15, rng.New(51))
	for label, m := range channelModels() {
		serialNW, err := NewNetwork(gr, Params{Noise: m, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := serialNW.RunPhase(noisePatterns(gr, length, 88))
		if err != nil {
			t.Fatal(err)
		}
		parallelNW, err := NewNetwork(gr, Params{Noise: m, Seed: 13, Workers: 8, Shards: 5})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := parallelNW.RunPhase(noisePatterns(gr, length, 88))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < gr.N(); v++ {
			if !serial[v].Equal(parallel[v]) {
				t.Fatalf("%s: node %d differs between serial and parallel paths", label, v)
			}
		}
		if serialNW.TotalBeeps() != parallelNW.TotalBeeps() {
			t.Errorf("%s: beep counts differ", label)
		}
	}
}

// TestNoiseModelContinuityAcrossWindows: every model's noise is one
// continuous per-node process — two half windows equal one whole window.
// This is the property that makes the Gilbert–Elliott state machine (and
// every sampler's stale-position handling) safe under the runner's
// phase-by-phase execution.
func TestNoiseModelContinuityAcrossWindows(t *testing.T) {
	g := graph.Path(4)
	mk := func() []*bitstring.BitString {
		pats := make([]*bitstring.BitString, 4)
		r := rng.New(3)
		for v := range pats {
			s := bitstring.New(200)
			for i := 0; i < 200; i++ {
				if r.Bool(0.3) {
					s.Set(i)
				}
			}
			pats[v] = s
		}
		return pats
	}
	for label, m := range channelModels() {
		full := mk()
		nwOne, err := NewNetwork(g, Params{Noise: m, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		whole, err := nwOne.RunPhase(full)
		if err != nil {
			t.Fatal(err)
		}
		nwTwo, err := NewNetwork(g, Params{Noise: m, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		first := make([]*bitstring.BitString, 4)
		second := make([]*bitstring.BitString, 4)
		for v, p := range mk() {
			a := bitstring.New(100)
			b := bitstring.New(100)
			for i := 0; i < 100; i++ {
				a.SetBool(i, p.Get(i))
				b.SetBool(i, p.Get(i+100))
			}
			first[v], second[v] = a, b
		}
		got1, err := nwTwo.RunPhase(first)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := nwTwo.RunPhase(second)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 4; v++ {
			for i := 0; i < 100; i++ {
				if whole[v].Get(i) != got1[v].Get(i) || whole[v].Get(i+100) != got2[v].Get(i) {
					t.Fatalf("%s: node %d: windowed and whole runs disagree", label, v)
				}
			}
		}
	}
}

// TestNewNetworkNoiseValidation: a model channel owns ε, and invalid
// models are rejected at construction.
func TestNewNetworkNoiseValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewNetwork(g, Params{Epsilon: 0.1, Noise: noise.Asymmetric{P01: 0.1, P10: 0.1}}); err == nil {
		t.Error("Epsilon and Noise both set was accepted")
	}
	if _, err := NewNetwork(g, Params{Noise: noise.Asymmetric{P01: 0.7, P10: 0.1}}); err == nil {
		t.Error("invalid model was accepted")
	}
	if _, err := NewNetwork(g, Params{Noise: noise.GilbertElliott{PGood: 0.01, PBad: 0.4, PGoodToBad: 0.05, PBadToGood: 0.25}}); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}
