// Package stats provides the small statistical helpers the experiment
// harness uses: moments, confidence half-widths, and least-squares fits
// for scaling-law checks (e.g. "overhead grows linearly in Δ").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It errors on fewer than two points or zero x-variance.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: need ≥2 paired points, got %d/%d", len(x), len(y))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("stats: zero variance in x")
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// LogLogSlope fits log(y) against log(x) and returns the slope — the
// empirical polynomial exponent of a scaling law. All values must be
// positive.
func LogLogSlope(x, y []float64) (float64, error) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || i >= len(y) || y[i] <= 0 {
			return 0, fmt.Errorf("stats: log-log fit needs positive values")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _, err := LinearFit(lx, ly)
	return slope, err
}

// Ratio returns a/b, or NaN if b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
