package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{xs: nil, want: 0},
		{xs: []float64{5}, want: 5},
		{xs: []float64{1, 2, 3, 4}, want: 2.5},
		{xs: []float64{-1, 1}, want: 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.138, 0.01) {
		t.Errorf("StdDev = %v, want ≈2.138", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{xs: nil, want: 0},
		{xs: []float64{3, 1, 2}, want: 2},
		{xs: []float64{4, 1, 2, 3}, want: 2.5},
	}
	for _, tt := range tests {
		if got := Median(tt.xs); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", tt.xs, got, tt.want)
		}
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestCI95(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of singleton should be 0")
	}
	got := CI95([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got <= 0 || got > 3 {
		t.Errorf("CI95 = %v out of plausible range", got)
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3x + 1 exactly.
	x := []float64{1, 2, 3, 4}
	y := []float64{4, 7, 10, 13}
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 3, 1e-9) || !almostEqual(intercept, 1, 1e-9) {
		t.Errorf("fit = (%v, %v), want (3, 1)", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("zero x-variance accepted")
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² has log-log slope 2.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = x[i] * x[i]
	}
	slope, err := LogLogSlope(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, 2, 1e-9) {
		t.Errorf("slope = %v, want 2", slope)
	}
	if _, err := LogLogSlope([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("non-positive x accepted")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio(1,0) should be NaN")
	}
}
