package experiments

import (
	"math"

	"repro/internal/algorithms/matching"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/localbroadcast"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/wire"
)

// T7LocalBroadcast runs B-bit Local Broadcast on the Lemma 14 hard
// instance through the full stack and compares the beep rounds used
// against the Ω(Δ²B) lower bound.
func T7LocalBroadcast(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T7",
		Title:   "B-bit Local Broadcast on K_{Δ,Δ}: measured cost vs Ω(Δ²B) (Lemmas 14–15, Corollary 16)",
		Claim:   "Local Broadcast needs Ω(Δ²B) beep rounds; the pipeline achieves O(Δ²⌈B/log n⌉·log n), optimal up to constants",
		Columns: []string{"Δ", "B", "beep rounds", "lower bound Δ²B/2", "gap factor", "correct"},
	}
	configs := []struct{ delta, b int }{
		{delta: 2, b: 16},
		{delta: 3, b: 16},
		{delta: 4, b: 16},
		{delta: 4, b: 32},
	}
	if cfg.Quick {
		configs = configs[:2]
	}
	for i, tc := range configs {
		n := 2 * tc.delta
		g, err := graph.HardInstance(n, tc.delta)
		if err != nil {
			return nil, err
		}
		inst := localbroadcast.NewHardInstance(g, tc.delta, tc.b, rng.New(cfg.Seed+uint64(i)))
		inner := wire.BitsFor(n)
		outer := core.AdapterMsgBits(n, inner)
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(n, tc.delta, outer, 0.05),
			ChannelSeed: cfg.Seed + 10 + uint64(i),
			AlgSeed:     cfg.Seed + 11,
			NoisyOwn:    true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		budget := core.CongestRounds(localbroadcast.CongestRoundsNeeded(tc.b, inner), tc.delta)
		res, err := runner.Run(core.WrapCongest(localbroadcast.NewAlgorithms(inst)), budget)
		if err != nil {
			return nil, err
		}
		correct := res.AllDone && localbroadcast.Verify(g, inst, res.Outputs) == nil
		bound := localbroadcast.Lemma14MinRounds(tc.delta, tc.b)
		t.Rows = append(t.Rows, []string{
			f("%d", tc.delta), f("%d", tc.b),
			f("%d", res.BeepRounds), f("%d", bound),
			f("%.0fx", float64(res.BeepRounds)/float64(bound)),
			f("%v", correct),
		})
	}
	t.Notes = append(t.Notes,
		"gap factor is the O(log n · constants) slack between the achievable upper bound and the information-theoretic floor")
	return t, nil
}

// T8MatchingNative measures Lemma 20: Algorithm 3 terminates within
// O(log n) Broadcast CONGEST rounds, across sizes and seeds.
func T8MatchingNative(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T8",
		Title:   "Maximal matching in Broadcast CONGEST (Algorithm 3, Lemma 20)",
		Claim:   "Algorithm 3 produces a maximal matching in O(log n) rounds w.h.p.",
		Columns: []string{"n", "Δ", "seeds", "mean rounds", "rounds/log₂n", "all valid"},
	}
	ns := []int{64, 256, 1024, 4096}
	seeds := 5
	if cfg.Quick {
		ns = []int{64, 256}
		seeds = 2
	}
	var xs, ys []float64
	for _, n := range ns {
		var rounds []float64
		valid := true
		for s := 0; s < seeds; s++ {
			g, err := regularGraph(n, 8, cfg.Seed+uint64(n+s))
			if err != nil {
				return nil, err
			}
			eng, err := congest.NewBroadcastEngine(g, matching.MsgBits(n), cfg.Seed+uint64(s))
			if err != nil {
				return nil, err
			}
			eng.SetParallelism(cfg.poolWorkers(), cfg.Shards)
			res, err := eng.Run(matching.New(n), matching.MaxRounds(n))
			if err != nil {
				return nil, err
			}
			if !res.AllDone {
				valid = false
				continue
			}
			outs := make([]int, n)
			for v, o := range res.Outputs {
				outs[v] = o.(int)
			}
			if matching.Verify(g, outs) != nil {
				valid = false
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		mean := stats.Mean(rounds)
		logn := math.Log2(float64(n))
		t.Rows = append(t.Rows, []string{
			f("%d", n), "8", f("%d", seeds),
			f("%.1f", mean), f("%.2f", mean/logn), f("%v", valid),
		})
		xs = append(xs, logn)
		ys = append(ys, mean)
	}
	if slope, _, err := stats.LinearFit(xs, ys); err == nil {
		t.Notes = append(t.Notes, f("rounds grow ≈ %.1f·log₂ n (linear in log n, as Lemma 20 predicts)", slope))
	}
	return t, nil
}

// T9MatchingBeeps is Theorem 21 end-to-end: maximal matching over the
// noisy beeping model in O(Δ log² n) rounds.
func T9MatchingBeeps(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T9",
		Title:   "Maximal matching in the noisy beeping model (Theorem 21)",
		Claim:   "maximal matching in O(Δ log² n) noisy-beep rounds, w.h.p. correct",
		Columns: []string{"n", "Δ", "ε", "beep rounds", "per Δ·log₂²n", "decode errs", "valid"},
	}
	configs := []struct {
		n, delta int
		eps      float64
	}{
		{n: 16, delta: 4, eps: 0.1},
		{n: 32, delta: 4, eps: 0.1},
		{n: 32, delta: 6, eps: 0.1},
		{n: 64, delta: 6, eps: 0.1},
	}
	if cfg.Quick {
		configs = configs[:2]
	}
	for i, tc := range configs {
		g, err := regularGraph(tc.n, tc.delta, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(tc.n, g.MaxDegree(), matching.MsgBits(tc.n), tc.eps),
			ChannelSeed: cfg.Seed + 70 + uint64(i),
			AlgSeed:     cfg.Seed + 71,
			NoisyOwn:    true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(matching.New(tc.n), matching.MaxRounds(tc.n))
		if err != nil {
			return nil, err
		}
		valid := res.AllDone
		if valid {
			outs := make([]int, tc.n)
			for v, o := range res.Outputs {
				outs[v] = o.(int)
			}
			valid = matching.Verify(g, outs) == nil
		}
		logn := math.Log2(float64(tc.n))
		t.Rows = append(t.Rows, []string{
			f("%d", tc.n), f("%d", g.MaxDegree()), f("%.2f", tc.eps),
			f("%d", res.BeepRounds),
			f("%.0f", float64(res.BeepRounds)/(float64(g.MaxDegree())*logn*logn)),
			f("%d", res.MessageErrors),
			f("%v", valid),
		})
	}
	return t, nil
}

// T10LowerBounds tabulates the counting bounds (Lemma 14, Theorem 22) and
// demonstrates the transcript argument concretely: distinct hard-instance
// inputs induce distinct right-part transcripts.
func T10LowerBounds(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T10",
		Title:   "Lower-bound counting arguments (Lemma 14, Theorem 22)",
		Claim:   "T-round algorithms succeed w.p. ≤ 2^{T−Δ²B} on Local Broadcast; r-round matching on K_{Δ,Δ} succeeds w.p. ≤ 2^r/n^{3Δ}",
		Columns: []string{"Δ", "B", "info needed Δ²B", "rounds for p=1", "log₂ p at Δ²B/2 rounds", "Thm22 log₂ p (r=Δ·log n, n=256)"},
	}
	for _, tc := range []struct{ delta, b int }{
		{delta: 2, b: 16},
		{delta: 4, b: 16},
		{delta: 4, b: 32},
		{delta: 8, b: 32},
	} {
		need := tc.delta * tc.delta * tc.b
		half := localbroadcast.Lemma14MinRounds(tc.delta, tc.b)
		r := tc.delta * 8 // Δ·log₂ 256
		t.Rows = append(t.Rows, []string{
			f("%d", tc.delta), f("%d", tc.b),
			f("%d", need), f("%d", need),
			f("%.0f", localbroadcast.Lemma14SuccessExponent(half, tc.delta, tc.b)),
			f("%.0f", localbroadcast.Theorem22SuccessExponent(r, tc.delta, 256)),
		})
	}

	// Transcript demonstration: run the pipeline on the hard instance for
	// several random inputs; distinct inputs must induce distinct
	// right-part transcripts (that is the only channel information flows
	// through).
	const delta, b = 2, 8
	inputs := 12
	if cfg.Quick {
		inputs = 4
	}
	g, err := graph.HardInstance(2*delta, delta)
	if err != nil {
		return nil, err
	}
	count, err := transcriptDemo(cfg, g, delta, b, inputs)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		f("transcript demo: %d distinct random left-part inputs induced %d distinct right-part transcripts (information flows only through the beep/silence pattern)", inputs, count),
		"rounds-for-p=1 equals Δ²B: below it, success probability decays exponentially — no simulation can beat Ω(Δ²B) for B=Θ(Δ log n)·… (Corollary 16)")
	return t, nil
}

// transcriptDemo runs the Local Broadcast pipeline on `inputs` random hard
// instances with transcript recording and counts distinct right-part
// transcripts.
func transcriptDemo(cfg Config, g *graph.Graph, delta, b, inputs int) (int, error) {
	seen := make(map[string]bool)
	for i := 0; i < inputs; i++ {
		inst := localbroadcast.NewHardInstance(g, delta, b, rng.New(cfg.Seed+500+uint64(i)))
		inner := wire.BitsFor(g.N())
		outer := core.AdapterMsgBits(g.N(), inner)
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(g.N(), delta, outer, 0),
			ChannelSeed: cfg.Seed + 600, // same channel seed: transcripts differ only via inputs
			AlgSeed:     cfg.Seed + 601,
			RecordBeeps: true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return 0, err
		}
		budget := core.CongestRounds(localbroadcast.CongestRoundsNeeded(b, inner), delta)
		if _, err := runner.Run(core.WrapCongest(localbroadcast.NewAlgorithms(inst)), budget); err != nil {
			return 0, err
		}
		seen[localbroadcast.RightTranscript(runner.BeepHistory(), delta)] = true
	}
	return len(seen), nil
}

// A1RepetitionAblation sweeps the repetition factor R (the practical c_ε
// knob) at fixed noise, exposing the reliability threshold.
func A1RepetitionAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation: repetition factor R vs decode errors (the c_ε knob)",
		Claim:   "Lemmas 9–10 need a sufficiently large constant; below it decoding collapses, above it errors vanish",
		Columns: []string{"R", "beep rounds/sim round", "message err rate"},
	}
	n, delta, eps := 32, 6, 0.1
	rounds := 5
	rs := []int{3, 7, 15, 31, 45}
	if cfg.Quick {
		rounds = 3
		rs = []int{3, 15, 31}
	}
	g, err := regularGraph(n, delta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		p := core.DefaultParams(n, g.MaxDegree(), 2*wire.BitsFor(n), eps)
		p.R = r
		st, err := runGossip(cfg, g, p, rounds, cfg.Seed+1, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			f("%d", r), f("%d", st.beepPerRound), f("%.4f", st.msgErrRate),
		})
	}
	return t, nil
}

// A2CodebookAblation sweeps the codebook size M in the paper-faithful
// random-assignment mode, measuring collision-driven failures (DESIGN.md
// substitution #2).
func A2CodebookAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: random-assignment codebook size M vs collision failures",
		Claim:   "random codeword choice fails when neighborhoods collide (prob ≈ K²/2M per node); ID assignment is the collision-free limit",
		Columns: []string{"assignment", "M", "membership err rate", "message err rate"},
	}
	n, delta := 32, 6
	rounds := 5
	ms := []int{16, 64, 256, 4096}
	if cfg.Quick {
		rounds = 3
		ms = []int{16, 256}
	}
	g, err := regularGraph(n, delta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	base := core.DefaultParams(n, g.MaxDegree(), 2*wire.BitsFor(n), 0.05)
	for _, m := range ms {
		p := base
		p.Assignment = core.AssignRandom
		p.M = m
		st, err := runGossip(cfg, g, p, rounds, cfg.Seed+3, cfg.Seed+4)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"random", f("%d", m), f("%.4f", st.memErrRate), f("%.4f", st.msgErrRate),
		})
	}
	st, err := runGossip(cfg, g, base, rounds, cfg.Seed+3, cfg.Seed+4)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"by-ID", f("%d", base.M), f("%.4f", st.memErrRate), f("%.4f", st.msgErrRate)})
	return t, nil
}

// A3SoloDecodingAblation compares the §4 solo-position decoder against a
// naive all-position majority.
func A3SoloDecodingAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation: solo-position decoding vs all-position majority",
		Claim:   "decoding must key on positions where the sender beeps alone (§4); collisions bias naive majorities toward 1",
		Columns: []string{"ε", "decoder", "message err rate"},
	}
	n, delta := 32, 8
	rounds := 5
	epss := []float64{0.02, 0.05, 0.1}
	if cfg.Quick {
		rounds = 3
		epss = []float64{0.1}
	}
	g, err := regularGraph(n, delta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, eps := range epss {
		for _, naive := range []bool{false, true} {
			p := core.DefaultParams(n, g.MaxDegree(), 2*wire.BitsFor(n), eps)
			p.C = 3  // denser blocks make collisions frequent enough to matter
			p.R = 21 // fixed redundancy across ε so only the decoder varies
			p.DisableSoloFilter = naive
			st, err := runGossip(cfg, g, p, rounds, cfg.Seed+5, cfg.Seed+6)
			if err != nil {
				return nil, err
			}
			name := "solo (§4)"
			if naive {
				name = "all-position"
			}
			t.Rows = append(t.Rows, []string{f("%.2f", eps), name, f("%.4f", st.msgErrRate)})
		}
	}
	return t, nil
}

var _ = math.Log2
