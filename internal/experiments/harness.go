// Package experiments regenerates every table and figure of the
// reproduction (see DESIGN.md §3 for the experiment index). Each
// experiment is a function from a Config to a Table; cmd/experiments
// renders them all and EXPERIMENTS.md records the measured results
// against the paper's claims.
//
// The scenario-shaped tables (T3, T4, T6, A4) are thin views over the
// internal/sweep subsystem: they declare sweep.Scenario specs and format
// the resulting records. Ablations that need non-default core.Params
// (A1–A3) drive the engines directly through runGossip.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/algorithms/gossip"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Config scales the experiment suite.
type Config struct {
	// Quick selects reduced sizes (used by tests and -short runs).
	Quick bool
	// Seed drives every random choice in the suite.
	Seed uint64
	// Workers parallelizes the simulators' per-round phases. The zero
	// value deliberately means one worker per CPU — the harness has
	// always run experiments at full machine width, and a zero-valued
	// Config must keep doing so — which differs from the engine-level
	// knobs where 0 means serial; poolWorkers performs the translation.
	// 1 = serial, n = n workers. Results are bit-identical for every
	// setting — the engines' sharded pool is deterministic — so this is
	// purely a throughput knob.
	Workers int
	// Shards overrides the pool's shard count (0 = derived from Workers).
	Shards int
	// Metrics, when non-nil, receives the suite's observation-only
	// telemetry (phase timers, decode counters, noise accounting) through
	// the sweep and engine layers. Never changes any table.
	Metrics *obs.Registry
}

// poolWorkers resolves Config.Workers (0 = one per CPU) to the engine
// package's convention (where 0 means serial).
func (c Config) poolWorkers() int {
	if c.Workers == 0 {
		return engine.AutoWorkers
	}
	return c.Workers
}

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (T0…T11, F1, A1…A4).
	ID string `json:"id"`
	// Title is a one-line description.
	Title string `json:"title"`
	// Claim restates the paper's claim being tested.
	Claim string `json:"claim"`
	// Columns and Rows hold the tabular results.
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes holds free-form observations (fit slopes, renderings).
	Notes []string `json:"notes,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "Paper claim: %s\n", t.Claim)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment is a named experiment runner.
type Experiment struct {
	ID  string
	Run func(Config) (*Table, error)
}

// All returns the full suite in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "T0", Run: T0PaperConstants},
		{ID: "T1", Run: T1BeepCodeProperty},
		{ID: "T2", Run: T2DistanceCodeProperty},
		{ID: "T3", Run: T3Phase1Membership},
		{ID: "T4", Run: T4BroadcastOverhead},
		{ID: "T5", Run: T5CongestOverhead},
		{ID: "T6", Run: T6BaselineComparison},
		{ID: "T7", Run: T7LocalBroadcast},
		{ID: "T8", Run: T8MatchingNative},
		{ID: "T9", Run: T9MatchingBeeps},
		{ID: "T10", Run: T10LowerBounds},
		{ID: "T11", Run: T11NativeVsSimulated},
		{ID: "F1", Run: F1CombinedCode},
		{ID: "A1", Run: A1RepetitionAblation},
		{ID: "A2", Run: A2CodebookAblation},
		{ID: "A3", Run: A3SoloDecodingAblation},
		{ID: "A4", Run: A4EnergyAblation},
	}
}

// --- shared workload helpers ---

// runSweep routes a table's scenario list through the sweep batch
// scheduler against an in-memory store. Jobs = 1 with the Config's
// worker knob preserves the harness's historical execution profile (one
// scenario at a time, engine phases at machine width); by the
// determinism contract the records would be bit-identical either way.
func runSweep(cfg Config, scs []sweep.Scenario) ([]sweep.Record, error) {
	recs, _, err := sweep.Run(scs, sweep.NewMemStore(), sweep.Options{
		Jobs:    1,
		Workers: cfg.poolWorkers(),
		Shards:  cfg.Shards,
		Metrics: cfg.Metrics,
	})
	return recs, err
}

// gossipRun executes the gossip workload over the Algorithm 1 runner
// with explicit (non-default) Params — the escape hatch for ablations
// whose parameterization a sweep.Scenario cannot express — and reports
// per-round error rates.
type gossipStats struct {
	beepPerRound int
	msgErrRate   float64
	memErrRate   float64
	nodeRounds   int
}

func runGossip(cfg Config, g *graph.Graph, p core.Params, rounds int, channelSeed, algSeed uint64) (gossipStats, error) {
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      p,
		ChannelSeed: channelSeed,
		AlgSeed:     algSeed,
		NoisyOwn:    true,
		Workers:     cfg.poolWorkers(),
		Shards:      cfg.Shards,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return gossipStats{}, err
	}
	res, err := runner.Run(gossip.New(g.N(), rounds), gossip.Budget(rounds))
	if err != nil {
		return gossipStats{}, err
	}
	nodeRounds := g.N() * res.SimRounds
	return gossipStats{
		beepPerRound: res.BeepRounds / max(res.SimRounds, 1),
		msgErrRate:   float64(res.MessageErrors) / float64(nodeRounds),
		memErrRate:   float64(res.MembershipErrors) / float64(nodeRounds),
		nodeRounds:   nodeRounds,
	}, nil
}

// regularGraph builds a Δ-regular graph of n nodes (falling back to the
// bounded-degree random model when nΔ is odd); the construction is
// sweep's FamilyRegular, so tables and sweeps share one graph recipe.
func regularGraph(n, delta int, seed uint64) (*graph.Graph, error) {
	return sweep.Scenario{Family: sweep.FamilyRegular, N: n, Param: delta, GraphSeed: seed}.BuildGraph()
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }
