package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// TestAllExperimentsRun smoke-tests every experiment at Quick size:
// non-empty tables, consistent column counts, renderable.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q, want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %d has %d cells for %d columns", i, len(row), len(tbl.Columns))
				}
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.Title) || !strings.Contains(out, "Paper claim:") {
				t.Error("render missing header")
			}
		})
	}
}

func cell(t *testing.T, tbl *Table, row int, col string) string {
	t.Helper()
	for i, c := range tbl.Columns {
		if c == col {
			return tbl.Rows[row][i]
		}
	}
	t.Fatalf("column %q not found in %v", col, tbl.Columns)
	return ""
}

func parseRate(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestT1CodesAreGood asserts the substance of T1: bad fractions small.
func TestT1CodesAreGood(t *testing.T) {
	tbl, err := T1BeepCodeProperty(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if r := parseRate(t, cell(t, tbl, i, "bad frac (random)")); r > 0.1 {
			t.Errorf("row %d: random code bad fraction %v", i, r)
		}
		if r := parseRate(t, cell(t, tbl, i, "bad frac (blocked)")); r > 0.1 {
			t.Errorf("row %d: blocked code bad fraction %v", i, r)
		}
	}
}

// TestT2DistanceSatisfied asserts Lemma 6 holds in every tested row.
func TestT2DistanceSatisfied(t *testing.T) {
	tbl, err := T2DistanceCodeProperty(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Rows {
		if got := cell(t, tbl, i, "satisfied"); got != "true" {
			t.Errorf("row %d: min distance below δb", i)
		}
	}
}

// TestT3T4ErrorRatesLow asserts the decoding error rates stay near zero
// across the noise sweep.
func TestT3T4ErrorRatesLow(t *testing.T) {
	t3, err := T3Phase1Membership(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range t3.Rows {
		if r := parseRate(t, cell(t, t3, i, "membership err rate")); r > 0.05 {
			t.Errorf("T3 row %d: membership error rate %v", i, r)
		}
	}
	t4, err := T4BroadcastOverhead(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range t4.Rows {
		if r := parseRate(t, cell(t, t4, i, "msg err rate")); r > 0.05 {
			t.Errorf("T4 row %d: message error rate %v", i, r)
		}
	}
}

// TestT6BaselineGapGrows asserts the headline comparison shape: the
// baseline/ours ratio grows with Δ on the χ(G²)=Θ(Δ²) instances (the
// crossover sits at small Δ where constants dominate).
func TestT6BaselineGapGrows(t *testing.T) {
	tbl, err := T6BaselineComparison(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The PG(2,q) rows come first, in increasing q.
	first := parseRate(t, cell(t, tbl, 0, "ratio"))
	second := parseRate(t, cell(t, tbl, 1, "ratio"))
	if second <= first {
		t.Errorf("ratio did not grow with Δ: %v then %v", first, second)
	}
}

// TestT7T9Correct asserts the end-to-end pipelines produced correct
// outputs.
func TestT7T9Correct(t *testing.T) {
	t7, err := T7LocalBroadcast(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range t7.Rows {
		if got := cell(t, t7, i, "correct"); got != "true" {
			t.Errorf("T7 row %d incorrect", i)
		}
	}
	t9, err := T9MatchingBeeps(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range t9.Rows {
		if got := cell(t, t9, i, "valid"); got != "true" {
			t.Errorf("T9 row %d invalid", i)
		}
	}
}

// TestA1ThresholdShape asserts the ablation shows the expected threshold:
// the smallest repetition factor fails, the largest succeeds.
func TestA1ThresholdShape(t *testing.T) {
	tbl, err := A1RepetitionAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := parseRate(t, cell(t, tbl, 0, "message err rate"))
	last := parseRate(t, cell(t, tbl, len(tbl.Rows)-1, "message err rate"))
	if first <= last {
		t.Errorf("expected errors to fall with R: first %v, last %v", first, last)
	}
	if last > 0.02 {
		t.Errorf("largest R still failing: %v", last)
	}
}

// TestA2CollisionShape asserts collisions fall as the codebook grows and
// vanish under by-ID assignment.
func TestA2CollisionShape(t *testing.T) {
	tbl, err := A2CodebookAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	smallM := parseRate(t, cell(t, tbl, 0, "membership err rate"))
	byID := parseRate(t, cell(t, tbl, len(tbl.Rows)-1, "membership err rate"))
	if smallM <= byID {
		t.Errorf("expected small-M membership errors (%v) to exceed by-ID (%v)", smallM, byID)
	}
	if byID != 0 {
		t.Errorf("by-ID assignment shows membership errors: %v", byID)
	}
}

func TestF1Rendering(t *testing.T) {
	tbl, err := F1CombinedCode(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(tbl.Notes, "\n")
	for _, want := range []string{"C(r)", "D(m)", "CD(r,m)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("figure rendering missing %q", want)
		}
	}
}
