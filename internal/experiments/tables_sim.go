package experiments

import (
	"math"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/wire"
)

// T3Phase1Membership measures Lemmas 8+9: the probability that a node's
// decoded codeword set R̃_v differs from the true R_v, across noise
// rates. A thin view over sweep records (one scenario per ε).
func T3Phase1Membership(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "Phase-1 neighborhood decoding under noise (Lemmas 8–9)",
		Claim:   "R̃_v = R_v for all v w.h.p., for any ε ∈ [0, ½) with ε-calibrated thresholds",
		Columns: []string{"n", "Δ", "ε", "node·rounds", "membership err rate", "message err rate"},
	}
	n, rounds := 64, 6
	if cfg.Quick {
		n, rounds = 24, 3
	}
	var scs []sweep.Scenario
	for i, eps := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		scs = append(scs, sweep.Scenario{
			Family: sweep.FamilyRegular, N: n, Param: 6, Epsilon: eps,
			Engine: sweep.EngineAlg1, Workload: sweep.WorkloadGossip,
			Rounds: rounds, MsgBits: 2 * wire.BitsFor(n),
			GraphSeed:   cfg.Seed + uint64(i),
			ChannelSeed: cfg.Seed + 50 + uint64(i),
			AlgSeed:     cfg.Seed + 90,
		})
	}
	recs, err := runSweep(cfg, scs)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", rec.Graph.MaxDegree), f("%.2f", rec.Spec.Epsilon),
			f("%d", rec.NodeRounds()), f("%.4f", rec.MemErrRate()), f("%.4f", rec.MsgErrRate()),
		})
	}
	t.Notes = append(t.Notes, "noise does not asymptotically change the simulation (the paper's headline): error rates stay ≈0 across ε at Θ(Δ log n) phase lengths")
	return t, nil
}

// T4BroadcastOverhead measures Theorem 11's O(Δ log n) overhead shape:
// beep rounds per simulated Broadcast CONGEST round across Δ and n
// sweeps. A thin view over sweep records: the two axis sweeps are one
// scenario batch, and every number in the table is read off a Record.
func T4BroadcastOverhead(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "Broadcast CONGEST simulation overhead (Theorem 11)",
		Claim:   "one Broadcast CONGEST round costs O(Δ log n) noisy-beep rounds, errors w.h.p. zero",
		Columns: []string{"n", "Δ", "ε", "beep rounds/sim round", "per (Δ+1)·log₂n", "msg err rate"},
	}
	const eps = 0.1
	deltas := []int{2, 4, 8, 16}
	ns := []int{32, 64, 128, 256}
	rounds := 4
	if cfg.Quick {
		deltas = []int{2, 4}
		ns = []int{32, 64}
		rounds = 2
	}
	nFixed := 64
	if cfg.Quick {
		nFixed = 32
	}

	var scs []sweep.Scenario
	for i, delta := range deltas { // Δ sweep at fixed n
		scs = append(scs, sweep.Scenario{
			Family: sweep.FamilyRegular, N: nFixed, Param: delta, Epsilon: eps,
			Engine: sweep.EngineAlg1, Workload: sweep.WorkloadGossip,
			Rounds: rounds, MsgBits: 2 * wire.BitsFor(nFixed),
			GraphSeed:   cfg.Seed + uint64(i),
			ChannelSeed: cfg.Seed + 20 + uint64(i),
			AlgSeed:     cfg.Seed + 99,
		})
	}
	for i, n := range ns { // n sweep at fixed Δ
		scs = append(scs, sweep.Scenario{
			Family: sweep.FamilyRegular, N: n, Param: 8, Epsilon: eps,
			Engine: sweep.EngineAlg1, Workload: sweep.WorkloadGossip,
			Rounds: rounds, MsgBits: 2 * wire.BitsFor(n),
			GraphSeed:   cfg.Seed + 40 + uint64(i),
			ChannelSeed: cfg.Seed + 60 + uint64(i),
			AlgSeed:     cfg.Seed + 98,
		})
	}
	recs, err := runSweep(cfg, scs)
	if err != nil {
		return nil, err
	}

	var dxs, dys []float64
	for i, rec := range recs {
		n := rec.Spec.N
		perRound := rec.BeepsPerSimRound()
		// The Δ-sweep rows label themselves with the requested Δ, the
		// n-sweep rows with the realized one — exactly as before the
		// sweep refactor.
		delta := rec.Graph.MaxDegree
		if i < len(deltas) {
			delta = rec.Spec.Param
		}
		logn := math.Log2(float64(n))
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", delta), f("%.2f", eps),
			f("%d", perRound),
			f("%.1f", float64(perRound)/(float64(rec.Graph.MaxDegree+1)*logn)),
			f("%.4f", rec.MsgErrRate()),
		})
		if i < len(deltas) {
			dxs = append(dxs, float64(rec.Spec.Param+1))
			dys = append(dys, float64(perRound))
		}
	}
	if slope, err := stats.LogLogSlope(dxs, dys); err == nil {
		t.Notes = append(t.Notes, f("log-log slope of overhead vs (Δ+1) at fixed n: %.2f (theory: 1.0)", slope))
	}
	t.Notes = append(t.Notes, "the per-(Δ+1)log n column is ≈constant across both sweeps — the Theorem 11 shape")
	return t, nil
}

// congestProbe is a trivial CONGEST workload: each node sends each
// neighbor one message per round for `rounds` rounds.
type congestProbe struct {
	env       congest.Env
	neighbors []int
	rounds    int
	seen      int
}

func (c *congestProbe) Init(env congest.Env, neighbors []int) {
	c.env = env
	c.neighbors = neighbors
	if c.rounds == 0 {
		c.rounds = 1
	}
}

func (c *congestProbe) Send(round int) []congest.Directed {
	out := make([]congest.Directed, 0, len(c.neighbors))
	for _, u := range c.neighbors {
		var w wire.Writer
		w.WriteUint(uint64(c.env.ID%2), 1)
		out = append(out, congest.Directed{To: u, Msg: w.PaddedBytes(c.env.MsgBits)})
	}
	return out
}

func (c *congestProbe) Receive(round int, in []congest.Incoming) {
	c.seen++
}

func (c *congestProbe) Done() bool  { return c.seen >= c.rounds }
func (c *congestProbe) Output() any { return c.seen }

// T5CongestOverhead measures Corollary 12: a CONGEST round costs
// O(Δ² log n) noisy-beep rounds via the adapter.
func T5CongestOverhead(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T5",
		Title:   "CONGEST simulation overhead (Corollary 12)",
		Claim:   "one CONGEST round costs O(Δ² log n) noisy-beep rounds",
		Columns: []string{"n", "Δ", "beep rounds/CONGEST round", "per Δ²·log₂n", "msg err rate"},
	}
	const eps = 0.05
	n := 48
	deltas := []int{2, 4, 8, 16}
	congestRounds := 3
	if cfg.Quick {
		n = 24
		deltas = []int{2, 4}
		congestRounds = 2
	}
	var xs, ys []float64
	for i, delta := range deltas {
		g, err := regularGraph(n, delta, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		inner := wire.BitsFor(n)
		outer := core.AdapterMsgBits(n, inner)
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(n, g.MaxDegree(), outer, eps),
			ChannelSeed: cfg.Seed + 7 + uint64(i),
			AlgSeed:     cfg.Seed + 8,
			NoisyOwn:    true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		algs := make([]congest.Algorithm, n)
		for v := range algs {
			algs[v] = &congestProbe{rounds: congestRounds}
		}
		res, err := runner.Run(core.WrapCongest(algs), core.CongestRounds(congestRounds, g.MaxDegree()))
		if err != nil {
			return nil, err
		}
		perCongest := float64(res.BeepRounds) / float64(congestRounds)
		errRate := float64(res.MessageErrors) / float64(n*res.SimRounds)
		logn := math.Log2(float64(n))
		dd := float64(g.MaxDegree())
		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", g.MaxDegree()),
			f("%.0f", perCongest),
			f("%.1f", perCongest/(dd*dd*logn)),
			f("%.4f", errRate),
		})
		xs = append(xs, dd)
		ys = append(ys, perCongest)
	}
	if slope, err := stats.LogLogSlope(xs, ys); err == nil {
		t.Notes = append(t.Notes, f("log-log slope of per-round cost vs Δ: %.2f (theory: 2.0; the cost is Δ·(Δ+1)·const·log n, whose finite-Δ slope sits below 2 — the per-Δ²·log n column is the decreasing-toward-constant view)", slope))
	}
	return t, nil
}

// T6BaselineComparison compares Algorithm 1 against the [7]/[4]-style
// distance-2-coloring TDMA baseline on the topology that realizes the
// min{n, Δ²} color count: projective-plane incidence graphs, whose square
// is the complete graph (χ(G²) = n = Θ(Δ²)). A random bounded-degree row
// is included to show the tame case where greedy coloring flatters the
// baseline.
func T6BaselineComparison(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T6",
		Title:   "Overhead vs prior-work TDMA baseline ([7], [4]) on χ(G²)=Θ(Δ²) instances",
		Claim:   "the superimposed-code simulation beats G²-coloring TDMA by Θ(min{n/Δ, Δ}) with no setup (§1.3)",
		Columns: []string{"graph", "n", "Δ", "colors", "ours (beeps/round)", "TDMA (beeps/round)", "ratio", "TDMA setup (est.)"},
	}
	const eps = 0.05
	rounds := 3
	qs := []int{3, 5, 7, 11, 13, 17, 19}
	if cfg.Quick {
		qs = []int{3, 5}
		rounds = 2
	}
	// One Algorithm-1 + one TDMA scenario per instance: the PG(2,q)
	// worst cases, then the tame random row. The instances share graph
	// seeds across engines; the per-instance message width (2·⌈log₂n⌉,
	// n derived for PG) is the sweep gossip default, left implicit.
	type instance struct {
		name string
		spec sweep.Scenario // engine-independent part
	}
	var instances []instance
	for _, q := range qs {
		instances = append(instances, instance{
			name: f("PG(2,%d)", q),
			spec: sweep.Scenario{Family: sweep.FamilyPG, Param: q},
		})
	}
	instances = append(instances, instance{
		name: "random-8-regular",
		spec: sweep.Scenario{Family: sweep.FamilyRegular, N: 64, Param: 8, GraphSeed: cfg.Seed},
	})
	var scs []sweep.Scenario
	for i, inst := range instances {
		for _, eng := range []string{sweep.EngineAlg1, sweep.EngineTDMA} {
			sc := inst.spec
			sc.Epsilon = eps
			sc.Engine = eng
			sc.Workload = sweep.WorkloadGossip
			sc.Rounds = rounds
			sc.ChannelSeed = cfg.Seed + 30 + uint64(i)
			if eng == sweep.EngineTDMA {
				sc.ChannelSeed = cfg.Seed + 31 + uint64(i)
			}
			sc.AlgSeed = cfg.Seed + 97
			scs = append(scs, sc)
		}
	}
	recs, err := runSweep(cfg, scs)
	if err != nil {
		return nil, err
	}
	for i, inst := range instances {
		ours, tdma := recs[2*i], recs[2*i+1]
		t.Rows = append(t.Rows, []string{
			inst.name, f("%d", ours.Graph.N), f("%d", ours.Graph.MaxDegree),
			f("%d", tdma.Colors),
			f("%d", ours.BeepsPerSimRound()),
			f("%d", tdma.BeepsPerSimRound()),
			f("%.1fx", float64(tdma.BeepsPerSimRound())/float64(ours.BeepsPerSimRound())),
			f("%d", tdma.SetupRounds),
		})
	}
	t.Notes = append(t.Notes,
		"on PG(2,q) incidence graphs the ratio grows ≈ linearly in Δ (the baseline pays χ(G²)=n=Θ(Δ²) color classes vs our Δ+1 factor), with the crossover at small Δ where constants dominate",
		"on random graphs greedy G²-coloring needs far fewer than Δ² colors, shrinking the gap — the paper's bound is worst-case",
		"setup column is the O(Δ⁴ log n) one-off cost [4] pays (our centralized coloring stands in for it); Algorithm 1 needs no setup at all")
	return t, nil
}
