package experiments

import (
	"repro/internal/bitstring"
	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/rng"
)

// T0PaperConstants tabulates the paper-faithful parameter sizes of §3
// (Lemmas 9/10's constant constraints) against the practical profile this
// reproduction runs, for n=256, Δ=8, γ=1.
func T0PaperConstants(cfg Config) (*Table, error) {
	const n, delta = 256, 8
	t := &Table{
		ID:      "T0",
		Title:   "Paper constants vs practical profile (n=256, Δ=8, γ=1)",
		Claim:   "Algorithm 1 uses phases of c_ε³γ(Δ+1)log n rounds with c_ε ≥ max{108, …} (§3, Lemmas 9–10)",
		Columns: []string{"ε", "c_ε", "paper phase len", "practical phase len", "paper/practical"},
	}
	for _, eps := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		sizes, err := core.PaperParams(n, delta, 1, eps)
		if err != nil {
			return nil, err
		}
		p := core.DefaultParams(n, delta, 8, eps) // γ=1: 8 = log₂ 256 message bits
		t.Rows = append(t.Rows, []string{
			f("%.2f", eps),
			f("%.0f", sizes.CEps),
			f("%.3g", sizes.PhaseLen),
			f("%d", p.PhaseLength()),
			f("%.0fx", sizes.PhaseLen/float64(p.PhaseLength())),
		})
	}
	t.Notes = append(t.Notes,
		"the paper's union-bound constants cost 10^6–10^10× more rounds than the measured-threshold profile; both are Θ(Δ log n)")
	return t, nil
}

// T1BeepCodeProperty verifies Theorem 4 / Definition 3 empirically and
// compares the beep-code length against the classic Kautz–Singleton
// superimposed code the paper's §1.4 rules out.
func T1BeepCodeProperty(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "Beep-code superimposition property (Theorem 4) and length vs Kautz–Singleton",
		Claim:   "an (a,k,1/c)-beep code of length c²ka exists whose random size-k superimpositions are decodable w.h.p.; classic k-cover-free codes need Θ(k²a) (§1.4, §2)",
		Columns: []string{"a", "k", "c", "beep len c²ka", "KS len", "bad frac (random)", "bad frac (blocked)"},
	}
	trials := 400
	if cfg.Quick {
		trials = 60
	}
	params := []struct{ a, k, c int }{
		{a: 8, k: 4, c: 4},
		{a: 8, k: 8, c: 4},
		{a: 10, k: 8, c: 4},
		{a: 10, k: 16, c: 6},
	}
	for i, pr := range params {
		b := pr.c * pr.c * pr.k * pr.a
		w := b / (pr.c * pr.k)
		d := 5 * w / pr.c
		m := 1 << uint(pr.a)

		random, err := codes.NewRandomBeepCode(b, w, m, rng.New(cfg.Seed+uint64(i)))
		if err != nil {
			return nil, err
		}
		badRandom, err := codes.SuperimpositionCheck(random, pr.k, d, trials, rng.New(cfg.Seed+100+uint64(i)))
		if err != nil {
			return nil, err
		}
		blocked, err := codes.NewBlockedBeepCode(w, pr.c*pr.k, m, cfg.Seed+200+uint64(i))
		if err != nil {
			return nil, err
		}
		badBlocked, err := codes.SuperimpositionCheck(blocked, pr.k, d, trials, rng.New(cfg.Seed+300+uint64(i)))
		if err != nil {
			return nil, err
		}
		ksLen := "-"
		if q, _, err := codes.KSParamsFor(m, pr.k); err == nil {
			ksLen = f("%d", q*q)
		}
		t.Rows = append(t.Rows, []string{
			f("%d", pr.a), f("%d", pr.k), f("%d", pr.c),
			f("%d", b), ksLen,
			f("%.4f", badRandom), f("%.4f", badBlocked),
		})
	}
	t.Notes = append(t.Notes,
		"bad fraction = share of random size-k codeword subsets whose superimposition 5δ²b/k-intersects an outside codeword",
		"the blocked pipeline construction matches the random construction (DESIGN.md substitution #3)")
	return t, nil
}

// T2DistanceCodeProperty verifies Lemma 6: random codes of length c_δ·a
// with c_δ = 12(1−2δ)⁻² have minimum distance ≥ δb.
func T2DistanceCodeProperty(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Random distance-code minimum distance (Lemma 6, δ=1/3, c_δ=108)",
		Claim:   "an (a,δ)-distance code of length c_δ·a exists for c_δ ≥ 12(1−2δ)⁻²; all codeword pairs are ≥ δb apart",
		Columns: []string{"a (msg bits)", "length 108a", "δb bound", "measured min dist", "satisfied"},
	}
	as := []int{6, 8, 10}
	if cfg.Quick {
		as = []int{6, 8}
	}
	for i, a := range as {
		length := 108 * a
		code, err := codes.NewRandomDistanceCode(a, length, rng.New(cfg.Seed+uint64(i)))
		if err != nil {
			return nil, err
		}
		min := code.MinDistance()
		bound := length / 3
		t.Rows = append(t.Rows, []string{
			f("%d", a), f("%d", length), f("%d", bound), f("%d", min), f("%v", min >= bound),
		})
	}
	return t, nil
}

// F1CombinedCode reproduces Figure 1: the combined-code layout CD(r,m) on
// a worked example.
func F1CombinedCode(cfg Config) (*Table, error) {
	code, err := codes.NewBlockedBeepCode(8, 4, 16, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dist := bitstring.New(8)
	for _, i := range []int{0, 2, 3, 6} {
		dist.Set(i)
	}
	cw := 5
	rendered, err := codes.RenderCombined(code.Codeword(cw), dist)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F1",
		Title:   "Combined code construction (Figure 1)",
		Claim:   "CD(r,m) writes the distance codeword D(m) into the positions where C(r) is 1 (Notation 7)",
		Columns: []string{"artifact"},
		Rows:    [][]string{{"see notes"}},
	}
	t.Notes = append(t.Notes, "\n"+rendered)
	return t, nil
}
