package experiments

import (
	"repro/internal/sweep"
)

// A4EnergyAblation compares the energy cost (total beeps — the scarce
// resource in the sensor networks the paper's introduction motivates) of
// Algorithm 1 against the TDMA baseline on the same workload. Round
// complexity is the paper's metric; energy is the deployment-relevant
// second axis this table adds: Algorithm 1 spends ≈W + weight(CD) beeps
// per sender per round regardless of Δ, while TDMA senders beep only in
// their own slot. A thin view over sweep records: one Algorithm-1 and
// one TDMA scenario per PG(2,q) instance, energy read off the counters.
func A4EnergyAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Energy (beeps per node per simulated round): Algorithm 1 vs TDMA",
		Claim:   "not claimed by the paper — a deployment-axis ablation: the paper's advantage is round complexity; energy is a separate trade-off",
		Columns: []string{"graph", "n", "Δ", "ours (beeps/node/round)", "TDMA (beeps/node/round)", "rounds ratio (TDMA/ours)"},
	}
	const eps = 0.05
	rounds := 3
	qs := []int{5, 11}
	if cfg.Quick {
		qs = []int{5}
		rounds = 2
	}
	var scs []sweep.Scenario
	for i, q := range qs {
		for _, eng := range []string{sweep.EngineAlg1, sweep.EngineTDMA} {
			sc := sweep.Scenario{
				Family: sweep.FamilyPG, Param: q, Epsilon: eps,
				Engine: eng, Workload: sweep.WorkloadGossip, Rounds: rounds,
				ChannelSeed: cfg.Seed + uint64(i),
				AlgSeed:     cfg.Seed + 90,
			}
			if eng == sweep.EngineTDMA {
				sc.ChannelSeed = cfg.Seed + 1 + uint64(i)
			}
			scs = append(scs, sc)
		}
	}
	recs, err := runSweep(cfg, scs)
	if err != nil {
		return nil, err
	}
	for i, q := range qs {
		ours, tdma := recs[2*i], recs[2*i+1]
		t.Rows = append(t.Rows, []string{
			f("PG(2,%d)", q), f("%d", ours.Graph.N), f("%d", ours.Graph.MaxDegree),
			f("%.0f", ours.BeepsPerNodeRound()),
			f("%.0f", tdma.BeepsPerNodeRound()),
			f("%.1fx", float64(tdma.Counters.BeepRounds)/float64(max(ours.Counters.BeepRounds, 1))),
		})
	}
	t.Notes = append(t.Notes,
		"Algorithm 1 spends ≈5× more beeps per sender (the full phase-1 codeword plus ≈half of CD is transmitted every round, ≈1.5·R·msgBits beeps, vs TDMA's ρ·(1+density·msgBits)); its Θ(min{n/Δ,Δ}) advantage is purely in *time* (last column) — a deployment choosing for battery life over latency might still prefer TDMA")
	return t, nil
}
