package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// A4EnergyAblation compares the energy cost (total beeps — the scarce
// resource in the sensor networks the paper's introduction motivates) of
// Algorithm 1 against the TDMA baseline on the same workload. Round
// complexity is the paper's metric; energy is the deployment-relevant
// second axis this table adds: Algorithm 1 spends ≈W + weight(CD) beeps
// per sender per round regardless of Δ, while TDMA senders beep only in
// their own slot.
func A4EnergyAblation(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "A4",
		Title:   "Energy (beeps per node per simulated round): Algorithm 1 vs TDMA",
		Claim:   "not claimed by the paper — a deployment-axis ablation: the paper's advantage is round complexity; energy is a separate trade-off",
		Columns: []string{"graph", "n", "Δ", "ours (beeps/node/round)", "TDMA (beeps/node/round)", "rounds ratio (TDMA/ours)"},
	}
	const eps = 0.05
	rounds := 3
	qs := []int{5, 11}
	if cfg.Quick {
		qs = []int{5}
		rounds = 2
	}
	for i, q := range qs {
		g, err := graph.ProjectivePlaneIncidence(q)
		if err != nil {
			return nil, err
		}
		n := g.N()
		msgBits := 2 * wire.BitsFor(n)

		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(n, g.MaxDegree(), msgBits, eps),
			ChannelSeed: cfg.Seed + uint64(i),
			AlgSeed:     cfg.Seed + 90,
			NoisyOwn:    true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		ours, err := runner.Run(gossipAlgs(n, rounds), rounds+2)
		if err != nil {
			return nil, err
		}

		bl, err := baseline.NewRunner(g, baseline.Config{
			MsgBits:     msgBits,
			Epsilon:     eps,
			ChannelSeed: cfg.Seed + 1 + uint64(i),
			AlgSeed:     cfg.Seed + 90,
			NoisyOwn:    true,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		tdma, err := bl.Run(gossipAlgs(n, rounds), rounds+2)
		if err != nil {
			return nil, err
		}

		perNode := func(beeps int64, simRounds int) float64 {
			return float64(beeps) / float64(n*max(simRounds, 1))
		}
		t.Rows = append(t.Rows, []string{
			f("PG(2,%d)", q), f("%d", n), f("%d", g.MaxDegree()),
			f("%.0f", perNode(ours.Beeps, ours.SimRounds)),
			f("%.0f", perNode(tdma.Beeps, tdma.SimRounds)),
			f("%.1fx", float64(tdma.BeepRounds)/float64(max(ours.BeepRounds, 1))),
		})
	}
	t.Notes = append(t.Notes,
		"Algorithm 1 spends ≈5× more beeps per sender (the full phase-1 codeword plus ≈half of CD is transmitted every round, ≈1.5·R·msgBits beeps, vs TDMA's ρ·(1+density·msgBits)); its Θ(min{n/Δ,Δ}) advantage is purely in *time* (last column) — a deployment choosing for battery life over latency might still prefer TDMA")
	return t, nil
}
