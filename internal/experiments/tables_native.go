package experiments

import (
	"repro/internal/algorithms/mis"
	"repro/internal/beepalgs"
	"repro/internal/core"
)

// T11NativeVsSimulated measures the §7 complexity gap: a problem-specific
// beeping algorithm (Afek et al.-style MIS, Δ-independent log²n-type cost)
// against the same problem solved through the generic simulation (Luby MIS
// over Algorithm 1, Θ(Δ log n) per simulated round). Both run on the
// noiseless channel so only the communication structure differs.
func T11NativeVsSimulated(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "T11",
		Title:   "Native beeping MIS vs MIS through the generic simulation (§7)",
		Claim:   "the generic simulation is optimal, yet problem-specific beeping algorithms can beat it: MIS is log^{O(1)} n natively [1] while any simulation pays Θ(Δ log n) per round",
		Columns: []string{"n", "Δ", "native beep rounds", "simulated beep rounds", "sim/native", "both valid"},
	}
	n := 64
	deltas := []int{4, 8, 16}
	if cfg.Quick {
		n = 32
		deltas = []int{4, 8}
	}
	for i, delta := range deltas {
		g, err := regularGraph(n, delta, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}

		nativeSet, nativeRounds, err := beepalgs.RunMIS(g, cfg.Seed+40+uint64(i))
		if err != nil {
			return nil, err
		}
		valid := mis.Verify(g, nativeSet) == nil

		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(n, g.MaxDegree(), mis.MsgBits(n), 0),
			ChannelSeed: cfg.Seed + 41 + uint64(i),
			AlgSeed:     cfg.Seed + 42,
			Workers:     cfg.poolWorkers(),
			Shards:      cfg.Shards,
		})
		if err != nil {
			return nil, err
		}
		res, err := runner.Run(mis.New(n), mis.MaxRounds(n))
		if err != nil {
			return nil, err
		}
		simSet := make([]bool, n)
		for v, o := range res.Outputs {
			simSet[v] = o.(bool)
		}
		valid = valid && res.AllDone && mis.Verify(g, simSet) == nil

		t.Rows = append(t.Rows, []string{
			f("%d", n), f("%d", g.MaxDegree()),
			f("%d", nativeRounds),
			f("%d", res.BeepRounds),
			f("%.0fx", float64(res.BeepRounds)/float64(nativeRounds)),
			f("%v", valid),
		})
	}
	t.Notes = append(t.Notes,
		"the native column is ≈flat in Δ while the simulated column carries the Δ+1 factor — matching lower bounds (Theorem 22) show matching-type problems cannot enjoy such a shortcut")
	return t, nil
}
