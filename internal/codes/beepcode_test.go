package codes

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBlockedBeepCodeShape(t *testing.T) {
	c, err := NewBlockedBeepCode(16, 8, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length() != 128 || c.Weight() != 16 || c.NumCodewords() != 100 || c.BlockSize() != 8 {
		t.Fatalf("shape: len=%d w=%d m=%d bs=%d", c.Length(), c.Weight(), c.NumCodewords(), c.BlockSize())
	}
	for cw := 0; cw < 100; cw++ {
		s := c.Codeword(cw)
		if s.Ones() != 16 {
			t.Fatalf("codeword %d has weight %d, want 16 (Definition 3 first property)", cw, s.Ones())
		}
		// Exactly one 1 per block.
		for b := 0; b < 16; b++ {
			ones := 0
			for o := 0; o < 8; o++ {
				if s.Get(b*8 + o) {
					ones++
				}
			}
			if ones != 1 {
				t.Fatalf("codeword %d block %d has %d ones", cw, b, ones)
			}
		}
	}
}

func TestBlockedBeepCodeValidation(t *testing.T) {
	tests := []struct{ w, bs, m int }{
		{w: 0, bs: 8, m: 10},
		{w: 4, bs: 1, m: 10},
		{w: 4, bs: 8, m: 0},
	}
	for _, tt := range tests {
		if _, err := NewBlockedBeepCode(tt.w, tt.bs, tt.m, 1); err == nil {
			t.Errorf("NewBlockedBeepCode(%d,%d,%d) did not fail", tt.w, tt.bs, tt.m)
		}
	}
}

func TestBlockedBeepCodeDeterministicAndSeeded(t *testing.T) {
	a, _ := NewBlockedBeepCode(8, 16, 50, 42)
	b, _ := NewBlockedBeepCode(8, 16, 50, 42)
	c, _ := NewBlockedBeepCode(8, 16, 50, 43)
	differs := false
	for cw := 0; cw < 50; cw++ {
		if !a.Codeword(cw).Equal(b.Codeword(cw)) {
			t.Fatal("same seed produced different codewords")
		}
		if !a.Codeword(cw).Equal(c.Codeword(cw)) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds produced identical codebooks")
	}
}

func TestBlockedBeepCodePositionMatchesCodeword(t *testing.T) {
	c, _ := NewBlockedBeepCode(12, 6, 20, 5)
	for cw := 0; cw < 20; cw++ {
		s := c.Codeword(cw)
		pos := s.OnesPositions()
		for i, p := range pos {
			if c.Position(cw, i) != p {
				t.Fatalf("Position(%d,%d) = %d, codeword says %d", cw, i, c.Position(cw, i), p)
			}
		}
	}
}

func TestBlockedIntersectionDistribution(t *testing.T) {
	// Pairwise intersections should concentrate near W/BlockSize.
	const w, bs, m = 64, 16, 200
	c, _ := NewBlockedBeepCode(w, bs, m, 9)
	total, pairs := 0, 0
	for a := 0; a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			total += PairwiseIntersection(c, a, b)
			pairs++
		}
	}
	mean := float64(total) / float64(pairs)
	want := float64(w) / float64(bs) // 4
	if mean < want/2 || mean > want*2 {
		t.Errorf("mean pairwise intersection = %v, want ≈%v", mean, want)
	}
}

func TestRandomBeepCodeShape(t *testing.T) {
	r := rng.New(11)
	c, err := NewRandomBeepCode(256, 16, 64, r)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length() != 256 || c.Weight() != 16 || c.NumCodewords() != 64 {
		t.Fatal("shape wrong")
	}
	for cw := 0; cw < 64; cw++ {
		s := c.Codeword(cw)
		if s.Ones() != 16 {
			t.Fatalf("codeword %d weight = %d", cw, s.Ones())
		}
		// Positions strictly increasing (BeepCode contract).
		for i := 1; i < 16; i++ {
			if c.Position(cw, i) <= c.Position(cw, i-1) {
				t.Fatalf("codeword %d positions not increasing", cw)
			}
		}
	}
}

func TestRandomBeepCodeValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewRandomBeepCode(10, 11, 5, r); err == nil {
		t.Error("w > b did not fail")
	}
	if _, err := NewRandomBeepCode(10, 0, 5, r); err == nil {
		t.Error("w = 0 did not fail")
	}
	if _, err := NewRandomBeepCode(10, 2, 0, r); err == nil {
		t.Error("m = 0 did not fail")
	}
}

// TestTheorem4Property verifies Definition 3's second criterion empirically
// for Theorem 4's construction: a superimposition of k random codewords
// rarely d-intersects an outside codeword, for d = 5·(weight)/c as in the
// theorem (weight w = b/(c·k), d = 5b/(c²k) = 5w/c).
func TestTheorem4Property(t *testing.T) {
	const (
		c      = 4                   // the theorem's 1/c density parameter
		k      = 8                   // superimposition size
		a      = 8                   // "message" bits: M = 2^a codewords
		b      = c * c * k * a       // Theorem 4 length
		w      = b / (c * k)         // = c·a = 32
		d      = 5 * b / (c * c * k) // = 5a·... the 5δ²b/k threshold = 5w/c
		trials = 300
	)
	code, err := NewRandomBeepCode(b, w, 1<<a, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := SuperimpositionCheck(code, k, d, trials, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 4 promises a 2^{-2a}-fraction of bad subsets for its (large)
	// constants; with these small parameters we just require rarity.
	if bad > 0.05 {
		t.Errorf("bad-superimposition fraction = %v, want <= 0.05", bad)
	}
}

func TestTheorem4PropertyBlockedVariant(t *testing.T) {
	// The blocked construction must enjoy the same decodability property
	// (DESIGN.md substitution #3).
	const (
		k      = 8
		w      = 32
		bs     = 4 * k // density 1/c with c=4
		d      = 5 * w / 4
		trials = 300
	)
	code, err := NewBlockedBeepCode(w, bs, 256, 15)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := SuperimpositionCheck(code, k, d, trials, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0.05 {
		t.Errorf("bad-superimposition fraction = %v, want <= 0.05", bad)
	}
}

func TestSuperimpositionCheckDetectsBadCodes(t *testing.T) {
	// A code where all codewords share their 1-positions is maximally bad:
	// every superimposition d-intersects everything for d <= w.
	c, _ := NewBlockedBeepCode(8, 2, 16, 1)
	// BlockSize 2 gives ~50% pairwise collisions; with k=8 the
	// superimposition covers almost every slot, so d = weight must be hit
	// often. We use d = 5 (out of 8).
	bad, err := SuperimpositionCheck(c, 8, 5, 100, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if bad < 0.9 {
		t.Errorf("dense code reported bad fraction %v, want >= 0.9", bad)
	}
}

func TestSuperimpositionCheckValidation(t *testing.T) {
	c, _ := NewBlockedBeepCode(8, 4, 16, 1)
	if _, err := SuperimpositionCheck(c, 16, 3, 10, rng.New(1)); err == nil {
		t.Error("k = M did not fail")
	}
	if _, err := SuperimpositionCheck(c, 0, 3, 10, rng.New(1)); err == nil {
		t.Error("k = 0 did not fail")
	}
	if _, err := SuperimpositionCheck(c, 4, 3, 0, rng.New(1)); err == nil {
		t.Error("trials = 0 did not fail")
	}
}

func TestPairwiseIntersectionAgainstBitstrings(t *testing.T) {
	r := rng.New(21)
	c, _ := NewRandomBeepCode(128, 16, 32, r)
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			want := c.Codeword(a).AndCount(c.Codeword(b))
			if got := PairwiseIntersection(c, a, b); got != want {
				t.Fatalf("PairwiseIntersection(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPropertyBlockedOffsetsInRange(t *testing.T) {
	f := func(seed uint64, cwRaw, blockRaw uint16) bool {
		c, err := NewBlockedBeepCode(32, 24, 1024, seed)
		if err != nil {
			return false
		}
		cw := int(cwRaw) % 1024
		block := int(blockRaw) % 32
		off := c.Offset(cw, block)
		pos := c.Position(cw, block)
		return off >= 0 && off < 24 && pos == block*24+off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBlockedTablesMatchHashDefinition: the precomputed position/offset
// tables and cached masks must agree with the PRG definition (HashOffset)
// for every (codeword, block) pair.
func TestBlockedTablesMatchHashDefinition(t *testing.T) {
	c, err := NewBlockedBeepCode(24, 10, 64, 0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	for cw := 0; cw < c.NumCodewords(); cw++ {
		posRow, offRow := c.PositionRow(cw), c.OffsetRow(cw)
		mask := c.Mask(cw)
		if mask.Ones() != c.Weight() {
			t.Fatalf("cw %d: mask weight %d, want %d", cw, mask.Ones(), c.Weight())
		}
		for i := 0; i < c.Weight(); i++ {
			off := c.HashOffset(cw, i)
			if int(offRow[i]) != off || c.Offset(cw, i) != off {
				t.Fatalf("cw %d block %d: offset table %d, hash %d", cw, i, offRow[i], off)
			}
			pos := i*c.BlockSize() + off
			if int(posRow[i]) != pos || c.Position(cw, i) != pos {
				t.Fatalf("cw %d block %d: position table %d, hash %d", cw, i, posRow[i], pos)
			}
			if !mask.Get(pos) {
				t.Fatalf("cw %d block %d: mask misses position %d", cw, i, pos)
			}
		}
	}
}

// TestBlockedBucketsMatchOffsets: every (block, offset) collision bucket
// must contain exactly the codewords whose offset table says so, in
// ascending order.
func TestBlockedBucketsMatchOffsets(t *testing.T) {
	c, err := NewBlockedBeepCode(12, 6, 50, 0xabcd)
	if err != nil {
		t.Fatal(err)
	}
	for block := 0; block < c.Weight(); block++ {
		for off := 0; off < c.BlockSize(); off++ {
			var want []int32
			for cw := 0; cw < c.NumCodewords(); cw++ {
				if c.Offset(cw, block) == off {
					want = append(want, int32(cw))
				}
			}
			got := c.Bucket(block, off)
			if len(got) != len(want) {
				t.Fatalf("block %d off %d: bucket %v, want %v", block, off, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("block %d off %d: bucket %v, want %v", block, off, got, want)
				}
			}
		}
	}
}

// TestCodewordIndependentOfMask: Codeword must return an owned copy, not
// the shared cached mask.
func TestCodewordIndependentOfMask(t *testing.T) {
	bc, err := NewBlockedBeepCode(8, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRandomBeepCode(64, 8, 10, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []BeepCode{bc, rc} {
		cw := c.Codeword(3)
		cw.Reset()
		if got := c.Codeword(3).Ones(); got != c.Weight() {
			t.Errorf("%T: mutating Codeword corrupted the cache (weight %d)", c, got)
		}
	}
}

func BenchmarkBlockedPosition(b *testing.B) {
	c, _ := NewBlockedBeepCode(512, 128, 4096, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Position(i%4096, i%512)
	}
}
