package codes

import (
	"fmt"

	"repro/internal/bitstring"
	"repro/internal/rng"
	"repro/internal/wire"
)

// DistanceCode encodes fixed-width messages into codewords far apart in
// Hamming distance (Definition 5), decoded from partially-trusted
// observations.
//
// Decode receives the observed bits obs (one per codeword position) and a
// reliability mask solo: position j is "solo" when the §4 analysis
// guarantees it carries only the sender's bit plus channel noise (no other
// neighbor of the listener beeps there). Decoders weight solo positions and
// fall back to the unreliable ones only when necessary.
type DistanceCode interface {
	// MessageBits returns the message width a in bits.
	MessageBits() int
	// Length returns the codeword length in bits.
	Length() int
	// Encode maps a message (little-endian bit packing, at least
	// MessageBits bits significant) to its codeword.
	Encode(msg []byte) *bitstring.BitString
	// Decode estimates the transmitted message from observation obs with
	// reliability mask solo. Both must have Length() bits.
	Decode(obs, solo *bitstring.BitString) []byte
}

// RepetitionCode is the pipeline's practical distance code (substitution
// #4 in DESIGN.md): each message bit is carried by Reps positions assigned
// via a fixed pseudorandom permutation, and decoded by per-bit majority
// over solo positions. Distinct messages differ in at least Reps positions.
type RepetitionCode struct {
	msgBits int
	reps    int
	bitFor  []int32 // position -> message bit index
	byBit   [][]int32
	// fallbackNum/fallbackDen: when a bit has no solo positions, declare 1
	// only if ones > (num/den)·count over all its positions. The threshold
	// is above 1/2 because non-solo interference is one-sided (a colliding
	// beep can only turn a 0 into a 1, never the reverse).
	fallbackNum, fallbackDen int
}

// NewRepetitionCode builds a repetition distance code with msgBits message
// bits and reps positions per bit, using seed for the position permutation.
func NewRepetitionCode(msgBits, reps int, seed uint64) (*RepetitionCode, error) {
	if msgBits <= 0 || reps <= 0 {
		return nil, fmt.Errorf("codes: invalid repetition code (msgBits=%d reps=%d)", msgBits, reps)
	}
	length := msgBits * reps
	perm := rng.New(seed).Perm(length)
	c := &RepetitionCode{
		msgBits:     msgBits,
		reps:        reps,
		bitFor:      make([]int32, length),
		byBit:       make([][]int32, msgBits),
		fallbackNum: 7,
		fallbackDen: 10,
	}
	for pos, p := range perm {
		bit := int32(p % msgBits)
		c.bitFor[pos] = bit
		c.byBit[bit] = append(c.byBit[bit], int32(pos))
	}
	return c, nil
}

// MessageBits returns the message width.
func (c *RepetitionCode) MessageBits() int { return c.msgBits }

// Length returns msgBits·reps.
func (c *RepetitionCode) Length() int { return c.msgBits * c.reps }

// Reps returns the number of positions per message bit.
func (c *RepetitionCode) Reps() int { return c.reps }

// BitFor returns the message bit index carried by codeword position pos —
// the permutation table callers use to scatter an encoding without
// materializing the intermediate codeword.
func (c *RepetitionCode) BitFor(pos int) int { return int(c.bitFor[pos]) }

// Encode maps msg to its codeword.
func (c *RepetitionCode) Encode(msg []byte) *bitstring.BitString {
	out := bitstring.New(c.Length())
	for pos := range c.bitFor {
		if wire.Bit(msg, int(c.bitFor[pos])) {
			out.Set(pos)
		}
	}
	return out
}

// Decode recovers the message bit-by-bit: majority over solo positions,
// falling back to a one-sided-biased threshold over all positions for bits
// with no solo coverage.
func (c *RepetitionCode) Decode(obs, solo *bitstring.BitString) []byte {
	return c.DecodeInto(obs, solo, make([]byte, (c.msgBits+7)/8))
}

// DecodeInto is Decode writing into a caller-provided buffer, which must
// hold ⌈MessageBits/8⌉ bytes; it is fully overwritten and returned.
func (c *RepetitionCode) DecodeInto(obs, solo *bitstring.BitString, out []byte) []byte {
	out = out[:(c.msgBits+7)/8]
	for i := range out {
		out[i] = 0
	}
	for bit := 0; bit < c.msgBits; bit++ {
		ones, zeros := 0, 0
		for _, pos := range c.byBit[bit] {
			if !solo.Get(int(pos)) {
				continue
			}
			if obs.Get(int(pos)) {
				ones++
			} else {
				zeros++
			}
		}
		var value bool
		if ones+zeros > 0 {
			value = ones > zeros
		} else {
			// No solo position for this bit: use every position with a
			// threshold biased against collision-induced false 1s.
			total := 0
			for _, pos := range c.byBit[bit] {
				total++
				if obs.Get(int(pos)) {
					ones++
				}
			}
			value = ones*c.fallbackDen > c.fallbackNum*total
		}
		if value {
			wire.SetBit(out, bit, true)
		}
	}
	return out
}

// DecodeScatteredInto is DecodeInto fused with the ỹ gather: codeword
// position j is read directly from transcript bit y[positions[j]]
// instead of from a pre-gathered observation string, so the per-round
// decode touches the transcript words once with no intermediate buffer.
// It produces byte-identical output to GatherInto followed by
// DecodeInto. positions must hold Length() in-range transcript indices;
// solo must have Length() bits; out must hold ⌈MessageBits/8⌉ bytes.
func (c *RepetitionCode) DecodeScatteredInto(y *bitstring.BitString, positions []int32, solo *bitstring.BitString, out []byte) []byte {
	out = out[:(c.msgBits+7)/8]
	for i := range out {
		out[i] = 0
	}
	yw, sw := y.Words(), solo.Words()
	for bit := 0; bit < c.msgBits; bit++ {
		row := c.byBit[bit]
		ones, zeros := 0, 0
		for _, j := range row {
			if sw[j>>6]&(1<<(uint(j)&63)) == 0 {
				continue
			}
			p := positions[j]
			if yw[p>>6]&(1<<(uint(p)&63)) != 0 {
				ones++
			} else {
				zeros++
			}
		}
		var value bool
		if ones+zeros > 0 {
			value = ones > zeros
		} else {
			// No solo position for this bit: use every position with the
			// one-sided fallback threshold (see DecodeInto).
			for _, j := range row {
				p := positions[j]
				if yw[p>>6]&(1<<(uint(p)&63)) != 0 {
					ones++
				}
			}
			value = ones*c.fallbackDen > c.fallbackNum*len(row)
		}
		if value {
			wire.SetBit(out, bit, true)
		}
	}
	return out
}

// FallbackBits counts the message bits the decoder would resolve via
// the best-effort fallback threshold for reliability mask solo — bits
// with zero solo-covered positions. It is a pure function of solo (the
// fallback branch in DecodeInto/DecodeScatteredInto fires iff a bit's
// whole row is non-solo), so telemetry can account fallbacks without
// touching the decode hot path. solo must have Length() bits.
func (c *RepetitionCode) FallbackBits(solo *bitstring.BitString) int {
	sw := solo.Words()
	fallbacks := 0
	for bit := 0; bit < c.msgBits; bit++ {
		covered := false
		for _, j := range c.byBit[bit] {
			if sw[j>>6]&(1<<(uint(j)&63)) != 0 {
				covered = true
				break
			}
		}
		if !covered {
			fallbacks++
		}
	}
	return fallbacks
}

var _ DistanceCode = (*RepetitionCode)(nil)

// maxRandomCodeBits caps the message space of RandomDistanceCode; its
// decoder and storage are exponential in the message width by design
// (matching the paper's brute-force decoding).
const maxRandomCodeBits = 20

// RandomDistanceCode is Lemma 6's construction: 2^a codewords of length b
// with i.i.d. uniform bits, decoded by minimum Hamming distance restricted
// to solo positions. Message spaces are capped at 2^20.
type RandomDistanceCode struct {
	msgBits   int
	length    int
	codewords []*bitstring.BitString
}

// NewRandomDistanceCode draws a random (msgBits, ·)-distance code of the
// given length from stream r.
func NewRandomDistanceCode(msgBits, length int, r *rng.Stream) (*RandomDistanceCode, error) {
	if msgBits <= 0 || msgBits > maxRandomCodeBits {
		return nil, fmt.Errorf("codes: random distance code msgBits=%d outside (0,%d]", msgBits, maxRandomCodeBits)
	}
	if length <= 0 {
		return nil, fmt.Errorf("codes: random distance code length=%d", length)
	}
	m := 1 << uint(msgBits)
	c := &RandomDistanceCode{msgBits: msgBits, length: length, codewords: make([]*bitstring.BitString, m)}
	for i := range c.codewords {
		s := bitstring.New(length)
		for j := 0; j < length; j++ {
			if r.Bool(0.5) {
				s.Set(j)
			}
		}
		c.codewords[i] = s
	}
	return c, nil
}

// MessageBits returns a.
func (c *RandomDistanceCode) MessageBits() int { return c.msgBits }

// Length returns b.
func (c *RandomDistanceCode) Length() int { return c.length }

// Encode maps msg to its codeword.
func (c *RandomDistanceCode) Encode(msg []byte) *bitstring.BitString {
	return c.codewords[c.index(msg)].Clone()
}

// Decode returns the message whose codeword minimizes Hamming distance to
// obs over solo positions (ties broken toward the smaller message). If no
// position is solo, the distance is taken over all positions.
func (c *RandomDistanceCode) Decode(obs, solo *bitstring.BitString) []byte {
	mask := solo
	if solo.Ones() == 0 {
		mask = solo.Not() // all positions
	}
	best, bestDist := 0, c.length+1
	for i, cw := range c.codewords {
		d := cw.Xor(obs).AndCount(mask)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	out := make([]byte, (c.msgBits+7)/8)
	for bit := 0; bit < c.msgBits; bit++ {
		if best&(1<<uint(bit)) != 0 {
			wire.SetBit(out, bit, true)
		}
	}
	return out
}

// MinDistance computes the exact minimum pairwise Hamming distance of the
// code, the quantity Lemma 6 lower-bounds by δb. It is quadratic in the
// codebook size.
func (c *RandomDistanceCode) MinDistance() int {
	min := c.length + 1
	for i := 0; i < len(c.codewords); i++ {
		for j := i + 1; j < len(c.codewords); j++ {
			if d := c.codewords[i].HammingDistance(c.codewords[j]); d < min {
				min = d
			}
		}
	}
	return min
}

func (c *RandomDistanceCode) index(msg []byte) int {
	idx := 0
	for bit := 0; bit < c.msgBits; bit++ {
		if wire.Bit(msg, bit) {
			idx |= 1 << uint(bit)
		}
	}
	return idx
}

var _ DistanceCode = (*RandomDistanceCode)(nil)
