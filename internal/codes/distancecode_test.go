package codes

import (
	"testing"

	"repro/internal/bitstring"
	"repro/internal/rng"
	"repro/internal/wire"
)

func encodeMsg(bits int, value uint64) []byte {
	var w wire.Writer
	w.WriteUint(value, bits)
	return w.PaddedBytes(bits)
}

func TestRepetitionCodeShape(t *testing.T) {
	c, err := NewRepetitionCode(16, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.MessageBits() != 16 || c.Length() != 144 || c.Reps() != 9 {
		t.Fatalf("shape: bits=%d len=%d reps=%d", c.MessageBits(), c.Length(), c.Reps())
	}
}

func TestRepetitionCodeValidation(t *testing.T) {
	if _, err := NewRepetitionCode(0, 3, 1); err == nil {
		t.Error("msgBits=0 did not fail")
	}
	if _, err := NewRepetitionCode(4, 0, 1); err == nil {
		t.Error("reps=0 did not fail")
	}
}

func TestRepetitionEncodeWeight(t *testing.T) {
	c, _ := NewRepetitionCode(8, 5, 2)
	// Message with 3 ones -> codeword with exactly 15 ones.
	msg := encodeMsg(8, 0b10110000)
	if got := c.Encode(msg).Ones(); got != 15 {
		t.Errorf("codeword weight = %d, want 15", got)
	}
	if got := c.Encode(encodeMsg(8, 0)).Ones(); got != 0 {
		t.Errorf("all-zero message codeword weight = %d", got)
	}
}

func TestRepetitionRoundTripClean(t *testing.T) {
	c, _ := NewRepetitionCode(12, 7, 3)
	allSolo := bitstring.New(c.Length()).Not()
	for _, v := range []uint64{0, 1, 0xfff, 0xa5a, 0x0f0} {
		msg := encodeMsg(12, v)
		got := c.Decode(c.Encode(msg), allSolo)
		if !wire.Equal(got, msg, 12) {
			t.Errorf("round trip of %#x failed: got %v", v, got)
		}
	}
}

func TestRepetitionDecodeUnderNoise(t *testing.T) {
	// Flip 10% of positions uniformly; majority over 15 reps must recover.
	c, _ := NewRepetitionCode(16, 15, 4)
	allSolo := bitstring.New(c.Length()).Not()
	r := rng.New(5)
	failures := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := r.Uint64() & 0xffff
		msg := encodeMsg(16, v)
		obs := c.Encode(msg)
		fs := rng.NewFlipSampler(r, 0.10)
		for {
			p, ok := fs.Next(c.Length())
			if !ok {
				break
			}
			obs.Flip(p)
		}
		if !wire.Equal(c.Decode(obs, allSolo), msg, 16) {
			failures++
		}
	}
	if failures > 2 {
		t.Errorf("%d/%d decode failures at ε=0.10, want <= 2", failures, trials)
	}
}

func TestRepetitionDecodeWithOneSidedCorruption(t *testing.T) {
	// Non-solo positions are forced to 1 (collision semantics: another
	// beeping node can only add energy). Solo-restricted decoding must
	// ignore them entirely.
	c, _ := NewRepetitionCode(8, 9, 6)
	r := rng.New(7)
	for trial := 0; trial < 100; trial++ {
		v := r.Uint64() & 0xff
		msg := encodeMsg(8, v)
		obs := c.Encode(msg)
		solo := bitstring.New(c.Length()).Not()
		// Corrupt a third of positions: set to 1, mark non-solo.
		for i := 0; i < c.Length(); i += 3 {
			obs.Set(i)
			solo.ClearBit(i)
		}
		if got := c.Decode(obs, solo); !wire.Equal(got, msg, 8) {
			t.Fatalf("trial %d: decode with one-sided corruption failed for %#x", trial, v)
		}
	}
}

func TestRepetitionFallbackWhenNoSolo(t *testing.T) {
	// With no solo positions at all, the biased fallback must still decode
	// a clean observation (ones fraction is 0 or 1 per bit).
	c, _ := NewRepetitionCode(8, 9, 8)
	noSolo := bitstring.New(c.Length())
	msg := encodeMsg(8, 0xc3)
	if got := c.Decode(c.Encode(msg), noSolo); !wire.Equal(got, msg, 8) {
		t.Errorf("fallback decode failed: got %v", got)
	}
}

// TestDecodeIntoMatchesDecode: DecodeInto must fully overwrite its buffer
// and agree with Decode on noisy observations.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	c, err := NewRepetitionCode(12, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	buf := make([]byte, (c.MessageBits()+7)/8)
	for trial := 0; trial < 50; trial++ {
		obs := bitstring.New(c.Length())
		solo := bitstring.New(c.Length())
		for j := 0; j < c.Length(); j++ {
			if r.Bool(0.4) {
				obs.Set(j)
			}
			if r.Bool(0.6) {
				solo.Set(j)
			}
		}
		for i := range buf {
			buf[i] = 0xff // stale garbage DecodeInto must clear
		}
		want := c.Decode(obs, solo)
		got := c.DecodeInto(obs, solo, buf)
		if !wire.Equal(got, want, c.MessageBits()) {
			t.Fatalf("trial %d: DecodeInto %x, Decode %x", trial, got, want)
		}
	}
}

func TestRandomDistanceCodeMinDistance(t *testing.T) {
	// Lemma 6 with δ = 1/3, c_δ = 12(1-2δ)^{-2} = 108: length 108a gives
	// min distance >= b/3 w.h.p. Verified exhaustively for a = 8.
	const a = 8
	length := 108 * a
	c, err := NewRandomDistanceCode(a, length, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	min := c.MinDistance()
	if min < length/3 {
		t.Errorf("min distance = %d < δb = %d (Lemma 6 violated)", min, length/3)
	}
}

func TestRandomDistanceCodeValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewRandomDistanceCode(0, 10, r); err == nil {
		t.Error("msgBits=0 did not fail")
	}
	if _, err := NewRandomDistanceCode(21, 10, r); err == nil {
		t.Error("msgBits=21 did not fail (cap)")
	}
	if _, err := NewRandomDistanceCode(4, 0, r); err == nil {
		t.Error("length=0 did not fail")
	}
}

func TestRandomDistanceCodeRoundTrip(t *testing.T) {
	c, _ := NewRandomDistanceCode(8, 96, rng.New(10))
	allSolo := bitstring.New(96).Not()
	for v := uint64(0); v < 256; v += 17 {
		msg := encodeMsg(8, v)
		if got := c.Decode(c.Encode(msg), allSolo); !wire.Equal(got, msg, 8) {
			t.Errorf("round trip of %#x failed", v)
		}
	}
}

func TestRandomDistanceCodeDecodeUnderNoise(t *testing.T) {
	c, _ := NewRandomDistanceCode(8, 96, rng.New(11))
	allSolo := bitstring.New(96).Not()
	r := rng.New(12)
	failures := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := r.Uint64() & 0xff
		msg := encodeMsg(8, v)
		obs := c.Encode(msg)
		fs := rng.NewFlipSampler(r, 0.15)
		for {
			p, ok := fs.Next(96)
			if !ok {
				break
			}
			obs.Flip(p)
		}
		if !wire.Equal(c.Decode(obs, allSolo), msg, 8) {
			failures++
		}
	}
	if failures > 2 {
		t.Errorf("%d/%d min-distance decode failures at ε=0.15", failures, trials)
	}
}

func TestRandomDistanceCodeSoloRestriction(t *testing.T) {
	// Distance restricted to solo positions: corrupting only non-solo
	// positions must never change the decoding.
	c, _ := NewRandomDistanceCode(6, 72, rng.New(13))
	msg := encodeMsg(6, 0x2a)
	obs := c.Encode(msg)
	solo := bitstring.New(72).Not()
	for i := 0; i < 72; i += 2 {
		obs.Flip(i)
		solo.ClearBit(i)
	}
	if got := c.Decode(obs, solo); !wire.Equal(got, msg, 6) {
		t.Errorf("solo-restricted decode failed: got %v", got)
	}
}

func TestRandomDistanceCodeNoSoloFallsBackToAll(t *testing.T) {
	c, _ := NewRandomDistanceCode(6, 72, rng.New(14))
	msg := encodeMsg(6, 0x15)
	obs := c.Encode(msg)
	noSolo := bitstring.New(72)
	if got := c.Decode(obs, noSolo); !wire.Equal(got, msg, 6) {
		t.Errorf("no-solo fallback decode failed: got %v", got)
	}
}

func BenchmarkRepetitionDecode(b *testing.B) {
	c, _ := NewRepetitionCode(32, 15, 1)
	allSolo := bitstring.New(c.Length()).Not()
	obs := c.Encode(encodeMsg(32, 0xdeadbeef))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Decode(obs, allSolo)
	}
}

func BenchmarkRandomDistanceDecode(b *testing.B) {
	c, _ := NewRandomDistanceCode(10, 120, rng.New(1))
	allSolo := bitstring.New(120).Not()
	obs := c.Encode(encodeMsg(10, 123))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Decode(obs, allSolo)
	}
}

// TestFallbackBitsMatchesDecodeBranch pins FallbackBits to the decoder:
// a bit counts as fallback iff DecodeInto's solo-majority loop sees
// zero covered positions for it. Cross-checked by re-deriving coverage
// from the public BitFor table under assorted solo masks.
func TestFallbackBitsMatchesDecodeBranch(t *testing.T) {
	c, err := NewRepetitionCode(16, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	masks := map[string]*bitstring.BitString{
		"none": bitstring.New(c.Length()),
		"all":  bitstring.New(c.Length()).Not(),
	}
	sparse := bitstring.New(c.Length())
	for j := 0; j < c.Length(); j += 7 {
		sparse.Set(j)
	}
	masks["sparse"] = sparse
	for label, solo := range masks {
		covered := make([]bool, c.MessageBits())
		for j := 0; j < c.Length(); j++ {
			if solo.Get(j) {
				covered[c.BitFor(j)] = true
			}
		}
		want := 0
		for _, cov := range covered {
			if !cov {
				want++
			}
		}
		if got := c.FallbackBits(solo); got != want {
			t.Errorf("%s: FallbackBits = %d, want %d", label, got, want)
		}
	}
	if got := c.FallbackBits(bitstring.New(c.Length())); got != c.MessageBits() {
		t.Errorf("empty solo: FallbackBits = %d, want every bit (%d)", got, c.MessageBits())
	}
	if got := c.FallbackBits(bitstring.New(c.Length()).Not()); got != 0 {
		t.Errorf("full solo: FallbackBits = %d, want 0", got)
	}
}
