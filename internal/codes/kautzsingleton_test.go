package codes

import (
	"sort"
	"testing"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

func TestPrimeHelpers(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 101}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	for _, c := range []int{-1, 0, 1, 4, 9, 100} {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
	tests := []struct{ in, want int }{
		{in: 0, want: 2},
		{in: 2, want: 2},
		{in: 4, want: 5},
		{in: 14, want: 17},
		{in: 90, want: 97},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.in); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestKautzSingletonShape(t *testing.T) {
	c, err := NewKautzSingleton(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Length() != 49 || c.Weight() != 7 || c.NumCodewords() != 49 {
		t.Fatalf("shape: len=%d w=%d m=%d", c.Length(), c.Weight(), c.NumCodewords())
	}
	for cw := 0; cw < c.NumCodewords(); cw++ {
		s := c.Codeword(cw)
		if s.Ones() != 7 {
			t.Fatalf("codeword %d weight = %d", cw, s.Ones())
		}
		// One position per block.
		for b := 0; b < 7; b++ {
			p := c.Position(cw, b)
			if p < b*7 || p >= (b+1)*7 {
				t.Fatalf("codeword %d position %d outside block %d", cw, p, b)
			}
		}
	}
}

func TestKautzSingletonValidation(t *testing.T) {
	if _, err := NewKautzSingleton(6, 2); err == nil {
		t.Error("composite q did not fail")
	}
	if _, err := NewKautzSingleton(7, 0); err == nil {
		t.Error("deg=0 did not fail")
	}
	if _, err := NewKautzSingleton(251, 5); err == nil {
		t.Error("oversized codebook did not fail")
	}
}

func TestKautzSingletonIntersectionBound(t *testing.T) {
	// Reed–Solomon guarantee: distinct degree-<2 polynomials agree on at
	// most 1 point, so codewords intersect in <= 1 position. Exhaustive.
	c, _ := NewKautzSingleton(7, 2)
	for a := 0; a < c.NumCodewords(); a++ {
		for b := a + 1; b < c.NumCodewords(); b++ {
			if got := PairwiseIntersection(c, a, b); got > 1 {
				t.Fatalf("codewords %d,%d intersect in %d positions, want <= 1", a, b, got)
			}
		}
	}
}

func TestKautzSingletonCoverFree(t *testing.T) {
	c, _ := NewKautzSingleton(11, 2)
	k := c.CoverFreeK() // (11-1)/1 = 10
	if k != 10 {
		t.Fatalf("CoverFreeK = %d, want 10", k)
	}
	// With k codewords covering <= k positions of an outside codeword of
	// weight 11, superimpositions of size k never fully cover: check that
	// the weight-many-intersection never happens over samples.
	bad, err := SuperimpositionCheck(c, k, c.Weight(), 50, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("cover-free violated: bad fraction %v", bad)
	}
}

func TestKautzSingletonDeg1Disjoint(t *testing.T) {
	c, _ := NewKautzSingleton(5, 1)
	// Degree-0 polynomials are constants: codewords are pairwise disjoint.
	for a := 0; a < c.NumCodewords(); a++ {
		for b := a + 1; b < c.NumCodewords(); b++ {
			if PairwiseIntersection(c, a, b) != 0 {
				t.Fatalf("constant codewords %d,%d intersect", a, b)
			}
		}
	}
	if c.CoverFreeK() != c.NumCodewords()-1 {
		t.Errorf("deg-1 CoverFreeK = %d", c.CoverFreeK())
	}
}

func TestKSParamsFor(t *testing.T) {
	q, deg, err := KSParamsFor(1<<16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !IsPrime(q) {
		t.Fatalf("q = %d not prime", q)
	}
	if pow(q, deg) < 1<<16 {
		t.Errorf("q^deg = %d < 2^16", pow(q, deg))
	}
	if deg > 1 && (q-1)/(deg-1) < 8 {
		t.Errorf("cover-free bound (q-1)/(deg-1) = %d < 8", (q-1)/(deg-1))
	}
	if _, _, err := KSParamsFor(1, 1); err == nil {
		t.Error("invalid args did not fail")
	}
}

func TestKautzSingletonDecodeSuperimposition(t *testing.T) {
	c, err := NewKautzSingleton(11, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	k := c.CoverFreeK()
	for trial := 0; trial < 30; trial++ {
		size := 1 + r.Intn(k)
		subset := r.SampleDistinct(c.NumCodewords(), size)
		sup := bitstring.New(c.Length())
		for _, cw := range subset {
			sup.OrInPlace(c.Codeword(cw))
		}
		got := c.DecodeSuperimposition(sup)
		if len(got) != size {
			t.Fatalf("trial %d: decoded %d codewords from a size-%d superimposition", trial, len(got), size)
		}
		want := append([]int(nil), subset...)
		sort.Ints(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: decoded %v, want %v", trial, got, want)
			}
		}
	}
}

func TestKautzSingletonDecodeBeyondCoverFreeMayOverreport(t *testing.T) {
	// Past the cover-free bound the decoder must still return a superset
	// of the transmitted codewords (it can never miss one).
	c, _ := NewKautzSingleton(5, 2)
	r := rng.New(7)
	subset := r.SampleDistinct(c.NumCodewords(), c.CoverFreeK()*3)
	sup := bitstring.New(c.Length())
	inSet := make(map[int]bool)
	for _, cw := range subset {
		sup.OrInPlace(c.Codeword(cw))
		inSet[cw] = true
	}
	got := c.DecodeSuperimposition(sup)
	found := make(map[int]bool, len(got))
	for _, cw := range got {
		found[cw] = true
	}
	for cw := range inSet {
		if !found[cw] {
			t.Fatalf("decoder missed transmitted codeword %d", cw)
		}
	}
}
