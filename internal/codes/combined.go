package codes

import (
	"fmt"
	"strings"

	"repro/internal/bitstring"
)

// Combined builds CD(r, m) per Notation 7: the distance codeword dist is
// written into the positions where beep codeword cw of code c has a 1, and
// every other position is 0 (Figure 1). dist must have exactly c.Weight()
// bits (the paper guarantees this: beep codewords contain exactly
// c_ε²γ·log n ones, the distance-code length).
func Combined(c BeepCode, cw int, dist *bitstring.BitString) (*bitstring.BitString, error) {
	if dist.Len() != c.Weight() {
		return nil, fmt.Errorf("codes: distance codeword has %d bits, beep code weight is %d",
			dist.Len(), c.Weight())
	}
	out := bitstring.New(c.Length())
	for i := 0; i < c.Weight(); i++ {
		if dist.Get(i) {
			out.Set(c.Position(cw, i))
		}
	}
	return out, nil
}

// ExtractSubsequence reads the paper's y_{v,w}: the bits of a phase-2
// observation obs at the one-positions of beep codeword cw, in order. The
// result has c.Weight() bits.
func ExtractSubsequence(c BeepCode, cw int, obs *bitstring.BitString) *bitstring.BitString {
	out := bitstring.New(c.Weight())
	for i := 0; i < c.Weight(); i++ {
		if obs.Get(c.Position(cw, i)) {
			out.Set(i)
		}
	}
	return out
}

// RenderCombined reproduces Figure 1 as text: the beep codeword C(r), the
// distance codeword D(m) aligned under C(r)'s one-positions, and the
// resulting combined codeword CD(r,m). dist must have exactly beepWord.Ones()
// bits.
func RenderCombined(beepWord, dist *bitstring.BitString) (string, error) {
	if dist.Len() != beepWord.Ones() {
		return "", fmt.Errorf("codes: D(m) has %d bits but C(r) has %d ones", dist.Len(), beepWord.Ones())
	}
	var cLine, dLine, cdLine strings.Builder
	di := 0
	for i := 0; i < beepWord.Len(); i++ {
		if beepWord.Get(i) {
			cLine.WriteByte('1')
			if dist.Get(di) {
				dLine.WriteByte('1')
				cdLine.WriteByte('1')
			} else {
				dLine.WriteByte('0')
				cdLine.WriteByte('0')
			}
			di++
		} else {
			cLine.WriteByte('0')
			dLine.WriteByte(' ')
			cdLine.WriteByte('0')
		}
	}
	return "C(r)     = " + cLine.String() + "\n" +
		"D(m)     = " + dLine.String() + "\n" +
		"CD(r,m)  = " + cdLine.String() + "\n", nil
}
