// Package codes implements the binary codes of the paper's §2: beep codes
// (Definition 3, the novel superimposed codes built by Theorem 4), distance
// codes (Definition 5 / Lemma 6), the combined code CD(r,m) of Notation 7
// (Figure 1), and the classic Kautz–Singleton superimposed code that the
// paper's §1.4 argues is too long for this application.
//
// Two beep-code families are provided:
//
//   - RandomBeepCode follows Theorem 4's construction exactly: each
//     codeword is uniform among weight-W strings of length B. It is used to
//     verify the Definition 3 superimposition property empirically.
//   - BlockedBeepCode places exactly one 1 per length-BlockSize block, at a
//     PRG-derived offset. It has the same weight, the same expected pairwise
//     intersections (Binomial(W, 1/BlockSize)), and O(1) position lookup
//     with O(1) memory, which lets simulator nodes work position-wise
//     without materializing b-bit strings. It is the pipeline default
//     (substitution #3 in DESIGN.md).
package codes

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

// BeepCode is a superimposed code with M constant-weight codewords. For
// every implementation in this package, Position(cw, i) is strictly
// increasing in i, so codewords can be traversed position-wise.
type BeepCode interface {
	// Length returns b, the codeword length in bits (beep rounds).
	Length() int
	// Weight returns W, the number of 1s in every codeword.
	Weight() int
	// NumCodewords returns M, the size of the codebook.
	NumCodewords() int
	// Position returns the absolute position of the i-th 1 (0 <= i < W)
	// of codeword cw (0 <= cw < M).
	Position(cw, i int) int
	// Codeword materializes codeword cw as a bitstring.
	Codeword(cw int) *bitstring.BitString
}

// BlockedBeepCode is the O(1)-lookup beep code: length W·BlockSize, one 1
// per block, offsets derived from a public seed. Two distinct codewords
// collide in each block independently with probability 1/BlockSize.
//
// The PRG hash behind Offset is paid once, at construction: the code
// carries flat per-codeword position and offset tables, cached codeword
// masks (Mask), and — built lazily on first use — per-block offset→codeword
// collision buckets (Bucket). These read-only tables are what make the §4
// decoder's hot path word-parallel and hash-free.
type BlockedBeepCode struct {
	weight    int
	blockSize int
	m         int
	seed      uint64

	positions []int32                // flat m×weight: Position(cw, i) = positions[cw*weight+i]
	offsets   []int32                // flat m×weight: Offset(cw, i) = offsets[cw*weight+i]
	masks     []*bitstring.BitString // cached codewords, shared read-only

	collideOnce sync.Once
	bucketStart []int32 // CSR over (block, offset) cells, length weight·blockSize+1
	bucketCW    []int32 // codewords grouped by cell, ascending within each
}

// NewBlockedBeepCode constructs a blocked beep code with the given weight
// (number of blocks), block size, codebook size m, and public seed.
func NewBlockedBeepCode(weight, blockSize, m int, seed uint64) (*BlockedBeepCode, error) {
	if weight <= 0 || blockSize <= 1 || m <= 0 {
		return nil, fmt.Errorf("codes: invalid blocked beep code (weight=%d blockSize=%d m=%d)",
			weight, blockSize, m)
	}
	c := &BlockedBeepCode{weight: weight, blockSize: blockSize, m: m, seed: seed}
	c.positions = make([]int32, m*weight)
	c.offsets = make([]int32, m*weight)
	c.masks = make([]*bitstring.BitString, m)
	length := c.Length()
	for cw := 0; cw < m; cw++ {
		mask := bitstring.New(length)
		row := cw * weight
		for i := 0; i < weight; i++ {
			off := int32(rng.Mix(seed, uint64(cw), uint64(i)) % uint64(blockSize))
			pos := int32(i*blockSize) + off
			c.offsets[row+i] = off
			c.positions[row+i] = pos
			mask.Set(int(pos))
		}
		c.masks[cw] = mask
	}
	return c, nil
}

// Length returns b = W·BlockSize.
func (c *BlockedBeepCode) Length() int { return c.weight * c.blockSize }

// Weight returns W.
func (c *BlockedBeepCode) Weight() int { return c.weight }

// BlockSize returns the number of positions per block.
func (c *BlockedBeepCode) BlockSize() int { return c.blockSize }

// NumCodewords returns M.
func (c *BlockedBeepCode) NumCodewords() int { return c.m }

// Offset returns the within-block offset of codeword cw's 1 in block i.
func (c *BlockedBeepCode) Offset(cw, i int) int {
	return int(c.offsets[cw*c.weight+i])
}

// HashOffset recomputes Offset(cw, i) from the PRG definition, bypassing
// the cached tables. It is the definitional source the construction (and
// the table-consistency tests) check against.
func (c *BlockedBeepCode) HashOffset(cw, i int) int {
	return int(rng.Mix(c.seed, uint64(cw), uint64(i)) % uint64(c.blockSize))
}

// Position returns the absolute position of codeword cw's 1 in block i.
func (c *BlockedBeepCode) Position(cw, i int) int {
	return int(c.positions[cw*c.weight+i])
}

// PositionRow returns codeword cw's W positions as a shared read-only
// slice into the code's flat position table.
func (c *BlockedBeepCode) PositionRow(cw int) []int32 {
	return c.positions[cw*c.weight : (cw+1)*c.weight : (cw+1)*c.weight]
}

// OffsetRow returns codeword cw's W within-block offsets as a shared
// read-only slice into the code's flat offset table.
func (c *BlockedBeepCode) OffsetRow(cw int) []int32 {
	return c.offsets[cw*c.weight : (cw+1)*c.weight : (cw+1)*c.weight]
}

// Mask returns codeword cw as a cached bitstring, shared and read-only:
// callers must not mutate it. Use Codeword for an owned copy.
func (c *BlockedBeepCode) Mask(cw int) *bitstring.BitString {
	return c.masks[cw]
}

// Codeword materializes codeword cw as an independent copy.
func (c *BlockedBeepCode) Codeword(cw int) *bitstring.BitString {
	return c.masks[cw].Clone()
}

// Bucket returns the codewords whose 1 in block i sits at offset off, in
// ascending order — the collision table cell the decoder's solo-mask
// builder walks. The underlying CSR tables are built once, on first call
// (construction stays cheap for codes that never decode), and are shared
// read-only afterwards.
func (c *BlockedBeepCode) Bucket(i, off int) []int32 {
	c.collideOnce.Do(c.buildBuckets)
	cell := i*c.blockSize + off
	return c.bucketCW[c.bucketStart[cell]:c.bucketStart[cell+1]]
}

// buildBuckets counting-sorts every codeword into its (block, offset)
// cell: one pass to size the cells, one to fill them. Codewords land in
// ascending order within each cell because the fill pass scans them in
// order.
func (c *BlockedBeepCode) buildBuckets() {
	cells := c.weight * c.blockSize
	start := make([]int32, cells+1)
	for cw := 0; cw < c.m; cw++ {
		row := cw * c.weight
		for i := 0; i < c.weight; i++ {
			start[i*c.blockSize+int(c.offsets[row+i])+1]++
		}
	}
	for cell := 0; cell < cells; cell++ {
		start[cell+1] += start[cell]
	}
	cws := make([]int32, c.m*c.weight)
	next := make([]int32, cells)
	copy(next, start[:cells])
	for cw := 0; cw < c.m; cw++ {
		row := cw * c.weight
		for i := 0; i < c.weight; i++ {
			cell := i*c.blockSize + int(c.offsets[row+i])
			cws[next[cell]] = int32(cw)
			next[cell]++
		}
	}
	c.bucketStart, c.bucketCW = start, cws
}

var _ BeepCode = (*BlockedBeepCode)(nil)

// blockedCache shares constructed BlockedBeepCodes across callers: a code
// is an immutable pure function of (weight, blockSize, m, seed) — public
// shared knowledge in the paper's model — so every runner over the same
// parameterization can use one instance instead of re-hashing M·W
// positions. Capacity is bounded by evicting one arbitrary entry per
// overflow (a sweep grid touches only a handful of parameterizations at
// a time, so anything beyond the limit is churn either way).
var (
	blockedCacheMu sync.Mutex
	blockedCache   = map[blockedKey]*BlockedBeepCode{}
)

const blockedCacheLimit = 16

type blockedKey struct {
	weight, blockSize, m int
	seed                 uint64
}

// SharedBlockedBeepCode returns a cached BlockedBeepCode for the given
// parameters, constructing (and caching) it on first request. The result
// is shared: callers get the same read-only instance and must not mutate
// anything reachable from it. Construction happens outside the cache
// lock, so concurrent runner setup over distinct parameterizations is
// not serialized; racing constructions of the same key build identical
// codes and the first insert wins.
func SharedBlockedBeepCode(weight, blockSize, m int, seed uint64) (*BlockedBeepCode, error) {
	key := blockedKey{weight: weight, blockSize: blockSize, m: m, seed: seed}
	blockedCacheMu.Lock()
	if c, ok := blockedCache[key]; ok {
		blockedCacheMu.Unlock()
		return c, nil
	}
	blockedCacheMu.Unlock()

	c, err := NewBlockedBeepCode(weight, blockSize, m, seed)
	if err != nil {
		return nil, err
	}

	blockedCacheMu.Lock()
	defer blockedCacheMu.Unlock()
	if prior, ok := blockedCache[key]; ok {
		return prior, nil // lost the construction race; share the winner
	}
	if len(blockedCache) >= blockedCacheLimit {
		for k := range blockedCache {
			delete(blockedCache, k)
			break
		}
	}
	blockedCache[key] = c
	return c, nil
}

// RandomBeepCode is Theorem 4's construction: M codewords drawn uniformly
// among weight-W strings of length B, materialized as a flat sorted
// position table plus cached codeword masks.
type RandomBeepCode struct {
	length    int
	weight    int
	m         int
	positions []int32                // flat m×weight, sorted within each row
	masks     []*bitstring.BitString // cached codewords, shared read-only
}

// NewRandomBeepCode draws an M-codeword code of length b and weight w from
// stream r.
func NewRandomBeepCode(b, w, m int, r *rng.Stream) (*RandomBeepCode, error) {
	if w <= 0 || b < w || m <= 0 {
		return nil, fmt.Errorf("codes: invalid random beep code (b=%d w=%d m=%d)", b, w, m)
	}
	c := &RandomBeepCode{
		length:    b,
		weight:    w,
		m:         m,
		positions: make([]int32, m*w),
		masks:     make([]*bitstring.BitString, m),
	}
	for cw := 0; cw < m; cw++ {
		sample := r.SampleDistinct(b, w)
		sort.Ints(sample)
		mask := bitstring.New(b)
		for i, p := range sample {
			c.positions[cw*w+i] = int32(p)
			mask.Set(p)
		}
		c.masks[cw] = mask
	}
	return c, nil
}

// Length returns b.
func (c *RandomBeepCode) Length() int { return c.length }

// Weight returns W.
func (c *RandomBeepCode) Weight() int { return c.weight }

// NumCodewords returns M.
func (c *RandomBeepCode) NumCodewords() int { return c.m }

// Position returns the position of the i-th 1 of codeword cw.
func (c *RandomBeepCode) Position(cw, i int) int { return int(c.positions[cw*c.weight+i]) }

// PositionRow returns codeword cw's sorted positions as a shared
// read-only slice into the code's flat position table.
func (c *RandomBeepCode) PositionRow(cw int) []int32 {
	return c.positions[cw*c.weight : (cw+1)*c.weight : (cw+1)*c.weight]
}

// Mask returns codeword cw as a cached bitstring, shared and read-only.
func (c *RandomBeepCode) Mask(cw int) *bitstring.BitString { return c.masks[cw] }

// Codeword materializes codeword cw as an independent copy.
func (c *RandomBeepCode) Codeword(cw int) *bitstring.BitString {
	return c.masks[cw].Clone()
}

var _ BeepCode = (*RandomBeepCode)(nil)

// SuperimpositionCheck reports how often a random size-k superimposition
// of codewords d-intersects some codeword outside the set — the quantity
// Definition 3 bounds. For each of trials rounds it samples a size-k subset
// S of the codebook, superimposes it, and counts it bad if any codeword
// outside S d-intersects ∨(S). It returns the fraction of bad subsets.
//
// Checking against all M−k outside codewords is exponential in the paper
// (2^a codewords); here M is explicit so the check is exact per subset.
func SuperimpositionCheck(c BeepCode, k, d, trials int, r *rng.Stream) (badFraction float64, err error) {
	m := c.NumCodewords()
	if k <= 0 || k >= m {
		return 0, fmt.Errorf("codes: superimposition check needs 0 < k < M, got k=%d M=%d", k, m)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("codes: trials must be positive")
	}
	// Both code families cache their codewords as read-only masks, so the
	// superimposition is a word-parallel OR and the d-intersection test a
	// popcount sweep with early exit at d.
	type masker interface {
		Mask(cw int) *bitstring.BitString
	}
	mk, hasMasks := c.(masker)
	bad := 0
	for t := 0; t < trials; t++ {
		subset := r.SampleDistinct(m, k)
		inSet := make(map[int]bool, k)
		sup := bitstring.New(c.Length())
		for _, cw := range subset {
			inSet[cw] = true
			if hasMasks {
				sup.OrInPlace(mk.Mask(cw))
				continue
			}
			for i := 0; i < c.Weight(); i++ {
				sup.Set(c.Position(cw, i))
			}
		}
		for cw := 0; cw < m; cw++ {
			if inSet[cw] {
				continue
			}
			count := 0
			if hasMasks {
				count = mk.Mask(cw).AndCountLimit(sup, d)
			} else {
				for i := 0; i < c.Weight(); i++ {
					if sup.Get(c.Position(cw, i)) {
						count++
						if count >= d {
							break
						}
					}
				}
			}
			if count >= d {
				bad++
				break
			}
		}
	}
	return float64(bad) / float64(trials), nil
}

// PairwiseIntersection returns 1(C(a) ∧ C(b)) by merging position lists.
func PairwiseIntersection(c BeepCode, a, b int) int {
	count := 0
	i, j := 0, 0
	for i < c.Weight() && j < c.Weight() {
		pa, pb := c.Position(a, i), c.Position(b, j)
		switch {
		case pa == pb:
			count++
			i++
			j++
		case pa < pb:
			i++
		default:
			j++
		}
	}
	return count
}
