// Package codes implements the binary codes of the paper's §2: beep codes
// (Definition 3, the novel superimposed codes built by Theorem 4), distance
// codes (Definition 5 / Lemma 6), the combined code CD(r,m) of Notation 7
// (Figure 1), and the classic Kautz–Singleton superimposed code that the
// paper's §1.4 argues is too long for this application.
//
// Two beep-code families are provided:
//
//   - RandomBeepCode follows Theorem 4's construction exactly: each
//     codeword is uniform among weight-W strings of length B. It is used to
//     verify the Definition 3 superimposition property empirically.
//   - BlockedBeepCode places exactly one 1 per length-BlockSize block, at a
//     PRG-derived offset. It has the same weight, the same expected pairwise
//     intersections (Binomial(W, 1/BlockSize)), and O(1) position lookup
//     with O(1) memory, which lets simulator nodes work position-wise
//     without materializing b-bit strings. It is the pipeline default
//     (substitution #3 in DESIGN.md).
package codes

import (
	"fmt"
	"sort"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

// BeepCode is a superimposed code with M constant-weight codewords. For
// every implementation in this package, Position(cw, i) is strictly
// increasing in i, so codewords can be traversed position-wise.
type BeepCode interface {
	// Length returns b, the codeword length in bits (beep rounds).
	Length() int
	// Weight returns W, the number of 1s in every codeword.
	Weight() int
	// NumCodewords returns M, the size of the codebook.
	NumCodewords() int
	// Position returns the absolute position of the i-th 1 (0 <= i < W)
	// of codeword cw (0 <= cw < M).
	Position(cw, i int) int
	// Codeword materializes codeword cw as a bitstring.
	Codeword(cw int) *bitstring.BitString
}

// BlockedBeepCode is the O(1)-lookup beep code: length W·BlockSize, one 1
// per block, offsets derived from a public seed. Two distinct codewords
// collide in each block independently with probability 1/BlockSize.
type BlockedBeepCode struct {
	weight    int
	blockSize int
	m         int
	seed      uint64
}

// NewBlockedBeepCode constructs a blocked beep code with the given weight
// (number of blocks), block size, codebook size m, and public seed.
func NewBlockedBeepCode(weight, blockSize, m int, seed uint64) (*BlockedBeepCode, error) {
	if weight <= 0 || blockSize <= 1 || m <= 0 {
		return nil, fmt.Errorf("codes: invalid blocked beep code (weight=%d blockSize=%d m=%d)",
			weight, blockSize, m)
	}
	return &BlockedBeepCode{weight: weight, blockSize: blockSize, m: m, seed: seed}, nil
}

// Length returns b = W·BlockSize.
func (c *BlockedBeepCode) Length() int { return c.weight * c.blockSize }

// Weight returns W.
func (c *BlockedBeepCode) Weight() int { return c.weight }

// BlockSize returns the number of positions per block.
func (c *BlockedBeepCode) BlockSize() int { return c.blockSize }

// NumCodewords returns M.
func (c *BlockedBeepCode) NumCodewords() int { return c.m }

// Offset returns the within-block offset of codeword cw's 1 in block i.
func (c *BlockedBeepCode) Offset(cw, i int) int {
	return int(rng.Mix(c.seed, uint64(cw), uint64(i)) % uint64(c.blockSize))
}

// Position returns the absolute position of codeword cw's 1 in block i.
func (c *BlockedBeepCode) Position(cw, i int) int {
	return i*c.blockSize + c.Offset(cw, i)
}

// Codeword materializes codeword cw.
func (c *BlockedBeepCode) Codeword(cw int) *bitstring.BitString {
	s := bitstring.New(c.Length())
	for i := 0; i < c.weight; i++ {
		s.Set(c.Position(cw, i))
	}
	return s
}

var _ BeepCode = (*BlockedBeepCode)(nil)

// RandomBeepCode is Theorem 4's construction: M codewords drawn uniformly
// among weight-W strings of length B, materialized as sorted position
// lists.
type RandomBeepCode struct {
	length    int
	weight    int
	positions [][]int32
}

// NewRandomBeepCode draws an M-codeword code of length b and weight w from
// stream r.
func NewRandomBeepCode(b, w, m int, r *rng.Stream) (*RandomBeepCode, error) {
	if w <= 0 || b < w || m <= 0 {
		return nil, fmt.Errorf("codes: invalid random beep code (b=%d w=%d m=%d)", b, w, m)
	}
	c := &RandomBeepCode{length: b, weight: w, positions: make([][]int32, m)}
	for cw := range c.positions {
		sample := r.SampleDistinct(b, w)
		sort.Ints(sample)
		ps := make([]int32, w)
		for i, p := range sample {
			ps[i] = int32(p)
		}
		c.positions[cw] = ps
	}
	return c, nil
}

// Length returns b.
func (c *RandomBeepCode) Length() int { return c.length }

// Weight returns W.
func (c *RandomBeepCode) Weight() int { return c.weight }

// NumCodewords returns M.
func (c *RandomBeepCode) NumCodewords() int { return len(c.positions) }

// Position returns the position of the i-th 1 of codeword cw.
func (c *RandomBeepCode) Position(cw, i int) int { return int(c.positions[cw][i]) }

// Codeword materializes codeword cw.
func (c *RandomBeepCode) Codeword(cw int) *bitstring.BitString {
	s := bitstring.New(c.length)
	for _, p := range c.positions[cw] {
		s.Set(int(p))
	}
	return s
}

var _ BeepCode = (*RandomBeepCode)(nil)

// SuperimpositionCheck reports how often a random size-k superimposition
// of codewords d-intersects some codeword outside the set — the quantity
// Definition 3 bounds. For each of trials rounds it samples a size-k subset
// S of the codebook, superimposes it, and counts it bad if any codeword
// outside S d-intersects ∨(S). It returns the fraction of bad subsets.
//
// Checking against all M−k outside codewords is exponential in the paper
// (2^a codewords); here M is explicit so the check is exact per subset.
func SuperimpositionCheck(c BeepCode, k, d, trials int, r *rng.Stream) (badFraction float64, err error) {
	m := c.NumCodewords()
	if k <= 0 || k >= m {
		return 0, fmt.Errorf("codes: superimposition check needs 0 < k < M, got k=%d M=%d", k, m)
	}
	if trials <= 0 {
		return 0, fmt.Errorf("codes: trials must be positive")
	}
	bad := 0
	for t := 0; t < trials; t++ {
		subset := r.SampleDistinct(m, k)
		inSet := make(map[int]bool, k)
		sup := bitstring.New(c.Length())
		for _, cw := range subset {
			inSet[cw] = true
			for i := 0; i < c.Weight(); i++ {
				sup.Set(c.Position(cw, i))
			}
		}
		for cw := 0; cw < m; cw++ {
			if inSet[cw] {
				continue
			}
			count := 0
			for i := 0; i < c.Weight(); i++ {
				if sup.Get(c.Position(cw, i)) {
					count++
					if count >= d {
						break
					}
				}
			}
			if count >= d {
				bad++
				break
			}
		}
	}
	return float64(bad) / float64(trials), nil
}

// PairwiseIntersection returns 1(C(a) ∧ C(b)) by merging position lists.
func PairwiseIntersection(c BeepCode, a, b int) int {
	count := 0
	i, j := 0, 0
	for i < c.Weight() && j < c.Weight() {
		pa, pb := c.Position(a, i), c.Position(b, j)
		switch {
		case pa == pb:
			count++
			i++
			j++
		case pa < pb:
			i++
		default:
			j++
		}
	}
	return count
}
