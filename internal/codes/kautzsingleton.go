package codes

import (
	"fmt"

	"repro/internal/bitstring"
)

// KautzSingleton is the classic superimposed code of Kautz & Singleton
// (1964), built from Reed–Solomon codewords mapped to one-hot blocks: a
// codeword is a polynomial p of degree < Deg over F_Q, and block i of the
// binary codeword is the one-hot encoding of p(i) in [Q]. Length is Q², the
// codebook has Q^Deg codewords, every codeword has weight Q, and two
// distinct codewords intersect in at most Deg−1 positions, so the code is
// k-cover-free for k ≤ (Q−Deg)/(Deg−1) … in particular for
// k < (Q−1)/(Deg−1).
//
// The paper's §1.4 uses this construction to show why classic superimposed
// codes give Θ(Δ² log n) phase lengths and hence no improvement: compare
// KSLengthFor with the beep-code length in experiment T1.
type KautzSingleton struct {
	q   int
	deg int
	m   int
}

// NewKautzSingleton builds the code with field size q (must be prime) and
// polynomial degree bound deg >= 1. The codebook size q^deg is capped at
// 2^26 to keep experiments bounded.
func NewKautzSingleton(q, deg int) (*KautzSingleton, error) {
	if !IsPrime(q) {
		return nil, fmt.Errorf("codes: Kautz–Singleton field size %d is not prime", q)
	}
	if deg < 1 {
		return nil, fmt.Errorf("codes: Kautz–Singleton degree bound %d < 1", deg)
	}
	m := 1
	for i := 0; i < deg; i++ {
		if m > (1<<26)/q {
			return nil, fmt.Errorf("codes: Kautz–Singleton codebook q^deg = %d^%d too large", q, deg)
		}
		m *= q
	}
	return &KautzSingleton{q: q, deg: deg, m: m}, nil
}

// Length returns Q².
func (c *KautzSingleton) Length() int { return c.q * c.q }

// Weight returns Q (one position per block).
func (c *KautzSingleton) Weight() int { return c.q }

// NumCodewords returns Q^Deg.
func (c *KautzSingleton) NumCodewords() int { return c.m }

// Q returns the field size.
func (c *KautzSingleton) Q() int { return c.q }

// CoverFreeK returns the largest k for which the code is guaranteed
// k-cover-free: k distinct codewords can cover at most k·(Deg−1) of another
// codeword's Q positions, so decodability holds while k·(Deg−1) < Q.
func (c *KautzSingleton) CoverFreeK() int {
	if c.deg == 1 {
		return c.m - 1 // disjoint codewords: any union of others misses all Q positions
	}
	return (c.q - 1) / (c.deg - 1)
}

// Position returns the absolute position of codeword cw's 1 in block i:
// i·Q + p_cw(i) where p_cw is cw's polynomial (base-Q digits of cw as
// coefficients).
func (c *KautzSingleton) Position(cw, i int) int {
	return i*c.q + c.eval(cw, i)
}

// Codeword materializes codeword cw.
func (c *KautzSingleton) Codeword(cw int) *bitstring.BitString {
	s := bitstring.New(c.Length())
	for i := 0; i < c.q; i++ {
		s.Set(c.Position(cw, i))
	}
	return s
}

// eval evaluates cw's polynomial at point x via Horner's rule; the base-Q
// digits of cw are the coefficients, most significant first.
func (c *KautzSingleton) eval(cw, x int) int {
	coeffs := make([]int, c.deg)
	for i := 0; i < c.deg; i++ {
		coeffs[i] = cw % c.q
		cw /= c.q
	}
	v := 0
	for i := c.deg - 1; i >= 0; i-- {
		v = (v*x + coeffs[i]) % c.q
	}
	return v
}

var _ BeepCode = (*KautzSingleton)(nil)

// DecodeSuperimposition returns every codeword whose Q positions are all
// covered by sup. The k-cover-free property makes this exact for
// superimpositions of at most CoverFreeK codewords: any outside codeword
// has at least one uncovered position. This is the classic group-testing
// decoder the paper's beep codes relax (they tolerate a vanishing fraction
// of failures in exchange for Θ(k/ log)-factor shorter length).
func (c *KautzSingleton) DecodeSuperimposition(sup *bitstring.BitString) []int {
	var out []int
	for cw := 0; cw < c.m; cw++ {
		covered := true
		for i := 0; i < c.q; i++ {
			if !sup.Get(c.Position(cw, i)) {
				covered = false
				break
			}
		}
		if covered {
			out = append(out, cw)
		}
	}
	return out
}

// KSParamsFor returns the smallest prime field size q and degree bound deg
// such that a Kautz–Singleton code has at least numCodewords codewords and
// is k-cover-free. The resulting length is q².
func KSParamsFor(numCodewords, k int) (q, deg int, err error) {
	if numCodewords < 2 || k < 1 {
		return 0, 0, fmt.Errorf("codes: KSParamsFor(%d, %d) invalid", numCodewords, k)
	}
	best := -1
	bestDeg := 0
	for deg := 1; deg <= 16; deg++ {
		// Need q^deg >= numCodewords and (deg == 1 or (q-1)/(deg-1) >= k).
		q := 2
		for pow(q, deg) < numCodewords || (deg > 1 && (q-1)/(deg-1) < k) {
			q++
			if q > 1<<20 {
				q = -1
				break
			}
		}
		if q < 0 {
			continue
		}
		q = NextPrime(q)
		if best == -1 || q*q < best*best {
			best, bestDeg = q, deg
		}
	}
	if best == -1 {
		return 0, 0, fmt.Errorf("codes: no Kautz–Singleton parameters for M=%d k=%d", numCodewords, k)
	}
	return best, bestDeg, nil
}

// IsPrime reports whether n is prime (trial division; n is small here).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}

func pow(base, exp int) int {
	v := 1
	for i := 0; i < exp; i++ {
		if v > 1<<40/base {
			return 1 << 40 // saturate
		}
		v *= base
	}
	return v
}
