package codes

import (
	"strings"
	"testing"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

func TestCombinedPlacesDistanceBits(t *testing.T) {
	c, _ := NewBlockedBeepCode(8, 4, 16, 3)
	dist := bitstring.New(8)
	dist.Set(0)
	dist.Set(3)
	dist.Set(7)
	cd, err := Combined(c, 5, dist)
	if err != nil {
		t.Fatal(err)
	}
	// CD must have 1s exactly at the 0th, 3rd, 7th one-positions of C(5).
	want := bitstring.New(c.Length())
	want.Set(c.Position(5, 0))
	want.Set(c.Position(5, 3))
	want.Set(c.Position(5, 7))
	if !cd.Equal(want) {
		t.Errorf("Combined = %s, want %s", cd, want)
	}
	// CD(r,m) is always a sub-pattern of C(r) (Notation 7).
	if cd.AndNotCount(c.Codeword(5)) != 0 {
		t.Error("combined codeword has a 1 outside C(r)'s support")
	}
}

func TestCombinedLengthMismatch(t *testing.T) {
	c, _ := NewBlockedBeepCode(8, 4, 16, 3)
	if _, err := Combined(c, 0, bitstring.New(7)); err == nil {
		t.Error("mismatched distance length did not fail")
	}
}

func TestExtractSubsequenceInvertsCombined(t *testing.T) {
	// In a noiseless, collision-free channel, extracting y_{v,w} at C(r)'s
	// one-positions recovers D(m) exactly.
	c, _ := NewBlockedBeepCode(24, 8, 64, 4)
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		dist := bitstring.New(24)
		for i := 0; i < 24; i++ {
			if r.Bool(0.5) {
				dist.Set(i)
			}
		}
		cw := r.Intn(64)
		cd, err := Combined(c, cw, dist)
		if err != nil {
			t.Fatal(err)
		}
		if got := ExtractSubsequence(c, cw, cd); !got.Equal(dist) {
			t.Fatalf("trial %d: extract(combined) = %s, want %s", trial, got, dist)
		}
	}
}

func TestRenderCombinedGolden(t *testing.T) {
	// Reproduces Figure 1's layout on a tiny example.
	cr, _ := bitstring.Parse("0110100101")
	dm, _ := bitstring.Parse("10110")
	got, err := RenderCombined(cr, dm)
	if err != nil {
		t.Fatal(err)
	}
	// C(r) has ones at positions 1,2,4,7,9; D(m) = 10110 is written under
	// them in order, so CD has ones at positions 1, 4, and 7.
	want := strings.Join([]string{
		"C(r)     = 0110100101",
		"D(m)     =  10 1  1 0",
		"CD(r,m)  = 0100100100",
		"",
	}, "\n")
	if got != want {
		t.Errorf("RenderCombined:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderCombinedMismatch(t *testing.T) {
	cr, _ := bitstring.Parse("0110")
	dm, _ := bitstring.Parse("101")
	if _, err := RenderCombined(cr, dm); err == nil {
		t.Error("mismatched D(m) length did not fail")
	}
}
