package core

import (
	"testing"
)

// TestMembershipThresholdNoise: under a pluggable channel θ calibrates
// against the model's missed-beep rate p10, and reduces to the ε math
// for the symmetric channel.
func TestMembershipThresholdNoise(t *testing.T) {
	base := DefaultParams(32, 4, 10, 0.2)
	symTheta := base.MembershipThreshold()

	// An asymmetric channel with p10 = 0.2 must calibrate like ε = 0.2,
	// whatever its false-positive rate.
	asym := base
	asym.Noise = "asymmetric:0.05:0.2"
	if got := asym.MembershipThreshold(); got != symTheta {
		t.Errorf("asymmetric p10=0.2 θ = %d, want symmetric ε=0.2 θ = %d", got, symTheta)
	}

	// Erasure read-as-1 never loses beeps: p10 = 0, so θ matches ε = 0.
	noiseless := DefaultParams(32, 4, 10, 0)
	noiseless.R = base.R // hold W fixed; only the rate may move θ
	er := base
	er.Noise = "erasure:0.2:1"
	if got, want := er.MembershipThreshold(), noiseless.MembershipThreshold(); got != want {
		t.Errorf("erasure read-as-1 θ = %d, want p10=0 θ = %d", got, want)
	}

	if base.MembershipThreshold() != symTheta {
		t.Error("threshold of the base params drifted")
	}
}

// TestDefaultParamsNoise: the empty spec is DefaultParams exactly; a
// model spec replaces ε with the model's worst marginal rate for the
// repetition calibration and rides along canonically.
func TestDefaultParamsNoise(t *testing.T) {
	plain, err := DefaultParamsNoise(64, 4, 12, 0.1, "")
	if err != nil {
		t.Fatal(err)
	}
	if plain != DefaultParams(64, 4, 12, 0.1) {
		t.Errorf("empty spec diverged from DefaultParams: %+v", plain)
	}

	// π_B = 1/6, rate = (5/6)·0.02 + (1/6)·0.3 ≈ 0.0667 → the ε<0.07
	// band of the repetition table.
	burst, err := DefaultParamsNoise(64, 4, 12, 0, "gilbert-elliott:0.020:0.3:0.05:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultParams(64, 4, 12, 0.0667).R; burst.R != want {
		t.Errorf("burst R = %d, want rate-calibrated %d", burst.R, want)
	}
	if burst.Noise != "gilbert-elliott:0.02:0.3:0.05:0.25" {
		t.Errorf("spec not canonicalized: %q", burst.Noise)
	}
	if err := burst.Validate(64, 4); err != nil {
		t.Errorf("derived params invalid: %v", err)
	}

	if _, err := DefaultParamsNoise(64, 4, 12, 0, "bogus:1"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := DefaultParamsNoise(64, 4, 12, 0.3, "erasure:0.1:0"); err == nil {
		t.Error("nonzero ε alongside a channel model accepted (double specification)")
	}
}

// TestDefaultParamsHostile: hostile channels calibrate against their
// worst-case per-window rate, not their (meaningless) marginal rates —
// the adversary's design rate sits in the ε<0.2 band whatever the
// budget, and a jammer calibrates at its duty fraction.
func TestDefaultParamsHostile(t *testing.T) {
	adv, err := DefaultParamsNoise(64, 4, 12, 0, "adversary:solo:1000")
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultParams(64, 4, 12, 0.15).R; adv.R != want {
		t.Errorf("adversary R = %d, want worst-case-calibrated %d", adv.R, want)
	}
	if adv.Noise != "adversary:solo:1000" {
		t.Errorf("spec not canonical: %q", adv.Noise)
	}
	if err := adv.Validate(64, 4); err != nil {
		t.Errorf("derived params invalid: %v", err)
	}
	// θ provisions for worst-case suppression, not the zero marginal.
	noiseless := adv
	noiseless.Noise = ""
	noiseless.Epsilon = 0
	if adv.MembershipThreshold() <= noiseless.MembershipThreshold() {
		t.Errorf("adversarial θ = %d not above noiseless θ = %d",
			adv.MembershipThreshold(), noiseless.MembershipThreshold())
	}

	jam, err := DefaultParamsNoise(64, 4, 12, 0, "jam:1:10")
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultParams(64, 4, 12, 0.1).R; jam.R != want {
		t.Errorf("jam R = %d, want duty-calibrated %d", jam.R, want)
	}
}

// TestValidateNoiseSpec: Params validation rejects malformed and
// non-canonical channel specs (the Codes cache keys on Params, so one
// channel must have one spelling).
func TestValidateNoiseSpec(t *testing.T) {
	p := DefaultParams(32, 4, 10, 0)
	p.Noise = "asymmetric:0.05:0.2"
	if err := p.Validate(32, 4); err != nil {
		t.Fatalf("valid noise spec rejected: %v", err)
	}
	for _, spec := range []string{"nope:1", "asymmetric:0.050:0.2", "asymmetric:0.9:0.1"} {
		q := p
		q.Noise = spec
		if err := q.Validate(32, 4); err == nil {
			t.Errorf("spec %q passed validation", spec)
		}
	}
}
