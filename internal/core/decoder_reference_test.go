package core

// The naive reference decoder: the pre-optimization §4 decoding logic,
// kept verbatim as executable documentation. It derives every codeword
// position from the PRG definition (codes.BlockedBeepCode.HashOffset) and
// materializes observations bit by bit, so it shares none of the
// optimized path's tables, masks, or scratch. The property tests below
// pit the two against each other across randomized parameterizations —
// the PR's "bit-identical outputs" acceptance gate.

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstring"
	"repro/internal/rng"
)

// refPosition recomputes Position(cw, j) from the hash definition.
func refPosition(d *decoder, cw, j int) int {
	return j*d.p.BlockSize() + d.code.HashOffset(cw, j)
}

// refMembers is the pre-refactor members loop: stage-A prefix probes,
// then per-position misses counted against θ with early exit.
func refMembers(d *decoder, x *bitstring.BitString) []int {
	theta := d.p.MembershipThreshold()
	var out []int
	for cw := 0; cw < d.p.M; cw++ {
		misses := 0
		for j := 0; j < d.stageAProbes; j++ {
			if !x.Get(refPosition(d, cw, j)) {
				misses++
			}
		}
		if misses >= d.stageAThresh {
			continue
		}
		misses = 0
		for j := 0; j < d.p.W(); j++ {
			if !x.Get(refPosition(d, cw, j)) {
				misses++
				if misses >= theta {
					break
				}
			}
		}
		if misses < theta {
			out = append(out, cw)
		}
	}
	return out
}

// refSoloMask is the pre-refactor per-target solo mask: a full pairwise
// offset scan over the member set.
func refSoloMask(d *decoder, t int, members []int) *bitstring.BitString {
	w := d.p.W()
	solo := bitstring.New(w).Not()
	for _, s := range members {
		if s == t {
			continue
		}
		for j := 0; j < w; j++ {
			if d.code.HashOffset(s, j) == d.code.HashOffset(t, j) {
				solo.ClearBit(j)
			}
		}
	}
	return solo
}

// refDecodeMessage is the pre-refactor phase-2 decode: a bit-by-bit ỹ
// gather followed by the allocating distance-code decoder.
func refDecodeMessage(d *decoder, t int, y, solo *bitstring.BitString) []byte {
	w := d.p.W()
	obs := bitstring.New(w)
	for j := 0; j < w; j++ {
		if y.Get(refPosition(d, t, j)) {
			obs.Set(j)
		}
	}
	return d.dist.Decode(obs, solo)
}

// randomDecoderParams draws a small but varied parameterization; M swings
// from "a handful" to "much larger than a block".
func randomDecoderParams(r *rng.Stream) Params {
	p := Params{
		MsgBits:    4 + r.Intn(6),
		K:          3 + r.Intn(5),
		C:          2 + r.Intn(4),
		R:          5 + 2*r.Intn(5),
		M:          2 + r.Intn(96),
		Epsilon:    float64(r.Intn(4)) * 0.08,
		Assignment: AssignRandom,
		Seed:       r.Uint64(),
	}
	if r.Bool(0.5) {
		p.Assignment = AssignByID
	}
	return p
}

// TestPropertyOptimizedMatchesNaive: on arbitrary (not even codeword-
// shaped) noisy observations, the optimized decoder must reproduce the
// naive reference bit for bit: same member set, same solo masks (by both
// the counting pass and the collision-bucket walk), same decoded
// messages.
func TestPropertyOptimizedMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := randomDecoderParams(r)
		d, err := newDecoder(p)
		if err != nil {
			return true // invalid draw; skip
		}

		// Observations: superimpose a random member set, then corrupt at ε
		// (plus occasional pure-garbage x to stress the filters).
		count := 1 + r.Intn(p.K)
		if count > p.M {
			count = p.M
		}
		trueMembers := r.SampleDistinct(p.M, count)
		x := bitstring.New(p.PhaseLength())
		y := bitstring.New(p.PhaseLength())
		for _, cw := range trueMembers {
			x.OrInPlace(d.code.Mask(cw))
			msg := make([]byte, d.msgBytes)
			for b := range msg {
				msg[b] = byte(r.Intn(256))
			}
			y.OrInPlace(d.encodePhase2(cw, msg))
		}
		for _, s := range []*bitstring.BitString{x, y} {
			fs := rng.NewFlipSampler(r, 0.02+p.Epsilon)
			for {
				pos, ok := fs.Next(s.Len())
				if !ok {
					break
				}
				s.Flip(pos)
			}
		}

		members := d.members(x, nil)
		wantMembers := refMembers(d, x)
		if !equalInts(members, wantMembers) {
			t.Logf("seed %d: members %v, want %v", seed, members, wantMembers)
			return false
		}
		if len(members) == 0 {
			return true
		}
		sc := d.newScratch()
		// Dirty the scratch with an unrelated member set first: production
		// reuses one scratch per shard across all nodes and rounds, so the
		// counting pass must be immune to any prior call's residue (the
		// per-call tag discipline; a position-only tag aliases here).
		prior := r.SampleDistinct(p.M, 1+r.Intn(min(p.K, p.M)))
		d.soloMasks(prior, sc)
		d.soloMasks(members, sc)
		db := *d
		db.useBuckets = true
		scb := db.newScratch()
		db.soloMasks(prior, scb)
		db.soloMasks(members, scb)
		out := make([]byte, d.msgBytes)
		for i, cw := range members {
			wantSolo := refSoloMask(d, cw, members)
			if !sc.solos[i].Equal(wantSolo) {
				t.Logf("seed %d: counting solo mask of %d differs", seed, cw)
				return false
			}
			if !scb.solos[i].Equal(wantSolo) {
				t.Logf("seed %d: bucket solo mask of %d differs", seed, cw)
				return false
			}
			got := d.decodeMessage(cw, y, sc.solos[i], out)
			want := refDecodeMessage(d, cw, y, wantSolo)
			if len(got) != len(want) {
				return false
			}
			for b := range got {
				if got[b] != want[b] {
					t.Logf("seed %d: message of %d decodes %x, want %x", seed, cw, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestScratchReuseIsStateless: decoding a saturated observation and then
// a small one on the same scratch must give the same answers as a fresh
// scratch — no state may leak between decodes.
func TestScratchReuseIsStateless(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	saturated := bitstring.New(p.PhaseLength()).Not()
	small := bitstring.New(p.PhaseLength())
	for _, cw := range []int{5, 12} {
		small.OrInPlace(d.code.Mask(cw))
	}
	sc := d.newScratch()
	for trial := 0; trial < 3; trial++ {
		all := d.members(saturated, sc.members)
		sc.members = all
		if len(all) != p.M {
			t.Fatalf("trial %d: saturated decode found %d members", trial, len(all))
		}
		d.soloMasks(all, sc)
		few := d.members(small, sc.members)
		sc.members = few
		if len(few) != 2 || few[0] != 5 || few[1] != 12 {
			t.Fatalf("trial %d: small decode %v", trial, few)
		}
		d.soloMasks(few, sc)
		for i, cw := range few {
			if want := refSoloMask(d, cw, few); !sc.solos[i].Equal(want) {
				t.Fatalf("trial %d: reused scratch solo mask of %d differs", trial, cw)
			}
		}
	}
}
