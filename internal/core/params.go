// Package core implements the paper's primary contribution: the optimal
// simulation of Broadcast CONGEST (Algorithm 1, §3) and CONGEST
// (Corollary 12) in the noisy beeping model.
//
// One simulated Broadcast CONGEST round costs two beep phases of length
// b = W·BlockSize each:
//
//	Phase 1 — each transmitting node beeps its beep-code codeword C(r_v);
//	every node decodes the set R̃_v of codewords in its neighborhood from
//	the superimposition it hears (§4, Lemmas 8–9).
//
//	Phase 2 — each transmitter beeps the combined codeword CD(r_v, m_v):
//	its message m_v, encoded under a distance code, written into the
//	positions where C(r_v) is 1 (Notation 7). Every node recovers each
//	neighbor's message from the bits at that neighbor's codeword
//	positions, relying on the "solo" positions where no other decoded
//	codeword overlaps (Lemma 10).
//
// The parameterization mirrors the paper with practical constants (see
// DESIGN.md §2 for the substitution table): the density factor C plays the
// role of c_ε (block size C·K keeps the superimposition at density ≈ 1/C),
// and the repetition factor R is the distance-code redundancy.
package core

import (
	"fmt"
	"math"

	"repro/internal/noise"
)

// Assignment selects how nodes obtain their beep-code codewords.
type Assignment int

const (
	// AssignByID gives node v codeword v from the public codebook. With a
	// codebook drawn independently of the graph this has the same
	// per-neighborhood distribution as random choice but is collision-free
	// — the deterministic analogue of Lemma 8's "all nodes choose
	// different random strings" conditioning (DESIGN.md substitution #2).
	AssignByID Assignment = iota + 1
	// AssignRandom redraws a uniform codeword index every simulated round,
	// exactly as Algorithm 1 does. Within-neighborhood collisions then
	// occur with probability ≈ K²/(2M) per node and are measured by
	// ablation A2.
	AssignRandom
)

// Params configures the Algorithm 1 instantiation.
type Params struct {
	// MsgBits is the simulated Broadcast CONGEST bandwidth (γ·log n).
	MsgBits int
	// K bounds the superimposition size; it must be at least Δ+1 so that
	// every inclusive neighborhood fits (Definition 3's k).
	K int
	// C is the density factor: blocks have C·K positions, so a
	// neighborhood superimposition has density ≈ 1/C (the paper's 1/c_ε).
	C int
	// R is the distance-code redundancy: each message bit occupies R
	// codeword positions, so W = R·MsgBits.
	R int
	// M is the codebook size. AssignByID requires M ≥ n.
	M int
	// Epsilon is the channel noise rate the decoder is calibrated for.
	// When Noise is set it is the model's worst marginal flip rate
	// (DefaultParamsNoise derives it), kept so the repetition and
	// validation math stay meaningful.
	Epsilon float64
	// Noise is the canonical channel-model spec (internal/noise.Parse);
	// empty selects the symmetric{Epsilon} channel, bit-for-bit the
	// historic behavior. The spec is part of the parameterization's
	// identity: decode tables built for one channel are cached and
	// validated under (Params including Noise).
	Noise string
	// Assignment selects codeword assignment (default AssignByID).
	Assignment Assignment
	// Seed derives the public codebook and distance-code permutation
	// (shared knowledge, as code constructions are in the paper).
	Seed uint64
	// DisableSoloFilter makes phase-2 decoding treat every position as
	// reliable instead of restricting to solo positions (ablation A3).
	// The §4 analysis predicts this degrades decoding because colliding
	// neighbors can only add energy, biasing unfiltered majorities
	// toward 1.
	DisableSoloFilter bool
}

// DefaultParams returns a practical parameterization for an n-node graph
// with maximum degree maxDeg, bandwidth msgBits, and noise eps. The
// repetition factor grows with eps the way c_ε does in the paper; all
// choices keep the phase length Θ(Δ·msgBits), i.e. Θ(Δ log n) for
// logarithmic bandwidth — the paper's headline overhead.
func DefaultParams(n, maxDeg, msgBits int, eps float64) Params {
	// The repetition factor must grow like (1/2−ε)⁻² as noise approaches
	// the capacity limit — the same blowup the paper's c_ε constraints
	// exhibit (T0).
	r := 5
	switch {
	case eps == 0:
		r = 5
	case eps < 0.07:
		r = 21
	case eps < 0.12:
		r = 31
	case eps < 0.2:
		r = 45
	case eps < 0.26:
		r = 75
	case eps < 0.33:
		r = 151
	default:
		r = 301
	}
	return Params{
		MsgBits:    msgBits,
		K:          maxDeg + 1,
		C:          4,
		R:          r,
		M:          n,
		Epsilon:    eps,
		Assignment: AssignByID,
		Seed:       0xbeef,
	}
}

// DefaultParamsNoise is DefaultParams generalized to a pluggable channel
// model: an empty spec is exactly DefaultParams(n, maxDeg, msgBits, eps);
// a non-empty spec (internal/noise.Parse) replaces eps with the model's
// calibration rate (worst marginal flip rate for stochastic models,
// worst-case per-window rate for hostile ones — noise.CalibrationRate)
// for the repetition-factor calibration and
// rides along in Params.Noise, where the membership threshold θ and the
// beeping channel itself consult it.
func DefaultParamsNoise(n, maxDeg, msgBits int, eps float64, spec string) (Params, error) {
	if spec == "" {
		return DefaultParams(n, maxDeg, msgBits, eps), nil
	}
	if eps != 0 {
		// Same contract as beep.NewNetwork: a model owns the channel, a
		// nonzero ε alongside it is a double specification, not an input
		// to silently drop.
		return Params{}, fmt.Errorf("core: both ε = %v and channel %s given; the model owns the channel, pass ε 0", eps, spec)
	}
	m, err := noise.Parse(spec)
	if err != nil {
		return Params{}, fmt.Errorf("core: %w", err)
	}
	// Hostile (adversarial/jamming) models have no meaningful marginal
	// rate; calibrate against their worst-case per-window rate instead.
	// An adversary that corrupts more than that per window breaks the
	// protocol by design (sim.ProtocolBrokenError), it does not get a
	// larger repetition factor.
	rate := noise.CalibrationRate(m)
	if rate >= 0.5 {
		return Params{}, fmt.Errorf("core: channel %s: calibration rate %v outside [0, 0.5)", m.Spec(), rate)
	}
	p := DefaultParams(n, maxDeg, msgBits, rate)
	p.Noise = m.Spec() // canonical spelling, whatever the caller wrote
	return p, nil
}

// Validate checks p for a graph with n nodes and maximum degree maxDeg.
func (p Params) Validate(n, maxDeg int) error {
	if p.MsgBits <= 0 {
		return fmt.Errorf("core: MsgBits = %d", p.MsgBits)
	}
	if p.K < maxDeg+1 {
		return fmt.Errorf("core: K = %d < Δ+1 = %d (Definition 3 needs the inclusive neighborhood to fit)", p.K, maxDeg+1)
	}
	if p.C < 2 {
		return fmt.Errorf("core: density factor C = %d < 2", p.C)
	}
	if p.R < 1 {
		return fmt.Errorf("core: repetition factor R = %d < 1", p.R)
	}
	if p.Epsilon < 0 || p.Epsilon >= 0.5 {
		return fmt.Errorf("core: ε = %v outside [0, 0.5)", p.Epsilon)
	}
	if p.Noise != "" {
		m, err := noise.Parse(p.Noise)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if spec := m.Spec(); spec != p.Noise {
			return fmt.Errorf("core: noise spec %q is not canonical (want %q)", p.Noise, spec)
		}
		if r := noise.CalibrationRate(m); r >= 0.5 {
			return fmt.Errorf("core: channel %s: calibration rate %v outside [0, 0.5)", p.Noise, r)
		}
	}
	switch p.Assignment {
	case AssignByID:
		if p.M < n {
			return fmt.Errorf("core: AssignByID needs M ≥ n, got M=%d n=%d", p.M, n)
		}
	case AssignRandom:
		if p.M < 2 {
			return fmt.Errorf("core: AssignRandom needs M ≥ 2, got %d", p.M)
		}
	default:
		return fmt.Errorf("core: unknown assignment %d", p.Assignment)
	}
	return nil
}

// W returns the codeword weight (= distance-code length) R·MsgBits.
func (p Params) W() int { return p.R * p.MsgBits }

// BlockSize returns C·K, the positions per block.
func (p Params) BlockSize() int { return p.C * p.K }

// PhaseLength returns b = W·BlockSize beep rounds per phase.
func (p Params) PhaseLength() int { return p.W() * p.BlockSize() }

// RoundsPerSimRound returns the beep rounds consumed per simulated
// Broadcast CONGEST round (two phases).
func (p Params) RoundsPerSimRound() int { return 2 * p.PhaseLength() }

// MembershipThreshold returns θ = ⌊(2ε+1)/4 · W⌋: codeword r is decoded as
// present iff fewer than θ of its W positions read 0 — exactly the §4 rule
// "C(r) does not (2ε+1)/4·c_ε²γlog n-intersect ¬x̃_v".
//
// Under a pluggable channel the role of ε in the threshold is the
// missed-beep rate: a present codeword's positions carry beeps, so they
// read 0 at the channel's marginal 1→0 rate p10, and θ sits at the
// midpoint of p10·W (expected misses when present) and W/2 (the
// conservative absence rate the paper uses). For the symmetric channel
// p10 = ε and the expression is unchanged.
func (p Params) MembershipThreshold() int {
	eps := p.Epsilon
	if p.Noise != "" {
		if m, err := noise.Parse(p.Noise); err == nil {
			if noise.Hostile(m) {
				// A hostile channel suppresses beeps at up to its
				// worst-case rate within a window; provision θ for it.
				eps = noise.CalibrationRate(m)
			} else {
				_, p10 := m.FlipRates()
				eps = p10
			}
		}
	}
	return int((2*eps + 1) / 4 * float64(p.W()))
}

// PaperSizes reports the paper-faithful parameter sizes of §3 for
// comparison with the practical profile (experiment T0).
type PaperSizes struct {
	// CEps is the constant c_ε: the maximum of every lower bound the
	// proofs of Lemmas 9 and 10 impose.
	CEps float64
	// CodewordBits is a = c_ε·γ·log n, the length of the random strings
	// r_v (so the decoder searches 2^a codewords).
	CodewordBits float64
	// DistanceLen is c_ε²·γ·log n, the distance-code length.
	DistanceLen float64
	// PhaseLen is b = c_ε³·γ·(Δ+1)·log n, the beep-code length.
	PhaseLen float64
	// TotalPerRound is the beep rounds per simulated round (two phases).
	TotalPerRound float64
}

// PaperParams evaluates the paper's constant constraints for noise rate
// eps ∈ (0, ½), message constant gamma, and a graph with n nodes and
// maximum degree maxDeg:
//
//	c_ε ≥ max{108, 60/(1−2ε), 54/((1−2ε)²ε)+5, (6/ε)(1/(4ε)−1/2)⁻²,
//	          30/(ε(1−2ε)), 6((1−ε)(1−2ε)/(ε(7−2ε)))⁻²}
//
// collected from Lemma 9 ("cε ≥ max{…}") and Lemma 10 ("We required
// that…"), plus the Lemma 6 instantiation (cε ≥ 108).
func PaperParams(n, maxDeg int, gamma, eps float64) (PaperSizes, error) {
	if eps <= 0 || eps >= 0.5 {
		return PaperSizes{}, fmt.Errorf("core: paper constants need ε ∈ (0, ½), got %v", eps)
	}
	if n < 2 || gamma <= 0 {
		return PaperSizes{}, fmt.Errorf("core: invalid n=%d gamma=%v", n, gamma)
	}
	one2e := 1 - 2*eps
	candidates := []float64{
		108,
		60 / one2e,
		54/(one2e*one2e*eps) + 5,
		(6 / eps) * math.Pow(1/(4*eps)-0.5, -2),
		30 / (eps * one2e),
		6 * math.Pow((1-eps)*one2e/(eps*(7-2*eps)), -2),
	}
	ceps := 0.0
	for _, c := range candidates {
		if c > ceps {
			ceps = c
		}
	}
	logn := math.Log2(float64(n))
	sizes := PaperSizes{
		CEps:         ceps,
		CodewordBits: ceps * gamma * logn,
		DistanceLen:  ceps * ceps * gamma * logn,
		PhaseLen:     ceps * ceps * ceps * gamma * float64(maxDeg+1) * logn,
	}
	sizes.TotalPerRound = 2 * sizes.PhaseLen
	return sizes, nil
}
