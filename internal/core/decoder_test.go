package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bitstring"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Test conveniences over the scratch-based decoder API: allocate a fresh
// scratch per call so assertions stay independent.

func (d *decoder) membersAlloc(x *bitstring.BitString) []int {
	return d.members(x, nil)
}

// soloMaskFor returns target t's solo mask within members (t must be a
// member, as in the runner's decode loop).
func (d *decoder) soloMaskFor(t int, members []int) *bitstring.BitString {
	sc := d.newScratch()
	d.soloMasks(members, sc)
	for i, cw := range members {
		if cw == t {
			return sc.solos[i].Clone()
		}
	}
	panic("soloMaskFor: target not a member")
}

func (d *decoder) decodeMessageAlloc(t int, y, solo *bitstring.BitString) []byte {
	return d.decodeMessage(t, y, solo, make([]byte, d.msgBytes))
}

func testParams() Params {
	return Params{
		MsgBits:    8,
		K:          5,
		C:          4,
		R:          9,
		M:          40,
		Epsilon:    0.1,
		Assignment: AssignByID,
		Seed:       0x5eed,
	}
}

func TestNewDecoderValidation(t *testing.T) {
	p := testParams()
	p.MsgBits, p.R = 1, 2 // W = 2 < 4
	if _, err := newDecoder(p); err == nil {
		t.Error("W < 4 accepted")
	}
}

// TestMembersCleanChannel: the decoder must recover exactly the
// superimposed codeword set from a noiseless observation.
func TestMembersCleanChannel(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{3, 11, 17, 29}
	x := bitstring.New(p.PhaseLength())
	for _, cw := range members {
		x.OrInPlace(d.encodePhase1(cw))
	}
	got := d.membersAlloc(x)
	if len(got) != len(members) {
		t.Fatalf("decoded %v, want %v", got, members)
	}
	for i := range members {
		if got[i] != members[i] {
			t.Fatalf("decoded %v, want %v", got, members)
		}
	}
}

// TestMembersUnderNoise: flips at rate ε must not change the decoded set.
func TestMembersUnderNoise(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 7, 23}
	r := rng.New(9)
	for trial := 0; trial < 20; trial++ {
		x := bitstring.New(p.PhaseLength())
		for _, cw := range members {
			x.OrInPlace(d.encodePhase1(cw))
		}
		fs := rng.NewFlipSampler(r, p.Epsilon)
		for {
			pos, ok := fs.Next(x.Len())
			if !ok {
				break
			}
			x.Flip(pos)
		}
		got := d.membersAlloc(x)
		if len(got) != len(members) {
			t.Fatalf("trial %d: decoded %v, want %v", trial, got, members)
		}
		for i := range members {
			if got[i] != members[i] {
				t.Fatalf("trial %d: decoded %v, want %v", trial, got, members)
			}
		}
	}
}

// TestMembersEmptyOnSilence: a silent (or pure-noise) channel decodes to
// the empty set.
func TestMembersEmptyOnSilence(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	x := bitstring.New(p.PhaseLength())
	if got := d.membersAlloc(x); len(got) != 0 {
		t.Errorf("silence decoded as %v", got)
	}
	// Pure noise at ε.
	fs := rng.NewFlipSampler(rng.New(4), p.Epsilon)
	for {
		pos, ok := fs.Next(x.Len())
		if !ok {
			break
		}
		x.Set(pos)
	}
	if got := d.membersAlloc(x); len(got) != 0 {
		t.Errorf("pure noise decoded as %v", got)
	}
}

// TestMembersAdversarialSaturation: an all-ones observation makes every
// codeword look present — the decoder must report all M (a detectable
// jamming signature rather than a silent failure).
func TestMembersAdversarialSaturation(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	x := bitstring.New(p.PhaseLength()).Not()
	if got := d.membersAlloc(x); len(got) != p.M {
		t.Errorf("saturated channel decoded %d members, want all %d", len(got), p.M)
	}
}

// TestSoloMaskMatchesBruteForce: the solo mask must equal a direct
// position-collision computation on materialized codewords.
func TestSoloMaskMatchesBruteForce(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{2, 9, 14, 31, 38}
	for _, target := range members {
		solo := d.soloMaskFor(target, members)
		for j := 0; j < p.W(); j++ {
			collides := false
			for _, s := range members {
				if s != target && d.code.Position(s, j) == d.code.Position(target, j) {
					collides = true
					break
				}
			}
			if solo.Get(j) == collides {
				t.Fatalf("target %d block %d: solo=%v but collides=%v", target, j, solo.Get(j), collides)
			}
		}
	}
}

// TestPhase2RoundTrip: encode CD(cw, msg), superimpose interferers, decode
// with the correct solo mask — the message must survive.
func TestPhase2RoundTrip(t *testing.T) {
	p := testParams()
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{1, 8, 22, 35}
	msgs := map[int]uint64{1: 0x5a, 8: 0xff, 22: 0x00, 35: 0x81}
	y := bitstring.New(p.PhaseLength())
	for _, cw := range members {
		var w wire.Writer
		w.WriteUint(msgs[cw], 8)
		y.OrInPlace(d.encodePhase2(cw, w.PaddedBytes(p.MsgBits)))
	}
	for _, cw := range members {
		solo := d.soloMaskFor(cw, members)
		got := d.decodeMessageAlloc(cw, y, solo)
		want := encodeMsg8(msgs[cw])
		if !wire.Equal(got, want, 8) {
			t.Errorf("codeword %d: decoded %x, want %x", cw, got, want)
		}
	}
}

// TestPhase2RoundTripUnderNoise adds ε channel flips on top of the
// interference.
func TestPhase2RoundTripUnderNoise(t *testing.T) {
	p := testParams()
	p.R = 15 // extra redundancy for the noisy variant
	d, err := newDecoder(p)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{4, 19, 33}
	msgs := map[int]uint64{4: 0xc3, 19: 0x2d, 33: 0x70}
	r := rng.New(11)
	for trial := 0; trial < 20; trial++ {
		y := bitstring.New(p.PhaseLength())
		for _, cw := range members {
			var w wire.Writer
			w.WriteUint(msgs[cw], 8)
			y.OrInPlace(d.encodePhase2(cw, w.PaddedBytes(p.MsgBits)))
		}
		fs := rng.NewFlipSampler(r, p.Epsilon)
		for {
			pos, ok := fs.Next(y.Len())
			if !ok {
				break
			}
			y.Flip(pos)
		}
		for _, cw := range members {
			solo := d.soloMaskFor(cw, members)
			got := d.decodeMessageAlloc(cw, y, solo)
			if !wire.Equal(got, encodeMsg8(msgs[cw]), 8) {
				t.Fatalf("trial %d codeword %d: decoded %x, want %x", trial, cw, got, msgs[cw])
			}
		}
	}
}

func encodeMsg8(v uint64) []byte {
	var w wire.Writer
	w.WriteUint(v, 8)
	return w.PaddedBytes(8)
}

// TestPropertyDecoderPipelineFuzz: random small parameterizations and
// member sets must round-trip through encode → superimpose → decode on a
// clean channel — for every member whose each message bit keeps at least
// one solo (collision-free) repetition block. That coverage is the §4
// precondition for exact decoding; the tiny random parameterizations
// here can violate it (e.g. R=5 blocks per bit all collided among K=4
// members), and the decoder then documents best-effort fallback
// thresholds rather than exactness, so those members are skipped.
func TestPropertyDecoderPipelineFuzz(t *testing.T) {
	f := func(seed uint64, kRaw, cRaw, rRaw, pick uint8) bool {
		p := Params{
			MsgBits:    4 + int(seed%5),
			K:          3 + int(kRaw%4),
			C:          3 + int(cRaw%4),
			R:          5 + 2*int(rRaw%4),
			M:          24,
			Epsilon:    0,
			Assignment: AssignByID,
			Seed:       seed,
		}
		d, err := newDecoder(p)
		if err != nil {
			return false
		}
		// Pick up to K distinct member codewords.
		r := rng.New(seed)
		count := 1 + int(pick)%p.K
		members := r.SampleDistinct(p.M, count)
		sortInts(members)
		msgs := make(map[int][]byte, count)
		y := bitstring.New(p.PhaseLength())
		x := bitstring.New(p.PhaseLength())
		for _, cw := range members {
			var w wire.Writer
			w.WriteUint(r.Uint64()&(1<<uint(p.MsgBits)-1), p.MsgBits)
			m := w.PaddedBytes(p.MsgBits)
			msgs[cw] = m
			x.OrInPlace(d.encodePhase1(cw))
			y.OrInPlace(d.encodePhase2(cw, m))
		}
		got := d.membersAlloc(x)
		if len(got) != len(members) {
			return false
		}
		for i := range members {
			if got[i] != members[i] {
				return false
			}
		}
		for _, cw := range members {
			solo := d.soloMaskFor(cw, got)
			covered := make([]bool, p.MsgBits)
			for j := 0; j < d.dist.Length(); j++ {
				if solo.Get(j) {
					covered[d.dist.BitFor(j)] = true
				}
			}
			full := true
			for _, c := range covered {
				full = full && c
			}
			if !full {
				continue // no exactness guarantee for this member
			}
			if !wire.Equal(d.decodeMessageAlloc(cw, y, solo), msgs[cw], p.MsgBits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
