package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// gossip broadcasts the node ID for a fixed number of rounds and records
// everything received; it exercises the full encode/decode pipeline with
// ground-truth comparison.
type gossip struct {
	env    Envish
	rounds int
	got    [][]uint64
	done   bool
}

// Envish aliases congest.Env for brevity in tests.
type Envish = congest.Env

func (g *gossip) Init(env Envish) {
	g.env = env
	if g.rounds == 0 {
		g.rounds = 1
	}
}

func (g *gossip) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}

func (g *gossip) Receive(round int, msgs []congest.Message) {
	var ids []uint64
	for _, m := range msgs {
		id, err := wire.NewReader(m).ReadUint(wire.BitsFor(g.env.N))
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	g.got = append(g.got, ids)
	if len(g.got) >= g.rounds {
		g.done = true
	}
}

func (g *gossip) Done() bool  { return g.done }
func (g *gossip) Output() any { return g.got }

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.RandomBoundedDegree(24, 4, 0.15, rng.New(100))
}

func runnerParams(g *graph.Graph, eps float64) Params {
	return DefaultParams(g.N(), g.MaxDegree(), 12, eps)
}

func TestParamsValidate(t *testing.T) {
	g := testGraph(t)
	base := runnerParams(g, 0.05)
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "zero msg bits", mutate: func(p *Params) { p.MsgBits = 0 }},
		{name: "K too small", mutate: func(p *Params) { p.K = g.MaxDegree() }},
		{name: "C too small", mutate: func(p *Params) { p.C = 1 }},
		{name: "R too small", mutate: func(p *Params) { p.R = 0 }},
		{name: "eps too big", mutate: func(p *Params) { p.Epsilon = 0.5 }},
		{name: "M below n for ByID", mutate: func(p *Params) { p.M = g.N() - 1 }},
		{name: "bad assignment", mutate: func(p *Params) { p.Assignment = 0 }},
	}
	if err := base.Validate(g.N(), g.MaxDegree()); err != nil {
		t.Fatalf("base params invalid: %v", err)
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(g.N(), g.MaxDegree()); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestParamsDerivedQuantities(t *testing.T) {
	p := Params{MsgBits: 10, K: 5, C: 6, R: 3, M: 64, Epsilon: 0.1, Assignment: AssignByID}
	if p.W() != 30 {
		t.Errorf("W = %d, want 30", p.W())
	}
	if p.BlockSize() != 30 {
		t.Errorf("BlockSize = %d, want 30", p.BlockSize())
	}
	if p.PhaseLength() != 900 {
		t.Errorf("PhaseLength = %d, want 900", p.PhaseLength())
	}
	if p.RoundsPerSimRound() != 1800 {
		t.Errorf("RoundsPerSimRound = %d, want 1800", p.RoundsPerSimRound())
	}
	// θ = (2·0.1+1)/4 · 30 = 9.
	if p.MembershipThreshold() != 9 {
		t.Errorf("MembershipThreshold = %d, want 9", p.MembershipThreshold())
	}
}

// TestNativeEquivalenceNoiseless is the central correctness test: under a
// noiseless channel, the simulated execution must deliver exactly what the
// native Broadcast CONGEST engine delivers, for every node and round.
func TestNativeEquivalenceNoiseless(t *testing.T) {
	g := testGraph(t)
	const algSeed = 9

	native, err := congest.NewBroadcastEngine(g, 12, algSeed)
	if err != nil {
		t.Fatal(err)
	}
	nativeAlgs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range nativeAlgs {
		nativeAlgs[v] = &gossip{rounds: 3}
	}
	nativeRes, err := native.Run(nativeAlgs, 10)
	if err != nil {
		t.Fatal(err)
	}

	runner, err := NewBroadcastRunner(g, RunnerConfig{
		Params:      runnerParams(g, 0),
		ChannelSeed: 1,
		AlgSeed:     algSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	simAlgs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range simAlgs {
		simAlgs[v] = &gossip{rounds: 3}
	}
	simRes, err := runner.Run(simAlgs, 10)
	if err != nil {
		t.Fatal(err)
	}

	if simRes.MessageErrors != 0 || simRes.MembershipErrors != 0 {
		t.Fatalf("noiseless simulation had %d message errors, %d membership errors",
			simRes.MessageErrors, simRes.MembershipErrors)
	}
	if !simRes.AllDone || simRes.SimRounds != nativeRes.Rounds {
		t.Fatalf("sim rounds %d (done=%v), native rounds %d", simRes.SimRounds, simRes.AllDone, nativeRes.Rounds)
	}
	for v := 0; v < g.N(); v++ {
		if fmt.Sprint(nativeRes.Outputs[v]) != fmt.Sprint(simRes.Outputs[v]) {
			t.Errorf("node %d outputs differ:\nnative: %v\nsim:    %v",
				v, nativeRes.Outputs[v], simRes.Outputs[v])
		}
	}
	if want := simRes.SimRounds * runner.Params().RoundsPerSimRound(); simRes.BeepRounds != want {
		t.Errorf("BeepRounds = %d, want %d", simRes.BeepRounds, want)
	}
}

// TestNoisySimulationDecodesCorrectly exercises Theorem 11's claim at
// practical scale: at ε = 0.1 all rounds decode without error for this
// seed.
func TestNoisySimulationDecodesCorrectly(t *testing.T) {
	g := testGraph(t)
	runner, err := NewBroadcastRunner(g, RunnerConfig{
		Params:      runnerParams(g, 0.1),
		ChannelSeed: 2,
		AlgSeed:     9,
		NoisyOwn:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &gossip{rounds: 3}
	}
	res, err := runner.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageErrors != 0 {
		t.Errorf("message errors = %d at ε=0.1", res.MessageErrors)
	}
	if res.MembershipErrors != 0 {
		t.Errorf("membership errors = %d at ε=0.1", res.MembershipErrors)
	}
	if !res.AllDone {
		t.Error("not all nodes finished")
	}
}

// TestRandomAssignmentMode runs the paper-faithful random codeword mode
// with a comfortably large codebook.
func TestRandomAssignmentMode(t *testing.T) {
	g := testGraph(t)
	p := runnerParams(g, 0.05)
	p.Assignment = AssignRandom
	p.M = 4096
	runner, err := NewBroadcastRunner(g, RunnerConfig{Params: p, ChannelSeed: 3, AlgSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &gossip{rounds: 2}
	}
	res, err := runner.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MessageErrors != 0 {
		t.Errorf("message errors = %d with M=4096", res.MessageErrors)
	}
}

// TestRandomAssignmentCollisionsDetected is a failure-injection test: with
// a pathologically small codebook, within-neighborhood codeword collisions
// are inevitable and must be surfaced as errors rather than silent
// corruption.
func TestRandomAssignmentCollisionsDetected(t *testing.T) {
	g := graph.Complete(6)
	p := DefaultParams(g.N(), g.MaxDegree(), 8, 0)
	p.Assignment = AssignRandom
	p.M = 2
	runner, err := NewBroadcastRunner(g, RunnerConfig{Params: p, ChannelSeed: 4, AlgSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &gossip{rounds: 3}
	}
	res, err := runner.Run(algs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.MembershipErrors == 0 {
		t.Error("M=2 on K6 produced no membership errors; collisions must be detected")
	}
}

// TestByIDMembershipIsNeighborDiscovery: with ByID assignment, phase-1
// decoding recovers exactly the inclusive neighborhood IDs.
func TestByIDMembershipIsNeighborDiscovery(t *testing.T) {
	g := testGraph(t)
	runner, err := NewBroadcastRunner(g, RunnerConfig{Params: runnerParams(g, 0.05), ChannelSeed: 5, AlgSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &gossip{rounds: 1}
	}
	res, err := runner.Run(algs, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Membership errors would mean some node's decoded ID set differed
	// from its true neighborhood.
	if res.MembershipErrors != 0 {
		t.Errorf("membership errors = %d", res.MembershipErrors)
	}
	// Every node's received multiset is its neighbor IDs.
	for v := 0; v < g.N(); v++ {
		got := res.Outputs[v].([][]uint64)[0]
		want := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("node %d decoded %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range want {
			if int(got[i]) != want[i] {
				t.Errorf("node %d neighbor %d: got %d, want %d", v, i, got[i], want[i])
			}
		}
	}
}

// silentAlg broadcasts nothing ever; the runner must deliver empty
// multisets without consuming radio rounds.
type silentAlg struct {
	rounds int
	empty  bool
	done   bool
}

func (s *silentAlg) Init(Envish) { s.empty = true }
func (s *silentAlg) Broadcast(round int) congest.Message {
	return nil
}
func (s *silentAlg) Receive(round int, msgs []congest.Message) {
	if len(msgs) != 0 {
		s.empty = false
	}
	s.rounds++
	if s.rounds >= 2 {
		s.done = true
	}
}
func (s *silentAlg) Done() bool  { return s.done }
func (s *silentAlg) Output() any { return s.empty }

func TestAllSilentRound(t *testing.T) {
	g := graph.Path(4)
	runner, err := NewBroadcastRunner(g, RunnerConfig{
		Params: DefaultParams(g.N(), g.MaxDegree(), 8, 0.05), ChannelSeed: 6, AlgSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	algs := make([]congest.BroadcastAlgorithm, g.N())
	for v := range algs {
		algs[v] = &silentAlg{}
	}
	res, err := runner.Run(algs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Error("silent algorithms did not finish")
	}
	if res.BeepRounds != 0 {
		t.Errorf("silent rounds consumed %d beep rounds", res.BeepRounds)
	}
	for v, out := range res.Outputs {
		if out != true {
			t.Errorf("node %d received phantom messages", v)
		}
	}
}

func TestRunnerRejectsOversizedMessage(t *testing.T) {
	g := graph.Path(2)
	runner, err := NewBroadcastRunner(g, RunnerConfig{
		Params: DefaultParams(g.N(), g.MaxDegree(), 4, 0), ChannelSeed: 7, AlgSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	algs := []congest.BroadcastAlgorithm{&gossip{rounds: 1}, &gossip{rounds: 1}}
	// gossip writes BitsFor(2)=1 bit into MsgBits=4: fine. Make it fail by
	// using a graph of 2 nodes but MsgBits=4 < needed... instead check
	// explicit oversend.
	_ = algs
	over := []congest.BroadcastAlgorithm{&oversize{}, &oversize{}}
	if _, err := runner.Run(over, 3); err == nil {
		t.Error("oversized message accepted by runner")
	}
}

type oversize struct{ done bool }

func (o *oversize) Init(Envish)                    {}
func (o *oversize) Broadcast(int) congest.Message  { return make(congest.Message, 64) }
func (o *oversize) Receive(int, []congest.Message) { o.done = true }
func (o *oversize) Done() bool                     { return o.done }
func (o *oversize) Output() any                    { return nil }

func TestDefaultParamsScaleWithEpsilon(t *testing.T) {
	prev := 0
	for _, eps := range []float64{0, 0.05, 0.1, 0.15, 0.3} {
		p := DefaultParams(64, 8, 16, eps)
		if err := p.Validate(64, 8); err != nil {
			t.Fatalf("DefaultParams(eps=%v) invalid: %v", eps, err)
		}
		if p.R < prev {
			t.Errorf("repetition factor decreased at eps=%v", eps)
		}
		prev = p.R
	}
}

func TestPaperParams(t *testing.T) {
	sizes, err := PaperParams(256, 8, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sizes.CEps < 108 {
		t.Errorf("c_ε = %v < 108", sizes.CEps)
	}
	// Blowup near ε → ½ and ε → 0 (both make constants explode).
	mid, _ := PaperParams(256, 8, 1, 0.25)
	hi, _ := PaperParams(256, 8, 1, 0.49)
	lo, _ := PaperParams(256, 8, 1, 0.001)
	if hi.CEps <= mid.CEps {
		t.Errorf("c_ε should blow up as ε→½: %v vs %v", hi.CEps, mid.CEps)
	}
	if lo.CEps <= mid.CEps {
		t.Errorf("c_ε should blow up as ε→0: %v vs %v", lo.CEps, mid.CEps)
	}
	// Phase length is c_ε³γ(Δ+1)log n.
	if sizes.PhaseLen <= sizes.DistanceLen || sizes.DistanceLen <= sizes.CodewordBits {
		t.Error("size hierarchy violated")
	}
	if _, err := PaperParams(256, 8, 1, 0); err == nil {
		t.Error("ε=0 accepted (paper constants are for the noisy model)")
	}
}

// fixedAlg broadcasts one preallocated message every round with
// allocation-free callbacks — the probe for the steady-state allocation
// test. It never retains its (borrowed) inbox.
type fixedAlg struct {
	msg    congest.Message
	rounds int
	seen   int
}

func (a *fixedAlg) Init(congest.Env)               { a.seen = 0 }
func (a *fixedAlg) Broadcast(int) congest.Message  { return a.msg }
func (a *fixedAlg) Receive(int, []congest.Message) { a.seen++ }
func (a *fixedAlg) Done() bool                     { return a.seen >= a.rounds }
func (a *fixedAlg) Output() any                    { return nil }

// TestRunSteadyStateAllocs: once the runner's lazy buffers are warm, a
// steady-state simulated round — collect, assign, both radio phases,
// decode, deliver, score — must perform zero heap allocations beyond the
// algorithms' own callbacks. Measured by differencing two Run lengths so
// per-Run setup (Result, env streams, collector) cancels out.
func TestRunSteadyStateAllocs(t *testing.T) {
	g, err := graph.RandomRegular(24, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(g.N(), g.MaxDegree(), 8, 0.1)
	for _, tc := range []struct {
		name   string
		mut    func(*Params)
		filter bool
	}{
		{name: "byid", mut: func(*Params) {}},
		{name: "random-codebook", mut: func(p *Params) { p.Assignment = AssignRandom; p.M = 64 }},
		{name: "no-solo-filter", mut: func(p *Params) { p.DisableSoloFilter = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pp := p
			tc.mut(&pp)
			runner, err := NewBroadcastRunner(g, RunnerConfig{
				Params: pp, ChannelSeed: 7, AlgSeed: 8, NoisyOwn: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			var w wire.Writer
			w.WriteUint(0xa5, 8)
			msg := w.PaddedBytes(8)
			algs := make([]congest.BroadcastAlgorithm, g.N())
			for v := range algs {
				algs[v] = &fixedAlg{msg: msg}
			}
			run := func(rounds int) float64 {
				for _, a := range algs {
					a.(*fixedAlg).rounds = rounds
				}
				return testing.AllocsPerRun(5, func() {
					if _, err := runner.Run(algs, rounds); err != nil {
						panic(err)
					}
				})
			}
			run(2) // warm lazy pattern buffers and noise samplers
			short, long := run(2), run(12)
			if perRound := (long - short) / 10; perRound > 0 {
				t.Errorf("steady-state round allocates %.2f times (run(12)=%.1f run(2)=%.1f)",
					perRound, long, short)
			}
		})
	}
}

// TestRunnerSerialParallelIdentical: the Algorithm 1 runner's sharded
// phases (collect, assign, encode, radio, decode) must be bit-identical to
// the serial run, including transcripts and error counters, under noise
// and in both assignment modes.
func TestRunnerSerialParallelIdentical(t *testing.T) {
	// n must span several 64-aligned shards or the parallel path is never taken.
	g := graph.RandomBoundedDegree(160, 5, 0.03, rng.New(61))
	for _, assign := range []Assignment{AssignByID, AssignRandom} {
		runOnce := func(workers, shards int) (*Result, []*bitstring.BitString) {
			p := DefaultParams(g.N(), g.MaxDegree(), 12, 0.1)
			p.Assignment = assign
			if assign == AssignRandom {
				p.M = 256
			}
			r, err := NewBroadcastRunner(g, RunnerConfig{
				Params:      p,
				ChannelSeed: 8,
				AlgSeed:     9,
				NoisyOwn:    true,
				RecordBeeps: true,
				Workers:     workers,
				Shards:      shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			algs := make([]congest.BroadcastAlgorithm, g.N())
			for v := range algs {
				algs[v] = &gossip{rounds: 2}
			}
			res, err := r.Run(algs, 4)
			if err != nil {
				t.Fatal(err)
			}
			return res, r.BeepHistory()
		}
		want, wantHist := runOnce(1, 0)
		for _, cfg := range [][2]int{{2, 0}, {6, 9}} {
			got, gotHist := runOnce(cfg[0], cfg[1])
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("assign=%v workers=%v: result differs from serial:\n got %+v\nwant %+v", assign, cfg, got, want)
			}
			if len(gotHist) != len(wantHist) {
				t.Fatalf("assign=%v workers=%v: transcript length %d vs %d", assign, cfg, len(gotHist), len(wantHist))
			}
			for i := range gotHist {
				if !gotHist[i].Equal(wantHist[i]) {
					t.Fatalf("assign=%v workers=%v: beep transcript differs at round %d", assign, cfg, i)
				}
			}
		}
	}
}
