package core

import (
	"bytes"
	"fmt"
	"slices"

	"repro/internal/beep"
	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/rng"
)

// RunnerConfig bundles an Algorithm 1 parameterization with the execution
// seeds.
type RunnerConfig struct {
	// Params is the code/threshold parameterization; zero value selects
	// DefaultParams for the graph.
	Params Params
	// ChannelSeed drives the beeping channel noise.
	ChannelSeed uint64
	// AlgSeed drives the simulated algorithms' private randomness, with
	// the same derivation the native engines use — so a run here and a
	// native run with equal seeds execute the algorithms identically.
	AlgSeed uint64
	// NoisyOwn forwards the paper's own-reception noise convention to the
	// channel.
	NoisyOwn bool
	// RecordBeeps retains per-round beep patterns for transcript analysis
	// (the Lemma 14 / Theorem 22 counting experiments). Memory grows with
	// beep rounds; leave off for large runs.
	RecordBeeps bool
	// Codes supplies prebuilt decode tables (BuildCodes) for Params,
	// letting callers — the sweep layer's artifact cache — share one
	// table set across runners. Nil builds fresh tables; a non-nil value
	// must have been built for exactly this Params. Either way the
	// tables are a pure function of Params, so this never changes
	// results.
	Codes *Codes
	// Workers parallelizes the radio, encode, and decode phases across
	// goroutines (0 or 1 = serial, engine.AutoWorkers = GOMAXPROCS).
	// Results are bit-identical for every setting.
	Workers int
	// Shards overrides the worker pool's shard count (0 = derived from
	// Workers). Like Workers it never changes results.
	Shards int
	// Metrics, when non-nil, receives runner telemetry — per-phase
	// timers, decode-stage counters (members, solo-filter hits,
	// best-effort fallback bits) — and is forwarded to the beep channel
	// for slot/flip accounting. Observation-only by the determinism
	// contract: results are byte-identical with Metrics set or nil.
	Metrics *obs.Registry
}

// runnerMetrics are the runner's resolved telemetry handles; the zero
// value is the disabled state and every update no-ops. Decode-stage
// counts accumulate per execution span and fold in with one atomic add
// per span — sums commute, so totals are deterministic under any
// Workers/Shards setting.
type runnerMetrics struct {
	simRounds    *obs.Counter // simulated Broadcast CONGEST rounds
	emptyRounds  *obs.Counter // zero-sender rounds (radio phases skipped)
	members      *obs.Counter // decoded neighborhood members delivered
	soloFiltered *obs.Counter // decodes whose solo mask filtered >= 1 position
	fallbackBits *obs.Counter // message bits resolved via best-effort fallback
	collectT     *obs.Timer   // phase: broadcast collection
	radio1T      *obs.Timer   // phase: phase-1 propagation window
	radio2T      *obs.Timer   // phase: phase-2 data window
	decodeT      *obs.Timer   // phase: decode + deliver + score
}

// Result reports a simulated Broadcast CONGEST execution. The JSON tags
// are the serialization hook internal/sweep's persistent records build
// on (sweep.Counters embeds Result, so these tags name the stored
// fields); Outputs (arbitrary per-node values) deliberately do not
// serialize — workload-level conclusions must be distilled into
// counters first.
type Result struct {
	// SimRounds is the number of Broadcast CONGEST rounds simulated.
	SimRounds int `json:"sim_rounds"`
	// BeepRounds is the number of physical beep rounds consumed.
	BeepRounds int `json:"beep_rounds"`
	// AllDone reports whether every algorithm terminated in budget.
	AllDone bool `json:"all_done"`
	// Outputs holds each node's Output().
	Outputs []any `json:"-"`
	// Beeps is the total energy (number of beeps).
	Beeps int64 `json:"beeps"`
	// MessageErrors counts (node, round) pairs where the delivered message
	// multiset differed from the ground truth (what a native Broadcast
	// CONGEST engine would have delivered). The paper's Theorem 11 bounds
	// the probability of any such event by n^{-2} for its constants.
	MessageErrors int `json:"message_errors"`
	// MembershipErrors counts (node, round) pairs where the decoded
	// codeword set R̃_v differed from the true neighborhood set R_v
	// (Lemma 9's event).
	MembershipErrors int `json:"membership_errors"`
}

// BroadcastRunner simulates Broadcast CONGEST algorithms over a noisy
// beeping network using Algorithm 1.
//
// The runner owns all per-round buffers — beep patterns, phase
// receptions, and per-shard decode/score scratch — so a steady-state
// simulated round performs no heap allocations outside the algorithms'
// own callbacks (TestRunSteadyStateAllocs). Inboxes passed to
// Receive are borrowed per the congest.BroadcastAlgorithm contract.
type BroadcastRunner struct {
	g   *graph.Graph
	cfg RunnerConfig
	dec *decoder
	nw  *beep.Network

	cwStreams []*rng.Stream

	// Reused per-round buffers. patterns/xs/ys are sized at construction;
	// phase2Buf entries are created lazily (first round a node transmits);
	// scratch is per execution-pool shard.
	soloAll   *bitstring.BitString // all-ones W mask (DisableSoloFilter)
	patterns  []*bitstring.BitString
	xs, ys    []*bitstring.BitString
	phase2Buf []*bitstring.BitString
	scratch   []*shardScratch
	m         runnerMetrics
}

// shardScratch is one execution-pool shard's decode/deliver/score state.
// Inbox message buffers are reused round to round — deliveries are
// borrowed, never retained (see congest.BroadcastAlgorithm).
type shardScratch struct {
	dec       *decodeScratch
	inbox     []congest.Message
	msgPool   congest.MessagePool
	trueSet   []int
	got       []int
	truth     []congest.Message
	truthPool congest.MessagePool
}

// NewBroadcastRunner builds a runner for g. If cfg.Params is the zero
// value, DefaultParams with the graph's Δ, 4·⌈log₂ n⌉ message bits, and
// ε = 0.05 is used.
func NewBroadcastRunner(g *graph.Graph, cfg RunnerConfig) (*BroadcastRunner, error) {
	if cfg.Params == (Params{}) {
		logn := 1
		for v := g.N() - 1; v > 1; v >>= 1 {
			logn++
		}
		cfg.Params = DefaultParams(g.N(), g.MaxDegree(), 4*logn, 0.05)
	}
	if err := cfg.Params.Validate(g.N(), g.MaxDegree()); err != nil {
		return nil, err
	}
	var dec *decoder
	if cfg.Codes != nil {
		if cfg.Codes.p != cfg.Params {
			return nil, fmt.Errorf("core: prebuilt codes for %+v used with params %+v", cfg.Codes.p, cfg.Params)
		}
		dec = cfg.Codes.dec
	} else {
		var err error
		dec, err = newDecoder(cfg.Params)
		if err != nil {
			return nil, err
		}
	}
	// Resolve the channel: a non-empty Noise spec replaces the symmetric
	// ε channel (Params.Epsilon then only calibrates the decoder).
	beepParams := beep.Params{
		Epsilon:     cfg.Params.Epsilon,
		NoisyOwn:    cfg.NoisyOwn,
		Seed:        cfg.ChannelSeed,
		RecordBeeps: cfg.RecordBeeps,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
		Metrics:     cfg.Metrics,
	}
	if cfg.Params.Noise != "" {
		model, err := noise.Parse(cfg.Params.Noise)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		beepParams.Epsilon, beepParams.Noise = 0, model
	}
	nw, err := beep.NewNetwork(g, beepParams)
	if err != nil {
		return nil, err
	}
	n := g.N()
	b := cfg.Params.PhaseLength()
	r := &BroadcastRunner{
		g:         g,
		cfg:       cfg,
		dec:       dec,
		nw:        nw,
		soloAll:   bitstring.New(cfg.Params.W()).Not(),
		patterns:  make([]*bitstring.BitString, n),
		xs:        make([]*bitstring.BitString, n),
		ys:        make([]*bitstring.BitString, n),
		phase2Buf: make([]*bitstring.BitString, n),
	}
	for v := 0; v < n; v++ {
		r.xs[v] = bitstring.New(b)
		r.ys[v] = bitstring.New(b)
	}
	numShards := nw.Pool().NumShards(n)
	r.scratch = make([]*shardScratch, numShards)
	for i := range r.scratch {
		r.scratch[i] = &shardScratch{dec: dec.newScratch()}
	}
	if cfg.Params.Assignment == AssignRandom {
		r.cwStreams = make([]*rng.Stream, n)
		for v := range r.cwStreams {
			r.cwStreams[v] = rng.New(cfg.ChannelSeed).Split(0x637721, uint64(v)) // "cw"
		}
	}
	if reg := cfg.Metrics; reg != nil {
		r.m = runnerMetrics{
			simRounds:    reg.Counter("core.rounds.sim"),
			emptyRounds:  reg.Counter("core.rounds.empty"),
			members:      reg.Counter("core.decode.members"),
			soloFiltered: reg.Counter("core.decode.solo_filtered"),
			fallbackBits: reg.Counter("core.decode.fallback_bits"),
			collectT:     reg.Timer("core.phase.collect_nanos"),
			radio1T:      reg.Timer("core.phase.radio1_nanos"),
			radio2T:      reg.Timer("core.phase.radio2_nanos"),
			decodeT:      reg.Timer("core.phase.decode_nanos"),
		}
	}
	return r, nil
}

// Params returns the effective parameters (after defaulting).
func (r *BroadcastRunner) Params() Params { return r.cfg.Params }

// BeepHistory returns the recorded per-round beep patterns (nil unless
// RunnerConfig.RecordBeeps was set).
func (r *BroadcastRunner) BeepHistory() []*bitstring.BitString { return r.nw.BeepHistory() }

// Env builds the environment node v's algorithm sees; identical to the
// native Broadcast CONGEST engine's.
func (r *BroadcastRunner) Env(v int) congest.Env {
	return congest.Env{
		ID:        v,
		N:         r.g.N(),
		Degree:    r.g.Degree(v),
		MaxDegree: r.g.MaxDegree(),
		MsgBits:   r.cfg.Params.MsgBits,
		Rng:       congest.NodeStream(r.cfg.AlgSeed, v),
	}
}

// Run simulates the algorithms for at most maxSimRounds Broadcast CONGEST
// rounds, each costing Params().RoundsPerSimRound() beep rounds.
//
// The broadcast-collection, codeword-encoding, and decode/deliver phases
// run span-parallel on the beep network's worker pool (RunnerConfig's
// Workers/Shards): every phase writes only per-node slots, the decoder
// tables are read-only, and each shard decodes on its own scratch, so
// results are bit-identical to a serial run.
func (r *BroadcastRunner) Run(algs []congest.BroadcastAlgorithm, maxSimRounds int) (*Result, error) {
	n := r.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("core: %d algorithms for %d nodes", len(algs), n)
	}
	p := r.cfg.Params
	pool := r.nw.Pool()
	for v, a := range algs {
		a.Init(r.Env(v))
	}
	res := &Result{}
	msgs := make([]congest.Message, n)
	cw := make([]int, n)
	scores := make([]ScoreDelta, pool.NumShards(n))
	collector := congest.NewCollector(pool, algs, msgs, p.MsgBits, "core")
	done := func(v int) bool { return algs[v].Done() }

	// The per-phase span callbacks are built once, before the round loop,
	// so rounds create no closures; curRound carries the loop variable
	// into the decode phase.
	curRound := 0

	// Codeword assignment (Algorithm 1 line 1). Each node draws from its
	// private stream, so the phase is span-safe.
	assignPhase := func(s engine.Span) {
		for v := s.Lo; v < s.Hi; v++ {
			cw[v] = -1
			if msgs[v] == nil {
				continue
			}
			switch p.Assignment {
			case AssignByID:
				cw[v] = v
			case AssignRandom:
				cw[v] = r.cwStreams[v].Intn(p.M)
			}
		}
	}

	// Phase 1: beep C(r_v). The patterns are the decoder's cached
	// codeword masks — shared read-only, nothing materialized.
	phase1 := func(s engine.Span) {
		for v := s.Lo; v < s.Hi; v++ {
			r.patterns[v] = nil
			if cw[v] >= 0 {
				r.patterns[v] = r.dec.encodePhase1(cw[v])
			}
		}
	}

	// Phase 2: beep CD(r_v, m_v), encoded into the node's reusable
	// pattern buffer (created the first round it transmits).
	phase2 := func(s engine.Span) {
		for v := s.Lo; v < s.Hi; v++ {
			r.patterns[v] = nil
			if cw[v] >= 0 {
				if r.phase2Buf[v] == nil {
					r.phase2Buf[v] = bitstring.New(p.PhaseLength())
				}
				r.dec.encodePhase2Into(cw[v], msgs[v], r.phase2Buf[v])
				r.patterns[v] = r.phase2Buf[v]
			}
		}
	}

	// Decode and deliver, on per-shard scratch. Scoring accumulates per
	// span and is summed in span order so counters match the serial run
	// exactly.
	// instrumented gates the decode phase's per-member accounting: the
	// counts (members, solo-filter hits, fallback-decoded bits) are pure
	// functions of already-computed decode state, accumulated per span
	// and folded with one atomic add each, so the disabled path pays a
	// single bool test per span.
	instrumented := r.m.members != nil
	soloOnes := p.W()
	decodePhase := func(s engine.Span) {
		sc := r.scratch[s.Index]
		scores[s.Index] = ScoreDelta{}
		var members, soloFiltered, fallbackBits int64
		for v := s.Lo; v < s.Hi; v++ {
			a := algs[v]
			if a.Done() {
				continue
			}
			decoded := r.dec.members(r.xs[v], sc.dec.members)
			sc.dec.members = decoded
			if !p.DisableSoloFilter {
				r.dec.soloMasks(decoded, sc.dec)
			}
			inbox := sc.inbox[:0]
			for i, t := range decoded {
				if cw[v] >= 0 && t == cw[v] {
					continue // own transmission
				}
				solo := r.soloAll
				if !p.DisableSoloFilter {
					solo = sc.dec.solos[i]
				}
				if instrumented {
					members++
					if solo.Ones() != soloOnes {
						soloFiltered++
					}
					fallbackBits += int64(r.dec.dist.FallbackBits(solo))
				}
				buf := sc.msgPool.Buf(len(inbox), r.dec.msgBytes)
				inbox = append(inbox, r.dec.decodeMessage(t, r.ys[v], solo, buf))
			}
			congest.SortMessages(inbox)

			r.score(sc, &scores[s.Index], v, cw, msgs, decoded, inbox)
			a.Receive(curRound, inbox)
			sc.inbox = inbox[:0]
		}
		if instrumented {
			r.m.members.Add(members)
			r.m.soloFiltered.Add(soloFiltered)
			r.m.fallbackBits.Add(fallbackBits)
		}
	}

	simRounds, allDone, err := pool.Loop(n, maxSimRounds, done, func(round int) error {
		curRound = round
		r.m.simRounds.Inc()
		// Collect the round's broadcasts; nil means the node stays silent
		// and only listens.
		sp := r.m.collectT.Start()
		senders, err := collector.Collect(round)
		sp.Stop()
		if err != nil {
			return err
		}
		if senders == 0 {
			// Nothing on the air: every active node hears (noisy) silence
			// and decodes an empty neighborhood. We skip the radio phases
			// but still deliver the empty multiset.
			r.m.emptyRounds.Inc()
			for _, a := range algs {
				if !a.Done() {
					a.Receive(round, nil)
				}
			}
			return nil
		}

		pool.Do(n, assignPhase)
		pool.Do(n, phase1)
		sp = r.m.radio1T.Start()
		if err := r.nw.RunPhaseInto(r.patterns, r.xs); err != nil {
			return err
		}
		sp.Stop()
		pool.Do(n, phase2)
		sp = r.m.radio2T.Start()
		if err := r.nw.RunPhaseInto(r.patterns, r.ys); err != nil {
			return err
		}
		sp.Stop()
		res.BeepRounds += p.RoundsPerSimRound()

		sp = r.m.decodeT.Start()
		pool.Do(n, decodePhase)
		sp.Stop()
		res.AddScores(scores)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.SimRounds = simRounds
	res.AllDone = allDone
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	res.Beeps = r.nw.TotalBeeps()
	return res, nil
}

// ScoreDelta is one execution span's error-counter contribution for a
// round; both the Algorithm 1 runner and the TDMA baseline accumulate
// per-span deltas and fold them into a Result in span order.
type ScoreDelta struct {
	Membership int
	Message    int
}

// AddScores folds per-span score deltas into the result, in span order.
func (r *Result) AddScores(deltas []ScoreDelta) {
	for i := range deltas {
		r.MembershipErrors += deltas[i].Membership
		r.MessageErrors += deltas[i].Message
	}
}

// score compares node v's decoding against ground truth, updating error
// counters. Ground truth is runner-level bookkeeping only — nothing here
// feeds back into the simulation. It builds the truth multiset on the
// shard's reusable buffers.
func (r *BroadcastRunner) score(sc *shardScratch, d *ScoreDelta, v int, cw []int, msgs []congest.Message, decoded []int, inbox []congest.Message) {
	trueSet := sc.trueSet[:0]
	truth := sc.truth[:0]
	for _, u := range r.g.Row(v) {
		if cw[u] >= 0 {
			trueSet = append(trueSet, cw[u])
			truth = append(truth, sc.truthPool.PadInto(len(truth), r.dec.msgBytes, msgs[u]))
		}
	}
	if cw[v] >= 0 {
		trueSet = append(trueSet, cw[v]) // own codeword is part of x_v
	}
	slices.Sort(trueSet)
	got := append(sc.got[:0], decoded...)
	slices.Sort(got)
	if !equalInts(trueSet, got) {
		d.Membership++
	}
	congest.SortMessages(truth)
	if !equalMessages(truth, inbox) {
		d.Message++
	}
	sc.trueSet, sc.got, sc.truth = trueSet, got, truth
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalMessages(a, b []congest.Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
