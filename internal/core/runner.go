package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/beep"
	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunnerConfig bundles an Algorithm 1 parameterization with the execution
// seeds.
type RunnerConfig struct {
	// Params is the code/threshold parameterization; zero value selects
	// DefaultParams for the graph.
	Params Params
	// ChannelSeed drives the beeping channel noise.
	ChannelSeed uint64
	// AlgSeed drives the simulated algorithms' private randomness, with
	// the same derivation the native engines use — so a run here and a
	// native run with equal seeds execute the algorithms identically.
	AlgSeed uint64
	// NoisyOwn forwards the paper's own-reception noise convention to the
	// channel.
	NoisyOwn bool
	// RecordBeeps retains per-round beep patterns for transcript analysis
	// (the Lemma 14 / Theorem 22 counting experiments). Memory grows with
	// beep rounds; leave off for large runs.
	RecordBeeps bool
	// Workers parallelizes the radio, encode, and decode phases across
	// goroutines (0 or 1 = serial, engine.AutoWorkers = GOMAXPROCS).
	// Results are bit-identical for every setting.
	Workers int
	// Shards overrides the worker pool's shard count (0 = derived from
	// Workers). Like Workers it never changes results.
	Shards int
}

// Result reports a simulated Broadcast CONGEST execution. The JSON tags
// are the serialization hook internal/sweep's persistent records build
// on (sweep.Counters embeds Result, so these tags name the stored
// fields); Outputs (arbitrary per-node values) deliberately do not
// serialize — workload-level conclusions must be distilled into
// counters first.
type Result struct {
	// SimRounds is the number of Broadcast CONGEST rounds simulated.
	SimRounds int `json:"sim_rounds"`
	// BeepRounds is the number of physical beep rounds consumed.
	BeepRounds int `json:"beep_rounds"`
	// AllDone reports whether every algorithm terminated in budget.
	AllDone bool `json:"all_done"`
	// Outputs holds each node's Output().
	Outputs []any `json:"-"`
	// Beeps is the total energy (number of beeps).
	Beeps int64 `json:"beeps"`
	// MessageErrors counts (node, round) pairs where the delivered message
	// multiset differed from the ground truth (what a native Broadcast
	// CONGEST engine would have delivered). The paper's Theorem 11 bounds
	// the probability of any such event by n^{-2} for its constants.
	MessageErrors int `json:"message_errors"`
	// MembershipErrors counts (node, round) pairs where the decoded
	// codeword set R̃_v differed from the true neighborhood set R_v
	// (Lemma 9's event).
	MembershipErrors int `json:"membership_errors"`
}

// BroadcastRunner simulates Broadcast CONGEST algorithms over a noisy
// beeping network using Algorithm 1.
type BroadcastRunner struct {
	g   *graph.Graph
	cfg RunnerConfig
	dec *decoder
	nw  *beep.Network

	cwStreams []*rng.Stream
}

// NewBroadcastRunner builds a runner for g. If cfg.Params is the zero
// value, DefaultParams with the graph's Δ, 4·⌈log₂ n⌉ message bits, and
// ε = 0.05 is used.
func NewBroadcastRunner(g *graph.Graph, cfg RunnerConfig) (*BroadcastRunner, error) {
	if cfg.Params == (Params{}) {
		logn := 1
		for v := g.N() - 1; v > 1; v >>= 1 {
			logn++
		}
		cfg.Params = DefaultParams(g.N(), g.MaxDegree(), 4*logn, 0.05)
	}
	if err := cfg.Params.Validate(g.N(), g.MaxDegree()); err != nil {
		return nil, err
	}
	dec, err := newDecoder(cfg.Params)
	if err != nil {
		return nil, err
	}
	nw, err := beep.NewNetwork(g, beep.Params{
		Epsilon:     cfg.Params.Epsilon,
		NoisyOwn:    cfg.NoisyOwn,
		Seed:        cfg.ChannelSeed,
		RecordBeeps: cfg.RecordBeeps,
		Workers:     cfg.Workers,
		Shards:      cfg.Shards,
	})
	if err != nil {
		return nil, err
	}
	r := &BroadcastRunner{g: g, cfg: cfg, dec: dec, nw: nw}
	if cfg.Params.Assignment == AssignRandom {
		r.cwStreams = make([]*rng.Stream, g.N())
		for v := range r.cwStreams {
			r.cwStreams[v] = rng.New(cfg.ChannelSeed).Split(0x637721, uint64(v)) // "cw"
		}
	}
	return r, nil
}

// Params returns the effective parameters (after defaulting).
func (r *BroadcastRunner) Params() Params { return r.cfg.Params }

// BeepHistory returns the recorded per-round beep patterns (nil unless
// RunnerConfig.RecordBeeps was set).
func (r *BroadcastRunner) BeepHistory() []*bitstring.BitString { return r.nw.BeepHistory() }

// Env builds the environment node v's algorithm sees; identical to the
// native Broadcast CONGEST engine's.
func (r *BroadcastRunner) Env(v int) congest.Env {
	return congest.Env{
		ID:        v,
		N:         r.g.N(),
		Degree:    r.g.Degree(v),
		MaxDegree: r.g.MaxDegree(),
		MsgBits:   r.cfg.Params.MsgBits,
		Rng:       congest.NodeStream(r.cfg.AlgSeed, v),
	}
}

// Run simulates the algorithms for at most maxSimRounds Broadcast CONGEST
// rounds, each costing Params().RoundsPerSimRound() beep rounds.
//
// The broadcast-collection, codeword-encoding, and decode/deliver phases
// run span-parallel on the beep network's worker pool (RunnerConfig's
// Workers/Shards): every phase writes only per-node slots and the decoder
// tables are read-only, so results are bit-identical to a serial run.
func (r *BroadcastRunner) Run(algs []congest.BroadcastAlgorithm, maxSimRounds int) (*Result, error) {
	n := r.g.N()
	if len(algs) != n {
		return nil, fmt.Errorf("core: %d algorithms for %d nodes", len(algs), n)
	}
	p := r.cfg.Params
	pool := r.nw.Pool()
	for v, a := range algs {
		a.Init(r.Env(v))
	}
	res := &Result{}
	msgs := make([]congest.Message, n)
	cw := make([]int, n)
	scores := make([]ScoreDelta, pool.NumShards(n))
	done := func(v int) bool { return algs[v].Done() }
	simRounds, allDone, err := pool.Loop(n, maxSimRounds, done, func(round int) error {
		// Collect the round's broadcasts; nil means the node stays silent
		// and only listens.
		senders, err := congest.CollectBroadcasts(pool, algs, msgs, p.MsgBits, round, "core")
		if err != nil {
			return err
		}
		if senders == 0 {
			// Nothing on the air: every active node hears (noisy) silence
			// and decodes an empty neighborhood. We skip the radio phases
			// but still deliver the empty multiset.
			for _, a := range algs {
				if !a.Done() {
					a.Receive(round, nil)
				}
			}
			return nil
		}

		// Codeword assignment (Algorithm 1 line 1). Each node draws from
		// its private stream, so the phase is span-safe.
		pool.Do(n, func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				cw[v] = -1
				if msgs[v] == nil {
					continue
				}
				switch p.Assignment {
				case AssignByID:
					cw[v] = v
				case AssignRandom:
					cw[v] = r.cwStreams[v].Intn(p.M)
				}
			}
		})

		// Phase 1: beep C(r_v).
		patterns := make([]*bitstring.BitString, n)
		pool.Do(n, func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				if cw[v] >= 0 {
					patterns[v] = r.dec.encodePhase1(cw[v])
				}
			}
		})
		xs, err := r.nw.RunPhase(patterns)
		if err != nil {
			return err
		}

		// Phase 2: beep CD(r_v, m_v).
		pool.Do(n, func(s engine.Span) {
			for v := s.Lo; v < s.Hi; v++ {
				patterns[v] = nil
				if cw[v] >= 0 {
					patterns[v] = r.dec.encodePhase2(cw[v], msgs[v])
				}
			}
		})
		ys, err := r.nw.RunPhase(patterns)
		if err != nil {
			return err
		}
		res.BeepRounds += p.RoundsPerSimRound()

		// Decode and deliver. Scoring accumulates per span and is summed
		// in span order so counters match the serial run exactly.
		pool.Do(n, func(s engine.Span) {
			scores[s.Index] = ScoreDelta{}
			for v := s.Lo; v < s.Hi; v++ {
				a := algs[v]
				if a.Done() {
					continue
				}
				decoded := r.dec.members(xs[v])
				inbox := make([]congest.Message, 0, len(decoded))
				for _, t := range decoded {
					if cw[v] >= 0 && t == cw[v] {
						continue // own transmission
					}
					var solo *bitstring.BitString
					if p.DisableSoloFilter {
						solo = bitstring.New(p.W()).Not()
					} else {
						solo = r.dec.soloMask(t, decoded)
					}
					inbox = append(inbox, r.dec.decodeMessage(t, ys[v], solo))
				}
				congest.SortMessages(inbox)

				r.score(&scores[s.Index], v, cw, msgs, decoded, inbox)
				a.Receive(round, inbox)
			}
		})
		res.AddScores(scores)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.SimRounds = simRounds
	res.AllDone = allDone
	res.Outputs = make([]any, n)
	for v, a := range algs {
		res.Outputs[v] = a.Output()
	}
	res.Beeps = r.nw.TotalBeeps()
	return res, nil
}

// ScoreDelta is one execution span's error-counter contribution for a
// round; both the Algorithm 1 runner and the TDMA baseline accumulate
// per-span deltas and fold them into a Result in span order.
type ScoreDelta struct {
	Membership int
	Message    int
}

// AddScores folds per-span score deltas into the result, in span order.
func (r *Result) AddScores(deltas []ScoreDelta) {
	for i := range deltas {
		r.MembershipErrors += deltas[i].Membership
		r.MessageErrors += deltas[i].Message
	}
}

// score compares node v's decoding against ground truth, updating error
// counters. Ground truth is runner-level bookkeeping only — nothing here
// feeds back into the simulation.
func (r *BroadcastRunner) score(d *ScoreDelta, v int, cw []int, msgs []congest.Message, decoded []int, inbox []congest.Message) {
	var trueSet []int
	var truth []congest.Message
	for _, u := range r.g.Row(v) {
		if cw[u] >= 0 {
			trueSet = append(trueSet, cw[u])
			truth = append(truth, padTo(msgs[u], r.cfg.Params.MsgBits))
		}
	}
	if cw[v] >= 0 {
		trueSet = append(trueSet, cw[v]) // own codeword is part of x_v
	}
	sort.Ints(trueSet)
	got := make([]int, 0, len(decoded))
	got = append(got, decoded...)
	sort.Ints(got)
	if !equalInts(trueSet, got) {
		d.Membership++
	}
	congest.SortMessages(truth)
	if !equalMessages(truth, inbox) {
		d.Message++
	}
}

func padTo(m congest.Message, bits int) congest.Message {
	out := make(congest.Message, (bits+7)/8)
	copy(out, m)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalMessages(a, b []congest.Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
