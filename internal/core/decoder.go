package core

import (
	"fmt"
	"math"

	"repro/internal/bitstring"
	"repro/internal/codes"
	"repro/internal/rng"
)

// decoder implements the node-local decoding of §4. Everything it uses is
// information an honest node possesses: the public codes, the parameters,
// and the bits the node itself heard.
type decoder struct {
	p    Params
	code *codes.BlockedBeepCode
	dist *codes.RepetitionCode

	// Stage-A filter: probe a prefix of blocks and discard codewords that
	// already look absent, leaving the exact §4 threshold test to the few
	// survivors. Purely an optimization — a codeword is accepted iff it
	// passes the full MembershipThreshold test.
	stageAProbes int
	stageAThresh int
}

func newDecoder(p Params) (*decoder, error) {
	if p.W() < 4 {
		return nil, fmt.Errorf("core: W = R·MsgBits = %d too small (need ≥ 4)", p.W())
	}
	code, err := codes.NewBlockedBeepCode(p.W(), p.BlockSize(), p.M, rng.Mix(p.Seed, 0xc0de))
	if err != nil {
		return nil, err
	}
	dist, err := codes.NewRepetitionCode(p.MsgBits, p.R, rng.Mix(p.Seed, 0xd157))
	if err != nil {
		return nil, err
	}
	probes := p.W()
	if probes > 32 {
		probes = 32
	}
	// Reject in stage A only at a miss fraction well above the final
	// threshold, so members essentially never die in the filter.
	frac := float64(p.MembershipThreshold())/float64(p.W()) + 0.30
	if frac > 0.95 {
		frac = 0.95
	}
	return &decoder{
		p:            p,
		code:         code,
		dist:         dist,
		stageAProbes: probes,
		stageAThresh: int(math.Ceil(frac * float64(probes))),
	}, nil
}

// members returns R̃: every codeword cw whose positions are consistent
// with presence in the heard superimposition x — fewer than θ of its W
// positions read 0 (the Lemma 9 test with θ = (2ε+1)/4·W).
func (d *decoder) members(x *bitstring.BitString) []int {
	theta := d.p.MembershipThreshold()
	var out []int
	for cw := 0; cw < d.p.M; cw++ {
		misses := 0
		for j := 0; j < d.stageAProbes; j++ {
			if !x.Get(d.code.Position(cw, j)) {
				misses++
			}
		}
		if misses >= d.stageAThresh {
			continue
		}
		misses = 0
		for j := 0; j < d.p.W(); j++ {
			if !x.Get(d.code.Position(cw, j)) {
				misses++
				if misses >= theta {
					break
				}
			}
		}
		if misses < theta {
			out = append(out, cw)
		}
	}
	return out
}

// soloMask returns, for target codeword t, the blocks in which no other
// member codeword (the listener's own included) shares t's offset — the
// positions where the §4 analysis guarantees the listener hears only t's
// transmission plus channel noise.
func (d *decoder) soloMask(t int, members []int) *bitstring.BitString {
	w := d.p.W()
	solo := bitstring.New(w).Not()
	for _, s := range members {
		if s == t {
			continue
		}
		for j := 0; j < w; j++ {
			if d.code.Offset(s, j) == d.code.Offset(t, j) {
				solo.ClearBit(j)
			}
		}
	}
	return solo
}

// decodeMessage recovers the message carried by codeword t from the
// phase-2 observation y: it reads the paper's ỹ_{v,w} (the bits of y at
// t's positions) and runs the distance-code decoder with the solo mask.
func (d *decoder) decodeMessage(t int, y *bitstring.BitString, solo *bitstring.BitString) []byte {
	w := d.p.W()
	obs := bitstring.New(w)
	for j := 0; j < w; j++ {
		if y.Get(d.code.Position(t, j)) {
			obs.Set(j)
		}
	}
	return d.dist.Decode(obs, solo)
}

// encodePhase1 materializes C(cw) as a beep pattern.
func (d *decoder) encodePhase1(cw int) *bitstring.BitString {
	return d.code.Codeword(cw)
}

// encodePhase2 materializes CD(cw, msg) (Notation 7): D(msg) written into
// C(cw)'s one-positions.
func (d *decoder) encodePhase2(cw int, msg []byte) *bitstring.BitString {
	enc := d.dist.Encode(msg)
	out := bitstring.New(d.code.Length())
	for j := 0; j < d.p.W(); j++ {
		if enc.Get(j) {
			out.Set(d.code.Position(cw, j))
		}
	}
	return out
}
