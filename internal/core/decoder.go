package core

import (
	"fmt"
	"math"

	"repro/internal/bitstring"
	"repro/internal/codes"
	"repro/internal/rng"
	"repro/internal/wire"
)

// decoder implements the node-local decoding of §4. Everything it uses is
// information an honest node possesses: the public codes, the parameters,
// and the bits the node itself heard.
//
// The hot path is table-driven and word-parallel: the beep code's PRG
// hashing is paid once at construction (cached position/offset tables and
// codeword masks), the Lemma 9 membership test is a popcount sweep
// (mask ∧ ¬x̃), and the solo masks for a whole decoded member set are
// built in one pass over blocks. None of this changes any decoded bit —
// TestPropertyOptimizedMatchesNaive pins the output to a retained naive
// reference implementation.
type decoder struct {
	p    Params
	code *codes.BlockedBeepCode
	dist *codes.RepetitionCode

	// Stage-A filter: probe a prefix of blocks and discard codewords that
	// already look absent, leaving the exact §4 threshold test to the few
	// survivors. Purely an optimization — a codeword is accepted iff it
	// passes the full MembershipThreshold test.
	stageAProbes int
	stageAThresh int
	// The stage-A probes are the codeword's 1s in the first stageAProbes
	// blocks, i.e. its mask bits within the first stageABits positions —
	// so when that prefix is word-dense enough, the probe count runs as a
	// word-parallel prefix sweep instead of stageAProbes scalar probes.
	// Both compute the identical count; stageAWordSweep picks the cheaper.
	stageABits      int
	stageAWordSweep bool

	theta    int // MembershipThreshold, cached
	msgBytes int // ⌈MsgBits/8⌉

	// useBuckets selects how solo masks find offset collisions among the
	// decoded members: walking the code's (block, offset) collision
	// buckets, or a counting pass over the members' offset rows
	// (O(members·W) total for every mask at once). Both produce identical
	// masks (the property tests cover each); benchmarks favor the
	// counting pass even where buckets average under two entries — the
	// CSR double-indexing costs more than the three sequential row
	// passes — so production decoding keeps useBuckets off and the bucket
	// walk remains as the collision-table reference path.
	useBuckets bool
}

func newDecoder(p Params) (*decoder, error) {
	if p.W() < 4 {
		return nil, fmt.Errorf("core: W = R·MsgBits = %d too small (need ≥ 4)", p.W())
	}
	code, err := codes.SharedBlockedBeepCode(p.W(), p.BlockSize(), p.M, rng.Mix(p.Seed, 0xc0de))
	if err != nil {
		return nil, err
	}
	dist, err := codes.NewRepetitionCode(p.MsgBits, p.R, rng.Mix(p.Seed, 0xd157))
	if err != nil {
		return nil, err
	}
	probes := p.W()
	if probes > 32 {
		probes = 32
	}
	// Reject in stage A only at a miss fraction well above the final
	// threshold, so members essentially never die in the filter.
	frac := float64(p.MembershipThreshold())/float64(p.W()) + 0.30
	if frac > 0.95 {
		frac = 0.95
	}
	stageABits := probes * p.BlockSize()
	return &decoder{
		p:            p,
		code:         code,
		dist:         dist,
		stageAProbes: probes,
		stageAThresh: int(math.Ceil(frac * float64(probes))),
		stageABits:   stageABits,
		// The prefix sweep touches stageABits/64 words; the scalar path
		// touches stageAProbes random positions. Prefer the sweep until
		// blocks get so wide that the prefix outweighs the probes.
		stageAWordSweep: stageABits/64 <= 4*probes,
		theta:           p.MembershipThreshold(),
		msgBytes:        (p.MsgBits + 7) / 8,
		useBuckets:      false, // counting pass wins in benchmarks; see field doc
	}, nil
}

// Codes bundles the prebuilt, read-only decode tables of a
// parameterization — the beep-code position/offset/mask tables and the
// distance-code permutation, i.e. everything newDecoder hashes out of
// the PRG. A Codes value is a pure function of its Params (public
// shared knowledge in the paper's model), safe to share across any
// number of concurrent runners, and is the unit the sweep layer's
// artifact cache stores so a batch builds each parameterization's
// tables once.
type Codes struct {
	p   Params
	dec *decoder
}

// BuildCodes constructs the decode tables for p (validated only for
// internal consistency; NewBroadcastRunner still validates p against
// the graph).
func BuildCodes(p Params) (*Codes, error) {
	dec, err := newDecoder(p)
	if err != nil {
		return nil, err
	}
	return &Codes{p: p, dec: dec}, nil
}

// Params returns the parameterization the tables were built for.
func (c *Codes) Params() Params { return c.p }

// decodeScratch holds a decoder's per-worker mutable state, so that
// steady-state decoding allocates nothing. Each concurrent decode needs
// its own scratch (the runner keeps one per execution-pool shard); the
// decoder itself stays read-only and shareable.
type decodeScratch struct {
	members []int
	rows    [][]int32              // offset row per member
	solos   []*bitstring.BitString // W-bit solo mask per member
	soloW   [][]uint64             // solos[i].Words(), cached per soloMasks call
	// tags/counts are the counting path's per-offset occupancy: an
	// entry is current only when its tag matches the position's tag for
	// the present soloMasks call (tick advances by W per call, so tags
	// are unique across calls and positions and stale entries read as
	// zero without any per-call zeroing pass).
	tags   []uint64 // len BlockSize
	counts []int32  // len BlockSize
	tick   uint64
	stamp  []int32 // member stamps indexed by codeword (bucket path), len M
	gen    int32
}

func (d *decoder) newScratch() *decodeScratch {
	sc := &decodeScratch{}
	if d.useBuckets {
		sc.stamp = make([]int32, d.p.M)
	} else {
		sc.tags = make([]uint64, d.p.BlockSize())
		sc.counts = make([]int32, d.p.BlockSize())
	}
	return sc
}

// ensureMembers sizes the per-member scratch rows for k members.
func (sc *decodeScratch) ensureMembers(k, w int) {
	for len(sc.solos) < k {
		sc.solos = append(sc.solos, bitstring.New(w))
	}
	if cap(sc.rows) < k {
		sc.rows = make([][]int32, k)
		sc.soloW = make([][]uint64, k)
	}
	sc.rows = sc.rows[:k]
	sc.soloW = sc.soloW[:k]
}

// members returns R̃: every codeword cw whose positions are consistent
// with presence in the heard superimposition x — fewer than θ of its W
// positions read 0 (the Lemma 9 test with θ = (2ε+1)/4·W). The result is
// appended to out[:0] (callers pass a reused slice; nil allocates).
func (d *decoder) members(x *bitstring.BitString, out []int) []int {
	out = out[:0]
	for cw := 0; cw < d.p.M; cw++ {
		mask := d.code.Mask(cw)
		if d.stageAWordSweep {
			if mask.AndNotCountPrefixLimit(x, d.stageABits, d.stageAThresh) >= d.stageAThresh {
				continue
			}
		} else {
			probes := d.code.PositionRow(cw)[:d.stageAProbes]
			if x.CountZerosAtLimit(probes, d.stageAThresh) >= d.stageAThresh {
				continue
			}
		}
		if mask.AndNotCountLimit(x, d.theta) < d.theta {
			out = append(out, cw)
		}
	}
	return out
}

// soloMasks fills sc.solos[i], for each decoded member i, with the blocks
// in which no other member codeword (the listener's own included) shares
// member i's offset — the positions where the §4 analysis guarantees the
// listener hears only that member's transmission plus channel noise.
// All masks are built in one pass; sc.solos[i] is valid until the next
// soloMasks call on the same scratch.
func (d *decoder) soloMasks(members []int, sc *decodeScratch) {
	w := d.p.W()
	sc.ensureMembers(len(members), w)
	for i := range members {
		sc.solos[i].SetAll()
	}
	if len(members) < 2 {
		return
	}
	if d.useBuckets {
		d.soloMasksBuckets(members, sc)
		return
	}
	for i, cw := range members {
		sc.rows[i] = d.code.OffsetRow(cw)
		sc.soloW[i] = sc.solos[i].Words()
	}
	rows, tags, counts := sc.rows, sc.tags, sc.counts
	// One globally-unique tag per (call, position): base advances by W
	// per call, so an entry last touched by any earlier call — or an
	// earlier position of this call — can never alias the current one.
	base := sc.tick + 1
	sc.tick += uint64(w)
	for j := 0; j < w; j++ {
		tag := base + uint64(j)
		for i := range members {
			off := rows[i][j]
			if tags[off] != tag {
				tags[off] = tag
				counts[off] = 0
			}
			counts[off]++
		}
		wi, mask := j>>6, ^(uint64(1) << (uint(j) & 63))
		for i := range members {
			if counts[rows[i][j]] > 1 {
				sc.soloW[i][wi] &= mask
			}
		}
	}
}

// soloMasksBuckets is the collision-table variant of soloMasks: member i
// loses block j iff the (j, offset) bucket holds another stamped member.
func (d *decoder) soloMasksBuckets(members []int, sc *decodeScratch) {
	sc.gen++
	if sc.gen <= 0 { // overflow: invalidate every stamp and restart
		for i := range sc.stamp {
			sc.stamp[i] = 0 // 0 is never a generation (gen starts at 1)
		}
		sc.gen = 1
	}
	for _, cw := range members {
		sc.stamp[cw] = sc.gen
	}
	w := d.p.W()
	for i, cw := range members {
		row := d.code.OffsetRow(cw)
		solo := sc.solos[i]
		for j := 0; j < w; j++ {
			for _, other := range d.code.Bucket(j, int(row[j])) {
				if int(other) != cw && sc.stamp[other] == sc.gen {
					solo.ClearBit(j)
					break
				}
			}
		}
	}
}

// decodeMessage recovers the message carried by codeword t from the
// phase-2 observation y: it reads the paper's ỹ_{v,w} (the bits of y at
// t's positions) and runs the distance-code decoder with the solo mask,
// writing into out (which must hold ⌈MsgBits/8⌉ bytes). The gather and
// the per-bit majorities are fused (DecodeScatteredInto), so no
// intermediate observation string is materialized.
func (d *decoder) decodeMessage(t int, y, solo *bitstring.BitString, out []byte) []byte {
	return d.dist.DecodeScatteredInto(y, d.code.PositionRow(t), solo, out)
}

// encodePhase1 returns C(cw) as a beep pattern — the cached codeword
// mask, shared and read-only.
func (d *decoder) encodePhase1(cw int) *bitstring.BitString {
	return d.code.Mask(cw)
}

// encodePhase2Into writes CD(cw, msg) (Notation 7) into out: D(msg)
// scattered into C(cw)'s one-positions, fused through the distance code's
// permutation table so no intermediate codeword is materialized. out must
// have the code's full length.
func (d *decoder) encodePhase2Into(cw int, msg []byte, out *bitstring.BitString) {
	out.Reset()
	positions := d.code.PositionRow(cw)
	for j, pos := range positions {
		if wire.Bit(msg, d.dist.BitFor(j)) {
			out.Set(int(pos))
		}
	}
}

// encodePhase2 is encodePhase2Into with a freshly allocated pattern.
func (d *decoder) encodePhase2(cw int, msg []byte) *bitstring.BitString {
	out := bitstring.New(d.code.Length())
	d.encodePhase2Into(cw, msg, out)
	return out
}
