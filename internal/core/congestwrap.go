package core

import (
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/wire"
)

// CongestAdapter implements Corollary 12's reduction: a CONGEST algorithm
// executed over Broadcast CONGEST at a Δ-factor overhead. Round 0 is a
// discovery round in which every node broadcasts its ID (learning its
// neighbor set); thereafter each CONGEST round is simulated by Δ broadcast
// slots in which node v broadcasts ⟨ID_v, ID_u, m_{v→u}⟩ for each neighbor
// u in turn, and receivers keep the messages addressed to them.
//
// The adapter is itself a congest.BroadcastAlgorithm, so it runs both on
// the native Broadcast CONGEST engine (giving the Lemma 15-style upper
// bound) and under the beep-level BroadcastRunner (giving the Corollary 12
// O(Δ²log n) beeping simulation).
type CongestAdapter struct {
	// Inner is the CONGEST algorithm to execute.
	Inner congest.Algorithm

	env       congest.Env
	idBits    int
	innerBits int
	slots     int // broadcast slots per CONGEST round (= MaxDegree, min 1)

	neighbors   []int
	innerInited bool
	queue       []congest.Directed
	inbox       []congest.Incoming
	output      any
	failed      bool
}

var _ congest.BroadcastAlgorithm = (*CongestAdapter)(nil)

// AdapterMsgBits returns the outer (Broadcast CONGEST) bandwidth needed to
// carry innerBits-bit CONGEST messages between nodes with IDs in [n]:
// two ID fields plus the payload.
func AdapterMsgBits(n, innerBits int) int {
	return 2*wire.BitsFor(n) + innerBits
}

// Init implements congest.BroadcastAlgorithm.
func (c *CongestAdapter) Init(env congest.Env) {
	c.env = env
	c.idBits = wire.BitsFor(env.N)
	c.innerBits = env.MsgBits - 2*c.idBits
	c.slots = env.MaxDegree
	if c.slots < 1 {
		c.slots = 1
	}
	if c.innerBits <= 0 {
		// Bandwidth cannot carry addressing; fail closed (Broadcast can
		// legitimately carry nothing, and Done() reports completion).
		c.failed = true
		c.output = fmt.Errorf("core: adapter bandwidth %d bits cannot carry 2×%d-bit IDs", env.MsgBits, c.idBits)
	}
}

// Broadcast implements congest.BroadcastAlgorithm.
func (c *CongestAdapter) Broadcast(round int) congest.Message {
	if c.failed {
		return nil
	}
	if round == 0 {
		var w wire.Writer
		w.WriteUint(uint64(c.env.ID), c.idBits)
		return w.PaddedBytes(c.env.MsgBits)
	}
	slot := (round - 1) % c.slots
	if slot == 0 {
		c.prepareRound((round - 1) / c.slots)
	}
	if slot >= len(c.queue) {
		return nil
	}
	d := c.queue[slot]
	var w wire.Writer
	w.WriteUint(uint64(c.env.ID), c.idBits)
	w.WriteUint(uint64(d.To), c.idBits)
	for bit := 0; bit < c.innerBits; bit++ {
		w.WriteBool(wire.Bit(d.Msg, bit))
	}
	return w.PaddedBytes(c.env.MsgBits)
}

// prepareRound pulls the inner algorithm's sends for CONGEST round t and
// orders them deterministically by destination.
func (c *CongestAdapter) prepareRound(t int) {
	c.queue = nil
	if c.Inner.Done() {
		return
	}
	out := c.Inner.Send(t)
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	c.queue = out
}

// Receive implements congest.BroadcastAlgorithm.
func (c *CongestAdapter) Receive(round int, msgs []congest.Message) {
	if c.failed {
		return
	}
	if round == 0 {
		c.neighbors = c.neighbors[:0]
		seen := make(map[int]bool, len(msgs))
		for _, m := range msgs {
			id, err := wire.NewReader(m).ReadUint(c.idBits)
			if err != nil || int(id) >= c.env.N {
				continue // corrupted discovery message; drop
			}
			if !seen[int(id)] {
				seen[int(id)] = true
				c.neighbors = append(c.neighbors, int(id))
			}
		}
		sort.Ints(c.neighbors)
		inner := c.env
		inner.MsgBits = c.innerBits
		c.Inner.Init(inner, c.neighbors)
		c.innerInited = true
		return
	}
	t := (round - 1) / c.slots
	slot := (round - 1) % c.slots
	for _, m := range msgs {
		rd := wire.NewReader(m)
		from, err1 := rd.ReadUint(c.idBits)
		to, err2 := rd.ReadUint(c.idBits)
		if err1 != nil || err2 != nil || int(to) != c.env.ID || int(from) >= c.env.N {
			continue // not addressed to us (or corrupted)
		}
		payload := make(congest.Message, (c.innerBits+7)/8)
		for bit := 0; bit < c.innerBits; bit++ {
			b, err := rd.ReadBool()
			if err != nil {
				break
			}
			if b {
				wire.SetBit(payload, bit, true)
			}
		}
		c.inbox = append(c.inbox, congest.Incoming{From: int(from), Msg: payload})
	}
	if slot == c.slots-1 && !c.Inner.Done() {
		sort.Slice(c.inbox, func(i, j int) bool { return c.inbox[i].From < c.inbox[j].From })
		c.Inner.Receive(t, c.inbox)
		c.inbox = nil
	}
}

// Done implements congest.BroadcastAlgorithm.
func (c *CongestAdapter) Done() bool {
	return c.failed || (c.innerInited && c.Inner.Done())
}

// Output implements congest.BroadcastAlgorithm.
func (c *CongestAdapter) Output() any {
	if c.failed {
		return c.output
	}
	return c.Inner.Output()
}

// WrapCongest wraps each CONGEST algorithm in a CongestAdapter for
// execution on any Broadcast CONGEST engine.
func WrapCongest(algs []congest.Algorithm) []congest.BroadcastAlgorithm {
	out := make([]congest.BroadcastAlgorithm, len(algs))
	for i, a := range algs {
		out[i] = &CongestAdapter{Inner: a}
	}
	return out
}

// CongestRounds returns the Broadcast CONGEST rounds needed for t CONGEST
// rounds on a graph with maximum degree maxDeg: one discovery round plus
// Δ slots per round (Corollary 12's O(Δ) factor).
func CongestRounds(t, maxDeg int) int {
	if maxDeg < 1 {
		maxDeg = 1
	}
	return 1 + t*maxDeg
}
