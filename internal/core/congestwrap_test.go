package core

import (
	"fmt"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// pairXor is a CONGEST test algorithm: for two rounds, send each neighbor
// ID^round, then record what each neighbor sent.
type pairXor struct {
	env       congest.Env
	neighbors []int
	log       []string
	done      bool
}

func (p *pairXor) Init(env congest.Env, neighbors []int) {
	p.env = env
	p.neighbors = neighbors
}

func (p *pairXor) Send(round int) []congest.Directed {
	out := make([]congest.Directed, 0, len(p.neighbors))
	for _, u := range p.neighbors {
		var w wire.Writer
		w.WriteUint(uint64((p.env.ID+u+round)%p.env.N), wire.BitsFor(p.env.N))
		out = append(out, congest.Directed{To: u, Msg: w.PaddedBytes(p.env.MsgBits)})
	}
	return out
}

func (p *pairXor) Receive(round int, in []congest.Incoming) {
	for _, inc := range in {
		v, err := wire.NewReader(inc.Msg).ReadUint(wire.BitsFor(p.env.N))
		if err != nil {
			panic(err)
		}
		p.log = append(p.log, fmt.Sprintf("r%d:%d->%d", round, inc.From, v))
	}
	if round >= 1 {
		p.done = true
	}
}

func (p *pairXor) Done() bool  { return p.done }
func (p *pairXor) Output() any { return p.log }

// TestAdapterMatchesNativeCongest runs the same CONGEST algorithm on the
// native CONGEST engine and via CongestAdapter on the native Broadcast
// CONGEST engine: outputs must agree exactly (Corollary 12's reduction is
// lossless).
func TestAdapterMatchesNativeCongest(t *testing.T) {
	g := testGraph(t)
	const seed = 11
	inner := 2 * wire.BitsFor(g.N())
	outer := AdapterMsgBits(g.N(), inner)

	eng, err := congest.NewEngine(g, inner, seed)
	if err != nil {
		t.Fatal(err)
	}
	nat := make([]congest.Algorithm, g.N())
	for v := range nat {
		nat[v] = &pairXor{}
	}
	natRes, err := eng.Run(nat, 10)
	if err != nil {
		t.Fatal(err)
	}

	be, err := congest.NewBroadcastEngine(g, outer, seed)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]congest.Algorithm, g.N())
	for v := range wrapped {
		wrapped[v] = &pairXor{}
	}
	adRes, err := be.Run(WrapCongest(wrapped), CongestRounds(10, g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	if !adRes.AllDone {
		t.Fatal("adapter run did not finish")
	}
	for v := 0; v < g.N(); v++ {
		if fmt.Sprint(natRes.Outputs[v]) != fmt.Sprint(adRes.Outputs[v]) {
			t.Errorf("node %d:\nnative:  %v\nadapter: %v", v, natRes.Outputs[v], adRes.Outputs[v])
		}
	}
	// The adapter costs 1 + T·Δ broadcast rounds for T CONGEST rounds.
	wantRounds := CongestRounds(natRes.Rounds, g.MaxDegree())
	if adRes.Rounds > wantRounds {
		t.Errorf("adapter used %d broadcast rounds, want ≤ %d", adRes.Rounds, wantRounds)
	}
}

// TestAdapterOverBeeps composes both reductions: CONGEST → Broadcast
// CONGEST → noisy beeps, Corollary 12 end to end.
func TestAdapterOverBeeps(t *testing.T) {
	g := graph.RandomBoundedDegree(12, 3, 0.2, rng.New(200))
	const seed = 12
	inner := 2 * wire.BitsFor(g.N())
	outer := AdapterMsgBits(g.N(), inner)

	eng, err := congest.NewEngine(g, inner, seed)
	if err != nil {
		t.Fatal(err)
	}
	nat := make([]congest.Algorithm, g.N())
	for v := range nat {
		nat[v] = &pairXor{}
	}
	natRes, err := eng.Run(nat, 10)
	if err != nil {
		t.Fatal(err)
	}

	runner, err := NewBroadcastRunner(g, RunnerConfig{
		Params:      DefaultParams(g.N(), g.MaxDegree(), outer, 0.05),
		ChannelSeed: 21,
		AlgSeed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]congest.Algorithm, g.N())
	for v := range wrapped {
		wrapped[v] = &pairXor{}
	}
	simRes, err := runner.Run(WrapCongest(wrapped), CongestRounds(10, g.MaxDegree()))
	if err != nil {
		t.Fatal(err)
	}
	if simRes.MessageErrors != 0 {
		t.Fatalf("beep-level decode errors: %d", simRes.MessageErrors)
	}
	for v := 0; v < g.N(); v++ {
		if fmt.Sprint(natRes.Outputs[v]) != fmt.Sprint(simRes.Outputs[v]) {
			t.Errorf("node %d:\nnative: %v\nbeeps:  %v", v, natRes.Outputs[v], simRes.Outputs[v])
		}
	}
}

func TestAdapterMsgBits(t *testing.T) {
	// 2 IDs of 7 bits + 10 payload bits.
	if got := AdapterMsgBits(100, 10); got != 24 {
		t.Errorf("AdapterMsgBits(100,10) = %d, want 24", got)
	}
}

func TestAdapterFailsClosedOnTinyBandwidth(t *testing.T) {
	g := graph.Path(2)
	be, _ := congest.NewBroadcastEngine(g, 2, 1) // cannot fit 2 IDs
	algs := WrapCongest([]congest.Algorithm{&pairXor{}, &pairXor{}})
	res, err := be.Run(algs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Error("undersized adapter should report done immediately")
	}
	for _, out := range res.Outputs {
		if _, isErr := out.(error); !isErr {
			t.Error("undersized adapter should output an error")
		}
	}
}

func TestCongestRounds(t *testing.T) {
	if got := CongestRounds(5, 4); got != 21 {
		t.Errorf("CongestRounds(5,4) = %d, want 21", got)
	}
	if got := CongestRounds(3, 0); got != 4 {
		t.Errorf("CongestRounds(3,0) = %d, want 4", got)
	}
}
