package rng

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seeded stream looks degenerate")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	a := root.Split(1)
	b := root.Split(2)
	aAgain := New(7).Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		va, vb := a.Uint64(), b.Uint64()
		if va == vb {
			same++
		}
		if va != aAgain.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/100 outputs", same)
	}
}

func TestSplitMultiKey(t *testing.T) {
	root := New(7)
	if root.Split(1, 2).Uint64() == root.Split(2, 1).Uint64() {
		t.Error("Split(1,2) and Split(2,1) produced identical first outputs")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d seen %d times, want ≈%.0f", n, v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(9)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if rate := float64(hits) / trials; math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", rate)
	}
}

func TestPerm(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Shuffle lost elements: %v", xs)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(19)
	tests := []struct{ n, k int }{
		{n: 10, k: 0},
		{n: 10, k: 1},
		{n: 10, k: 5},
		{n: 10, k: 10},
		{n: 1000, k: 64},
	}
	for _, tt := range tests {
		got := r.SampleDistinct(tt.n, tt.k)
		if len(got) != tt.k {
			t.Fatalf("SampleDistinct(%d,%d) returned %d values", tt.n, tt.k, len(got))
		}
		seen := make(map[int]bool, tt.k)
		for _, v := range got {
			if v < 0 || v >= tt.n {
				t.Fatalf("SampleDistinct(%d,%d): value %d out of range", tt.n, tt.k, v)
			}
			if seen[v] {
				t.Fatalf("SampleDistinct(%d,%d): duplicate %d", tt.n, tt.k, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleDistinct(2,3) did not panic")
		}
	}()
	New(1).SampleDistinct(2, 3)
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element of [0,6) should appear in a 3-subset w.p. 1/2.
	r := New(23)
	counts := make([]int, 6)
	const trials = 60000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleDistinct(6, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		rate := float64(c) / trials
		if math.Abs(rate-0.5) > 0.01 {
			t.Errorf("element %d appears with rate %v, want ≈0.5", v, rate)
		}
	}
}

func TestFlipSamplerRate(t *testing.T) {
	tests := []float64{0.01, 0.05, 0.1, 0.25, 0.49}
	const limit = 200000
	for _, p := range tests {
		fs := NewFlipSampler(New(uint64(p*1000)), p)
		flips := 0
		last := -1
		for {
			pos, ok := fs.Next(limit)
			if !ok {
				break
			}
			if pos <= last {
				t.Fatalf("p=%v: positions not strictly increasing (%d after %d)", p, pos, last)
			}
			last = pos
			flips++
		}
		rate := float64(flips) / limit
		tol := 4 * math.Sqrt(p*(1-p)/limit)
		if math.Abs(rate-p) > tol+0.001 {
			t.Errorf("p=%v: flip rate %v", p, rate)
		}
	}
}

func TestFlipSamplerEdgeCases(t *testing.T) {
	fs := NewFlipSampler(New(1), 0)
	if _, ok := fs.Next(1 << 30); ok {
		t.Error("p=0 sampler produced a flip")
	}
	fs = NewFlipSampler(New(1), 1)
	for want := 0; want < 5; want++ {
		got, ok := fs.Next(5)
		if !ok || got != want {
			t.Fatalf("p=1 sampler: got (%d,%v), want (%d,true)", got, ok, want)
		}
	}
	if _, ok := fs.Next(5); ok {
		t.Error("p=1 sampler exceeded limit")
	}
}

func TestFlipSamplerResumesAcrossLimits(t *testing.T) {
	fs := NewFlipSampler(New(2), 0.5)
	var first []int
	for {
		pos, ok := fs.Next(100)
		if !ok {
			break
		}
		first = append(first, pos)
	}
	// Continue past the first window: positions must stay increasing and > 99.
	pos, ok := fs.Next(10000)
	if ok && len(first) > 0 && pos <= first[len(first)-1] {
		t.Errorf("sampler went backwards across windows: %d after %v", pos, first[len(first)-1])
	}
}

// TestSplitPositionInsensitive pins the Split contract: a split is a
// pure function of the parent's seed identity, so consuming from the
// parent (before or between splits) never changes any child stream.
func TestSplitPositionInsensitive(t *testing.T) {
	fresh := New(5).Split(9)
	consumed := New(5)
	for i := 0; i < 17; i++ {
		consumed.Uint64()
	}
	child := consumed.Split(9)
	for i := 0; i < 100; i++ {
		if a, b := fresh.Uint64(), child.Uint64(); a != b {
			t.Fatalf("child after parent consumption diverged at step %d: %#x vs %#x", i, a, b)
		}
	}
	// The contract recurses: a consumed child splits like a fresh one.
	grand := New(5).Split(9).Split(3)
	c := New(5).Split(9)
	c.Uint64()
	c.Uint64()
	fromConsumed := c.Split(3)
	for i := 0; i < 100; i++ {
		if a, b := grand.Uint64(), fromConsumed.Uint64(); a != b {
			t.Fatalf("grandchild after child consumption diverged at step %d", i)
		}
	}
}

func TestMixDistinct(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix is order-insensitive")
	}
	if Mix(1) == Mix(1, 0) {
		t.Error("Mix ignores trailing zero key")
	}
}

func TestPropertyIntnBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySplitDeterministic(t *testing.T) {
	f := func(seed, k1, k2 uint64) bool {
		a := New(seed).Split(k1, k2)
		b := New(seed).Split(k1, k2)
		return a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFlipSampler(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := NewFlipSampler(r, 0.05)
		for {
			if _, ok := fs.Next(100000); !ok {
				break
			}
		}
	}
}

// TestXorFlipsIntoBoundsCheck requires an explicit panic, with a
// recognizable message, when words cannot hold the requested window.
func TestXorFlipsIntoBoundsCheck(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("short words slice did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "XorFlipsInto") {
			t.Fatalf("panic %v does not identify XorFlipsInto", r)
		}
	}()
	fs := NewFlipSampler(New(3), 1) // certain path: every trial flips
	fs.XorFlipsInto(make([]uint64, 1), 0, 65)
}

// FuzzXorFlipsInto fuzzes the batch path against the scalar Next loop:
// for every (seed, rate, window partition) the flipped words and the
// post-call stream positions must agree exactly. Rates cover the special
// paths: p = 0 (never flips), p = 1 (certain), tiny and near-capacity
// geometric rates.
func FuzzXorFlipsInto(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(64), uint16(64), uint16(64))
	f.Add(uint64(99), uint8(1), uint16(1), uint16(63), uint16(300))
	f.Add(uint64(7), uint8(2), uint16(65), uint16(0), uint16(129))
	f.Add(uint64(42), uint8(3), uint16(5), uint16(1000), uint16(64))
	f.Add(uint64(0), uint8(4), uint16(0), uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, seed uint64, rateSel uint8, w1, w2, w3 uint16) {
		rates := []float64{0, 1e-9, 1e-3, 0.05, 0.3, 0.5 - 1e-12, 1}
		p := rates[int(rateSel)%len(rates)]
		batch := NewFlipSampler(New(seed), p)
		scalar := NewFlipSampler(New(seed), p)
		start := 0
		for _, w := range []int{int(w1) % 1024, int(w2) % 1024, int(w3) % 1024} {
			end := start + w
			nWords := (w + 63) / 64
			got := make([]uint64, nWords)
			want := make([]uint64, nWords)
			batch.XorFlipsInto(got, start, end)
			for {
				pos, ok := scalar.Next(end)
				if !ok {
					break
				}
				if pos < start {
					continue
				}
				i := pos - start
				want[i>>6] ^= 1 << (uint(i) & 63)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("p=%v window [%d,%d): word %d = %#x, want %#x", p, start, end, i, got[i], want[i])
				}
			}
			if batch.Peek() != scalar.Peek() {
				t.Fatalf("p=%v window [%d,%d): stream positions diverge (%d vs %d)", p, start, end, batch.Peek(), scalar.Peek())
			}
			start = end
		}
	})
}

// TestXorFlipsIntoMatchesScalarLoop pins the batch noise path to the
// scalar Next loop: identical flip positions, identical stream
// consumption, across windows and stale leading positions.
func TestXorFlipsIntoMatchesScalarLoop(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.3, 0.49, 1} {
		a := NewFlipSampler(New(99), p)
		b := NewFlipSampler(New(99), p)
		start := 0
		for _, window := range []int{1, 63, 64, 65, 300, 5} {
			end := start + window
			wantWords := make([]uint64, (window+63)/64)
			for {
				pos, ok := a.Next(end)
				if !ok {
					break
				}
				if pos >= start {
					i := pos - start
					wantWords[i>>6] ^= 1 << (uint(i) & 63)
				}
			}
			gotWords := make([]uint64, (window+63)/64)
			b.XorFlipsInto(gotWords, start, end)
			for i := range wantWords {
				if wantWords[i] != gotWords[i] {
					t.Fatalf("p=%v window [%d,%d): word %d = %#x, want %#x", p, start, end, i, gotWords[i], wantWords[i])
				}
			}
			if a.Peek() != b.Peek() {
				t.Fatalf("p=%v window [%d,%d): stream positions diverge (%d vs %d)", p, start, end, a.Peek(), b.Peek())
			}
			start = end
		}
		// Stale positions: a window starting past fresh samplers' flips
		// must consume (not emit) everything before its start.
		c := NewFlipSampler(New(7), p)
		d := NewFlipSampler(New(7), p)
		words := make([]uint64, 4)
		d.XorFlipsInto(words, 200, 456)
		for {
			pos, ok := c.Next(456)
			if !ok {
				break
			}
			if pos < 200 {
				continue
			}
			i := pos - 200
			words[i>>6] ^= 1 << (uint(i) & 63)
		}
		for i, w := range words {
			if w != 0 {
				t.Fatalf("p=%v: stale-skip window word %d differs by %#x", p, i, w)
			}
		}
		if c.Peek() != d.Peek() {
			t.Fatalf("p=%v: stale-skip window diverged (%d vs %d)", p, c.Peek(), d.Peek())
		}
	}
}
