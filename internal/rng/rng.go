// Package rng provides the deterministic, splittable randomness substrate
// for the reproduction. Every random choice in the system — node codeword
// picks, Luby values, channel noise — flows from a single experiment seed
// through hierarchical stream splits, so that every simulation, test, and
// experiment is reproducible bit-for-bit.
//
// The generator is xoshiro256** seeded via SplitMix64, following the
// reference construction of Blackman & Vigna. Streams are split by hashing
// the parent state with caller-supplied keys (node ID, round, purpose),
// which gives independent-for-our-purposes child streams without shared
// mutable state, so per-node streams can be used concurrently.
package rng

import (
	"fmt"
	"math"
)

// SplitMix64 advances the SplitMix64 state *x and returns the next output.
// It is used both for seeding and for cheap key mixing.
func SplitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes an arbitrary sequence of keys into a single 64-bit value.
// It is the basis of stream splitting.
func Mix(keys ...uint64) uint64 {
	state := uint64(0x6a09e667f3bcc909) // fractional bits of sqrt(2)
	for _, k := range keys {
		state ^= k
		_ = SplitMix64(&state)
		state ^= state >> 29
	}
	return SplitMix64(&state)
}

// Stream is a deterministic pseudo-random stream. The zero value is not
// usable; construct with New or Split.
type Stream struct {
	s    [4]uint64
	seed [4]uint64 // state at construction: the stream's split identity
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	st := new(Stream)
	st.reseed(seed)
	return st
}

// reseed initializes st in place exactly as New seeds a fresh stream.
func (st *Stream) reseed(seed uint64) {
	sm := seed
	for i := range st.s {
		st.s[i] = SplitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	st.seed = st.s
}

// Split derives an independent child stream keyed by keys. Splitting is a
// pure function of the parent's *seed identity*, not its consumption
// position: it hashes the state the parent was constructed with (not the
// current, mutated generator state) together with the keys, so consuming
// from the parent before splitting never changes its children. Use
// distinct keys for distinct purposes.
func (r *Stream) Split(keys ...uint64) *Stream {
	all := make([]uint64, 0, len(keys)+4)
	all = append(all, r.seed[0], r.seed[1], r.seed[2], r.seed[3])
	all = append(all, keys...)
	return New(Mix(all...))
}

// Split2Into seeds dst with the child stream Split(a, b) would return,
// without allocating. Engines deriving one stream per node per lane use
// it to fill pre-allocated stream blocks.
func (r *Stream) Split2Into(dst *Stream, a, b uint64) {
	dst.reseed(Mix(r.seed[0], r.seed[1], r.seed[2], r.seed[3], a, b))
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection method.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Stream) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n).
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly at random (Fisher–Yates).
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// SampleDistinct returns k distinct uniform values from [0, n) in arbitrary
// order. It panics if k > n or either is negative. It uses Floyd's
// algorithm, O(k) expected time and space.
func (r *Stream) SampleDistinct(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: SampleDistinct with invalid k, n")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// FlipSampler yields the positions of independent Bernoulli(p) successes
// over a stream of trials, using geometric skipping: expected O(p·n) work
// to scan n trials. It is the channel-noise sampler: each listening slot is
// flipped with probability ε, and FlipSampler enumerates exactly the
// flipped slots.
type FlipSampler struct {
	r       *Stream
	p       float64
	invLog  float64 // 1 / ln(1-p)
	next    int     // next flip position (absolute trial index)
	certain bool    // p >= 1: every trial flips
}

// NewFlipSampler returns a sampler over Bernoulli(p) trials starting at
// trial 0. p is clamped to [0, 1].
func NewFlipSampler(r *Stream, p float64) *FlipSampler {
	fs := &FlipSampler{r: r, p: p}
	switch {
	case p <= 0:
		fs.next = math.MaxInt
	case p >= 1:
		fs.certain = true
		fs.next = 0
	default:
		fs.invLog = 1 / math.Log1p(-p)
		fs.next = -1
		fs.advance()
	}
	return fs
}

// Next returns the next flip position, or (0, false) once positions reach
// or exceed limit. Successive calls enumerate positions in increasing
// order; the sampler then continues past limit on later calls with a larger
// limit.
func (fs *FlipSampler) Next(limit int) (int, bool) {
	if fs.next >= limit {
		return 0, false
	}
	pos := fs.next
	fs.advance()
	return pos, true
}

// Peek returns the next flip position without consuming it. If p = 0 the
// returned position is effectively infinite (math.MaxInt).
func (fs *FlipSampler) Peek() int { return fs.next }

// Skip consumes the current flip position.
func (fs *FlipSampler) Skip() { fs.advance() }

// XorFlipsInto XORs the sampler's flip positions in [start, end) into
// words: absolute position abs lands on bit abs-start. Positions before
// start are consumed and discarded (they belong to windows the caller
// already processed), exactly like the equivalent Next loop. It is the
// batch form of Next+Flip — one call per reception window instead of one
// call and one bounds-checked bit flip per noise event — and consumes
// the underlying stream identically, so the enumerated positions are
// bit-for-bit those the scalar loop yields.
func (fs *FlipSampler) XorFlipsInto(words []uint64, start, end int) {
	next := fs.next
	if next >= end {
		return
	}
	if need := (end - start + 63) >> 6; end > start && len(words) < need {
		panic(fmt.Sprintf("rng: XorFlipsInto: %d words cannot hold window [%d,%d) (%d bits need %d words)",
			len(words), start, end, end-start, need))
	}
	if fs.certain {
		for ; next < end; next++ {
			if next >= start {
				i := next - start
				words[i>>6] ^= 1 << (uint(i) & 63)
			}
		}
		fs.next = next
		return
	}
	for next < start { // stale positions from earlier windows
		next += 1 + fs.gap()
	}
	for next < end {
		i := next - start
		words[i>>6] ^= 1 << (uint(i) & 63)
		next += 1 + fs.gap()
	}
	fs.next = next
}

// gap draws one Geometric(p) inter-flip gap: floor(ln(U)/ln(1-p)) has the
// right distribution for the number of failures before the next success.
// It is the single source of gap draws, so the batch and scalar paths
// consume the underlying stream identically by construction.
func (fs *FlipSampler) gap() int {
	u := fs.r.Float64()
	for u == 0 {
		u = fs.r.Float64()
	}
	g := int(math.Log(u) * fs.invLog)
	if g < 0 {
		g = 0
	}
	return g
}

func (fs *FlipSampler) advance() {
	if fs.certain {
		fs.next++
		return
	}
	fs.next += 1 + fs.gap()
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	w0 := t & mask32
	carry := t >> 32
	t = aHi*bLo + carry
	w1 := t & mask32
	w2 := t >> 32
	t = aLo*bHi + w1
	hi = aHi*bHi + w2 + t>>32
	lo = t<<32 | w0
	return hi, lo
}
