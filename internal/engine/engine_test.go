package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSpansTileAndAlign(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		for _, shards := range []int{0, 1, 3, 64} {
			p := NewPool(workers, shards)
			for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096} {
				spans := p.Spans(n)
				if n == 0 {
					if len(spans) != 0 {
						t.Fatalf("Spans(0) = %v", spans)
					}
					continue
				}
				at := 0
				for i, s := range spans {
					if s.Index != i {
						t.Fatalf("span %d has Index %d", i, s.Index)
					}
					if s.Lo != at {
						t.Fatalf("n=%d: span %d starts at %d, want %d", n, i, s.Lo, at)
					}
					if s.Lo%64 != 0 {
						t.Fatalf("n=%d: span %d start %d not word-aligned", n, i, s.Lo)
					}
					if s.Hi <= s.Lo {
						t.Fatalf("n=%d: empty span %v", n, s)
					}
					if s.Hi%64 != 0 && s.Hi != n {
						t.Fatalf("n=%d: interior span boundary %d not word-aligned", n, s.Hi)
					}
					at = s.Hi
				}
				if at != n {
					t.Fatalf("n=%d: spans end at %d", n, at)
				}
				if len(spans) != p.NumShards(n) {
					t.Fatalf("NumShards(%d) = %d, want %d", n, p.NumShards(n), len(spans))
				}
			}
		}
	}
}

func TestSpansIndependentOfWorkers(t *testing.T) {
	// Same shard count, different worker counts: identical decomposition.
	a := NewPool(1, 8).Spans(1000)
	b := NewPool(16, 8).Spans(1000)
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDoCoversEveryVertexOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers, 0)
		const n = 517
		var hits [n]int32
		p.Do(n, func(s Span) {
			for v := s.Lo; v < s.Hi; v++ {
				atomic.AddInt32(&hits[v], 1)
			}
		})
		for v, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: vertex %d visited %d times", workers, v, h)
			}
		}
	}
}

func TestSumMatchesSerial(t *testing.T) {
	const n = 2049
	want := int64(n) * int64(n-1) / 2
	for _, workers := range []int{1, 3, 8} {
		for _, shards := range []int{1, 5, 100} {
			p := NewPool(workers, shards)
			got := p.Sum(n, func(s Span) int64 {
				var sum int64
				for v := s.Lo; v < s.Hi; v++ {
					sum += int64(v)
				}
				return sum
			})
			if got != want {
				t.Fatalf("workers=%d shards=%d: Sum = %d, want %d", workers, shards, got, want)
			}
		}
	}
}

func TestSumErrReportsLowestSpanError(t *testing.T) {
	p := NewPool(4, 10)
	const n = 640
	// Every span past the first errors; the reported error must be the
	// lowest-numbered span's — what a serial vertex loop would hit first.
	_, err := p.SumErr(n, func(s Span) (int64, error) {
		if s.Index >= 2 {
			return 0, fmt.Errorf("span %d failed", s.Index)
		}
		return 0, nil
	})
	if err == nil || err.Error() != "span 2 failed" {
		t.Fatalf("err = %v, want span 2's", err)
	}
	if err := p.DoErr(n, func(s Span) error { return nil }); err != nil {
		t.Fatalf("DoErr with no failures = %v", err)
	}
}

func TestAllDone(t *testing.T) {
	p := NewPool(4, 6)
	done := make([]bool, 300)
	for i := range done {
		done[i] = true
	}
	if !p.AllDone(len(done), func(v int) bool { return done[v] }) {
		t.Fatal("AllDone false on all-true")
	}
	done[271] = false
	if p.AllDone(len(done), func(v int) bool { return done[v] }) {
		t.Fatal("AllDone true with a straggler")
	}
	if !p.AllDone(0, func(int) bool { return false }) {
		t.Fatal("AllDone(0) should be vacuously true")
	}
}

func TestLoopSemantics(t *testing.T) {
	p := NewPool(2, 4)
	const n = 100
	remaining := 3 // all nodes finish after 3 steps
	done := func(int) bool { return remaining == 0 }
	steps := 0
	rounds, all, err := p.Loop(n, 10, done, func(round int) error {
		if round != steps {
			t.Fatalf("step saw round %d, want %d", round, steps)
		}
		steps++
		remaining--
		return nil
	})
	if err != nil || !all || rounds != 3 || steps != 3 {
		t.Fatalf("Loop = (%d, %v, %v), steps=%d; want (3, true, nil), 3", rounds, all, err, steps)
	}

	// Budget exhaustion without completion.
	rounds, all, err = p.Loop(n, 4, func(int) bool { return false }, func(int) error { return nil })
	if err != nil || all || rounds != 4 {
		t.Fatalf("Loop = (%d, %v, %v), want (4, false, nil)", rounds, all, err)
	}

	// A step error aborts.
	boom := errors.New("boom")
	rounds, all, err = p.Loop(n, 10, func(int) bool { return false }, func(round int) error {
		if round == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || all || rounds != 1 {
		t.Fatalf("Loop = (%d, %v, %v), want (1, false, boom)", rounds, all, err)
	}
}

func TestZeroValuePoolIsSerial(t *testing.T) {
	var p Pool
	if p.Parallel() {
		t.Fatal("zero pool should be serial")
	}
	sum := p.Sum(130, func(s Span) int64 { return int64(s.Hi - s.Lo) })
	if sum != 130 {
		t.Fatalf("zero pool Sum = %d", sum)
	}
}
