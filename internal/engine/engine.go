// Package engine is the shared round-execution substrate of every
// simulator in the reproduction: the beeping network (internal/beep), the
// native CONGEST engines (internal/congest), the TDMA baseline
// (internal/baseline), and the Algorithm 1 runner (internal/core) all
// drive their per-round node phases through one deterministic sharded
// worker pool instead of ad-hoc serial loops or hand-rolled goroutine
// striding.
//
// # Determinism contract
//
// A Pool never changes what is computed — only where. The vertex range
// [0, n) is decomposed into spans whose boundaries are multiples of 64 and
// depend only on n and the shard count, never on the worker count. Phase
// callbacks must confine their writes to per-vertex slots (slice elements
// indexed by v) or to bitset words covering their own span — which the
// 64-alignment guarantees never straddle a span boundary — and must draw
// randomness only from per-vertex streams (the rng package's split
// scheme). Under that discipline, which all engines in this repository
// follow, a run with Workers=k is bit-identical to the serial run for
// every k: same outputs, same transcripts, same error values, same
// summed counters. The equivalence tests in each engine package assert
// exactly this.
//
// Reductions preserve determinism the same way: Sum adds per-span partial
// sums in span order, and DoErr reports the error of the lowest-numbered
// failing span (callbacks return their first error in vertex order), which
// is the error the serial loop would have hit first.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Span is one shard of the vertex range: vertices [Lo, Hi), with Index
// giving its position in the decomposition (spans tile [0, n) in order).
type Span struct {
	Index  int
	Lo, Hi int
}

// Pool executes per-vertex phases over word-aligned spans with a fixed
// number of workers. The zero value is a serial pool with a single span
// (use NewPool for the load-balanced default sharding); Pools are
// immutable (the span cache aside) and safe for concurrent use.
type Pool struct {
	workers int
	shards  int
	// spans caches the last decomposition: engines call Spans/NumShards
	// several times per round for one fixed n, and the result is a pure
	// function of (n, shards).
	spans atomic.Pointer[spanCache]
	// metrics, when set via Instrument, observes Do calls. Observation
	// only: per the determinism contract it never changes what or where
	// anything is computed.
	metrics atomic.Pointer[PoolMetrics]
}

// PoolMetrics are the pool's telemetry sinks (internal/obs handles):
// Do counts phase dispatches, Spans counts spans executed, and Wait
// times each Do call (dispatch to completion barrier — the "span wait"
// a caller experiences). Any field may be nil.
type PoolMetrics struct {
	Do    *obs.Counter
	Spans *obs.Counter
	Wait  *obs.Timer
}

// Instrument attaches metrics to the pool. Call once at construction
// time; passing nil detaches. Safe concurrently with Do, though the
// intended use is configure-then-run.
func (p *Pool) Instrument(m *PoolMetrics) {
	if p != nil {
		p.metrics.Store(m)
	}
}

type spanCache struct {
	n     int
	spans []Span
}

// NewPool returns a pool with the given worker and shard counts.
// workers <= 1 selects serial execution; workers == AutoWorkers uses
// runtime.GOMAXPROCS. shards <= 0 picks a default that load-balances the
// configured workers (and is a pure function of the worker count, so a
// given configuration always produces the same decomposition).
func NewPool(workers, shards int) *Pool {
	if workers == AutoWorkers {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if shards <= 0 {
		shards = 4 * workers
	}
	return &Pool{workers: workers, shards: shards}
}

// AutoWorkers selects runtime.GOMAXPROCS workers in NewPool and in the
// engines' Workers knobs.
const AutoWorkers = -1

// Workers returns the configured worker count (>= 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Parallel reports whether the pool runs phases on multiple goroutines.
func (p *Pool) Parallel() bool { return p.Workers() > 1 }

// NumShards returns the number of spans Spans(n) produces for n vertices.
// Use it to size per-span scratch indexed by Span.Index.
func (p *Pool) NumShards(n int) int { return len(p.Spans(n)) }

// Spans decomposes [0, n) into at most the configured shard count of
// word-aligned spans: every boundary except possibly n itself is a
// multiple of 64, so bitset writes for distinct spans touch distinct
// words. The decomposition depends only on n and the shard count. The
// returned slice is shared (and cached); callers must not modify it.
func (p *Pool) Spans(n int) []Span {
	if n <= 0 {
		return nil
	}
	if p != nil {
		if c := p.spans.Load(); c != nil && c.n == n {
			return c.spans
		}
	}
	shards := 1
	if p != nil && p.shards > 0 {
		shards = p.shards
	}
	words := (n + 63) / 64
	wordsPerSpan := (words + shards - 1) / shards
	if wordsPerSpan < 1 {
		wordsPerSpan = 1
	}
	spans := make([]Span, 0, (words+wordsPerSpan-1)/wordsPerSpan)
	for lo := 0; lo < n; lo += wordsPerSpan * 64 {
		hi := lo + wordsPerSpan*64
		if hi > n {
			hi = n
		}
		spans = append(spans, Span{Index: len(spans), Lo: lo, Hi: hi})
	}
	if p != nil {
		p.spans.Store(&spanCache{n: n, spans: spans})
	}
	return spans
}

// Do runs fn over every span of [0, n), in parallel when the pool has
// multiple workers. It returns when all spans have completed.
func (p *Pool) Do(n int, fn func(Span)) {
	spans := p.Spans(n)
	if len(spans) == 0 {
		return
	}
	if p != nil {
		if m := p.metrics.Load(); m != nil {
			m.Do.Inc()
			m.Spans.Add(int64(len(spans)))
			sp := m.Wait.Start()
			defer sp.Stop()
		}
	}
	workers := p.Workers()
	if workers == 1 || len(spans) == 1 {
		for _, s := range spans {
			fn(s)
		}
		return
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(spans) {
					return
				}
				fn(spans[i])
			}
		}()
	}
	wg.Wait()
}

// DoMasked runs fn over the spans of [0, n) whose vertex range satisfies
// active — the sparse-frontier form of Do, letting engines skip spans
// whose reception window is quiescent. active must be a pure read (it is
// probed serially, in span order, before dispatch); fn sees exactly the
// spans active admitted, executed under the same determinism contract as
// Do. Span.Index still refers to the full decomposition, so per-span
// scratch indexed by it keeps working.
func (p *Pool) DoMasked(n int, active func(lo, hi int) bool, fn func(Span)) {
	spans := p.Spans(n)
	if len(spans) == 0 {
		return
	}
	live := make([]Span, 0, len(spans))
	for _, s := range spans {
		if active(s.Lo, s.Hi) {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		return
	}
	if p != nil {
		if m := p.metrics.Load(); m != nil {
			m.Do.Inc()
			m.Spans.Add(int64(len(live)))
			sp := m.Wait.Start()
			defer sp.Stop()
		}
	}
	workers := p.Workers()
	if workers == 1 || len(live) == 1 {
		for _, s := range live {
			fn(s)
		}
		return
	}
	if workers > len(live) {
		workers = len(live)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(live) {
					return
				}
				fn(live[i])
			}
		}()
	}
	wg.Wait()
}

// DoErr runs fn over every span and returns the error of the
// lowest-numbered span that failed (nil if none did). Callbacks should
// return their first error in vertex order; the reported error is then
// exactly the one a serial vertex loop would have returned. All spans are
// executed even when one fails, so callbacks must keep their writes valid
// (slot writes are; the caller discards results on error anyway).
func (p *Pool) DoErr(n int, fn func(Span) error) error {
	numShards := p.NumShards(n)
	if numShards == 0 {
		return nil
	}
	errs := make([]error, numShards)
	p.Do(n, func(s Span) {
		errs[s.Index] = fn(s)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sum runs fn over every span and returns the sum of the partial results,
// accumulated in span order.
func (p *Pool) Sum(n int, fn func(Span) int64) int64 {
	numShards := p.NumShards(n)
	if numShards == 0 {
		return 0
	}
	parts := make([]int64, numShards)
	p.Do(n, func(s Span) {
		parts[s.Index] = fn(s)
	})
	var total int64
	for _, v := range parts {
		total += v
	}
	return total
}

// SumErr combines Sum and DoErr: fn returns a partial sum and an error per
// span; SumErr returns the span-ordered total and the error of the
// lowest-numbered failing span (a failing span's partial sum is still
// included, matching a serial loop that counts until it hits the error —
// callers discard the total on error anyway).
func (p *Pool) SumErr(n int, fn func(Span) (int64, error)) (int64, error) {
	numShards := p.NumShards(n)
	if numShards == 0 {
		return 0, nil
	}
	parts := make([]int64, numShards)
	errs := make([]error, numShards)
	p.Do(n, func(s Span) {
		parts[s.Index], errs[s.Index] = fn(s)
	})
	var total int64
	for _, v := range parts {
		total += v
	}
	for _, err := range errs {
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// AllDone reports whether done(v) holds for every v in [0, n). It scans
// serially with an early exit: on every round but the last the first
// straggler answers in O(1), which beats fanning the scan out to
// workers. done must be a pure read.
func (p *Pool) AllDone(n int, done func(v int) bool) bool {
	for v := 0; v < n; v++ {
		if !done(v) {
			return false
		}
	}
	return true
}

// Loop is the round-execution skeleton shared by every engine: it runs
// step(round) for round = 0, 1, ... until all n nodes are done or
// maxRounds rounds elapse, checking done (AllDone's serial early-exit
// scan) before each round. It returns the number of rounds executed,
// whether every node finished, and the first step error (which aborts
// the loop).
func (p *Pool) Loop(n, maxRounds int, done func(v int) bool, step func(round int) error) (rounds int, allDone bool, err error) {
	for rounds = 0; rounds < maxRounds; rounds++ {
		if p.AllDone(n, done) {
			return rounds, true, nil
		}
		if err := step(rounds); err != nil {
			return rounds, false, err
		}
	}
	return rounds, p.AllDone(n, done), nil
}
