package engine

import (
	"sync"
	"testing"
)

// TestDoMaskedFiltersSpans checks the predicate contract: fn sees exactly
// the admitted spans, Span.Index still refers to the full decomposition,
// and serial and parallel pools admit the identical set.
func TestDoMaskedFiltersSpans(t *testing.T) {
	const n = 64 * 40
	collect := func(workers int, active func(lo, hi int) bool) map[int][2]int {
		p := NewPool(workers, 8)
		var mu sync.Mutex
		got := map[int][2]int{}
		p.DoMasked(n, active, func(s Span) {
			mu.Lock()
			got[s.Index] = [2]int{s.Lo, s.Hi}
			mu.Unlock()
		})
		return got
	}
	preds := map[string]func(lo, hi int) bool{
		"none": func(lo, hi int) bool { return false },
		"all":  func(lo, hi int) bool { return true },
		"even": func(lo, hi int) bool { return (lo/64)%2 == 0 },
		"one":  func(lo, hi int) bool { return lo <= 1000 && 1000 < hi },
	}
	for name, pred := range preds {
		serial := collect(1, pred)
		parallel := collect(4, pred)
		if len(serial) != len(parallel) {
			t.Fatalf("%s: serial admitted %d spans, parallel %d", name, len(serial), len(parallel))
		}
		for idx, rng := range serial {
			if parallel[idx] != rng {
				t.Fatalf("%s: span %d differs: %v vs %v", name, idx, rng, parallel[idx])
			}
		}
		// Cross-check against Do over the full decomposition.
		full := map[int][2]int{}
		NewPool(1, 8).Do(n, func(s Span) {
			if pred(s.Lo, s.Hi) {
				full[s.Index] = [2]int{s.Lo, s.Hi}
			}
		})
		if len(full) != len(serial) {
			t.Fatalf("%s: DoMasked admitted %d spans, Do-filtered %d", name, len(serial), len(full))
		}
		for idx, rng := range full {
			if serial[idx] != rng {
				t.Fatalf("%s: span %d: DoMasked %v vs Do %v", name, idx, serial[idx], rng)
			}
		}
	}
}

// TestDoMaskedCoversAllVertices runs a per-vertex write under an all-pass
// mask and checks full coverage, serial vs parallel.
func TestDoMaskedCoversAllVertices(t *testing.T) {
	const n = 64*7 + 13
	for _, workers := range []int{1, 3, AutoWorkers} {
		p := NewPool(workers, 0)
		seen := make([]int, n)
		p.DoMasked(n, func(lo, hi int) bool { return true }, func(s Span) {
			for v := s.Lo; v < s.Hi; v++ {
				seen[v]++
			}
		})
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: vertex %d visited %d times", workers, v, c)
			}
		}
	}
}
