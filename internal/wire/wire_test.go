package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsFor(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{n: 1, want: 1},
		{n: 2, want: 1},
		{n: 3, want: 2},
		{n: 4, want: 2},
		{n: 5, want: 3},
		{n: 8, want: 3},
		{n: 9, want: 4},
		{n: 1024, want: 10},
		{n: 1025, want: 11},
	}
	for _, tt := range tests {
		if got := BitsFor(tt.n); got != tt.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBitsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BitsFor(0) did not panic")
		}
	}()
	BitsFor(0)
}

func TestWriteReadRoundTrip(t *testing.T) {
	var w Writer
	w.WriteUint(5, 3)
	w.WriteBool(true)
	w.WriteUint(1023, 10)
	w.WriteUint(0, 0) // zero-width field is a no-op
	w.WriteBool(false)
	w.WriteUint(1<<63, 64)
	if got, want := w.BitLen(), 3+1+10+0+1+64; got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}

	r := NewReader(w.Bytes())
	if v, err := r.ReadUint(3); err != nil || v != 5 {
		t.Errorf("field 1 = (%d,%v), want 5", v, err)
	}
	if v, err := r.ReadBool(); err != nil || !v {
		t.Errorf("field 2 = (%v,%v), want true", v, err)
	}
	if v, err := r.ReadUint(10); err != nil || v != 1023 {
		t.Errorf("field 3 = (%d,%v), want 1023", v, err)
	}
	if v, err := r.ReadBool(); err != nil || v {
		t.Errorf("field 4 = (%v,%v), want false", v, err)
	}
	if v, err := r.ReadUint(64); err != nil || v != 1<<63 {
		t.Errorf("field 5 = (%d,%v), want 1<<63", v, err)
	}
}

func TestWriteOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteUint(4, 2) did not panic")
		}
	}()
	var w Writer
	w.WriteUint(4, 2)
}

func TestWriteBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WriteUint width 65 did not panic")
		}
	}()
	var w Writer
	w.WriteUint(0, 65)
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadUint(8); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := r.ReadUint(1); err == nil {
		t.Error("read past end did not error")
	}
}

func TestReadBadWidth(t *testing.T) {
	r := NewReader([]byte{0})
	if _, err := r.ReadUint(-1); err == nil {
		t.Error("negative width did not error")
	}
	if _, err := r.ReadUint(65); err == nil {
		t.Error("width 65 did not error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
	if _, err := r.ReadUint(5); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 11 {
		t.Errorf("Remaining = %d, want 11", r.Remaining())
	}
}

func TestPaddedBytes(t *testing.T) {
	var w Writer
	w.WriteUint(3, 2)
	out := w.PaddedBytes(20)
	if len(out) != 3 {
		t.Fatalf("PaddedBytes length = %d, want 3", len(out))
	}
	if out[0] != 3 || out[1] != 0 || out[2] != 0 {
		t.Errorf("PaddedBytes = %v", out)
	}
}

func TestPaddedBytesPanicsWhenOverBudget(t *testing.T) {
	var w Writer
	w.WriteUint(0, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("PaddedBytes under budget did not panic")
		}
	}()
	w.PaddedBytes(8)
}

func TestBitAndSetBit(t *testing.T) {
	msg := make([]byte, 2)
	SetBit(msg, 0, true)
	SetBit(msg, 9, true)
	if !Bit(msg, 0) || !Bit(msg, 9) || Bit(msg, 1) {
		t.Errorf("Bit/SetBit mismatch: %v", msg)
	}
	SetBit(msg, 9, false)
	if Bit(msg, 9) {
		t.Error("SetBit(false) did not clear")
	}
	// Out-of-range reads are zero, not panics (padding semantics).
	if Bit(msg, 16) || Bit(msg, -1) {
		t.Error("out-of-range Bit read non-zero")
	}
}

func TestSetBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetBit out of range did not panic")
		}
	}()
	SetBit(make([]byte, 1), 8, true)
}

func TestEqualPadding(t *testing.T) {
	a := []byte{0b101}
	b := []byte{0b101, 0x00}
	if !Equal(a, b, 16) {
		t.Error("messages equal up to zero padding reported unequal")
	}
	c := []byte{0b111}
	if Equal(a, c, 3) {
		t.Error("different messages reported equal")
	}
	if !Equal(a, c, 1) {
		t.Error("messages agreeing on compared prefix reported unequal")
	}
}

func TestPropertyRoundTripRandomFields(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nFields := r.Intn(10) + 1
		widths := make([]int, nFields)
		values := make([]uint64, nFields)
		var w Writer
		for i := range widths {
			widths[i] = r.Intn(64) + 1
			values[i] = r.Uint64()
			if widths[i] < 64 {
				values[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteUint(values[i], widths[i])
		}
		rd := NewReader(w.Bytes())
		for i := range widths {
			v, err := rd.ReadUint(widths[i])
			if err != nil || v != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBitLenMatchesWidthSum(t *testing.T) {
	f := func(widthsRaw []uint8) bool {
		var w Writer
		sum := 0
		for _, wr := range widthsRaw {
			width := int(wr % 65)
			w.WriteUint(0, width)
			sum += width
		}
		return w.BitLen() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
