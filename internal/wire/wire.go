// Package wire implements the bit-level message codec used by the
// message-passing models. Broadcast CONGEST and CONGEST messages are
// γ·log n-bit strings (paper §3); algorithms pack typed fields (IDs, Luby
// values, tags) into fixed-width bit fields so that the beep-level
// simulation transmits exactly the bits the model allows.
//
// The encoding is little-endian within each byte: bit offset k of the
// message lives at byte k/8, bit k%8.
package wire

import "fmt"

// BitsFor returns the number of bits needed to represent every value in
// [0, n), with a minimum of 1. It panics if n <= 0.
func BitsFor(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("wire: BitsFor(%d)", n))
	}
	bits := 1
	for v := n - 1; v > 1; v >>= 1 {
		bits++
	}
	return bits
}

// Writer appends fixed-width unsigned fields to a bit buffer.
// The zero value is an empty writer ready for use.
type Writer struct {
	buf    []byte
	bitLen int
}

// WriteUint appends the width low-order bits of v. It panics if width is
// outside [0, 64] or if v does not fit in width bits (a programming error:
// the message format would silently corrupt otherwise).
func (w *Writer) WriteUint(v uint64, width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("wire: invalid field width %d", width))
	}
	if width < 64 && v >= 1<<uint(width) {
		panic(fmt.Sprintf("wire: value %d does not fit in %d bits", v, width))
	}
	for i := 0; i < width; i++ {
		byteIdx := w.bitLen / 8
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if v&(1<<uint(i)) != 0 {
			w.buf[byteIdx] |= 1 << uint(w.bitLen%8)
		}
		w.bitLen++
	}
}

// WriteBool appends a single bit.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteUint(1, 1)
	} else {
		w.WriteUint(0, 1)
	}
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return w.bitLen }

// Bytes returns the encoded message. Unused bits of the final byte are
// zero. The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// PaddedBytes returns the encoded message padded with zero bits up to
// exactly totalBits. It panics if more than totalBits bits were written.
func (w *Writer) PaddedBytes(totalBits int) []byte {
	if w.bitLen > totalBits {
		panic(fmt.Sprintf("wire: message is %d bits, exceeds budget %d", w.bitLen, totalBits))
	}
	out := make([]byte, (totalBits+7)/8)
	copy(out, w.buf)
	return out
}

// Reader consumes fixed-width unsigned fields from a bit buffer.
type Reader struct {
	buf    []byte
	bitPos int
}

// NewReader returns a Reader over msg. The reader does not copy msg.
func NewReader(msg []byte) *Reader { return &Reader{buf: msg} }

// ReadUint consumes the next width bits and returns them as an unsigned
// value. It returns an error if fewer than width bits remain.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("wire: invalid field width %d", width)
	}
	if r.bitPos+width > 8*len(r.buf) {
		return 0, fmt.Errorf("wire: read of %d bits at offset %d exceeds message of %d bits",
			width, r.bitPos, 8*len(r.buf))
	}
	var v uint64
	for i := 0; i < width; i++ {
		if r.buf[r.bitPos/8]&(1<<uint(r.bitPos%8)) != 0 {
			v |= 1 << uint(i)
		}
		r.bitPos++
	}
	return v, nil
}

// ReadBool consumes one bit.
func (r *Reader) ReadBool() (bool, error) {
	v, err := r.ReadUint(1)
	return v == 1, err
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return 8*len(r.buf) - r.bitPos }

// Bit returns bit k of msg, treating positions beyond the buffer as 0.
// This is how the simulator reads message bits for transmission: messages
// are conceptually padded with zeros to the model's bandwidth.
func Bit(msg []byte, k int) bool {
	if k < 0 || k/8 >= len(msg) {
		return false
	}
	return msg[k/8]&(1<<uint(k%8)) != 0
}

// SetBit sets bit k of msg to v. It panics if k is out of range of the
// buffer.
func SetBit(msg []byte, k int, v bool) {
	if k < 0 || k/8 >= len(msg) {
		panic(fmt.Sprintf("wire: SetBit(%d) out of range for %d-byte buffer", k, len(msg)))
	}
	if v {
		msg[k/8] |= 1 << uint(k%8)
	} else {
		msg[k/8] &^= 1 << uint(k%8)
	}
}

// Equal reports whether two messages carry identical bits up to bits
// positions (both padded with zeros beyond their length). It compares
// whole bytes (masking the final partial byte) rather than looping per
// bit — the engines' scoring paths call it once per delivered message.
func Equal(a, b []byte, bits int) bool {
	n := bits / 8
	for k := 0; k < n; k++ {
		var av, bv byte
		if k < len(a) {
			av = a[k]
		}
		if k < len(b) {
			bv = b[k]
		}
		if av != bv {
			return false
		}
	}
	if rem := bits % 8; rem != 0 {
		var av, bv byte
		if n < len(a) {
			av = a[n]
		}
		if n < len(b) {
			bv = b[n]
		}
		mask := byte(1<<uint(rem)) - 1
		if av&mask != bv&mask {
			return false
		}
	}
	return true
}
