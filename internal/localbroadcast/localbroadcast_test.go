package localbroadcast

import (
	"testing"

	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestCongestUpperBound(t *testing.T) {
	// Lemma 15: B-bit Local Broadcast in ⌈B/bits⌉ CONGEST rounds.
	g := graph.RandomBoundedDegree(30, 5, 0.15, rng.New(1))
	const b, msgBits = 40, 12
	inst := NewRandomInstance(g, b, rng.New(2))
	eng, err := congest.NewEngine(g, msgBits, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(NewAlgorithms(inst), 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := CongestRoundsNeeded(b, msgBits); res.Rounds != want {
		t.Errorf("used %d rounds, want %d", res.Rounds, want)
	}
	if err := Verify(g, inst, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastCongestUpperBound(t *testing.T) {
	// Lemma 15 via Corollary 12's adapter: O(Δ·⌈B/bits⌉) broadcast rounds.
	g := graph.RandomBoundedDegree(20, 4, 0.2, rng.New(4))
	const b, inner = 24, 8
	inst := NewRandomInstance(g, b, rng.New(5))
	outer := core.AdapterMsgBits(g.N(), inner)
	eng, err := congest.NewBroadcastEngine(g, outer, 6)
	if err != nil {
		t.Fatal(err)
	}
	budget := core.CongestRounds(CongestRoundsNeeded(b, inner), g.MaxDegree())
	res, err := eng.Run(core.WrapCongest(NewAlgorithms(inst)), budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("did not finish in %d broadcast rounds", budget)
	}
	if err := Verify(g, inst, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBroadcastOverNoisyBeeps(t *testing.T) {
	// The full stack on the hard instance: CONGEST → Broadcast CONGEST →
	// noisy beeps, verified against the inputs.
	g, err := graph.HardInstance(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	const b, inner = 16, 8
	inst := NewHardInstance(g, 3, b, rng.New(7))
	outer := core.AdapterMsgBits(g.N(), inner)
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), outer, 0.05),
		ChannelSeed: 8,
		AlgSeed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	budget := core.CongestRounds(CongestRoundsNeeded(b, inner), g.MaxDegree())
	res, err := runner.Run(core.WrapCongest(NewAlgorithms(inst)), budget)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("did not finish over beeps")
	}
	if err := Verify(g, inst, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestHardInstanceShape(t *testing.T) {
	g, _ := graph.HardInstance(10, 2)
	inst := NewHardInstance(g, 2, 8, rng.New(10))
	// Right-part messages (IDs ≥ Δ) are all zero.
	for v := 2; v < 10; v++ {
		for _, m := range inst.Msgs[v] {
			for _, byteVal := range m {
				if byteVal != 0 {
					t.Fatalf("right/isolated node %d has non-zero message", v)
				}
			}
		}
	}
	// Left-part nodes have Δ messages each.
	for v := 0; v < 2; v++ {
		if len(inst.Msgs[v]) != 2 {
			t.Errorf("left node %d has %d messages, want 2", v, len(inst.Msgs[v]))
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	g := graph.Path(3)
	inst := NewRandomInstance(g, 16, rng.New(11))
	eng, _ := congest.NewEngine(g, 16, 12)
	res, err := eng.Run(NewAlgorithms(inst), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, inst, res.Outputs); err != nil {
		t.Fatal(err)
	}
	// Corrupt one received message.
	got := res.Outputs[0].(map[int][]byte)
	got[1][0] ^= 0xff
	if err := Verify(g, inst, res.Outputs); err == nil {
		t.Error("corrupted output accepted")
	}
}

func TestBoundCalculators(t *testing.T) {
	if got := Lemma14MinRounds(4, 10); got != 80 {
		t.Errorf("Lemma14MinRounds(4,10) = %d, want 80", got)
	}
	if got := Lemma14SuccessExponent(50, 4, 10); got != 50-160 {
		t.Errorf("Lemma14SuccessExponent = %v", got)
	}
	// More rounds → weaker bound; vacuous once T ≥ Δ²B.
	if Lemma14SuccessExponent(200, 4, 10) < 0 {
		t.Error("bound should be vacuous at T=200")
	}
	// Theorem 22: r = Δ·log₂ n gives exponent −2Δ·log₂ n.
	got := Theorem22SuccessExponent(4*8, 4, 256)
	if got != 32-96 {
		t.Errorf("Theorem22SuccessExponent = %v, want -64", got)
	}
	if got := CongestRoundsNeeded(33, 8); got != 5 {
		t.Errorf("CongestRoundsNeeded(33,8) = %d, want 5", got)
	}
}

func TestRightTranscript(t *testing.T) {
	mk := func(bits string) *bitstring.BitString {
		s, err := bitstring.Parse(bits)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// 4 nodes, delta=2: rounds where node 0 or 1 beeped count as B.
	h1 := []*bitstring.BitString{mk("1000"), mk("0010"), mk("0100")}
	h2 := []*bitstring.BitString{mk("1000"), mk("0010"), mk("0101")}
	h3 := []*bitstring.BitString{mk("0010"), mk("0010"), mk("0100")}
	if got := TranscriptCount([][]*bitstring.BitString{h1, h2, h3}, 2); got != 2 {
		t.Errorf("TranscriptCount = %d, want 2 (h1 and h2 look identical to the right part)", got)
	}
}
