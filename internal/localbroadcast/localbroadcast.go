// Package localbroadcast implements the paper's §5: the B-bit Local
// Broadcast problem (Definition 13) used to prove the Ω(Δ log n) and
// Ω(Δ² log n) simulation lower bounds, its Lemma 15 upper bounds, the
// Lemma 14 hard-instance generator, and calculators for the
// transcript-counting bounds of Lemma 14 and Theorem 22.
package localbroadcast

import (
	"bytes"
	"fmt"
	"math"

	"repro/internal/bitstring"
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// Instance is a B-bit Local Broadcast instance: for every ordered edge
// (v,u), a B-bit message from v to u.
type Instance struct {
	// B is the message width in bits.
	B int
	// Msgs[v][u] is v's message for neighbor u.
	Msgs []map[int][]byte
}

// NewRandomInstance draws uniform inputs for every ordered edge of g.
func NewRandomInstance(g *graph.Graph, b int, r *rng.Stream) *Instance {
	inst := &Instance{B: b, Msgs: make([]map[int][]byte, g.N())}
	for v := 0; v < g.N(); v++ {
		inst.Msgs[v] = make(map[int][]byte, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			m := make([]byte, (b+7)/8)
			for i := range m {
				m[i] = byte(r.Uint64())
			}
			if rem := b % 8; rem != 0 {
				m[len(m)-1] &= 1<<uint(rem) - 1
			}
			inst.Msgs[v][u] = m
		}
	}
	return inst
}

// NewHardInstance builds Lemma 14's distribution on the K_{Δ,Δ} hard graph
// (as produced by graph.HardInstance): left-part nodes (IDs < Δ) get
// uniform random messages, all other messages are zero.
func NewHardInstance(g *graph.Graph, delta, b int, r *rng.Stream) *Instance {
	inst := NewRandomInstance(g, b, r)
	for v := delta; v < g.N(); v++ {
		for u := range inst.Msgs[v] {
			inst.Msgs[v][u] = make([]byte, (b+7)/8)
		}
	}
	return inst
}

// Algorithm solves B-bit Local Broadcast in CONGEST per Lemma 15: node v
// sends m_{v→u} to u directly, ⌈B/bandwidth⌉ chunked rounds. Run it under
// core.WrapCongest for the Broadcast CONGEST bound (O(Δ·⌈B/log n⌉)) and
// under the beep simulation for the upper bound matched by Corollary 16.
type Algorithm struct {
	// B is the message width; Inputs the per-neighbor messages.
	B      int
	Inputs map[int][]byte

	env      congest.Env
	chunks   int
	received map[int][]byte
	rounds   int
}

var _ congest.Algorithm = (*Algorithm)(nil)

// Init implements congest.Algorithm.
func (a *Algorithm) Init(env congest.Env, neighbors []int) {
	a.env = env
	a.chunks = (a.B + env.MsgBits - 1) / env.MsgBits
	a.received = make(map[int][]byte, len(neighbors))
	for _, u := range neighbors {
		a.received[u] = make([]byte, (a.B+7)/8)
	}
}

// Send implements congest.Algorithm: round t carries chunk t of every
// message.
func (a *Algorithm) Send(round int) []congest.Directed {
	if round >= a.chunks {
		return nil
	}
	var out []congest.Directed
	for u, m := range a.Inputs {
		var w wire.Writer
		for bit := 0; bit < a.env.MsgBits; bit++ {
			idx := round*a.env.MsgBits + bit
			w.WriteBool(idx < a.B && wire.Bit(m, idx))
		}
		out = append(out, congest.Directed{To: u, Msg: w.PaddedBytes(a.env.MsgBits)})
	}
	return out
}

// Receive implements congest.Algorithm.
func (a *Algorithm) Receive(round int, in []congest.Incoming) {
	for _, inc := range in {
		buf, ok := a.received[inc.From]
		if !ok {
			continue
		}
		for bit := 0; bit < a.env.MsgBits; bit++ {
			idx := round*a.env.MsgBits + bit
			if idx < a.B && wire.Bit(inc.Msg, bit) {
				wire.SetBit(buf, idx, true)
			}
		}
	}
	a.rounds++
}

// Done implements congest.Algorithm.
func (a *Algorithm) Done() bool { return a.rounds >= a.chunks }

// Output returns the received per-neighbor messages.
func (a *Algorithm) Output() any { return a.received }

// NewAlgorithms builds per-node algorithms for an instance.
func NewAlgorithms(inst *Instance) []congest.Algorithm {
	algs := make([]congest.Algorithm, len(inst.Msgs))
	for v := range algs {
		algs[v] = &Algorithm{B: inst.B, Inputs: inst.Msgs[v]}
	}
	return algs
}

// Verify checks outputs (per-node neighbor→message maps) against the
// instance: node v must hold m_{u→v} for every neighbor u.
func Verify(g *graph.Graph, inst *Instance, outputs []any) error {
	if len(outputs) != g.N() {
		return fmt.Errorf("localbroadcast: %d outputs for %d nodes", len(outputs), g.N())
	}
	for v := 0; v < g.N(); v++ {
		got, ok := outputs[v].(map[int][]byte)
		if !ok {
			return fmt.Errorf("localbroadcast: node %d output type %T", v, outputs[v])
		}
		for _, u := range g.Neighbors(v) {
			want := inst.Msgs[u][v]
			if !bytes.Equal(bytes.TrimRight(got[u], "\x00"), bytes.TrimRight(want, "\x00")) {
				return fmt.Errorf("localbroadcast: node %d received %x from %d, want %x", v, got[u], u, want)
			}
		}
	}
	return nil
}

// CongestRoundsNeeded returns Lemma 15's CONGEST upper bound ⌈B/bits⌉.
func CongestRoundsNeeded(b, msgBits int) int { return (b + msgBits - 1) / msgBits }

// Lemma14MinRounds returns the beeping-model lower bound of Lemma 14:
// any algorithm with success probability above 2^{-Δ²B/2} needs more than
// Δ²B/2 rounds.
func Lemma14MinRounds(delta, b int) int { return delta * delta * b / 2 }

// Lemma14SuccessExponent returns log₂ of Lemma 14's success-probability
// bound for a T-round algorithm: the right part's output is determined by
// one of 2^T transcripts while the correct output is uniform over 2^{Δ²B}
// possibilities, so success ≤ 2^{T−Δ²B}. Exponents ≥ 0 mean the bound is
// vacuous (T is large enough).
func Lemma14SuccessExponent(rounds, delta, b int) float64 {
	return float64(rounds) - float64(delta*delta*b)
}

// Theorem22SuccessExponent returns log₂ of Theorem 22's bound for maximal
// matching on K_{Δ,Δ} with IDs from [n⁴]: an r-round algorithm succeeds
// with probability at most 2^r/n^{3Δ}.
func Theorem22SuccessExponent(rounds, delta, n int) float64 {
	return float64(rounds) - 3*float64(delta)*math.Log2(float64(n))
}

// RightTranscript extracts what every right-part node of the hard
// instance hears from one recorded run: per round, whether any left-part
// node (ID < delta) beeped — the {B,S}* string of Lemma 14's proof.
// history is a beep.Network beep history (per-round beep sets over nodes).
func RightTranscript(history []*bitstring.BitString, delta int) string {
	buf := make([]byte, (len(history)+7)/8)
	for t, round := range history {
		for v := 0; v < delta && v < round.Len(); v++ {
			if round.Get(v) {
				buf[t/8] |= 1 << uint(t%8)
				break
			}
		}
	}
	return string(buf)
}

// TranscriptCount counts distinct right-part transcripts across runs.
// Lemma 14's argument is that 2^T transcripts must carry Δ²B bits of
// input; measuring the realized diversity makes the counting concrete.
func TranscriptCount(histories [][]*bitstring.BitString, delta int) int {
	seen := make(map[string]bool, len(histories))
	for _, h := range histories {
		seen[RightTranscript(h, delta)] = true
	}
	return len(seen)
}
