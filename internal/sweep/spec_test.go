package sweep

import (
	"bytes"
	"reflect"
	"testing"
)

func baseSpec() Scenario {
	return Scenario{
		Family: FamilyRegular, N: 16, Param: 2, Epsilon: 0.1,
		Engine: EngineAlg1, Workload: WorkloadGossip, Rounds: 2,
		MsgBits: 10, Replicate: 0,
		GraphSeed: 7, ChannelSeed: 8, AlgSeed: 9,
	}
}

func TestHashIdenticalSpecs(t *testing.T) {
	a, b := baseSpec(), baseSpec()
	if a.Hash() != b.Hash() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	// Hashing must be a pure function — repeated calls agree.
	if a.Hash() != a.Hash() {
		t.Fatal("Hash is not stable across calls")
	}
}

// TestHashSingleAxisSensitivity changes every spec field, one at a time,
// and requires every variant (and the base) to have pairwise distinct
// hashes — the property the content-addressed cache's correctness rests
// on. Walking the fields by reflection means a future Scenario field
// cannot silently escape the hash.
func TestHashSingleAxisSensitivity(t *testing.T) {
	variants := map[string]Scenario{"base": baseSpec()}
	rv := reflect.ValueOf(baseSpec())
	for i := 0; i < rv.NumField(); i++ {
		field := rv.Type().Field(i)
		sc := baseSpec()
		fv := reflect.ValueOf(&sc).Elem().Field(i)
		switch fv.Kind() {
		case reflect.String:
			// Any distinct string changes the encoding; validity is not
			// required for hashing.
			fv.SetString(fv.String() + "x")
		case reflect.Int:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.01)
		default:
			t.Fatalf("unhandled Scenario field kind %s (%s) — extend the test", fv.Kind(), field.Name)
		}
		variants[field.Name] = sc
	}
	seen := make(map[string]string)
	for name, sc := range variants {
		h := sc.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("variants %q and %q collide on hash %s", prev, name, h)
		}
		seen[h] = name
	}
	if len(seen) != reflect.TypeOf(Scenario{}).NumField()+1 {
		t.Errorf("expected %d distinct hashes, got %d", reflect.TypeOf(Scenario{}).NumField()+1, len(seen))
	}
}

// TestRecordRoundTrip executes a tiny scenario and requires the record
// to survive JSONL encode → decode → re-encode bit-exactly.
func TestRecordRoundTrip(t *testing.T) {
	sc := baseSpec()
	rec, err := Execute(sc, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	got, err := DecodeRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("record round-trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	var buf2 bytes.Buffer
	if err := EncodeJSONL(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encoded record differs:\n %s\n %s", buf.Bytes(), buf2.Bytes())
	}
}

// TestDecodeRejectsTamperedRecord requires hash verification on decode.
func TestDecodeRejectsTamperedRecord(t *testing.T) {
	rec, err := Execute(baseSpec(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Spec.Rounds++ // spec no longer matches stored hash
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(bytes.TrimSpace(buf.Bytes())); err == nil {
		t.Fatal("tampered record decoded without error")
	}
}

// TestExecuteDeterministic asserts the spec-completeness contract: two
// executions of one spec agree on everything except wall time, under
// any worker setting.
func TestExecuteDeterministic(t *testing.T) {
	sc := baseSpec()
	a, err := Execute(sc, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(sc, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a.WallNanos, b.WallNanos = 0, 0
	a.BuildNanos, b.BuildNanos = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("executions differ:\n %+v\n %+v", a, b)
	}
}

func TestValidate(t *testing.T) {
	bad := []Scenario{
		{},
		{Family: "nope", N: 8, Param: 2, Engine: EngineAlg1, Workload: WorkloadGossip, Rounds: 1},
		{Family: FamilyRegular, N: 1, Param: 2, Engine: EngineAlg1, Workload: WorkloadGossip, Rounds: 1},
		{Family: FamilyPG, Param: 3, N: 26, Engine: EngineAlg1, Workload: WorkloadGossip, Rounds: 1},     // N must be 0 (derived)
		{Family: FamilyRegular, N: 8, Param: 2, Engine: EngineBeep, Workload: WorkloadGossip, Rounds: 1}, // beep ∌ gossip
		{Family: FamilyRegular, N: 8, Param: 2, Engine: EngineAlg1, Workload: WorkloadGossip},            // Rounds 0
		{Family: FamilyRegular, N: 8, Param: 2, Engine: EngineAlg1, Workload: WorkloadMIS, Rounds: 3},    // mis sets Rounds 0
		{Family: FamilyRegular, N: 8, Param: 2, Engine: EngineAlg1, Workload: WorkloadGossip, Rounds: 1, Epsilon: 0.5},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: invalid spec %+v passed validation", i, sc)
		}
	}
	good := baseSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestExecuteEnginesAndWorkloads smoke-tests every supported
// engine × workload pair on a tiny graph and checks the cross-engine
// invariants (native CONGEST has no beeps; MIS outputs verify).
func TestExecuteEnginesAndWorkloads(t *testing.T) {
	for _, eng := range []string{EngineAlg1, EngineTDMA, EngineCongest, EngineBeep} {
		for _, wl := range []string{WorkloadGossip, WorkloadMIS} {
			if !Supports(eng, wl) {
				continue
			}
			sc := Scenario{
				Family: FamilyRegular, N: 12, Param: 2, Epsilon: 0.05,
				Engine: eng, Workload: wl,
				GraphSeed: 3, ChannelSeed: 4, AlgSeed: 5,
			}
			if wl == WorkloadGossip {
				sc.Rounds = 2
			}
			rec, err := Execute(sc, ExecOptions{})
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, wl, err)
			}
			if !rec.Counters.AllDone {
				t.Errorf("%s/%s: did not finish in budget", eng, wl)
			}
			if eng == EngineCongest && (rec.Counters.BeepRounds != 0 || rec.Counters.Beeps != 0) {
				t.Errorf("congest engine reported beeps: %+v", rec.Counters)
			}
			if eng != EngineCongest && wl == WorkloadGossip && rec.Counters.Beeps == 0 {
				t.Errorf("%s/%s: no energy recorded", eng, wl)
			}
			if wl == WorkloadMIS {
				if rec.Counters.OutputOK == nil || !*rec.Counters.OutputOK {
					t.Errorf("%s/mis: output did not verify (%+v)", eng, rec.Counters.OutputOK)
				}
			}
			if eng == EngineTDMA && (rec.Colors < 1 || rec.Rho < 1) {
				t.Errorf("tdma record missing schedule parameters: %+v", rec)
			}
		}
	}
}
