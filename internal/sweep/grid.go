package sweep

import (
	"fmt"
	"math"

	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Grid is a declarative scenario family: the cross product of its axes.
// Expand enumerates it into concrete Scenario specs in a deterministic
// order, deriving every seed from BaseSeed and the scenario's own axis
// values — never from its position in the enumeration — so adding an
// axis value to a grid leaves every pre-existing scenario's spec (and
// therefore its content hash, and therefore its cache entry) unchanged.
type Grid struct {
	// Families, Ns, Params, Epsilons, Engines, Workloads are the axes;
	// empty axes default to {FamilyRegular}, {64}, {4}, {0.05},
	// {EngineAlg1}, {WorkloadGossip} respectively. For families that
	// derive N from Param (pg, grid, hypercube) the Ns axis is ignored.
	Families  []string
	Ns        []int
	Params    []int
	Epsilons  []float64
	Engines   []string
	Workloads []string
	// Noises lists channel-noise models (internal/noise specs). "" and
	// "symmetric" both select the default symmetric channel, which the
	// Epsilons axis parameterizes; any other spec owns the channel, so
	// the ε axis collapses for it (like the native engines' ε) and the
	// spec is canonicalized before hashing. Empty axis = symmetric only.
	Noises []string
	// Rounds is the gossip round count (default 3); MsgBits overrides
	// the workload's bandwidth default when nonzero.
	Rounds  int
	MsgBits int
	// Replicates repeats every axis point with distinct seeds (default 1).
	Replicates int
	// BaseSeed roots every derived seed.
	BaseSeed uint64
}

// Seed-derivation domains: graph seeds are shared across engines,
// workloads, and noise rates (comparisons and ε sweeps run on the same
// topology), algorithm seeds are shared across engines and noise rates
// (the same algorithm randomness under every engine, as the
// native-vs-simulated tables require), and channel seeds are private to
// the full axis point — only the channel sees ε.
const (
	seedDomGraph   = 0x677261 // "gra"
	seedDomChannel = 0x636863 // "chc"
	seedDomAlg     = 0x616c67 // "alg"
)

// fold hashes a short string into a seed-mixing key (FNV-1a).
func fold(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Expand enumerates the grid. Axis order (outer to inner): workload,
// family, engine, noise, n, param, epsilon, replicate. Engine/workload
// pairs the engine does not support (Supports) are skipped. Axis
// normalization — native engines ignore ε, the channel seed, and the
// noise model; non-symmetric models ignore ε — can map distinct grid
// points onto one spec, and Expand deduplicates them by content hash
// (first occurrence wins), so a grid never attributes one execution to
// two different axis labels. Expand fails if any produced spec is
// invalid or the grid expands to nothing.
func (g Grid) Expand() ([]Scenario, error) {
	families := defaulted(g.Families, FamilyRegular)
	ns := defaultedInts(g.Ns, 64)
	params := defaultedInts(g.Params, 4)
	epsilons := g.Epsilons
	if len(epsilons) == 0 {
		epsilons = []float64{0.05}
	}
	engines := defaulted(g.Engines, EngineAlg1)
	workloads := defaulted(g.Workloads, WorkloadGossip)
	noises, err := canonicalNoises(g.Noises)
	if err != nil {
		return nil, err
	}
	rounds := g.Rounds
	if rounds == 0 {
		rounds = 3
	}
	replicates := g.Replicates
	if replicates == 0 {
		replicates = 1
	}

	var out []Scenario
	seen := make(map[string]struct{})
	for _, wl := range workloads {
		wlRounds := rounds
		if w, ok := sim.WorkloadFor(wl); ok && !w.UsesRounds() {
			wlRounds = 0 // self-budgeting workloads require Rounds 0 (Scenario contract)
		}
		for _, fam := range families {
			famNs := ns
			if derivedN(fam) {
				famNs = []int{0}
			}
			famParams := params
			if fam == FamilyGeo {
				// Geo is parameterless (Scenario contract: Param = 0), so
				// the Params axis collapses for it.
				famParams = []int{0}
			}
			for _, eng := range engines {
				if !Supports(eng, wl) {
					continue
				}
				native := sim.IsNative(eng)
				for _, noiseSpec := range noises {
					for _, n := range famNs {
						for _, param := range famParams {
							for _, gridEps := range epsilons {
								// Native engines have no beeping channel to
								// perturb: they ignore ε, the channel seed,
								// and the noise model, so normalize all
								// three to their zero values. A non-default
								// noise model owns the channel, so ε
								// normalizes to zero under it too. Either
								// way, grid points that differ only in
								// normalized axes collapse onto one spec,
								// and the hash dedup below keeps a single
								// copy instead of attributing one noiseless
								// (or one model-noise) execution to several
								// ε labels.
								eps, ns := gridEps, noiseSpec
								if native {
									eps, ns = 0, ""
								}
								if ns != "" {
									eps = 0
								}
								for rep := 0; rep < replicates; rep++ {
									point := []uint64{g.BaseSeed, fold(fam), uint64(n), uint64(param), uint64(rep)}
									chanKeys := []uint64{seedDomChannel, fold(eng), fold(wl), math.Float64bits(eps)}
									if ns != "" {
										// The model joins the channel-seed
										// derivation the way ε always has;
										// symmetric runs keep the historic
										// key sequence bit-for-bit.
										chanKeys = append(chanKeys, fold(ns))
									}
									sc := Scenario{
										Family:      fam,
										N:           n,
										Param:       param,
										Epsilon:     eps,
										Noise:       ns,
										Engine:      eng,
										Workload:    wl,
										Rounds:      wlRounds,
										MsgBits:     g.MsgBits,
										Replicate:   rep,
										GraphSeed:   rng.Mix(append([]uint64{seedDomGraph}, point...)...),
										ChannelSeed: rng.Mix(append(chanKeys, point...)...),
										AlgSeed:     rng.Mix(append([]uint64{seedDomAlg, fold(wl)}, point...)...),
									}
									if native {
										sc.ChannelSeed = 0
									}
									if err := sc.Validate(); err != nil {
										return nil, fmt.Errorf("sweep: grid point %+v: %w", sc, err)
									}
									h := sc.Hash()
									if _, dup := seen[h]; dup {
										continue
									}
									seen[h] = struct{}{}
									out = append(out, sc)
								}
							}
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: grid expands to no supported scenarios")
	}
	return out, nil
}

// canonicalNoises normalizes the noise axis: "" and "symmetric" mean
// the default symmetric channel (spelled as the empty spec, so Epsilon
// stays the channel identity); other entries must parse and are
// replaced by their canonical spelling. Duplicate entries after
// canonicalization are rejected — they would be a silently collapsed
// axis, which is almost certainly a typo.
func canonicalNoises(specs []string) ([]string, error) {
	if len(specs) == 0 {
		return []string{""}, nil
	}
	out := make([]string, 0, len(specs))
	seen := make(map[string]struct{}, len(specs))
	for _, s := range specs {
		canon := ""
		if s != "" && s != noise.NameSymmetric {
			m, err := noise.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: noise axis: %w", err)
			}
			if m.Name() == noise.NameSymmetric {
				return nil, fmt.Errorf("sweep: noise axis %q: parameterize the symmetric channel with the ε axis", s)
			}
			canon = m.Spec()
		}
		if _, dup := seen[canon]; dup {
			return nil, fmt.Errorf("sweep: noise axis lists %q twice", canon)
		}
		seen[canon] = struct{}{}
		out = append(out, canon)
	}
	return out, nil
}

func defaulted(xs []string, def string) []string {
	if len(xs) == 0 {
		return []string{def}
	}
	return xs
}

func defaultedInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}
