package sweep

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Grid is a declarative scenario family: the cross product of its axes.
// Expand enumerates it into concrete Scenario specs in a deterministic
// order, deriving every seed from BaseSeed and the scenario's own axis
// values — never from its position in the enumeration — so adding an
// axis value to a grid leaves every pre-existing scenario's spec (and
// therefore its content hash, and therefore its cache entry) unchanged.
type Grid struct {
	// Families, Ns, Params, Epsilons, Engines, Workloads are the axes;
	// empty axes default to {FamilyRegular}, {64}, {4}, {0.05},
	// {EngineAlg1}, {WorkloadGossip} respectively. For families that
	// derive N from Param (pg, grid, hypercube) the Ns axis is ignored.
	Families  []string
	Ns        []int
	Params    []int
	Epsilons  []float64
	Engines   []string
	Workloads []string
	// Rounds is the gossip round count (default 3); MsgBits overrides
	// the workload's bandwidth default when nonzero.
	Rounds  int
	MsgBits int
	// Replicates repeats every axis point with distinct seeds (default 1).
	Replicates int
	// BaseSeed roots every derived seed.
	BaseSeed uint64
}

// Seed-derivation domains: graph seeds are shared across engines,
// workloads, and noise rates (comparisons and ε sweeps run on the same
// topology), algorithm seeds are shared across engines and noise rates
// (the same algorithm randomness under every engine, as the
// native-vs-simulated tables require), and channel seeds are private to
// the full axis point — only the channel sees ε.
const (
	seedDomGraph   = 0x677261 // "gra"
	seedDomChannel = 0x636863 // "chc"
	seedDomAlg     = 0x616c67 // "alg"
)

// fold hashes a short string into a seed-mixing key (FNV-1a).
func fold(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Expand enumerates the grid. Axis order (outer to inner): workload,
// family, engine, n, param, epsilon, replicate. Engine/workload pairs
// the engine does not support (Supports) are skipped. Expand fails if
// any produced spec is invalid or the grid expands to nothing.
func (g Grid) Expand() ([]Scenario, error) {
	families := defaulted(g.Families, FamilyRegular)
	ns := defaultedInts(g.Ns, 64)
	params := defaultedInts(g.Params, 4)
	epsilons := g.Epsilons
	if len(epsilons) == 0 {
		epsilons = []float64{0.05}
	}
	engines := defaulted(g.Engines, EngineAlg1)
	workloads := defaulted(g.Workloads, WorkloadGossip)
	rounds := g.Rounds
	if rounds == 0 {
		rounds = 3
	}
	replicates := g.Replicates
	if replicates == 0 {
		replicates = 1
	}

	var out []Scenario
	for _, wl := range workloads {
		wlRounds := rounds
		if w, ok := sim.WorkloadFor(wl); ok && !w.UsesRounds() {
			wlRounds = 0 // self-budgeting workloads require Rounds 0 (Scenario contract)
		}
		for _, fam := range families {
			famNs := ns
			if derivedN(fam) {
				famNs = []int{0}
			}
			for _, eng := range engines {
				if !Supports(eng, wl) {
					continue
				}
				for _, n := range famNs {
					for _, param := range params {
						for _, eps := range epsilons {
							// Native engines have no beeping channel to
							// perturb: they ignore ε and the channel seed,
							// so normalize both to zero. Because only the
							// channel seed mixes ε in, grid points that
							// differ only in ε then expand to identical
							// specs (one hash), and the scheduler's
							// in-batch dedup runs the engine once instead
							// of attributing noise rates to a noiseless
							// execution.
							native := sim.IsNative(eng)
							if native {
								eps = 0
							}
							for rep := 0; rep < replicates; rep++ {
								point := []uint64{g.BaseSeed, fold(fam), uint64(n), uint64(param), uint64(rep)}
								sc := Scenario{
									Family:      fam,
									N:           n,
									Param:       param,
									Epsilon:     eps,
									Engine:      eng,
									Workload:    wl,
									Rounds:      wlRounds,
									MsgBits:     g.MsgBits,
									Replicate:   rep,
									GraphSeed:   rng.Mix(append([]uint64{seedDomGraph}, point...)...),
									ChannelSeed: rng.Mix(append([]uint64{seedDomChannel, fold(eng), fold(wl), math.Float64bits(eps)}, point...)...),
									AlgSeed:     rng.Mix(append([]uint64{seedDomAlg, fold(wl)}, point...)...),
								}
								if native {
									sc.ChannelSeed = 0
								}
								if err := sc.Validate(); err != nil {
									return nil, fmt.Errorf("sweep: grid point %+v: %w", sc, err)
								}
								out = append(out, sc)
							}
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: grid expands to no supported scenarios")
	}
	return out, nil
}

func defaulted(xs []string, def string) []string {
	if len(xs) == 0 {
		return []string{def}
	}
	return xs
}

func defaultedInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}
