// Package sweep is the batch scenario-orchestration layer between the
// engines and the experiment tables: it enumerates families of scenarios
// (graph family × size × degree × noise × engine × workload × replicate),
// schedules them concurrently, persists every result as one JSONL record
// keyed by a content hash of the scenario spec, and aggregates records
// across grid axes.
//
// The paper's claims are statements over scenario families — Theorem 11's
// overhead across (n, Δ, ε), the §1.3 gap versus the TDMA baseline across
// topologies, the §7 native-vs-simulated comparison — so the unit of work
// here is the declarative Scenario spec, not a prebuilt graph or engine.
// Everything a run needs (including every seed) lives in the spec; two
// runs of the same spec are bit-identical, which is what makes the
// content-addressed store (store.go) a cache: re-running an overlapping
// grid skips every scenario whose hash is already on disk, and an
// interrupted batch resumes for free.
//
// The layers, bottom up: Scenario (this file) — the spec and its hash;
// Execute (exec.go) — one spec to one Record; Store (store.go) — the
// JSONL result store; Run (batch.go) — the concurrent batch scheduler;
// Grid (grid.go) — declarative axis expansion; Aggregate (agg.go) —
// group-by with replicate statistics. internal/experiments routes its
// T4/T6/A4 tables through this package.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Graph families a Scenario can name. Param is the family parameter:
// Δ for FamilyRegular/FamilyBounded, q for FamilyPG, the side length for
// FamilyGrid, the dimension for FamilyHypercube, and Δ for FamilyHard
// (the K_{Δ,Δ}-plus-isolated-vertices Lemma 14 instance).
const (
	FamilyRegular   = "regular"   // random Δ-regular (bounded-degree fallback when nΔ is odd)
	FamilyBounded   = "bounded"   // random bounded-degree G(n,p=0.5)
	FamilyPG        = "pg"        // projective-plane incidence PG(2,q); N is derived
	FamilyGrid      = "grid"      // Param×Param grid; N is derived
	FamilyHypercube = "hypercube" // Param-dimensional hypercube; N is derived
	FamilyHard      = "hard"      // Lemma 14 hard instance on N nodes
	FamilyComplete  = "complete"  // K_N
	// FamilyGeo is the jittered-lattice random geometric graph on N ≥ 17
	// nodes (graph.GeometricCells): connected for every seed, Δ ≤ 24, and
	// built by the streaming sharded generator — the million-node family.
	FamilyGeo = "geo"
)

// Engines a Scenario can run on: the internal/sim engine registry,
// whose canonical names are re-exported here so the spec vocabulary
// (and every content hash derived from it) is stable.
const (
	EngineAlg1    = sim.EngineAlg1    // the paper's Algorithm 1 simulation (internal/core)
	EngineTDMA    = sim.EngineTDMA    // prior-work G²-coloring baseline (internal/baseline)
	EngineCongest = sim.EngineCongest // native Broadcast CONGEST (internal/congest), no beeps
	EngineBeep    = sim.EngineBeep    // native beeping algorithm (internal/beepalgs)
)

// Workloads a Scenario can execute: the internal/sim workload registry.
const (
	WorkloadGossip   = sim.WorkloadGossip   // ID broadcast every round — the canonical one-round probe
	WorkloadMIS      = sim.WorkloadMIS      // maximal independent set (Luby over CONGEST, Afek et al. natively)
	WorkloadColoring = sim.WorkloadColoring // randomized (Δ+1)-coloring
	WorkloadLeader   = sim.WorkloadLeader   // max-ID leader election by flooding
	WorkloadMatching = sim.WorkloadMatching // the paper's §6 maximal matching
	WorkloadBFSTree  = sim.WorkloadBFSTree  // BFS tree from node 0
	// WorkloadBroadcast is single-source payload flooding from node 0,
	// run natively as the sparse O(D + b) beep wave.
	WorkloadBroadcast = sim.WorkloadBroadcast
)

// Scenario is one fully-specified run: the declarative unit the sweep
// subsystem enumerates, hashes, executes, and stores. Every input —
// including all three seeds — is part of the spec, so the spec hash is a
// complete identity for the result and cached records never go stale.
type Scenario struct {
	// Family selects the graph family (Family* constants).
	Family string `json:"family"`
	// N is the node count; ignored (and normalized to 0 by Validate's
	// contract) for families that derive it from Param.
	N int `json:"n,omitempty"`
	// Param is the family parameter (see the Family* comments).
	Param int `json:"param,omitempty"`
	// Epsilon is the beeping-channel noise rate. The native engines
	// (congest, beep) have no beeping channel and ignore it — keep it 0
	// there (Grid.Expand normalizes this) so equal work shares one hash.
	Epsilon float64 `json:"epsilon"`
	// Noise selects a non-default channel-noise model by canonical
	// internal/noise spec (e.g. "gilbert-elliott:0.01:0.3:0.05:0.25").
	// Empty — the only spelling for the symmetric channel, which Epsilon
	// parameterizes — keeps every pre-noise-axis spec, hash, and stored
	// record byte-identical. A non-empty spec owns the channel: Epsilon
	// must be 0 (the model's own parameters replace it), the engine must
	// simulate over beeps (sim.SupportsNoise), and the spec must be in
	// canonical form so equal channels share one hash.
	Noise string `json:"noise,omitempty"`
	// Engine selects the execution engine (Engine* constants).
	Engine string `json:"engine"`
	// Workload selects the per-node algorithm (Workload* constants).
	Workload string `json:"workload"`
	// Rounds is the simulated-round count for rounds-parameterized
	// workloads (gossip, whose budget is Rounds+2). Self-budgeting
	// workloads — everything whose registered sim.Workload reports
	// UsesRounds() false: mis, coloring, leader, matching, bfstree —
	// size their own budgets and require Rounds 0.
	Rounds int `json:"rounds,omitempty"`
	// MsgBits is the CONGEST bandwidth; 0 selects the workload's
	// registered default (e.g. 2·⌈log₂n⌉ for gossip, each algorithm
	// package's MsgBits for the rest).
	MsgBits int `json:"msg_bits,omitempty"`
	// Replicate tags seed replicates expanded from a Grid; informational
	// (the seeds below already differ per replicate) but part of the hash.
	Replicate int `json:"replicate,omitempty"`
	// GraphSeed drives the graph generator; ChannelSeed the channel noise
	// (ignored, like Epsilon, by the native engines — keep it 0 there);
	// AlgSeed the algorithms' private randomness (and the native beeping
	// run, which has no separate channel stream).
	GraphSeed   uint64 `json:"graph_seed"`
	ChannelSeed uint64 `json:"channel_seed"`
	AlgSeed     uint64 `json:"alg_seed"`
}

// derivedN reports whether the family derives the node count from Param.
func derivedN(family string) bool {
	switch family {
	case FamilyPG, FamilyGrid, FamilyHypercube:
		return true
	}
	return false
}

// Supports reports whether the engine can execute the workload, per the
// internal/sim registries: the native beeping engine runs exactly the
// workloads with a native beeping implementation (sim.NativeBeeper),
// and every CONGEST-level engine runs every registered workload.
func Supports(engine, workload string) bool { return sim.Supports(engine, workload) }

// Validate checks the spec is executable.
func (sc Scenario) Validate() error {
	switch sc.Family {
	case FamilyRegular, FamilyBounded, FamilyHard:
		if sc.N < 2 || sc.Param < 1 {
			return fmt.Errorf("sweep: family %q needs N ≥ 2 and Param ≥ 1, got N=%d Param=%d", sc.Family, sc.N, sc.Param)
		}
	case FamilyComplete:
		if sc.N < 2 {
			return fmt.Errorf("sweep: family %q needs N ≥ 2, got %d", sc.Family, sc.N)
		}
	case FamilyGeo:
		if sc.N < 17 {
			return fmt.Errorf("sweep: family %q needs N ≥ 17 (lattice side ≥ 5), got %d", sc.Family, sc.N)
		}
		if sc.Param != 0 {
			return fmt.Errorf("sweep: family %q has no parameter; set Param = 0, got %d", sc.Family, sc.Param)
		}
	case FamilyPG, FamilyGrid, FamilyHypercube:
		if sc.Param < 1 {
			return fmt.Errorf("sweep: family %q needs Param ≥ 1, got %d", sc.Family, sc.Param)
		}
		if sc.N != 0 {
			return fmt.Errorf("sweep: family %q derives N from Param; set N = 0, got %d", sc.Family, sc.N)
		}
	default:
		return fmt.Errorf("sweep: unknown family %q", sc.Family)
	}
	wl, ok := sim.WorkloadFor(sc.Workload)
	if !ok {
		return fmt.Errorf("sweep: unknown workload %q", sc.Workload)
	}
	if _, ok := sim.EngineFor(sc.Engine); !ok {
		return fmt.Errorf("sweep: unknown engine %q", sc.Engine)
	}
	if !Supports(sc.Engine, sc.Workload) {
		return fmt.Errorf("sweep: engine %q does not support workload %q", sc.Engine, sc.Workload)
	}
	if wl.UsesRounds() {
		if sc.Rounds < 1 {
			return fmt.Errorf("sweep: workload %s needs Rounds ≥ 1, got %d", sc.Workload, sc.Rounds)
		}
	} else if sc.Rounds != 0 {
		return fmt.Errorf("sweep: workload %s sizes its own budget; set Rounds = 0, got %d", sc.Workload, sc.Rounds)
	}
	if sc.Epsilon < 0 || sc.Epsilon >= 0.5 {
		return fmt.Errorf("sweep: ε = %v outside [0, 0.5)", sc.Epsilon)
	}
	if sc.Noise != "" {
		m, err := noise.Parse(sc.Noise)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if m.Name() == noise.NameSymmetric {
			return fmt.Errorf("sweep: the symmetric channel is the Epsilon field; leave Noise empty")
		}
		if spec := m.Spec(); spec != sc.Noise {
			return fmt.Errorf("sweep: noise spec %q is not canonical (want %q)", sc.Noise, spec)
		}
		if sc.Epsilon != 0 {
			return fmt.Errorf("sweep: Noise %s owns the channel; set Epsilon = 0, got %v", sc.Noise, sc.Epsilon)
		}
		if !sim.SupportsNoise(sc.Engine, sc.Noise) {
			return fmt.Errorf("sweep: engine %q does not support channel model %q", sc.Engine, sc.Noise)
		}
	}
	if sc.MsgBits < 0 {
		return fmt.Errorf("sweep: MsgBits = %d", sc.MsgBits)
	}
	return nil
}

// Hash returns the scenario's content address: the first 128 bits (32
// hex characters) of the SHA-256 of the canonical JSON encoding of the
// spec (struct field order, shortest float representation — both
// deterministic in encoding/json). Any single-field change produces a
// different hash; equal specs always hash equal.
func (sc Scenario) Hash() string {
	b, err := json.Marshal(sc)
	if err != nil {
		// Scenario contains only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// buildGraphCached is BuildGraphWorkers through the batch artifact cache:
// the graph is a pure function of (Family, N, Param, GraphSeed) — exactly
// a sim.GraphKey, with the worker count byte-invisible by the streaming
// builder's contract — so scenarios differing only in other axes share
// one instance. A nil cache builds directly.
func (sc Scenario) buildGraphCached(cache *sim.Cache, genWorkers int) (*graph.Graph, error) {
	return cache.Graph(
		sim.GraphKey{Family: sc.Family, N: sc.N, Param: sc.Param, Seed: sc.GraphSeed},
		func() (*graph.Graph, error) { return sc.BuildGraphWorkers(genWorkers) },
	)
}

// BuildGraph constructs the scenario's graph from Family, N, Param, and
// GraphSeed alone, serially.
func (sc Scenario) BuildGraph() (*graph.Graph, error) { return sc.BuildGraphWorkers(1) }

// BuildGraphWorkers is BuildGraph with a generation worker count for the
// streaming (row-function) families — grid, hypercube, hard, complete,
// geo. The built graph is byte-identical for every worker count (0 or 1
// serial, negative = one per CPU); the edge-list families (regular,
// bounded, pg) draw from a sequential stream and always build serially.
func (sc Scenario) BuildGraphWorkers(workers int) (*graph.Graph, error) {
	opt := graph.BuildOptions{Workers: workers}
	switch sc.Family {
	case FamilyRegular:
		// Δ-regular when realizable, bounded-degree otherwise — the same
		// fallback the experiment harness has always used, so refactored
		// tables reproduce their pre-sweep graphs exactly.
		if (sc.N*sc.Param)%2 == 0 {
			return graph.RandomRegular(sc.N, sc.Param, rng.New(sc.GraphSeed))
		}
		return graph.RandomBoundedDegree(sc.N, sc.Param, 0.5, rng.New(sc.GraphSeed)), nil
	case FamilyBounded:
		return graph.RandomBoundedDegree(sc.N, sc.Param, 0.5, rng.New(sc.GraphSeed)), nil
	case FamilyPG:
		return graph.ProjectivePlaneIncidence(sc.Param)
	case FamilyGrid:
		return graph.FromRowFunc(sc.Param*sc.Param, graph.GridRows(sc.Param, sc.Param), opt)
	case FamilyHypercube:
		return graph.FromRowFunc(1<<uint(sc.Param), graph.HypercubeRows(sc.Param), opt)
	case FamilyHard:
		if sc.Param < 1 || 2*sc.Param > sc.N {
			return nil, fmt.Errorf("graph: hard instance needs 1 <= Δ and 2Δ <= n, got n=%d Δ=%d", sc.N, sc.Param)
		}
		return graph.FromRowFunc(sc.N, graph.HardInstanceRows(sc.N, sc.Param), opt)
	case FamilyComplete:
		return graph.FromRowFunc(sc.N, graph.CompleteRows(sc.N), opt)
	case FamilyGeo:
		return graph.GeometricCells(sc.N, sc.GraphSeed, opt)
	}
	return nil, fmt.Errorf("sweep: unknown family %q", sc.Family)
}
