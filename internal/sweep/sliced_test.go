package sweep

import (
	"bytes"
	"reflect"
	"testing"
)

// replicateGrid is the canonical sliced-execution workload: one grid
// point, a sliced-capable engine, and a full word of replicates. The
// grid family derives its topology without GraphSeed, so all 64
// replicates share one sliceKey and coalesce into a single lane group.
func replicateGrid(replicates int) Grid {
	return Grid{
		Families:   []string{FamilyGrid},
		Params:     []int{3},
		Epsilons:   []float64{0.1},
		Engines:    []string{EngineTDMA},
		Workloads:  []string{WorkloadGossip},
		Rounds:     2,
		Replicates: replicates,
		BaseSeed:   77,
	}
}

// encodeZeroed renders a record as its stored JSONL line with the two
// non-deterministic timing fields zeroed — the byte-identity currency
// of the determinism contract (DESIGN.md §4).
func encodeZeroed(t *testing.T, rec Record) []byte {
	t.Helper()
	rec.WallNanos, rec.BuildNanos = 0, 0
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
}

// TestSliceGroups pins the lane-group scheduler: full-word splitting,
// the non-capable-engine and disabled fallbacks, and the graph-seed
// rule that keeps random families out of groups.
func TestSliceGroups(t *testing.T) {
	base := Scenario{
		Family: FamilyGrid, Param: 3, Epsilon: 0.1,
		Engine: EngineTDMA, Workload: WorkloadGossip, Rounds: 2,
	}
	scs := make([]Scenario, 70)
	order := make([]int, 70)
	for r := range scs {
		sc := base
		sc.Replicate = r
		sc.GraphSeed = 100 + uint64(r) // grid family ignores it
		sc.ChannelSeed = 200 + uint64(r)
		sc.AlgSeed = 300 + uint64(r)
		scs[r] = sc
		order[r] = r
	}

	// 70 replicates of one point overflow a word: 64 + 6.
	groups := sliceGroups(scs, order, false)
	if len(groups) != 2 || len(groups[0]) != 64 || len(groups[1]) != 6 {
		t.Fatalf("70 replicates grouped as %d groups (sizes %d, ...), want 64+6",
			len(groups), len(groups[0]))
	}

	// Disabled: everything is a singleton.
	if groups := sliceGroups(scs, order, true); len(groups) != 70 {
		t.Fatalf("DisableSlicing grouped %d groups, want 70 singletons", len(groups))
	}

	// A non-capable engine interleaved in the same order stays serial
	// without breaking the capable scenarios' grouping.
	mixed := append([]Scenario(nil), scs[:8]...)
	for i := range mixed {
		if i%2 == 1 {
			mixed[i].Engine = EngineAlg1
		}
	}
	groups = sliceGroups(mixed, order[:8], false)
	if len(groups) != 5 {
		t.Fatalf("mixed engines grouped as %d groups, want 5 (one tdma group + 4 alg1 singletons)", len(groups))
	}
	if want := []int{0, 2, 4, 6}; !reflect.DeepEqual(groups[0], want) {
		t.Fatalf("tdma lane group is %v, want %v (alg1 scenarios interleave as singletons)", groups[0], want)
	}
	for _, g := range groups[1:] {
		if len(g) != 1 || mixed[g[0]].Engine != EngineAlg1 {
			t.Fatalf("expected alg1 singleton, got group %v", g)
		}
	}

	// Random families consume GraphSeed, so replicates with distinct
	// seeds are distinct topologies — never lanes of one run.
	random := append([]Scenario(nil), scs[:4]...)
	for i := range random {
		random[i].Family = FamilyRegular
		random[i].N = 12
		random[i].Param = 2
	}
	if groups := sliceGroups(random, order[:4], false); len(groups) != 4 {
		t.Fatalf("regular-family replicates grouped as %d groups, want 4 singletons", len(groups))
	}
}

// TestSlicedSweepByteIdentical is the sweep-level acceptance property:
// a 64-replicate grid stores byte-identical JSONL records (timing
// fields aside) with replicate slicing on and off, and both paths
// report every scenario as engine work (grouping is an execution
// detail, not a caching effect).
func TestSlicedSweepByteIdentical(t *testing.T) {
	scs, err := replicateGrid(64).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 64 {
		t.Fatalf("grid expanded to %d scenarios, want 64", len(scs))
	}
	sliced, stOn, err := Run(scs, NewMemStore(), Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	serial, stOff, err := Run(scs, NewMemStore(), Options{Jobs: 2, DisableSlicing: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []Stats{stOn, stOff} {
		if st.Ran != 64 || st.Cached != 0 || st.Failed != 0 {
			t.Fatalf("stats: %+v, want run=64 cached=0 failed=0", st)
		}
	}
	for i := range scs {
		got, want := encodeZeroed(t, sliced[i]), encodeZeroed(t, serial[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("replicate %d stored differently sliced vs serial:\n got %s\nwant %s",
				scs[i].Replicate, got, want)
		}
	}
}

// TestSlicedPartialCacheHits: records already in the store drop out of
// a lane group member-by-member; the remainder still runs sliced and
// lands byte-identical to a fully serial sweep.
func TestSlicedPartialCacheHits(t *testing.T) {
	scs, err := replicateGrid(64).Expand()
	if err != nil {
		t.Fatal(err)
	}
	var warm []Scenario
	for _, sc := range scs {
		if sc.Replicate < 10 {
			warm = append(warm, sc)
		}
	}
	if len(warm) != 10 {
		t.Fatalf("warm subset has %d scenarios, want 10", len(warm))
	}
	store := NewMemStore()
	if _, _, err := Run(warm, store, Options{Jobs: 1, DisableSlicing: true}); err != nil {
		t.Fatal(err)
	}
	recs, st, err := Run(scs, store, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 10 || st.Ran != 54 || st.Failed != 0 {
		t.Fatalf("stats: %+v, want cached=10 run=54", st)
	}
	serial, _, err := Run(scs, NewMemStore(), Options{Jobs: 1, DisableSlicing: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		if got, want := encodeZeroed(t, recs[i]), encodeZeroed(t, serial[i]); !bytes.Equal(got, want) {
			t.Fatalf("replicate %d differs after partial cache short-circuit:\n got %s\nwant %s",
				scs[i].Replicate, got, want)
		}
	}
}

// TestSlicedMixedEngineGrid: a grid mixing sliced-capable and
// non-capable engines (with a non-default noise model and a replicate
// count that doesn't fill a word) produces identical records with
// slicing on and off.
func TestSlicedMixedEngineGrid(t *testing.T) {
	g := Grid{
		Families:   []string{FamilyGrid},
		Params:     []int{3},
		Epsilons:   []float64{0.1},
		Noises:     []string{"", "asymmetric:0.03:0.15"},
		Engines:    []string{EngineAlg1, EngineTDMA},
		Workloads:  []string{WorkloadGossip},
		Rounds:     2,
		Replicates: 6,
		BaseSeed:   91,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sliced, stOn, err := Run(scs, NewMemStore(), Options{Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	serial, stOff, err := Run(scs, NewMemStore(), Options{Jobs: 3, DisableSlicing: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(
		Stats{Total: stOn.Total, Unique: stOn.Unique, Ran: stOn.Ran, Cached: stOn.Cached, Failed: stOn.Failed},
		Stats{Total: stOff.Total, Unique: stOff.Unique, Ran: stOff.Ran, Cached: stOff.Cached, Failed: stOff.Failed},
	) {
		t.Fatalf("stats differ sliced vs serial: %+v vs %+v", stOn, stOff)
	}
	for i := range scs {
		if got, want := encodeZeroed(t, sliced[i]), encodeZeroed(t, serial[i]); !bytes.Equal(got, want) {
			t.Fatalf("scenario %d (%s/%s) differs sliced vs serial:\n got %s\nwant %s",
				i, scs[i].Engine, scs[i].Noise, got, want)
		}
	}
}

func TestExecuteSlicedValidation(t *testing.T) {
	base := Scenario{
		Family: FamilyGrid, Param: 2, Epsilon: 0.1,
		Engine: EngineTDMA, Workload: WorkloadGossip, Rounds: 2,
	}
	if _, err := ExecuteSliced(nil, ExecOptions{}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := ExecuteSliced(make([]Scenario, 65), ExecOptions{}); err == nil {
		t.Error("65-lane group accepted")
	}
	a, b := base, base
	b.Epsilon = 0.2
	if _, err := ExecuteSliced([]Scenario{a, b}, ExecOptions{}); err == nil {
		t.Error("group mixing ε accepted")
	}
	c := base
	c.Engine = EngineAlg1
	if _, err := ExecuteSliced([]Scenario{c, c}, ExecOptions{}); err == nil {
		t.Error("non-sliced-capable engine accepted")
	}

	// A well-formed pair matches two Execute calls exactly (timing aside).
	a, b = base, base
	a.ChannelSeed, a.AlgSeed = 10, 11
	b.Replicate, b.ChannelSeed, b.AlgSeed = 1, 20, 21
	recs, err := ExecuteSliced([]Scenario{a, b}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k, sc := range []Scenario{a, b} {
		want, err := Execute(sc, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := encodeZeroed(t, recs[k]), encodeZeroed(t, want); !bytes.Equal(got, want) {
			t.Fatalf("lane %d differs from Execute:\n got %s\nwant %s", k, got, want)
		}
	}
}

// TestGoldenPR4RecordsViaSlicedBatch routes the pinned PR 4 grid
// through the batch scheduler with slicing enabled: the stored records
// must remain byte-identical to the golden file written by the PR 4
// tree, proving the sliced path invisible across repo generations.
func TestGoldenPR4RecordsViaSlicedBatch(t *testing.T) {
	golden := readGolden(t)
	scs, err := pr4Grid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := Run(scs, NewMemStore(), Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ran != len(scs) || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	byHash := make(map[string][]byte, len(recs))
	for _, rec := range recs {
		byHash[rec.Hash] = encodeZeroed(t, rec)
	}
	for i, want := range golden {
		rec, err := DecodeRecord(want)
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		got, ok := byHash[rec.Hash]
		if !ok {
			t.Fatalf("golden record %s not produced by the sliced batch", rec.Hash)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record %s differs from PR 4 golden via sliced batch:\n got %s\nwant %s", rec.Hash, got, want)
		}
	}
}
