package sweep

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func tinyGrid() Grid {
	return Grid{
		Families: []string{FamilyRegular},
		Ns:       []int{12, 16},
		Params:   []int{2},
		Epsilons: []float64{0, 0.1},
		Engines:  []string{EngineAlg1, EngineTDMA},
		Rounds:   2,
		BaseSeed: 11,
	}
}

// TestBatchSecondRunFullyCached is the subsystem's core acceptance
// property: re-running a grid against the same store performs zero
// engine work — every scenario is served from the JSONL records — and
// returns bit-identical results.
func TestBatchSecondRunFullyCached(t *testing.T) {
	scs, err := tinyGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs1, st1, err := Run(scs, store, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Ran != len(scs) || st1.Cached != 0 || st1.Failed != 0 {
		t.Fatalf("first run stats: %+v", st1)
	}
	store.Close()

	store2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	recs2, st2, err := Run(scs, store2, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ran != 0 || st2.Cached != len(scs) || st2.Failed != 0 {
		t.Fatalf("second run was not fully cached: %+v", st2)
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Fatal("cached records differ from fresh records")
	}
}

// TestBatchOrderAndConcurrencyInvariance: records line up with the
// input slice regardless of jobs, and concurrent execution returns the
// same records as serial (wall time aside).
func TestBatchOrderAndConcurrencyInvariance(t *testing.T) {
	scs, err := tinyGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	serial, st, err := Run(scs, NewMemStore(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unique != len(scs) {
		t.Fatalf("grid produced duplicate specs: %+v", st)
	}
	parallel, _, err := Run(scs, NewMemStore(), Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range scs {
		if serial[i].Hash != scs[i].Hash() {
			t.Fatalf("record %d out of order: %s vs %s", i, serial[i].Hash, scs[i].Hash())
		}
		a, b := serial[i], parallel[i]
		a.WallNanos, b.WallNanos = 0, 0
		a.BuildNanos, b.BuildNanos = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d differs between jobs=1 and jobs=8:\n %+v\n %+v", i, a, b)
		}
	}
}

// TestBatchDeduplicatesWithinRun: the same spec listed twice executes
// once; both slots get the record.
func TestBatchDeduplicatesWithinRun(t *testing.T) {
	sc := baseSpec()
	recs, st, err := Run([]Scenario{sc, sc, sc}, NewMemStore(), Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unique != 1 || st.Ran != 1 || st.Cached != 2 {
		t.Fatalf("dedup stats: %+v", st)
	}
	if recs[0].Hash != recs[1].Hash || recs[1].Hash != recs[2].Hash {
		t.Fatal("duplicate slots got different records")
	}
}

// TestBatchReportsFailuresAndKeepsGoing: a failing scenario doesn't
// block the rest.
func TestBatchReportsFailuresAndKeepsGoing(t *testing.T) {
	good := baseSpec()
	bad := baseSpec()
	bad.Family = "no-such-family"
	recs, st, err := Run([]Scenario{bad, good}, NewMemStore(), Options{Jobs: 1})
	if err == nil {
		t.Fatal("expected an error for the invalid scenario")
	}
	if st.Failed != 1 || st.Ran != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if recs[0].Hash != "" {
		t.Fatal("failed slot has a record")
	}
	if recs[1].Hash != good.Hash() {
		t.Fatal("good scenario's record missing")
	}
}

func TestBatchProgressEvents(t *testing.T) {
	scs, err := tinyGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	_, _, err = Run(scs, NewMemStore(), Options{
		Jobs: 4,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			if seen[ev.Index] {
				t.Errorf("duplicate progress event for scenario %d", ev.Index)
			}
			seen[ev.Index] = true
			if ev.Total != len(scs) || ev.Done < 1 || ev.Done > ev.Total {
				t.Errorf("bad event counters: %+v", ev)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(scs) {
		t.Fatalf("got %d progress events for %d scenarios", len(seen), len(scs))
	}
}

// TestGridSeedStability: a grid point's spec (hence hash, hence cache
// entry) must not change when unrelated axis values are added.
func TestGridSeedStability(t *testing.T) {
	small := tinyGrid()
	big := tinyGrid()
	big.Ns = append(big.Ns, 20)
	big.Epsilons = append(big.Epsilons, 0.2)

	smallScs, err := small.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bigScs, err := big.Expand()
	if err != nil {
		t.Fatal(err)
	}
	bigSet := make(map[string]bool, len(bigScs))
	for _, sc := range bigScs {
		bigSet[sc.Hash()] = true
	}
	for _, sc := range smallScs {
		if !bigSet[sc.Hash()] {
			t.Errorf("grid growth changed existing scenario %+v", sc)
		}
	}
}

// TestGridSharedSeeds: engines at the same grid point compare on the
// same graph and algorithm randomness but distinct channel noise.
func TestGridSharedSeeds(t *testing.T) {
	scs, err := tinyGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	byPoint := make(map[Key][]Scenario)
	for _, sc := range scs {
		k := KeyOf(sc)
		k.Engine = ""
		byPoint[k] = append(byPoint[k], sc)
	}
	for k, group := range byPoint {
		if len(group) != 2 {
			t.Fatalf("point %+v has %d engines, want 2", k, len(group))
		}
		a, b := group[0], group[1]
		if a.GraphSeed != b.GraphSeed || a.AlgSeed != b.AlgSeed {
			t.Errorf("point %+v: engines do not share graph/alg seeds", k)
		}
		if a.ChannelSeed == b.ChannelSeed {
			t.Errorf("point %+v: engines share channel seed", k)
		}
	}
}

func TestGridReplicatesDiffer(t *testing.T) {
	g := tinyGrid()
	g.Replicates = 3
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2 * 3; len(scs) != want {
		t.Fatalf("expanded %d scenarios, want %d", len(scs), want)
	}
	seeds := make(map[uint64]bool)
	for _, sc := range scs {
		seeds[sc.ChannelSeed] = true
	}
	if len(seeds) != len(scs) {
		t.Errorf("channel seeds not unique across replicates: %d seeds for %d scenarios", len(seeds), len(scs))
	}
}

// TestGridSkipsUnsupportedPairs: the beep engine only runs natively
// beeping workloads.
func TestGridSkipsUnsupportedPairs(t *testing.T) {
	g := Grid{
		Families:  []string{FamilyRegular},
		Ns:        []int{12},
		Params:    []int{2},
		Epsilons:  []float64{0},
		Engines:   []string{EngineAlg1, EngineBeep},
		Workloads: []string{WorkloadGossip, WorkloadMIS},
		Rounds:    2,
		BaseSeed:  3,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// alg1×{gossip,mis} + beep×mis = 3.
	if len(scs) != 3 {
		t.Fatalf("expanded %d scenarios, want 3: %+v", len(scs), scs)
	}
	for _, sc := range scs {
		if !Supports(sc.Engine, sc.Workload) {
			t.Errorf("unsupported pair emitted: %s/%s", sc.Engine, sc.Workload)
		}
	}
}

// TestGridNormalizesNativeEngineChannelAxes: native engines ignore ε and
// the channel seed, so Expand zeroes both and grid points differing only
// in ε collapse to one spec hash — which Expand now deduplicates at
// expansion time, so a batch (and its aggregates) never sees the same
// execution under several ε labels.
func TestGridNormalizesNativeEngineChannelAxes(t *testing.T) {
	g := Grid{
		Families: []string{FamilyRegular},
		Ns:       []int{12},
		Params:   []int{2},
		Epsilons: []float64{0, 0.1, 0.2},
		Engines:  []string{EngineCongest},
		Rounds:   2,
		BaseSeed: 5,
	}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("expanded %d scenarios, want 1 (ε axis deduplicated at expansion)", len(scs))
	}
	for _, sc := range scs {
		if sc.Epsilon != 0 || sc.ChannelSeed != 0 {
			t.Errorf("native-engine spec kept channel axes: %+v", sc)
		}
	}
	_, st, err := Run(scs, NewMemStore(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unique != 1 || st.Ran != 1 || st.Cached != 0 {
		t.Fatalf("deduplicated expansion should run exactly once: %+v", st)
	}
}
