package sweep

import (
	"reflect"
	"testing"

	"repro/internal/engine"
)

func geoSpec() Scenario {
	return Scenario{
		Family: FamilyGeo, N: 400,
		Engine: EngineBeep, Workload: WorkloadBroadcast,
		GraphSeed: 11, AlgSeed: 12,
	}
}

func TestGeoFamilyValidation(t *testing.T) {
	good := geoSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geo spec rejected: %v", err)
	}
	small := good
	small.N = 16
	if err := small.Validate(); err == nil {
		t.Error("geo with N < 17 accepted")
	}
	parm := good
	parm.Param = 3
	if err := parm.Validate(); err == nil {
		t.Error("geo with a Param accepted")
	}
	if !graphSeedMatters(FamilyGeo) {
		t.Error("geo graphs are seed-dependent; sliceKey must keep GraphSeed")
	}
}

func TestGeoBroadcastEndToEnd(t *testing.T) {
	rec, err := Execute(geoSpec(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Counters.AllDone {
		t.Fatal("broadcast on geo did not terminate")
	}
	if rec.Counters.OutputOK == nil || !*rec.Counters.OutputOK {
		t.Fatal("broadcast output did not verify")
	}
	if rec.Graph.N != 400 || rec.Graph.MaxDegree > 24 {
		t.Fatalf("unexpected geo graph shape: %+v", rec.Graph)
	}
	// The sparse wave on a connected bounded-degree graph must come in
	// far under the dense worst-case budget of N+1 rounds' worth of work;
	// rounds themselves are O(D + b).
	if rec.Counters.BeepRounds <= 0 {
		t.Fatalf("no rounds recorded: %+v", rec.Counters)
	}
}

// TestGenWorkersRecordIdentity pins the streaming-generation determinism
// contract at the record level: sharded generation may never change a
// stored byte (timing fields aside).
func TestGenWorkersRecordIdentity(t *testing.T) {
	specs := []Scenario{
		geoSpec(),
		{Family: FamilyGrid, Param: 20, Engine: EngineCongest, Workload: WorkloadBroadcast, AlgSeed: 3},
		{Family: FamilyHard, N: 40, Param: 8, Engine: EngineAlg1, Workload: WorkloadLeader, Epsilon: 0.05, ChannelSeed: 4, AlgSeed: 5},
	}
	for _, sc := range specs {
		var want Record
		for i, gw := range []int{0, 1, 8, engine.AutoWorkers} {
			rec, err := Execute(sc, ExecOptions{GenWorkers: gw})
			if err != nil {
				t.Fatalf("%s genworkers=%d: %v", sc.Family, gw, err)
			}
			rec.WallNanos, rec.BuildNanos = 0, 0
			if i == 0 {
				want = rec
				continue
			}
			if !reflect.DeepEqual(rec, want) {
				t.Fatalf("%s: record differs between genworkers=0 and %d:\n%+v\nvs\n%+v",
					sc.Family, gw, rec, want)
			}
		}
	}
}
