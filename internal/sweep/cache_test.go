package sweep

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestArtifactCacheRecordsIdentical pins the artifact cache's
// determinism contract: a batch run with a shared graph/code-table
// cache produces byte-identical records (JSONL bytes, measured wall
// fields zeroed) to per-scenario construction with no cache.
func TestArtifactCacheRecordsIdentical(t *testing.T) {
	scs, err := Grid{
		Families:   []string{FamilyRegular},
		Ns:         []int{14},
		Params:     []int{3},
		Epsilons:   []float64{0.1, 0.2},
		Engines:    []string{EngineAlg1, EngineTDMA, EngineCongest},
		Workloads:  []string{WorkloadGossip, WorkloadMIS, WorkloadColoring},
		Rounds:     2,
		Replicates: 2,
		BaseSeed:   31,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}

	encode := func(recs []Record) [][]byte {
		out := make([][]byte, len(recs))
		for i, r := range recs {
			r.WallNanos, r.BuildNanos = 0, 0
			var buf bytes.Buffer
			if err := EncodeJSONL(&buf, r); err != nil {
				t.Fatal(err)
			}
			out[i] = buf.Bytes()
		}
		return out
	}

	cache := sim.NewCache()
	var cached, uncached []Record
	for _, sc := range scs {
		rec, err := Execute(sc, ExecOptions{Artifacts: cache})
		if err != nil {
			t.Fatalf("cached execute %s: %v", sc.Hash(), err)
		}
		cached = append(cached, rec)
		rec, err = Execute(sc, ExecOptions{})
		if err != nil {
			t.Fatalf("uncached execute %s: %v", sc.Hash(), err)
		}
		uncached = append(uncached, rec)
	}
	a, b := encode(cached), encode(uncached)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("scenario %d (%s): cache-on and cache-off records differ:\n%s\n%s",
				i, scs[i].Hash(), a[i], b[i])
		}
	}

	st := cache.Stats()
	if st.GraphMisses == 0 || st.GraphHits == 0 {
		t.Fatalf("cache never shared a graph: %+v", st)
	}
	// ε/engine/replicate axes share graphs: 2 graph seeds (replicates)
	// cover all 30 scenarios.
	if st.GraphMisses != 2 {
		t.Errorf("graph builds = %d, want 2 (one per replicate seed)", st.GraphMisses)
	}
	if st.CodeMisses == 0 || st.CodeHits == 0 {
		t.Fatalf("cache never shared a code table: %+v", st)
	}
}

// TestBatchUsesSharedArtifacts asserts Run threads one cache through
// its workers (the caller-supplied cache sees the batch's traffic).
func TestBatchUsesSharedArtifacts(t *testing.T) {
	scs, err := Grid{
		Families:   []string{FamilyRegular},
		Ns:         []int{12},
		Params:     []int{2},
		Epsilons:   []float64{0.05, 0.15},
		Engines:    []string{EngineAlg1},
		Rounds:     1,
		Replicates: 2,
		BaseSeed:   8,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := sim.NewCache()
	if _, _, err := Run(scs, NewMemStore(), Options{Jobs: 2, Artifacts: cache}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.GraphMisses != 2 || st.GraphHits != 2 {
		t.Errorf("graph traffic = %+v, want 2 misses + 2 hits (ε axis shares each replicate's graph)", st)
	}
	if st.CodeMisses != 2 || st.CodeHits != 2 {
		t.Errorf("code traffic = %+v, want 2 misses + 2 hits (replicates share each ε's tables)", st)
	}
}
