package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Options configures a batch run.
type Options struct {
	// Jobs bounds scenario-level concurrency (0 = one per CPU). The two
	// parallelism levels compose without oversubscription: when Jobs
	// leaves room for more than one concurrent scenario and Workers is 0
	// (auto), each scenario's engine pool runs serial — the cores belong
	// to the scenario level; with Jobs = 1 an auto Workers gives the
	// single scenario the whole machine, matching cmd/experiments.
	Jobs int
	// Workers and Shards configure each scenario's per-round engine pool
	// (ExecOptions). Workers 0 = auto as described above; any explicit
	// value (1 = serial, engine.AutoWorkers = GOMAXPROCS) passes through.
	// By the determinism contract, no setting changes any record.
	Workers int
	Shards  int
	// GenWorkers shards graph generation for the streaming families
	// (ExecOptions.GenWorkers): 0 or 1 = serial, negative = one per CPU.
	// Byte-invisible in every record, like the other parallelism knobs.
	GenWorkers int
	// Artifacts is the batch's shared artifact cache (graphs + code
	// tables); nil makes Run create a fresh one, so a batch always
	// builds each graph and code table once. Like the parallelism knobs
	// it never changes any record — cached artifacts are pure functions
	// of their keys.
	Artifacts *sim.Cache
	// Progress, when non-nil, receives one Event per scenario as it
	// completes (cache hit or run), serialized — no locking needed.
	Progress func(Event)
	// DisableSlicing turns off replicate-sliced execution: scenarios
	// that would have been grouped into lanes of one SlicedEngine pass
	// (same sliceKey) run one-by-one through Execute instead. Like
	// every Options knob it never changes any record — the sliced path
	// is pinned byte-identical to the serial one — so this exists for
	// conformance tests and before/after benchmarks, not correctness.
	DisableSlicing bool
	// Metrics, when non-nil, receives observation-only batch-scheduler
	// instrumentation (store hits, dedup, group shapes, schedule wait)
	// and is threaded down through ExecOptions into the engines. Like
	// every Options knob it never changes any record.
	Metrics *obs.Registry
	// MaxRoundsFactor forwards the round-budget guard to ExecOptions.
	// Unlike the other knobs it can change records (it bounds the run);
	// hold it constant across every run feeding one store.
	MaxRoundsFactor float64
}

// batchMetrics resolves the batch scheduler's handles; zero value (nil
// registry) disables everything at one pointer check per use.
type batchMetrics struct {
	storeHits   *obs.Counter
	storeMisses *obs.Counter
	dups        *obs.Counter
	groups      *obs.Counter
	groupLanes  *obs.Histogram
	peeledHits  *obs.Counter
	scheduleT   *obs.Timer
}

func newBatchMetrics(reg *obs.Registry, artifacts *sim.Cache) batchMetrics {
	if reg == nil {
		return batchMetrics{}
	}
	// Pull-based cache counters: evaluated at snapshot time against the
	// batch's artifact cache. Func replaces on re-registration, so each
	// batch re-points the metrics at its own cache.
	reg.Func("sim.cache.graph_hits", func() int64 { return artifacts.Stats().GraphHits })
	reg.Func("sim.cache.graph_misses", func() int64 { return artifacts.Stats().GraphMisses })
	reg.Func("sim.cache.code_hits", func() int64 { return artifacts.Stats().CodeHits })
	reg.Func("sim.cache.code_misses", func() int64 { return artifacts.Stats().CodeMisses })
	return batchMetrics{
		storeHits:   reg.Counter("sweep.store.hits"),
		storeMisses: reg.Counter("sweep.store.misses"),
		dups:        reg.Counter("sweep.batch.dups"),
		groups:      reg.Counter("sweep.batch.groups"),
		groupLanes:  reg.Histogram("sweep.batch.group_lanes"),
		peeledHits:  reg.Counter("sweep.batch.peeled_hits"),
		scheduleT:   reg.Timer("sweep.batch.schedule_wait_nanos"),
	}
}

// Event reports one scenario's completion to Options.Progress.
type Event struct {
	// Index is the scenario's position in the input slice; Done and
	// Total count completions so far.
	Index, Done, Total int
	// Cached reports a cache hit (no engine work).
	Cached bool
	// Record is the result (zero on error).
	Record Record
	// Err is the scenario's failure, if any.
	Err error
}

// Stats summarizes a batch.
type Stats struct {
	// Total counts scenarios requested; Unique counts distinct spec
	// hashes among them (duplicates are executed once).
	Total, Unique int
	// Cached counts scenarios served from the store with no engine work;
	// Ran counts engine executions; Failed counts errors.
	Cached, Ran, Failed int
	// Wall is the batch's total wall time.
	Wall time.Duration
}

func (st Stats) String() string {
	return fmt.Sprintf("total=%d cached=%d run=%d failed=%d wall=%s",
		st.Total, st.Cached, st.Ran, st.Failed, st.Wall.Round(time.Millisecond))
}

// Summary renders a batch's Stats together with the artifact cache's
// hit/miss counters — the end-of-run line the CLIs print so a sweep's
// cache effectiveness is visible without enabling full telemetry.
func Summary(st Stats, cs sim.CacheStats) string {
	return fmt.Sprintf("%s artifacts[%s]", st, cs)
}

// Run executes scenarios through the store: cache hits are served
// without engine work, misses are executed (at most Options.Jobs at a
// time) and persisted. Any StoreEngine serves — the in-memory Store or
// the seek-lookup IndexedStore. The returned slice is indexed like the
// input — records[i] is scenarios[i]'s record regardless of completion
// order, so batch output is deterministic even under concurrency. On
// scenario failures Run keeps going, returns every successful record,
// and reports the failures joined into one error (failed slots are zero
// Records).
func Run(scenarios []Scenario, store StoreEngine, opt Options) ([]Record, Stats, error) {
	start := time.Now()
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(scenarios) {
		jobs = max(len(scenarios), 1)
	}
	workers := opt.Workers
	if workers == 0 {
		if jobs > 1 {
			workers = 1
		} else {
			workers = engine.AutoWorkers
		}
	}
	artifacts := opt.Artifacts
	if artifacts == nil {
		artifacts = sim.NewCache()
	}
	execOpt := ExecOptions{Workers: workers, Shards: opt.Shards, GenWorkers: opt.GenWorkers, Artifacts: artifacts, Metrics: opt.Metrics, MaxRoundsFactor: opt.MaxRoundsFactor}
	bm := newBatchMetrics(opt.Metrics, artifacts)

	// Duplicate specs inside one batch run once: the first index with a
	// given hash owns execution, later ones copy its result. Hashes are
	// computed once up front — they're SHA-256 over canonical JSON, too
	// expensive to recompute per store lookup.
	hashes := make([]string, len(scenarios))
	owner := make(map[string]int, len(scenarios))
	dups := make([][]int, len(scenarios))
	var order []int
	for i, sc := range scenarios {
		hashes[i] = sc.Hash()
		if first, ok := owner[hashes[i]]; ok {
			dups[first] = append(dups[first], i)
			continue
		}
		owner[hashes[i]] = i
		order = append(order, i)
	}
	bm.dups.Add(int64(len(scenarios) - len(order)))

	records := make([]Record, len(scenarios))
	errs := make([]error, len(scenarios))
	cached := make([]bool, len(scenarios))

	var mu sync.Mutex // serializes progress + stats
	st := Stats{Total: len(scenarios), Unique: len(order)}
	done := 0
	report := func(i int, rec Record, wasCached bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		targets := append([]int{i}, dups[i]...)
		for _, j := range targets {
			records[j], cached[j], errs[j] = rec, wasCached, err
			done++
			switch {
			case err != nil:
				st.Failed++
			case wasCached:
				st.Cached++
			case j == i:
				st.Ran++
			default:
				st.Cached++ // in-batch duplicate: no engine work either
			}
			if opt.Progress != nil {
				// An in-batch duplicate of a successful run is cached (no
				// engine work for slot j), but a duplicate of a *failure*
				// is just a failure — mirroring the Stats arms above.
				opt.Progress(Event{Index: j, Done: done, Total: len(scenarios), Cached: wasCached || (j != i && err == nil), Record: rec, Err: err})
			}
		}
	}

	groups := sliceGroups(scenarios, order, opt.DisableSlicing)
	bm.groups.Add(int64(len(groups)))
	if bm.groupLanes != nil {
		for _, g := range groups {
			bm.groupLanes.Observe(int64(len(g)))
		}
	}
	idx := make(chan []int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for group := range idx {
				// Cache hits short-circuit lane-by-lane: only the misses
				// stay in the group, so a partially cached lane group runs
				// sliced over the remainder (or falls back to Execute when
				// a single miss is left).
				var misses []int
				for _, i := range group {
					if rec, ok := store.Get(hashes[i]); ok {
						bm.storeHits.Inc()
						if len(group) > 1 {
							bm.peeledHits.Inc()
						}
						report(i, rec, true, nil)
						continue
					}
					bm.storeMisses.Inc()
					misses = append(misses, i)
				}
				switch {
				case len(misses) == 0:
				case len(misses) == 1:
					i := misses[0]
					sc := scenarios[i]
					rec, err := Execute(sc, execOpt)
					if err == nil {
						err = store.Put(rec)
					}
					if err != nil {
						report(i, Record{}, false, fmt.Errorf("scenario %d (%s): %w", i, sc.Hash(), err))
						continue
					}
					report(i, rec, false, nil)
				default:
					scs := make([]Scenario, len(misses))
					missHashes := make([]string, len(misses))
					for k, i := range misses {
						scs[k] = scenarios[i]
						missHashes[k] = hashes[i]
					}
					recs, err := executeSliced(scs, missHashes, execOpt)
					if err != nil {
						for _, i := range misses {
							report(i, Record{}, false, fmt.Errorf("scenario %d (%s): %w", i, scenarios[i].Hash(), err))
						}
						continue
					}
					for k, i := range misses {
						err := store.Put(recs[k])
						if err != nil {
							report(i, Record{}, false, fmt.Errorf("scenario %d (%s): %w", i, scenarios[i].Hash(), err))
							continue
						}
						report(i, recs[k], false, nil)
					}
				}
			}
		}()
	}
	for _, group := range groups {
		// Schedule latency: how long each group waits for a free worker.
		sp := bm.scheduleT.Start()
		idx <- group
		sp.Stop()
	}
	close(idx)
	wg.Wait()

	st.Wall = time.Since(start)
	var failures []error
	for _, i := range order {
		if errs[i] != nil {
			failures = append(failures, errs[i])
		}
	}
	return records, st, errors.Join(failures...)
}

// sliceGroups partitions the owned scenario indices into execution
// units for the worker pool. Scenarios whose engine advertises
// replicate-sliced execution and that share a sliceKey (same spec up to
// replicate seeds) coalesce into lane groups of at most 64; everything
// else — non-capable engines, or all scenarios when slicing is disabled
// — stays a singleton. Grouping follows first-seen order, so batch
// scheduling remains deterministic and records are unaffected (slicing
// is pinned byte-identical to serial execution).
func sliceGroups(scenarios []Scenario, order []int, disabled bool) [][]int {
	groups := make([][]int, 0, len(order))
	byKey := make(map[Scenario]int)
	for _, i := range order {
		sc := scenarios[i]
		if disabled || !slicedCapable(sc) {
			groups = append(groups, []int{i})
			continue
		}
		key := sliceKey(sc)
		if gi, ok := byKey[key]; ok && len(groups[gi]) < 64 {
			groups[gi] = append(groups[gi], i)
			continue
		}
		byKey[key] = len(groups)
		groups = append(groups, []int{i})
	}
	return groups
}
