package sweep

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// IndexedStore is the seek-lookup StoreEngine: it opens a JSONL store
// through its sidecar offset index (hash → byte extent) and serves Get
// by a positioned disk read plus a single-record decode, instead of
// loading — and keeping — every record in memory the way Store does.
// This is the long-lived-service store: a sweepd process over a large
// corpus holds the index (a few dozen bytes per record), not the corpus.
//
// Concurrency: readers never block each other — record reads are
// os.File.ReadAt against immutable extents, and the index map is behind
// an RWMutex taken only for the lookup. A writer (Put) appends under the
// write lock and publishes the new extent afterwards, so readers are
// safe against a concurrent writer by construction: an extent, once
// published, never changes (the data file is append-only between
// compactions, and compaction replaces the file by rename, which leaves
// an already-open reader on the old inode with a consistent view).
//
// The index is pure acceleration, never truth: OpenIndexed regenerates
// it from the data file whenever it is missing or stale (so old-format
// stores open fine, and deleting the sidecar costs one rescan), and
// Close rewrites it to cover appends made during the session.
type IndexedStore struct {
	mu      sync.RWMutex
	path    string
	f       *os.File
	locs    map[string]indexEntry
	order   []string
	size    int64 // current data-file length == next append offset
	dropped int
	dirty   bool // index sidecar is behind the data file
}

// OpenIndexed opens (creating if absent) the JSONL store at path as an
// IndexedStore. With a valid sidecar index the open is O(index): no
// record is decoded. Without one — old-format store, deleted sidecar,
// or a data file that grew or shrank since the index was written — the
// data file is rescanned (tolerating torn and invalid lines exactly
// like Open, counted by Dropped) and a fresh index is installed.
func OpenIndexed(path string) (*IndexedStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	s := &IndexedStore{path: path, f: f, locs: make(map[string]indexEntry)}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: open store %s: %w", path, err)
	}
	if entries, ok := readIndex(path, size); ok {
		for _, e := range entries {
			s.publish(e)
		}
		s.size = size
		return s, nil
	}
	if err := s.rebuild(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// rebuild rescans the data file into a fresh in-memory index, repairs a
// torn tail, and installs a new sidecar.
func (s *IndexedStore) rebuild() error {
	s.locs = make(map[string]indexEntry)
	s.order = nil
	s.dropped = 0
	err := walkLines(s.f, func(off int64, line []byte) {
		rec, err := DecodeRecord(line)
		if err != nil {
			s.dropped++
			return
		}
		s.publish(indexEntry{Hash: rec.Hash, Off: off, Len: int64(len(line)) + 1})
	})
	if err != nil {
		return fmt.Errorf("sweep: read store %s: %w", s.path, err)
	}
	if err := repairTail(s.f); err != nil {
		return fmt.Errorf("sweep: repair store %s: %w", s.path, err)
	}
	size, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("sweep: open store %s: %w", s.path, err)
	}
	s.size = size
	return s.writeSidecar()
}

// publish installs one extent, preserving first-seen order across
// duplicate hashes (the newer extent wins, like Store.add).
func (s *IndexedStore) publish(e indexEntry) {
	if _, ok := s.locs[e.Hash]; !ok {
		s.order = append(s.order, e.Hash)
	}
	s.locs[e.Hash] = e
}

// readAt decodes the record at an extent. The trailing newline is part
// of the extent; DecodeRecord revalidates the hash, so a corrupt read
// can never satisfy a lookup.
func (s *IndexedStore) readAt(e indexEntry) (Record, error) {
	buf := make([]byte, e.Len)
	if _, err := s.f.ReadAt(buf, e.Off); err != nil {
		return Record{}, fmt.Errorf("sweep: store %s: read record %s: %w", s.path, e.Hash, err)
	}
	return DecodeRecord(trimNewline(buf))
}

// Get returns the record stored under a spec hash, read from disk.
func (s *IndexedStore) Get(hash string) (Record, bool) {
	s.mu.RLock()
	e, ok := s.locs[hash]
	s.mu.RUnlock()
	if !ok {
		return Record{}, false
	}
	rec, err := s.readAt(e)
	if err != nil {
		return Record{}, false
	}
	return rec, true
}

// Put appends rec to the data file and publishes its extent. Encoding
// happens outside the lock; only the append and the index update are
// serialized.
func (s *IndexedStore) Put(rec Record) error {
	line, err := EncodeLine(rec)
	if err != nil {
		return fmt.Errorf("sweep: store append: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("sweep: store %s is closed", s.path)
	}
	if _, err := s.f.WriteAt(line, s.size); err != nil {
		return fmt.Errorf("sweep: store append: %w", err)
	}
	s.publish(indexEntry{Hash: rec.Hash, Off: s.size, Len: int64(len(line))})
	s.size += int64(len(line))
	s.dirty = true
	return nil
}

// Len returns the number of indexed records.
func (s *IndexedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.locs)
}

// Dropped returns how many lines failed validation, when the open had
// to rescan (0 for an index-served open, which decodes nothing).
func (s *IndexedStore) Dropped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}

// Records returns the indexed records in first-seen order, streamed
// from disk. The extent snapshot is taken under the read lock; the
// reads happen outside it, safe against concurrent appends because
// published extents are immutable.
func (s *IndexedStore) Records() []Record {
	s.mu.RLock()
	extents := make([]indexEntry, 0, len(s.order))
	for _, h := range s.order {
		extents = append(extents, s.locs[h])
	}
	s.mu.RUnlock()
	out := make([]Record, 0, len(extents))
	for _, e := range extents {
		rec, err := s.readAt(e)
		if err != nil {
			continue // unreadable extent: excluded, like a dropped line
		}
		out = append(out, rec)
	}
	return out
}

// writeSidecar installs a sidecar covering the current state. Caller
// holds the write lock (or has exclusive access).
func (s *IndexedStore) writeSidecar() error {
	entries := make([]indexEntry, 0, len(s.order))
	for _, h := range s.order {
		entries = append(entries, s.locs[h])
	}
	if err := writeIndex(s.path, entries, s.size); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Close rewrites the sidecar index if appends outdated it, then
// releases the backing file. A crash before Close just costs the next
// open a rescan — the index is regenerable by contract.
func (s *IndexedStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var idxErr error
	if s.dirty {
		idxErr = s.writeSidecar()
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return err
	}
	return idxErr
}
