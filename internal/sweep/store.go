package sweep

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// StoreEngine is the result-store contract the scheduling layers (Run,
// Service, FrontierSearch) and the serving layer (cmd/sweepd) consume:
// content-addressed record lookup, durable append, and a first-seen-order
// snapshot. Two engines implement it — the load-everything *Store below
// (the historic JSONL format, always readable) and *IndexedStore
// (indexed.go), which opens by sidecar offset index and serves Get by
// disk seek instead of holding every record in memory. Both are safe for
// concurrent use; by the store contract a record, once Put, is immutable
// (records are pure functions of their spec hash), so every engine may
// serve Get from whichever copy — memory or disk — it holds.
type StoreEngine interface {
	// Get returns the record stored under a spec hash.
	Get(hash string) (Record, bool)
	// Put indexes rec and, for disk-backed engines, durably appends it.
	Put(rec Record) error
	// Len returns the number of indexed records.
	Len() int
	// Records returns the indexed records in first-seen order.
	Records() []Record
	// Close releases any backing resources.
	Close() error
}

// oversizedLine is the old bufio.Scanner line cap (1<<24 bytes). The
// store no longer has any line-length limit — Open reads through a
// plain reader — but lines past this size are counted separately
// (Oversized) so operators can tell "a record bigger than historic
// tooling handled" apart from corruption (Dropped).
const oversizedLine = 1 << 24

// Store is the content-addressed result store: one JSONL line per
// scenario record, indexed in memory by spec hash. A Store opened on an
// existing file serves its records as cache hits, which is what makes an
// interrupted or re-run batch resume for free — the scheduler asks the
// store before running anything.
//
// Appends go straight to disk (line-buffered through the OS), so a
// batch killed mid-run loses at most the record being written; Open
// tolerates a truncated final line for exactly that reason.
type Store struct {
	mu        sync.Mutex
	path      string
	recs      map[string]Record
	order     []string
	f         *os.File
	dropped   int
	oversized int
}

// NewMemStore returns an in-memory store (no persistence): the degenerate
// cache the experiment tables use when routing through the scheduler.
func NewMemStore() *Store {
	return &Store{recs: make(map[string]Record)}
}

// Open loads (creating if absent) the JSONL store at path. Lines that do
// not parse, or whose stored hash does not match their spec, are dropped
// from the index (counted by Dropped) — except that a final unparseable
// line is expected after an interrupt and is silently overwritten-around
// by subsequent appends. Lines have no length limit: records larger than
// the historic 16 MiB scanner cap load fine and are counted by Oversized
// so their presence is visible rather than vanishing into Dropped.
func Open(path string) (*Store, error) {
	s := &Store{path: path, recs: make(map[string]Record)}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	err = walkLines(f, func(_ int64, line []byte) {
		if len(line) > oversizedLine {
			s.oversized++
		}
		rec, err := DecodeRecord(line)
		if err != nil {
			s.dropped++
			return
		}
		s.add(rec)
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read store %s: %w", path, err)
	}
	// Appends must start on a fresh line even if the file ends in a torn
	// record from an interrupted run, so repair once here: position at
	// end and terminate any unterminated final line.
	if err := repairTail(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: repair store %s: %w", path, err)
	}
	s.f = f
	return s, nil
}

// walkLines streams f from the start, calling fn(offset, line) for every
// non-empty line (newline excluded; offset is the line's first byte).
// A torn final line — bytes after the last newline, the expected residue
// of an interrupted append — is passed to fn like any other line (its
// decode failure is what callers count). Lines have no length limit.
func walkLines(f *os.File, fn func(off int64, line []byte)) error {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	for {
		line, err := r.ReadBytes('\n')
		n := int64(len(line))
		line = trimNewline(line)
		if len(line) > 0 {
			fn(off, line)
		}
		off += n
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func trimNewline(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		return line[:n-1]
	}
	return line
}

// repairTail terminates an unterminated final line so subsequent appends
// start fresh, and leaves the file positioned at its end.
func repairTail(f *os.File) error {
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if off == 0 {
		return nil
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, off-1); err != nil {
		return err
	}
	if buf[0] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) add(rec Record) {
	if _, ok := s.recs[rec.Hash]; !ok {
		s.order = append(s.order, rec.Hash)
	}
	s.recs[rec.Hash] = rec
}

// Get returns the cached record for a spec hash.
func (s *Store) Get(hash string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[hash]
	return rec, ok
}

// Put indexes rec and, for a disk-backed store, appends its JSONL line
// (Open repaired any torn final line, so appends are plain writes). The
// JSONL encoding happens before the lock is taken — only the index
// update and the ordered append sit in the critical section, so
// concurrent writers never serialize on each other's encoding work.
func (s *Store) Put(rec Record) error {
	line, err := EncodeLine(rec)
	if err != nil {
		return fmt.Errorf("sweep: store append: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.add(rec)
	if s.f == nil {
		return nil
	}
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("sweep: store append: %w", err)
	}
	return nil
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dropped returns how many persisted lines failed validation on Open.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Oversized returns how many persisted lines exceeded the historic
// 16 MiB scanner cap on Open. They loaded fine — the reader has no line
// limit — but are reported separately from Dropped so outsized records
// are distinguishable from corruption.
func (s *Store) Oversized() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.oversized
}

// Records returns the indexed records in first-seen order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, h := range s.order {
		out = append(out, s.recs[h])
	}
	return out
}

// Close releases the backing file (no-op for memory stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
