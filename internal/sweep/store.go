package sweep

import (
	"bufio"
	"fmt"
	"os"
	"sync"
)

// Store is the content-addressed result store: one JSONL line per
// scenario record, indexed in memory by spec hash. A Store opened on an
// existing file serves its records as cache hits, which is what makes an
// interrupted or re-run batch resume for free — the scheduler asks the
// store before running anything.
//
// Appends go straight to disk (line-buffered through the OS), so a
// batch killed mid-run loses at most the record being written; Open
// tolerates a truncated final line for exactly that reason.
type Store struct {
	mu      sync.Mutex
	path    string
	recs    map[string]Record
	order   []string
	f       *os.File
	dropped int
}

// NewMemStore returns an in-memory store (no persistence): the degenerate
// cache the experiment tables use when routing through the scheduler.
func NewMemStore() *Store {
	return &Store{recs: make(map[string]Record)}
}

// Open loads (creating if absent) the JSONL store at path. Lines that do
// not parse, or whose stored hash does not match their spec, are dropped
// from the index (counted by Dropped) — except that a final unparseable
// line is expected after an interrupt and is silently overwritten-around
// by subsequent appends.
func Open(path string) (*Store, error) {
	s := &Store{path: path, recs: make(map[string]Record)}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := DecodeRecord(line)
		if err != nil {
			s.dropped++
			continue
		}
		s.add(rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: read store %s: %w", path, err)
	}
	// Appends must start on a fresh line even if the file ends in a torn
	// record from an interrupted run, so repair once here: position at
	// end and terminate any unterminated final line.
	off, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	if off > 0 {
		buf := make([]byte, 1)
		if _, err := f.ReadAt(buf, off-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: read store %s: %w", path, err)
		}
		if buf[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("sweep: repair store %s: %w", path, err)
			}
		}
	}
	s.f = f
	return s, nil
}

func (s *Store) add(rec Record) {
	if _, ok := s.recs[rec.Hash]; !ok {
		s.order = append(s.order, rec.Hash)
	}
	s.recs[rec.Hash] = rec
}

// Get returns the cached record for a spec hash.
func (s *Store) Get(hash string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[hash]
	return rec, ok
}

// Put indexes rec and, for a disk-backed store, appends its JSONL line
// (Open repaired any torn final line, so appends are plain writes).
func (s *Store) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.add(rec)
	if s.f == nil {
		return nil
	}
	if err := EncodeJSONL(s.f, rec); err != nil {
		return fmt.Errorf("sweep: store append: %w", err)
	}
	return nil
}

// Len returns the number of indexed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dropped returns how many persisted lines failed validation on Open.
func (s *Store) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Records returns the indexed records in first-seen order.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, h := range s.order {
		out = append(out, s.recs[h])
	}
	return out
}

// Close releases the backing file (no-op for memory stores).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
