package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// GraphInfo records the realized graph a scenario ran on (the spec only
// pins the generator; Δ of a random bounded-degree graph, say, is a
// measurement).
type GraphInfo struct {
	N         int `json:"n"`
	MaxDegree int `json:"max_degree"`
	Edges     int `json:"edges"`
}

// Counters is the serializable core of an engine result: core.Result's
// counters (whose JSON tags define the field names — that struct is the
// serialization hook this record format builds on) plus the fields only
// native engines or workloads produce. Per-node Outputs are arbitrary
// values and do not survive serialization; workload-level correctness is
// distilled into OutputOK instead.
type Counters struct {
	core.Result
	// Messages counts messages sent by the native CONGEST engines.
	Messages int64 `json:"messages,omitempty"`
	// OutputOK reports workload-level output validity where the workload
	// defines one (MIS verification); nil when not applicable.
	OutputOK *bool `json:"output_ok,omitempty"`
}

// countersFromCore wraps a simulation result (Algorithm 1 or TDMA — both
// report core.Result), stripping the non-serializable Outputs.
func countersFromCore(res *core.Result) Counters {
	r := *res
	r.Outputs = nil
	return Counters{Result: r}
}

// Record is one scenario's persisted result: the JSONL unit of the
// result store. Everything except WallNanos is a pure function of the
// spec, so a Record served from cache is bit-identical to a fresh run.
type Record struct {
	// Hash is Spec.Hash(), the record's content address.
	Hash string `json:"hash"`
	// Spec is the scenario that produced the record.
	Spec Scenario `json:"spec"`
	// Graph is the realized topology.
	Graph GraphInfo `json:"graph"`
	// Counters is the engine result.
	Counters Counters `json:"counters"`
	// Colors, Rho, and SetupRounds are TDMA-only: the G²-coloring class
	// count, the per-bit repetition, and the estimated distributed setup
	// cost the centralized coloring stands in for.
	Colors      int `json:"colors,omitempty"`
	Rho         int `json:"rho,omitempty"`
	SetupRounds int `json:"setup_rounds,omitempty"`
	// Failure, when non-empty, is the reason the scenario's protocol is
	// considered broken: the round-budget guard tripped, or a hostile
	// channel (noise.Hostile) left nodes unfinished or the output
	// invalid. It stores the reason only; BrokenError reconstructs the
	// typed *sim.ProtocolBrokenError. Deterministic like every spec
	// function (MaxRoundsFactor, the guard knob, is documented as part of
	// a store's execution contract).
	Failure string `json:"failure,omitempty"`
	// WallNanos is the measured wall time of the engine run alone and
	// BuildNanos that of everything before it — graph construction,
	// workload instances, and engine preparation (code tables, TDMA
	// schedule). They are the non-deterministic fields, excluded from
	// any equality the cache relies on because cached records are never
	// re-measured. Keeping setup out of WallNanos (and near zero on
	// artifact-cache hits) makes cache effectiveness visible in the
	// aggregates' build-time column.
	WallNanos  int64 `json:"wall_nanos"`
	BuildNanos int64 `json:"build_nanos,omitempty"`
}

// Broken reports whether the record carries a broken-protocol failure.
func (r Record) Broken() bool { return r.Failure != "" }

// BrokenError reconstructs the typed broken-protocol error from a
// failed record, nil otherwise.
func (r Record) BrokenError() error {
	if r.Failure == "" {
		return nil
	}
	return &sim.ProtocolBrokenError{
		Workload: r.Spec.Workload,
		Engine:   r.Spec.Engine,
		Noise:    r.Spec.Noise,
		Reason:   r.Failure,
	}
}

// BeepsPerSimRound is the overhead metric of Theorem 11: physical beep
// rounds per simulated round.
func (r Record) BeepsPerSimRound() int {
	if r.Counters.SimRounds < 1 {
		return r.Counters.BeepRounds
	}
	return r.Counters.BeepRounds / r.Counters.SimRounds
}

// NodeRounds is n·SimRounds, the denominator of the error rates.
func (r Record) NodeRounds() int { return r.Graph.N * r.Counters.SimRounds }

// MsgErrRate is MessageErrors per node-round.
func (r Record) MsgErrRate() float64 {
	if r.NodeRounds() == 0 {
		return 0
	}
	return float64(r.Counters.MessageErrors) / float64(r.NodeRounds())
}

// MemErrRate is MembershipErrors per node-round.
func (r Record) MemErrRate() float64 {
	if r.NodeRounds() == 0 {
		return 0
	}
	return float64(r.Counters.MembershipErrors) / float64(r.NodeRounds())
}

// BeepsPerNodeRound is the energy metric of ablation A4.
func (r Record) BeepsPerNodeRound() float64 {
	if r.NodeRounds() == 0 {
		return 0
	}
	return float64(r.Counters.Beeps) / float64(r.NodeRounds())
}

// EncodeJSONL writes v as one line of JSON. It is the single encoder for
// everything this repository persists or emits as machine-readable
// output (sweep records, cmd/experiments -json tables), so downstream
// consumers see one framing.
func EncodeJSONL(w io.Writer, v any) error {
	b, err := EncodeLine(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// EncodeLine returns v's JSONL framing — one JSON line including the
// trailing newline — without writing it, so stores can encode outside
// their critical sections and append the prebuilt bytes under the lock.
func EncodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("sweep: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeRecord parses one JSONL line and checks the stored hash against
// the spec's recomputed hash, so corrupt or hand-edited lines can never
// satisfy a cache lookup.
func DecodeRecord(line []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return Record{}, fmt.Errorf("sweep: decode record: %w", err)
	}
	if got := rec.Spec.Hash(); got != rec.Hash {
		return Record{}, fmt.Errorf("sweep: record hash %s does not match spec hash %s", rec.Hash, got)
	}
	return rec, nil
}
