package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Service is the long-lived scheduling layer: the batch scheduler's
// execution semantics (store-first lookup, persisted misses, per-slot
// deterministic records) lifted out of the one-shot Run call into a
// resident worker pool that serves many concurrent submissions over one
// store — the shape cmd/sweepd exposes over HTTP. Each Submit gets its
// own Job with a private completion queue and a streaming event channel;
// the scenarios of all jobs share the worker pool, the store, the
// artifact cache, and one request-level singleflight group, so identical
// scenarios submitted concurrently by different requests execute exactly
// once (sim.FlightGroup — the artifact cache's per-entry sync.Once
// generalized to the request layer).
//
// Records are byte-identical to Execute/Run output by the determinism
// contract: the service changes scheduling only, never results.
type Service struct {
	store StoreEngine
	exec  ExecOptions
	// execute is Execute, injectable so tests can pin singleflight
	// interleavings without real engine work.
	execute func(Scenario, ExecOptions) (Record, error)

	tasks   chan task
	flights sim.FlightGroup[string, flightResult]
	wg      sync.WaitGroup
	m       serviceMetrics

	mu         sync.Mutex
	pending    int // queued + running tasks, bounded by maxPending
	maxPending int
	nextJob    int
	jobs       map[string]*Job
	closed     bool
}

// ServiceOptions configures a Service.
type ServiceOptions struct {
	// Jobs bounds concurrently executing scenarios (0 = one per CPU),
	// exactly like Options.Jobs; Workers, Shards, and GenWorkers follow
	// the same composition rule as the batch scheduler (auto Workers run
	// serial per scenario when Jobs > 1).
	Jobs, Workers, Shards, GenWorkers int
	// MaxRoundsFactor forwards the round-budget guard (ExecOptions);
	// like a spec axis, hold it constant over one store's lifetime.
	MaxRoundsFactor float64
	// MaxPending bounds queued-plus-running scenarios across all jobs
	// (0 = DefaultMaxPending): the backpressure valve. A Submit that
	// would exceed it fails fast with ErrBackpressure instead of growing
	// an unbounded queue.
	MaxPending int
	// Artifacts shares graphs and code tables across the service's whole
	// lifetime (nil = a fresh cache); Metrics receives the scheduler's
	// observation-only instrumentation, including the singleflight dedup
	// counter sweep.service.singleflight_hits.
	Artifacts *sim.Cache
	Metrics   *obs.Registry
	// ExecuteFunc replaces Execute as the per-scenario runner (nil =
	// Execute). A test seam: blocking it lets tests pin store-hit,
	// singleflight, and backpressure interleavings deterministically.
	// Production callers leave it nil — any substitute must preserve the
	// determinism contract (records a pure function of the spec).
	ExecuteFunc func(Scenario, ExecOptions) (Record, error)
}

// DefaultMaxPending is the default backpressure bound.
const DefaultMaxPending = 4096

// ErrBackpressure is returned by Submit when accepting the request
// would exceed the service's MaxPending bound.
var ErrBackpressure = errors.New("sweep: service queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("sweep: service is closed")

type serviceMetrics struct {
	submissions *obs.Counter
	scenarios   *obs.Counter
	storeHits   *obs.Counter
	executions  *obs.Counter
	dedup       *obs.Counter
	rejected    *obs.Counter
	queueDepth  *obs.Gauge
}

func newServiceMetrics(reg *obs.Registry, artifacts *sim.Cache) serviceMetrics {
	if reg == nil {
		return serviceMetrics{}
	}
	reg.Func("sim.cache.graph_hits", func() int64 { return artifacts.Stats().GraphHits })
	reg.Func("sim.cache.graph_misses", func() int64 { return artifacts.Stats().GraphMisses })
	reg.Func("sim.cache.code_hits", func() int64 { return artifacts.Stats().CodeHits })
	reg.Func("sim.cache.code_misses", func() int64 { return artifacts.Stats().CodeMisses })
	return serviceMetrics{
		submissions: reg.Counter("sweep.service.submissions"),
		scenarios:   reg.Counter("sweep.service.scenarios"),
		storeHits:   reg.Counter("sweep.service.store_hits"),
		executions:  reg.Counter("sweep.service.executions"),
		dedup:       reg.Counter("sweep.service.singleflight_hits"),
		rejected:    reg.Counter("sweep.service.rejected"),
		queueDepth:  reg.Gauge("sweep.service.queue_depth"),
	}
}

type task struct {
	job *Job
	idx int
}

type flightResult struct {
	rec Record
	err error
	// hit reports the flight resolved by the owner's in-flight store
	// re-check rather than an execution (see runTask).
	hit bool
}

// NewService starts a service over store: opts.Jobs resident workers
// draining one shared scenario queue. Close releases them.
func NewService(store StoreEngine, opts ServiceOptions) *Service {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	workers := opts.Workers
	if workers == 0 {
		if jobs > 1 {
			workers = 1
		} else {
			workers = engine.AutoWorkers
		}
	}
	maxPending := opts.MaxPending
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	artifacts := opts.Artifacts
	if artifacts == nil {
		artifacts = sim.NewCache()
	}
	s := &Service{
		store: store,
		exec: ExecOptions{
			Workers: workers, Shards: opts.Shards, GenWorkers: opts.GenWorkers,
			Artifacts: artifacts, Metrics: opts.Metrics, MaxRoundsFactor: opts.MaxRoundsFactor,
		},
		execute:    opts.ExecuteFunc,
		tasks:      make(chan task, maxPending),
		maxPending: maxPending,
		jobs:       make(map[string]*Job),
		m:          newServiceMetrics(opts.Metrics, artifacts),
	}
	if s.execute == nil {
		s.execute = Execute
	}
	for w := 0; w < jobs; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and enqueues scenarios as one Job. It returns
// immediately: progress streams on Job.Events, completion blocks on
// Job.Wait. ErrBackpressure reports a full queue (nothing enqueued —
// admission is all-or-nothing, so a rejected request leaves no orphan
// tasks); ErrClosed a closed service; a validation error the first
// invalid scenario.
func (s *Service) Submit(scenarios []Scenario) (*Job, error) {
	if len(scenarios) == 0 {
		return nil, errors.New("sweep: empty submission")
	}
	for i, sc := range scenarios {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: submission scenario %d: %w", i, err)
		}
	}
	hashes := make([]string, len(scenarios))
	unique := make(map[string]struct{}, len(scenarios))
	for i, sc := range scenarios {
		hashes[i] = sc.Hash()
		unique[hashes[i]] = struct{}{}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.pending+len(scenarios) > s.maxPending {
		s.mu.Unlock()
		s.m.rejected.Inc()
		return nil, fmt.Errorf("%w: %d pending + %d submitted > %d", ErrBackpressure, s.pending, len(scenarios), s.maxPending)
	}
	s.pending += len(scenarios)
	s.m.queueDepth.Set(int64(s.pending))
	s.nextJob++
	j := &Job{
		id:        fmt.Sprintf("j%d", s.nextJob),
		scenarios: scenarios,
		hashes:    hashes,
		records:   make([]Record, len(scenarios)),
		errs:      make([]error, len(scenarios)),
		events:    make(chan Event, len(scenarios)),
		done:      make(chan struct{}),
		start:     time.Now(),
		stats:     Stats{Total: len(scenarios), Unique: len(unique)},
	}
	s.jobs[j.id] = j
	// Enqueue under the lock: pending accounting guarantees channel
	// capacity, so these sends never block.
	for i := range scenarios {
		s.tasks <- task{job: j, idx: i}
	}
	s.mu.Unlock()
	s.m.submissions.Inc()
	s.m.scenarios.Add(int64(len(scenarios)))
	return j, nil
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobIDs returns the IDs of every job the service has accepted, in
// submission order.
func (s *Service) JobIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for i := 1; i <= s.nextJob; i++ {
		id := fmt.Sprintf("j%d", i)
		if _, ok := s.jobs[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Close stops admission, drains the queue (every accepted job still
// completes), and releases the workers.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.tasks)
	s.wg.Wait()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for t := range s.tasks {
		s.runTask(t)
		s.mu.Lock()
		s.pending--
		s.m.queueDepth.Set(int64(s.pending))
		s.mu.Unlock()
	}
}

// runTask resolves one scenario slot: store hit, singleflight share, or
// owned execution (persisted on success). Shares count as cached — the
// requester did no engine work — and increment the dedup counter.
//
// The store is checked twice: once before the flight (the fast path)
// and again inside it. The re-check closes the exactly-once gap where a
// task misses the store, the in-flight execution for the same hash then
// lands (Put + key forgotten), and the task would otherwise start a
// second execution of work the store already holds.
func (s *Service) runTask(t task) {
	hash := t.job.hashes[t.idx]
	if rec, ok := s.store.Get(hash); ok {
		s.m.storeHits.Inc()
		t.job.report(t.idx, rec, true, nil)
		return
	}
	res, shared := s.flights.Do(hash, func() flightResult {
		if rec, ok := s.store.Get(hash); ok {
			s.m.storeHits.Inc()
			return flightResult{rec: rec, hit: true}
		}
		s.m.executions.Inc()
		rec, err := s.execute(t.job.scenarios[t.idx], s.exec)
		if err == nil {
			err = s.store.Put(rec)
		}
		if err != nil {
			err = fmt.Errorf("scenario %s: %w", hash, err)
		}
		return flightResult{rec: rec, err: err}
	})
	if shared {
		s.m.dedup.Inc()
	}
	if res.err != nil {
		t.job.report(t.idx, Record{}, false, res.err)
		return
	}
	t.job.report(t.idx, res.rec, shared || res.hit, nil)
}

// Job is one accepted submission: a per-request result slice, progress
// stream, and completion signal over the service's shared workers.
type Job struct {
	id        string
	scenarios []Scenario
	hashes    []string

	mu      sync.Mutex
	records []Record
	errs    []error
	stats   Stats
	doneN   int
	start   time.Time

	events chan Event
	done   chan struct{}
}

// ID returns the service-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Events streams one Event per scenario as it completes, then closes:
// the per-request progress feed (cmd/sweepd forwards it as NDJSON). The
// channel is buffered to the job's full size, so a consumer that never
// reads costs nothing and a consumer that arrives late still sees every
// event.
func (j *Job) Events() <-chan Event { return j.events }

// Done is closed when every scenario has completed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns it like Run would: a
// record per input slot (zero on failure), batch stats, and the joined
// scenario failures.
func (j *Job) Wait() ([]Record, Stats, error) {
	<-j.done
	j.mu.Lock()
	defer j.mu.Unlock()
	var failures []error
	seen := make(map[string]struct{}, len(j.hashes))
	for i, err := range j.errs {
		if err == nil {
			continue
		}
		if _, dup := seen[j.hashes[i]]; dup {
			continue // one failure per unique scenario, like Run
		}
		seen[j.hashes[i]] = struct{}{}
		failures = append(failures, err)
	}
	return append([]Record(nil), j.records...), j.stats, errors.Join(failures...)
}

// JobStatus is a point-in-time progress snapshot (the cmd/sweepd
// polling shape).
type JobStatus struct {
	ID        string `json:"id"`
	Total     int    `json:"total"`
	Unique    int    `json:"unique"`
	Done      int    `json:"done"`
	Cached    int    `json:"cached"`
	Ran       int    `json:"ran"`
	Failed    int    `json:"failed"`
	Complete  bool   `json:"complete"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// Status returns the job's current progress.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.id,
		Total:     j.stats.Total,
		Unique:    j.stats.Unique,
		Done:      j.doneN,
		Cached:    j.stats.Cached,
		Ran:       j.stats.Ran,
		Failed:    j.stats.Failed,
		Complete:  j.doneN == j.stats.Total,
		ElapsedMS: int64(j.elapsed() / time.Millisecond),
	}
}

// elapsed is the job's wall clock: frozen at completion. Caller holds
// j.mu.
func (j *Job) elapsed() time.Duration {
	if j.doneN == j.stats.Total {
		return j.stats.Wall
	}
	return time.Since(j.start)
}

// Records returns the records completed so far, indexed like the
// submission (zero Records for pending or failed slots).
func (j *Job) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// report lands one slot's outcome: result slice, stats, event stream,
// and — on the last slot — completion.
func (j *Job) report(idx int, rec Record, cached bool, err error) {
	j.mu.Lock()
	j.records[idx], j.errs[idx] = rec, err
	j.doneN++
	switch {
	case err != nil:
		j.stats.Failed++
	case cached:
		j.stats.Cached++
	default:
		j.stats.Ran++
	}
	complete := j.doneN == j.stats.Total
	if complete {
		j.stats.Wall = time.Since(j.start)
	}
	// Send under the lock: the channel is buffered to Total so the send
	// never blocks, and holding the lock keeps the event stream ordered
	// by its Done counter.
	j.events <- Event{Index: idx, Done: j.doneN, Total: j.stats.Total, Cached: cached, Record: rec, Err: err}
	if complete {
		close(j.events)
		close(j.done)
	}
	j.mu.Unlock()
}
