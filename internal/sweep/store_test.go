package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func execOrFatal(t *testing.T, sc Scenario) Record {
	t.Helper()
	rec, err := Execute(sc, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestStorePersistAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := execOrFatal(t, baseSpec())
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 || s2.Dropped() != 0 {
		t.Fatalf("reloaded store: len=%d dropped=%d", s2.Len(), s2.Dropped())
	}
	got, ok := s2.Get(rec.Hash)
	if !ok {
		t.Fatal("record missing after reload")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("reloaded record differs:\n %+v\n %+v", got, rec)
	}
}

// TestStoreResumesPastTornLine simulates an interrupt mid-append: the
// torn final line is dropped on open and the next Put starts a fresh
// line, so nothing else is lost.
func TestStoreResumesPastTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recA := execOrFatal(t, baseSpec())
	if err := s.Put(recA); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a write cut off mid-record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"hash":"deadbeef","spec":{"fam`)
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 || s2.Dropped() != 1 {
		t.Fatalf("after torn line: len=%d dropped=%d", s2.Len(), s2.Dropped())
	}
	scB := baseSpec()
	scB.ChannelSeed++
	recB := execOrFatal(t, scB)
	if err := s2.Put(recB); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 2 {
		t.Fatalf("after resume: len=%d, want 2 (dropped=%d)", s3.Len(), s3.Dropped())
	}
	for _, want := range []Record{recA, recB} {
		if got, ok := s3.Get(want.Hash); !ok || !reflect.DeepEqual(got, want) {
			t.Errorf("record %s lost or changed across torn-line resume", want.Hash)
		}
	}
}

// TestStoreDropsTamperedRecords: a line whose spec was edited after the
// fact (hash mismatch) must not serve cache hits.
func TestStoreDropsTamperedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := execOrFatal(t, baseSpec())
	rec.Hash = "0123456789abcdef0123456789abcdef" // wrong address
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 || s2.Dropped() != 1 {
		t.Fatalf("tampered record survived reload: len=%d dropped=%d", s2.Len(), s2.Dropped())
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	rec := execOrFatal(t, baseSpec())
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(rec.Hash); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("memory store lost the record")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
