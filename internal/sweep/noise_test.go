package sweep

import (
	"reflect"
	"testing"

	"repro/internal/noise"
)

const testBurstSpec = "gilbert-elliott:0.02:0.3:0.05:0.25"

// TestGridNoiseAxis covers the noise axis's expansion rules: the
// symmetric entry rides the ε axis, model entries collapse ε, native
// engines drop the axis entirely, and the expansion is duplicate-free
// with pairwise-distinct hashes per engine class.
func TestGridNoiseAxis(t *testing.T) {
	scs, err := Grid{
		Families: []string{FamilyRegular},
		Ns:       []int{12},
		Params:   []int{2},
		Epsilons: []float64{0.1, 0.2},
		Noises:   []string{"symmetric", testBurstSpec},
		Engines:  []string{EngineAlg1, EngineCongest},
		Rounds:   2,
		BaseSeed: 17,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	perEngine := map[string][]Scenario{}
	hashes := map[string]string{}
	for _, sc := range scs {
		perEngine[sc.Engine] = append(perEngine[sc.Engine], sc)
		h := sc.Hash()
		if prev, dup := hashes[h]; dup {
			t.Fatalf("duplicate hash %s in expansion (%+v and %s)", h, sc, prev)
		}
		hashes[h] = sc.Engine
	}
	// alg1: 2 symmetric ε points + 1 burst point (ε collapsed) = 3.
	if got := len(perEngine[EngineAlg1]); got != 3 {
		t.Errorf("alg1 expands to %d specs, want 3: %+v", got, perEngine[EngineAlg1])
	}
	// congest: native — both the ε axis and the noise axis collapse.
	if got := len(perEngine[EngineCongest]); got != 1 {
		t.Errorf("congest expands to %d specs, want 1: %+v", got, perEngine[EngineCongest])
	}
	var sawBurst bool
	for _, sc := range perEngine[EngineAlg1] {
		switch sc.Noise {
		case "":
			if sc.Epsilon != 0.1 && sc.Epsilon != 0.2 {
				t.Errorf("symmetric spec lost its ε: %+v", sc)
			}
		case testBurstSpec:
			sawBurst = true
			if sc.Epsilon != 0 {
				t.Errorf("model spec kept ε: %+v", sc)
			}
		default:
			t.Errorf("unexpected noise spec %q", sc.Noise)
		}
	}
	if !sawBurst {
		t.Error("burst model never expanded for alg1")
	}
	for _, sc := range perEngine[EngineCongest] {
		if sc.Noise != "" || sc.Epsilon != 0 || sc.ChannelSeed != 0 {
			t.Errorf("native spec kept channel axes: %+v", sc)
		}
	}
}

// TestGridNoiseChannelSeeds: distinct channel models at one grid point
// get distinct channel seeds (the model spec joins the derivation), and
// graph/alg seeds stay shared — the same topology and algorithm
// randomness under every channel, as cross-channel comparisons need.
func TestGridNoiseChannelSeeds(t *testing.T) {
	scs, err := Grid{
		Families: []string{FamilyRegular},
		Ns:       []int{12},
		Params:   []int{2},
		Epsilons: []float64{0},
		Noises:   []string{"", "asymmetric:0.02:0.2", testBurstSpec},
		Engines:  []string{EngineAlg1},
		Rounds:   1,
		BaseSeed: 9,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 3 {
		t.Fatalf("expanded %d specs, want 3", len(scs))
	}
	seeds := map[uint64]string{}
	for _, sc := range scs {
		if prev, dup := seeds[sc.ChannelSeed]; dup {
			t.Errorf("models %q and %q share channel seed %d", prev, sc.Noise, sc.ChannelSeed)
		}
		seeds[sc.ChannelSeed] = sc.Noise
		if sc.GraphSeed != scs[0].GraphSeed || sc.AlgSeed != scs[0].AlgSeed {
			t.Errorf("model %q changed graph/alg seeds: %+v", sc.Noise, sc)
		}
	}
}

// TestGridNoiseAxisRejects: the axis canonicalizes and rejects what
// cannot be meant.
func TestGridNoiseAxisRejects(t *testing.T) {
	base := func() Grid {
		return Grid{
			Families: []string{FamilyRegular}, Ns: []int{12}, Params: []int{2},
			Engines: []string{EngineAlg1}, Rounds: 1,
		}
	}
	for _, specs := range [][]string{
		{"symmetric:0.1"},                               // symmetric is the ε axis
		{"unknown:1"},                                   // unregistered model
		{"gilbert-elliott:0.9"},                         // bad arity
		{"", "symmetric"},                               // same channel twice
		{testBurstSpec, testBurstSpec},                  // duplicate model
		{"asymmetric:0.02:0.20", "asymmetric:0.02:0.2"}, // duplicate after canonicalization
	} {
		g := base()
		g.Noises = specs
		if _, err := g.Expand(); err == nil {
			t.Errorf("noise axis %v accepted", specs)
		}
	}
	// Non-canonical spellings are fixed up, not rejected.
	g := base()
	g.Noises = []string{"asymmetric:0.020:0.200"}
	scs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if scs[0].Noise != "asymmetric:0.02:0.2" {
		t.Errorf("spec not canonicalized: %q", scs[0].Noise)
	}
}

// TestValidateNoise extends the spec validation cases to the noise
// field's contract.
func TestValidateNoise(t *testing.T) {
	good := baseSpec()
	good.Epsilon = 0
	good.Noise = testBurstSpec
	if err := good.Validate(); err != nil {
		t.Fatalf("valid noise spec rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Scenario){
		"unparseable":   func(sc *Scenario) { sc.Noise = "nope:1" },
		"symmetric":     func(sc *Scenario) { sc.Noise = "symmetric:0.1" },
		"non-canonical": func(sc *Scenario) { sc.Noise = "gilbert-elliott:0.020:0.3:0.05:0.25" },
		"eps-set":       func(sc *Scenario) { sc.Epsilon = 0.1 },
		"native-engine": func(sc *Scenario) { sc.Engine = EngineCongest },
	} {
		sc := good
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: invalid noise spec %+v passed validation", name, sc)
		}
	}
}

// TestExecuteNoiseModels runs every model through both beeping engines
// end-to-end: budgets hold, MIS outputs verify, and records are
// deterministic under worker parallelism (the per-model serial ≡
// parallel bit-identity requirement at the record level).
func TestExecuteNoiseModels(t *testing.T) {
	specs := []string{
		"asymmetric:0.02:0.15",
		"erasure:0.1:0",
		"erasure:0.1:1",
		testBurstSpec,
	}
	for _, eng := range []string{EngineAlg1, EngineTDMA} {
		for _, spec := range specs {
			sc := Scenario{
				Family: FamilyRegular, N: 14, Param: 3,
				Noise:  spec,
				Engine: eng, Workload: WorkloadMIS,
				GraphSeed: 3, ChannelSeed: 4, AlgSeed: 5,
			}
			serial, err := Execute(sc, ExecOptions{})
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, spec, err)
			}
			if !serial.Counters.AllDone {
				t.Errorf("%s/%s: did not finish in budget", eng, spec)
			}
			if serial.Counters.OutputOK == nil || !*serial.Counters.OutputOK {
				t.Errorf("%s/%s: MIS output did not verify", eng, spec)
			}
			parallel, err := Execute(sc, ExecOptions{Workers: 4})
			if err != nil {
				t.Fatalf("%s/%s (workers=4): %v", eng, spec, err)
			}
			serial.WallNanos, parallel.WallNanos = 0, 0
			serial.BuildNanos, parallel.BuildNanos = 0, 0
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s/%s: serial and parallel records differ:\n %+v\n %+v", eng, spec, serial, parallel)
			}
		}
	}
}

// TestNoiseChannelChangesResults: burst noise with a given stationary
// rate is not the symmetric channel with that rate. A harsh
// Gilbert–Elliott profile (deep 90%-flip fades, ~20% of the time)
// defeats the TDMA baseline's repetition majorities — which calibrate
// against the i.i.d. marginal — where the equal-rate symmetric channel
// does not. Both runs are deterministic, so the counters comparison is
// exact, not statistical.
func TestNoiseChannelChangesResults(t *testing.T) {
	const harshBurst = "gilbert-elliott:0:0.9:0.02:0.08" // π_B = 0.2, rate = 0.18
	m, err := noise.Parse(harshBurst)
	if err != nil {
		t.Fatal(err)
	}
	rate, _ := m.FlipRates()
	sym := Scenario{
		Family: FamilyRegular, N: 14, Param: 3, Epsilon: rate,
		Engine: EngineTDMA, Workload: WorkloadGossip, Rounds: 3,
		GraphSeed: 3, ChannelSeed: 4, AlgSeed: 5,
	}
	burst := sym
	burst.Epsilon, burst.Noise = 0, harshBurst
	a, err := Execute(sym, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(burst, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash == b.Hash {
		t.Fatal("symmetric and burst specs share a hash")
	}
	if reflect.DeepEqual(a.Counters, b.Counters) {
		t.Errorf("burst channel produced counters identical to the equal-rate symmetric channel — model likely not wired through:\n %+v", a.Counters)
	}
	if b.Counters.MessageErrors <= a.Counters.MessageErrors {
		t.Errorf("burst fades should defeat i.i.d.-calibrated majorities: sym %d message errors, burst %d",
			a.Counters.MessageErrors, b.Counters.MessageErrors)
	}
}

// TestNoiseStoreRoundTrip: noise-model records survive the JSONL store
// with hash verification intact.
func TestNoiseStoreRoundTrip(t *testing.T) {
	sc := Scenario{
		Family: FamilyRegular, N: 12, Param: 2,
		Noise:  "erasure:0.1:1",
		Engine: EngineTDMA, Workload: WorkloadGossip, Rounds: 1,
		GraphSeed: 1, ChannelSeed: 2, AlgSeed: 3,
	}
	rec, err := Execute(sc, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Spec.Noise != sc.Noise {
		t.Fatalf("record lost its noise spec: %+v", rec.Spec)
	}
	store := NewMemStore()
	if err := store.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(sc.Hash())
	if !ok {
		t.Fatal("noise record not retrievable by spec hash")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("store round-trip mismatch:\n %+v\n %+v", got, rec)
	}
}
