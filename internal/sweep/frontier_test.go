package sweep

import (
	"errors"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/sim"
)

// advLeader is the frontier test scenario: leader election (a workload
// with a real output-validity notion — gossip's is unverified) on the
// TDMA baseline under a solo adversary with the given budget ceiling.
func advLeader(budget string) Scenario {
	return Scenario{
		Family: FamilyRegular, N: 8, Param: 2,
		Noise:  "adversary:solo:" + budget,
		Engine: EngineTDMA, Workload: WorkloadLeader,
		GraphSeed: 3, ChannelSeed: 4, AlgSeed: 5,
	}
}

// TestExecuteBrokenProtocol: an overwhelming adversary terminates the
// run — no hang, no panic, no scenario error — and records a typed
// broken-protocol failure attributed to the channel.
func TestExecuteBrokenProtocol(t *testing.T) {
	rec, err := Execute(advLeader("1048576"), ExecOptions{})
	if err != nil {
		t.Fatalf("broken protocol surfaced as a scenario error: %v", err)
	}
	if !rec.Broken() {
		t.Fatalf("overwhelming adversary did not break leader election: %+v", rec.Counters)
	}
	if rec.Counters.OutputOK == nil || *rec.Counters.OutputOK {
		t.Errorf("output_ok = %v, want false", rec.Counters.OutputOK)
	}
	var pbe *sim.ProtocolBrokenError
	if !errors.As(rec.BrokenError(), &pbe) {
		t.Fatalf("BrokenError() = %v, want *sim.ProtocolBrokenError", rec.BrokenError())
	}
	if pbe.Workload != WorkloadLeader || pbe.Engine != EngineTDMA || pbe.Noise != rec.Spec.Noise {
		t.Errorf("broken-protocol attribution wrong: %+v", pbe)
	}

	// A zero-budget adversary is a noiseless channel: healthy record.
	healthy, err := Execute(advLeader("0"), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Broken() {
		t.Fatalf("zero-budget adversary recorded failure %q", healthy.Failure)
	}
	if healthy.BrokenError() != nil {
		t.Errorf("healthy record has BrokenError %v", healthy.BrokenError())
	}
}

// TestMaxRoundsFactorGuard: the round-budget cap turns a would-be
// unbounded (or merely unfinished) run into a typed budget-exhausted
// failure, and the default factor 0 changes nothing.
func TestMaxRoundsFactorGuard(t *testing.T) {
	sc := Scenario{
		Family: FamilyRegular, N: 8, Param: 2,
		Engine: EngineTDMA, Workload: WorkloadLeader,
		GraphSeed: 3, ChannelSeed: 4, AlgSeed: 5,
	}
	full, err := Execute(sc, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Broken() || !full.Counters.AllDone {
		t.Fatalf("uncapped run unhealthy: failure=%q alldone=%v", full.Failure, full.Counters.AllDone)
	}
	// Factor 1.0 never binds: byte-identical to the default.
	same, err := Execute(sc, ExecOptions{MaxRoundsFactor: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	full.WallNanos, same.WallNanos = 0, 0
	full.BuildNanos, same.BuildNanos = 0, 0
	if !reflect.DeepEqual(full, same) {
		t.Errorf("MaxRoundsFactor=1 changed the record:\n %+v\n %+v", full, same)
	}
	// A binding cap (leader floods for n rounds; a tenth of its budget
	// cannot finish) records the typed budget-exhausted failure.
	capped, err := Execute(sc, ExecOptions{MaxRoundsFactor: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Broken() {
		t.Fatal("capped run recorded no failure")
	}
	if capped.Counters.AllDone {
		t.Error("capped run claims all nodes done")
	}
	var pbe *sim.ProtocolBrokenError
	if !errors.As(capped.BrokenError(), &pbe) {
		t.Fatalf("BrokenError() = %v, want *sim.ProtocolBrokenError", capped.BrokenError())
	}
}

// TestFrontierSearch: the frontier search brackets and bisects to a
// well-defined minimal breaking budget, byte-identically across runs,
// and a warm store answers a repeat search with zero re-simulation.
func TestFrontierSearch(t *testing.T) {
	scs := []Scenario{advLeader("4096")}
	store := NewMemStore()
	first, err := FrontierSearch(scs, store, FrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("got %d results", len(first))
	}
	r := first[0]
	if r.Strategy != "solo" || r.MaxBudget != 4096 {
		t.Fatalf("result header wrong: %+v", r)
	}
	if r.Unbroken() {
		t.Fatal("ceiling budget 4096 did not break TDMA leader election")
	}
	if r.Breaking < 1 || r.Breaking > 4096 {
		t.Fatalf("breaking budget %d outside (0, 4096]", r.Breaking)
	}
	if r.Ran != r.Probes || r.Cached != 0 {
		t.Errorf("cold search: probes=%d ran=%d cached=%d", r.Probes, r.Ran, r.Cached)
	}
	// The boundary is real: Breaking breaks, Breaking-1 does not.
	at, ok := store.Get(probeSpec(scs[0], r.Breaking).Hash())
	if !ok || !at.Broken() {
		t.Errorf("budget %d record missing or unbroken", r.Breaking)
	}
	below, ok := store.Get(probeSpec(scs[0], r.Breaking-1).Hash())
	if !ok || below.Broken() {
		t.Errorf("budget %d record missing or broken", r.Breaking-1)
	}

	// Determinism: a fresh store reproduces the identical result.
	second, err := FrontierSearch(scs, NewMemStore(), FrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("frontier not deterministic:\n %+v\n %+v", first, second)
	}

	// Resume: the warm store answers every probe without simulation.
	warm, err := FrontierSearch(scs, store, FrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := warm[0]
	if w.Ran != 0 || w.Cached != w.Probes {
		t.Errorf("warm search re-simulated: probes=%d ran=%d cached=%d", w.Probes, w.Ran, w.Cached)
	}
	if w.Breaking != r.Breaking || w.Probes != r.Probes {
		t.Errorf("warm search diverged: %+v vs %+v", w, r)
	}

	// An unbreakable ceiling reports -1 after a single probe.
	un, err := FrontierSearch([]Scenario{advLeader("0")}, NewMemStore(), FrontierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !un[0].Unbroken() || un[0].Probes != 1 {
		t.Errorf("zero ceiling: %+v, want unbroken after 1 probe", un[0])
	}

	// Non-adversary specs have no budget axis to search.
	bad := advLeader("8")
	bad.Noise = "symmetric:0.1"
	if _, err := FrontierSearch([]Scenario{bad}, NewMemStore(), FrontierOptions{}); err == nil {
		t.Error("frontier accepted a non-adversary noise spec")
	}
}

// probeSpec mirrors frontierOne's probe construction for assertions.
func probeSpec(sc Scenario, budget int) Scenario {
	psc := sc
	psc.Noise = "adversary:solo:" + strconv.Itoa(budget)
	return psc
}
