package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenStorePath copies testdata/pr4_records.jsonl — real records
// generated at the PR 4 tree — into a temp store file.
func goldenStorePath(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "pr4_records.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompactGoldenByteIdentical is the acceptance anchor: a store
// compacted+indexed from the PR 4 golden records serves records
// byte-identical to the uncompacted original — via both engines, by
// snapshot and by point lookup — and the already-clean file compacts to
// identical bytes.
func TestCompactGoldenByteIdentical(t *testing.T) {
	path := goldenStorePath(t)
	orig, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := orig.Records()
	orig.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cs, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DroppedInvalid != 0 || cs.DroppedDuplicate != 0 || cs.Records != len(want) {
		t.Fatalf("clean store compaction dropped lines: %+v", cs)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("compacting an already-clean store changed its bytes")
	}

	// The compacted+indexed store serves the same records through both
	// engines.
	for name, open := range map[string]func(string) (StoreEngine, error){
		"store":   func(p string) (StoreEngine, error) { return Open(p) },
		"indexed": func(p string) (StoreEngine, error) { return OpenIndexed(p) },
	} {
		t.Run(name, func(t *testing.T) {
			s, err := open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if got := s.Records(); !reflect.DeepEqual(got, want) {
				t.Fatalf("compacted store snapshot differs from original (%d vs %d records)", len(got), len(want))
			}
			for _, rec := range want {
				got, ok := s.Get(rec.Hash)
				if !ok {
					t.Fatalf("record %s missing after compaction", rec.Hash)
				}
				if !reflect.DeepEqual(got, rec) {
					t.Fatalf("record %s differs after compaction", rec.Hash)
				}
			}
		})
	}
}

// TestCompactDropsTornDuplicateInvalid: compaction's whole point — torn
// tails, hash-tampered lines, and superseded duplicates leave the file;
// surviving records don't, and the last duplicate wins in first-seen
// order, matching Store.Open's in-memory semantics.
func TestCompactDropsTornDuplicateInvalid(t *testing.T) {
	path := goldenStorePath(t)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Records()
	s.Close()
	if len(want) < 2 {
		t.Fatal("golden store too small for the test")
	}

	// Append: a re-Put of record 0 (duplicate; this newer copy must
	// win), a tampered line, and a torn tail.
	dup := want[0]
	dup.WallNanos = 12345 // distinguishable newer copy
	dupLine, err := EncodeLine(dup)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(dupLine)
	f.WriteString(`{"hash":"0123456789abcdef0123456789abcdef","spec":{"family":"regular"}}` + "\n")
	f.WriteString(`{"hash":"feedface","spec":{"fam`) // torn tail
	f.Close()

	cs, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if cs.DroppedInvalid != 2 || cs.DroppedDuplicate != 1 {
		t.Fatalf("drop accounting: %+v", cs)
	}
	if cs.Records != len(want) || cs.Reclaimed <= 0 {
		t.Fatalf("compaction stats: %+v", cs)
	}

	after, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	got := after.Records()
	want[0] = dup // the newer duplicate, in record 0's original position
	if !reflect.DeepEqual(got, want) {
		t.Fatal("compacted records differ from expected survivor set")
	}
}

// TestIndexedStoreRegeneratesAfterIndexDelete: the sidecar is pure
// acceleration — deleting it costs one rescan, never a record.
func TestIndexedStoreRegeneratesAfterIndexDelete(t *testing.T) {
	path := goldenStorePath(t)
	if _, err := Compact(path); err != nil {
		t.Fatal(err)
	}
	s, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Records()
	s.Close()

	if err := os.Remove(IndexPath(path)); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Records(); !reflect.DeepEqual(got, want) {
		t.Fatal("records differ after index regeneration")
	}
	if _, err := os.Stat(IndexPath(path)); err != nil {
		t.Fatalf("rebuild did not reinstall the sidecar: %v", err)
	}
}

// TestIndexedStoreDetectsStaleIndex: appends made by a plain Store (no
// sidecar update) make the index stale; the next OpenIndexed must
// detect the size mismatch and rescan rather than serve a view missing
// the new records.
func TestIndexedStoreDetectsStaleIndex(t *testing.T) {
	path := goldenStorePath(t)
	if _, err := Compact(path); err != nil {
		t.Fatal(err)
	}

	plain, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := execOrFatal(t, baseSpec())
	if err := plain.Put(rec); err != nil {
		t.Fatal(err)
	}
	want := plain.Records()
	plain.Close()

	s, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Records(); !reflect.DeepEqual(got, want) {
		t.Fatalf("stale index served: %d records, want %d", len(got), len(want))
	}
	if _, ok := s.Get(rec.Hash); !ok {
		t.Fatal("record appended past the index is invisible")
	}
}

// TestIndexedStorePutPersists: appends through the indexed engine are
// durable, visible immediately, and covered by the sidecar after Close
// (so the next open is index-served, no rescan).
func TestIndexedStorePutPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := execOrFatal(t, baseSpec())
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(rec.Hash); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("record invisible right after Put")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Dropped() != 0 {
		t.Fatalf("index-served open reported %d dropped (it decodes nothing)", s2.Dropped())
	}
	if got, ok := s2.Get(rec.Hash); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("record lost across close/reopen")
	}
}

// TestStoreOversizedLineLoads: the historic 16 MiB scanner cap is gone.
// A record line past it loads fine and is counted by Oversized —
// distinguishable from corruption (Dropped).
func TestStoreOversizedLineLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	rec := execOrFatal(t, baseSpec())
	line, err := EncodeLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Pad the valid line past the old cap with an ignored JSON field;
	// the spec — and so the hash check — is untouched.
	pad := `,"pad":"` + strings.Repeat("x", oversizedLine) + `"}`
	big := append(bytes.TrimSuffix(bytes.TrimSuffix(line, []byte("\n")), []byte("}")), []byte(pad+"\n")...)
	if err := os.WriteFile(path, big, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 1 || s.Dropped() != 0 || s.Oversized() != 1 {
		t.Fatalf("oversized line: len=%d dropped=%d oversized=%d, want 1/0/1", s.Len(), s.Dropped(), s.Oversized())
	}
	if got, ok := s.Get(rec.Hash); !ok || !reflect.DeepEqual(got, rec) {
		t.Fatal("oversized record did not round-trip")
	}
}
