package sweep

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestTelemetryRecordsIdentical is the tentpole determinism guarantee:
// running the pinned PR 4 grid through the batch scheduler with a live
// metrics registry produces records byte-identical to the golden file
// written with no telemetry at all. Instrumentation observes — it never
// consumes randomness or branches on channel data.
func TestTelemetryRecordsIdentical(t *testing.T) {
	golden := readGolden(t)
	scs, err := pr4Grid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	recs, st, err := Run(scs, NewMemStore(), Options{Jobs: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ran != len(scs) || st.Failed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	byHash := make(map[string][]byte, len(recs))
	for _, rec := range recs {
		byHash[rec.Hash] = encodeZeroed(t, rec)
	}
	for i, want := range golden {
		rec, err := DecodeRecord(want)
		if err != nil {
			t.Fatalf("golden line %d: %v", i, err)
		}
		got, ok := byHash[rec.Hash]
		if !ok {
			t.Fatalf("golden record %s not produced with telemetry on", rec.Hash)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record %s differs from PR 4 golden with telemetry on:\n got %s\nwant %s", rec.Hash, got, want)
		}
	}

	// The registry must actually have observed the run: engine-phase
	// counters, exec timers, and batch counters are all live.
	want := map[string]bool{
		"core.rounds.sim":       false,
		"tdma.rounds.sim":       false,
		"sweep.exec.run_nanos":  false,
		"sweep.store.misses":    false,
		"sim.cache.graph_hits":  false,
		"noise.flips.symmetric": false,
	}
	for _, m := range reg.Snapshot() {
		if _, ok := want[m.Name]; ok && (m.Value > 0 || m.Count > 0) {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %q not observed during the telemetry-on run", name)
		}
	}
}

// TestTelemetryAdversaryRecordsIdentical extends the PR 7 invariant to
// budget accounting: an adversarial scenario executes byte-identically
// with the noise.adversary.spent counter live or absent, on both the
// native (alg1) and baseline (tdma) paths, and the counter observed
// real spending — the Counting wrap counts, it never gates.
func TestTelemetryAdversaryRecordsIdentical(t *testing.T) {
	for _, eng := range []string{EngineAlg1, EngineTDMA} {
		sc := advLeader("64")
		sc.Engine = eng
		off, err := Execute(sc, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		on, err := Execute(sc, ExecOptions{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := encodeZeroed(t, on), encodeZeroed(t, off); !bytes.Equal(got, want) {
			t.Errorf("%s: telemetry-on record differs:\n got %s\nwant %s", eng, got, want)
		}
		if spent := reg.Counter("noise.adversary.spent").Value(); spent <= 0 {
			t.Errorf("%s: noise.adversary.spent = %d, want > 0", eng, spent)
		}
	}
}

// TestBatchDoneMonotonic: progress events arrive serialized with Done
// counting 1..Total in callback order, under concurrency.
func TestBatchDoneMonotonic(t *testing.T) {
	scs, err := tinyGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var dones []int
	_, _, err = Run(scs, NewMemStore(), Options{
		Jobs: 4,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			dones = append(dones, ev.Done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(scs) {
		t.Fatalf("got %d events for %d scenarios", len(dones), len(scs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("event %d has Done=%d, want %d (monotonic completion count)", i, d, i+1)
		}
	}
}

// TestBatchDuplicateFailureEvents pins the dup/error interaction: a
// duplicated failing spec fails every slot, and no slot is reported
// Cached — an in-batch duplicate of a failure did not save engine work
// in any meaningful sense and must not masquerade as a cache hit.
func TestBatchDuplicateFailureEvents(t *testing.T) {
	bad := baseSpec()
	bad.Family = "no-such-family"
	good := baseSpec()
	var mu sync.Mutex
	events := make(map[int]Event)
	recs, st, err := Run([]Scenario{bad, good, bad}, NewMemStore(), Options{
		Jobs: 1,
		Progress: func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			events[ev.Index] = ev
		},
	})
	if err == nil {
		t.Fatal("expected an error for the invalid scenario")
	}
	if st.Failed != 2 || st.Ran != 1 || st.Cached != 0 {
		t.Fatalf("stats: %+v", st)
	}
	for _, i := range []int{0, 2} {
		ev, ok := events[i]
		if !ok {
			t.Fatalf("no event for failing slot %d", i)
		}
		if ev.Err == nil {
			t.Errorf("slot %d event has no error", i)
		}
		if ev.Cached {
			t.Errorf("slot %d (duplicate failure) reported Cached", i)
		}
		if recs[i].Hash != "" {
			t.Errorf("failing slot %d has a record", i)
		}
	}
	if ev := events[1]; ev.Err != nil || ev.Cached {
		t.Errorf("good scenario event: %+v", ev)
	}
	// A duplicated *successful* spec still reports its copies cached.
	var dupEv []Event
	_, st2, err := Run([]Scenario{good, good}, NewMemStore(), Options{
		Jobs:     1,
		Progress: func(ev Event) { dupEv = append(dupEv, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ran != 1 || st2.Cached != 1 {
		t.Fatalf("dup-success stats: %+v", st2)
	}
	cachedCount := 0
	for _, ev := range dupEv {
		if ev.Cached {
			cachedCount++
		}
	}
	if cachedCount != 1 {
		t.Fatalf("want exactly one Cached event for the duplicate slot, got %d", cachedCount)
	}
}

// TestBatchMetricsCounts: the batch scheduler's own counters reflect
// dedup, store traffic, and group shapes.
func TestBatchMetricsCounts(t *testing.T) {
	sc := baseSpec()
	reg := obs.NewRegistry()
	_, st, err := Run([]Scenario{sc, sc, sc}, NewMemStore(), Options{Jobs: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Unique != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if got := reg.Counter("sweep.batch.dups").Value(); got != 2 {
		t.Errorf("sweep.batch.dups = %d, want 2", got)
	}
	if got := reg.Counter("sweep.store.misses").Value(); got != 1 {
		t.Errorf("sweep.store.misses = %d, want 1", got)
	}
	if got := reg.Counter("sweep.store.hits").Value(); got != 0 {
		t.Errorf("sweep.store.hits = %d, want 0", got)
	}
	if got := reg.Counter("sweep.batch.groups").Value(); got != 1 {
		t.Errorf("sweep.batch.groups = %d, want 1", got)
	}

	// Second run against a warm store: the unique spec is a store hit.
	store := NewMemStore()
	if _, _, err := Run([]Scenario{sc}, store, Options{Jobs: 1}); err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	if _, _, err := Run([]Scenario{sc}, store, Options{Jobs: 1, Metrics: reg2}); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("sweep.store.hits").Value(); got != 1 {
		t.Errorf("warm-store sweep.store.hits = %d, want 1", got)
	}
	if got := reg2.Counter("sweep.store.misses").Value(); got != 0 {
		t.Errorf("warm-store sweep.store.misses = %d, want 0", got)
	}
}

// TestSummaryRendersStatsAndCache: the CLI end-of-run line carries both
// the batch stats and the artifact-cache counters.
func TestSummaryRendersStatsAndCache(t *testing.T) {
	st := Stats{Total: 8, Unique: 7, Cached: 3, Ran: 4, Failed: 1, Wall: 1500 * time.Millisecond}
	cs := sim.CacheStats{GraphHits: 5, GraphMisses: 2, CodeHits: 1, CodeMisses: 1}
	got := Summary(st, cs)
	for _, want := range []string{"total=8", "cached=3", "run=4", "failed=1", "graphs 5/2", "codes 1/1"} {
		if !strings.Contains(got, want) {
			t.Errorf("Summary %q missing %q", got, want)
		}
	}
}
