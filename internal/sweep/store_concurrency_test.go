package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// specN returns the base spec varied by seed, giving distinct hashes.
func specN(i int) Scenario {
	sc := baseSpec()
	sc.AlgSeed = uint64(1000 + i)
	return sc
}

// engineConcurrency exercises parallel Get/Put/Records against one
// engine under -race: writers append distinct records while readers
// look up already-landed hashes and snapshot the full set.
func engineConcurrency(t *testing.T, s StoreEngine) {
	t.Helper()
	const writers, perWriter, readers = 4, 8, 4

	// Pre-execute the records serially; the concurrency under test is
	// the store's, not the engine's.
	recs := make([]Record, writers*perWriter)
	for i := range recs {
		recs[i] = execOrFatal(t, specN(i))
	}
	seed := recs[0]
	if err := s.Put(seed); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Put(recs[w*perWriter+i]); err != nil {
					t.Errorf("put: %v", err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				if got, ok := s.Get(seed.Hash); !ok || got.Hash != seed.Hash {
					t.Error("seed record unreadable during writes")
				}
				for _, rec := range s.Records() {
					if rec.Hash == "" {
						t.Error("snapshot contains zero record")
					}
				}
				_ = s.Len()
			}
		}()
	}
	wg.Wait()

	for _, rec := range recs {
		got, ok := s.Get(rec.Hash)
		if !ok {
			t.Fatalf("record %s lost", rec.Hash)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %s corrupted", rec.Hash)
		}
	}
	if s.Len() != len(recs) {
		t.Fatalf("Len=%d, want %d", s.Len(), len(recs))
	}
}

func TestStoreConcurrency(t *testing.T) {
	for name, open := range map[string]func(string) (StoreEngine, error){
		"store":   func(p string) (StoreEngine, error) { return Open(p) },
		"indexed": func(p string) (StoreEngine, error) { return OpenIndexed(p) },
	} {
		t.Run(name, func(t *testing.T) {
			s, err := open(filepath.Join(t.TempDir(), "store.jsonl"))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			engineConcurrency(t, s)
		})
	}
}

// TestReaderDuringCompaction: a store opened before compaction keeps a
// consistent view (its fd pins the old inode) while Compact atomically
// replaces the file, and readers racing the rename see either complete
// version — never a partial write.
func TestReaderDuringCompaction(t *testing.T) {
	path := goldenStorePath(t)
	reader, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	want := reader.Records()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := reader.Records(); !reflect.DeepEqual(got, want) {
					t.Error("reader view changed during compaction")
					return
				}
				for _, rec := range want {
					if got, ok := reader.Get(rec.Hash); !ok || !reflect.DeepEqual(got, rec) {
						t.Error("point read failed during compaction")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		if _, err := Compact(path); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// A fresh open of the compacted file sees the same records.
	fresh, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if got := fresh.Records(); !reflect.DeepEqual(got, want) {
		t.Fatal("compacted file differs from pre-compaction view")
	}
}

// TestCompactPreservesDirtyAppends: appends landed by a concurrent
// writer before Compact's scan are carried into the rewrite — Compact
// reads the file, not any in-memory view.
func TestCompactPreservesDirtyAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 4; i++ {
		rec := execOrFatal(t, specN(i))
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	s.Close()

	cs, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Records != len(want) {
		t.Fatalf("compaction kept %d records, want %d: %+v", cs.Records, len(want), cs)
	}
	after, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer after.Close()
	if got := after.Records(); !reflect.DeepEqual(got, want) {
		t.Fatal("records differ after compacting appended store")
	}
}

// TestCompactMissingFile: compacting a path that does not exist is an
// error, not a silent empty store.
func TestCompactMissingFile(t *testing.T) {
	if _, err := Compact(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("Compact on a missing file succeeded")
	}
}

// TestIndexedStoreRecordsFirstSeenOrder pins the order contract shared
// with Store: Records returns first-seen order regardless of lookup
// structure.
func TestIndexedStoreRecordsFirstSeenOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	var hashes []string
	for i := 0; i < 6; i++ {
		rec := execOrFatal(t, specN(i))
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, rec.Hash)
	}
	s.Close()

	s2, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Records()
	if len(got) != len(hashes) {
		t.Fatalf("got %d records, want %d", len(got), len(hashes))
	}
	for i, rec := range got {
		if rec.Hash != hashes[i] {
			t.Fatalf("record %d out of order: got %s, want %s", i, rec.Hash, hashes[i])
		}
	}
	if err := os.Remove(IndexPath(path)); err != nil {
		t.Fatal(err)
	}
	s3, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for i, rec := range s3.Records() {
		if rec.Hash != hashes[i] {
			t.Fatalf("rescan record %d out of order: got %s, want %s", i, rec.Hash, hashes[i])
		}
	}
}
