package sweep

import (
	"fmt"

	"repro/internal/noise"
)

// FrontierOptions configures a resilience-frontier search.
type FrontierOptions struct {
	// Exec configures every probe's execution. The store is the resume
	// mechanism: each probe is an ordinary content-hashed scenario, so a
	// warm store answers repeated probes with zero re-simulation.
	Exec ExecOptions
	// Progress, when non-nil, receives one call per probe as it
	// resolves (sequential — no locking needed).
	Progress func(FrontierProbe)
}

// FrontierProbe reports one budget probe of a frontier search.
type FrontierProbe struct {
	// Scenario indexes the input slice; Budget is the probed budget.
	Scenario, Budget int
	// Cached reports a store hit; Broken the probe's outcome.
	Cached, Broken bool
}

// FrontierResult is one scenario's resolved resilience frontier: the
// minimal adversary budget that breaks the protocol.
type FrontierResult struct {
	// Scenario is the input scenario (its Noise budget is the search
	// ceiling); Strategy the adversary strategy searched over.
	Scenario Scenario
	Strategy string
	// MaxBudget is the ceiling (the input spec's budget). Breaking is
	// the minimal budget in [0, MaxBudget] whose scenario records a
	// broken protocol, or -1 when even MaxBudget does not break it
	// (the protocol's frontier lies beyond the ceiling).
	MaxBudget int
	Breaking  int
	// Probes counts budget evaluations; Cached of them were served from
	// the store, Ran were executed.
	Probes, Cached, Ran int
}

// Unbroken reports that no budget up to the ceiling broke the protocol.
func (r FrontierResult) Unbroken() bool { return r.Breaking < 0 }

// FrontierSearch finds, for each scenario, the minimal adversary budget
// that breaks its protocol. Each scenario's Noise must be an adversary
// spec; its budget is the search ceiling. Probes are ordinary scenarios
// — identical spec except the budget — executed through the store, so
// the search is deterministic (pure bisection over a greedy adversary,
// DESIGN.md §2.16), byte-identical across runs, and resumable: a warm
// store re-answers every probe without simulation.
//
// "Broken" is Record.Broken(): the hostile-channel failure attribution
// of Execute (failed output verification, unfinished nodes, or a
// tripped round-budget guard). Scenarios must therefore use a workload
// with an output-validity notion (not gossip, which is unverified).
func FrontierSearch(scenarios []Scenario, store StoreEngine, opt FrontierOptions) ([]FrontierResult, error) {
	results := make([]FrontierResult, 0, len(scenarios))
	for i, sc := range scenarios {
		res, err := frontierOne(i, sc, store, opt)
		if err != nil {
			return results, fmt.Errorf("sweep: frontier scenario %d (%s): %w", i, sc.Hash(), err)
		}
		results = append(results, res)
	}
	return results, nil
}

func frontierOne(idx int, sc Scenario, store StoreEngine, opt FrontierOptions) (FrontierResult, error) {
	if err := sc.Validate(); err != nil {
		return FrontierResult{}, err
	}
	m, err := noise.Parse(sc.Noise)
	if err != nil {
		return FrontierResult{}, err
	}
	adv, ok := m.(noise.Adversary)
	if !ok {
		return FrontierResult{}, fmt.Errorf("noise %q is not an adversary spec (the budget is the search axis)", sc.Noise)
	}
	res := FrontierResult{Scenario: sc, Strategy: adv.Strategy, MaxBudget: adv.Budget, Breaking: -1}

	probe := func(budget int) (bool, error) {
		a := adv
		a.Budget = budget
		psc := sc
		psc.Noise = a.Spec()
		hash := psc.Hash()
		res.Probes++
		rec, hit := store.Get(hash)
		if !hit {
			rec, err = Execute(psc, opt.Exec)
			if err == nil {
				err = store.Put(rec)
			}
			if err != nil {
				return false, fmt.Errorf("budget %d: %w", budget, err)
			}
			res.Ran++
		} else {
			res.Cached++
		}
		if opt.Progress != nil {
			opt.Progress(FrontierProbe{Scenario: idx, Budget: budget, Cached: hit, Broken: rec.Broken()})
		}
		return rec.Broken(), nil
	}

	// Bracket first: an unbroken ceiling means the frontier lies beyond
	// it (Breaking = -1, one probe); a broken floor means even budget 0
	// fails — with a zero-budget adversary the channel is noiseless, so
	// this only trips via the round-budget guard.
	broken, err := probe(res.MaxBudget)
	if err != nil {
		return res, err
	}
	if !broken {
		return res, nil
	}
	res.Breaking = res.MaxBudget
	if res.MaxBudget == 0 {
		return res, nil
	}
	broken, err = probe(0)
	if err != nil {
		return res, err
	}
	if broken {
		res.Breaking = 0
		return res, nil
	}
	// Invariant: lo never breaks, hi always breaks.
	lo, hi := 0, res.MaxBudget
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		broken, err := probe(mid)
		if err != nil {
			return res, err
		}
		if broken {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.Breaking = hi
	return res, nil
}
