package sweep

import (
	"math"
	"sort"
)

// Key identifies an aggregation cell: every Scenario axis except the
// seeds and the replicate index, so records that differ only in
// replicate land in the same cell.
type Key struct {
	Family   string  `json:"family"`
	N        int     `json:"n,omitempty"`
	Param    int     `json:"param,omitempty"`
	Epsilon  float64 `json:"epsilon"`
	Noise    string  `json:"noise,omitempty"`
	Engine   string  `json:"engine"`
	Workload string  `json:"workload"`
	Rounds   int     `json:"rounds,omitempty"`
	MsgBits  int     `json:"msg_bits,omitempty"`
}

// KeyOf projects a scenario onto its aggregation cell.
func KeyOf(sc Scenario) Key {
	return Key{
		Family:   sc.Family,
		N:        sc.N,
		Param:    sc.Param,
		Epsilon:  sc.Epsilon,
		Noise:    sc.Noise,
		Engine:   sc.Engine,
		Workload: sc.Workload,
		Rounds:   sc.Rounds,
		MsgBits:  sc.MsgBits,
	}
}

// Dist summarizes one metric's distribution across a cell's replicates.
type Dist struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
}

// DistOf computes the summary of xs (Dist{} for empty input).
func DistOf(xs []float64) Dist {
	if len(xs) == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Dist{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Percentile(sorted, 0.5),
		P90:   Percentile(sorted, 0.9),
	}
}

// Percentile returns the p-quantile (p ∈ [0,1]) of an ascending-sorted
// slice, with linear interpolation between adjacent order statistics.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Group is one aggregation cell: the records sharing a Key and the
// replicate distributions of the standard metrics.
type Group struct {
	Key     Key      `json:"key"`
	Records []Record `json:"-"`
	// BeepRounds and PerSimRound are the Theorem 11 axes; Beeps is the
	// A4 energy axis; MsgErr/MemErr are the error-rate axes; WallMS and
	// BuildMS are throughput bookkeeping (the non-deterministic
	// metrics — BuildMS collapses toward zero when the batch artifact
	// cache serves a cell's graphs).
	BeepRounds  Dist `json:"beep_rounds"`
	PerSimRound Dist `json:"per_sim_round"`
	Beeps       Dist `json:"beeps"`
	MsgErr      Dist `json:"msg_err"`
	MemErr      Dist `json:"mem_err"`
	WallMS      Dist `json:"wall_ms"`
	BuildMS     Dist `json:"build_ms"`
}

// Aggregate groups records by Key and summarizes each cell, ordered by
// (Workload, Family, Engine, N, Param, Epsilon, Rounds, MsgBits) — a
// deterministic presentation order independent of input order.
func Aggregate(recs []Record) []Group {
	cells := make(map[Key][]Record)
	for _, r := range recs {
		k := KeyOf(r.Spec)
		cells[k] = append(cells[k], r)
	}
	keys := make([]Key, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.Workload != b.Workload:
			return a.Workload < b.Workload
		case a.Family != b.Family:
			return a.Family < b.Family
		case a.Engine != b.Engine:
			return a.Engine < b.Engine
		case a.N != b.N:
			return a.N < b.N
		case a.Param != b.Param:
			return a.Param < b.Param
		case a.Epsilon != b.Epsilon:
			return a.Epsilon < b.Epsilon
		case a.Noise != b.Noise:
			return a.Noise < b.Noise
		case a.Rounds != b.Rounds:
			return a.Rounds < b.Rounds
		}
		return a.MsgBits < b.MsgBits
	})

	groups := make([]Group, 0, len(keys))
	for _, k := range keys {
		rs := cells[k]
		// Replicate order inside a cell, for deterministic Records slices.
		sort.Slice(rs, func(i, j int) bool { return rs[i].Spec.Replicate < rs[j].Spec.Replicate })
		g := Group{Key: k, Records: rs}
		var beepRounds, perRound, beeps, msgErr, memErr, wall, build []float64
		for _, r := range rs {
			beepRounds = append(beepRounds, float64(r.Counters.BeepRounds))
			perRound = append(perRound, float64(r.BeepsPerSimRound()))
			beeps = append(beeps, float64(r.Counters.Beeps))
			msgErr = append(msgErr, r.MsgErrRate())
			memErr = append(memErr, r.MemErrRate())
			wall = append(wall, float64(r.WallNanos)/1e6)
			build = append(build, float64(r.BuildNanos)/1e6)
		}
		g.BeepRounds = DistOf(beepRounds)
		g.PerSimRound = DistOf(perRound)
		g.Beeps = DistOf(beeps)
		g.MsgErr = DistOf(msgErr)
		g.MemErr = DistOf(memErr)
		g.WallMS = DistOf(wall)
		g.BuildMS = DistOf(build)
		groups = append(groups, g)
	}
	return groups
}
