package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// The sidecar offset index: <store>.idx beside the JSONL data file.
// Line 1 is the header — a magic/version pair plus the exact number of
// data-file bytes the entries cover — and every following line maps one
// spec hash to the byte extent of its record line. An index is pure
// acceleration: it is regenerated from the data file whenever it is
// missing, unreadable, or stale (header byte count ≠ data file size), so
// deleting it can never lose a record, and old-format stores (no index)
// open exactly as before.
const (
	indexMagic   = "sweep-index"
	indexVersion = 1
)

// IndexPath returns the sidecar index path for a JSONL store path.
func IndexPath(path string) string { return path + ".idx" }

type indexHeader struct {
	Magic   string `json:"magic"`
	Version int    `json:"version"`
	// DataBytes is the data-file size the entries cover: the staleness
	// check. Records count the entries (a truncation tripwire).
	DataBytes int64 `json:"data_bytes"`
	Records   int   `json:"records"`
}

// indexEntry locates one record line: [Off, Off+Len) in the data file,
// newline included.
type indexEntry struct {
	Hash string `json:"hash"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
}

// writeIndex atomically replaces path's sidecar index (temp file +
// rename) with the given entries covering dataBytes of the data file.
func writeIndex(path string, entries []indexEntry, dataBytes int64) error {
	idxPath := IndexPath(path)
	tmp, err := os.CreateTemp(dirOf(idxPath), ".sweep-index-*")
	if err != nil {
		return fmt.Errorf("sweep: write index: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	w := bufio.NewWriter(tmp)
	hdr := indexHeader{Magic: indexMagic, Version: indexVersion, DataBytes: dataBytes, Records: len(entries)}
	if err := EncodeJSONL(w, hdr); err != nil {
		tmp.Close()
		return err
	}
	for _, e := range entries {
		if err := EncodeJSONL(w, e); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: write index: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: sync index: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: close index: %w", err)
	}
	if err := os.Rename(tmp.Name(), idxPath); err != nil {
		return fmt.Errorf("sweep: install index: %w", err)
	}
	return nil
}

// readIndex loads the sidecar index for path and validates it against
// dataBytes (the current data-file size). ok is false — with no error —
// when the index is missing, malformed, or stale: every one of those is
// the regenerate signal, never a failure, because the data file is the
// source of truth.
func readIndex(path string, dataBytes int64) (entries []indexEntry, ok bool) {
	f, err := os.Open(IndexPath(path))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdrLine, err := r.ReadBytes('\n')
	if err != nil {
		return nil, false
	}
	var hdr indexHeader
	if json.Unmarshal(trimNewline(hdrLine), &hdr) != nil ||
		hdr.Magic != indexMagic || hdr.Version != indexVersion || hdr.DataBytes != dataBytes {
		return nil, false
	}
	entries = make([]indexEntry, 0, hdr.Records)
	for {
		line, err := r.ReadBytes('\n')
		if len(trimNewline(line)) > 0 {
			var e indexEntry
			if json.Unmarshal(trimNewline(line), &e) != nil {
				return nil, false
			}
			if e.Off < 0 || e.Len <= 0 || e.Off+e.Len > dataBytes {
				return nil, false
			}
			entries = append(entries, e)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false
		}
	}
	if len(entries) != hdr.Records {
		return nil, false
	}
	return entries, true
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	// LinesIn counts non-empty input lines; Records the surviving ones.
	LinesIn, Records int
	// DroppedInvalid counts torn/corrupt/hash-mismatched lines dropped;
	// DroppedDuplicate counts earlier occurrences of re-Put hashes (the
	// last occurrence survives, matching the in-memory index semantics).
	DroppedInvalid, DroppedDuplicate int
	// BytesIn and BytesOut measure the data file before and after;
	// Reclaimed is their difference.
	BytesIn, BytesOut, Reclaimed int64
}

func (cs CompactStats) String() string {
	return fmt.Sprintf("lines=%d records=%d dropped_invalid=%d dropped_duplicate=%d bytes=%d->%d reclaimed=%d",
		cs.LinesIn, cs.Records, cs.DroppedInvalid, cs.DroppedDuplicate, cs.BytesIn, cs.BytesOut, cs.Reclaimed)
}

// Compact rewrites the JSONL store at path, dropping torn, invalid, and
// superseded-duplicate lines, and installs a fresh sidecar offset index
// — the preparation step that lets IndexedStore open by seek instead of
// load. Surviving lines are copied byte for byte (never re-encoded), so
// a compacted store serves records byte-identical to the original; for
// a duplicated hash the last occurrence survives, in the hash's
// first-seen order position, exactly reproducing what Store.Open's
// in-memory index would have served. Both files are replaced atomically
// (temp + rename), so a reader holding the old file keeps a consistent
// view and a crash mid-compaction leaves the original untouched.
func Compact(path string) (CompactStats, error) {
	var cs CompactStats
	f, err := os.Open(path)
	if err != nil {
		return cs, fmt.Errorf("sweep: compact: %w", err)
	}
	defer f.Close()

	// Pass 1: validate every line, remembering for each hash the extent
	// of its last occurrence and the first-seen order.
	type span struct{ off, n int64 }
	last := make(map[string]span)
	var order []string
	err = walkLines(f, func(off int64, line []byte) {
		cs.LinesIn++
		rec, err := DecodeRecord(line)
		if err != nil {
			cs.DroppedInvalid++
			return
		}
		if _, seen := last[rec.Hash]; !seen {
			order = append(order, rec.Hash)
		} else {
			cs.DroppedDuplicate++
		}
		last[rec.Hash] = span{off, int64(len(line))}
	})
	if err != nil {
		return cs, fmt.Errorf("sweep: compact %s: %w", path, err)
	}
	if cs.BytesIn, err = f.Seek(0, io.SeekEnd); err != nil {
		return cs, fmt.Errorf("sweep: compact %s: %w", path, err)
	}

	// Pass 2: copy the surviving raw lines into a temp file, recording
	// their new offsets for the index.
	tmp, err := os.CreateTemp(dirOf(path), ".sweep-compact-*")
	if err != nil {
		return cs, fmt.Errorf("sweep: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	w := bufio.NewWriter(tmp)
	entries := make([]indexEntry, 0, len(order))
	var out int64
	buf := make([]byte, 0, 1<<16)
	for _, h := range order {
		sp := last[h]
		if int64(cap(buf)) < sp.n {
			buf = make([]byte, sp.n)
		}
		buf = buf[:sp.n]
		if _, err := f.ReadAt(buf, sp.off); err != nil {
			tmp.Close()
			return cs, fmt.Errorf("sweep: compact %s: reread record: %w", path, err)
		}
		if _, err := w.Write(buf); err != nil {
			tmp.Close()
			return cs, fmt.Errorf("sweep: compact: %w", err)
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			tmp.Close()
			return cs, fmt.Errorf("sweep: compact: %w", err)
		}
		entries = append(entries, indexEntry{Hash: h, Off: out, Len: sp.n + 1})
		out += sp.n + 1
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("sweep: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("sweep: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return cs, fmt.Errorf("sweep: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return cs, fmt.Errorf("sweep: compact: install: %w", err)
	}
	if err := writeIndex(path, entries, out); err != nil {
		return cs, err
	}
	cs.Records = len(order)
	cs.BytesOut = out
	cs.Reclaimed = cs.BytesIn - cs.BytesOut
	return cs, nil
}
