package sweep

import (
	"bytes"
	"errors"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

func serviceGrid() Grid {
	return Grid{
		Families: []string{"regular"}, Ns: []int{14}, Params: []int{3},
		Epsilons: []float64{0.1}, Engines: []string{"alg1", "tdma"},
		Workloads: []string{"gossip"}, Rounds: 2, Replicates: 2, BaseSeed: 2023,
	}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// canonLine encodes a record with the nondeterministic timing fields
// zeroed: the byte-identity comparison form used across the repo.
func canonLine(t *testing.T, rec Record) []byte {
	t.Helper()
	rec.WallNanos, rec.BuildNanos = 0, 0
	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceMatchesRun: the service changes scheduling only. The same
// grid executed through Service.Submit and through the one-shot batch
// Run produces byte-identical records, slot for slot.
func TestServiceMatchesRun(t *testing.T) {
	scenarios, err := serviceGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}

	batchStore := openStore(t)
	batchRecs, _, err := Run(scenarios, batchStore, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}

	svcStore := openStore(t)
	svc := NewService(svcStore, ServiceOptions{Jobs: 2})
	defer svc.Close()
	job, err := svc.Submit(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	svcRecs, stats, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total != len(scenarios) || stats.Failed != 0 {
		t.Fatalf("service stats: %+v", stats)
	}
	if len(svcRecs) != len(batchRecs) {
		t.Fatalf("record counts differ: %d vs %d", len(svcRecs), len(batchRecs))
	}
	for i := range svcRecs {
		if got, want := canonLine(t, svcRecs[i]), canonLine(t, batchRecs[i]); !bytes.Equal(got, want) {
			t.Fatalf("slot %d differs between service and batch:\n svc: %s\n run: %s", i, got, want)
		}
	}
	// Both stores hold the same record set.
	if svcStore.Len() != batchStore.Len() {
		t.Fatalf("store sizes differ: %d vs %d", svcStore.Len(), batchStore.Len())
	}
}

// TestServiceSingleflight pins the dedup path deterministically: a
// blocked execution for hash H is in flight; a second submission of H
// joins the flight (observed via Waiters) before release; exactly one
// execution runs and the joiner reports cached with the dedup counter
// incremented.
func TestServiceSingleflight(t *testing.T) {
	sc := baseSpec()
	hash := sc.Hash()
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	reg := obs.NewRegistry()
	svc := NewService(openStore(t), ServiceOptions{
		Jobs: 2, Metrics: reg,
		ExecuteFunc: func(s Scenario, _ ExecOptions) (Record, error) {
			started <- struct{}{}
			<-release
			return Record{Hash: s.Hash(), Spec: s}, nil
		},
	})
	defer svc.Close()

	job1, err := svc.Submit([]Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the flight for hash is open and blocked

	job2, err := svc.Submit([]Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until job2's worker is blocked inside the flight, so the
	// share — not a late store hit — is the path under test.
	for deadline := time.Now().Add(5 * time.Second); svc.flights.Waiters(hash) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second submission never joined the flight")
		}
		runtime.Gosched()
	}
	close(release)

	_, st1, err := job1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := job2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st1.Ran != 1 || st1.Cached != 0 {
		t.Fatalf("owner job stats: %+v", st1)
	}
	if st2.Ran != 0 || st2.Cached != 1 {
		t.Fatalf("joiner job stats: %+v", st2)
	}
	if n := reg.Counter("sweep.service.executions").Value(); n != 1 {
		t.Fatalf("executions=%d, want exactly 1", n)
	}
	if n := reg.Counter("sweep.service.singleflight_hits").Value(); n != 1 {
		t.Fatalf("singleflight_hits=%d, want 1", n)
	}
	if n := len(started); n != 0 {
		t.Fatalf("%d extra executions started", n)
	}
}

// TestServiceStoreHit: records already in the store are served without
// execution and counted as cached.
func TestServiceStoreHit(t *testing.T) {
	sc := baseSpec()
	store := openStore(t)
	rec := execOrFatal(t, sc)
	if err := store.Put(rec); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc := NewService(store, ServiceOptions{
		Jobs: 1, Metrics: reg,
		ExecuteFunc: func(Scenario, ExecOptions) (Record, error) {
			t.Error("execution despite store hit")
			return Record{}, errors.New("unreachable")
		},
	})
	defer svc.Close()
	job, err := svc.Submit([]Scenario{sc})
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := job.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 1 || st.Ran != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if recs[0].Hash != rec.Hash {
		t.Fatal("wrong record served")
	}
	if n := reg.Counter("sweep.service.store_hits").Value(); n != 1 {
		t.Fatalf("store_hits=%d, want 1", n)
	}
}

// TestServiceBackpressure: admission is all-or-nothing against
// MaxPending; a rejected submission leaves no orphan tasks and accepted
// jobs still complete.
func TestServiceBackpressure(t *testing.T) {
	release := make(chan struct{})
	reg := obs.NewRegistry()
	svc := NewService(openStore(t), ServiceOptions{
		Jobs: 1, MaxPending: 2, Metrics: reg,
		ExecuteFunc: func(s Scenario, _ ExecOptions) (Record, error) {
			<-release
			return Record{Hash: s.Hash(), Spec: s}, nil
		},
	})
	defer svc.Close()

	accepted, err := svc.Submit([]Scenario{specN(0), specN(1)}) // fills the bound
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit([]Scenario{specN(2)}); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("overflow submission: err=%v, want ErrBackpressure", err)
	}
	if n := reg.Counter("sweep.service.rejected").Value(); n != 1 {
		t.Fatalf("rejected=%d, want 1", n)
	}
	close(release)
	if _, st, err := accepted.Wait(); err != nil || st.Ran != 2 {
		t.Fatalf("accepted job: stats=%+v err=%v", st, err)
	}
	// Capacity freed: the previously rejected scenario is admitted now.
	job, err := svc.Submit([]Scenario{specN(2)})
	if err != nil {
		t.Fatalf("post-drain submission: %v", err)
	}
	if _, _, err := job.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceClosed: Submit after Close fails with ErrClosed.
func TestServiceClosed(t *testing.T) {
	svc := NewService(openStore(t), ServiceOptions{Jobs: 1})
	svc.Close()
	if _, err := svc.Submit([]Scenario{baseSpec()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err=%v, want ErrClosed", err)
	}
	svc.Close() // idempotent
}

// TestServiceEvents: the event stream carries one event per slot with a
// strictly increasing Done counter and closes at completion.
func TestServiceEvents(t *testing.T) {
	scenarios := []Scenario{specN(0), specN(1), specN(2), specN(0)} // one duplicate
	svc := NewService(openStore(t), ServiceOptions{
		Jobs: 2,
		ExecuteFunc: func(s Scenario, _ ExecOptions) (Record, error) {
			return Record{Hash: s.Hash(), Spec: s}, nil
		},
	})
	defer svc.Close()
	job, err := svc.Submit(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	n := 0
	for ev := range job.Events() {
		n++
		if ev.Done != n {
			t.Fatalf("event %d has Done=%d", n, ev.Done)
		}
		if ev.Total != len(scenarios) {
			t.Fatalf("event Total=%d, want %d", ev.Total, len(scenarios))
		}
		if seen[ev.Index] {
			t.Fatalf("slot %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
	}
	if n != len(scenarios) {
		t.Fatalf("got %d events, want %d", n, len(scenarios))
	}
	st := job.Status()
	if !st.Complete || st.Done != len(scenarios) {
		t.Fatalf("status after stream close: %+v", st)
	}
	if st.Unique != 3 {
		t.Fatalf("Unique=%d, want 3", st.Unique)
	}
}

// TestServiceFailure: a failing scenario surfaces once per unique hash
// from Wait, and failed slots hold zero records.
func TestServiceFailure(t *testing.T) {
	bad := specN(0)
	svc := NewService(openStore(t), ServiceOptions{
		Jobs: 1,
		ExecuteFunc: func(s Scenario, _ ExecOptions) (Record, error) {
			if s.Hash() == bad.Hash() {
				return Record{}, errors.New("boom")
			}
			return Record{Hash: s.Hash(), Spec: s}, nil
		},
	})
	defer svc.Close()
	job, err := svc.Submit([]Scenario{bad, specN(1), bad}) // failure duplicated
	if err != nil {
		t.Fatal(err)
	}
	recs, st, err := job.Wait()
	if err == nil {
		t.Fatal("Wait returned nil error for failing job")
	}
	if st.Failed != 2 || st.Ran != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if recs[0].Hash != "" || recs[2].Hash != "" || recs[1].Hash == "" {
		t.Fatal("failed slots should be zero records, succeeded slot populated")
	}
	// One joined failure per unique hash, like Run.
	if got := len(errors.Join(err).Error()); got == 0 {
		t.Fatal("empty failure")
	}
}
