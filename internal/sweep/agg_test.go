package sweep

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestDistOf(t *testing.T) {
	d := DistOf([]float64{3, 1, 2, 4})
	if d.Count != 4 || d.Min != 1 || d.Max != 4 || d.Mean != 2.5 {
		t.Fatalf("DistOf: %+v", d)
	}
	if d.P50 != 2.5 {
		t.Errorf("P50 = %v, want 2.5", d.P50)
	}
	if math.Abs(d.P90-3.7) > 1e-9 {
		t.Errorf("P90 = %v, want 3.7", d.P90)
	}
	if z := DistOf(nil); z != (Dist{}) {
		t.Errorf("DistOf(nil) = %+v", z)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30}
	cases := []struct{ p, want float64 }{
		{0, 10}, {0.5, 20}, {1, 30}, {0.25, 15},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
}

// TestAggregateReplicates: records differing only in replicate fall into
// one cell with correct replicate statistics; different engines stay in
// different cells; presentation order is deterministic.
func TestAggregateReplicates(t *testing.T) {
	mk := func(engine string, rep int, beepRounds int) Record {
		sc := baseSpec()
		sc.Engine = engine
		sc.Replicate = rep
		sc.ChannelSeed += uint64(rep)
		return Record{
			Hash: sc.Hash(), Spec: sc,
			Graph:    GraphInfo{N: sc.N, MaxDegree: 2, Edges: sc.N},
			Counters: Counters{Result: core.Result{SimRounds: 2, BeepRounds: beepRounds, AllDone: true}},
		}
	}
	recs := []Record{
		mk(EngineTDMA, 0, 100),
		mk(EngineAlg1, 1, 3000),
		mk(EngineAlg1, 0, 1000),
		mk(EngineAlg1, 2, 2000),
	}
	groups := Aggregate(recs)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// Deterministic order: alg1 before tdma.
	if groups[0].Key.Engine != EngineAlg1 || groups[1].Key.Engine != EngineTDMA {
		t.Fatalf("group order: %+v", []Key{groups[0].Key, groups[1].Key})
	}
	a := groups[0]
	if a.BeepRounds.Count != 3 || a.BeepRounds.Mean != 2000 || a.BeepRounds.Min != 1000 || a.BeepRounds.Max != 3000 {
		t.Errorf("alg1 beep-round distribution: %+v", a.BeepRounds)
	}
	if a.PerSimRound.Mean != 1000 {
		t.Errorf("per-sim-round mean: %+v", a.PerSimRound)
	}
	// Records inside a cell come back in replicate order.
	for i, r := range a.Records {
		if r.Spec.Replicate != i {
			t.Errorf("cell records out of replicate order: %d at %d", r.Spec.Replicate, i)
		}
	}
}
