package sweep

import (
	"fmt"
	"time"

	"repro/internal/algorithms/mis"
	"repro/internal/baseline"
	"repro/internal/beepalgs"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// ExecOptions are the execution-only knobs: they parallelize a single
// scenario's per-round engine phases and, by the determinism contract
// (DESIGN.md §4), never change the Record (WallNanos aside). They are
// deliberately outside the Scenario spec so the content hash covers
// inputs only.
type ExecOptions struct {
	// Workers and Shards follow the engine convention: 0 or 1 = serial,
	// engine.AutoWorkers = one per CPU.
	Workers int
	Shards  int
}

// Execute runs one scenario and returns its record. Everything in the
// record except WallNanos is a deterministic function of the spec.
func Execute(sc Scenario, opt ExecOptions) (Record, error) {
	if err := sc.Validate(); err != nil {
		return Record{}, err
	}
	g, err := sc.BuildGraph()
	if err != nil {
		return Record{}, fmt.Errorf("sweep: %s: build graph: %w", sc.Hash(), err)
	}
	rec := Record{
		Hash:  sc.Hash(),
		Spec:  sc,
		Graph: GraphInfo{N: g.N(), MaxDegree: g.MaxDegree(), Edges: g.M()},
	}

	// Resolve workload: algorithms, bandwidth, and round budget.
	var algs []congest.BroadcastAlgorithm
	msgBits, budget := sc.MsgBits, 0
	switch sc.Workload {
	case WorkloadGossip:
		if msgBits == 0 {
			msgBits = 2 * wire.BitsFor(g.N())
		}
		budget = sc.Rounds + 2
		algs = GossipAlgs(g.N(), sc.Rounds)
	case WorkloadMIS:
		if msgBits == 0 {
			msgBits = mis.MsgBits(g.N())
		}
		budget = mis.MaxRounds(g.N())
		if sc.Engine != EngineBeep {
			algs = mis.New(g.N())
		}
	default:
		return Record{}, fmt.Errorf("sweep: unknown workload %q", sc.Workload)
	}

	start := time.Now()
	switch sc.Engine {
	case EngineAlg1:
		runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
			Params:      core.DefaultParams(g.N(), g.MaxDegree(), msgBits, sc.Epsilon),
			ChannelSeed: sc.ChannelSeed,
			AlgSeed:     sc.AlgSeed,
			NoisyOwn:    true,
			Workers:     opt.Workers,
			Shards:      opt.Shards,
		})
		if err != nil {
			return Record{}, err
		}
		res, err := runner.Run(algs, budget)
		if err != nil {
			return Record{}, err
		}
		rec.Counters = countersFromCore(res)
		verifyMIS(sc, g, res.Outputs, &rec.Counters)

	case EngineTDMA:
		bl, err := baseline.NewRunner(g, baseline.Config{
			MsgBits:     msgBits,
			Epsilon:     sc.Epsilon,
			ChannelSeed: sc.ChannelSeed,
			AlgSeed:     sc.AlgSeed,
			NoisyOwn:    true,
			Workers:     opt.Workers,
			Shards:      opt.Shards,
		})
		if err != nil {
			return Record{}, err
		}
		res, err := bl.Run(algs, budget)
		if err != nil {
			return Record{}, err
		}
		rec.Counters = countersFromCore(res)
		verifyMIS(sc, g, res.Outputs, &rec.Counters)
		rec.Colors = bl.NumColors()
		rec.Rho = bl.Rho()
		rec.SetupRounds = baseline.EstimatedSetupRounds(g.N(), g.MaxDegree())

	case EngineCongest:
		eng, err := congest.NewBroadcastEngine(g, msgBits, sc.AlgSeed)
		if err != nil {
			return Record{}, err
		}
		eng.SetParallelism(opt.Workers, opt.Shards)
		res, err := eng.Run(algs, budget)
		if err != nil {
			return Record{}, err
		}
		rec.Counters = countersFromCongest(res)
		verifyMIS(sc, g, res.Outputs, &rec.Counters)

	case EngineBeep:
		// Native beeping MIS; the channel is noiseless and AlgSeed drives
		// the whole run (there is no separate channel stream).
		set, rounds, err := beepalgs.RunMIS(g, sc.AlgSeed)
		if err != nil {
			return Record{}, err
		}
		ok := mis.Verify(g, set) == nil
		rec.Counters = Counters{Result: core.Result{BeepRounds: rounds, AllDone: true}, OutputOK: &ok}

	default:
		return Record{}, fmt.Errorf("sweep: unknown engine %q", sc.Engine)
	}
	rec.WallNanos = time.Since(start).Nanoseconds()
	return rec, nil
}

// verifyMIS distills per-node outputs into Counters.OutputOK for the MIS
// workload (no-op for workloads without an output validity notion).
func verifyMIS(sc Scenario, g *graph.Graph, outputs []any, c *Counters) {
	if sc.Workload != WorkloadMIS {
		return
	}
	set := make([]bool, len(outputs))
	for v, o := range outputs {
		set[v] = o.(bool)
	}
	ok := c.AllDone && mis.Verify(g, set) == nil
	c.OutputOK = &ok
}

// gossip broadcasts the node ID every round for a fixed number of
// rounds; it is the canonical "one Broadcast CONGEST round" workload
// (formerly internal/experiments' idGossip).
type gossip struct {
	env    congest.Env
	rounds int
	seen   int
	done   bool
}

func (g *gossip) Init(env congest.Env) {
	g.env = env
	if g.rounds == 0 {
		g.rounds = 1
	}
}

func (g *gossip) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(uint64(g.env.ID), wire.BitsFor(g.env.N))
	return w.PaddedBytes(g.env.MsgBits)
}

func (g *gossip) Receive(round int, msgs []congest.Message) {
	g.seen++
	if g.seen >= g.rounds {
		g.done = true
	}
}

func (g *gossip) Done() bool  { return g.done }
func (g *gossip) Output() any { return g.seen }

// GossipAlgs returns the per-node gossip workload. Exported so
// experiment ablations that need non-default core.Params (outside the
// Scenario vocabulary) can run the same workload the sweep runs.
func GossipAlgs(n, rounds int) []congest.BroadcastAlgorithm {
	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &gossip{rounds: rounds}
	}
	return algs
}
