package sweep

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/congest"
	"repro/internal/sim"
)

// ExecOptions are the execution-only knobs: they parallelize a single
// scenario's per-round engine phases or share pure-function artifacts
// across scenarios and, by the determinism contract (DESIGN.md §4),
// never change the Record (WallNanos and BuildNanos aside). They are
// deliberately outside the Scenario spec so the content hash covers
// inputs only.
type ExecOptions struct {
	// Workers and Shards follow the engine convention: 0 or 1 = serial,
	// engine.AutoWorkers = one per CPU.
	Workers int
	Shards  int
	// Artifacts, when non-nil, shares graphs and code tables across
	// Execute calls (the batch scheduler passes one cache per batch).
	// Cached artifacts are pure functions of their keys, so records are
	// byte-identical with the cache on or off.
	Artifacts *sim.Cache
}

// Execute runs one scenario and returns its record. Everything in the
// record except WallNanos and BuildNanos is a deterministic function of
// the spec. The workload and engine are resolved through the
// internal/sim registries: the workload supplies bandwidth, budget,
// per-node instances, and output verification; the engine supplies the
// execution substrate and its engine-specific Extras, which land in the
// record's typed fields.
func Execute(sc Scenario, opt ExecOptions) (Record, error) {
	if err := sc.Validate(); err != nil {
		return Record{}, err
	}
	wl, ok := sim.WorkloadFor(sc.Workload)
	if !ok {
		return Record{}, fmt.Errorf("sweep: unknown workload %q", sc.Workload)
	}
	eng, ok := sim.EngineFor(sc.Engine)
	if !ok {
		return Record{}, fmt.Errorf("sweep: unknown engine %q", sc.Engine)
	}

	buildStart := time.Now()
	g, err := sc.buildGraphCached(opt.Artifacts)
	if err != nil {
		return Record{}, fmt.Errorf("sweep: %s: build graph: %w", sc.Hash(), err)
	}
	rec := Record{
		Hash:  sc.Hash(),
		Spec:  sc,
		Graph: GraphInfo{N: g.N(), MaxDegree: g.MaxDegree(), Edges: g.M()},
	}

	msgBits := sc.MsgBits
	if msgBits == 0 {
		msgBits = wl.MsgBits(g)
	}
	budget := wl.Budget(g, sc.Rounds)
	var algs []congest.BroadcastAlgorithm
	if eng.DrivesAlgs() {
		algs = wl.Algs(g, sc.Rounds)
	}

	inst, err := eng.Prepare(g, sim.Config{
		MsgBits:     msgBits,
		Epsilon:     sc.Epsilon,
		Noise:       sc.Noise,
		ChannelSeed: sc.ChannelSeed,
		AlgSeed:     sc.AlgSeed,
		Workers:     opt.Workers,
		Shards:      opt.Shards,
		Workload:    wl,
		Rounds:      sc.Rounds,
		Artifacts:   opt.Artifacts,
	})
	if err != nil {
		return Record{}, err
	}
	// BuildNanos covers all setup — graph construction, workload
	// instances, and engine preparation (code tables, TDMA schedule) —
	// so WallNanos measures the engine run alone and artifact-cache
	// hits (graphs and code tables) show up as collapsed build times.
	rec.BuildNanos = time.Since(buildStart).Nanoseconds()
	start := time.Now()
	res, extras, err := inst.Run(algs, budget)
	if err != nil {
		return Record{}, err
	}
	rec.Counters = countersFromCore(res)
	rec.Counters.Messages = extras[sim.ExtraMessages]
	rec.Colors = int(extras[sim.ExtraColors])
	rec.Rho = int(extras[sim.ExtraRho])
	rec.SetupRounds = int(extras[sim.ExtraSetupRounds])

	// Distill workload-level output validity into Counters.OutputOK.
	// Workloads without a validity notion (ErrUnverified) leave it nil;
	// a type mismatch is a wiring bug and fails the scenario with a
	// typed error rather than crashing the batch worker.
	if verr := wl.Verify(g, res.Outputs); !errors.Is(verr, sim.ErrUnverified) {
		var typeErr *sim.OutputTypeError
		if errors.As(verr, &typeErr) {
			return Record{}, fmt.Errorf("sweep: %s: %w", sc.Hash(), typeErr)
		}
		outputOK := rec.Counters.AllDone && verr == nil
		rec.Counters.OutputOK = &outputOK
	}
	rec.WallNanos = time.Since(start).Nanoseconds()
	return rec, nil
}
