package sweep

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/congest"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ExecOptions are the execution-only knobs: they parallelize a single
// scenario's per-round engine phases or share pure-function artifacts
// across scenarios and, by the determinism contract (DESIGN.md §4),
// never change the Record (WallNanos and BuildNanos aside). They are
// deliberately outside the Scenario spec so the content hash covers
// inputs only.
type ExecOptions struct {
	// Workers and Shards follow the engine convention: 0 or 1 = serial,
	// engine.AutoWorkers = one per CPU.
	Workers int
	Shards  int
	// GenWorkers shards graph generation for the streaming families
	// (Scenario.BuildGraphWorkers): 0 or 1 = serial, negative = one per
	// CPU. The built graph — and therefore the record — is byte-identical
	// for every value.
	GenWorkers int
	// Artifacts, when non-nil, shares graphs and code tables across
	// Execute calls (the batch scheduler passes one cache per batch).
	// Cached artifacts are pure functions of their keys, so records are
	// byte-identical with the cache on or off.
	Artifacts *sim.Cache
	// Metrics, when non-nil, receives observation-only instrumentation
	// from the execution layers (build/run timers here, phase and decode
	// counters in the engines). Telemetry never consumes algorithm or
	// channel randomness, so records are byte-identical with it on or off
	// (TestTelemetryRecordsIdentical).
	Metrics *obs.Registry
	// MaxRoundsFactor, when positive, caps the engine round budget at
	// ⌈factor · workload budget⌉: the guard that keeps a jammed or
	// broken protocol from running unbounded. A tripped cap records a
	// typed budget-exhausted Failure instead of hanging. This is the one
	// knob in ExecOptions that CAN change a record (it bounds the run
	// itself), which is why it is a guard, not a tuning parameter: hold
	// it constant across every run feeding one store, exactly like a
	// spec axis. Zero (the default) preserves the workload budget and
	// the historic records byte for byte.
	MaxRoundsFactor float64
}

// execMetrics resolves the sweep execution layer's handles; the zero
// value (nil registry) disables everything at one pointer check per use.
type execMetrics struct {
	buildT *obs.Timer
	runT   *obs.Timer
	lanes  *obs.Histogram
	gBytes *obs.Gauge
}

func newExecMetrics(reg *obs.Registry) execMetrics {
	if reg == nil {
		return execMetrics{}
	}
	return execMetrics{
		buildT: reg.Timer("sweep.exec.build_nanos"),
		runT:   reg.Timer("sweep.exec.run_nanos"),
		lanes:  reg.Histogram("sweep.exec.sliced_lanes"),
		gBytes: reg.Gauge("sweep.graph.bytes"),
	}
}

// Execute runs one scenario and returns its record. Everything in the
// record except WallNanos and BuildNanos is a deterministic function of
// the spec. The workload and engine are resolved through the
// internal/sim registries: the workload supplies bandwidth, budget,
// per-node instances, and output verification; the engine supplies the
// execution substrate and its engine-specific Extras, which land in the
// record's typed fields.
func Execute(sc Scenario, opt ExecOptions) (Record, error) {
	if err := sc.Validate(); err != nil {
		return Record{}, err
	}
	wl, ok := sim.WorkloadFor(sc.Workload)
	if !ok {
		return Record{}, fmt.Errorf("sweep: unknown workload %q", sc.Workload)
	}
	eng, ok := sim.EngineFor(sc.Engine)
	if !ok {
		return Record{}, fmt.Errorf("sweep: unknown engine %q", sc.Engine)
	}

	buildStart := time.Now()
	g, err := sc.buildGraphCached(opt.Artifacts, opt.GenWorkers)
	if err != nil {
		return Record{}, fmt.Errorf("sweep: %s: build graph: %w", sc.Hash(), err)
	}
	rec := Record{
		Hash:  sc.Hash(),
		Spec:  sc,
		Graph: GraphInfo{N: g.N(), MaxDegree: g.MaxDegree(), Edges: g.M()},
	}

	msgBits := sc.MsgBits
	if msgBits == 0 {
		msgBits = wl.MsgBits(g)
	}
	budget, capped := capBudget(wl.Budget(g, sc.Rounds), opt.MaxRoundsFactor)
	var algs []congest.BroadcastAlgorithm
	if eng.DrivesAlgs() {
		algs = wl.Algs(g, sc.Rounds)
	}

	inst, err := eng.Prepare(g, sim.Config{
		MsgBits:     msgBits,
		Epsilon:     sc.Epsilon,
		Noise:       sc.Noise,
		ChannelSeed: sc.ChannelSeed,
		AlgSeed:     sc.AlgSeed,
		Workers:     opt.Workers,
		Shards:      opt.Shards,
		Workload:    wl,
		Rounds:      sc.Rounds,
		Artifacts:   opt.Artifacts,
		Metrics:     opt.Metrics,
	})
	if err != nil {
		return Record{}, err
	}
	// BuildNanos covers all setup — graph construction, workload
	// instances, and engine preparation (code tables, TDMA schedule) —
	// so WallNanos measures the engine run alone and artifact-cache
	// hits (graphs and code tables) show up as collapsed build times.
	rec.BuildNanos = time.Since(buildStart).Nanoseconds()
	em := newExecMetrics(opt.Metrics)
	em.buildT.Observe(time.Duration(rec.BuildNanos))
	em.gBytes.Set(g.Bytes())
	start := time.Now()
	res, extras, err := inst.Run(algs, budget)
	if err != nil {
		return Record{}, err
	}
	rec.Counters = countersFromCore(res)
	rec.Counters.Messages = extras[sim.ExtraMessages]
	rec.Colors = int(extras[sim.ExtraColors])
	rec.Rho = int(extras[sim.ExtraRho])
	rec.SetupRounds = int(extras[sim.ExtraSetupRounds])

	// Distill workload-level output validity into Counters.OutputOK.
	// Workloads without a validity notion (ErrUnverified) leave it nil;
	// a type mismatch is a wiring bug and fails the scenario with a
	// typed error rather than crashing the batch worker.
	verr := wl.Verify(g, res.Outputs)
	if !errors.Is(verr, sim.ErrUnverified) {
		var typeErr *sim.OutputTypeError
		if errors.As(verr, &typeErr) {
			return Record{}, fmt.Errorf("sweep: %s: %w", sc.Hash(), typeErr)
		}
		outputOK := rec.Counters.AllDone && verr == nil
		rec.Counters.OutputOK = &outputOK
	}
	rec.Failure = failureFor(sc, rec.Counters, verr, capped, budget)
	rec.WallNanos = time.Since(start).Nanoseconds()
	em.runT.Observe(time.Duration(rec.WallNanos))
	return rec, nil
}

// capBudget applies the MaxRoundsFactor guard to a workload budget,
// reporting whether the cap is the binding constraint.
func capBudget(budget int, factor float64) (int, bool) {
	if factor <= 0 {
		return budget, false
	}
	c := int(math.Ceil(factor * float64(budget)))
	if c < 1 {
		c = 1
	}
	if c >= budget {
		return budget, false
	}
	return c, true
}

// hostileChannel reports whether the scenario runs under a hostile
// (adversarial or jamming) channel model; failures are then attributed
// to the channel rather than the algorithm.
func hostileChannel(sc Scenario) bool {
	if sc.Noise == "" {
		return false
	}
	m, err := noise.Parse(sc.Noise)
	return err == nil && noise.Hostile(m)
}

// failureFor distills a completed run into the Record's Failure reason:
// empty for a healthy run; the budget-guard trip for any channel; and,
// under a hostile channel only, unfinished nodes or failed output
// verification — the graceful-degradation contract (a broken protocol
// terminates with a typed failure, it never hangs or panics).
func failureFor(sc Scenario, c Counters, verr error, capped bool, budget int) string {
	if capped && !c.AllDone {
		return fmt.Sprintf("round budget exhausted: MaxRoundsFactor cap of %d beep rounds hit with unfinished nodes", budget)
	}
	if !hostileChannel(sc) {
		return ""
	}
	if !c.AllDone {
		return "terminated with unfinished nodes under the hostile channel"
	}
	if c.OutputOK != nil && !*c.OutputOK {
		if verr != nil && !errors.Is(verr, sim.ErrUnverified) {
			return "output verification failed: " + verr.Error()
		}
		return "output verification failed"
	}
	return ""
}

// sliceKey is the grouping identity of replicate-sliced execution: two
// scenarios may run as lanes of one sliced engine pass iff they differ
// only in Replicate, ChannelSeed, AlgSeed — and GraphSeed when the
// family derives its graph without it (every family except the random
// ones builds a pure function of N and Param, so replicates share one
// topology even though grid expansion varies their GraphSeed). The
// zeroed spec itself is the key — Scenario is comparable, so grouping
// costs no hashing.
func sliceKey(sc Scenario) Scenario {
	sc.Replicate, sc.ChannelSeed, sc.AlgSeed = 0, 0, 0
	if !graphSeedMatters(sc.Family) {
		sc.GraphSeed = 0
	}
	return sc
}

// graphSeedMatters reports whether BuildGraph consumes GraphSeed.
func graphSeedMatters(family string) bool {
	switch family {
	case FamilyRegular, FamilyBounded, FamilyGeo:
		return true
	}
	return false
}

// slicedCapable reports whether the scenario's engine advertises
// replicate-sliced execution (sim.SlicedEngine).
func slicedCapable(sc Scenario) bool {
	eng, ok := sim.EngineFor(sc.Engine)
	if !ok {
		return false
	}
	_, ok = eng.(sim.SlicedEngine)
	return ok
}

// ExecuteSliced runs a group of scenarios that differ only in their
// replicate seeds (equal sliceKey) as lanes of one replicate-sliced
// engine pass. The returned records are positionally parallel to scs
// and — excepting WallNanos and BuildNanos, the non-deterministic
// timing fields, which report the group's totals amortized evenly over
// the lanes — byte-identical to Execute on each spec: slicing is an
// execution detail, never an identity axis, so hashes, stores, and
// downstream aggregation cannot observe it.
func ExecuteSliced(scs []Scenario, opt ExecOptions) ([]Record, error) {
	return executeSliced(scs, nil, opt)
}

// executeSliced is ExecuteSliced with optionally precomputed spec
// hashes (positionally parallel to scs, as the batch layer holds them):
// hashing is SHA-256 over canonical JSON, too expensive to redo per
// lane when the caller already paid for it. nil means compute here.
func executeSliced(scs []Scenario, hashes []string, opt ExecOptions) ([]Record, error) {
	if len(scs) == 0 || len(scs) > 64 {
		return nil, fmt.Errorf("sweep: sliced group of %d scenarios outside [1, 64]", len(scs))
	}
	key := sliceKey(scs[0])
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		if sliceKey(sc) != key {
			return nil, fmt.Errorf("sweep: sliced group mixes scenarios beyond their seeds (%s vs %s)", sc.Hash(), scs[0].Hash())
		}
	}
	wl, _ := sim.WorkloadFor(scs[0].Workload) // Validate resolved both
	eng, _ := sim.EngineFor(scs[0].Engine)
	seng, ok := eng.(sim.SlicedEngine)
	if !ok {
		return nil, fmt.Errorf("sweep: engine %q is not replicate-sliced capable", scs[0].Engine)
	}

	buildStart := time.Now()
	g, err := scs[0].buildGraphCached(opt.Artifacts, opt.GenWorkers)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: build graph: %w", scs[0].Hash(), err)
	}
	msgBits := scs[0].MsgBits
	if msgBits == 0 {
		msgBits = wl.MsgBits(g)
	}
	budget, capped := capBudget(wl.Budget(g, scs[0].Rounds), opt.MaxRoundsFactor)
	lanes := make([]sim.LaneSeeds, len(scs))
	algs := make([][]congest.BroadcastAlgorithm, len(scs))
	for k, sc := range scs {
		lanes[k] = sim.LaneSeeds{ChannelSeed: sc.ChannelSeed, AlgSeed: sc.AlgSeed}
		algs[k] = wl.Algs(g, sc.Rounds)
	}
	inst, err := seng.PrepareSliced(g, sim.Config{
		MsgBits:   msgBits,
		Epsilon:   scs[0].Epsilon,
		Noise:     scs[0].Noise,
		Workers:   opt.Workers,
		Shards:    opt.Shards,
		Workload:  wl,
		Rounds:    scs[0].Rounds,
		Artifacts: opt.Artifacts,
		Metrics:   opt.Metrics,
	}, lanes)
	if err != nil {
		return nil, err
	}
	buildNanos := time.Since(buildStart).Nanoseconds()
	em := newExecMetrics(opt.Metrics)
	em.buildT.Observe(time.Duration(buildNanos))
	em.lanes.Observe(int64(len(scs)))
	start := time.Now()
	results, extras, err := inst.RunSliced(algs, budget)
	if err != nil {
		return nil, err
	}
	wallNanos := time.Since(start).Nanoseconds()
	em.runT.Observe(time.Duration(wallNanos))

	recs := make([]Record, len(scs))
	for k, sc := range scs {
		hash := ""
		if hashes != nil {
			hash = hashes[k]
		}
		if hash == "" {
			hash = sc.Hash()
		}
		rec := Record{
			Hash:       hash,
			Spec:       sc,
			Graph:      GraphInfo{N: g.N(), MaxDegree: g.MaxDegree(), Edges: g.M()},
			BuildNanos: buildNanos / int64(len(scs)),
			WallNanos:  wallNanos / int64(len(scs)),
		}
		rec.Counters = countersFromCore(results[k])
		rec.Counters.Messages = extras[k][sim.ExtraMessages]
		rec.Colors = int(extras[k][sim.ExtraColors])
		rec.Rho = int(extras[k][sim.ExtraRho])
		rec.SetupRounds = int(extras[k][sim.ExtraSetupRounds])
		verr := wl.Verify(g, results[k].Outputs)
		if !errors.Is(verr, sim.ErrUnverified) {
			var typeErr *sim.OutputTypeError
			if errors.As(verr, &typeErr) {
				return nil, fmt.Errorf("sweep: %s: %w", sc.Hash(), typeErr)
			}
			outputOK := rec.Counters.AllDone && verr == nil
			rec.Counters.OutputOK = &outputOK
		}
		rec.Failure = failureFor(sc, rec.Counters, verr, capped, budget)
		recs[k] = rec
	}
	return recs, nil
}
